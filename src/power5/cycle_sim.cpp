#include "power5/cycle_sim.h"

#include <algorithm>

#include "common/check.h"

namespace hpcs::p5 {
namespace {

/// Deterministic stall pattern: thread stalls on the granted cycles whose
/// phase accumulator wraps — an even spread with exactly `rate` density.
struct StallClock {
  double rate;
  double acc = 0.0;
  bool tick() {
    acc += rate;
    if (acc >= 1.0) {
      acc -= 1.0;
      return true;
    }
    return false;
  }
};

}  // namespace

CycleSimResult run_decode_sim(HwPrio a, HwPrio b, const ThreadModel& ta, const ThreadModel& tb,
                              std::int64_t cycles, bool steal) {
  const DecodeAllocation alloc = decode_allocation(a, b);
  HPCS_CHECK_MSG(!alloc.special, "cycle simulator covers regular priorities (2..6)");
  HPCS_CHECK(cycles > 0);

  CycleSimResult res;
  res.cycles = cycles;
  StallClock stall_a{ta.stall_rate};
  StallClock stall_b{tb.stall_rate};

  // Accrued-but-not-yet-decoded work per thread, capped by the buffer.
  double buf_a = 0.0;
  double buf_b = 0.0;

  // Within each window of R cycles the high-priority context owns the first
  // R-1 slots and the low one the last (an arbitrary but fixed phase; only
  // the ratio matters).
  const int window = (to_int(a) == to_int(b)) ? 2 : alloc.window;
  const int slots_a = (to_int(a) == to_int(b)) ? 1 : alloc.cycles_a;

  auto issue = [](double& buf, double& issued) {
    const double n = std::min(1.0, buf);
    buf -= n;
    issued += n;
    return n > 0.0;
  };

  for (std::int64_t c = 0; c < cycles; ++c) {
    // Work generation: each thread produces demand_ipc of decodable work.
    buf_a = std::min(buf_a + ta.demand_ipc, ta.buffer_depth * window);
    buf_b = std::min(buf_b + tb.demand_ipc, tb.buffer_depth * window);

    const int phase = static_cast<int>(c % window);
    const bool slot_for_a = phase < slots_a;
    if (slot_for_a) {
      ++res.decode_a;
      bool used = false;
      if (!stall_a.tick()) used = issue(buf_a, res.issued_a);
      if (!used && steal && !stall_b.tick()) issue(buf_b, res.issued_b);
    } else {
      ++res.decode_b;
      bool used = false;
      if (!stall_b.tick()) used = issue(buf_b, res.issued_b);
      if (!used && steal && !stall_a.tick()) issue(buf_a, res.issued_a);
    }
  }
  return res;
}

}  // namespace hpcs::p5
