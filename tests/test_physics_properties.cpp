// Physics-level property tests of the whole co-simulation: results must be
// (approximately) invariant to the timer-tick frequency, scale linearly with
// load, and behave sanely across machine presets (POWER5 / POWER6 / CELL).
// Also covers runtime heuristic switching via sysfs and the MetBench master
// mode.

#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "hpcsched/hpcsched.h"
#include "test_util.h"
#include "workloads/metbench.h"

namespace hpcs::test {
namespace {

wl::MetBenchConfig small_metbench() {
  wl::MetBenchConfig w;
  w.iterations = 8;
  w.loads = {0.05e9, 0.2e9, 0.05e9, 0.2e9};
  return w;
}

TEST(PhysicsProps, TickFrequencyInvariance) {
  // The execution engine is event-driven; ticks only drive CFS accounting
  // and RR slices. Baseline MetBench exec time must barely move between
  // 0.5 ms and 4 ms ticks.
  auto run_with_tick = [](Duration tick) {
    analysis::ExperimentConfig cfg;
    cfg.mode = analysis::SchedMode::kBaselineCfs;
    cfg.kernel.tick = tick;
    cfg.enable_noise = false;
    return analysis::run_experiment(cfg, wl::make_metbench(small_metbench())).exec_time.sec();
  };
  const double t_05 = run_with_tick(Duration::microseconds(500));
  const double t_1 = run_with_tick(Duration::milliseconds(1));
  const double t_4 = run_with_tick(Duration::milliseconds(4));
  EXPECT_NEAR(t_05, t_1, t_1 * 0.01);
  EXPECT_NEAR(t_4, t_1, t_1 * 0.01);
}

TEST(PhysicsProps, ExecutionTimeScalesLinearlyWithLoad) {
  auto run_scaled = [](double scale) {
    analysis::ExperimentConfig cfg;
    cfg.mode = analysis::SchedMode::kBaselineCfs;
    cfg.enable_noise = false;
    auto w = small_metbench();
    for (auto& l : w.loads) l *= scale;
    return analysis::run_experiment(cfg, wl::make_metbench(w)).exec_time.sec();
  };
  const double t1 = run_scaled(1.0);
  const double t2 = run_scaled(2.0);
  const double t4 = run_scaled(4.0);
  EXPECT_NEAR(t2 / t1, 2.0, 0.02);
  EXPECT_NEAR(t4 / t1, 4.0, 0.04);
}

TEST(PhysicsProps, MachinePresetsAllBalance) {
  // HPCSched must improve the imbalanced workload on every machine preset;
  // the magnitude varies with the lever's strength.
  for (const auto& [name, params] :
       {std::pair<const char*, p5::ThroughputParams>{"power5", p5::ThroughputParams{}},
        {"power6", p5::power6_params()},
        {"cell", p5::cell_params()}}) {
    analysis::ExperimentConfig base;
    base.mode = analysis::SchedMode::kBaselineCfs;
    base.kernel.throughput = params;
    base.enable_noise = false;
    const auto b = analysis::run_experiment(base, wl::make_metbench(small_metbench()));
    analysis::ExperimentConfig uni = base;
    uni.mode = analysis::SchedMode::kUniform;
    const auto u = analysis::run_experiment(uni, wl::make_metbench(small_metbench()));
    EXPECT_GT(analysis::improvement_pct(b, u), 3.0) << name;
    EXPECT_LT(analysis::improvement_pct(b, u), 30.0) << name;
  }
}

TEST(PhysicsProps, MasterModeMetBenchCompletes) {
  // The paper's framework has a master process; with 5 tasks on 4 CPUs the
  // balancer and scheduler must still converge and complete every iteration.
  analysis::ExperimentConfig cfg;
  cfg.mode = analysis::SchedMode::kUniform;
  auto w = small_metbench();
  w.include_master = true;
  const auto r = analysis::run_experiment(cfg, wl::make_metbench(w));
  ASSERT_EQ(r.ranks.size(), 5u);
  for (const auto& marks : r.marks) EXPECT_EQ(marks.size(), 8u);
  // The master computes almost nothing.
  EXPECT_LT(r.ranks[4].util_pct, 5.0);
}

TEST(RuntimeHeuristicSwitch, SysfsSwapsTheHeuristic) {
  sim::Simulator s;
  kern::Kernel k(s, {});
  auto& cls = hpc::install_hpcsched(k, {});
  k.start();
  EXPECT_STREQ(cls.heuristic().name(), "uniform");
  EXPECT_EQ(k.sysfs().read("hpcsched/heuristic"), 0);
  ASSERT_TRUE(k.sysfs().write("hpcsched/heuristic", 1));
  EXPECT_STREQ(cls.heuristic().name(), "adaptive");
  ASSERT_TRUE(k.sysfs().write("hpcsched/heuristic", 2));
  EXPECT_STREQ(cls.heuristic().name(), "hybrid");
  EXPECT_EQ(k.sysfs().read("hpcsched/heuristic"), 2);
  EXPECT_FALSE(k.sysfs().write("hpcsched/heuristic", 9));
  // The scheduler keeps working after a hot swap.
  auto& light = k.create_task("light", std::make_unique<PeriodicBody>(
                                            10.0e6, Duration::milliseconds(55)),
                              kern::Policy::kHpcRr, 0);
  auto& heavy = k.create_task("heavy", std::make_unique<PeriodicBody>(
                                            40.0e6, Duration::milliseconds(2)),
                              kern::Policy::kHpcRr, 1);
  k.sched_setaffinity(light, 0);
  k.sched_setaffinity(heavy, 1);
  k.start_task(light);
  k.start_task(heavy);
  s.run(SimTime(std::int64_t{2} * 1000000000));
  EXPECT_EQ(p5::to_int(heavy.hw_prio), 6);
}

}  // namespace
}  // namespace hpcs::test
