// Example: reproducing the characterization study the paper builds on
// (reference [4]): run a pair of equal compute kernels on the two contexts
// of one core at every priority combination and measure both tasks' speeds.
// This is what motivates HPCSched's design rules:
//   1. the winner gains little while the loser loses a lot;
//   2. differences beyond +/-2 only make sense for background work.

#include <cstdio>
#include <memory>

#include "kernel/kernel.h"
#include "simcore/simulator.h"

using namespace hpcs;

namespace {

/// Fixed-size compute kernel body.
class KernelBody final : public kern::TaskBody {
 public:
  explicit KernelBody(Work w) : work_(w) {}
  void step(kern::Kernel& k, kern::Task& t) override {
    if (done_) {
      k.body_exit(t);
      return;
    }
    done_ = true;
    k.body_compute(t, work_);
  }

 private:
  Work work_;
  bool done_ = false;
};

}  // namespace

int main() {
  std::printf("== POWER5 software-controlled priority characterization ==\n");
  std::printf("(two identical 100ms kernels on one core; times relative to equal priority)\n\n");

  constexpr Work kWork = 100.0e6;

  // Reference run: both at the default priority 4.
  double ref_ms = 0.0;
  {
    sim::Simulator s;
    kern::Kernel k(s, {});
    k.start();
    auto& a = k.create_task("a", std::make_unique<KernelBody>(kWork), kern::Policy::kNormal, 0);
    auto& b = k.create_task("b", std::make_unique<KernelBody>(kWork), kern::Policy::kNormal, 1);
    k.start_task(a);
    k.start_task(b);
    s.run(SimTime(std::int64_t{5} * 1000000000));
    ref_ms = (a.exit_time - a.created).ms();
  }
  std::printf("reference (4/4): %.1f ms per task\n\n", ref_ms);

  std::printf("%-10s %-12s %-12s %-14s %-14s\n", "prio A/B", "timeA (ms)", "timeB (ms)",
              "A vs equal", "B vs equal");
  for (int pa = 2; pa <= 6; ++pa) {
    for (int pb = 2; pb <= 6; ++pb) {
      if (pa < pb) continue;  // symmetric
      sim::Simulator s;
      kern::Kernel k(s, {});
      k.start();
      auto& a =
          k.create_task("a", std::make_unique<KernelBody>(kWork), kern::Policy::kNormal, 0);
      auto& b =
          k.create_task("b", std::make_unique<KernelBody>(kWork), kern::Policy::kNormal, 1);
      k.request_hw_prio(a, p5::hw_prio_from_int(pa));
      k.request_hw_prio(b, p5::hw_prio_from_int(pb));
      k.start_task(a);
      k.start_task(b);
      s.run(SimTime(std::int64_t{20} * 1000000000));
      const double ta = (a.exit_time - a.created).ms();
      const double tb = (b.exit_time - b.created).ms();
      std::printf("%d / %-6d %-12.1f %-12.1f %+-13.1f%% %+-13.1f%%\n", pa, pb, ta, tb,
                  100.0 * (ref_ms / ta - 1.0), 100.0 * (ref_ms / tb - 1.0));
    }
  }

  std::printf(
      "\nnote the asymmetry (conclusion 1 of [4]): at difference 2 the winner gains\n"
      "~17%% while the loser runs ~4x slower — which is why HPCSched restricts\n"
      "itself to priorities [4,6] (max difference +/-2, conclusion 2).\n");
  return 0;
}
