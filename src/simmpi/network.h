#pragma once
// Intra-node message transport model: fixed base latency plus a bandwidth
// term and optional uniform jitter. MPICH-over-shared-memory scale defaults.

#include "common/rng.h"
#include "common/types.h"

namespace hpcs::mpi {

struct NetworkParams {
  Duration base_latency = Duration::microseconds(5);
  double bytes_per_us = 1000.0;  ///< ~1 GB/s
  double jitter_frac = 0.1;      ///< uniform +/- fraction of the deterministic delay
  /// Messages above this size use the rendezvous protocol: a blocking send
  /// completes only once the receiver has posted a matching receive (real
  /// MPI eager/rendezvous switch). Non-positive = everything eager.
  std::int64_t eager_threshold = 256 * 1024;
};

class NetworkModel {
 public:
  NetworkModel(const NetworkParams& p, Rng rng) : p_(p), rng_(std::move(rng)) {}

  /// Transfer delay for one message of `bytes` payload.
  [[nodiscard]] Duration delay(std::int64_t bytes);

  [[nodiscard]] const NetworkParams& params() const { return p_; }

 private:
  NetworkParams p_;
  Rng rng_;
};

}  // namespace hpcs::mpi
