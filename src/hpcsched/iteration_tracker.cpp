#include "hpcsched/iteration_tracker.h"

namespace hpcs::hpc {

void IterationTracker::on_run_begin(Pid pid, SimTime now) {
  TaskIterStats& s = stats_[pid];
  s.run_start = now;
  s.in_run = true;
}

bool IterationTracker::on_run_end(Pid pid, SimTime now) {
  TaskIterStats& s = stats_[pid];
  s.sleep_start = now;
  if (!s.in_run) return false;
  s.in_run = false;
  s.has_history = true;
  s.open_run += now - s.run_start;
  // The iteration closes (and t_W is banked) at the next qualifying wakeup.
  return true;
}

std::optional<IterationSample> IterationTracker::on_wakeup(Pid pid, SimTime now) {
  TaskIterStats& s = stats_[pid];
  if (!s.has_history || s.in_run) {
    // First observation of this task: just open the run phase.
    on_run_begin(pid, now);
    return std::nullopt;
  }
  s.open_wait += now - s.sleep_start;
  if (s.open_run < min_iteration) {
    // No real computing phase yet: this wakeup continues the waiting phase
    // of the open iteration (partial waitall completions, spurious wakes).
    on_run_begin(pid, now);
    return std::nullopt;
  }
  const Duration run = s.open_run;
  const Duration wait = s.open_wait;
  s.open_run = Duration::zero();
  s.open_wait = Duration::zero();

  s.run_sum += run;
  s.wait_sum += wait;
  ++s.iterations;
  ++s.total_iterations;

  IterationSample sample;
  sample.run = run;
  sample.wait = wait;
  sample.iteration = s.total_iterations;
  const Duration span = run + wait;
  sample.util_last = span > Duration::zero() ? 100.0 * (run / span) : 100.0;

  s.util_global_prev = s.util_global;
  const Duration total = s.run_sum + s.wait_sum;
  s.util_global = total > Duration::zero() ? 100.0 * (s.run_sum / total) : 100.0;
  sample.util_global = s.util_global;
  s.util_last = sample.util_last;

  // EMA mean/variance of per-iteration utilization (Hybrid heuristic input).
  const double d = sample.util_last - s.util_ema;
  s.util_ema += ema_alpha * d;
  s.util_emvar = (1.0 - ema_alpha) * (s.util_emvar + ema_alpha * d * d);

  on_run_begin(pid, now);
  return sample;
}

void IterationTracker::reset_history(Pid pid) {
  TaskIterStats& s = stats_[pid];
  s.run_sum = Duration::zero();
  s.wait_sum = Duration::zero();
  s.iterations = 0;
  s.util_global = s.util_last;
  s.util_global_prev = s.util_last;
  s.mismatch_streak = 0;
  s.last_mismatch_band = -1;
  ++s.resets;
}

const TaskIterStats* IterationTracker::stats(Pid pid) const {
  const auto it = stats_.find(pid);
  return it == stats_.end() ? nullptr : &it->second;
}

TaskIterStats* IterationTracker::stats_mutable(Pid pid) {
  const auto it = stats_.find(pid);
  return it == stats_.end() ? nullptr : &it->second;
}

}  // namespace hpcs::hpc
