file(REMOVE_RECURSE
  "CMakeFiles/example_cluster_gang.dir/cluster_gang.cpp.o"
  "CMakeFiles/example_cluster_gang.dir/cluster_gang.cpp.o.d"
  "example_cluster_gang"
  "example_cluster_gang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cluster_gang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
