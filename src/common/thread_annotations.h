#pragma once
// Clang -Wthread-safety capability annotations, portable across compilers.
//
// The experiment engine is the only multi-threaded corner of the codebase
// (the simulation itself is single-threaded by design), and its determinism
// contract makes silent races especially costly: a data race does not crash,
// it produces *almost* bit-identical sweep rows. Capability annotations turn
// lock-discipline violations into compile errors under Clang
// (`-Wthread-safety`, added automatically by the top-level CMakeLists when
// the compiler is Clang); under GCC every macro expands to nothing.
//
// Conventions (see docs/static_analysis.md):
//  * shared fields are declared `GUARDED_BY(mu_)`;
//  * private helpers that expect the lock held are `REQUIRES(mu_)`;
//  * public entry points that take the lock themselves are `EXCLUDES(mu_)`;
//  * use the annotated `Mutex` / `MutexLock` / `CondVar` wrappers below —
//    raw `std::mutex` is invisible to the analysis because libstdc++ carries
//    no capability attributes.

#if defined(__clang__) && defined(__has_attribute)
#define HPCS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HPCS_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

#define CAPABILITY(x) HPCS_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY HPCS_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) HPCS_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) HPCS_THREAD_ANNOTATION(pt_guarded_by(x))
#define REQUIRES(...) HPCS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EXCLUDES(...) HPCS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ACQUIRE(...) HPCS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) HPCS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) HPCS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define RETURN_CAPABILITY(x) HPCS_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS HPCS_THREAD_ANNOTATION(no_thread_safety_analysis)

#include <condition_variable>
#include <mutex>

namespace hpcs {

/// `std::mutex` with the capability attribute the analysis needs.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock whose scope the analysis understands (`std::lock_guard` over a
/// plain `std::mutex` is opaque to it).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over the annotated Mutex. `wait()` is REQUIRES(mu):
/// the caller holds the lock across the call (the internal unlock/relock is
/// invisible to the analysis, as in every annotated condvar wrapper).
class CondVar {
 public:
  void wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace hpcs
