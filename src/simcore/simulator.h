#pragma once
// The simulation clock + event loop. Single-threaded and deterministic: the
// only sources of ordering are event times and insertion sequence. Distinct
// Simulator instances share no state, so independent experiments can run on
// different threads concurrently (see src/exp/parallel_runner.h).

#include "common/types.h"
#include "simcore/event_queue.h"

namespace hpcs::sim {

class Simulator {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` to run `delay` from now. Delay must be >= 0.
  EventHandle schedule_in(Duration delay, EventCallback cb);

  /// Schedule `cb` at an absolute instant (>= now()).
  EventHandle schedule_at(SimTime when, EventCallback cb);

  bool cancel(EventHandle h) { return queue_.cancel(h); }
  [[nodiscard]] bool pending(EventHandle h) const { return queue_.pending(h); }

  /// Move an existing event to fire `delay` from now, reusing its callback
  /// (also valid from inside that event's own callback — the recurring-event
  /// fast path). Returns false if the handle is stale; callers fall back to
  /// schedule_in().
  bool reschedule_in(EventHandle h, Duration delay);
  /// Same, with an absolute target instant (>= now()).
  bool reschedule_at(EventHandle h, SimTime when);

  /// Run until the queue drains or `deadline` passes; returns the final time.
  SimTime run(SimTime deadline = SimTime::max());

  /// Execute at most one event; returns false if the queue was empty.
  bool step();

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] const EventQueueStats& queue_stats() const { return queue_.stats(); }

 private:
  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t executed_ = 0;
};

}  // namespace hpcs::sim
