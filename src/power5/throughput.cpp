#include "power5/throughput.h"

#include <algorithm>

#include "common/check.h"

namespace hpcs::p5 {

double speed_for_share(const ThroughputParams& p, double share) {
  HPCS_CHECK_MSG(p.share_points.size() == p.speed_points.size() && p.share_points.size() >= 2,
                 "malformed throughput curve");
  share = std::clamp(share, 0.0, 1.0);
  const auto& xs = p.share_points;
  const auto& ys = p.speed_points;
  if (share <= xs.front()) return ys.front();
  if (share >= xs.back()) return ys.back();
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (share <= xs[i]) {
      const double t = (share - xs[i - 1]) / (xs[i] - xs[i - 1]);
      return ys[i - 1] + t * (ys[i] - ys[i - 1]);
    }
  }
  return ys.back();
}

ThroughputParams power6_params() {
  ThroughputParams p;
  p.share_points = {0.0,  1.0 / 64, 1.0 / 32, 1.0 / 16, 0.125, 0.25,
                    0.5,  0.75,     0.875,    15.0 / 16, 31.0 / 32, 1.0};
  p.speed_points = {0.0,  0.02, 0.04, 0.07, 0.13, 0.45,
                    0.58, 0.76, 0.82, 0.84, 0.85, 0.86};
  return p;
}

ThroughputParams cell_params() {
  // CELL-like preset (the paper: the CELL processor exposes 3 priority
  // levels per task). Coarser lever: only three distinct operating points,
  // modeled as a flatter curve with a single big step.
  ThroughputParams p;
  p.share_points = {0.0, 0.125, 0.25, 0.5, 0.75, 0.875, 1.0};
  p.speed_points = {0.0, 0.30, 0.45, 0.60, 0.70, 0.72, 0.72};
  return p;
}

namespace {

/// Speeds of a regular-priority SMT pair (both active, priorities 2..6).
CoreSpeeds smt_pair_speeds(const ThroughputParams& p, double share_a) {
  return {speed_for_share(p, share_a), speed_for_share(p, 1.0 - share_a)};
}

}  // namespace

double decode_share_a(HwPrio a, HwPrio b) {
  const DecodeAllocation alloc = decode_allocation(a, b);
  HPCS_CHECK_MSG(!alloc.special, "decode_share_a on special priorities");
  return static_cast<double>(alloc.cycles_a) / static_cast<double>(alloc.window);
}

CoreSpeeds context_speeds(const ThroughputParams& p, HwPrio a, bool a_active, HwPrio b,
                          bool b_active, bool a_snoozed, bool b_snoozed) {
  const bool a_on = a_active && a != HwPrio::kOff;
  const bool b_on = b_active && b != HwPrio::kOff;

  if (!a_on && !b_on) return {0.0, 0.0};
  if (a_on && !b_on) {
    if (b_snoozed || p.idle_contention_prio < 0) return {p.st_speed, 0.0};
    // The idle sibling context spins (SMT snooze disabled or not yet
    // triggered) and keeps consuming the decode share of
    // `idle_contention_prio`.
    const HwPrio idle = hw_prio_from_int(p.idle_contention_prio);
    const CoreSpeeds s = context_speeds(p, a, true, idle, true);
    return {s.a, 0.0};
  }
  if (!a_on && b_on) {
    if (a_snoozed || p.idle_contention_prio < 0) return {0.0, p.st_speed};
    const HwPrio idle = hw_prio_from_int(p.idle_contention_prio);
    const CoreSpeeds s = context_speeds(p, idle, true, b, true);
    return {0.0, s.b};
  }

  // Both active. Handle the special priorities first (paper §II-B):
  // priority 7 means the sibling is off; if both claim 7 the hardware cannot
  // honor it — treat as equal regular share.
  if (a == HwPrio::kVeryHigh && b != HwPrio::kVeryHigh) return {p.st_speed, 0.0};
  if (b == HwPrio::kVeryHigh && a != HwPrio::kVeryHigh) return {0.0, p.st_speed};
  if (a == HwPrio::kVeryHigh && b == HwPrio::kVeryHigh) return smt_pair_speeds(p, 0.5);

  // Priority 1 = background: the foreground thread runs near ST speed, the
  // background thread picks up leftovers.
  if (a == HwPrio::kVeryLow && b == HwPrio::kVeryLow) return smt_pair_speeds(p, 0.5);
  if (a == HwPrio::kVeryLow) return {p.background_bg, p.background_fg};
  if (b == HwPrio::kVeryLow) return {p.background_fg, p.background_bg};

  return smt_pair_speeds(p, decode_share_a(a, b));
}

}  // namespace hpcs::p5
