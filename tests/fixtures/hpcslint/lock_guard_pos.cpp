// Fixture: a GUARDED_BY field written without its mutex held. The write in
// bad() must be reported; the locked write in good() must not.
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& m);
};
#define GUARDED_BY(x)

class Counter {
 public:
  void good() {
    MutexLock l(mu_);
    ++hits_;
  }
  void bad() { ++hits_; }  // no MutexLock, no REQUIRES

 private:
  Mutex mu_;
  long hits_ GUARDED_BY(mu_) = 0;
};
