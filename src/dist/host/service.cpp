#include "dist/host/service.h"

#include "dist/host/host_clock.h"

namespace hpcs::dist::host {

// HPCS_HOST_BEGIN — poll loops: wall clock in, liveness out. Row bytes pass
// through untouched, so determinism is the state machines' problem (solved).

std::vector<std::string> serve_coordinator(Coordinator& coord, Listener& listener) {
  while (!coord.done()) {
    bool progressed = false;
    for (;;) {
      std::unique_ptr<Connection> conn = listener.poll_accept();
      if (conn == nullptr) break;
      coord.adopt(std::move(conn), now_ms());
      progressed = true;
    }
    coord.step(now_ms());
    if (!progressed) sleep_ms(1);
  }
  coord.step(now_ms());  // flush BYE frames to surviving workers
  return coord.take_rows();
}

bool serve_worker(WorkerSession& session, std::string& err) {
  while (session.step(now_ms())) {
    // One sweep point per step; only idle-wait when no shard is queued.
    if (!session.mid_shard()) sleep_ms(1);
  }
  if (session.phase() == WorkerSession::Phase::kFailed) {
    err = session.fail_reason();
    return false;
  }
  return true;
}

// HPCS_HOST_END

}  // namespace hpcs::dist::host
