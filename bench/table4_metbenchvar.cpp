// Reproduces Table IV: MetBenchVar — the dynamic workload whose imbalance
// reverses every k=15 iterations. The static prioritization (tuned for the
// first period) backfires in the reversed period; HPCSched re-balances
// within a few iterations after every switch.

#include "bench_common.h"

int main() {
  using namespace hpcs;
  using analysis::SchedMode;

  const auto e = analysis::MetBenchVarExperiment::paper();

  std::printf("=== Table IV: MetBenchVar characterization (k=15, 45 iterations) ===\n\n");
  auto baseline = analysis::run_metbenchvar(e, SchedMode::kBaselineCfs);
  auto stat = analysis::run_metbenchvar(e, SchedMode::kStatic);
  auto uniform = analysis::run_metbenchvar(e, SchedMode::kUniform);
  auto adaptive = analysis::run_metbenchvar(e, SchedMode::kAdaptive);

  bench::print_side_by_side(baseline,
                            analysis::paper_reference_metbenchvar(SchedMode::kBaselineCfs));
  std::printf("\n");
  bench::print_side_by_side(stat, analysis::paper_reference_metbenchvar(SchedMode::kStatic));
  std::printf("\n");
  bench::print_side_by_side(uniform, analysis::paper_reference_metbenchvar(SchedMode::kUniform));
  std::printf("\n");
  bench::print_side_by_side(adaptive,
                            analysis::paper_reference_metbenchvar(SchedMode::kAdaptive));
  std::printf("\n");

  bench::print_improvement_summary("Static vs baseline", baseline, stat, 368.17, 338.40);
  bench::print_improvement_summary("Uniform vs baseline", baseline, uniform, 368.17, 327.17);
  bench::print_improvement_summary("Adaptive vs baseline", baseline, adaptive, 368.17, 326.41);

  std::printf("\nbehaviour-change history resets: uniform=%lld adaptive=%lld\n",
              static_cast<long long>(uniform.hpc_history_resets),
              static_cast<long long>(adaptive.hpc_history_resets));

  std::vector<analysis::TableSection> sections = {
      {"Baseline", &baseline, {4, 4, 4, 4}},
      {"Static", &stat, {4, 6, 4, 6}},
      {"Uniform", &uniform, {}},
      {"Adaptive", &adaptive, {}},
  };
  std::printf("\n%s\n",
              analysis::render_characterization_table("Table IV (measured)", sections).c_str());
  return 0;
}
