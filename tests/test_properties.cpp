// Cross-cutting property sweeps (parameterized): invariants that must hold
// for ANY randomly generated workload — priority-range containment,
// accounting conservation, no-harm of the HPC scheduler on synchronized
// workloads, determinism, and heuristic convergence on constant imbalances.

#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "common/rng.h"
#include "workloads/metbench.h"

namespace hpcs::analysis {
namespace {

/// Randomized MetBench-style workload: 4 workers with random loads.
wl::MetBenchConfig random_metbench(Rng& rng) {
  wl::MetBenchConfig cfg;
  cfg.iterations = static_cast<int>(rng.uniform_int(5, 12));
  cfg.loads.clear();
  for (int i = 0; i < 4; ++i) {
    cfg.loads.push_back(rng.uniform(0.05e9, 0.5e9));
  }
  return cfg;
}

class RandomWorkloadProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWorkloadProps, SchedulerInvariantsHold) {
  Rng rng(GetParam());
  const auto workload = random_metbench(rng);

  ExperimentConfig cfg;
  cfg.mode = SchedMode::kUniform;
  cfg.seed = GetParam();
  const auto uni = run_experiment(cfg, wl::make_metbench(workload));

  // 1. Hardware priorities always within the supervisor-safe HPC window.
  for (const auto& r : uni.ranks) {
    EXPECT_GE(r.final_hw_prio, cfg.hpc.min_prio) << r.name;
    EXPECT_LE(r.final_hw_prio, cfg.hpc.max_prio) << r.name;
  }
  // 2. Every rank completed all its iterations (no starvation/deadlock).
  for (const auto& marks : uni.marks) {
    EXPECT_EQ(marks.size(), static_cast<std::size_t>(workload.iterations));
  }
  // 3. Utilization is a valid percentage.
  for (const auto& r : uni.ranks) {
    EXPECT_GE(r.util_pct, 0.0);
    EXPECT_LE(r.util_pct, 100.0 + 1e-6);
  }

  // 4. No-harm: on a barrier-synchronized workload the dynamic scheduler
  // never loses more than a whisker against the baseline.
  ExperimentConfig base_cfg = cfg;
  base_cfg.mode = SchedMode::kBaselineCfs;
  const auto base = run_experiment(base_cfg, wl::make_metbench(workload));
  EXPECT_LT(uni.exec_time.ns(), static_cast<double>(base.exec_time.ns()) * 1.05)
      << "uniform must not significantly hurt (base " << base.exec_time.sec() << "s, uniform "
      << uni.exec_time.sec() << "s)";

  // 5. Determinism: the identical configuration reproduces exactly.
  const auto replay = run_experiment(cfg, wl::make_metbench(workload));
  EXPECT_EQ(replay.exec_time.ns(), uni.exec_time.ns());
  EXPECT_EQ(replay.hw_prio_changes, uni.hw_prio_changes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadProps,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

class ConvergenceProps : public ::testing::TestWithParam<double> {};

// For any constant pairwise imbalance ratio, the Uniform heuristic reaches a
// stable priority assignment quickly and stops changing it (the paper's
// "stable state" requirement).
TEST_P(ConvergenceProps, UniformReachesStableState) {
  const double ratio = GetParam();
  wl::MetBenchConfig w;
  w.iterations = 20;
  const double large = 0.4e9;
  w.loads = {large / ratio, large, large / ratio, large};

  ExperimentConfig cfg;
  cfg.mode = SchedMode::kUniform;
  cfg.seed = 5;
  const auto r = run_experiment(cfg, wl::make_metbench(w));
  // Ratios the +/-2 window can represent settle after a couple of writes.
  // In-between ratios (e.g. 3:1, between the diff-1 and diff-2 operating
  // points) oscillate between two solutions — the paper acknowledges this
  // regime — but the churn stays bounded (<~1 write per iteration, not a
  // write per wakeup).
  // Clean operating points: ratios matching the diff-1 / diff-2 speed
  // ratios (or mild enough to need nothing), plus extreme ratios where the
  // light task's utilization stays unambiguously in the low band. Ratios in
  // between (3:1, 6:1) boundary-ride a classification edge and oscillate.
  const bool representable = ratio <= 2.0 || ratio == 4.0 || ratio >= 10.0;
  EXPECT_LE(r.hw_prio_changes, representable ? 12 : 2 * w.iterations) << "ratio " << ratio;
  // The heavy ranks must end prioritized for ratios the window can address.
  if (ratio >= 2.0) {
    EXPECT_GT(r.ranks[1].final_hw_prio, 4) << "ratio " << ratio;
    EXPECT_GT(r.ranks[3].final_hw_prio, 4) << "ratio " << ratio;
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, ConvergenceProps,
                         ::testing::Values(1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 10.0));

class NoiseLevelProps : public ::testing::TestWithParam<int> {};

// The scheduler must stay stable (no runaway priority churn) across OS-noise
// intensities.
TEST_P(NoiseLevelProps, PriorityChurnBounded) {
  wl::MetBenchConfig w;
  w.iterations = 15;
  w.loads = {0.1e9, 0.4e9, 0.1e9, 0.4e9};

  ExperimentConfig cfg;
  cfg.mode = SchedMode::kUniform;
  cfg.seed = 17;
  cfg.noise.burst = Duration::microseconds(GetParam());
  const auto r = run_experiment(cfg, wl::make_metbench(w));
  EXPECT_LE(r.hw_prio_changes, 4 * w.iterations)
      << "burst " << GetParam() << "us caused priority churn";
  for (const auto& marks : r.marks) EXPECT_EQ(marks.size(), 15u);
}

INSTANTIATE_TEST_SUITE_P(BurstUs, NoiseLevelProps, ::testing::Values(0, 20, 50, 200, 1000));

TEST(FailureInjection, DeadlineAbortsCleanly) {
  // A workload that cannot finish by the deadline must abort loudly (the
  // harness refuses to return bogus results).
  wl::MetBenchConfig w;
  w.iterations = 1000000;
  ExperimentConfig cfg;
  cfg.deadline = SimTime(1000000);  // 1 ms
  EXPECT_DEATH(run_experiment(cfg, wl::make_metbench(w)), "deadline");
}

TEST(FailureInjection, MismatchedStaticPriosAreIgnoredBeyondRanks) {
  wl::MetBenchConfig w;
  w.iterations = 3;
  ExperimentConfig cfg;
  cfg.mode = SchedMode::kStatic;
  cfg.static_prios = {4, 6};  // fewer entries than ranks: rest default
  const auto r = run_experiment(cfg, wl::make_metbench(w));
  EXPECT_EQ(r.ranks[1].final_hw_prio, 6);
  EXPECT_EQ(r.ranks[2].final_hw_prio, 4);
}

}  // namespace
}  // namespace hpcs::analysis
