#pragma once
// OS noise: per-CPU daemon tasks that periodically wake, run a short burst
// and sleep again — the extrinsic imbalance source the paper cites ([9],
// [22], [24], [28]) and the competition that produces CFS scheduler latency
// in the SIESTA experiment (§V-D).

#include <memory>

#include "common/rng.h"
#include "common/types.h"
#include "kernel/kernel.h"

namespace hpcs::kern {

struct NoiseConfig {
  Duration period = Duration::milliseconds(10);   ///< mean time between bursts
  Duration burst = Duration::microseconds(50);    ///< mean burst length (work at ST speed)
  double period_jitter = 0.5;  ///< burst period varies uniformly +/- this fraction
  double burst_jitter = 0.5;   ///< burst length varies uniformly +/- this fraction
};

/// Body of one noise daemon: alternates compute bursts and sleeps forever.
class NoiseDaemonBody final : public TaskBody {
 public:
  NoiseDaemonBody(const NoiseConfig& cfg, Rng rng) : cfg_(cfg), rng_(std::move(rng)) {}

  void step(Kernel& k, Task& t) override;

 private:
  [[nodiscard]] double jittered(double mean, double jitter);

  NoiseConfig cfg_;
  Rng rng_;
  bool computing_ = false;
};

/// Create one pinned SCHED_NORMAL noise daemon per CPU and start them.
/// Returns the created tasks.
std::vector<Task*> spawn_noise_daemons(Kernel& k, const NoiseConfig& cfg, Rng& rng);

}  // namespace hpcs::kern
