#include "simcore/event_queue.h"

#include <utility>

#include "common/check.h"

namespace hpcs::sim {

EventHandle EventQueue::schedule(SimTime when, EventCallback cb) {
  std::uint64_t id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = slots_.size();
    slots_.emplace_back();
  }
  Slot& slot = slots_[id];
  slot.cb = std::move(cb);
  slot.live = true;
  ++slot.gen;
  ++live_count_;
  heap_.push(HeapEntry{when, next_seq_++, id});
  return EventHandle{id, slot.gen};
}

bool EventQueue::cancel(EventHandle h) {
  if (!pending(h)) return false;
  Slot& slot = slots_[h.id_];
  slot.live = false;
  slot.cb = nullptr;
  --live_count_;
  // The heap entry stays behind and is skipped lazily; the slot is recycled
  // only when its heap entry surfaces, so generations stay unambiguous.
  return true;
}

bool EventQueue::pending(EventHandle h) const {
  return h.valid() && h.id_ < slots_.size() && slots_[h.id_].live &&
         slots_[h.id_].gen == h.gen_;
}

void EventQueue::drop_stale() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.top();
    if (slots_[top.id].live) return;
    free_slots_.push_back(top.id);
    heap_.pop();
  }
}

SimTime EventQueue::next_time() {
  drop_stale();
  HPCS_CHECK_MSG(!heap_.empty(), "next_time() on empty event queue");
  return heap_.top().when;
}

SimTime EventQueue::pop_and_run() {
  drop_stale();
  HPCS_CHECK_MSG(!heap_.empty(), "pop_and_run() on empty event queue");
  const HeapEntry top = heap_.top();
  heap_.pop();
  Slot& slot = slots_[top.id];
  EventCallback cb = std::move(slot.cb);
  slot.cb = nullptr;
  slot.live = false;
  --live_count_;
  free_slots_.push_back(top.id);
  cb();
  return top.when;
}

void EventQueue::clear() {
  heap_ = {};
  slots_.clear();
  free_slots_.clear();
  live_count_ = 0;
}

}  // namespace hpcs::sim
