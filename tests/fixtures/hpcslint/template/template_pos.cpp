// Template-member taint fixture (positive): Sampler<T>::sample() reads the
// steady clock, and poll() calls it through a Sampler<double>& parameter.
// Template-aware resolution must strip the <double> argument list, resolve
// the receiver to the Sampler class template, and taint poll() through the
// member call. This TU sits in the kern namespace, so det-taint applies.
#include <chrono>

namespace hpcs::kern {

template <typename T>
class Sampler {
 public:
  T sample() {
    return static_cast<T>(
        std::chrono::steady_clock::now().time_since_epoch().count());
  }
};

double poll(Sampler<double>& s) { return s.sample(); }

}  // namespace hpcs::kern
