// Dist-purity fixture, negative twin of machine_pos.cpp: the same shape,
// but the state machine is driven from a now_ms parameter and the file
// write sits inside a declared HPCS_HOST region. Nothing may be reported.
#include <cstdio>

namespace hpcs::dist {

class Coordinator {
 public:
  void step(long long now_ms);
  void checkpoint();
  long long deadline_ms_ = 0;
  int epoch_ = 0;
};

void Coordinator::step(long long now_ms) {
  deadline_ms_ = now_ms + 50;
  ++epoch_;
}

// HPCS_HOST_BEGIN — checkpoint persistence: writes an already-decided epoch
// counter to the host filesystem; never feeds back into protocol decisions.
void Coordinator::checkpoint() {
  std::FILE* f = std::fopen("epoch.bin", "wb");
  if (f != nullptr) {
    std::fwrite(&epoch_, sizeof(epoch_), 1, f);
    std::fclose(f);
  }
}
// HPCS_HOST_END

}  // namespace hpcs::dist
