// Callback value-flow fixture (positive): a clock-reading lambda is passed
// as an argument to Queue::schedule, whose parameter is an InplaceFunction.
// The dispatch site (schedule) must be flagged: the callable runs inside it.
// arm() is flagged too — it holds the callable — but the load-bearing
// assertion is that taint crosses the argument boundary into the callee.
#include <chrono>

namespace hpcs::sim {

template <typename Sig>
class InplaceFunction {
 public:
  void bind() {}
};

class Queue {
 public:
  void schedule(InplaceFunction<void()> fn);
  int depth_ = 0;
};

void Queue::schedule(InplaceFunction<void()> fn) {
  fn.bind();
  ++depth_;
}

void arm(Queue& q) {
  q.schedule([] {
    static long long t = 0;
    t = std::chrono::steady_clock::now().time_since_epoch().count();
  });
}

}  // namespace hpcs::sim
