#pragma once
// BT-MZ-like workload (paper §V-C): NAS Block Tri-diagonal, Multi-Zone.
// Every rank computes on its (uneven) set of zones, then exchanges boundary
// data with its ring neighbours using mpi_isend/mpi_irecv and waits with
// mpi_waitall — so each rank synchronizes with its neighbours, not with the
// whole world. The communication phase is ~0.1% of the execution time.
//
// Calibration (Table V, class A / 200 iterations): baseline utilizations
// 17.63 / 29.85 / 66.09 / 99.85 % and 94.97 s execution time give per-rank
// zone loads proportional to those utilizations with the heaviest rank at
// ~0.31e9 work units per iteration.

#include <cstdint>
#include <memory>
#include <vector>

#include "workloads/metbench.h"

namespace hpcs::wl {

struct BtMzConfig {
  int iterations = 200;
  /// Per-rank compute per iteration (work units). Default calibrated from
  /// Table V's baseline utilization profile.
  /// P3 is nudged slightly above the paper's 66.09% because it sits exactly
  /// on the LOW_UTIL=65 classification boundary; the kernel-side iteration
  /// utilization reads ~1.5 points below the PARAVER whole-run number.
  std::vector<double> zone_loads = {0.0545e9, 0.0923e9, 0.2115e9, 0.3087e9};
  /// Boundary-exchange payload per neighbour per iteration.
  std::int64_t exchange_bytes = 128 * 1024;
};

ProgramSet make_btmz(const BtMzConfig& cfg);

}  // namespace hpcs::wl
