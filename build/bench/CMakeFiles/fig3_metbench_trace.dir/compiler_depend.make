# Empty compiler generated dependencies file for fig3_metbench_trace.
# This may be replaced when dependencies are built.
