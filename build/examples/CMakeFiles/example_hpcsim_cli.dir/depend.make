# Empty dependencies file for example_hpcsim_cli.
# This may be replaced when dependencies are built.
