# Empty compiler generated dependencies file for example_cluster_gang.
# This may be replaced when dependencies are built.
