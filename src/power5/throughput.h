#pragma once
// Decode-share → per-context throughput model (DESIGN.md §2).
//
// The paper's lever is the decode-slot share of Table I; what the scheduler
// ultimately cares about is each context's instruction throughput relative
// to single-thread (ST) mode. Real POWER5 measurements (the companion
// study [4] and the utilization columns of Tables III and V) show a strongly
// CONCAVE speed-vs-share curve: a thread with only a quarter of the decode
// slots still reaches ~85% of its equal-share speed (it was not decode-bound
// to begin with), while at 1/8 of the slots it falls off a cliff (~3.4x
// slower) — the paper's conclusion 1 ("to gain X% the sibling may lose
// 10X%"). We therefore model speed(share) as a piecewise-linear curve
// through calibrated anchor points:
//
//   share : 1/8    1/4    1/2    3/4    7/8
//   speed : 0.19   0.55   0.65   0.73   0.76
//
// calibrated so that (a) equal priorities give the typical 1.3x SMT
// throughput, (b) a +/-2 priority gap cancels MetBench's 4:1 imbalance with
// a ~13% gain (Table III), and (c) the BT-MZ static assignment 4/4/5/6 with
// complementary pairing reproduces Table V's utilization profile
// (70.6 / 42.2 / 61.0 / 99.9).

#include <cstdint>
#include <vector>

#include "power5/hw_priority.h"

namespace hpcs::p5 {

/// Tunable parameters of the throughput model. Defaults are calibrated in
/// DESIGN.md §2 against the paper's Tables III-V shapes.
struct ThroughputParams {
  /// Anchor points of the speed(share) curve; linear interpolation between
  /// them. Must be sorted by share and equal-length.
  std::vector<double> share_points = {0.0,    1.0 / 64, 1.0 / 32, 1.0 / 16, 0.125,
                                      0.25,   0.5,      0.75,     0.875,    15.0 / 16,
                                      31.0 / 32, 1.0};
  std::vector<double> speed_points = {0.0,  0.04, 0.06, 0.10, 0.19, 0.55,
                                      0.65, 0.73, 0.76, 0.77, 0.775, 0.78};
  double st_speed = 1.0;        ///< speed in single-thread mode (true snooze)
  double background_fg = 0.98;  ///< foreground speed when sibling runs at priority 1
  double background_bg = 0.15;  ///< background (priority 1) thread speed
  /// Hardware priority the *idle* context effectively contends at, modeling
  /// the Linux/POWER5 spin idle loop with SMT snooze disabled
  /// (smt_snooze_delay = -1), the common HPC setting the paper's numbers
  /// imply: the Table III baseline shows NO single-thread speedup while the
  /// light worker waits (25.3% utilization = exact 4:1 load ratio at equal
  /// speeds). Set to -1 to model a true snooze (context off -> ST mode).
  int idle_contention_prio = 4;
};

/// Throughput of the two contexts of one core, relative to ST mode.
struct CoreSpeeds {
  double a = 0.0;
  double b = 0.0;
};

/// Interpolated speed for a given decode share.
[[nodiscard]] double speed_for_share(const ThroughputParams& p, double share);

/// Precomputed uniform-grid accelerator for speed_for_share. The grid maps a
/// share to the anchor segment containing it in O(1), then applies the exact
/// same comparisons and interpolation arithmetic as the linear scan — results
/// are bit-identical, only the segment search is constant-time. Build once
/// per ThroughputParams (SmtCore does this at construction) and reuse; the
/// hot path is every hardware-priority write and every active/snooze
/// transition of every core.
class SpeedLut {
 public:
  SpeedLut() = default;
  explicit SpeedLut(const ThroughputParams& p);

  /// Same value speed_for_share(p, share) would return for the params this
  /// LUT was built from.
  [[nodiscard]] double operator()(double share) const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
  /// cell index -> first anchor segment whose upper bound can contain a
  /// share in that cell.
  std::vector<std::uint32_t> seg_;
  double scale_ = 0.0;
};

/// A POWER6-style parameter preset (the paper notes POWER6 "provides a
/// similar prioritization mechanism"). POWER6 is in-order, so threads hide
/// less of each other's stalls: the equal-share point is lower (~0.58) and
/// the priority lever steeper on both sides.
[[nodiscard]] ThroughputParams power6_params();

/// A CELL-like preset (3 coarse priority levels, paper §I): a flatter,
/// stepped curve — useful for studying how lever granularity affects the
/// balanceable imbalance range.
[[nodiscard]] ThroughputParams cell_params();

/// Per-context speeds for contexts running at priorities `a` and `b`.
/// `a_active` / `b_active` state whether each context currently executes a
/// (non-idle) task. An inactive context normally keeps contending at
/// idle_contention_prio (spin idle); an inactive context that has *snoozed*
/// (`x_snoozed`) has ceded the core entirely — the sibling runs in ST mode.
[[nodiscard]] CoreSpeeds context_speeds(const ThroughputParams& p, HwPrio a, bool a_active,
                                        HwPrio b, bool b_active, bool a_snoozed = false,
                                        bool b_snoozed = false);

/// LUT-accelerated variant: identical results, with the share->speed
/// interpolation served from `lut` (which must have been built from `p`).
[[nodiscard]] CoreSpeeds context_speeds(const ThroughputParams& p, const SpeedLut& lut,
                                        HwPrio a, bool a_active, HwPrio b, bool b_active,
                                        bool a_snoozed = false, bool b_snoozed = false);

/// Decode share of context A per Table I (0.5 at equal priorities,
/// (R-1)/R vs 1/R otherwise). Only meaningful for regular priorities.
[[nodiscard]] double decode_share_a(HwPrio a, HwPrio b);

}  // namespace hpcs::p5
