// Reproduces Table IV: MetBenchVar — the dynamic workload whose imbalance
// reverses every k=15 iterations. The static prioritization (tuned for the
// first period) backfires in the reversed period; HPCSched re-balances
// within a few iterations after every switch.

#include "bench_common.h"
#include "bench_dist.h"

int main(int argc, char** argv) {
  using namespace hpcs;
  using analysis::SchedMode;

  bench::init_logging(argc, argv);
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  const bench::ObsOptions obs = bench::parse_obs_options(argc, argv);
  const bench::DistContext dist = bench::parse_dist_options(argc, argv);
  bench::reject_dist_incompatible(dist, obs);
  bench::maybe_serve_dist_worker(dist);
  const auto e = analysis::MetBenchVarExperiment::paper();
  const std::vector<SchedMode> modes = {SchedMode::kBaselineCfs, SchedMode::kStatic,
                                        SchedMode::kUniform, SchedMode::kAdaptive};

  std::printf("=== Table IV: MetBenchVar characterization (k=15, 45 iterations) ===\n\n");
  exp::EngineStats host{};
  auto results = bench::run_modes_dist(
      dist, "table4_metbenchvar", jobs, modes,
      [&e, &obs](SchedMode m) {
        return analysis::run_metbenchvar(e, m, /*trace=*/false, /*seed=*/1, obs.cfg);
      },
      &host, /*seed=*/1, obs);
  auto& baseline = results[0];
  auto& stat = results[1];
  auto& uniform = results[2];
  auto& adaptive = results[3];

  bench::print_side_by_side(baseline,
                            analysis::paper_reference_metbenchvar(SchedMode::kBaselineCfs));
  std::printf("\n");
  bench::print_side_by_side(stat, analysis::paper_reference_metbenchvar(SchedMode::kStatic));
  std::printf("\n");
  bench::print_side_by_side(uniform, analysis::paper_reference_metbenchvar(SchedMode::kUniform));
  std::printf("\n");
  bench::print_side_by_side(adaptive,
                            analysis::paper_reference_metbenchvar(SchedMode::kAdaptive));
  std::printf("\n");

  bench::print_improvement_summary("Static vs baseline", baseline, stat, 368.17, 338.40);
  bench::print_improvement_summary("Uniform vs baseline", baseline, uniform, 368.17, 327.17);
  bench::print_improvement_summary("Adaptive vs baseline", baseline, adaptive, 368.17, 326.41);

  std::printf("\nbehaviour-change history resets: uniform=%lld adaptive=%lld\n",
              static_cast<long long>(uniform.hpc_history_resets),
              static_cast<long long>(adaptive.hpc_history_resets));

  std::vector<analysis::TableSection> sections = {
      {"Baseline", &baseline, {4, 4, 4, 4}},
      {"Static", &stat, {4, 6, 4, 6}},
      {"Uniform", &uniform, {}},
      {"Adaptive", &adaptive, {}},
  };
  std::printf("\n%s\n",
              analysis::render_characterization_table("Table IV (measured)", sections).c_str());
  bench::write_table_json("table4_metbenchvar", jobs, modes, results);
  bench::write_obs_outputs("table4_metbenchvar", obs, jobs, modes, results, &host);
  return 0;
}
