// Seeded lockset race, TU 1 of 2: Counter::start() submits a lambda to a
// thread pool, and the lambda bumps hits_ while holding mu_. The matching
// bare read lives in lockset_pos.cpp — only the cross-TU link step can see
// that the locksets disagree.
struct Mutex {};
struct MutexLock { explicit MutexLock(Mutex& m); };
struct ThreadPool {
  template <class F>
  void submit(F f);
};

namespace fx {

class Counter {
 public:
  void start();
  void report();

 private:
  Mutex mu_;
  ThreadPool pool_;
  long hits_ = 0;
};

inline void Counter::start() {
  pool_.submit([this] {
    MutexLock l(mu_);
    hits_ += 1;
  });
}

}  // namespace fx
