// Trace module tests: interval construction from state transitions, compute
// fractions, Gantt rendering, CSV export formats.

#include <gtest/gtest.h>

#include <sstream>

#include "kernel/task.h"
#include "trace/csv.h"
#include "trace/gantt.h"
#include "trace/tracer.h"

namespace hpcs::trace {
namespace {

SimTime at_ms(std::int64_t ms) { return SimTime(ms * 1000000); }

struct TraceFixture {
  kern::Task task{7, "rank0", kern::Policy::kHpcRr};
  Tracer tracer;

  /// Feed a wake/sleep/wake/... pattern.
  void feed(std::initializer_list<std::pair<std::int64_t, kern::TaskState>> events) {
    for (const auto& [ms, state] : events) tracer.on_state(at_ms(ms), task, state);
  }
};

TEST(Tracer, BuildsComputeWaitIntervals) {
  TraceFixture f;
  f.feed({{0, kern::TaskState::kRunnable},
          {10, kern::TaskState::kSleeping},
          {30, kern::TaskState::kRunnable},
          {40, kern::TaskState::kExited}});
  const auto& iv = f.tracer.intervals(7);
  ASSERT_EQ(iv.size(), 3u);
  EXPECT_EQ(iv[0].activity, Activity::kCompute);
  EXPECT_EQ(iv[0].begin, at_ms(0));
  EXPECT_EQ(iv[0].end, at_ms(10));
  EXPECT_EQ(iv[1].activity, Activity::kWait);
  EXPECT_EQ(iv[2].activity, Activity::kCompute);
  EXPECT_EQ(iv[2].end, at_ms(40));
}

TEST(Tracer, ComputeFraction) {
  TraceFixture f;
  f.feed({{0, kern::TaskState::kRunnable},
          {25, kern::TaskState::kSleeping},
          {100, kern::TaskState::kRunnable},
          {110, kern::TaskState::kExited}});
  EXPECT_NEAR(f.tracer.compute_fraction(7, at_ms(0), at_ms(100)), 0.25, 1e-9);
  EXPECT_NEAR(f.tracer.compute_fraction(7, at_ms(0), at_ms(110)), 35.0 / 110.0, 1e-9);
  EXPECT_NEAR(f.tracer.compute_fraction(7, at_ms(50), at_ms(60)), 0.0, 1e-9);
  // Unknown pid: zero.
  EXPECT_DOUBLE_EQ(f.tracer.compute_fraction(99, at_ms(0), at_ms(10)), 0.0);
}

TEST(Tracer, FinalizeClosesOpenInterval) {
  TraceFixture f;
  f.feed({{0, kern::TaskState::kRunnable}});
  f.tracer.finalize(at_ms(50));
  const auto& iv = f.tracer.intervals(7);
  ASSERT_EQ(iv.size(), 1u);
  EXPECT_EQ(iv[0].end, at_ms(50));
}

TEST(Tracer, PrioAndIterationEvents) {
  TraceFixture f;
  f.tracer.on_hw_prio(at_ms(5), f.task, p5::HwPrio::kHigh);
  f.tracer.on_iteration(at_ms(10), f.task, 1, 25.0, 30.0);
  f.tracer.on_wakeup_latency(at_ms(10), f.task, Duration::microseconds(42));
  ASSERT_EQ(f.tracer.prio_events(7).size(), 1u);
  EXPECT_EQ(f.tracer.prio_events(7)[0].prio, 6);
  ASSERT_EQ(f.tracer.iteration_events(7).size(), 1u);
  EXPECT_EQ(f.tracer.iteration_events(7)[0].iteration, 1);
  EXPECT_NEAR(f.tracer.wakeup_latency_us(7).mean(), 42.0, 1e-9);
}

TEST(Gantt, RendersComputeAndWaitCells) {
  TraceFixture f;
  f.feed({{0, kern::TaskState::kRunnable},
          {50, kern::TaskState::kSleeping},
          {100, kern::TaskState::kRunnable},
          {110, kern::TaskState::kExited}});
  GanttOptions opt;
  opt.width = 10;
  opt.show_priorities = false;
  opt.end = at_ms(100);
  const std::string g = render_gantt(f.tracer, {7}, {"rank0"}, opt);
  // First half computing, second half waiting.
  EXPECT_NE(g.find("#####....."), std::string::npos) << g;
  EXPECT_NE(g.find("rank0"), std::string::npos);
}

TEST(Gantt, ShowsNonDefaultPriorities) {
  TraceFixture f;
  f.feed({{0, kern::TaskState::kRunnable}});
  f.tracer.on_hw_prio(at_ms(40), f.task, p5::HwPrio::kHigh);
  f.tracer.finalize(at_ms(100));
  GanttOptions opt;
  opt.width = 10;
  const std::string g = render_gantt(f.tracer, {7}, {"rank0"}, opt);
  EXPECT_NE(g.find("666666"), std::string::npos) << g;
}

TEST(Gantt, EmptyTrace) {
  Tracer t;
  EXPECT_EQ(render_gantt(t, {}, {}), "(empty trace)\n");
}

TEST(Csv, IntervalExport) {
  TraceFixture f;
  f.feed({{0, kern::TaskState::kRunnable}, {10, kern::TaskState::kExited}});
  std::ostringstream os;
  write_intervals_csv(os, f.tracer, {7}, {"rank0"});
  const std::string s = os.str();
  EXPECT_NE(s.find("pid,label,begin_s,end_s,activity"), std::string::npos);
  EXPECT_NE(s.find("7,rank0,0,0.01,compute"), std::string::npos) << s;
}

TEST(Csv, IterationExport) {
  TraceFixture f;
  f.tracer.on_iteration(at_ms(2000), f.task, 3, 25.5, 40.25);
  std::ostringstream os;
  write_iterations_csv(os, f.tracer, {7}, {"rank0"});
  EXPECT_NE(os.str().find("7,rank0,3,2,25.5,40.25"), std::string::npos) << os.str();
}

TEST(Csv, PriorityExport) {
  TraceFixture f;
  f.tracer.on_hw_prio(at_ms(500), f.task, p5::HwPrio::kMediumHigh);
  std::ostringstream os;
  write_priorities_csv(os, f.tracer, {7}, {"rank0"});
  EXPECT_NE(os.str().find("7,rank0,0.5,5"), std::string::npos) << os.str();
}

}  // namespace
}  // namespace hpcs::trace
