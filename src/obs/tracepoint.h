#pragma once
// Tracepoints: kernel-ftrace-style record sites on the simulator's hot paths.
//
// A tracepoint id is a compile-time constant (the kTp* enumerators below;
// hpcslint's `tracepoint-name` rule rejects record sites that pass anything
// else), its record is a fixed-size 32-byte entry, and entries land in a
// per-CPU ring buffer that wraps by overwriting the oldest record (dropped
// entries are counted, never silently lost). A record site is the
// HPCS_TRACEPOINT macro: when observability is off the recorder pointer is
// null and the whole site compiles down to a single predictable branch — no
// call, no argument evaluation side effects beyond the operands themselves.

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace hpcs::obs {

/// Every tracepoint in the simulator. Append only — the catalogue order is
/// the registration order of the per-tracepoint hit counters, which the
/// deterministic-manifest contract depends on (docs/observability.md).
enum class TpId : std::uint16_t {
  kTpSchedSwitch = 0,    ///< context switch: a0 = next pid, a1 = prev pid (-1 = idle)
  kTpWake,               ///< task wakeup enqueued: a0 = pid, a1 = 0
  kTpMigrate,            ///< task migrated: a0 = pid, a1 = destination cpu
  kTpBalancePull,        ///< balancer pulled a task: a0 = pid, a1 = source cpu
  kTpHwPrio,             ///< hardware priority request: a0 = pid, a1 = new prio
  kTpHpcIteration,       ///< HPC iteration closed: a0 = pid, a1 = iteration
  kTpHpcImbalance,       ///< imbalance detected: a0 = pid, a1 = spread * 100
  kTpHpcPrioChange,      ///< heuristic changed a priority: a0 = pid, a1 = prio
  kTpHpcHistoryReset,    ///< behaviour change reset a task's history: a0 = pid
  // Sweep-fabric sites (src/dist). `when` is the fabric's now_ms scaled to
  // nanoseconds — deterministic under the loopback transport's explicit
  // clock, host wall-clock under real TCP (rings/sidecars only; these never
  // enter a deterministic manifest).
  kTpDistAssign,         ///< shard assigned / accepted: a0 = shard, a1 = attempt|worker
  kTpDistRow,            ///< row streamed: a0 = point index, a1 = shard
  kTpDistRetry,          ///< shard requeued after worker death: a0 = shard, a1 = attempts
  kTpDistSteal,          ///< shard stolen from a slow owner: a0 = shard, a1 = prev owner
  kTpDistHeartbeat,      ///< heartbeat seen/sent: a0 = worker index, a1 = 0
  // Sweep-service sites (src/svc) and result-cache probes: same now_ms ->
  // nanosecond clock convention as the dist_* sites above.
  kTpSvcSubmit,          ///< job accepted into the queue: a0 = job id, a1 = points
  kTpSvcJobStart,        ///< job admitted to a running slot: a0 = job id, a1 = points
  kTpSvcJobDone,         ///< job reached a terminal state: a0 = job id, a1 = state
  kTpCacheHit,           ///< cache probe verified a blob: a0 = job id, a1 = index
  kTpCacheMiss,          ///< cache probe found nothing usable: a0 = job id, a1 = index
  kTpCount
};

inline constexpr std::size_t kTpCount = static_cast<std::size_t>(TpId::kTpCount);

/// Stable short name ("sched_switch", ...) used for metric names and trace
/// event labels.
[[nodiscard]] const char* tp_name(TpId id);

/// One fixed-size tracepoint record.
struct TraceEntry {
  SimTime t;
  std::uint32_t tp = 0;
  std::int32_t cpu = 0;
  std::int64_t a0 = 0;
  std::int64_t a1 = 0;
};
static_assert(sizeof(TraceEntry) == 32, "tracepoint entries are fixed-size");

/// Fixed-capacity ring of TraceEntry records. push() overwrites the oldest
/// entry once full; entries() returns the retained records oldest-first.
class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two (min 2) so the wrap index is
  /// a mask, not a division.
  explicit TraceRing(std::size_t capacity);

  void push(const TraceEntry& e) {
    buf_[head_ & mask_] = e;
    ++head_;
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  /// Records currently retained (<= capacity()).
  [[nodiscard]] std::size_t size() const {
    return head_ < buf_.size() ? static_cast<std::size_t>(head_) : buf_.size();
  }
  /// Total records ever pushed.
  [[nodiscard]] std::uint64_t pushed() const { return head_; }
  /// Records lost to wrapping.
  [[nodiscard]] std::uint64_t dropped() const {
    return head_ < buf_.size() ? 0 : head_ - buf_.size();
  }

  /// Retained records, oldest first.
  [[nodiscard]] std::vector<TraceEntry> entries() const;

 private:
  std::vector<TraceEntry> buf_;
  std::uint64_t mask_ = 0;
  std::uint64_t head_ = 0;  ///< next write position (monotonic)
};

}  // namespace hpcs::obs

/// Record site: a single branch on the recorder pointer when disabled. The
/// id MUST be a kTp* compile-time constant (hpcslint: tracepoint-name).
#define HPCS_TRACEPOINT(rec, id, when, cpu, arg0, arg1)               \
  do {                                                                \
    if ((rec) != nullptr) {                                           \
      (rec)->record((id), (when), (cpu), (arg0), (arg1));             \
    }                                                                 \
  } while (0)
