#pragma once
// CSV export of trace data: state intervals, per-iteration utilization
// series (the data behind Figures 3-6) and priority timelines.

#include <ostream>
#include <string>
#include <vector>

#include "trace/tracer.h"

namespace hpcs::trace {

/// One row per interval: pid,label,begin_s,end_s,activity.
void write_intervals_csv(std::ostream& os, const Tracer& tracer, const std::vector<Pid>& pids,
                         const std::vector<std::string>& labels);

/// One row per completed iteration: pid,label,iteration,time_s,util_last,util_metric.
void write_iterations_csv(std::ostream& os, const Tracer& tracer, const std::vector<Pid>& pids,
                          const std::vector<std::string>& labels);

/// One row per priority change: pid,label,time_s,prio.
void write_priorities_csv(std::ostream& os, const Tracer& tracer, const std::vector<Pid>& pids,
                          const std::vector<std::string>& labels);

}  // namespace hpcs::trace
