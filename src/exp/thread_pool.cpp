#include "exp/thread_pool.h"

#include <utility>

namespace hpcs::exp {

ThreadPool::ThreadPool(unsigned workers) {
  // Size the per-worker counters before any thread exists: worker threads
  // only ever index their own slot, so the vector itself is never resized
  // concurrently.
  {
    MutexLock lock(mu_);
    stats_.per_worker_executed.assign(workers, 0);
  }
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(job));
    ++stats_.submitted;
    const auto depth = static_cast<std::int64_t>(queue_.size());
    if (depth > stats_.max_queue_depth) stats_.max_queue_depth = depth;
  }
  work_cv_.notify_one();
}

PoolStats ThreadPool::stats() {
  MutexLock lock(mu_);
  return stats_;
}

void ThreadPool::wait_idle() {
  if (threads_.empty()) {
    // Degenerate pool: run everything inline, in submission order.
    for (;;) {
      std::function<void()> job;
      {
        MutexLock lock(mu_);
        if (queue_.empty()) return;
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
      {
        MutexLock lock(mu_);
        ++stats_.executed;
      }
    }
  }
  MutexLock lock(mu_);
  while (!idle()) idle_cv_.wait(mu_);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) work_cv_.wait(mu_);
      if (queue_.empty()) return;  // stop_ set and nothing left to do
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      MutexLock lock(mu_);
      --in_flight_;
      ++stats_.executed;
      ++stats_.per_worker_executed[worker_index];
    }
    idle_cv_.notify_all();
  }
}

}  // namespace hpcs::exp
