file(REMOVE_RECURSE
  "CMakeFiles/example_custom_sched_class.dir/custom_sched_class.cpp.o"
  "CMakeFiles/example_custom_sched_class.dir/custom_sched_class.cpp.o.d"
  "example_custom_sched_class"
  "example_custom_sched_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_sched_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
