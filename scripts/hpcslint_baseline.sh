#!/usr/bin/env bash
# Regenerate tools/hpcslint/baseline.sarif.json — the accepted-findings
# baseline the CI hpcslint-sarif job gates against. Run from the repo root
# after intentionally accepting a new finding (prefer fixing the finding or
# an inline HPCSLINT-ALLOW; the baseline is for findings that are real but
# deliberately deferred). Requires a configured build directory so
# compile_commands.json exists.
set -euo pipefail

BUILD_DIR="${1:-build}"

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "error: $BUILD_DIR/compile_commands.json not found." >&2
  echo "Configure first: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

cmake --build "$BUILD_DIR" --target hpcslint -j >/dev/null

# Exit 1 (findings exist) is fine here — the point of a baseline is to record
# them; only usage/io errors (exit 2) should abort.
rc=0
"$BUILD_DIR/tools/hpcslint/hpcslint" \
  --compile-commands "$BUILD_DIR/compile_commands.json" \
  --proto-spec tools/hpcslint/dist_protocol_spec.json \
  --sarif tools/hpcslint/baseline.sarif.json >/dev/null || rc=$?
if [[ $rc -ge 2 ]]; then
  echo "error: hpcslint failed (exit $rc)" >&2
  exit "$rc"
fi

count=$(grep -c '"ruleId"' tools/hpcslint/baseline.sarif.json || true)
echo "wrote tools/hpcslint/baseline.sarif.json ($count baselined finding(s))"
echo "Review the diff before committing: every entry is a finding CI will ignore."
