#include "common/log.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hpcs {
namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

bool parse_log_level(const char* s, LogLevel& out) {
  if (s == nullptr || *s == '\0') return false;
  std::string lower;
  for (const char* p = s; *p != '\0'; ++p) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "debug" || lower == "0") {
    out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning" || lower == "2") {
    out = LogLevel::kWarn;
  } else if (lower == "error" || lower == "3") {
    out = LogLevel::kError;
  } else if (lower == "off" || lower == "none" || lower == "4") {
    out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

void init_log_level_from_env() {
  LogLevel lvl;
  if (parse_log_level(std::getenv("HPCS_LOG_LEVEL"), lvl)) set_log_level(lvl);
}

void log_message(LogLevel level, const char* tag, const char* fmt, ...) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s][%s] ", level_name(level), tag);
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
  // Errors are rare and usually precede an abort; make sure they land even
  // if stderr is block-buffered (e.g. redirected to a file in CI).
  if (level >= LogLevel::kError) std::fflush(stderr);
}

}  // namespace hpcs
