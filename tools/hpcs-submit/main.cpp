// hpcs-submit: command-line client for hpcs-sweepd. Speaks the svc wire
// protocol (svc/wire.h) over the daemon's client port.
//
//   hpcs-submit HOST:PORT --job NAME [--seed N] [--obs] [--tenant T]
//                         [--no-stream]          submit a sweep
//   hpcs-submit HOST:PORT --status ID            query one job
//   hpcs-submit HOST:PORT --cancel ID            cancel one job
//   hpcs-submit HOST:PORT --shutdown             drain the daemon and exit
//
// The default verb submits and then subscribes (STREAM_ROWS): every
// committed row is decoded back into a RunResult and printed as it lands —
// whether the daemon computed it locally, a worker sent it, or the result
// cache replayed it, the bytes (and so this output) are identical.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/dist_jobs.h"
#include "analysis/experiment.h"
#include "analysis/run_serialize.h"
#include "dist/host/dist_options.h"
#include "dist/host/host_clock.h"
#include "dist/host/tcp_transport.h"
#include "svc/protocol.h"

namespace {

using namespace hpcs;

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "usage: hpcs-submit HOST:PORT --job NAME [--seed N] [--obs]\n"
               "                   [--tenant T] [--no-stream]\n"
               "       hpcs-submit HOST:PORT --status ID\n"
               "       hpcs-submit HOST:PORT --cancel ID\n"
               "       hpcs-submit HOST:PORT --shutdown\n");
  std::exit(code);
}

// HPCS_HOST_BEGIN — a blocking one-shot client: argv, connect, frame pump.

/// Block until one whole frame arrives (or the server goes away / the
/// decoder flags corruption). Exits 1 on failure: a half-answered client
/// has nothing useful left to do.
svc::SvcFrame recv_frame(dist::Connection& conn, svc::SvcFrameDecoder& dec) {
  using dist::host::sleep_ms;
  svc::SvcFrame f;
  for (;;) {
    const auto r = dec.next(f);
    if (r == svc::SvcFrameDecoder::Result::kFrame) return f;
    if (r == svc::SvcFrameDecoder::Result::kError) {
      std::fprintf(stderr, "error: corrupt server frame: %s\n", dec.error().c_str());
      std::exit(1);
    }
    const std::string bytes = conn.poll_recv();
    if (!bytes.empty()) {
      dec.feed(bytes);
      continue;
    }
    if (conn.closed()) {
      std::fprintf(stderr, "error: server closed the connection\n");
      std::exit(1);
    }
    sleep_ms(1);
  }
}

void send_frame(dist::Connection& conn, const svc::SvcFrame& f) {
  if (!conn.send(svc::encode_svc_frame(f))) {
    std::fprintf(stderr, "error: server closed the connection\n");
    std::exit(1);
  }
}

int print_row(const svc::SvcRow& row) {
  analysis::RunResult r;
  if (!analysis::deserialize_run_result(row.payload, r)) {
    std::fprintf(stderr, "error: job %llu row %u: malformed payload\n",
                 static_cast<unsigned long long>(row.job_id), row.index);
    return 1;
  }
  std::printf("job %llu row %u: %-18s exec %.3f s (util %.3f..%.3f)\n",
              static_cast<unsigned long long>(row.job_id), row.index,
              analysis::sched_mode_name(r.mode), r.exec_time.sec(), r.min_util(),
              r.max_util());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string target;
  std::string job;
  std::string tenant = "default";
  std::uint64_t seed = 42;
  bool obs_on = false;
  bool stream = true;
  std::uint64_t status_id = 0;
  std::uint64_t cancel_id = 0;
  bool do_status = false;
  bool do_cancel = false;
  bool do_shutdown = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(0);
    } else if (std::strcmp(a, "--job") == 0 && i + 1 < argc) {
      job = argv[++i];
    } else if (std::strcmp(a, "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(a, "--obs") == 0) {
      obs_on = true;
    } else if (std::strcmp(a, "--tenant") == 0 && i + 1 < argc) {
      tenant = argv[++i];
    } else if (std::strcmp(a, "--no-stream") == 0) {
      stream = false;
    } else if (std::strcmp(a, "--status") == 0 && i + 1 < argc) {
      do_status = true;
      status_id = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(a, "--cancel") == 0 && i + 1 < argc) {
      do_cancel = true;
      cancel_id = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(a, "--shutdown") == 0) {
      do_shutdown = true;
    } else if (a[0] == '-') {
      usage(2);
    } else if (target.empty()) {
      target = a;
    } else {
      usage(2);
    }
  }
  if (target.empty()) usage(2);
  const int verbs = (job.empty() ? 0 : 1) + (do_status ? 1 : 0) + (do_cancel ? 1 : 0) +
                    (do_shutdown ? 1 : 0);
  if (verbs != 1) usage(2);

  // Reuse the worker-spec parser for HOST:PORT validation.
  dist::host::DistOptions opt;
  std::string err;
  if (!dist::host::parse_dist_spec("worker:" + target, opt, err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 2;
  }
  auto conn = dist::host::tcp_connect(opt.hostname, opt.port, err);
  if (conn == nullptr) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  svc::SvcFrameDecoder dec;

  if (do_status) {
    send_frame(*conn, svc::encode_job_status({status_id}));
    const svc::SvcFrame f = recv_frame(*conn, dec);
    svc::Status st;
    if (f.type != svc::SvcFrameType::kStatus || !svc::decode_status(f, st)) {
      std::fprintf(stderr, "error: unexpected %s reply\n", svc::svc_frame_type_name(f.type));
      return 1;
    }
    if (!st.known) {
      std::printf("job %llu: unknown\n", static_cast<unsigned long long>(st.job_id));
      return 1;
    }
    std::printf("job %llu: %s, %llu/%llu rows (%llu cached)\n",
                static_cast<unsigned long long>(st.job_id), svc::job_state_name(st.state),
                static_cast<unsigned long long>(st.done),
                static_cast<unsigned long long>(st.total),
                static_cast<unsigned long long>(st.cached));
    return 0;
  }

  if (do_cancel) {
    send_frame(*conn, svc::encode_cancel({cancel_id}));
    const svc::SvcFrame f = recv_frame(*conn, dec);
    svc::CancelAck ack;
    if (f.type != svc::SvcFrameType::kCancelAck || !svc::decode_cancel_ack(f, ack)) {
      std::fprintf(stderr, "error: unexpected %s reply\n", svc::svc_frame_type_name(f.type));
      return 1;
    }
    std::printf("job %llu: %s\n", static_cast<unsigned long long>(ack.job_id),
                ack.ok ? "cancelled" : "not cancellable");
    return ack.ok ? 0 : 1;
  }

  if (do_shutdown) {
    send_frame(*conn, svc::encode_shutdown());
    const svc::SvcFrame f = recv_frame(*conn, dec);
    svc::ShutdownAck ack;
    if (f.type != svc::SvcFrameType::kShutdownAck || !svc::decode_shutdown_ack(f, ack)) {
      std::fprintf(stderr, "error: unexpected %s reply\n", svc::svc_frame_type_name(f.type));
      return 1;
    }
    std::printf("draining: %llu jobs remaining\n",
                static_cast<unsigned long long>(ack.jobs_remaining));
    return 0;
  }

  // Submit (and, by default, stream).
  svc::SubmitJob submit;
  submit.tenant = tenant;
  submit.job = job;
  obs::ObsConfig ocfg;
  ocfg.enabled = obs_on;
  submit.params = analysis::encode_job_params(seed, ocfg);
  send_frame(*conn, svc::encode_submit_job(submit));
  const svc::SvcFrame af = recv_frame(*conn, dec);
  svc::SubmitAck ack;
  if (af.type != svc::SvcFrameType::kSubmitAck || !svc::decode_submit_ack(af, ack)) {
    std::fprintf(stderr, "error: unexpected %s reply\n", svc::svc_frame_type_name(af.type));
    return 1;
  }
  if (!ack.accept) {
    std::fprintf(stderr, "error: rejected: %s\n", ack.reason.c_str());
    return 1;
  }
  std::printf("job %llu accepted: %s, %llu points\n",
              static_cast<unsigned long long>(ack.job_id), job.c_str(),
              static_cast<unsigned long long>(ack.count));
  if (!stream) return 0;

  send_frame(*conn, svc::encode_stream_rows({ack.job_id}));
  for (;;) {
    const svc::SvcFrame f = recv_frame(*conn, dec);
    if (f.type == svc::SvcFrameType::kRow) {
      svc::SvcRow row;
      if (!svc::decode_svc_row(f, row)) {
        std::fprintf(stderr, "error: malformed ROW frame\n");
        return 1;
      }
      if (print_row(row) != 0) return 1;
      continue;
    }
    if (f.type == svc::SvcFrameType::kJobDone) {
      svc::JobDone done;
      if (!svc::decode_job_done(f, done)) {
        std::fprintf(stderr, "error: malformed JOB_DONE frame\n");
        return 1;
      }
      std::printf("job %llu %s: %llu rows (%llu cached)\n",
                  static_cast<unsigned long long>(done.job_id),
                  svc::job_state_name(done.state),
                  static_cast<unsigned long long>(done.total),
                  static_cast<unsigned long long>(done.cached));
      return done.state == svc::JobState::kDone ? 0 : 1;
    }
    std::fprintf(stderr, "error: unexpected %s frame mid-stream\n",
                 svc::svc_frame_type_name(f.type));
    return 1;
  }
}

// HPCS_HOST_END
