#!/usr/bin/env bash
# CI pipeline: the full static-analysis + sanitizer matrix.
#
#   pass 1  release-strict   Release,        -Werror, hpcslint + ctest +
#                            bench smoke-diff against scripts/bench_golden.json
#   pass 2  asan-ubsan       RelWithDebInfo, -Werror, ASan+UBSan, ctest
#   pass 3  tsan             RelWithDebInfo, -Werror, TSan, ctest
#   pass 4  clang checks     (only if clang++ is installed) -Wthread-safety
#                            build, the thread-safety negative fixture must
#                            FAIL to compile, and clang-tidy if available
#
# Usage:
#   scripts/ci_sanitizers.sh              # full matrix
#   HPCS_CI_TSAN=0 scripts/ci_sanitizers.sh   # skip the TSan pass
#   HPCS_CI_FAST=1 scripts/ci_sanitizers.sh   # pass 1 only (pre-push check)
#
# Any lint finding, warning, test failure, sanitizer report, or golden-range
# miss fails the pipeline (set -e + -Werror + ctest exit codes).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc)"

configure_and_test() {
  local name="$1" build_dir="$2"; shift 2
  echo "=== pass: ${name} ==="
  cmake -B "${build_dir}" -S . -DHPCS_WERROR=ON "$@" >/dev/null
  cmake --build "${build_dir}" -j "${JOBS}"
  (cd "${build_dir}" && ctest --output-on-failure)
}

# --- pass 1: strict release build, lint, tests, bench smoke-diff ----------
configure_and_test "release-strict" build-ci -DCMAKE_BUILD_TYPE=Release

echo "=== hpcslint over src/ bench/ tests/ tools/ ==="
# Lint runs are wall-clock budgeted (HPCS_LINT_BUDGET seconds): hpcslint's
# contract is "fast enough to run on every build", and a resolver slipping
# into quadratic behaviour should fail CI, not quietly rot the dev loop.
LINT_BUDGET="${HPCS_LINT_BUDGET:-120}"
lint_t0="$(date +%s)"
./build-ci/tools/hpcslint/hpcslint \
  --proto-spec tools/hpcslint/dist_protocol_spec.json src bench tests tools

echo "=== hpcslint whole-program (compile_commands.json) vs baseline ==="
./build-ci/tools/hpcslint/hpcslint \
  --compile-commands build-ci/compile_commands.json \
  --proto-spec tools/hpcslint/dist_protocol_spec.json \
  --baseline tools/hpcslint/baseline.sarif.json
lint_elapsed="$(( $(date +%s) - lint_t0 ))"
echo "hpcslint runtime: ${lint_elapsed}s (budget ${LINT_BUDGET}s)"
if (( lint_elapsed > LINT_BUDGET )); then
  echo "ERROR: hpcslint exceeded its runtime budget (${lint_elapsed}s > ${LINT_BUDGET}s)"
  exit 1
fi

echo "=== bench smoke-diff vs golden ranges ==="
(cd build-ci/bench && ./table3_metbench >/dev/null && ./micro_simcore >/dev/null)

echo "=== observability smoke: manifests + Chrome trace ==="
# A parallel obs run must emit a schema-valid manifest pair, and a figure
# driver must produce a loadable Chrome-trace JSON. The manifests land in
# build-ci/bench where check_bench_json.py schema-validates them below.
# --obs-window turns on the v2 windowed series, which must be byte-identical
# for any --jobs value and must match the checked-in golden (tolerantly: the
# golden pins the trajectory, manifest_diff.py flags mid-run drift even when
# totals agree).
(cd build-ci/bench && ./table3_metbench --jobs 2 --obs --obs-window 10000000000 >/dev/null &&
  mkdir -p obs-j1 && cd obs-j1 &&
  ../table3_metbench --jobs 1 --obs --obs-window 10000000000 >/dev/null)
cmp build-ci/bench/MANIFEST_table3_metbench.json \
    build-ci/bench/obs-j1/MANIFEST_table3_metbench.json
echo "windowed manifest byte-identical: --jobs 1 vs --jobs 2"
python3 scripts/manifest_diff.py scripts/manifest_golden_v2.json \
  build-ci/bench/MANIFEST_table3_metbench.json
(cd build-ci/bench &&
  ./fig3_metbench_trace --obs-trace obs_fig3_trace.json >/dev/null)
python3 -c "
import json
doc = json.load(open('build-ci/bench/obs_fig3_trace.json'))
assert doc['traceEvents'], 'Chrome trace has no events'
print(f'Chrome trace loads: {len(doc[\"traceEvents\"])} events')
"

echo "=== dist-smoke: coordinator + 2 TCP workers vs serial ==="
# Byte-identity of the sweep fabric against the serial run, plus the
# fabric-sidecar schema checks and the result-cache cold/warm/corrupt pass.
# Full contract in scripts/dist_smoke.sh.
scripts/dist_smoke.sh build-ci

echo "=== svc-smoke: hpcs-sweepd + hpcs-submit + worker + cache replay ==="
# The sweep service's acceptance contract: concurrent tenants, a TCP
# worker, a byte-identical warm-cache resubmit, status/shutdown, and the
# v3 daemon sidecar. Full contract in scripts/svc_smoke.sh.
scripts/svc_smoke.sh build-ci

python3 scripts/check_bench_json.py scripts/bench_golden.json build-ci/bench

echo "=== bench-smoke: events/sec floors (>30% regression fails) ==="
python3 scripts/check_perf_floor.py scripts/perf_floor.json build-ci/bench

if [[ "${HPCS_CI_FAST:-0}" == "1" ]]; then
  echo "HPCS_CI_FAST=1: skipping sanitizer passes"
  echo "ci pipeline passed (fast mode)"
  exit 0
fi

# --- pass 2: ASan+UBSan ----------------------------------------------------
configure_and_test "asan-ubsan" build-asan \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DENABLE_SANITIZERS=ON

# --- pass 3: TSan (watches the parallel experiment engine) ----------------
if [[ "${HPCS_CI_TSAN:-1}" == "1" ]]; then
  configure_and_test "tsan" build-tsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHPCS_TSAN=ON
else
  echo "HPCS_CI_TSAN=0: skipping TSan pass"
fi

# --- pass 4: clang thread-safety analysis (if clang is available) ---------
if command -v clang++ >/dev/null 2>&1; then
  configure_and_test "clang-thread-safety" build-clang \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++

  echo "=== thread-safety negative fixture must FAIL to compile ==="
  if clang++ -std=c++20 -Isrc -fsyntax-only -Wthread-safety \
      -Werror=thread-safety tests/fixtures/thread_safety_negative.cpp \
      2>/tmp/hpcs_ts_negative.log; then
    echo "ERROR: thread_safety_negative.cpp compiled clean — the analysis is off"
    exit 1
  fi
  grep -q "thread-safety" /tmp/hpcs_ts_negative.log || {
    echo "ERROR: fixture failed for a reason other than -Wthread-safety:"
    cat /tmp/hpcs_ts_negative.log
    exit 1
  }
  echo "fixture rejected as expected (unguarded GUARDED_BY access)"

  if command -v clang-tidy >/dev/null 2>&1; then
    scripts/run_clang_tidy.sh build-clang
  else
    echo "clang-tidy not installed: skipping"
  fi
else
  echo "clang++ not installed: skipping thread-safety pass (gcc builds ignore the annotations)"
fi

echo "ci pipeline passed"
