# Empty dependencies file for example_custom_sched_class.
# This may be replaced when dependencies are built.
