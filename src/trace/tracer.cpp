#include "trace/tracer.h"

#include "common/check.h"

namespace hpcs::trace {
namespace {
const std::vector<Interval> kNoIntervals;
const std::vector<PrioEvent> kNoPrios;
const std::vector<IterationEvent> kNoIters;
const RunningStat kNoStat;
}  // namespace

Tracer::PerTask& Tracer::slot(const kern::Task& task, SimTime t) {
  auto [it, inserted] = tasks_.try_emplace(task.pid());
  if (inserted) {
    it->second.open_since = t;
    it->second.open_activity = Activity::kWait;  // tasks are born sleeping
    it->second.has_open = true;
  }
  return it->second;
}

void Tracer::on_state(SimTime t, const kern::Task& task, kern::TaskState new_state) {
  PerTask& p = slot(task, t);
  if (p.exited) return;
  const Activity next = new_state == kern::TaskState::kRunnable ? Activity::kCompute
                                                                : Activity::kWait;
  if (p.has_open && next == p.open_activity && new_state != kern::TaskState::kExited) return;
  if (p.has_open && t > p.open_since) {
    p.intervals.push_back(Interval{p.open_since, t, p.open_activity});
  }
  p.open_since = t;
  p.open_activity = next;
  p.has_open = true;
  if (new_state == kern::TaskState::kExited) {
    p.has_open = false;
    p.exited = true;
  }
}

void Tracer::on_hw_prio(SimTime t, const kern::Task& task, p5::HwPrio prio) {
  slot(task, t).prios.push_back(PrioEvent{t, p5::to_int(prio)});
}

void Tracer::on_iteration(SimTime t, const kern::Task& task, int iteration, double util_last,
                          double util_metric) {
  slot(task, t).iterations.push_back(IterationEvent{t, iteration, util_last, util_metric});
}

void Tracer::on_wakeup_latency(SimTime t, const kern::Task& task, Duration latency) {
  slot(task, t).latency_us.add(latency.us());
}

void Tracer::finalize(SimTime end) {
  for (auto& [pid, p] : tasks_) {
    if (p.has_open && end > p.open_since) {
      p.intervals.push_back(Interval{p.open_since, end, p.open_activity});
      p.has_open = false;
    }
  }
}

const std::vector<Interval>& Tracer::intervals(Pid pid) const {
  const auto it = tasks_.find(pid);
  return it == tasks_.end() ? kNoIntervals : it->second.intervals;
}

const std::vector<PrioEvent>& Tracer::prio_events(Pid pid) const {
  const auto it = tasks_.find(pid);
  return it == tasks_.end() ? kNoPrios : it->second.prios;
}

const std::vector<IterationEvent>& Tracer::iteration_events(Pid pid) const {
  const auto it = tasks_.find(pid);
  return it == tasks_.end() ? kNoIters : it->second.iterations;
}

const RunningStat& Tracer::wakeup_latency_us(Pid pid) const {
  const auto it = tasks_.find(pid);
  return it == tasks_.end() ? kNoStat : it->second.latency_us;
}

std::vector<Pid> Tracer::traced_pids() const {
  std::vector<Pid> out;
  out.reserve(tasks_.size());
  for (const auto& [pid, p] : tasks_) out.push_back(pid);
  return out;
}

double Tracer::compute_fraction(Pid pid, SimTime begin, SimTime end) const {
  HPCS_CHECK(end > begin);
  Duration computing = Duration::zero();
  for (const Interval& iv : intervals(pid)) {
    if (iv.activity != Activity::kCompute) continue;
    const SimTime lo = std::max(iv.begin, begin);
    const SimTime hi = std::min(iv.end, end);
    if (hi > lo) computing += hi - lo;
  }
  return computing / (end - begin);
}

}  // namespace hpcs::trace
