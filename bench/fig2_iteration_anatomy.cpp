// Reproduces Figure 2: the iterative behaviour the scheduler keys on — each
// task alternates a computing phase t_R and a waiting phase t_W; one
// iteration is t_i = t_R + t_W and the utilization is U_i = t_R / t_i.
// Prints the actual per-iteration anatomy the HPC scheduler measured for an
// imbalanced MetBench pair, plus the derived global utilization series.

#include <cstdio>

#include "analysis/paper_experiments.h"
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace hpcs;

  bench::init_logging(argc, argv);
  bench::reject_dist_unsupported(argc, argv);
  bench::FigObs fobs("fig2_iteration_anatomy", bench::parse_obs_options(argc, argv));
  auto e = analysis::MetBenchExperiment::paper();
  e.workload.iterations = 6;
  auto r = analysis::run_metbench(e, analysis::SchedMode::kUniform, /*trace=*/true,
                                  /*seed=*/1, fobs.cfg());

  std::printf("=== Figure 2: HPC application iterative behaviour ===\n\n");
  std::printf("one iteration = computing phase (t_R) + waiting phase (t_W);\n");
  std::printf("U_i = t_R/t_i, accounted when the task wakes up (paper, section IV-B)\n\n");

  for (std::size_t i = 0; i < r.ranks.size(); ++i) {
    std::printf("%s (%s):\n", r.ranks[i].name.c_str(),
                i % 2 == 0 ? "light worker" : "heavy worker");
    for (const auto& ev : r.tracer->iteration_events(r.ranks[i].pid)) {
      std::printf("  iteration %d closed at t=%7.3fs  U_i=%6.2f%%  metric=%6.2f%%\n",
                  ev.iteration, ev.when.sec(), ev.util_last, ev.util_metric);
    }
  }
  std::printf(
      "\nthe imbalance is visible in iteration 1 (light ~25%%, heavy ~100%%); the\n"
      "heuristic applies priorities before iteration 2 and both settle near 100%%.\n");
  fobs.keep("Uniform", std::move(r));
  fobs.finish();
  return 0;
}
