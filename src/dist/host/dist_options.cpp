#include "dist/host/dist_options.h"

#include <cstdlib>
#include <string_view>

namespace hpcs::dist::host {

namespace {

bool parse_port(const std::string& s, std::uint16_t& out, bool allow_zero) {
  if (s.empty() || s.size() > 5) return false;
  long v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  if (v > 65535 || (v == 0 && !allow_zero)) return false;
  out = static_cast<std::uint16_t>(v);
  return true;
}

}  // namespace

bool parse_dist_spec(const std::string& spec, DistOptions& out, std::string& err) {
  DistOptions o = out;
  constexpr std::string_view kCoord = "coordinator:";
  constexpr std::string_view kWorkerColon = "worker:";
  constexpr std::string_view kWorkerSpace = "worker ";
  if (spec.rfind(kCoord, 0) == 0) {
    const std::string port = spec.substr(kCoord.size());
    if (!parse_port(port, o.port, /*allow_zero=*/true)) {
      err = "--dist coordinator:PORT — bad port '" + port + "'";
      return false;
    }
    o.mode = DistOptions::Mode::kCoordinator;
    out = o;
    return true;
  }
  if (spec.rfind(kWorkerColon, 0) == 0 || spec.rfind(kWorkerSpace, 0) == 0) {
    const std::string rest = spec.substr(kWorkerColon.size());  // same length
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      err = "--dist worker HOST:PORT — missing host or port in '" + rest + "'";
      return false;
    }
    if (!parse_port(rest.substr(colon + 1), o.port, /*allow_zero=*/false)) {
      err = "--dist worker HOST:PORT — bad port '" + rest.substr(colon + 1) + "'";
      return false;
    }
    o.hostname = rest.substr(0, colon);
    o.mode = DistOptions::Mode::kWorker;
    out = o;
    return true;
  }
  err = "--dist expects 'coordinator:PORT' or 'worker HOST:PORT', got '" + spec + "'";
  return false;
}

bool apply_dist_env(DistOptions& out, std::string& err) {
  // HPCS_HOST_BEGIN — env read is host configuration, not run input.
  const char* v = std::getenv("HPCS_DIST");  // HPCSLINT-ALLOW(det-taint)
  // HPCS_HOST_END
  if (v == nullptr || v[0] == '\0') return true;
  return parse_dist_spec(v, out, err);
}

}  // namespace hpcs::dist::host
