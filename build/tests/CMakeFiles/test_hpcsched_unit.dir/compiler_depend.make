# Empty compiler generated dependencies file for test_hpcsched_unit.
# This may be replaced when dependencies are built.
