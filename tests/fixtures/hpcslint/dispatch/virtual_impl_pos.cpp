// Virtual-dispatch taint fixture, TU 2 of 3 (positive): an override that
// reads the steady clock. It lives outside the deterministic core (namespace
// hostio, no protected path component), so it is not reported itself — but
// class-hierarchy analysis must fan the taint out to every kern call site
// that dispatches through the TraceSink base.
#include <chrono>

namespace hpcs::kern {
class TraceSink {
 public:
  virtual void emit(int value);
  virtual ~TraceSink();
};
}  // namespace hpcs::kern

namespace hpcs::hostio {

class WallClockSink : public hpcs::kern::TraceSink {
 public:
  void emit(int value) override;
  long long seen_ = 0;
};

void WallClockSink::emit(int value) {
  seen_ = std::chrono::steady_clock::now().time_since_epoch().count() + value;
}

}  // namespace hpcs::hostio
