// Ablation: the scheduler-generation axis of §III — the paper's baseline is
// the brand-new CFS (2.6.23+); the framework it praises replaced the old
// O(1) scheduler. This bench runs the paper's baselines and HPCSched on BOTH
// fair schedulers: the HPC-class design is framework-level and must deliver
// its improvement regardless of which fair scheduler sits below it.
//
// All 8 runs are independent and fan across the parallel experiment engine
// (--jobs N / HPCS_JOBS); output is printed in order after collection.

#include <cstdio>
#include <functional>
#include <utility>
#include <vector>

#include "analysis/paper_experiments.h"
#include "bench_json.h"
#include "exp/parallel_runner.h"

using namespace hpcs;
using analysis::SchedMode;

namespace {

analysis::RunResult run(SchedMode mode, kern::FairScheduler fs,
                        const wl::MetBenchConfig& w) {
  analysis::ExperimentConfig cfg = analysis::paper_defaults(mode, 1, false);
  cfg.kernel.fair_scheduler = fs;
  return analysis::run_experiment(cfg, wl::make_metbench(w));
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  std::printf("=== O(1) vs CFS as the underlying fair scheduler ===\n\n");

  auto mb = analysis::MetBenchExperiment::paper();
  mb.workload.iterations = 20;
  auto siesta = analysis::SiestaExperiment::paper();
  siesta.workload.microiters = 8000;

  const std::vector<std::pair<kern::FairScheduler, const char*>> gens = {
      {kern::FairScheduler::kCfs, "CFS (2.6.23+)"}, {kern::FairScheduler::kO1, "O(1) (pre-2.6.23)"}};

  struct MbRow {
    analysis::RunResult base, uni;
  };
  std::vector<MbRow> mb_rows(gens.size());
  std::vector<MbRow> si_rows(gens.size());

  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < gens.size(); ++i) {
    const kern::FairScheduler fs = gens[i].first;
    tasks.push_back([&mb_rows, i, fs, &mb] {
      mb_rows[i].base = run(SchedMode::kBaselineCfs, fs, mb.workload);
    });
    tasks.push_back([&mb_rows, i, fs, &mb] {
      mb_rows[i].uni = run(SchedMode::kUniform, fs, mb.workload);
    });
    tasks.push_back([&si_rows, i, fs, &siesta] {
      analysis::ExperimentConfig cfg = analysis::paper_defaults(SchedMode::kBaselineCfs, 1, false);
      cfg.kernel.fair_scheduler = fs;
      si_rows[i].base = analysis::run_experiment(cfg, wl::make_siesta(siesta.workload));
    });
    tasks.push_back([&si_rows, i, fs, &siesta] {
      analysis::ExperimentConfig cfg = analysis::paper_defaults(SchedMode::kUniform, 1, false);
      cfg.kernel.fair_scheduler = fs;
      si_rows[i].uni = analysis::run_experiment(cfg, wl::make_siesta(siesta.workload));
    });
  }
  exp::ParallelRunner runner(jobs);
  runner.run_all(std::move(tasks));

  std::vector<bench::JsonObject> entries;
  for (std::size_t i = 0; i < gens.size(); ++i) {
    std::printf("%-20s baseline %7.2fs  |  HPCSched uniform %7.2fs  (%+.2f%%)\n", gens[i].second,
                mb_rows[i].base.exec_time.sec(), mb_rows[i].uni.exec_time.sec(),
                analysis::improvement_pct(mb_rows[i].base, mb_rows[i].uni));
    bench::JsonObject e;
    e.field("fair_scheduler", gens[i].second)
        .field("metbench_baseline_s", mb_rows[i].base.exec_time.sec())
        .field("metbench_uniform_s", mb_rows[i].uni.exec_time.sec())
        .field("metbench_gain_pct", analysis::improvement_pct(mb_rows[i].base, mb_rows[i].uni));
    entries.push_back(std::move(e));
  }

  // The latency view (SIESTA-style fine-grained workload) where the fair
  // schedulers differ most.
  std::printf("\n--- wakeup latency under load (fine-grained SIESTA window) ---\n");
  for (std::size_t i = 0; i < gens.size(); ++i) {
    const char* name = i == 0 ? "CFS" : "O(1)";
    std::printf("%-6s baseline %6.2fs (avg rank latency %5.1fus) | HPCSched %+.2f%%\n", name,
                si_rows[i].base.exec_time.sec(), si_rows[i].base.ranks[1].avg_wakeup_latency_us,
                analysis::improvement_pct(si_rows[i].base, si_rows[i].uni));
    entries[i]
        .field("siesta_baseline_s", si_rows[i].base.exec_time.sec())
        .field("siesta_rank1_latency_us", si_rows[i].base.ranks[1].avg_wakeup_latency_us)
        .field("siesta_gain_pct", analysis::improvement_pct(si_rows[i].base, si_rows[i].uni));
  }

  std::printf("\nHPCSched's gain is orthogonal to the fair-scheduler generation — the\n"
              "class chain design of the 2.6.23 framework is what makes that possible\n"
              "(the paper's §III point).\n");

  bench::JsonObject root;
  root.field("bench", "ablation_o1_vs_cfs").field("jobs", jobs);
  root.array("generations", entries);
  bench::write_json_file("BENCH_ablation_o1_vs_cfs.json", root);
  return 0;
}
