// End-to-end integration tests: abbreviated versions of the paper's four
// experiments, asserting the qualitative shapes the full benches reproduce —
// who wins, priority assignments, convergence/adaptation behaviour — plus
// the experiment harness plumbing itself.

#include <gtest/gtest.h>

#include "analysis/paper_experiments.h"
#include "analysis/tables.h"

namespace hpcs::analysis {
namespace {

MetBenchExperiment small_metbench(int iterations = 10) {
  auto e = MetBenchExperiment::paper();
  e.workload.iterations = iterations;
  // Scale each iteration down 4x to keep tests fast.
  for (auto& l : e.workload.loads) l /= 4.0;
  return e;
}

TEST(MetBenchIntegration, BaselineShowsPaperImbalance) {
  const auto r = run_metbench(small_metbench(), SchedMode::kBaselineCfs);
  ASSERT_EQ(r.ranks.size(), 4u);
  EXPECT_NEAR(r.ranks[0].util_pct, 25.0, 3.0);
  EXPECT_NEAR(r.ranks[1].util_pct, 100.0, 2.0);
  EXPECT_NEAR(r.ranks[2].util_pct, 25.0, 3.0);
  EXPECT_NEAR(r.ranks[3].util_pct, 100.0, 2.0);
  EXPECT_EQ(r.hw_prio_changes, 0);
}

TEST(MetBenchIntegration, StaticPrioritizationBalances) {
  const auto base = run_metbench(small_metbench(), SchedMode::kBaselineCfs);
  const auto stat = run_metbench(small_metbench(), SchedMode::kStatic);
  // Both workers near 100% utilization and a solid improvement.
  EXPECT_GT(stat.min_util(), 90.0);
  EXPECT_GT(improvement_pct(base, stat), 8.0);
  EXPECT_LT(improvement_pct(base, stat), 18.0);
}

TEST(MetBenchIntegration, UniformMatchesStaticWithoutHandTuning) {
  const auto base = run_metbench(small_metbench(), SchedMode::kBaselineCfs);
  const auto uni = run_metbench(small_metbench(), SchedMode::kUniform);
  EXPECT_GT(improvement_pct(base, uni), 7.0);
  // The heavy ranks converged to 6, the light ones stayed at 4.
  EXPECT_EQ(uni.ranks[1].final_hw_prio, 6);
  EXPECT_EQ(uni.ranks[3].final_hw_prio, 6);
  EXPECT_EQ(uni.ranks[0].final_hw_prio, 4);
  EXPECT_EQ(uni.ranks[2].final_hw_prio, 4);
  // Convergence in one or two iterations: only ~2 priority writes needed.
  EXPECT_LE(uni.hw_prio_changes, 6);
}

TEST(MetBenchIntegration, AdaptiveAlsoImproves) {
  const auto base = run_metbench(small_metbench(), SchedMode::kBaselineCfs);
  const auto ada = run_metbench(small_metbench(), SchedMode::kAdaptive);
  EXPECT_GT(improvement_pct(base, ada), 5.0);
}

TEST(MetBenchIntegration, DeterministicAcrossRuns) {
  const auto a = run_metbench(small_metbench(), SchedMode::kUniform, false, 123);
  const auto b = run_metbench(small_metbench(), SchedMode::kUniform, false, 123);
  EXPECT_EQ(a.exec_time.ns(), b.exec_time.ns());
  EXPECT_EQ(a.hw_prio_changes, b.hw_prio_changes);
  for (std::size_t i = 0; i < a.ranks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ranks[i].util_pct, b.ranks[i].util_pct);
  }
}

TEST(MetBenchVarIntegration, DynamicBeatsStaticOnReversingLoad) {
  auto e = MetBenchVarExperiment::paper();
  e.workload.iterations = 24;
  e.workload.k = 8;
  for (auto& l : e.workload.loads_a) l /= 8.0;
  for (auto& l : e.workload.loads_b) l /= 8.0;

  const auto base = run_metbenchvar(e, SchedMode::kBaselineCfs);
  const auto stat = run_metbenchvar(e, SchedMode::kStatic);
  const auto uni = run_metbenchvar(e, SchedMode::kUniform);
  const auto ada = run_metbenchvar(e, SchedMode::kAdaptive);

  // Baseline whole-run utilizations: (2r+1)/3 with r=1/4 -> 50%, 75%.
  EXPECT_NEAR(base.ranks[0].util_pct, 50.0, 5.0);
  EXPECT_NEAR(base.ranks[1].util_pct, 75.0, 5.0);

  // The headline of Table IV: the dynamic scheduler clearly beats the
  // static hand-tuning, which suffers in the reversed period.
  EXPECT_GT(improvement_pct(base, uni), improvement_pct(base, stat) + 3.0);
  EXPECT_GT(improvement_pct(base, ada), improvement_pct(base, stat) + 3.0);
  EXPECT_GT(improvement_pct(base, uni), 5.0);

  // Behaviour changes were detected (history resets fired).
  EXPECT_GT(uni.hpc_history_resets, 0);
}

TEST(BtMzIntegration, HeuristicsMatchHandTunedPriorities) {
  auto e = BtMzExperiment::paper();
  e.workload.iterations = 40;
  const auto base = run_btmz(e, SchedMode::kBaselineCfs);
  const auto stat = run_btmz(e, SchedMode::kStatic);
  const auto uni = run_btmz(e, SchedMode::kUniform);

  // Baseline matches Table V's skewed profile.
  EXPECT_NEAR(base.ranks[0].util_pct, 17.6, 3.0);
  EXPECT_NEAR(base.ranks[3].util_pct, 99.9, 1.0);

  EXPECT_GT(improvement_pct(base, stat), 7.0);
  EXPECT_GT(improvement_pct(base, uni), 7.0);
  // The dynamic scheduler finds the heavy rank on its own. P1 (slowed 4x by
  // sharing a core with the prioritized P4) may legitimately read as a
  // medium-utilization task — the paper's Table V shows it at 70.3%.
  EXPECT_EQ(uni.ranks[3].final_hw_prio, 6);
  EXPECT_LE(uni.ranks[0].final_hw_prio, 5);
}

TEST(SiestaIntegration, GainComesFromLatencyNotBalance) {
  auto e = SiestaExperiment::paper();
  e.workload.microiters = 4000;
  const auto base = run_siesta(e, SchedMode::kBaselineCfs);
  const auto uni = run_siesta(e, SchedMode::kUniform);

  // Improvement present...
  EXPECT_GT(improvement_pct(base, uni), 2.0);
  EXPECT_LT(improvement_pct(base, uni), 15.0);
  // ...while utilizations barely move (Table VI: "only marginally").
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(uni.ranks[i].util_pct, base.ranks[i].util_pct, 8.0) << "rank " << i;
  }
  // The latency mechanism: HPC ranks dispatch with microsecond latency,
  // the CFS baseline pays tens of microseconds per wakeup.
  double base_lat = 0.0;
  double uni_lat = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    base_lat += base.ranks[i].avg_wakeup_latency_us / 4.0;
    uni_lat += uni.ranks[i].avg_wakeup_latency_us / 4.0;
  }
  EXPECT_GT(base_lat, 20.0);
  EXPECT_LT(uni_lat, 10.0);
}

TEST(Harness, TraceCaptureProducesIntervalsAndIterations) {
  auto e = small_metbench(6);
  const auto r = run_metbench(e, SchedMode::kUniform, /*trace=*/true);
  ASSERT_NE(r.tracer, nullptr);
  for (const auto& rank : r.ranks) {
    EXPECT_FALSE(r.tracer->intervals(rank.pid).empty()) << rank.name;
    EXPECT_GE(r.tracer->iteration_events(rank.pid).size(), 4u) << rank.name;
  }
  // The heavy ranks have a priority-change event in the trace.
  EXPECT_FALSE(r.tracer->prio_events(r.ranks[1].pid).empty());
}

TEST(Harness, MarksMatchIterationCount) {
  auto e = small_metbench(9);
  const auto r = run_metbench(e, SchedMode::kBaselineCfs);
  ASSERT_EQ(r.marks.size(), 4u);
  for (const auto& m : r.marks) EXPECT_EQ(m.size(), 9u);
}

TEST(Harness, TableRendering) {
  auto e = small_metbench(4);
  const auto base = run_metbench(e, SchedMode::kBaselineCfs);
  const auto uni = run_metbench(e, SchedMode::kUniform);
  const std::string table = render_characterization_table(
      "Table (test)", {{"Baseline", &base, {4, 4, 4, 4}}, {"Uniform", &uni, {}}});
  EXPECT_NE(table.find("Baseline"), std::string::npos);
  EXPECT_NE(table.find("P4"), std::string::npos);
  // Dynamic mode prints "-" for priorities.
  EXPECT_NE(table.find("-"), std::string::npos);
  const std::string t1 = render_decode_table();
  EXPECT_NE(t1.find("64"), std::string::npos);
  const std::string t2 = render_privilege_table();
  EXPECT_NE(t2.find("or 31,31,31"), std::string::npos);
}

TEST(Harness, ModeNames) {
  EXPECT_STREQ(sched_mode_name(SchedMode::kBaselineCfs), "Baseline");
  EXPECT_STREQ(sched_mode_name(SchedMode::kHybrid), "Hybrid");
  EXPECT_TRUE(is_dynamic_mode(SchedMode::kUniform));
  EXPECT_FALSE(is_dynamic_mode(SchedMode::kStatic));
}

}  // namespace
}  // namespace hpcs::analysis
