#pragma once
// MetBench (paper §V-A): the BSC Minimum Execution Time Benchmark — a
// master/worker framework where every worker executes its assigned load and
// then synchronizes with the others through an mpi_barrier before the next
// iteration. Imbalance is introduced by giving the two workers sharing a core
// different loads.
//
// Calibration (Table III): the baseline shows workers at ~25% and ~100%
// utilization and 81.78 s execution time, i.e. a 4:1 load ratio and
// ~2.04 s iterations over 40 iterations.

#include <memory>
#include <vector>

#include "simmpi/ops.h"

namespace hpcs::wl {

using ProgramSet = std::vector<std::unique_ptr<mpi::RankProgram>>;

struct MetBenchConfig {
  int iterations = 40;
  /// Work units (ns at ST speed) per worker per iteration. The default is
  /// the Table III setup: small/large alternating per core pair, ratio 1:4,
  /// large load 1.33e9 (≈2.05 s per iteration at equal SMT priorities).
  std::vector<double> loads = {0.3325e9, 1.33e9, 0.3325e9, 1.33e9};
  /// Model the framework's master process as an extra (mostly idle) rank.
  bool include_master = false;
  double master_load = 1.0e5;
};

/// One program per rank (workers first, master last when enabled).
ProgramSet make_metbench(const MetBenchConfig& cfg);

}  // namespace hpcs::wl
