#pragma once
// A POWER5 chip: a set of SMT cores plus the CPU-id <-> (core, context)
// mapping the OS sees. The default topology matches the paper's evaluation
// machine (one dual-core chip, 2-way SMT: logical CPUs 0..3).

#include <vector>

#include "common/types.h"
#include "power5/smt_core.h"

namespace hpcs::p5 {

class Chip {
 public:
  explicit Chip(int num_cores = 2, const ThroughputParams& params = {});

  [[nodiscard]] int num_cores() const { return static_cast<int>(cores_.size()); }
  [[nodiscard]] int num_cpus() const { return num_cores() * 2; }

  [[nodiscard]] SmtCore& core(CoreId c);
  [[nodiscard]] const SmtCore& core(CoreId c) const;

  /// Logical-CPU view used by the simulated kernel.
  [[nodiscard]] static constexpr CoreId core_of(CpuId cpu) { return cpu / 2; }
  [[nodiscard]] static constexpr CtxId ctx_of(CpuId cpu) { return cpu % 2; }
  [[nodiscard]] static constexpr CpuId cpu_of(CoreId core, CtxId ctx) { return core * 2 + ctx; }
  /// The SMT sibling sharing a core with `cpu`.
  [[nodiscard]] static constexpr CpuId sibling_of(CpuId cpu) { return cpu ^ 1; }

  [[nodiscard]] double cpu_speed(CpuId cpu) const;
  bool set_cpu_priority(CpuId cpu, HwPrio p);
  bool set_cpu_active(CpuId cpu, bool active);
  bool set_cpu_snoozed(CpuId cpu, bool snoozed);
  [[nodiscard]] HwPrio cpu_priority(CpuId cpu) const;

  /// Install one listener for speed changes on any core.
  void set_listener(SmtCore::SpeedChangeListener l);

 private:
  std::vector<SmtCore> cores_;
};

}  // namespace hpcs::p5
