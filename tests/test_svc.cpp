// Tests of the sweep service (src/svc): client-API wire/protocol round
// trips, and the SweepService machine driven over loopback transports with
// an explicit clock — submit/stream/status, fair-share interleaving across
// tenants, worker binding and mid-job worker death, cancel, shutdown
// drain, the cache effect queues, and hostile-client handling. Rows are
// compared byte-for-byte against the serial answer throughout: local,
// remote and cache-seeded execution must be indistinguishable.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dist/loopback.h"
#include "dist/registry.h"
#include "dist/worker.h"
#include "svc/protocol.h"
#include "svc/service.h"
#include "svc/wire.h"

namespace hpcs {
namespace {

using dist::JobRegistry;
using dist::LoopbackConnection;
using dist::loopback_pair;
using dist::WorkerConfig;
using dist::WorkerSession;
using svc::JobState;
using svc::ServiceConfig;
using svc::SvcFrame;
using svc::SvcFrameDecoder;
using svc::SvcFrameType;
using svc::SweepService;

// Same shape as test_dist's unit job: payload depends only on the index.
std::string task(std::uint32_t i) { return "row[" + std::to_string(i * i + 7) + "]"; }

std::vector<std::string> serial_rows(std::size_t count) {
  std::vector<std::string> out;
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(task(i));
  return out;
}

JobRegistry unit_registry(std::size_t count) {
  JobRegistry reg;
  reg.add("unit", [count](const std::string& params) {
    dist::ResolvedJob job;
    if (params != "unit-params") return job;
    job.count = count;
    job.fn = task;
    return job;
  });
  return reg;
}

ServiceConfig test_cfg() {
  ServiceConfig cfg;
  cfg.max_running = 2;
  cfg.coord.shard_size = 1;
  cfg.coord.local_jobs = 1;
  cfg.coord.liveness_timeout_ms = 10000;
  cfg.coord.shard_timeout_ms = 100000;
  cfg.coord.retry_backoff_base_ms = 10;
  cfg.coord.retry_backoff_cap_ms = 40;
  return cfg;
}

/// The test's half of a client connection: speaks svc frames through one
/// end of a loopback pair while the service owns the other.
struct FakeClient {
  std::unique_ptr<LoopbackConnection> conn;
  SvcFrameDecoder decoder;

  void send(const SvcFrame& f) { (void)conn->send(svc::encode_svc_frame(f)); }
  void send_raw(std::string_view bytes) { (void)conn->send(bytes); }

  std::vector<SvcFrame> drain() {
    decoder.feed(conn->poll_recv());
    std::vector<SvcFrame> out;
    SvcFrame f;
    while (decoder.next(f) == SvcFrameDecoder::Result::kFrame) out.push_back(f);
    return out;
  }
};

FakeClient attach_client(SweepService& svc, std::int64_t now_ms) {
  auto [a, b] = loopback_pair();
  svc.adopt_client(std::move(a), now_ms);
  return FakeClient{std::move(b), {}};
}

/// A real worker session wired into the service; the test pumps it. `conn`
/// stays visible so kill schedules can close the transport mid-job.
struct TestWorker {
  std::unique_ptr<WorkerSession> session;
  LoopbackConnection* conn = nullptr;

  bool step(std::int64_t now_ms) { return session->step(now_ms); }
  void kill() { conn->close(); }
};

TestWorker attach_worker(SweepService& svc, const JobRegistry& reg,
                         const std::string& name, std::int64_t now_ms) {
  auto [a, b] = loopback_pair();
  svc.adopt_worker(std::move(a), now_ms);
  WorkerConfig wcfg;
  wcfg.name = name;
  wcfg.capacity = 1;
  TestWorker w;
  w.conn = b.get();
  w.session = std::make_unique<WorkerSession>(wcfg, reg, std::move(b));
  return w;
}

/// Submit "unit" for `tenant`, expect acceptance, subscribe, return the id.
std::uint64_t submit_and_stream(SweepService& svc, FakeClient& c,
                                const std::string& tenant, std::int64_t now_ms) {
  svc::SubmitJob m;
  m.tenant = tenant;
  m.job = "unit";
  m.params = "unit-params";
  c.send(svc::encode_submit_job(m));
  svc.step(now_ms);
  auto frames = c.drain();
  EXPECT_EQ(frames.size(), 1u);
  svc::SubmitAck ack;
  EXPECT_TRUE(svc::decode_submit_ack(frames[0], ack));
  EXPECT_TRUE(ack.accept) << ack.reason;
  c.send(svc::encode_stream_rows({ack.job_id}));
  return ack.job_id;
}

/// Collect streamed rows (indexed) and the terminal JobDone, stepping until
/// the job reports done or the step budget runs out.
struct StreamResult {
  std::vector<std::string> rows;
  bool done = false;
  svc::JobDone last;
  std::vector<std::uint64_t> arrival;  ///< job_id per ROW, in arrival order
};

StreamResult pump_until_done(SweepService& svc, FakeClient& c, std::size_t count,
                             std::int64_t& now_ms,
                             const std::vector<TestWorker*>& workers = {},
                             std::uint64_t only_job = 0, int max_steps = 10000) {
  StreamResult out;
  out.rows.resize(count);
  for (int s = 0; s < max_steps && !out.done; ++s) {
    svc.step(now_ms);
    for (TestWorker* w : workers) (void)w->step(now_ms);
    now_ms += 10;
    for (const SvcFrame& f : c.drain()) {
      if (f.type == SvcFrameType::kRow) {
        svc::SvcRow row;
        EXPECT_TRUE(svc::decode_svc_row(f, row)) << "malformed ROW";
        if (only_job != 0 && row.job_id != only_job) continue;
        EXPECT_LT(row.index, out.rows.size());
        if (row.index < out.rows.size()) out.rows[row.index] = row.payload;
        out.arrival.push_back(row.job_id);
      } else if (f.type == SvcFrameType::kJobDone) {
        EXPECT_TRUE(svc::decode_job_done(f, out.last));
        if (only_job == 0 || out.last.job_id == only_job) out.done = true;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Wire + protocol

TEST(SvcWire, FramesReassembleAcrossFragmentationAndRejectBadTypes) {
  SvcFrame f;
  f.type = SvcFrameType::kSubmitJob;
  f.payload = "hello";
  const std::string bytes = svc::encode_svc_frame(f);
  SvcFrameDecoder dec;
  for (const char c : bytes) dec.feed(std::string_view(&c, 1));
  SvcFrame out;
  ASSERT_EQ(dec.next(out), SvcFrameDecoder::Result::kFrame);
  EXPECT_EQ(out.type, SvcFrameType::kSubmitJob);
  EXPECT_EQ(out.payload, "hello");
  EXPECT_EQ(dec.next(out), SvcFrameDecoder::Result::kNeedMore);

  // Type 99 is not a svc frame: framing-layer kill.
  SvcFrameDecoder bad;
  std::string evil = bytes;
  evil[4] = 99;
  bad.feed(evil);
  EXPECT_EQ(bad.next(out), SvcFrameDecoder::Result::kError);

  // The fabric's type space is NOT valid here (1 is kSubmitJob in ours —
  // use one past kError).
  EXPECT_FALSE(svc::svc_frame_type_valid(13));
  EXPECT_TRUE(svc::svc_frame_type_valid(1));
}

TEST(SvcProtocol, MessagesRoundTrip) {
  svc::SubmitJob sj;
  sj.tenant = "alice";
  sj.job = "unit";
  sj.params = "unit-params";
  svc::SubmitJob sj2;
  ASSERT_TRUE(svc::decode_submit_job(svc::encode_submit_job(sj), sj2));
  EXPECT_EQ(sj2.version, svc::kSvcProtoVersion);
  EXPECT_EQ(sj2.tenant, "alice");
  EXPECT_EQ(sj2.job, "unit");
  EXPECT_EQ(sj2.params, "unit-params");

  svc::SubmitAck sa;
  sa.accept = true;
  sa.job_id = 7;
  sa.count = 12;
  svc::SubmitAck sa2;
  ASSERT_TRUE(svc::decode_submit_ack(svc::encode_submit_ack(sa), sa2));
  EXPECT_TRUE(sa2.accept);
  EXPECT_EQ(sa2.job_id, 7u);
  EXPECT_EQ(sa2.count, 12u);

  svc::Status st;
  st.job_id = 3;
  st.known = true;
  st.state = JobState::kRunning;
  st.total = 4;
  st.done = 2;
  st.cached = 1;
  svc::Status st2;
  ASSERT_TRUE(svc::decode_status(svc::encode_status(st), st2));
  EXPECT_EQ(st2.state, JobState::kRunning);
  EXPECT_EQ(st2.done, 2u);
  EXPECT_EQ(st2.cached, 1u);

  svc::SvcRow row;
  row.job_id = 9;
  row.index = 2;
  row.payload = std::string("\x00\xff raw", 6);
  svc::SvcRow row2;
  ASSERT_TRUE(svc::decode_svc_row(svc::encode_svc_row(row), row2));
  EXPECT_EQ(row2.payload, row.payload);

  svc::JobDone jd;
  jd.job_id = 9;
  jd.state = JobState::kCancelled;
  jd.total = 4;
  jd.cached = 4;
  svc::JobDone jd2;
  ASSERT_TRUE(svc::decode_job_done(svc::encode_job_done(jd), jd2));
  EXPECT_EQ(jd2.state, JobState::kCancelled);

  svc::CancelAck ca;
  ca.job_id = 5;
  ca.ok = true;
  svc::CancelAck ca2;
  ASSERT_TRUE(svc::decode_cancel_ack(svc::encode_cancel_ack(ca), ca2));
  EXPECT_TRUE(ca2.ok);

  svc::ShutdownAck sh;
  sh.jobs_remaining = 2;
  svc::ShutdownAck sh2;
  ASSERT_TRUE(svc::decode_shutdown_ack(svc::encode_shutdown_ack(sh), sh2));
  EXPECT_EQ(sh2.jobs_remaining, 2u);
}

TEST(SvcProtocol, DecodeRejectsTruncationTrailingBytesAndBadEnums) {
  svc::SubmitJob sj;
  sj.tenant = "t";
  sj.job = "j";
  sj.params = "p";
  SvcFrame f = svc::encode_submit_job(sj);
  svc::SubmitJob out;
  // Truncated payload at every length.
  for (std::size_t n = 0; n < f.payload.size(); ++n) {
    SvcFrame cut = f;
    cut.payload.resize(n);
    EXPECT_FALSE(svc::decode_submit_job(cut, out));
  }
  // Trailing bytes.
  SvcFrame extra = f;
  extra.payload += "x";
  EXPECT_FALSE(svc::decode_submit_job(extra, out));
  // Wrong frame type.
  SvcFrame wrong = f;
  wrong.type = SvcFrameType::kCancel;
  EXPECT_FALSE(svc::decode_submit_job(wrong, out));

  // A JobDone whose state byte is past kCancelled must not decode.
  svc::JobDone jd;
  SvcFrame df = svc::encode_job_done(jd);
  df.payload[8] = 17;  // state byte follows the u64 job id
  svc::JobDone jout;
  EXPECT_FALSE(svc::decode_job_done(df, jout));

  EXPECT_STREQ(svc::job_state_name(JobState::kQueued), "queued");
  EXPECT_STREQ(svc::job_state_name(JobState::kRunning), "running");
  EXPECT_STREQ(svc::job_state_name(JobState::kDone), "done");
  EXPECT_STREQ(svc::job_state_name(JobState::kCancelled), "cancelled");
}

// ---------------------------------------------------------------------------
// Service: local execution, streaming, status

TEST(SvcService, SubmitRunsLocallyStreamsAndReportsStatus) {
  const std::size_t kCount = 5;
  JobRegistry reg = unit_registry(kCount);
  SweepService svc(test_cfg(), reg);
  std::int64_t now = 1000;
  FakeClient c = attach_client(svc, now);
  const std::uint64_t id = submit_and_stream(svc, c, "alice", now);

  StreamResult r = pump_until_done(svc, c, kCount, now);
  ASSERT_TRUE(r.done);
  EXPECT_EQ(r.last.state, JobState::kDone);
  EXPECT_EQ(r.last.total, kCount);
  EXPECT_EQ(r.last.cached, 0u);
  EXPECT_EQ(r.rows, serial_rows(kCount));

  // Status after the fact: known, done, all rows counted.
  c.send(svc::encode_job_status({id}));
  svc.step(now);
  auto frames = c.drain();
  ASSERT_EQ(frames.size(), 1u);
  svc::Status st;
  ASSERT_TRUE(svc::decode_status(frames[0], st));
  EXPECT_TRUE(st.known);
  EXPECT_EQ(st.state, JobState::kDone);
  EXPECT_EQ(st.done, kCount);

  // Unknown id: known=false, session survives.
  c.send(svc::encode_job_status({9999}));
  svc.step(now);
  frames = c.drain();
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_TRUE(svc::decode_status(frames[0], st));
  EXPECT_FALSE(st.known);

  // A late subscriber gets a full replay plus the terminal frame.
  FakeClient late = attach_client(svc, now);
  late.send(svc::encode_stream_rows({id}));
  svc.step(now);
  std::size_t rows_seen = 0;
  bool done_seen = false;
  for (const SvcFrame& f : late.drain()) {
    if (f.type == SvcFrameType::kRow) ++rows_seen;
    if (f.type == SvcFrameType::kJobDone) done_seen = true;
  }
  EXPECT_EQ(rows_seen, kCount);
  EXPECT_TRUE(done_seen);
}

TEST(SvcService, TwoTenantsShareTheLoopFairly) {
  const std::size_t kCount = 4;
  JobRegistry reg = unit_registry(kCount);
  SweepService svc(test_cfg(), reg);
  std::int64_t now = 1000;
  FakeClient ca = attach_client(svc, now);
  FakeClient cb = attach_client(svc, now);
  const std::uint64_t ja = submit_and_stream(svc, ca, "alice", now);
  const std::uint64_t jb = submit_and_stream(svc, cb, "bob", now);
  ASSERT_NE(ja, jb);

  // Drive both to completion through client A's eyes first; B's rows land on
  // B's session. One local point per step means strict alternation between
  // the two tenants.
  StreamResult ra = pump_until_done(svc, ca, kCount, now, {}, ja);
  StreamResult rb = pump_until_done(svc, cb, kCount, now, {}, jb);
  ASSERT_TRUE(ra.done);
  ASSERT_TRUE(rb.done);
  EXPECT_EQ(ra.rows, serial_rows(kCount));
  EXPECT_EQ(rb.rows, serial_rows(kCount));

  // Fair share: job A cannot have finished all its points before job B
  // started making progress — A's last row arrives after B's first.
  const auto spans = svc.job_spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].state, JobState::kDone);
  EXPECT_EQ(spans[1].state, JobState::kDone);
  // Both ran concurrently (admitted before either finished).
  EXPECT_LT(spans[1].start_ms, spans[0].done_ms);
}

// ---------------------------------------------------------------------------
// Service: workers

TEST(SvcService, WorkersSpreadAcrossJobsAndServeRows) {
  const std::size_t kCount = 4;
  JobRegistry reg = unit_registry(kCount);
  SweepService svc(test_cfg(), reg);
  std::int64_t now = 1000;
  FakeClient ca = attach_client(svc, now);
  FakeClient cb = attach_client(svc, now);
  const std::uint64_t ja = submit_and_stream(svc, ca, "alice", now);
  const std::uint64_t jb = submit_and_stream(svc, cb, "bob", now);

  // Both jobs are running (a few points may already have drained locally);
  // now the fleet arrives and binding must spread it: one worker each.
  TestWorker w1 = attach_worker(svc, reg, "w1", now);
  TestWorker w2 = attach_worker(svc, reg, "w2", now);
  std::vector<TestWorker*> ws = {&w1, &w2};

  StreamResult ra = pump_until_done(svc, ca, kCount, now, ws, ja);
  StreamResult rb = pump_until_done(svc, cb, kCount, now, ws, jb);
  ASSERT_TRUE(ra.done);
  ASSERT_TRUE(rb.done);
  EXPECT_EQ(ra.rows, serial_rows(kCount));
  EXPECT_EQ(rb.rows, serial_rows(kCount));

  // Every point ran exactly once, locally or remotely, and BOTH jobs were
  // served by the fabric — the fleet did not pile onto the first job.
  const dist::FabricStats& s = svc.fabric_totals();
  EXPECT_EQ(s.workers_connected, 2);
  EXPECT_EQ(s.rows_remote + s.rows_local, static_cast<std::int64_t>(2 * kCount));
  const auto spans = svc.job_spans();
  EXPECT_GE(spans[0].rows_remote, 1);
  EXPECT_GE(spans[1].rows_remote, 1);
}

TEST(SvcService, WorkerKilledMidJobRowsStayByteIdentical) {
  const std::size_t kCount = 12;
  JobRegistry reg = unit_registry(kCount);
  SweepService svc(test_cfg(), reg);
  std::int64_t now = 1000;
  FakeClient c = attach_client(svc, now);
  const std::uint64_t id = submit_and_stream(svc, c, "alice", now);
  svc.step(now);

  TestWorker w = attach_worker(svc, reg, "doomed", now);
  // Let the worker hand back a couple of rows, then kill it while most of
  // the sweep is still outstanding: the death must land mid-job.
  for (int s = 0; s < 4; ++s) {
    svc.step(now);
    (void)w.step(now);
    now += 10;
  }
  w.kill();

  // The service retries the dead worker's shards locally and completes.
  StreamResult r = pump_until_done(svc, c, kCount, now, {}, id);
  ASSERT_TRUE(r.done);
  EXPECT_EQ(r.last.state, JobState::kDone);
  EXPECT_EQ(r.rows, serial_rows(kCount));
  EXPECT_EQ(svc.fabric_totals().workers_dead, 1);
}

// ---------------------------------------------------------------------------
// Service: cancel and shutdown

TEST(SvcService, CancelStopsOneJobAndLeavesTheOtherAlone) {
  const std::size_t kCount = 8;
  JobRegistry reg = unit_registry(kCount);
  SweepService svc(test_cfg(), reg);
  std::int64_t now = 1000;
  FakeClient ca = attach_client(svc, now);
  FakeClient cb = attach_client(svc, now);
  const std::uint64_t ja = submit_and_stream(svc, ca, "alice", now);
  const std::uint64_t jb = submit_and_stream(svc, cb, "bob", now);

  // A few steps of progress, then cancel job A.
  for (int s = 0; s < 4; ++s) {
    svc.step(now);
    now += 10;
  }
  (void)ca.drain();
  ca.send(svc::encode_cancel({ja}));
  svc.step(now);
  bool ack_seen = false;
  bool done_seen = false;
  for (const SvcFrame& f : ca.drain()) {
    if (f.type == SvcFrameType::kCancelAck) {
      svc::CancelAck ack;
      ASSERT_TRUE(svc::decode_cancel_ack(f, ack));
      EXPECT_TRUE(ack.ok);
      ack_seen = true;
    }
    if (f.type == SvcFrameType::kJobDone) {
      svc::JobDone d;
      ASSERT_TRUE(svc::decode_job_done(f, d));
      EXPECT_EQ(d.state, JobState::kCancelled);
      done_seen = true;
    }
  }
  EXPECT_TRUE(ack_seen);
  EXPECT_TRUE(done_seen);
  EXPECT_EQ(svc.stats().jobs_cancelled, 1);

  // Job B is unaffected and still completes byte-identically.
  StreamResult rb = pump_until_done(svc, cb, kCount, now, {}, jb);
  ASSERT_TRUE(rb.done);
  EXPECT_EQ(rb.last.state, JobState::kDone);
  EXPECT_EQ(rb.rows, serial_rows(kCount));

  // Cancelling a terminal or unknown job acks ok=false.
  ca.send(svc::encode_cancel({ja}));
  svc.step(now);
  auto frames = ca.drain();
  ASSERT_EQ(frames.size(), 1u);
  svc::CancelAck ack;
  ASSERT_TRUE(svc::decode_cancel_ack(frames[0], ack));
  EXPECT_FALSE(ack.ok);
}

TEST(SvcService, ShutdownDrainsRunningJobsAndRejectsNewOnes) {
  const std::size_t kCount = 5;
  JobRegistry reg = unit_registry(kCount);
  SweepService svc(test_cfg(), reg);
  std::int64_t now = 1000;
  FakeClient c = attach_client(svc, now);
  const std::uint64_t id = submit_and_stream(svc, c, "alice", now);
  svc.step(now);

  // Rows keep streaming during the control exchanges below; collect them so
  // the byte-identity check at the end sees the whole sweep.
  std::vector<std::string> early(kCount);
  const auto collect_row = [&](const SvcFrame& f) {
    if (f.type != SvcFrameType::kRow) return;
    svc::SvcRow row;
    ASSERT_TRUE(svc::decode_svc_row(f, row));
    ASSERT_LT(row.index, kCount);
    early[row.index] = row.payload;
  };

  c.send(svc::encode_shutdown());
  svc.step(now);
  bool ack_seen = false;
  for (const SvcFrame& f : c.drain()) {
    collect_row(f);
    if (f.type == SvcFrameType::kShutdownAck) {
      svc::ShutdownAck ack;
      ASSERT_TRUE(svc::decode_shutdown_ack(f, ack));
      EXPECT_EQ(ack.jobs_remaining, 1u);
      ack_seen = true;
    }
  }
  ASSERT_TRUE(ack_seen);
  EXPECT_TRUE(svc.draining());
  EXPECT_FALSE(svc.done());  // still a job in flight

  // New submissions bounce while draining.
  svc::SubmitJob m;
  m.tenant = "late";
  m.job = "unit";
  m.params = "unit-params";
  c.send(svc::encode_submit_job(m));
  svc.step(now);
  bool rejected = false;
  for (const SvcFrame& f : c.drain()) {
    collect_row(f);
    if (f.type == SvcFrameType::kSubmitAck) {
      svc::SubmitAck ack;
      ASSERT_TRUE(svc::decode_submit_ack(f, ack));
      EXPECT_FALSE(ack.accept);
      EXPECT_EQ(ack.reason, "draining: no new jobs");
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected);

  // The in-flight job still finishes, then the service reports done.
  StreamResult r = pump_until_done(svc, c, kCount, now, {}, id);
  ASSERT_TRUE(r.done);
  for (std::size_t i = 0; i < kCount; ++i) {
    if (r.rows[i].empty()) r.rows[i] = early[i];
  }
  EXPECT_EQ(r.rows, serial_rows(kCount));
  svc.step(now);
  EXPECT_TRUE(svc.done());
}

// ---------------------------------------------------------------------------
// Service: cache effect queues

TEST(SvcService, CacheQueriesSeedRowsAndStoresFreshOnes) {
  const std::size_t kCount = 4;
  JobRegistry reg = unit_registry(kCount);
  ServiceConfig cfg = test_cfg();
  cfg.cache_enabled = true;
  SweepService svc(cfg, reg);
  std::int64_t now = 1000;
  FakeClient c = attach_client(svc, now);
  const std::uint64_t j1 = submit_and_stream(svc, c, "alice", now);
  svc.step(now);

  // The admission emitted one probe per point; all miss on a cold cache.
  auto queries = svc.take_cache_queries();
  ASSERT_EQ(queries.size(), kCount);
  EXPECT_EQ(queries[0].job, "unit");
  EXPECT_EQ(queries[0].params, "unit-params");
  for (const svc::CacheQuery& q : queries) {
    svc.cache_result(q.job_id, q.index, /*hit=*/false, "", now);
  }

  StreamResult r1 = pump_until_done(svc, c, kCount, now, {}, j1);
  ASSERT_TRUE(r1.done);
  EXPECT_EQ(r1.last.cached, 0u);
  EXPECT_EQ(r1.rows, serial_rows(kCount));

  // Every computed row was queued for persistence. Keep them as our "cache".
  auto stores = svc.take_cache_stores();
  ASSERT_EQ(stores.size(), kCount);
  std::vector<std::string> blob(kCount);
  for (const svc::CacheStoreReq& s : stores) {
    ASSERT_LT(s.index, kCount);
    blob[s.index] = s.payload;
  }

  // An identical second job: answer every probe with the stored payload.
  const std::uint64_t j2 = submit_and_stream(svc, c, "alice", now);
  svc.step(now);
  queries = svc.take_cache_queries();
  ASSERT_EQ(queries.size(), kCount);
  for (const svc::CacheQuery& q : queries) {
    svc.cache_result(q.job_id, q.index, /*hit=*/true, blob[q.index], now);
  }
  StreamResult r2 = pump_until_done(svc, c, kCount, now, {}, j2);
  ASSERT_TRUE(r2.done);
  EXPECT_EQ(r2.last.cached, kCount);
  EXPECT_EQ(r2.rows, r1.rows);  // byte-identical replay
  // Seeded rows are not re-stored — the store queue stays empty.
  EXPECT_TRUE(svc.take_cache_stores().empty());
  EXPECT_EQ(svc.stats().cache_hits, static_cast<std::int64_t>(kCount));
  EXPECT_EQ(svc.stats().cache_misses, static_cast<std::int64_t>(kCount));
  EXPECT_EQ(svc.fabric_totals().rows_seeded, static_cast<std::int64_t>(kCount));
}

TEST(SvcService, LocalDrainWaitsForOutstandingProbes) {
  const std::size_t kCount = 3;
  JobRegistry reg = unit_registry(kCount);
  ServiceConfig cfg = test_cfg();
  cfg.cache_enabled = true;
  SweepService svc(cfg, reg);
  std::int64_t now = 1000;
  FakeClient c = attach_client(svc, now);
  (void)submit_and_stream(svc, c, "alice", now);

  // Probes outstanding: many steps must execute nothing locally.
  for (int s = 0; s < 20; ++s) {
    svc.step(now);
    now += 10;
  }
  EXPECT_TRUE(c.drain().empty());
  auto queries = svc.take_cache_queries();
  ASSERT_EQ(queries.size(), kCount);
  for (const svc::CacheQuery& q : queries) {
    svc.cache_result(q.job_id, q.index, false, "", now);
  }
  StreamResult r = pump_until_done(svc, c, kCount, now);
  ASSERT_TRUE(r.done);
  EXPECT_EQ(r.rows, serial_rows(kCount));
}

// ---------------------------------------------------------------------------
// Service: hostile clients

TEST(SvcService, RejectsVersionMismatchAndUnknownJobs) {
  JobRegistry reg = unit_registry(3);
  SweepService svc(test_cfg(), reg);
  std::int64_t now = 1000;
  FakeClient c = attach_client(svc, now);

  svc::SubmitJob m;
  m.version = svc::kSvcProtoVersion + 1;
  m.tenant = "t";
  m.job = "unit";
  m.params = "unit-params";
  c.send(svc::encode_submit_job(m));
  svc.step(now);
  auto frames = c.drain();
  ASSERT_EQ(frames.size(), 1u);
  svc::SubmitAck ack;
  ASSERT_TRUE(svc::decode_submit_ack(frames[0], ack));
  EXPECT_FALSE(ack.accept);
  EXPECT_EQ(ack.reason, "protocol version mismatch");

  m.version = svc::kSvcProtoVersion;
  m.job = "nonesuch";
  c.send(svc::encode_submit_job(m));
  svc.step(now);
  frames = c.drain();
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_TRUE(svc::decode_submit_ack(frames[0], ack));
  EXPECT_FALSE(ack.accept);
  EXPECT_EQ(ack.reason, "unknown job or malformed params");
  EXPECT_EQ(svc.stats().jobs_rejected, 2);
}

TEST(SvcService, CorruptClientDiesAloneAndServiceKeepsServing) {
  const std::size_t kCount = 3;
  JobRegistry reg = unit_registry(kCount);
  SweepService svc(test_cfg(), reg);
  std::int64_t now = 1000;
  FakeClient evil = attach_client(svc, now);
  FakeClient good = attach_client(svc, now);

  // Garbage framing from the evil client: its session dies at the decoder.
  evil.send_raw("\xff\xff\xff\xff garbage");
  svc.step(now);
  EXPECT_EQ(svc.stats().clients_dead, 1);
  EXPECT_GE(svc.stats().frames_bad, 1);

  // A server-only frame type from a client is equally fatal.
  FakeClient sneaky = attach_client(svc, now);
  sneaky.send(svc::encode_submit_ack({}));
  svc.step(now);
  EXPECT_EQ(svc.stats().clients_dead, 2);

  // The good client is untouched and completes a full job.
  const std::uint64_t id = submit_and_stream(svc, good, "alice", now);
  StreamResult r = pump_until_done(svc, good, kCount, now, {}, id);
  ASSERT_TRUE(r.done);
  EXPECT_EQ(r.rows, serial_rows(kCount));
}

}  // namespace
}  // namespace hpcs
