#!/usr/bin/env python3
"""Smoke-diff bench JSON output against golden ranges.

Usage:
    scripts/check_bench_json.py <golden.json> <bench_output_dir>

The golden spec maps bench JSON file names to checks keyed by dotted paths
into the document ("sweep.rows_bit_identical", "modes.1.exec_s" — integer
segments index arrays). Each check is one of:

    {"equals": <value>}            exact match (bools, strings, counts)
    {"min": <x>}                   value >= x
    {"max": <y>}                   value <= y
    {"min": <x>, "max": <y>}      closed range

Simulated metrics (exec_s, utilisation, ctx_switches) are deterministic
functions of the config, so their ranges are tight: drifting outside one
means the scheduler's behaviour changed and the golden file must be
re-baselined deliberately. Wall-clock throughput numbers get loose one-sided
bounds only.

Besides the golden checks, every MANIFEST_*.json present in the output dir is
validated against the observability manifest schema (hpcs-obs-manifest-v1 or
-v2): run layout, metric kinds, histogram bucket/edge arity, unique metric
names, and the fixed-layout contract (every run carries the identical metric
name/kind sequence). v2 manifests additionally carry a "windows" object per
run (the --obs-window time series), checked for column/sample arity,
strictly-increasing window timestamps, and one fixed column layout across
runs. Host sidecars (MANIFEST_*.host.json) are checked for their own schema
tag and engine-stat fields; fabric sidecars (MANIFEST_*.fabric.host.json,
written by --dist coordinator runs and by hpcs-sweepd) for the
hpcs-dist-fabric-v2 or -v3 schema, counter fields, the per-shard "spans"
array (bench) or per-job "jobs" array (sweepd), and the optional
"tracepoints" hit-count object. v3 additionally carries fabric.rows_seeded
and the optional "cache" (result-cache counters) and "service" (daemon
counters) objects.

Exit status: 0 all checks pass, 1 any failure (missing file, missing path,
out-of-range value, malformed manifest).
"""

import glob
import json
import os
import sys

MANIFEST_SCHEMAS = ("hpcs-obs-manifest-v1", "hpcs-obs-manifest-v2")
HOST_SCHEMA = "hpcs-obs-host-v1"
FABRIC_SCHEMAS = ("hpcs-dist-fabric-v2", "hpcs-dist-fabric-v3")
METRIC_KINDS = ("counter", "gauge", "histogram")

# Fabric tracepoint names (obs::tp_name, src/obs/tracepoint.cpp) the v2
# fabric sidecar's optional "tracepoints" object may carry; v3 adds the
# service and cache families.
DIST_TRACEPOINTS = (
    "dist_assign",
    "dist_row",
    "dist_retry",
    "dist_steal",
    "dist_heartbeat",
)
SVC_TRACEPOINTS = (
    "svc_submit",
    "svc_job_start",
    "svc_job_done",
    "cache_hit",
    "cache_miss",
)

# Counters in a v3 sidecar's optional "cache" object (cache::CacheStats).
CACHE_COUNTERS = ("hits", "misses", "stores", "evictions", "corrupt")

# Counters in a v3 sweepd sidecar's "service" object (svc::SvcStats).
SERVICE_COUNTERS = (
    "jobs_submitted",
    "jobs_rejected",
    "jobs_done",
    "jobs_cancelled",
    "clients_connected",
    "clients_dead",
    "rows_streamed",
    "frames_bad",
)

JOB_STATES = ("queued", "running", "done", "cancelled")

# Event-queue counter family: a manifest that carries any sim.eq_* metric
# must carry the whole set (obs/recorder.cpp registers them together — a
# partial set means the registration order drifted or a counter was dropped).
EQ_COUNTERS = (
    "sim.eq_scheduled",
    "sim.eq_dispatched",
    "sim.eq_resched_inplace",
    "sim.eq_resched_pending",
    "sim.eq_stale_dropped",
    "sim.eq_wheel_armed",
    "sim.eq_wheel_hits",
    "sim.eq_wheel_cascades",
    "sim.eq_wheel_heap_fallbacks",
    "sim.eq_wheel_batches",
    "sim.eq_wheel_max_batch",
    "sim.eq_wheel_level_skips",
)

# Counters in the fabric sidecar's "fabric" object (bench/bench_dist.h
# write_fabric_sidecar). All non-negative integers; fell_back_local is 0/1.
FABRIC_COUNTERS = (
    "workers_connected",
    "workers_rejected",
    "workers_dead",
    "shards_total",
    "shards_assigned",
    "shards_retried",
    "shards_stolen",
    "shards_local",
    "rows_remote",
    "rows_local",
    "rows_stale",
    "frames_bad",
    "fell_back_local",
)


def validate_windows(win, where, window_layout):
    """Validate one run's v2 "windows" object; returns (problems, layout)."""
    problems = []
    if not isinstance(win, dict):
        return [f"{where}.windows must be an object"], window_layout
    window_ns = win.get("window_ns")
    if not isinstance(window_ns, int) or window_ns < 0:
        problems.append(f"{where}.windows.window_ns must be a non-negative integer")
    int_cols = win.get("int_columns")
    real_cols = win.get("real_columns")
    samples = win.get("samples")
    for key, val in (("int_columns", int_cols), ("real_columns", real_cols)):
        if not isinstance(val, list) or any(not isinstance(c, str) or not c for c in val):
            problems.append(f"{where}.windows.{key} must be an array of names")
            return problems, window_layout
    if not isinstance(samples, list):
        problems.append(f"{where}.windows.samples must be an array")
        return problems, window_layout

    prev_t = 0
    for si, s in enumerate(samples):
        swhere = f"{where}.windows.samples.{si}"
        if not isinstance(s, dict):
            problems.append(f"{swhere} must be an object")
            continue
        t_ns = s.get("t_ns")
        if not isinstance(t_ns, int) or t_ns <= prev_t:
            problems.append(
                f"{swhere}.t_ns = {t_ns!r} not strictly after previous ({prev_t}) — "
                "window timestamps must be positive and monotonic"
            )
        else:
            prev_t = t_ns
        ints, reals = s.get("ints"), s.get("reals")
        if not isinstance(ints, list) or len(ints) != len(int_cols):
            problems.append(
                f"{swhere}.ints has {len(ints) if isinstance(ints, list) else '??'} "
                f"values for {len(int_cols)} int_columns"
            )
        elif any(not isinstance(v, int) for v in ints):
            problems.append(f"{swhere}.ints must be integers")
        if not isinstance(reals, list) or len(reals) != len(real_cols):
            problems.append(
                f"{swhere}.reals has {len(reals) if isinstance(reals, list) else '??'} "
                f"values for {len(real_cols)} real_columns"
            )
        elif any(not isinstance(v, (int, float)) for v in reals):
            problems.append(f"{swhere}.reals must be numbers")

    this_layout = (window_ns, tuple(int_cols), tuple(real_cols))
    if window_layout is None:
        window_layout = this_layout
    elif this_layout != window_layout:
        problems.append(
            f"{where}.windows: column layout or period differs from runs.0 — "
            "the windowed series shares the manifest's fixed-layout contract"
        )
    return problems, window_layout


def validate_manifest(doc, fname):
    """Return a list of problem strings for one manifest document."""
    problems = []
    schema = doc.get("schema")
    if schema not in MANIFEST_SCHEMAS:
        problems.append(f"schema is {schema!r}, want one of {MANIFEST_SCHEMAS}")
    v2 = schema == "hpcs-obs-manifest-v2"
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        problems.append("bench must be a non-empty string")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("runs must be a non-empty array")
        return problems

    layout = None  # (name, kind) sequence every run must share
    window_layout = None  # (window_ns, int_columns, real_columns) ditto
    for ri, run in enumerate(runs):
        where = f"runs.{ri}"
        if not isinstance(run.get("name"), str) or not run.get("name"):
            problems.append(f"{where}.name must be a non-empty string")
        if not isinstance(run.get("sim_end_s"), (int, float)):
            problems.append(f"{where}.sim_end_s must be a number")
        metrics = run.get("metrics")
        if not isinstance(metrics, list) or not metrics:
            problems.append(f"{where}.metrics must be a non-empty array")
            continue

        seen = set()
        this_layout = []
        for mi, m in enumerate(metrics):
            mwhere = f"{where}.metrics.{mi}"
            name, kind = m.get("name"), m.get("kind")
            if not isinstance(name, str) or not name:
                problems.append(f"{mwhere}.name must be a non-empty string")
                continue
            if name in seen:
                problems.append(f"{mwhere}: duplicate metric name {name!r}")
            seen.add(name)
            this_layout.append((name, kind))
            if kind not in METRIC_KINDS:
                problems.append(f"{mwhere} ({name}): kind {kind!r} not in {METRIC_KINDS}")
                continue
            if kind == "counter" and not isinstance(m.get("count"), int):
                problems.append(f"{mwhere} ({name}): counter needs integer count")
            if kind == "gauge" and not isinstance(m.get("value"), (int, float)):
                problems.append(f"{mwhere} ({name}): gauge needs numeric value")
            if kind == "histogram":
                edges, buckets = m.get("edges"), m.get("buckets")
                if not isinstance(m.get("count"), int) or not isinstance(
                    m.get("sum"), (int, float)
                ):
                    problems.append(f"{mwhere} ({name}): histogram needs count and sum")
                if not isinstance(edges, list) or not isinstance(buckets, list):
                    problems.append(f"{mwhere} ({name}): histogram needs edges and buckets")
                    continue
                if len(buckets) != len(edges) + 1:
                    problems.append(
                        f"{mwhere} ({name}): {len(buckets)} buckets for "
                        f"{len(edges)} edges (want edges+1)"
                    )
                if any(not a < b for a, b in zip(edges, edges[1:])):
                    problems.append(f"{mwhere} ({name}): edges not strictly ascending")
                if any(not isinstance(b, int) or b < 0 for b in buckets):
                    problems.append(f"{mwhere} ({name}): buckets must be counts >= 0")

        if layout is None:
            layout = this_layout
        elif this_layout != layout:
            problems.append(
                f"{where}: metric layout differs from runs.0 — the manifest "
                "contract is one fixed registration order for every run"
            )

        names = {n for n, _ in this_layout}
        if any(n.startswith("sim.eq_") for n in names):
            missing = [n for n in EQ_COUNTERS if n not in names]
            if missing:
                problems.append(
                    f"{where}: event-queue counter set incomplete, missing {missing}"
                )

        if v2:
            wproblems, window_layout = validate_windows(
                run.get("windows"), where, window_layout
            )
            problems.extend(wproblems)
        elif "windows" in run:
            problems.append(f"{where}: a v1 manifest must not carry a windows object")
    return problems


def validate_host_sidecar(doc, fname):
    problems = []
    if doc.get("schema") != HOST_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, want {HOST_SCHEMA!r}")
    engine = doc.get("engine")
    if not isinstance(engine, dict):
        problems.append("engine must be an object")
        return problems
    for key in ("tasks", "workers", "jobs_submitted", "jobs_executed", "max_queue_depth"):
        if not isinstance(engine.get(key), int):
            problems.append(f"engine.{key} must be an integer")
    if not isinstance(engine.get("wall_ms"), (int, float)):
        problems.append("engine.wall_ms must be a number")
    return problems


def validate_fabric_sidecar(doc, fname):
    problems = []
    schema = doc.get("schema")
    if schema not in FABRIC_SCHEMAS:
        problems.append(f"schema is {schema!r}, want one of {FABRIC_SCHEMAS}")
    v3 = schema == "hpcs-dist-fabric-v3"
    # A sidecar names its writer: "bench" for bench --dist runs, "daemon"
    # for hpcs-sweepd (v3 only). Exactly one of the two.
    daemon = "daemon" in doc
    if daemon:
        if doc.get("daemon") != "hpcs-sweepd":
            problems.append(f"daemon is {doc.get('daemon')!r}, want 'hpcs-sweepd'")
        if not v3:
            problems.append("a daemon sidecar must carry the v3 schema")
        if "bench" in doc:
            problems.append("a sidecar names bench or daemon, not both")
    elif not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        problems.append("bench must be a non-empty string")
    if not isinstance(doc.get("port"), int) or not 0 <= doc["port"] <= 65535:
        problems.append("port must be an integer in [0, 65535]")
    fabric = doc.get("fabric")
    if not isinstance(fabric, dict):
        problems.append("fabric must be an object")
        return problems
    counters = FABRIC_COUNTERS + (("rows_seeded",) if v3 else ())
    for key in counters:
        val = fabric.get(key)
        if not isinstance(val, int) or val < 0:
            problems.append(f"fabric.{key} must be a non-negative integer")
    if not v3 and "rows_seeded" in fabric:
        problems.append("fabric.rows_seeded is a v3 field")
    if isinstance(fabric.get("fell_back_local"), int) and fabric["fell_back_local"] not in (0, 1):
        problems.append("fabric.fell_back_local must be 0 or 1")
    # Internal consistency: every row came from somewhere (computed locally,
    # streamed by a worker, or seeded out of the result cache), and every
    # shard that ran locally is part of the total.
    ints = all(isinstance(fabric.get(k), int) for k in counters)
    if ints:
        if fabric["shards_local"] > fabric["shards_total"]:
            problems.append("fabric.shards_local exceeds shards_total")
        rows = fabric["rows_remote"] + fabric["rows_local"] + fabric.get("rows_seeded", 0)
        if rows == 0 and fabric["shards_total"] > 0:
            problems.append("fabric produced no rows for a non-empty sweep")

    cache = doc.get("cache")
    if cache is not None:  # present only when a result cache was configured
        if not v3:
            problems.append("cache is a v3 object")
        if not isinstance(cache, dict):
            problems.append("cache must be an object")
        else:
            for key in CACHE_COUNTERS:
                if not isinstance(cache.get(key), int) or cache[key] < 0:
                    problems.append(f"cache.{key} must be a non-negative integer")

    service = doc.get("service")
    if daemon and not isinstance(service, dict):
        problems.append("a daemon sidecar must carry a service object")
    elif not daemon and service is not None:
        problems.append("service is a daemon-sidecar object")
    if isinstance(service, dict):
        for key in SERVICE_COUNTERS:
            if not isinstance(service.get(key), int) or service[key] < 0:
                problems.append(f"service.{key} must be a non-negative integer")

    # A bench sidecar carries per-shard "spans"; a daemon sidecar carries
    # per-job "jobs" instead (one daemon run multiplexes many sweeps).
    spans = [] if daemon else doc.get("spans")
    if daemon:
        problems.extend(validate_job_spans(doc.get("jobs")))
    elif not isinstance(spans, list):
        problems.append("spans must be an array (v2)")
    else:
        if ints and len(spans) != fabric["shards_total"]:
            problems.append(
                f"spans has {len(spans)} entries for fabric.shards_total = "
                f"{fabric['shards_total']}"
            )
        for si, span in enumerate(spans):
            where = f"spans.{si}"
            if not isinstance(span, dict):
                problems.append(f"{where} must be an object")
                continue
            if span.get("shard") != si:
                problems.append(f"{where}.shard = {span.get('shard')!r}, want {si}")
            for key in ("first_assign_ms", "done_ms"):
                if not isinstance(span.get(key), int) or span[key] < -1:
                    problems.append(f"{where}.{key} must be an integer >= -1")
            if not isinstance(span.get("attempts"), int) or span["attempts"] < 0:
                problems.append(f"{where}.attempts must be a non-negative integer")
            if not isinstance(span.get("done_by"), str):
                problems.append(f"{where}.done_by must be a string")
            if (
                isinstance(span.get("first_assign_ms"), int)
                and isinstance(span.get("done_ms"), int)
                and span["first_assign_ms"] >= 0
                and span["done_ms"] >= 0
                and span["done_ms"] < span["first_assign_ms"]
            ):
                problems.append(f"{where}: done_ms precedes first_assign_ms")

    tps = doc.get("tracepoints")
    if tps is not None:  # present only when the writer ran with --obs
        allowed = DIST_TRACEPOINTS + (SVC_TRACEPOINTS if v3 else ())
        if not isinstance(tps, dict):
            problems.append("tracepoints must be an object")
        else:
            for key, val in tps.items():
                if key not in allowed:
                    problems.append(f"tracepoints.{key}: not a fabric tracepoint")
                elif not isinstance(val, int) or val < 0:
                    problems.append(f"tracepoints.{key} must be a non-negative integer")
    return problems


def validate_job_spans(jobs):
    """Validate a sweepd sidecar's per-job "jobs" array."""
    problems = []
    if not isinstance(jobs, list):
        return ["jobs must be an array (sweepd sidecar)"]
    for ji, job in enumerate(jobs):
        where = f"jobs.{ji}"
        if not isinstance(job, dict):
            problems.append(f"{where} must be an object")
            continue
        if not isinstance(job.get("id"), int) or job["id"] <= 0:
            problems.append(f"{where}.id must be a positive integer")
        for key in ("tenant", "job"):
            if not isinstance(job.get(key), str) or not job[key]:
                problems.append(f"{where}.{key} must be a non-empty string")
        if job.get("state") not in JOB_STATES:
            problems.append(f"{where}.state = {job.get('state')!r} not in {JOB_STATES}")
        for key in ("submit_ms", "start_ms", "done_ms"):
            if not isinstance(job.get(key), int) or job[key] < -1:
                problems.append(f"{where}.{key} must be an integer >= -1")
        for key in ("total", "cached", "rows_local", "rows_remote"):
            if not isinstance(job.get(key), int) or job[key] < 0:
                problems.append(f"{where}.{key} must be a non-negative integer")
        if (
            isinstance(job.get("cached"), int)
            and isinstance(job.get("total"), int)
            and job["cached"] > job["total"]
        ):
            problems.append(f"{where}: cached exceeds total")
    return problems


def check_manifests(bench_dir):
    failures = 0
    for path in sorted(glob.glob(f"{bench_dir}/MANIFEST_*.json")):
        fname = os.path.basename(path)
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL {fname}: cannot load ({e})")
            failures += 1
            continue
        # Order matters: the fabric sidecar's name also ends in ".host.json".
        if fname.endswith(".fabric.host.json"):
            validate, kind = validate_fabric_sidecar, "fabric sidecar"
        elif fname.endswith(".host.json"):
            validate, kind = validate_host_sidecar, "host sidecar"
        else:
            validate, kind = validate_manifest, "manifest"
        problems = validate(doc, fname)
        for p in problems:
            print(f"FAIL {fname}: {p}")
        failures += len(problems)
        if not problems:
            print(f"  ok  {fname}: valid {kind}")
    return failures


def lookup(doc, dotted):
    node = doc
    for seg in dotted.split("."):
        if isinstance(node, list):
            node = node[int(seg)]
        elif isinstance(node, dict):
            node = node[seg]
        else:
            raise KeyError(seg)
    return node


def run_checks(spec_path, bench_dir):
    with open(spec_path, encoding="utf-8") as f:
        spec = json.load(f)

    failures = 0
    for fname, checks in spec.items():
        path = f"{bench_dir}/{fname}"
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL {fname}: cannot load ({e})")
            failures += len(checks)
            continue

        for dotted, rule in checks.items():
            try:
                value = lookup(doc, dotted)
            except (KeyError, IndexError, ValueError):
                print(f"FAIL {fname}: {dotted} missing")
                failures += 1
                continue

            ok = True
            if "equals" in rule:
                ok = value == rule["equals"]
            if ok and "min" in rule:
                ok = value >= rule["min"]
            if ok and "max" in rule:
                ok = value <= rule["max"]

            if ok:
                print(f"  ok  {fname}: {dotted} = {value}")
            else:
                print(f"FAIL {fname}: {dotted} = {value}, expected {rule}")
                failures += 1

    return failures


def main(argv):
    if len(argv) != 3:
        print("usage: check_bench_json.py <golden.json> <bench_output_dir>", file=sys.stderr)
        return 2
    failures = run_checks(argv[1], argv[2])
    failures += check_manifests(argv[2])
    if failures:
        print(f"bench smoke-diff: {failures} check(s) FAILED")
        return 1
    print("bench smoke-diff: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
