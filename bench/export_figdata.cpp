// Exports the machine-readable data behind every figure: per-iteration
// utilization CSVs, state-interval CSVs, priority timelines and real
// Paraver .prv/.pcf/.row trace sets for the four workloads — into
// ./bench_data/. This is how a downstream user regenerates the paper's
// plots with their own tooling (or opens the traces in wxparaver).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "analysis/paper_experiments.h"
#include "fig_common.h"
#include "trace/csv.h"
#include "trace/paraver.h"

using namespace hpcs;
using analysis::SchedMode;

namespace {

void export_run(const std::string& dir, const std::string& name,
                const analysis::RunResult& r) {
  std::vector<Pid> pids;
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < r.ranks.size(); ++i) {
    pids.push_back(r.ranks[i].pid);
    labels.push_back("P" + std::to_string(i + 1));
  }
  {
    std::ofstream os(dir + "/" + name + "_iterations.csv");
    trace::write_iterations_csv(os, *r.tracer, pids, labels);
  }
  {
    std::ofstream os(dir + "/" + name + "_intervals.csv");
    trace::write_intervals_csv(os, *r.tracer, pids, labels);
  }
  {
    std::ofstream os(dir + "/" + name + "_priorities.csv");
    trace::write_priorities_csv(os, *r.tracer, pids, labels);
  }
  trace::ParaverJob job;
  job.pids = pids;
  job.labels = labels;
  trace::export_paraver(dir + "/" + name, *r.tracer, job);
  std::printf("  %s: exec %.2fs -> %s/%s_*.csv + .prv/.pcf/.row\n", name.c_str(),
              r.exec_time.sec(), dir.c_str(), name.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_logging(argc, argv);
  bench::FigObs fobs("export_figdata", bench::parse_obs_options(argc, argv));
  const std::string dir = "bench_data";
  std::filesystem::create_directories(dir);
  std::printf("=== exporting figure data to ./%s ===\n", dir.c_str());

  // With --obs-trace the same runs additionally land in one Chrome-trace /
  // Perfetto file (each export as its own "process") next to the CSVs.
  const auto keep = [&](const char* name, analysis::RunResult r) {
    export_run(dir, name, r);
    fobs.keep(name, std::move(r));
  };
  {
    auto e = analysis::MetBenchExperiment::paper();
    e.workload.iterations = 12;
    keep("fig3a_metbench_baseline",
         analysis::run_metbench(e, SchedMode::kBaselineCfs, true, 1, fobs.cfg()));
    keep("fig3c_metbench_uniform",
         analysis::run_metbench(e, SchedMode::kUniform, true, 1, fobs.cfg()));
  }
  {
    const auto e = analysis::MetBenchVarExperiment::paper();
    keep("fig4c_metbenchvar_uniform",
         analysis::run_metbenchvar(e, SchedMode::kUniform, true, 1, fobs.cfg()));
  }
  {
    auto e = analysis::BtMzExperiment::paper();
    e.workload.iterations = 60;
    keep("fig5c_btmz_uniform", analysis::run_btmz(e, SchedMode::kUniform, true, 1, fobs.cfg()));
  }
  {
    auto e = analysis::SiestaExperiment::paper();
    e.workload.microiters = 8000;
    keep("fig6b_siesta_uniform",
         analysis::run_siesta(e, SchedMode::kUniform, true, 1, fobs.cfg()));
  }
  fobs.finish();
  std::printf("done.\n");
  return 0;
}
