// Unit tests of the HPCSched components in isolation: iteration tracker,
// heuristic metrics and classification, imbalance detector, mechanisms and
// sysfs tunables.

#include <gtest/gtest.h>

#include "hpcsched/heuristics.h"
#include "hpcsched/imbalance_detector.h"
#include "hpcsched/iteration_tracker.h"
#include "kernel/sysfs.h"

namespace hpcs::hpc {
namespace {

SimTime at_ms(std::int64_t ms) { return SimTime(ms * 1000000); }

// ---- IterationTracker ------------------------------------------------------

TEST(IterationTracker, FirstWakeupOpensRunPhase) {
  IterationTracker tr;
  EXPECT_FALSE(tr.on_wakeup(1, at_ms(0)).has_value());
  const TaskIterStats* s = tr.stats(1);
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->in_run);
  EXPECT_EQ(s->iterations, 0);
}

TEST(IterationTracker, IterationUtilization) {
  IterationTracker tr;
  tr.on_wakeup(1, at_ms(0));          // run phase starts
  tr.on_run_end(1, at_ms(25));        // t_R = 25 ms
  const auto s = tr.on_wakeup(1, at_ms(100));  // t_W = 75 ms -> U = 25%
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(s->util_last, 25.0, 1e-9);
  EXPECT_NEAR(s->util_global, 25.0, 1e-9);
  EXPECT_EQ(s->iteration, 1);
}

TEST(IterationTracker, GlobalIsTimeWeighted) {
  IterationTracker tr;
  tr.on_wakeup(1, at_ms(0));
  tr.on_run_end(1, at_ms(100));           // iter 1: 100 run / 0 wait... wait below
  tr.on_wakeup(1, at_ms(200));            // iter 1: U = 50% (100/200)
  tr.on_run_end(1, at_ms(300));           // iter 2: 100 run
  const auto s = tr.on_wakeup(1, at_ms(1200));  // iter 2: U = 10% (100/1000)
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(s->util_last, 10.0, 1e-9);
  // Global = total run / total span = 200 / 1200.
  EXPECT_NEAR(s->util_global, 100.0 * 200.0 / 1200.0, 1e-9);
}

TEST(IterationTracker, MicroIterationsAreMerged) {
  IterationTracker tr;
  tr.min_iteration = Duration::microseconds(500);
  tr.on_wakeup(1, at_ms(0));
  tr.on_run_end(1, at_ms(10));
  // Normal iteration closes (span 10.02 ms >= quantum).
  ASSERT_TRUE(tr.on_wakeup(1, SimTime(10 * 1000000 + 20000)).has_value());
  // The waitall double wakeup: block again almost immediately, second wake
  // 20 us later — that would-be iteration spans 30 us < quantum -> merged.
  tr.on_run_end(1, SimTime(10 * 1000000 + 30000));
  EXPECT_FALSE(tr.on_wakeup(1, SimTime(10 * 1000000 + 50000)).has_value());
  EXPECT_EQ(tr.stats(1)->iterations, 1);
  // The merged micro-span folds into the next real iteration.
  tr.on_run_end(1, at_ms(16));
  const auto s = tr.on_wakeup(1, at_ms(20));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->iteration, 2);
  // Run phase resumed at the first wake (10.02 ms): ~5.98 run / ~4 wait.
  EXPECT_NEAR(s->util_last, 100.0 * 5.98 / 9.98, 1.0);
}

TEST(IterationTracker, ResetRestartsGlobalFromLast) {
  IterationTracker tr;
  tr.on_wakeup(1, at_ms(0));
  tr.on_run_end(1, at_ms(10));
  tr.on_wakeup(1, at_ms(100));  // U_last = 10%
  tr.reset_history(1);
  const TaskIterStats* s = tr.stats(1);
  EXPECT_EQ(s->iterations, 0);
  EXPECT_EQ(s->total_iterations, 1);  // lifetime count survives
  EXPECT_NEAR(s->util_global, s->util_last, 1e-9);
  EXPECT_EQ(s->resets, 1);
}

// ---- Heuristics -------------------------------------------------------------

TEST(Heuristics, Classification) {
  HpcTunables tun;  // low 65, high 85, prio [4,6]
  EXPECT_EQ(classify_band(90.0, tun), 2);
  EXPECT_EQ(classify_band(85.0, tun), 2);
  EXPECT_EQ(classify_band(70.0, tun), 1);
  EXPECT_EQ(classify_band(65.0, tun), 0);
  EXPECT_EQ(classify_band(20.0, tun), 0);
  EXPECT_EQ(classify_priority(90.0, tun), 6);
  EXPECT_EQ(classify_priority(70.0, tun), 5);
  EXPECT_EQ(classify_priority(20.0, tun), 4);
}

TEST(Heuristics, ClassificationRespectsTunables) {
  HpcTunables tun;
  tun.low_util = 30;
  tun.high_util = 60;
  tun.min_prio = 2;
  tun.max_prio = 6;
  EXPECT_EQ(classify_priority(70.0, tun), 6);
  EXPECT_EQ(classify_priority(45.0, tun), 4);  // mid of [2,6]
  EXPECT_EQ(classify_priority(10.0, tun), 2);
}

TEST(Heuristics, BtMzProfileMapsToPaperStaticPriorities) {
  // The Table V baseline utilizations must classify to the paper's
  // hand-tuned static set 4/4/5/6.
  HpcTunables tun;
  EXPECT_EQ(classify_priority(17.63, tun), 4);
  EXPECT_EQ(classify_priority(29.85, tun), 4);
  EXPECT_EQ(classify_priority(66.09, tun), 5);
  EXPECT_EQ(classify_priority(99.85, tun), 6);
}

TEST(Heuristics, UniformUsesGlobal) {
  UniformHeuristic u;
  HpcTunables tun;
  TaskIterStats s;
  s.util_global = 42.0;
  s.util_last = 99.0;
  EXPECT_DOUBLE_EQ(u.metric(s, tun), 42.0);
}

TEST(Heuristics, AdaptiveBlendsGlobalAndLast) {
  AdaptiveHeuristic a;
  HpcTunables tun;
  tun.adaptive_g_pct = 10;
  TaskIterStats s;
  s.util_global_prev = 40.0;
  s.util_last = 90.0;
  EXPECT_NEAR(a.metric(s, tun), 0.1 * 40.0 + 0.9 * 90.0, 1e-9);
  tun.adaptive_g_pct = 100;  // degenerates to Uniform-on-previous-global
  EXPECT_NEAR(a.metric(s, tun), 40.0, 1e-9);
}

TEST(Heuristics, HybridWeighsRecencyByVariance) {
  HybridHeuristic h(100.0);
  HpcTunables tun;
  TaskIterStats steady;
  steady.util_global_prev = 40.0;
  steady.util_last = 90.0;
  steady.util_emvar = 0.0;  // quiet history -> behave like Uniform (L=0.1)
  EXPECT_NEAR(h.metric(steady, tun), 0.9 * 40.0 + 0.1 * 90.0, 1e-9);
  TaskIterStats turbulent = steady;
  turbulent.util_emvar = 1000.0;  // dynamic phase -> L=0.9
  EXPECT_NEAR(h.metric(turbulent, tun), 0.1 * 40.0 + 0.9 * 90.0, 1e-9);
}

TEST(Heuristics, Factory) {
  EXPECT_STREQ(make_heuristic(HeuristicKind::kUniform)->name(), "uniform");
  EXPECT_STREQ(make_heuristic(HeuristicKind::kAdaptive)->name(), "adaptive");
  EXPECT_STREQ(make_heuristic(HeuristicKind::kHybrid)->name(), "hybrid");
}

// ---- ImbalanceDetector -------------------------------------------------------

TEST(ImbalanceDetector, BalancedWhenAllHigh) {
  ImbalanceDetector d;
  HpcTunables tun;
  d.record(1, 95.0);
  d.record(2, 99.0);
  EXPECT_TRUE(d.balanced(tun));
  d.record(3, 50.0);
  EXPECT_FALSE(d.balanced(tun));
  d.record(3, 90.0);
  EXPECT_TRUE(d.balanced(tun));
  d.forget(3);
  EXPECT_TRUE(d.balanced(tun));
}

TEST(ImbalanceDetector, Spread) {
  ImbalanceDetector d;
  EXPECT_DOUBLE_EQ(d.spread(), 0.0);
  d.record(1, 25.0);
  d.record(2, 100.0);
  EXPECT_DOUBLE_EQ(d.spread(), 75.0);
}

TEST(ImbalanceDetector, BehaviourChangeAfterStreak) {
  ImbalanceDetector d;
  HpcTunables tun;
  tun.reset_after = 2;
  TaskIterStats s;
  s.util_last = 95.0;   // high band
  s.util_global = 40.0;  // low band -> mismatch
  EXPECT_FALSE(d.behaviour_changed(s, tun));  // streak 1
  EXPECT_TRUE(d.behaviour_changed(s, tun));   // streak 2 -> reset
  // Agreement clears the streak.
  s.util_global = 95.0;
  s.mismatch_streak = 1;
  EXPECT_FALSE(d.behaviour_changed(s, tun));
  EXPECT_EQ(s.mismatch_streak, 0);
}

// ---- Sysfs -------------------------------------------------------------------

TEST(Sysfs, RegisterReadWrite) {
  kern::Sysfs fs;
  std::int64_t v = 10;
  fs.register_int("a/b", &v, 0, 100);
  EXPECT_TRUE(fs.exists("a/b"));
  EXPECT_EQ(fs.read("a/b"), 10);
  EXPECT_TRUE(fs.write("a/b", 55));
  EXPECT_EQ(v, 55);
  EXPECT_FALSE(fs.write("a/b", 101));  // out of range
  EXPECT_EQ(v, 55);
  EXPECT_FALSE(fs.write("missing", 1));
  EXPECT_FALSE(fs.read("missing").has_value());
  EXPECT_EQ(fs.list().size(), 1u);
}

}  // namespace
}  // namespace hpcs::hpc
