#pragma once
// TraceSink fan-out: the kernel holds exactly one TraceSink pointer, but a
// run often wants several observers at once (Paraver tracer + CSV source +
// the Perfetto exporter + the obs recorder's histograms). MultiSink forwards
// every hook to each registered sink in registration order; it does not own
// the sinks.

#include <vector>

#include "kernel/trace_hooks.h"

namespace hpcs::trace {

class MultiSink final : public kern::TraceSink {
 public:
  MultiSink() = default;

  /// Register a sink; null pointers are ignored so callers can pass
  /// optional sinks unconditionally.
  void add(kern::TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  [[nodiscard]] std::size_t size() const { return sinks_.size(); }
  [[nodiscard]] bool empty() const { return sinks_.empty(); }

  void on_switch(SimTime t, CpuId cpu, const kern::Task* prev,
                 const kern::Task* next) override {
    for (kern::TraceSink* s : sinks_) s->on_switch(t, cpu, prev, next);
  }
  void on_state(SimTime t, const kern::Task& task, kern::TaskState new_state) override {
    for (kern::TraceSink* s : sinks_) s->on_state(t, task, new_state);
  }
  void on_hw_prio(SimTime t, const kern::Task& task, p5::HwPrio prio) override {
    for (kern::TraceSink* s : sinks_) s->on_hw_prio(t, task, prio);
  }
  void on_wakeup_latency(SimTime t, const kern::Task& task, Duration latency) override {
    for (kern::TraceSink* s : sinks_) s->on_wakeup_latency(t, task, latency);
  }
  void on_iteration(SimTime t, const kern::Task& task, int iteration, double util_last,
                    double util_metric) override {
    for (kern::TraceSink* s : sinks_) s->on_iteration(t, task, iteration, util_last, util_metric);
  }

 private:
  std::vector<kern::TraceSink*> sinks_;
};

}  // namespace hpcs::trace
