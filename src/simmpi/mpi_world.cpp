#include "simmpi/mpi_world.h"

#include <cstdio>
#include <string>
#include <utility>

#include "common/check.h"

namespace hpcs::mpi {
namespace {

bool spec_matches(int spec_src, int spec_tag, int src, int tag) {
  return (spec_src == kAnySource || spec_src == src) && (spec_tag == kAnyTag || spec_tag == tag);
}

/// The kernel-side body of one rank: forwards interaction points to the
/// world's interpreter.
class RankBody final : public kern::TaskBody {
 public:
  RankBody(MpiWorld& world, int rank) : world_(&world), rank_(rank) {}
  void step(kern::Kernel& k, kern::Task& t) override {
    (void)k;
    world_->step_rank(rank_, t);
  }

 private:
  MpiWorld* world_;
  int rank_;
};

}  // namespace

MpiWorld::MpiWorld(kern::Kernel& k, MpiWorldConfig cfg,
                   std::vector<std::unique_ptr<RankProgram>> programs)
    : kernel_(&k), cfg_(std::move(cfg)), net_(cfg_.net, Rng(cfg_.seed ^ 0xD1CEull)) {
  HPCS_CHECK_MSG(!programs.empty(), "an MPI world needs at least one rank");
  ranks_.resize(programs.size());
  for (std::size_t r = 0; r < programs.size(); ++r) {
    RankState& rs = ranks_[r];
    rs.program = std::move(programs[r]);
    const CpuId cpu = r < cfg_.placement.size() ? cfg_.placement[r]
                                                : static_cast<CpuId>(r) % k.num_cpus();
    rs.task = &k.create_task(cfg_.name_prefix + std::to_string(r),
                             std::make_unique<RankBody>(*this, static_cast<int>(r)),
                             cfg_.policy, cpu);
    if (r < cfg_.static_hw_prio.size()) {
      k.request_hw_prio(*rs.task, p5::hw_prio_from_int(cfg_.static_hw_prio[r]));
    }
  }
}

std::size_t MpiWorld::check_rank(int rank) const {
  HPCS_CHECK(rank >= 0 && rank < size());
  return static_cast<std::size_t>(rank);
}

void MpiWorld::start() {
  for (auto& rs : ranks_) kernel_->start_task(*rs.task);
}

void MpiWorld::release_rendezvous(const Message& m) {
  if (m.rv_sender < 0) return;
  RankState& sender = ranks_[check_rank(m.rv_sender)];
  --sender.pending_rv_sends;
  if (!sender.exited && sender.waiting == WaitKind::kSendRendezvous) {
    kernel_->wake(*sender.task);
  }
}

bool MpiWorld::try_consume(RankState& rs, int src, int tag) {
  for (auto it = rs.mailbox.begin(); it != rs.mailbox.end(); ++it) {
    if (spec_matches(src, tag, it->src, it->tag)) {
      release_rendezvous(*it);
      rs.mailbox.erase(it);
      return true;
    }
  }
  return false;
}

bool MpiWorld::match_irecv(RankState& rs, const Message& m) {
  for (auto it = rs.pending_irecvs.begin(); it != rs.pending_irecvs.end(); ++it) {
    if (spec_matches(it->first, it->second, m.src, m.tag)) {
      rs.pending_irecvs.erase(it);
      release_rendezvous(m);
      return true;
    }
  }
  return false;
}

void MpiWorld::deliver(int dst, Message m) {
  RankState& rs = ranks_[check_rank(dst)];
  if (rs.exited) {
    // Nobody will ever consume this message; do not strand a rendezvous
    // sender behind an exited peer.
    release_rendezvous(m);
    return;
  }
  ++messages_;
  ++rs.msgs_received;
  // Messages matching a posted irecv complete the request directly; others
  // sit in the mailbox for a (blocking or future non-blocking) receive.
  if (!match_irecv(rs, m)) rs.mailbox.push_back(m);
  // Wake the rank if this arrival may satisfy its wait; the body re-checks
  // its condition when stepped, so spurious wakeups are harmless.
  if (rs.waiting == WaitKind::kRecv || rs.waiting == WaitKind::kWaitAll) {
    kernel_->wake(*rs.task);
  }
}

void MpiWorld::barrier_arrive(int rank) {
  (void)rank;
  ++barrier_waiting_;
  maybe_release_barrier();
}

void MpiWorld::maybe_release_barrier() {
  if (barrier_release_pending_) return;
  if (barrier_waiting_ == 0 || barrier_waiting_ < size() - exited_) return;
  // Every live rank has arrived: release after the notification round-trip.
  barrier_release_pending_ = true;
  const Duration delay = net_.delay(64) + net_.delay(64);
  kernel_->sim().schedule_in(delay, [this] {
    barrier_release_pending_ = false;
    barrier_waiting_ = 0;
    ++barrier_generation_;
    for (auto& rs : ranks_) {
      if (!rs.exited && rs.waiting == WaitKind::kBarrier) kernel_->wake(*rs.task);
    }
  });
}

Duration MpiWorld::tree_delay(std::int64_t bytes, int phases) {
  int live = size() - exited_;
  if (live < 2) live = 2;
  int levels = 0;
  for (int span = 1; span < live; span *= 2) ++levels;
  Duration total = Duration::zero();
  for (int p = 0; p < phases * levels; ++p) total += net_.delay(bytes);
  return std::max(total, Duration(1));
}

void MpiWorld::wake_waiters(WaitKind kind) {
  for (auto& rs : ranks_) {
    if (!rs.exited && rs.waiting == kind) kernel_->wake(*rs.task);
  }
}

void MpiWorld::maybe_release_allreduce(std::int64_t bytes) {
  if (allreduce_.release_pending) return;
  if (allreduce_.waiting == 0 || allreduce_.waiting < size() - exited_) return;
  allreduce_.release_pending = true;
  // Reduce phase + broadcast phase over a binary tree.
  kernel_->sim().schedule_in(tree_delay(bytes, 2), [this] {
    allreduce_.release_pending = false;
    allreduce_.waiting = 0;
    ++allreduce_.generation;
    wake_waiters(WaitKind::kAllreduce);
  });
}

void MpiWorld::step_rank(int rank, kern::Task& t) {
  RankState& rs = ranks_[check_rank(rank)];
  kern::Kernel& k = *kernel_;

  // Re-check a pending wait condition first (we may have been woken
  // spuriously or by the matching event).
  switch (rs.waiting) {
    case WaitKind::kBarrier:
      if (rs.barrier_gen > barrier_generation_) {
        k.body_block(t);  // not released yet
        return;
      }
      rs.waiting = WaitKind::kNone;
      break;
    case WaitKind::kRecv:
      if (!try_consume(rs, rs.recv_src, rs.recv_tag)) {
        k.body_block(t);
        return;
      }
      rs.waiting = WaitKind::kNone;
      break;
    case WaitKind::kWaitAll:
      if (!rs.pending_irecvs.empty() || rs.pending_isends > 0) {
        k.body_block(t);
        return;
      }
      rs.waiting = WaitKind::kNone;
      break;
    case WaitKind::kAllreduce:
      if (rs.allreduce_gen > allreduce_.generation) {
        k.body_block(t);
        return;
      }
      rs.waiting = WaitKind::kNone;
      break;
    case WaitKind::kBcast:
      if (rs.bcast_taken >= bcast_rounds_delivered_) {
        k.body_block(t);
        return;
      }
      ++rs.bcast_taken;
      rs.waiting = WaitKind::kNone;
      break;
    case WaitKind::kReduceRoot:
      if (rs.reduce_round >= reduce_rounds_ready_) {
        k.body_block(t);
        return;
      }
      ++rs.reduce_round;
      rs.waiting = WaitKind::kNone;
      break;
    case WaitKind::kSendRendezvous:
      if (rs.pending_rv_sends > 0) {
        k.body_block(t);
        return;
      }
      rs.waiting = WaitKind::kNone;
      break;
    case WaitKind::kNone:
      break;
  }

  // Interpret ops until one needs the kernel.
  for (;;) {
    MpiOp op = rs.program->next();

    if (auto* c = std::get_if<OpCompute>(&op)) {
      if (c->work <= 0.0) continue;  // empty segment: skip
      k.body_compute(t, c->work);
      return;
    }
    if (std::get_if<OpBarrier>(&op) != nullptr) {
      // Every rank blocks, including the last arriver: the release is a
      // message round-trip (MetBench uses a master-coordinated barrier), so
      // even the slowest rank sleeps briefly — which is also what lets the
      // HPC scheduler observe an iteration boundary on every rank.
      rs.waiting = WaitKind::kBarrier;
      rs.barrier_gen = barrier_generation_ + 1;
      barrier_arrive(rank);
      k.body_block(t);
      return;
    }
    if (auto* s = std::get_if<OpSend>(&op)) {
      ++rs.msgs_sent;
      rs.bytes_sent += s->bytes;
      const int dst = s->dst;
      const bool rendezvous =
          cfg_.net.eager_threshold > 0 && s->bytes > cfg_.net.eager_threshold;
      Message m{rank, s->tag, s->bytes, rendezvous ? rank : -1};
      kernel_->sim().schedule_in(net_.delay(s->bytes),
                                 [this, dst, m] { deliver(dst, m); });
      if (rendezvous) {
        // Rendezvous: the send only completes once the receiver consumes it.
        ++rs.pending_rv_sends;
        rs.waiting = WaitKind::kSendRendezvous;
        k.body_block(t);
        return;
      }
      continue;
    }
    if (auto* s = std::get_if<OpIsend>(&op)) {
      // Unlike the eager OpSend, an isend is a tracked request: OpWaitAll
      // also waits for its delivery to complete (the rendezvous/progress
      // behaviour of large-message MPI sends).
      ++rs.msgs_sent;
      rs.bytes_sent += s->bytes;
      const Message m{rank, s->tag, s->bytes, -1};
      const int dst = s->dst;
      ++rs.pending_isends;
      kernel_->sim().schedule_in(net_.delay(s->bytes), [this, rank, dst, m] {
        RankState& sender = ranks_[check_rank(rank)];
        --sender.pending_isends;
        deliver(dst, m);
        if (!sender.exited && sender.waiting == WaitKind::kWaitAll) {
          kernel_->wake(*sender.task);
        }
      });
      continue;
    }
    if (auto* r = std::get_if<OpRecv>(&op)) {
      if (try_consume(rs, r->src, r->tag)) continue;
      rs.waiting = WaitKind::kRecv;
      rs.recv_src = r->src;
      rs.recv_tag = r->tag;
      k.body_block(t);
      return;
    }
    if (auto* r = std::get_if<OpIrecv>(&op)) {
      // If the message already arrived it is in the mailbox: consume it now,
      // otherwise post the request.
      if (!try_consume(rs, r->src, r->tag)) {
        rs.pending_irecvs.emplace_back(r->src, r->tag);
      }
      continue;
    }
    if (std::get_if<OpWaitAll>(&op) != nullptr) {
      if (rs.pending_irecvs.empty() && rs.pending_isends == 0) continue;
      rs.waiting = WaitKind::kWaitAll;
      k.body_block(t);
      return;
    }
    if (auto* ar = std::get_if<OpAllreduce>(&op)) {
      rs.waiting = WaitKind::kAllreduce;
      rs.allreduce_gen = allreduce_.generation + 1;
      ++allreduce_.waiting;
      maybe_release_allreduce(ar->bytes);
      k.body_block(t);
      return;
    }
    if (auto* bc = std::get_if<OpBcast>(&op)) {
      if (bc->root == rank) {
        // Eager tree send: the root continues; the round lands after the
        // tree latency and releases the waiters.
        ++bcast_rounds_posted_;
        ++rs.bcast_taken;  // the root trivially has its own round
        const Duration d = tree_delay(bc->bytes, 1);
        kernel_->sim().schedule_in(d, [this] {
          ++bcast_rounds_delivered_;
          wake_waiters(WaitKind::kBcast);
        });
        continue;
      }
      if (rs.bcast_taken < bcast_rounds_delivered_) {
        ++rs.bcast_taken;  // round already delivered: no wait
        continue;
      }
      rs.waiting = WaitKind::kBcast;
      k.body_block(t);
      return;
    }
    if (auto* rd = std::get_if<OpReduce>(&op)) {
      if (rd->root != rank) {
        // Contribute and continue (eager leaf send).
        ++reduce_contributions_;
        const int live_nonroot = size() - exited_ - 1;
        // When the last contribution of the root's next round is in, the
        // tree combines after its latency.
        const std::int64_t target_round = reduce_rounds_ready_ + 1;
        if (reduce_contributions_ >= target_round * live_nonroot) {
          const Duration d = tree_delay(rd->bytes, 1);
          kernel_->sim().schedule_in(d, [this] {
            ++reduce_rounds_ready_;
            wake_waiters(WaitKind::kReduceRoot);
          });
        }
        continue;
      }
      if (rs.reduce_round < reduce_rounds_ready_) {
        ++rs.reduce_round;
        continue;
      }
      rs.waiting = WaitKind::kReduceRoot;
      k.body_block(t);
      return;
    }
    if (std::get_if<OpMarkIteration>(&op) != nullptr) {
      k.flush_account(t);
      rs.marks.push_back(IterationMark{k.now(), t.t_run});
      continue;
    }
    if (auto* s = std::get_if<OpSleep>(&op)) {
      k.body_sleep(t, s->d);
      return;
    }
    if (std::get_if<OpExit>(&op) != nullptr) {
      rs.exited = true;
      ++exited_;
      finish_time_ = std::max(finish_time_, k.now());
      // Unconsumed mailbox entries will never be received: release any
      // rendezvous senders stranded behind them.
      for (const Message& m : rs.mailbox) release_rendezvous(m);
      rs.mailbox.clear();
      // Ranks sitting in a collective must not deadlock on an exited peer.
      maybe_release_barrier();
      maybe_release_allreduce(8);
      k.body_exit(t);
      return;
    }
    HPCS_CHECK_MSG(false, "unhandled MPI op");
  }
}

std::string MpiWorld::debug_state() const {
  std::string out;
  for (int r = 0; r < size(); ++r) {
    const RankState& rs = ranks_[static_cast<std::size_t>(r)];
    const char* wait = "none";
    switch (rs.waiting) {
      case WaitKind::kNone: wait = "none"; break;
      case WaitKind::kBarrier: wait = "barrier"; break;
      case WaitKind::kRecv: wait = "recv"; break;
      case WaitKind::kWaitAll: wait = "waitall"; break;
      case WaitKind::kAllreduce: wait = "allreduce"; break;
      case WaitKind::kBcast: wait = "bcast"; break;
      case WaitKind::kReduceRoot: wait = "reduce"; break;
      case WaitKind::kSendRendezvous: wait = "rendezvous-send"; break;
    }
    out += "rank" + std::to_string(r) + ": " + (rs.exited ? "exited" : wait) +
           " mailbox=" + std::to_string(rs.mailbox.size()) +
           " irecvs=" + std::to_string(rs.pending_irecvs.size()) +
           " isends=" + std::to_string(rs.pending_isends) + "\n";
  }
  out += "barrier_waiting=" + std::to_string(barrier_waiting_) +
         " allreduce_waiting=" + std::to_string(allreduce_.waiting) + "\n";
  return out;
}

SimTime run_to_completion(sim::Simulator& s, MpiWorld& world, SimTime deadline) {
  while (!world.done() && s.now() < deadline && s.step()) {
  }
  if (!world.done()) {
    // HPCS_HOST_BEGIN — diagnostic dump on the failure path, just before the
    // CHECK aborts; never reached on a deterministic run.
    std::fprintf(stderr, "MPI world stuck at t=%s:\n%s", format_time(s.now()).c_str(),
                 world.debug_state().c_str());
    // HPCS_HOST_END
    HPCS_CHECK_MSG(world.done(), "simulation deadline reached before the MPI world completed");
  }
  return world.finish_time();
}

}  // namespace hpcs::mpi
