#pragma once
// EXTENSION — the paper's future work (§VI): cluster-level scheduling.
// "HPCSched is a task scheduler able to balance HPC applications inside a
// node [...] there is another level of load balancing which consists of
// assigning the correct group of tasks to each node (gang scheduling),
// considering that the local scheduler is able to dynamically assign more or
// less hardware resources to each task."
//
// A cluster is a set of nodes, each a full simulated POWER5 machine running
// its own kernel (with HPCSched installed). Jobs — MPI applications — are
// gang-assigned to nodes; within a node, HPCSched balances them.

#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "exp/pure_function.h"
#include "workloads/metbench.h"

namespace hpcs::cluster {

/// A job to place: a rank-program factory plus scheduling metadata.
struct JobSpec {
  std::string name;
  /// Same purity contract as analysis::SweepPoint::workload: the cluster
  /// distribution work will invoke these off-node/off-thread, so stateful
  /// factories must fail at compile time (src/exp/pure_function.h).
  exp::PureFunction<wl::ProgramSet()> make_programs;
  int ranks = 4;
  /// Estimated total load (work units) — the gang scheduler's sizing hint,
  /// like a batch system's walltime estimate.
  double load_estimate = 0.0;
};

/// Gang-placement policies.
enum class GangPolicy {
  kPacked,       ///< first-fit: fill node 0, then node 1, ...
  kRoundRobin,   ///< job i -> node i % N
  kLeastLoaded,  ///< place each job on the node with the least estimated load
};

[[nodiscard]] const char* gang_policy_name(GangPolicy p);

/// Compute the job->node assignment for a policy. Pure function (unit
/// testable without running a simulation).
[[nodiscard]] std::vector<int> assign_jobs(const std::vector<JobSpec>& jobs, int nodes,
                                           int cpus_per_node, GangPolicy policy);

struct JobResult {
  std::string name;
  int node = 0;
  Duration exec_time = Duration::zero();
  SimTime finish = SimTime::zero();
};

struct ClusterResult {
  std::vector<JobResult> jobs;
  Duration makespan = Duration::zero();  ///< completion of the last job
};

struct ClusterConfig {
  int nodes = 2;
  kern::KernelConfig node_kernel{};
  bool hpcsched = true;  ///< install HPCSched (Uniform) on every node
  hpc::HpcTunables tunables{};
  bool noise = true;
  kern::NoiseConfig noise_config{};
  mpi::NetworkParams net{};
  std::uint64_t seed = 1;
};

/// Run all jobs to completion on the simulated cluster under a policy.
ClusterResult run_cluster(const ClusterConfig& cfg, const std::vector<JobSpec>& jobs,
                          GangPolicy policy);

}  // namespace hpcs::cluster
