#pragma once
// Shared helpers for kernel-level tests: scripted task bodies and a
// ready-made simulator+kernel fixture.

#include <functional>
#include <memory>
#include <vector>

#include "kernel/kernel.h"
#include "simcore/simulator.h"

namespace hpcs::test {

/// One scripted action of a task body.
struct Act {
  enum class Kind { kCompute, kBlock, kSleep, kYield, kExit } kind;
  Work work = 0;
  Duration dur = Duration::zero();
  /// Optional hook executed when the action is issued.
  std::function<void()> on_issue;

  static Act compute(Work w) { return {Kind::kCompute, w, Duration::zero(), nullptr}; }
  static Act block() { return {Kind::kBlock, 0, Duration::zero(), nullptr}; }
  static Act sleep(Duration d) { return {Kind::kSleep, 0, d, nullptr}; }
  static Act yield() { return {Kind::kYield, 0, Duration::zero(), nullptr}; }
  static Act exit() { return {Kind::kExit, 0, Duration::zero(), nullptr}; }
};

/// Runs a fixed action sequence, then exits.
class ScriptBody final : public kern::TaskBody {
 public:
  explicit ScriptBody(std::vector<Act> acts) : acts_(std::move(acts)) {}

  void step(kern::Kernel& k, kern::Task& t) override {
    if (i_ >= acts_.size()) {
      k.body_exit(t);
      return;
    }
    const Act& a = acts_[i_++];
    if (a.on_issue) a.on_issue();
    switch (a.kind) {
      case Act::Kind::kCompute: k.body_compute(t, a.work); break;
      case Act::Kind::kBlock: k.body_block(t); break;
      case Act::Kind::kSleep: k.body_sleep(t, a.dur); break;
      case Act::Kind::kYield: k.body_yield(t); break;
      case Act::Kind::kExit: k.body_exit(t); break;
    }
  }

 private:
  std::vector<Act> acts_;
  std::size_t i_ = 0;
};

/// Compute `work` then sleep `gap`, forever (a periodic task).
class PeriodicBody final : public kern::TaskBody {
 public:
  PeriodicBody(Work work, Duration gap) : work_(work), gap_(gap) {}

  void step(kern::Kernel& k, kern::Task& t) override {
    if (computing_) {
      computing_ = false;
      k.body_sleep(t, gap_);
    } else {
      computing_ = true;
      k.body_compute(t, work_);
    }
  }

 private:
  Work work_;
  Duration gap_;
  bool computing_ = false;
};

/// Compute forever in bounded chunks (a CPU hog).
class HogBody final : public kern::TaskBody {
 public:
  explicit HogBody(Work chunk = 1.0e6) : chunk_(chunk) {}
  void step(kern::Kernel& k, kern::Task& t) override { k.body_compute(t, chunk_); }

 private:
  Work chunk_;
};

struct KernelFixture {
  sim::Simulator sim;
  std::unique_ptr<kern::Kernel> kernel;

  explicit KernelFixture(kern::KernelConfig cfg = {}) {
    kernel = std::make_unique<kern::Kernel>(sim, cfg);
  }

  kern::Kernel& k() { return *kernel; }

  /// Run until `deadline`.
  void run_until(Duration d) { sim.run(SimTime::zero() + d); }
};

}  // namespace hpcs::test
