# Empty dependencies file for export_figdata.
# This may be replaced when dependencies are built.
