// Fixture: symbol resolution must keep these quiet — an ordered member
// iterated in a method, and a local ordered container shadowing an
// unordered member of the same name.
#include <map>
#include <unordered_map>

class Registry {
 public:
  double sum() const {
    double s = 0.0;
    for (const auto& [pid, v] : util_) s += v;  // ordered member: fine
    return s;
  }
  double local_shadow() const {
    std::map<int, double> cache;  // shadows the unordered member below
    double s = 0.0;
    for (const auto& [k, v] : cache) s += v;
    return s;
  }

 private:
  std::map<int, double> util_;
  std::unordered_map<int, double> cache;
};
