file(REMOVE_RECURSE
  "CMakeFiles/table3_metbench.dir/table3_metbench.cpp.o"
  "CMakeFiles/table3_metbench.dir/table3_metbench.cpp.o.d"
  "table3_metbench"
  "table3_metbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_metbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
