#pragma once
// PARAVER trace export — the tool the paper itself used ("we used PARAVER
// to collect data and statistics and to show the trace of each process").
// Writes the classic three-file set:
//   .prv  the trace: header + state records (1:cpu:appl:task:thread:t0:t1:state)
//   .pcf  the config: state value -> label/colour mapping
//   .row  object labels
// so the regenerated traces can be loaded into real Paraver/wxparaver.

#include <ostream>
#include <string>
#include <vector>

#include "trace/tracer.h"

namespace hpcs::trace {

/// Paraver state values used by the exporter (matching the standard
/// MPI-trace convention: 1 = Running, 6 = Waiting/blocked).
inline constexpr int kPrvStateRunning = 1;
inline constexpr int kPrvStateWaiting = 6;

/// Paraver user-event type for hardware thread priority changes (type 2
/// records: "2:cpu:appl:task:thread:time:type:value").
inline constexpr int kPrvEventHwPrio = 77000001;

struct ParaverJob {
  std::vector<Pid> pids;                ///< one Paraver "task" per pid
  std::vector<std::string> labels;      ///< same length as pids
  SimTime end = SimTime::zero();        ///< trace end (0 = auto from intervals)
  int cpus = 4;
  std::string application = "hpcsched";
};

/// Write the .prv trace body for the given tasks.
void write_prv(std::ostream& os, const Tracer& tracer, const ParaverJob& job);

/// Write the .pcf semantic configuration.
void write_pcf(std::ostream& os);

/// Write the .row object hierarchy labels.
void write_row(std::ostream& os, const ParaverJob& job);

/// Convenience: write all three files with a common path prefix.
/// Returns false if any file could not be opened.
bool export_paraver(const std::string& prefix, const Tracer& tracer, const ParaverJob& job);

}  // namespace hpcs::trace
