// Workload generator tests: op-stream well-formedness of the four paper
// workloads, parameter validation, behaviour switching (MetBenchVar),
// determinism of the stochastic SIESTA generator.

#include <gtest/gtest.h>

#include <variant>

#include "workloads/btmz.h"
#include "workloads/metbench.h"
#include "workloads/metbenchvar.h"
#include "workloads/repartition.h"
#include "workloads/siesta.h"
#include "workloads/wavefront.h"

namespace hpcs::wl {
namespace {

/// Drain a program and return the ops up to (and including) OpExit.
std::vector<mpi::MpiOp> drain(mpi::RankProgram& p, int limit = 1000000) {
  std::vector<mpi::MpiOp> out;
  for (int i = 0; i < limit; ++i) {
    out.push_back(p.next());
    if (std::holds_alternative<mpi::OpExit>(out.back())) return out;
  }
  ADD_FAILURE() << "program did not terminate within " << limit << " ops";
  return out;
}

template <typename Op>
int count_ops(const std::vector<mpi::MpiOp>& ops) {
  int n = 0;
  for (const auto& op : ops) n += std::holds_alternative<Op>(op) ? 1 : 0;
  return n;
}

TEST(MetBench, OpStreamStructure) {
  MetBenchConfig cfg;
  cfg.iterations = 7;
  auto progs = make_metbench(cfg);
  ASSERT_EQ(progs.size(), 4u);
  for (auto& p : progs) {
    const auto ops = drain(*p);
    EXPECT_EQ(count_ops<mpi::OpCompute>(ops), 7);
    EXPECT_EQ(count_ops<mpi::OpBarrier>(ops), 7);
    EXPECT_EQ(count_ops<mpi::OpMarkIteration>(ops), 7);
    EXPECT_EQ(count_ops<mpi::OpExit>(ops), 1);
  }
}

TEST(MetBench, DefaultCalibrationIs4To1) {
  const MetBenchConfig cfg;
  EXPECT_NEAR(cfg.loads[1] / cfg.loads[0], 4.0, 1e-9);
  EXPECT_NEAR(cfg.loads[3] / cfg.loads[2], 4.0, 1e-9);
}

TEST(MetBench, OptionalMasterRank) {
  MetBenchConfig cfg;
  cfg.include_master = true;
  auto progs = make_metbench(cfg);
  EXPECT_EQ(progs.size(), 5u);
}

TEST(MetBench, RejectsNonPositiveLoads) {
  MetBenchConfig cfg;
  cfg.loads = {1.0, -5.0};
  EXPECT_DEATH(make_metbench(cfg), "positive");
}

TEST(MetBenchVar, LoadsSwitchEveryKIterations) {
  MetBenchVarConfig cfg;
  cfg.iterations = 6;
  cfg.k = 2;
  cfg.loads_a = {10.0, 20.0};
  cfg.loads_b = {20.0, 10.0};
  auto progs = make_metbenchvar(cfg);
  const auto ops = drain(*progs[0]);
  std::vector<double> computes;
  for (const auto& op : ops) {
    if (const auto* c = std::get_if<mpi::OpCompute>(&op)) computes.push_back(c->work);
  }
  // Periods: A A B B A A.
  EXPECT_EQ(computes, (std::vector<double>{10, 10, 20, 20, 10, 10}));
}

TEST(MetBenchVar, DefaultCalibrationMatchesTableIV) {
  const MetBenchVarConfig cfg;
  EXPECT_EQ(cfg.iterations, 45);
  EXPECT_EQ(cfg.k, 15);
  EXPECT_NEAR(cfg.loads_a[1] / cfg.loads_a[0], 4.0, 1e-9);  // 4:1 ratio
  // Phase B is the exact swap of phase A.
  for (std::size_t i = 0; i < cfg.loads_a.size(); i += 2) {
    EXPECT_DOUBLE_EQ(cfg.loads_a[i], cfg.loads_b[i + 1]);
    EXPECT_DOUBLE_EQ(cfg.loads_a[i + 1], cfg.loads_b[i]);
  }
}

TEST(BtMz, OpStreamStructure) {
  BtMzConfig cfg;
  cfg.iterations = 3;
  auto progs = make_btmz(cfg);
  ASSERT_EQ(progs.size(), 4u);
  const auto ops = drain(*progs[1]);
  EXPECT_EQ(count_ops<mpi::OpCompute>(ops), 3);
  EXPECT_EQ(count_ops<mpi::OpIrecv>(ops), 6);   // 2 neighbours x 3 iterations
  EXPECT_EQ(count_ops<mpi::OpIsend>(ops), 6);
  EXPECT_EQ(count_ops<mpi::OpWaitAll>(ops), 3);
  EXPECT_EQ(count_ops<mpi::OpBarrier>(ops), 0);  // BT-MZ has no global barrier
}

TEST(BtMz, RingNeighboursAreCorrect) {
  BtMzConfig cfg;
  cfg.iterations = 1;
  auto progs = make_btmz(cfg);
  const auto ops = drain(*progs[0]);  // rank 0: left=3, right=1
  std::vector<int> dsts;
  for (const auto& op : ops) {
    if (const auto* s = std::get_if<mpi::OpIsend>(&op)) dsts.push_back(s->dst);
  }
  EXPECT_EQ(dsts, (std::vector<int>{3, 1}));
}

TEST(BtMz, ZoneLoadsFollowTableVProfile) {
  const BtMzConfig cfg;
  // Monotone increasing loads, heaviest ~5.7x the lightest (99.85/17.63).
  for (std::size_t i = 1; i < cfg.zone_loads.size(); ++i) {
    EXPECT_GT(cfg.zone_loads[i], cfg.zone_loads[i - 1]);
  }
  EXPECT_NEAR(cfg.zone_loads[3] / cfg.zone_loads[0], 99.85 / 17.63, 0.35);
}

TEST(Siesta, OpStreamTerminatesAndScattersGathers) {
  SiestaConfig cfg;
  cfg.microiters = 50;
  cfg.mark_every = 10;
  auto progs = make_siesta(cfg);
  ASSERT_EQ(progs.size(), 4u);
  const auto driver_ops = drain(*progs[0]);
  EXPECT_EQ(count_ops<mpi::OpCompute>(driver_ops), 50);
  EXPECT_EQ(count_ops<mpi::OpSend>(driver_ops), 150);   // 3 workers x 50
  EXPECT_EQ(count_ops<mpi::OpRecv>(driver_ops), 150);
  EXPECT_EQ(count_ops<mpi::OpMarkIteration>(driver_ops), 5);
  const auto worker_ops = drain(*progs[1]);
  EXPECT_EQ(count_ops<mpi::OpCompute>(worker_ops), 50);
  EXPECT_EQ(count_ops<mpi::OpSend>(worker_ops), 50);
}

TEST(Siesta, BurstsVaryButAreDeterministicPerSeed) {
  SiestaConfig cfg;
  cfg.microiters = 30;
  auto collect = [&cfg]() {
    auto progs = make_siesta(cfg);
    std::vector<double> bursts;
    auto ops = drain(*progs[0]);
    for (const auto& op : ops) {
      if (const auto* c = std::get_if<mpi::OpCompute>(&op)) bursts.push_back(c->work);
    }
    return bursts;
  };
  const auto a = collect();
  const auto b = collect();
  EXPECT_EQ(a, b) << "same seed must generate identical bursts";
  // Bursts are not constant (irregular behaviour).
  EXPECT_NE(a[0], a[1]);
  cfg.seed = 99;
  const auto c = collect();
  EXPECT_NE(a, c) << "different seed must differ";
}

TEST(Siesta, MeanBurstNearConfigured) {
  SiestaConfig cfg;
  cfg.microiters = 2000;
  cfg.mark_every = 0;
  auto progs = make_siesta(cfg);
  auto ops = drain(*progs[0]);
  double sum = 0;
  int n = 0;
  for (const auto& op : ops) {
    if (const auto* c = std::get_if<mpi::OpCompute>(&op)) {
      sum += c->work;
      ++n;
    }
  }
  EXPECT_NEAR(sum / n, cfg.cycle_work, cfg.cycle_work * 0.1);
}

TEST(Wavefront, OpStreamStructure) {
  WavefrontConfig cfg;
  cfg.ranks = 4;
  cfg.iterations = 3;
  auto progs = make_wavefront(cfg);
  ASSERT_EQ(progs.size(), 4u);
  // Interior rank: per iteration 2 recvs (fwd+bwd), 2 computes, 2 sends.
  const auto mid = drain(*progs[1]);
  EXPECT_EQ(count_ops<mpi::OpRecv>(mid), 6);
  EXPECT_EQ(count_ops<mpi::OpCompute>(mid), 6);
  EXPECT_EQ(count_ops<mpi::OpSend>(mid), 6);
  EXPECT_EQ(count_ops<mpi::OpMarkIteration>(mid), 3);
  // Edge rank 0: only the backward recv, only the forward send.
  const auto head = drain(*progs[0]);
  EXPECT_EQ(count_ops<mpi::OpRecv>(head), 3);
  EXPECT_EQ(count_ops<mpi::OpSend>(head), 3);
  EXPECT_EQ(count_ops<mpi::OpCompute>(head), 6);
}

TEST(Wavefront, ForwardSendTargets) {
  WavefrontConfig cfg;
  cfg.ranks = 3;
  cfg.iterations = 1;
  auto progs = make_wavefront(cfg);
  const auto ops = drain(*progs[0]);
  // Rank 0 sends forward to 1 (tag 0), never backward.
  for (const auto& op : ops) {
    if (const auto* s = std::get_if<mpi::OpSend>(&op)) {
      EXPECT_EQ(s->dst, 1);
      EXPECT_EQ(s->tag, 0);
    }
  }
}

TEST(Repartition, LoadScheduleConvergesTowardMean) {
  RepartitionConfig cfg;
  cfg.initial_loads = {1.0, 3.0};
  cfg.period = 5;
  cfg.efficiency = 0.5;
  const auto at0 = repartition_loads_at(cfg, 0);
  EXPECT_DOUBLE_EQ(at0[0], 1.0);
  EXPECT_DOUBLE_EQ(at0[1], 3.0);
  const auto at5 = repartition_loads_at(cfg, 5);
  EXPECT_DOUBLE_EQ(at5[0], 1.5);  // halfway to the mean (2.0)
  EXPECT_DOUBLE_EQ(at5[1], 2.5);
  const auto at10 = repartition_loads_at(cfg, 10);
  EXPECT_DOUBLE_EQ(at10[0], 1.75);
  // Total work is conserved by every repartition.
  EXPECT_DOUBLE_EQ(at10[0] + at10[1], 4.0);
}

TEST(Repartition, NoPeriodMeansStaticLoads) {
  RepartitionConfig cfg;
  cfg.period = 0;
  const auto late = repartition_loads_at(cfg, 30);
  EXPECT_EQ(late, cfg.initial_loads);
}

TEST(Repartition, OpStreamPaysRepartitionCost) {
  RepartitionConfig cfg;
  cfg.iterations = 6;
  cfg.period = 3;
  cfg.initial_loads = {1.0e6, 2.0e6};
  auto progs = make_repartition(cfg);
  const auto ops = drain(*progs[0]);
  // 6 compute iterations + 1 repartition compute (at iteration 3).
  EXPECT_EQ(count_ops<mpi::OpCompute>(ops), 7);
  EXPECT_EQ(count_ops<mpi::OpAllreduce>(ops), 1);
  EXPECT_EQ(count_ops<mpi::OpBarrier>(ops), 6);
  EXPECT_EQ(count_ops<mpi::OpMarkIteration>(ops), 6);
}

TEST(Wavefront, WeightsValidated) {
  WavefrontConfig cfg;
  cfg.ranks = 4;
  cfg.weights = {1.0, 2.0};  // wrong length
  EXPECT_DEATH(make_wavefront(cfg), "");
}

}  // namespace
}  // namespace hpcs::wl
