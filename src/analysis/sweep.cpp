#include "analysis/sweep.h"

#include <cstdio>
#include <sstream>

#include "analysis/iterations.h"
#include "analysis/tables.h"
#include "common/check.h"

namespace hpcs::analysis {

std::vector<SweepRow> run_sweep(const std::vector<SweepPoint>& points) {
  std::vector<SweepRow> rows;
  double first_exec = 0.0;
  for (const SweepPoint& p : points) {
    HPCS_CHECK_MSG(static_cast<bool>(p.workload), "sweep point needs a workload factory");
    const RunResult r = run_experiment(p.config, p.workload());
    SweepRow row;
    row.label = p.label;
    row.exec_s = r.exec_time.sec();
    row.min_util = r.min_util();
    row.max_util = r.max_util();
    row.mean_imbalance = mean_imbalance(r);
    row.prio_changes = r.hw_prio_changes;
    row.ctx_switches = r.context_switches;
    row.avg_wakeup_latency_us = r.avg_wakeup_latency_us;
    if (rows.empty()) {
      first_exec = row.exec_s;
      row.improvement_vs_first_pct = 0.0;
    } else {
      row.improvement_vs_first_pct =
          first_exec > 0 ? 100.0 * (1.0 - row.exec_s / first_exec) : 0.0;
    }
    rows.push_back(row);
  }
  return rows;
}

void write_sweep_csv(std::ostream& os, const std::vector<SweepRow>& rows) {
  os << "label,exec_s,min_util,max_util,mean_imbalance,prio_changes,ctx_switches,"
        "avg_wakeup_latency_us,improvement_vs_first_pct\n";
  for (const SweepRow& r : rows) {
    os << r.label << ',' << r.exec_s << ',' << r.min_util << ',' << r.max_util << ','
       << r.mean_imbalance << ',' << r.prio_changes << ',' << r.ctx_switches << ','
       << r.avg_wakeup_latency_us << ',' << r.improvement_vs_first_pct << '\n';
  }
}

std::string render_sweep(const std::vector<SweepRow>& rows) {
  std::ostringstream out;
  out << fixed("label", 26) << fixed("exec(s)", 10) << fixed("util(min/max)", 16)
      << fixed("imbal", 8) << fixed("prio", 6) << fixed("improve", 9) << "\n";
  char buf[64];
  for (const SweepRow& r : rows) {
    out << fixed(r.label, 26);
    std::snprintf(buf, sizeof(buf), "%.2f", r.exec_s);
    out << fixed(buf, 10);
    std::snprintf(buf, sizeof(buf), "%.1f/%.1f", r.min_util, r.max_util);
    out << fixed(buf, 16);
    std::snprintf(buf, sizeof(buf), "%.3f", r.mean_imbalance);
    out << fixed(buf, 8) << fixed(std::to_string(r.prio_changes), 6);
    std::snprintf(buf, sizeof(buf), "%+.2f%%", r.improvement_vs_first_pct);
    out << fixed(buf, 9) << "\n";
  }
  return out.str();
}

}  // namespace hpcs::analysis
