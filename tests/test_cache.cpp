// Tests of the content-addressed result cache (src/cache) and its key
// derivation (analysis/result_cache_key.h): FNV vectors, blob envelope
// verdicts, the on-disk store's atomic-write/corruption/eviction behavior,
// and two handles sharing one directory (the daemon + a bench run do
// exactly that). Everything runs in a mkdtemp scratch dir.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/result_cache_key.h"
#include "cache/blob.h"
#include "cache/fnv.h"
#include "cache/store.h"

namespace hpcs {
namespace {

using cache::BlobVerdict;
using cache::CacheConfig;
using cache::ResultCache;

struct TempDir {
  std::string path;
  TempDir() {
    char buf[] = "/tmp/hpcs_cache_test_XXXXXX";
    const char* p = ::mkdtemp(buf);
    EXPECT_NE(p, nullptr);
    path = p;
  }
  ~TempDir() {
    // Best-effort recursive cleanup; the tree is at most three levels deep.
    const std::string cmd = "rm -rf '" + path + "'";
    (void)std::system(cmd.c_str());
  }
};

ResultCache make_store(const TempDir& dir, std::uint64_t budget = 256u << 20) {
  CacheConfig cfg;
  cfg.dir = dir.path;
  cfg.budget_bytes = budget;
  return ResultCache(cfg);
}

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

void set_mtime(const std::string& path, std::int64_t sec) {
  timespec ts[2];
  ts[0].tv_sec = sec;
  ts[0].tv_nsec = 0;
  ts[1].tv_sec = sec;
  ts[1].tv_nsec = 0;
  ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), ts, 0), 0);
}

// ---------------------------------------------------------------------------
// FNV-1a and key derivation

TEST(CacheFnv, MatchesPublishedVectors) {
  EXPECT_EQ(cache::fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(cache::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(cache::fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(CacheKey, StableAndSensitiveToEveryInput) {
  const std::uint64_t k = analysis::result_cache_key("unit", "params", 0);
  EXPECT_EQ(k, analysis::result_cache_key("unit", "params", 0));
  EXPECT_NE(k, analysis::result_cache_key("unit2", "params", 0));
  EXPECT_NE(k, analysis::result_cache_key("unit", "params2", 0));
  EXPECT_NE(k, analysis::result_cache_key("unit", "params", 1));
  // Field boundaries are length-prefixed: shifting a byte between job and
  // params must not collide.
  EXPECT_NE(analysis::result_cache_key("ab", "c", 0),
            analysis::result_cache_key("a", "bc", 0));
}

TEST(CacheKey, HexFormatsSixteenLowercaseDigits) {
  EXPECT_EQ(cache::key_hex(0), "0000000000000000");
  EXPECT_EQ(cache::key_hex(0xdeadbeef01234567ull), "deadbeef01234567");
}

// ---------------------------------------------------------------------------
// Blob envelope

TEST(CacheBlob, RoundTripsAndVerifies) {
  const std::uint64_t key = 0x1122334455667788ull;
  const std::string payload = "serialized run result bytes";
  const std::string blob = cache::encode_result_blob(key, payload);
  std::string out;
  EXPECT_EQ(cache::decode_result_blob(blob, key, out), BlobVerdict::kOk);
  EXPECT_EQ(out, payload);
}

TEST(CacheBlob, RejectsCorruptionShortReadsAndVersionDrift) {
  const std::uint64_t key = 42;
  std::string blob = cache::encode_result_blob(key, "payload");
  std::string out;

  // Wrong key (a hash collision or a misfiled blob).
  EXPECT_EQ(cache::decode_result_blob(blob, key + 1, out), BlobVerdict::kCorrupt);

  // Flipped payload byte: checksum catches it.
  std::string flipped = blob;
  flipped[flipped.size() - 1] ^= 0x01;
  EXPECT_EQ(cache::decode_result_blob(flipped, key, out), BlobVerdict::kCorrupt);

  // Truncation at every prefix length never passes.
  for (std::size_t n = 0; n < blob.size(); ++n) {
    EXPECT_NE(cache::decode_result_blob(blob.substr(0, n), key, out), BlobVerdict::kOk);
  }

  // Trailing garbage is corruption, not slack.
  EXPECT_EQ(cache::decode_result_blob(blob + "x", key, out), BlobVerdict::kCorrupt);

  // Version bump: distinguishable from corruption (upgrades evict cleanly).
  std::string vbump = blob;
  vbump[4] ^= 0x01;  // version field, little-endian low byte
  EXPECT_EQ(cache::decode_result_blob(vbump, key, out), BlobVerdict::kVersion);

  // Wrong magic is just corruption.
  std::string mbad = blob;
  mbad[0] ^= 0x01;
  EXPECT_EQ(cache::decode_result_blob(mbad, key, out), BlobVerdict::kCorrupt);
}

// ---------------------------------------------------------------------------
// Store

TEST(CacheStore, DisabledWhenDirEmpty) {
  ResultCache store{CacheConfig{}};
  EXPECT_FALSE(store.enabled());
  std::string out;
  EXPECT_FALSE(store.get(1, out));
  store.put(1, "payload");  // no-op, no crash
  EXPECT_EQ(store.stats().stores, 0);
}

TEST(CacheStore, PutThenGetRoundTripsAcrossHandles) {
  TempDir dir;
  ResultCache writer = make_store(dir);
  writer.put(7, "row-seven");
  EXPECT_EQ(writer.stats().stores, 1);

  // A second handle on the same directory (reader and writer are separate
  // processes in real deployments) sees the blob immediately.
  ResultCache reader = make_store(dir);
  std::string out;
  EXPECT_TRUE(reader.get(7, out));
  EXPECT_EQ(out, "row-seven");
  EXPECT_EQ(reader.stats().hits, 1);

  // And the reverse direction works too.
  reader.put(9, "row-nine");
  EXPECT_TRUE(writer.get(9, out));
  EXPECT_EQ(out, "row-nine");

  // Missing key: a miss, never an error.
  EXPECT_FALSE(writer.get(12345, out));
  EXPECT_EQ(writer.stats().misses, 1);
}

TEST(CacheStore, CorruptBlobDegradesToMissAndIsDeleted) {
  TempDir dir;
  ResultCache store = make_store(dir);
  store.put(11, "precious bytes");
  const std::string path = store.blob_path(11);

  // Flip one byte in place.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 20, SEEK_SET), 0);
  std::fputc('X', f);
  std::fclose(f);

  std::string out;
  EXPECT_FALSE(store.get(11, out));
  EXPECT_EQ(store.stats().corrupt, 1);
  EXPECT_EQ(store.stats().misses, 1);
  // The poisoned file is gone: the next run recomputes and re-stores.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
  store.put(11, "precious bytes");
  EXPECT_TRUE(store.get(11, out));
  EXPECT_EQ(out, "precious bytes");
}

TEST(CacheStore, LeftoverTempFilesAreInvisible) {
  TempDir dir;
  ResultCache store = make_store(dir);
  store.put(3, "real");
  // A crashed writer leaves a temp next to the blob; it must be ignored by
  // reads and by the eviction scan.
  const std::string blob = store.blob_path(3);
  const std::string temp = blob.substr(0, blob.rfind('/') + 1) + ".tmp.dead.1.1";
  write_file(temp, "half-written junk");

  std::string out;
  EXPECT_TRUE(store.get(3, out));
  EXPECT_EQ(out, "real");

  // Another put runs the eviction scan; the junk is neither counted against
  // the budget nor deleted (a live writer might still own it).
  store.put(4, "other");
  EXPECT_EQ(store.stats().evictions, 0);
  EXPECT_EQ(::access(temp.c_str(), F_OK), 0);
}

TEST(CacheStore, PlanEvictionDropsOldestFirstUntilUnderBudget) {
  std::vector<cache::BlobInfo> entries = {
      {"c.rcb", 100, /*mtime_ns=*/30},
      {"a.rcb", 100, /*mtime_ns=*/10},
      {"b.rcb", 100, /*mtime_ns=*/20},
  };
  // Budget fits two blobs: the oldest one goes.
  auto plan = ResultCache::plan_eviction(entries, 200);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], "a.rcb");
  // Budget fits nothing: everything goes, oldest first.
  plan = ResultCache::plan_eviction(entries, 0);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0], "a.rcb");
  EXPECT_EQ(plan[1], "b.rcb");
  EXPECT_EQ(plan[2], "c.rcb");
  // Equal mtimes: path breaks the tie deterministically.
  for (auto& e : entries) e.mtime_ns = 5;
  plan = ResultCache::plan_eviction(entries, 200);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], "a.rcb");
}

TEST(CacheStore, EvictionUnderTightBudgetKeepsTheRecentlyTouched) {
  TempDir dir;
  // Budget sized to hold two of the three 48-byte blobs, not all three.
  ResultCache store = make_store(dir, /*budget=*/100);
  store.put(1, std::string(20, 'a'));
  store.put(2, std::string(20, 'b'));
  set_mtime(store.blob_path(1), 1000);
  set_mtime(store.blob_path(2), 2000);
  // The third put blows the budget; the oldest (key 1) must be evicted.
  store.put(3, std::string(20, 'c'));
  EXPECT_GE(store.stats().evictions, 1);
  std::string out;
  EXPECT_FALSE(store.get(1, out));
  EXPECT_TRUE(store.get(3, out));
}

TEST(CacheStore, GetRefreshesLruOrder) {
  TempDir dir;
  ResultCache store = make_store(dir, /*budget=*/100);
  store.put(1, std::string(20, 'a'));
  store.put(2, std::string(20, 'b'));
  set_mtime(store.blob_path(1), 1000);
  set_mtime(store.blob_path(2), 2000);
  // Touch key 1: its mtime moves to now, far past the stamped 2000s epoch.
  std::string out;
  EXPECT_TRUE(store.get(1, out));
  // Now key 2 is the LRU entry and should be the eviction victim.
  store.put(3, std::string(20, 'c'));
  EXPECT_TRUE(store.get(1, out));
  EXPECT_FALSE(store.get(2, out));
}

TEST(CacheStore, UnwritableDirectoryDegradesSilently) {
  CacheConfig cfg;
  cfg.dir = "/proc/definitely/not/writable";
  ResultCache store{cfg};
  store.put(5, "bytes");  // swallowed
  std::string out;
  EXPECT_FALSE(store.get(5, out));
  EXPECT_EQ(store.stats().stores, 0);
}

}  // namespace
}  // namespace hpcs
