// Reproduces Figure 4: MetBenchVar traces — the load imbalance reverses at
// iterations 15 and 30. Static prioritization is correct in periods 1 and 3
// but *backwards* in period 2; the dynamic scheduler re-balances within a
// few iterations of each switch (Uniform needs a couple more as its global
// history ages; Adaptive always ~2).

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace hpcs;
  using analysis::SchedMode;

  bench::init_logging(argc, argv);
  bench::reject_dist_unsupported(argc, argv);
  bench::FigObs fobs("fig4_metbenchvar", bench::parse_obs_options(argc, argv));
  const auto e = analysis::MetBenchVarExperiment::paper();

  std::printf("=== Figure 4: effect of the proposed solution on MetBenchVar ===\n\n");
  for (const auto& [mode, label] :
       {std::pair{SchedMode::kBaselineCfs, "(a) standard execution"},
        std::pair{SchedMode::kStatic, "(b) static prioritization"},
        std::pair{SchedMode::kUniform, "(c) Uniform prioritization"},
        std::pair{SchedMode::kAdaptive, "(d) Adaptive prioritization"}}) {
    auto r = analysis::run_metbenchvar(e, mode, /*trace=*/true, /*seed=*/1, fobs.cfg());
    bench::print_trace_figure(label, r, 135);
    if (analysis::is_dynamic_mode(mode)) {
      bench::print_iteration_series(r);
      std::printf("history resets (behaviour changes detected): %lld\n",
                  static_cast<long long>(r.hpc_history_resets));
    }
    std::printf("\n");
    fobs.keep(label, std::move(r));
  }
  fobs.finish();
  return 0;
}
