#include "dist/wire.h"

namespace hpcs::dist {

bool frame_type_valid(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kBye);
}

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kHelloAck: return "HELLO_ACK";
    case FrameType::kAssign: return "ASSIGN";
    case FrameType::kRow: return "ROW";
    case FrameType::kDone: return "DONE";
    case FrameType::kHeartbeat: return "HEARTBEAT";
    case FrameType::kError: return "ERROR";
    case FrameType::kBye: return "BYE";
  }
  return "?";
}

WireWriter& WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  return *this;
}

WireWriter& WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  return *this;
}

WireWriter& WireWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
  return *this;
}

std::uint8_t WireReader::u8() {
  if (!take(1)) return 0;
  return static_cast<std::uint8_t>(buf_[pos_++]);
}

std::uint32_t WireReader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf_[pos_++])) << (8 * i);
  }
  return v;
}

std::uint64_t WireReader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(buf_[pos_++])) << (8 * i);
  }
  return v;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  if (n > kMaxFrameBytes || !take(n)) {
    ok_ = false;
    return {};
  }
  std::string s(buf_.substr(pos_, n));
  pos_ += n;
  return s;
}

std::string encode_raw_frame(std::uint8_t type, std::string_view payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size()) + 1;
  std::string out;
  out.reserve(4 + len);
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  out.push_back(static_cast<char>(type));
  out.append(payload.data(), payload.size());
  return out;
}

std::string encode_frame(const Frame& f) {
  return encode_raw_frame(static_cast<std::uint8_t>(f.type), f.payload);
}

FrameDecoder::Result FrameDecoder::next(Frame& out) {
  RawFrame raw;
  const Result r = raw_.next(raw);
  if (r == Result::kFrame) {
    out.type = static_cast<FrameType>(raw.type);
    out.payload = std::move(raw.payload);
  }
  return r;
}

RawFrameDecoder::Result RawFrameDecoder::next(RawFrame& out) {
  if (broken_) return Result::kError;
  // Compact once the consumed prefix dominates, so a long-lived stream does
  // not hold every frame it ever saw.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return Result::kNeedMore;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
  }
  if (len == 0 || len > kMaxFrameBytes) {
    broken_ = true;
    error_ = "bad frame length " + std::to_string(len);
    return Result::kError;
  }
  if (avail < 4 + static_cast<std::size_t>(len)) return Result::kNeedMore;
  const std::uint8_t type = static_cast<std::uint8_t>(buf_[pos_ + 4]);
  if (!valid_(type)) {
    broken_ = true;
    error_ = "bad frame type " + std::to_string(type);
    return Result::kError;
  }
  out.type = type;
  out.payload.assign(buf_, pos_ + 5, len - 1);
  pos_ += 4 + static_cast<std::size_t>(len);
  return Result::kFrame;
}

}  // namespace hpcs::dist
