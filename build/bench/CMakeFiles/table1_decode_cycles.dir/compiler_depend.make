# Empty compiler generated dependencies file for table1_decode_cycles.
# This may be replaced when dependencies are built.
