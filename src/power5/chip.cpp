#include "power5/chip.h"

#include "common/check.h"

namespace hpcs::p5 {

Chip::Chip(int num_cores, const ThroughputParams& params) {
  HPCS_CHECK_MSG(num_cores > 0, "chip needs at least one core");
  cores_.reserve(static_cast<std::size_t>(num_cores));
  for (CoreId c = 0; c < num_cores; ++c) cores_.emplace_back(c, params);
}

SmtCore& Chip::core(CoreId c) {
  HPCS_CHECK(c >= 0 && c < num_cores());
  return cores_[static_cast<std::size_t>(c)];
}

const SmtCore& Chip::core(CoreId c) const {
  HPCS_CHECK(c >= 0 && c < num_cores());
  return cores_[static_cast<std::size_t>(c)];
}

double Chip::cpu_speed(CpuId cpu) const { return core(core_of(cpu)).speed(ctx_of(cpu)); }

bool Chip::set_cpu_priority(CpuId cpu, HwPrio p) {
  return core(core_of(cpu)).set_priority(ctx_of(cpu), p);
}

bool Chip::set_cpu_active(CpuId cpu, bool active) {
  return core(core_of(cpu)).set_active(ctx_of(cpu), active);
}

bool Chip::set_cpu_snoozed(CpuId cpu, bool snoozed) {
  return core(core_of(cpu)).set_snoozed(ctx_of(cpu), snoozed);
}

HwPrio Chip::cpu_priority(CpuId cpu) const { return core(core_of(cpu)).priority(ctx_of(cpu)); }

void Chip::set_listener(SmtCore::SpeedChangeListener l) {
  for (auto& c : cores_) c.set_listener(l);
}

}  // namespace hpcs::p5
