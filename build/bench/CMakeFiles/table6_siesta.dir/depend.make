# Empty dependencies file for table6_siesta.
# This may be replaced when dependencies are built.
