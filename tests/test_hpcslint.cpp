// Fixture self-tests for hpcslint (tools/hpcslint). Every rule is
// demonstrated three ways: firing on a violation, staying quiet on the
// conforming twin, and being suppressed by HPCSLINT-ALLOW. Fixtures are raw
// string literals — the lint blanks string contents before matching, so this
// file stays clean when hpcslint scans tests/ (the hpcslint_tree ctest).

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hpcslint.h"

namespace {

using hpcslint::Finding;
using hpcslint::lint_source;

std::vector<std::string> rules_of(const std::vector<Finding>& fs) {
  std::vector<std::string> out;
  out.reserve(fs.size());
  for (const Finding& f : fs) out.push_back(f.rule);
  return out;
}

int count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(), [&](const Finding& f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------------------
// wallclock

TEST(HpcslintWallclock, FiresOnEachClockType) {
  const auto fs = lint_source("fx.cpp", R"fx(
#include <chrono>
auto a = std::chrono::system_clock::now();
auto b = std::chrono::steady_clock::now();
auto c = std::chrono::high_resolution_clock::now();
)fx");
  EXPECT_EQ(count_rule(fs, "wallclock"), 3);
  EXPECT_EQ(fs[0].line, 3);
}

TEST(HpcslintWallclock, QuietOnSimTimeAndStrings) {
  const auto fs = lint_source("fx.cpp", R"fx(
SimTime now = sim.now();
const char* doc = "steady_clock is banned";  // mention inside a comment: steady_clock
)fx");
  EXPECT_TRUE(fs.empty()) << fs.empty();
}

TEST(HpcslintWallclock, AllowSuppressesTrailingAndStandalone) {
  const auto fs = lint_source("fx.cpp", R"fx(
auto t0 = std::chrono::steady_clock::now();  // HPCSLINT-ALLOW(wallclock) bench harness
// HPCSLINT-ALLOW(wallclock)
auto t1 = std::chrono::steady_clock::now();
auto t2 = std::chrono::steady_clock::now();
)fx");
  EXPECT_EQ(count_rule(fs, "wallclock"), 1);  // only the unannotated read
  EXPECT_EQ(fs[0].line, 5);
}

// ---------------------------------------------------------------------------
// rand

TEST(HpcslintRand, FiresOnAmbientRandomness) {
  const auto fs = lint_source("fx.cpp", R"fx(
int a = rand();
srand(42);
std::random_device rd;
std::uint64_t seed = time(nullptr);
std::uint64_t seed2 = std::time(nullptr);
)fx");
  EXPECT_EQ(count_rule(fs, "rand"), 5);
}

TEST(HpcslintRand, QuietOnSeededRngAndMembers) {
  const auto fs = lint_source("fx.cpp", R"fx(
hpcs::Rng rng(cfg.seed);
double x = rng.uniform();
double s = r.exec_time.sec();
auto t = point.time(3);      // member named time: not the libc call
int randomize_count = 0;     // 'randomize_count' is its own identifier
)fx");
  EXPECT_TRUE(fs.empty());
}

TEST(HpcslintRand, AllowSuppresses) {
  const auto fs = lint_source("fx.cpp", R"fx(
std::random_device rd;  // HPCSLINT-ALLOW(rand) entropy for the CLI demo only
)fx");
  EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// unordered-iter

TEST(HpcslintUnorderedIter, FiresOnRangeForAndBegin) {
  const auto fs = lint_source("fx.cpp", R"fx(
std::unordered_map<int, double> util_by_pid;
std::unordered_set<int> pids;
for (const auto& [pid, u] : util_by_pid) emit(pid, u);
auto it = pids.begin();
)fx");
  EXPECT_EQ(count_rule(fs, "unordered-iter"), 2);
  EXPECT_EQ(fs[0].line, 4);
  EXPECT_EQ(fs[1].line, 5);
}

TEST(HpcslintUnorderedIter, QuietOnOrderedContainersAndLookup) {
  const auto fs = lint_source("fx.cpp", R"fx(
std::map<int, double> util_by_pid;
std::unordered_map<int, double> cache;
for (const auto& [pid, u] : util_by_pid) emit(pid, u);  // ordered: fine
auto hit = cache.find(3);   // point lookup, not iteration
cache[7] = 1.0;
)fx");
  EXPECT_TRUE(fs.empty());
}

TEST(HpcslintUnorderedIter, AllowSuppresses) {
  const auto fs = lint_source("fx.cpp", R"fx(
std::unordered_set<int> seen;
for (int pid : seen) count += pid;  // HPCSLINT-ALLOW(unordered-iter) order-insensitive sum
)fx");
  EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// pointer-key

TEST(HpcslintPointerKey, FiresOnPointerKeyedContainersAndComparators) {
  const auto fs = lint_source("fx.cpp", R"fx(
std::map<Task*, int> prio_by_task;
std::set<const Task*> blocked;
std::less<Task*> by_address;
)fx");
  EXPECT_EQ(count_rule(fs, "pointer-key"), 3);
}

TEST(HpcslintPointerKey, QuietOnValueKeysAndPointerValues) {
  const auto fs = lint_source("fx.cpp", R"fx(
std::map<Pid, int> prio_by_pid;
std::map<int, Task*> task_by_pid;   // pointer as mapped value: fine
runner.map(points.size(), fn);      // member call named map
)fx");
  EXPECT_TRUE(fs.empty());
}

TEST(HpcslintPointerKey, AllowSuppresses) {
  const auto fs = lint_source("fx.cpp", R"fx(
std::set<Task*> alive;  // HPCSLINT-ALLOW(pointer-key) membership only, never iterated
)fx");
  EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// hot-alloc

TEST(HpcslintHotAlloc, FiresInsideHotRegionOnly) {
  const auto fs = lint_source("fx.cpp", R"fx(
auto cold = std::make_unique<Slot[]>(64);   // outside any region: fine
// HPCS_HOT_BEGIN
void dispatch() {
  auto* e = new Entry();
  auto s = std::make_unique<Slot>();
  std::function<void()> cb = [] {};
  q.push(e);
}
// HPCS_HOT_END
auto cold2 = std::make_shared<Slot>();
)fx");
  EXPECT_EQ(count_rule(fs, "hot-alloc"), 3);
}

TEST(HpcslintHotAlloc, QuietOnNonAllocatingHotCode) {
  const auto fs = lint_source("fx.cpp", R"fx(
// HPCS_HOT_BEGIN
void heap_push(HeapEntry e) {
  heap_.push_back(e);          // amortized growth is accepted; no new/function
  InplaceFunction<void()> cb;  // the non-allocating wrapper is the point
}
// HPCS_HOT_END
)fx");
  EXPECT_TRUE(fs.empty());
}

TEST(HpcslintHotAlloc, AllowSuppressesPlacementNew) {
  const auto fs = lint_source("fx.cpp", R"fx(
// HPCS_HOT_BEGIN
::new (buf) Fn(f);  // HPCSLINT-ALLOW(hot-alloc) placement new: no heap
::new (buf) Fn(g);
// HPCS_HOT_END
)fx");
  EXPECT_EQ(count_rule(fs, "hot-alloc"), 1);  // the un-annotated one still fires
}

// ---------------------------------------------------------------------------
// missing-override

TEST(HpcslintMissingOverride, FiresOnShadowedHook) {
  const auto fs = lint_source("fx.cpp", R"fx(
class BrokenClass final : public SchedClass {
 public:
  void enqueue(Kernel& k, Rq& rq, Task& t, bool wakeup) override;
  void dequeue(Kernel& k, Rq& rq, Task& t);   // oops: shadows, never called
  Task* pick_next(Kernel& k, Rq& rq) override;
};
)fx");
  ASSERT_EQ(count_rule(fs, "missing-override"), 1);
  EXPECT_EQ(fs[0].line, 5);
  EXPECT_NE(fs[0].message.find("dequeue"), std::string::npos);
}

TEST(HpcslintMissingOverride, QuietOnInterfaceAndUnrelatedClasses) {
  const auto fs = lint_source("fx.cpp", R"fx(
class SchedClass {
 public:
  virtual void enqueue(Kernel& k, Rq& rq, Task& t, bool wakeup) = 0;  // the interface itself
};
class Tracer {
 public:
  void enqueue(Event e);  // same hook name, unrelated class: fine
};
class GoodClass final : public kern::SchedClass {
 public:
  void enqueue(Kernel& k, Rq& rq, Task& t, bool wakeup) override {}
  void helper();  // non-hook member without override: fine
};
)fx");
  EXPECT_TRUE(fs.empty()) << rules_of(fs).size();
}

TEST(HpcslintMissingOverride, AllowSuppresses) {
  const auto fs = lint_source("fx.cpp", R"fx(
class Legacy final : public SchedClass {
 public:
  void yield(Kernel& k, Rq& rq, Task& t);  // HPCSLINT-ALLOW(missing-override)
};
)fx");
  EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// Cross-cutting machinery

TEST(Hpcslint, FindingsAreSortedAndFormatted) {
  const auto fs = lint_source("fx.cpp", R"fx(
std::random_device rd;
auto t = std::chrono::steady_clock::now();
)fx");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_LT(fs[0].line, fs[1].line);
  const std::string line = hpcslint::format_finding(fs[0]);
  EXPECT_EQ(line.rfind("fx.cpp:2: [rand]", 0), 0u) << line;
}

TEST(Hpcslint, AllowListAcceptsMultipleRules) {
  const auto fs = lint_source("fx.cpp", R"fx(
std::uint64_t s = time(nullptr) ^ std::chrono::system_clock::now().time_since_epoch().count();  // HPCSLINT-ALLOW(rand, wallclock)
)fx");
  EXPECT_TRUE(fs.empty());
}

TEST(Hpcslint, RuleNamesAreStable) {
  const auto& names = hpcslint::rule_names();
  EXPECT_EQ(names.size(), 7u);
  EXPECT_NE(std::find(names.begin(), names.end(), "hot-alloc"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "tracepoint-name"), names.end());
}

// ---------------------------------------------------------------------------
// tracepoint-name

TEST(HpcslintTracepointName, FiresOnRuntimeId) {
  const auto fs = lint_source("fx.cpp", R"fx(
void f(hpcs::obs::Recorder* rec, hpcs::obs::TpId id) {
  HPCS_TRACEPOINT(rec, id, now(), 0, 1, 2);
  HPCS_TRACEPOINT(rec, pick_tracepoint(), now(), 0, 1, 2);
  HPCS_TRACEPOINT(rec, static_cast<hpcs::obs::TpId>(3), now(), 0, 1, 2);
}
)fx");
  EXPECT_EQ(count_rule(fs, "tracepoint-name"), 3);
  EXPECT_EQ(fs[0].line, 3);
}

TEST(HpcslintTracepointName, QuietOnCatalogueConstants) {
  const auto fs = lint_source("fx.cpp", R"fx(
void f(hpcs::obs::Recorder* rec) {
  HPCS_TRACEPOINT(rec, obs::TpId::kTpSchedSwitch, now(), 0, 1, 2);
  HPCS_TRACEPOINT(rec, hpcs::obs::TpId::kTpWake, now(), 0, 1, 2);
  HPCS_TRACEPOINT(rec,
                  obs::TpId::kTpMigrate,
                  now(), 0, 1, 2);
}
)fx");
  EXPECT_TRUE(fs.empty());
}

TEST(HpcslintTracepointName, FiresOnTheCountSentinel) {
  // kTpCount is the catalogue size, not a tracepoint.
  const auto fs = lint_source("fx.cpp", R"fx(
void f(hpcs::obs::Recorder* rec) {
  HPCS_TRACEPOINT(rec, obs::TpId::kTpCount, now(), 0, 1, 2);
}
)fx");
  EXPECT_EQ(count_rule(fs, "tracepoint-name"), 1);
}

TEST(HpcslintTracepointName, SkipsTheMacroDefinitionItself) {
  const auto fs = lint_source("fx.cpp", R"fx(
#define HPCS_TRACEPOINT(rec, id, when, cpu, arg0, arg1) \
  do {                                                  \
  } while (0)
)fx");
  EXPECT_TRUE(fs.empty());
}

TEST(HpcslintTracepointName, AllowSuppresses) {
  const auto fs = lint_source("fx.cpp", R"fx(
void f(hpcs::obs::Recorder* rec, hpcs::obs::TpId id) {
  HPCS_TRACEPOINT(rec, id, now(), 0, 1, 2);  // HPCSLINT-ALLOW(tracepoint-name) generic shim
}
)fx");
  EXPECT_TRUE(fs.empty());
}

TEST(Hpcslint, BannedTokensInCommentsAndStringsNeverFire) {
  const auto fs = lint_source("fx.cpp", R"fx(
// steady_clock rand() std::unordered_map iteration new make_unique
const char* msg = "call time(nullptr) and srand(7)";
/* std::map<Task*, int> in a block comment */
)fx");
  EXPECT_TRUE(fs.empty());
}

}  // namespace
