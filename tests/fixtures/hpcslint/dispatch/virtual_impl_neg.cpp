// Virtual-dispatch taint fixture, negative twin of virtual_impl_pos.cpp:
// the same override shape, but the body is pure arithmetic. With this impl
// in the program no det-taint may be reported anywhere.

namespace hpcs::kern {
class TraceSink {
 public:
  virtual void emit(int value);
  virtual ~TraceSink();
};
}  // namespace hpcs::kern

namespace hpcs::hostio {

class CountingSink : public hpcs::kern::TraceSink {
 public:
  void emit(int value) override;
  long long seen_ = 0;
};

void CountingSink::emit(int value) { seen_ += value; }

}  // namespace hpcs::hostio
