// Unit and property tests of the discrete-event core: ordering, FIFO
// tie-breaking, cancellation semantics, determinism.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "simcore/simulator.h"

namespace hpcs::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime(30), [&] { order.push_back(3); });
  q.schedule(SimTime(10), [&] { order.push_back(1); });
  q.schedule(SimTime(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule(SimTime(10), [&] { fired = true; });
  EXPECT_TRUE(q.pending(h));
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.pending(h));
  EXPECT_FALSE(q.cancel(h));  // second cancel is a no-op
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime(1), [] {});
  q.pop_and_run();
  EXPECT_FALSE(q.pending(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, SlotRecyclingKeepsHandlesDistinct) {
  EventQueue q;
  EventHandle h1 = q.schedule(SimTime(1), [] {});
  q.pop_and_run();
  // The recycled slot must not make the stale handle valid again.
  EventHandle h2 = q.schedule(SimTime(2), [] {});
  EXPECT_FALSE(q.pending(h1));
  EXPECT_TRUE(q.pending(h2));
  EXPECT_FALSE(q.cancel(h1));
  EXPECT_TRUE(q.cancel(h2));
}

TEST(EventQueue, SizeCountsLiveEventsOnly) {
  EventQueue q;
  EventHandle a = q.schedule(SimTime(1), [] {});
  q.schedule(SimTime(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), SimTime(2));
}

TEST(Simulator, NowAdvancesWithEvents) {
  Simulator s;
  SimTime seen = SimTime::zero();
  s.schedule_in(Duration(100), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, SimTime(100));
  EXPECT_EQ(s.now(), SimTime(100));
}

TEST(Simulator, NestedScheduling) {
  Simulator s;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 5) s.schedule_in(Duration(10), recur);
  };
  s.schedule_in(Duration(10), recur);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), SimTime(50));
}

TEST(Simulator, RunRespectsDeadline) {
  Simulator s;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_in(Duration(i * 10), [&] { ++fired; });
  }
  s.run(SimTime(50));
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(s.now(), SimTime(50));
  s.run();
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, ZeroDelayEventRunsAtCurrentTime) {
  Simulator s;
  SimTime when = SimTime::max();
  s.schedule_in(Duration(5), [&] {
    s.schedule_in(Duration::zero(), [&] { when = s.now(); });
  });
  s.run();
  EXPECT_EQ(when, SimTime(5));
}

// Property: a random schedule/cancel workload never fires cancelled events,
// fires everything else exactly once, and in non-decreasing time order.
TEST(EventQueueProperty, RandomScheduleCancelStress) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    EventQueue q;
    std::vector<EventHandle> handles;
    std::vector<int> fired_count(2000, 0);
    std::vector<bool> cancelled(2000, false);
    SimTime last_fired = SimTime::zero();
    int next_id = 0;

    for (int round = 0; round < 2000; ++round) {
      const double dice = rng.uniform();
      if (dice < 0.6 || q.empty()) {
        const int id = next_id++;
        const SimTime when(rng.uniform_int(0, 100000));
        if (id < 2000) {
          handles.push_back(q.schedule(when, [&fired_count, id] { ++fired_count[static_cast<std::size_t>(id)]; }));
        }
      } else if (dice < 0.8 && !handles.empty()) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(handles.size()) - 1));
        if (q.cancel(handles[pick])) {
          cancelled[pick] = true;
        }
      }
    }
    // Drain; events may be in the "past" relative to each other but must pop
    // in non-decreasing order.
    while (!q.empty()) {
      const SimTime t = q.next_time();
      EXPECT_GE(t, last_fired);
      last_fired = t;
      q.pop_and_run();
    }
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (cancelled[i]) {
        EXPECT_EQ(fired_count[i], 0) << "cancelled event " << i << " fired";
      } else {
        EXPECT_EQ(fired_count[i], 1) << "event " << i << " fired " << fired_count[i] << " times";
      }
    }
  }
}

TEST(EventQueueReschedule, MovesPendingEventWithoutTouchingCallback) {
  EventQueue q;
  std::vector<int> order;
  EventHandle h = q.schedule(SimTime(10), [&] { order.push_back(1); });
  q.schedule(SimTime(20), [&] { order.push_back(2); });
  EXPECT_TRUE(q.reschedule(h, SimTime(30)));  // 1 now fires after 2
  EXPECT_TRUE(q.pending(h));
  EXPECT_EQ(q.size(), 2u);  // the superseded heap entry is not a live event
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventQueueReschedule, StaleHandleReturnsFalse) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime(1), [] {});
  q.pop_and_run();
  EXPECT_FALSE(q.reschedule(h, SimTime(5)));  // already fired
  EventHandle c = q.schedule(SimTime(1), [] {});
  q.cancel(c);
  EXPECT_FALSE(q.reschedule(c, SimTime(5)));  // cancelled
  EXPECT_FALSE(q.reschedule(EventHandle{}, SimTime(5)));  // default handle
}

TEST(EventQueueReschedule, RearmFromInsideFiringCallback) {
  // The recurring-event fast path: the callback re-arms its own slot and the
  // original handle stays valid across every firing.
  EventQueue q;
  struct State {
    EventQueue* q;
    EventHandle h;
    int fired = 0;
  } st{&q, {}, 0};
  st.h = q.schedule(SimTime(10), [&st] {
    if (++st.fired < 5) {
      ASSERT_TRUE(st.q->reschedule(st.h, SimTime(st.fired * 10 + 10)));
    }
  });
  SimTime last = SimTime::zero();
  while (!q.empty()) last = q.pop_and_run();
  EXPECT_EQ(st.fired, 5);
  EXPECT_EQ(last, SimTime(50));
  EXPECT_FALSE(q.pending(st.h));
}

TEST(EventQueueReschedule, FifoOrderFollowsRescheduleTime) {
  // A rescheduled event ties with later-scheduled events at the same time:
  // reschedule() consumes a fresh sequence number, exactly like the
  // cancel+schedule pair it replaces.
  EventQueue q;
  std::vector<int> order;
  EventHandle h = q.schedule(SimTime(5), [&] { order.push_back(0); });
  q.schedule(SimTime(10), [&] { order.push_back(1); });
  EXPECT_TRUE(q.reschedule(h, SimTime(10)));  // now ties with 1, but later seq
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(EventQueueReschedule, CancelThenReuseKeepsGenerationsDistinct) {
  // A slot whose cancelled entry is still lazily parked in the heap must not
  // resurrect the old handle when the slot is eventually recycled.
  EventQueue q;
  EventHandle old = q.schedule(SimTime(50), [] { FAIL() << "cancelled event fired"; });
  q.cancel(old);
  // Drain: the cancelled entry surfaces, the slot is recycled.
  q.schedule(SimTime(1), [] {});
  while (!q.empty()) q.pop_and_run();
  bool fired = false;
  EventHandle fresh = q.schedule(SimTime(60), [&] { fired = true; });
  EXPECT_FALSE(q.pending(old));
  EXPECT_FALSE(q.cancel(old));
  EXPECT_FALSE(q.reschedule(old, SimTime(70)));
  EXPECT_TRUE(q.pending(fresh));
  while (!q.empty()) q.pop_and_run();
  EXPECT_TRUE(fired);
}

TEST(EventQueueClear, ResetsSequenceNumbering) {
  // clear() must reset the FIFO tie-break counter: a reused queue has to
  // behave exactly like a fresh one (determinism contract).
  auto tie_break_order = [](EventQueue& q) {
    std::vector<int> order;
    for (int i = 0; i < 4; ++i) q.schedule(SimTime(7), [&order, i] { order.push_back(i); });
    while (!q.empty()) q.pop_and_run();
    return order;
  };
  EventQueue fresh;
  const auto expected = tie_break_order(fresh);
  EventQueue reused;
  reused.schedule(SimTime(1), [] {});
  reused.schedule(SimTime(2), [] {});
  reused.clear();
  EXPECT_TRUE(reused.empty());
  EXPECT_EQ(tie_break_order(reused), expected);
}

TEST(EventQueueClear, DropsPendingEventsAndHandles) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule(SimTime(5), [&] { fired = true; });
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pending(h));
  EXPECT_FALSE(q.cancel(h));
  EXPECT_FALSE(fired);
}

// Determinism: two identical runs produce the identical firing order.
TEST(EventQueueProperty, DeterministicReplay) {
  auto run_once = [](std::uint64_t seed) {
    Rng rng(seed);
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 500; ++i) {
      s.schedule_at(SimTime(rng.uniform_int(0, 1000)), [&order, i] { order.push_back(i); });
    }
    s.run();
    return order;
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

}  // namespace
}  // namespace hpcs::sim
