// Reproduces Table VI: SIESTA (benzene-like irregular workload). The paper's
// point: the heuristics only reduce the imbalance marginally, yet HPCSched
// still improves the execution time ~6% — the gain comes from the scheduling
// policy (low wakeup latency, HPC class priority over OS noise), not from
// balancing. We report the latency split explicitly.

#include "bench_common.h"
#include "bench_dist.h"

int main(int argc, char** argv) {
  using namespace hpcs;
  using analysis::SchedMode;

  bench::init_logging(argc, argv);
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  const bench::ObsOptions obs = bench::parse_obs_options(argc, argv);
  const bench::DistContext dist = bench::parse_dist_options(argc, argv);
  bench::reject_dist_incompatible(dist, obs);
  bench::maybe_serve_dist_worker(dist);
  const auto e = analysis::SiestaExperiment::paper();
  const std::vector<SchedMode> modes = {SchedMode::kBaselineCfs, SchedMode::kUniform,
                                        SchedMode::kAdaptive};

  std::printf("=== Table VI: SIESTA characterization ===\n\n");
  exp::EngineStats host{};
  auto results = bench::run_modes_dist(
      dist, "table6_siesta", jobs, modes,
      [&e, &obs](SchedMode m) {
        return analysis::run_siesta(e, m, /*trace=*/false, /*seed=*/1, obs.cfg);
      },
      &host, /*seed=*/1, obs);
  auto& baseline = results[0];
  auto& uniform = results[1];
  auto& adaptive = results[2];

  bench::print_side_by_side(baseline, analysis::paper_reference_siesta(SchedMode::kBaselineCfs));
  std::printf("\n");
  bench::print_side_by_side(uniform, analysis::paper_reference_siesta(SchedMode::kUniform));
  std::printf("\n");
  bench::print_side_by_side(adaptive, analysis::paper_reference_siesta(SchedMode::kAdaptive));
  std::printf("\n");

  bench::print_improvement_summary("Uniform vs baseline", baseline, uniform, 81.49, 76.82);
  bench::print_improvement_summary("Adaptive vs baseline", baseline, adaptive, 81.49, 76.91);

  std::printf(
      "\nscheduler latency (avg wakeup->dispatch): baseline %.1fus, uniform %.1fus, "
      "adaptive %.1fus\n",
      baseline.avg_wakeup_latency_us, uniform.avg_wakeup_latency_us,
      adaptive.avg_wakeup_latency_us);
  std::printf("wakeups: baseline %lld messages %lld\n",
              static_cast<long long>(baseline.ranks[0].wakeups +
                                     baseline.ranks[1].wakeups +
                                     baseline.ranks[2].wakeups + baseline.ranks[3].wakeups),
              static_cast<long long>(baseline.messages));

  std::vector<analysis::TableSection> sections = {
      {"Baseline", &baseline, {4, 4, 4, 4}},
      {"Uniform", &uniform, {}},
      {"Adaptive", &adaptive, {}},
  };
  std::printf("\n%s\n",
              analysis::render_characterization_table("Table VI (measured)", sections).c_str());
  bench::write_table_json("table6_siesta", jobs, modes, results);
  bench::write_obs_outputs("table6_siesta", obs, jobs, modes, results, &host);
  return 0;
}
