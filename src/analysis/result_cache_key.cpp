#include "analysis/result_cache_key.h"

#include "analysis/run_serialize.h"
#include "cache/fnv.h"
#include "dist/wire.h"

namespace hpcs::analysis {

std::uint64_t result_cache_key(const std::string& job, const std::string& params,
                               std::uint32_t index) {
  dist::WireWriter w;
  w.u32(kCacheKeyVersion)
      .u32(run_result_format_version())
      .str(job)
      .str(params)
      .u32(index);
  return cache::fnv1a64(w.data());
}

}  // namespace hpcs::analysis
