# Empty compiler generated dependencies file for test_common_types.
# This may be replaced when dependencies are built.
