// Differential gate for the timing-wheel event core: every paper workload,
// run once with the hierarchical wheel and once on the legacy binary heap
// (EventQueue::set_default_wheel_enabled), must produce byte-identical
// serialized RunResults. The wheel is a routing optimization — firing order
// is a pure function of (when, insertion seq) regardless of which container
// held the event — so ANY byte difference here is an ordering bug.
//
// Observability stays off: the sim.eq_wheel_* counters legitimately differ
// between the two modes (that is their whole point) while everything the
// scheduler can observe must not.

#include <gtest/gtest.h>

#include <string>

#include "analysis/paper_experiments.h"
#include "analysis/run_serialize.h"
#include "simcore/event_queue.h"

namespace hpcs {
namespace {

/// Restores the process-wide wheel default even when an assertion bails out.
class WheelDefaultGuard {
 public:
  WheelDefaultGuard() = default;
  ~WheelDefaultGuard() { sim::EventQueue::set_default_wheel_enabled(true); }
  WheelDefaultGuard(const WheelDefaultGuard&) = delete;
  WheelDefaultGuard& operator=(const WheelDefaultGuard&) = delete;
};

template <typename RunFn>
void expect_wheel_invariant(const char* label, RunFn run) {
  WheelDefaultGuard guard;
  for (const auto mode :
       {analysis::SchedMode::kBaselineCfs, analysis::SchedMode::kUniform,
        analysis::SchedMode::kAdaptive}) {
    sim::EventQueue::set_default_wheel_enabled(true);
    const std::string with_wheel = analysis::serialize_run_result(run(mode));
    sim::EventQueue::set_default_wheel_enabled(false);
    const std::string heap_only = analysis::serialize_run_result(run(mode));
    sim::EventQueue::set_default_wheel_enabled(true);
    ASSERT_FALSE(with_wheel.empty()) << label;
    EXPECT_EQ(with_wheel, heap_only)
        << label << " mode=" << static_cast<int>(mode)
        << ": wheel-on and heap-only runs diverged";
  }
}

TEST(EventQueueDifferential, MetBenchIdenticalWithAndWithoutWheel) {
  auto e = analysis::MetBenchExperiment::paper();
  e.workload.iterations = 4;
  expect_wheel_invariant("metbench", [&e](analysis::SchedMode m) {
    return analysis::run_metbench(e, m);
  });
}

TEST(EventQueueDifferential, MetBenchVarIdenticalWithAndWithoutWheel) {
  auto e = analysis::MetBenchVarExperiment::paper();
  e.workload.iterations = 6;
  e.workload.k = 3;
  expect_wheel_invariant("metbenchvar", [&e](analysis::SchedMode m) {
    return analysis::run_metbenchvar(e, m);
  });
}

TEST(EventQueueDifferential, BtMzIdenticalWithAndWithoutWheel) {
  auto e = analysis::BtMzExperiment::paper();
  e.workload.iterations = 8;
  expect_wheel_invariant("btmz", [&e](analysis::SchedMode m) {
    return analysis::run_btmz(e, m);
  });
}

TEST(EventQueueDifferential, SiestaIdenticalWithAndWithoutWheel) {
  auto e = analysis::SiestaExperiment::paper();
  e.workload.microiters = 2000;
  expect_wheel_invariant("siesta", [&e](analysis::SchedMode m) {
    return analysis::run_siesta(e, m);
  });
}

// The static-priority mode exercises the Power5 hardware-priority paths on
// top of the tick machinery; cover it once on the cheapest workload.
TEST(EventQueueDifferential, StaticPrioModeIdenticalWithAndWithoutWheel) {
  WheelDefaultGuard guard;
  auto e = analysis::MetBenchExperiment::paper();
  e.workload.iterations = 3;
  sim::EventQueue::set_default_wheel_enabled(true);
  const std::string with_wheel = analysis::serialize_run_result(
      analysis::run_metbench(e, analysis::SchedMode::kStatic));
  sim::EventQueue::set_default_wheel_enabled(false);
  const std::string heap_only = analysis::serialize_run_result(
      analysis::run_metbench(e, analysis::SchedMode::kStatic));
  EXPECT_EQ(with_wheel, heap_only);
}

}  // namespace
}  // namespace hpcs
