file(REMOVE_RECURSE
  "CMakeFiles/table6_siesta.dir/table6_siesta.cpp.o"
  "CMakeFiles/table6_siesta.dir/table6_siesta.cpp.o.d"
  "table6_siesta"
  "table6_siesta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_siesta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
