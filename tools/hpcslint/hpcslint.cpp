// hpcslint implementation. One pass prepares the source (comments and
// literal contents blanked so rules cannot fire inside them, lint directives
// harvested from the comment text); the rules then pattern-match the
// identifier-token stream of the blanked code. Every heuristic is documented
// at its implementation — when a rule misfires, the fix is either improving
// the heuristic here or an explicit `// HPCSLINT-ALLOW(rule)` at the site,
// both of which leave a reviewable trace.

#include "hpcslint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iterator>
#include <set>
#include <sstream>
#include <unordered_set>
#include <utility>

namespace hpcslint {
namespace {

constexpr std::string_view kAllowDirective = "HPCSLINT-ALLOW(";
constexpr std::string_view kHotBegin = "HPCS_HOT_BEGIN";
constexpr std::string_view kHotEnd = "HPCS_HOT_END";

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---------------------------------------------------------------------------
// Source preparation: blank comments and literal contents (preserving length
// and line structure), collect ALLOW directives and HOT regions.

struct Prepared {
  std::string code;  ///< same length as the input; only lintable code remains
  std::vector<std::set<std::string, std::less<>>> allow;  ///< per line, 1-based
  std::vector<char> hot;                                  ///< per line, 1-based
};

Prepared prepare(std::string_view src) {
  Prepared p;
  p.code.assign(src.begin(), src.end());

  struct CommentNote {
    int line = 0;
    bool standalone = false;  ///< no code precedes the comment on its line
    std::vector<std::string> allow_rules;
    bool hot_begin = false;
    bool hot_end = false;
  };
  std::vector<CommentNote> notes;

  auto note_comment = [&notes](std::string_view text, int comment_line, bool standalone) {
    CommentNote note;
    note.line = comment_line;
    note.standalone = standalone;
    for (std::size_t a = text.find(kAllowDirective); a != std::string_view::npos;
         a = text.find(kAllowDirective, a + 1)) {
      std::size_t pos = a + kAllowDirective.size();
      std::string rule;
      while (pos < text.size() && text[pos] != ')') {
        const char c = text[pos++];
        if (c == ',') {
          if (!rule.empty()) note.allow_rules.push_back(std::move(rule));
          rule.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
          rule += c;
        }
      }
      if (!rule.empty()) note.allow_rules.push_back(std::move(rule));
    }
    note.hot_begin = text.find(kHotBegin) != std::string_view::npos;
    // HPCS_HOT_END contains neither marker as a substring of the other? It
    // does share the prefix — check END explicitly so BEGIN does not match it.
    note.hot_end = text.find(kHotEnd) != std::string_view::npos;
    if (note.hot_begin && note.hot_end) note.hot_begin = false;  // one marker per comment
    if (!note.allow_rules.empty() || note.hot_begin || note.hot_end) {
      notes.push_back(std::move(note));
    }
  };

  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool line_has_code = false;
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      line_has_code = false;
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i;
      const int comment_line = line;
      const bool standalone = !line_has_code;
      while (i < n && src[i] != '\n') p.code[i++] = ' ';
      note_comment(src.substr(start, i - start), comment_line, standalone);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start = i;
      const int comment_line = line;
      const bool standalone = !line_has_code;
      p.code[i] = p.code[i + 1] = ' ';
      i += 2;
      while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          ++line;
        } else {
          p.code[i] = ' ';
        }
        ++i;
      }
      if (i < n) {
        p.code[i] = p.code[i + 1] = ' ';
        i += 2;
      }
      note_comment(src.substr(start, std::min(i, n) - start), comment_line, standalone);
      continue;
    }
    if (c == '"') {
      line_has_code = true;
      const bool raw = i > 0 && src[i - 1] == 'R';
      if (raw) {
        std::size_t d = i + 1;
        std::string delim;
        while (d < n && src[d] != '(' && src[d] != '\n') delim += src[d++];
        const std::string closer = ")" + delim + "\"";
        std::size_t end = src.find(closer, d);
        end = end == std::string_view::npos ? n : end + closer.size();
        for (std::size_t j = i; j < end; ++j) {
          if (src[j] == '\n') {
            ++line;
          } else {
            p.code[j] = ' ';
          }
        }
        i = end;
        continue;
      }
      ++i;
      while (i < n && src[i] != '"' && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n) {
          p.code[i] = ' ';
          ++i;
        }
        p.code[i] = ' ';
        ++i;
      }
      if (i < n && src[i] == '"') ++i;
      continue;
    }
    if (c == '\'') {
      // Digit separator (1'000'000) vs. char literal: a quote between a digit
      // and a hex digit is a separator.
      const bool separator =
          i > 0 && std::isdigit(static_cast<unsigned char>(src[i - 1])) != 0 &&
          i + 1 < n && std::isxdigit(static_cast<unsigned char>(src[i + 1])) != 0;
      if (separator) {
        ++i;
        continue;
      }
      line_has_code = true;
      ++i;
      while (i < n && src[i] != '\'' && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n) {
          p.code[i] = ' ';
          ++i;
        }
        p.code[i] = ' ';
        ++i;
      }
      if (i < n && src[i] == '\'') ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) == 0) line_has_code = true;
    ++i;
  }

  const int total_lines = line + 1;
  p.allow.assign(static_cast<std::size_t>(total_lines) + 1, {});
  p.hot.assign(static_cast<std::size_t>(total_lines) + 1, 0);

  bool hot = false;
  int hot_from = 0;
  auto mark_hot = [&p](int from, int to) {
    for (int l = from; l <= to && l < static_cast<int>(p.hot.size()); ++l) {
      if (l >= 1) p.hot[static_cast<std::size_t>(l)] = 1;
    }
  };
  for (const CommentNote& note : notes) {
    for (const std::string& rule : note.allow_rules) {
      p.allow[static_cast<std::size_t>(note.line)].insert(rule);
      // A standalone ALLOW comment suppresses on the line that follows it.
      if (note.standalone && note.line + 1 < static_cast<int>(p.allow.size())) {
        p.allow[static_cast<std::size_t>(note.line) + 1].insert(rule);
      }
    }
    if (note.hot_begin && !hot) {
      hot = true;
      hot_from = note.line;
    } else if (note.hot_end && hot) {
      hot = false;
      mark_hot(hot_from, note.line);
    }
  }
  if (hot) mark_hot(hot_from, total_lines);  // unclosed region runs to EOF
  return p;
}

// ---------------------------------------------------------------------------
// Token stream + char-level context helpers over the blanked code.

struct Tok {
  std::size_t begin = 0;
  std::size_t end = 0;
  int line = 0;
  std::string_view text;
};

std::vector<Tok> tokenize(std::string_view code) {
  std::vector<Tok> out;
  int line = 1;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (is_ident_start(c)) {
      const std::size_t begin = i;
      while (i < code.size() && is_ident_char(code[i])) ++i;
      out.push_back(Tok{begin, i, line, code.substr(begin, i - begin)});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      while (i < code.size() && (is_ident_char(code[i]) || code[i] == '.')) ++i;
      continue;  // numeric literal: never a token of interest
    }
    ++i;
  }
  return out;
}

std::size_t prev_nonspace(std::string_view code, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(code[pos])) == 0) return pos;
  }
  return std::string_view::npos;
}

std::size_t next_nonspace(std::string_view code, std::size_t pos) {
  while (pos < code.size()) {
    if (std::isspace(static_cast<unsigned char>(code[pos])) == 0) return pos;
    ++pos;
  }
  return std::string_view::npos;
}

/// True when the char before `pos` (skipping whitespace) ends a member
/// access: `.` or `->`.
bool preceded_by_member_access(std::string_view code, std::size_t pos) {
  const std::size_t p = prev_nonspace(code, pos);
  if (p == std::string_view::npos) return false;
  if (code[p] == '.') return true;
  return code[p] == '>' && p > 0 && code[p - 1] == '-';
}

/// From `open` (position of '<'), return the position just past the matching
/// '>', or npos. Tracks nested <> and () so `map<int, pair<a,b>>` works; a
/// stray comparison operator simply fails the match.
std::size_t match_angles(std::string_view code, std::size_t open) {
  int angle = 0;
  int paren = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<') {
      ++angle;
    } else if (c == '>') {
      if (i > 0 && code[i - 1] == '-') continue;  // ->
      --angle;
      if (angle == 0) return i + 1;
    } else if (c == '(') {
      ++paren;
    } else if (c == ')') {
      if (paren == 0) return std::string_view::npos;
      --paren;
    } else if (c == ';' || c == '{') {
      return std::string_view::npos;  // was a comparison, not a template
    }
  }
  return std::string_view::npos;
}

/// First template argument between '<' at `open` and its matching '>',
/// whitespace-trimmed; empty when the angles don't match.
std::string first_template_arg(std::string_view code, std::size_t open) {
  int angle = 0;
  int paren = 0;
  bool complete = false;  // saw the first arg's terminator (',' or final '>')
  std::string arg;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<') {
      ++angle;
      if (angle == 1) continue;
    } else if (c == '>') {
      if (i > 0 && code[i - 1] == '-') {
        // '->' inside an argument; fall through and record it
      } else {
        --angle;
        if (angle == 0) {
          complete = true;
          break;
        }
      }
    } else if (c == '(') {
      ++paren;
    } else if (c == ')') {
      --paren;
    } else if (c == ',' && angle == 1 && paren == 0) {
      complete = true;
      break;
    } else if (c == ';' || c == '{') {
      return {};
    }
    if (angle >= 1) arg += c;
  }
  while (!arg.empty() && std::isspace(static_cast<unsigned char>(arg.back())) != 0) {
    arg.pop_back();
  }
  while (!arg.empty() && std::isspace(static_cast<unsigned char>(arg.front())) != 0) {
    arg.erase(arg.begin());
  }
  return complete ? arg : std::string{};
}

// ---------------------------------------------------------------------------
// Findings sink with ALLOW filtering.

class Sink {
 public:
  Sink(const std::string& file, const Prepared& prep, std::vector<Finding>& out)
      : file_(file), prep_(prep), out_(out) {}

  void report(const char* rule, int line, std::string message) {
    const auto l = static_cast<std::size_t>(line);
    if (l < prep_.allow.size() && prep_.allow[l].count(rule) != 0) return;
    out_.push_back(Finding{file_, line, rule, std::move(message)});
  }

  [[nodiscard]] bool hot(int line) const {
    const auto l = static_cast<std::size_t>(line);
    return l < prep_.hot.size() && prep_.hot[l] != 0;
  }

 private:
  const std::string& file_;
  const Prepared& prep_;
  std::vector<Finding>& out_;
};

// ---------------------------------------------------------------------------
// Rules.

// wallclock: any mention of a wall/monotonic clock type. Simulated time is
// the only clock the simulation may observe; benches that legitimately time
// themselves carry an ALLOW.
void rule_wallclock(const std::vector<Tok>& toks, Sink& sink) {
  for (const Tok& t : toks) {
    if (t.text == "system_clock" || t.text == "steady_clock" ||
        t.text == "high_resolution_clock") {
      sink.report("wallclock", t.line,
                  "wall-clock read (" + std::string(t.text) +
                      "): simulation code must use SimTime; benches may "
                      "HPCSLINT-ALLOW(wallclock) their timing harness");
    }
  }
}

// rand: ambient (non-seeded) randomness. Every stochastic draw must come
// from an hpcs::Rng seeded by the experiment config, or sweeps stop
// reproducing. `time` only fires when called (`time(`) and not as a member
// (`x.time(...)`).
void rule_rand(std::string_view code, const std::vector<Tok>& toks, Sink& sink) {
  static const std::unordered_set<std::string_view> kBanned = {
      "rand", "srand", "rand_r", "drand48", "lrand48", "random_device"};
  for (const Tok& t : toks) {
    if (kBanned.count(t.text) != 0) {
      sink.report("rand", t.line,
                  "ambient randomness (" + std::string(t.text) +
                      "): draw from a config-seeded hpcs::Rng instead");
      continue;
    }
    if (t.text == "time" && !preceded_by_member_access(code, t.begin)) {
      const std::size_t nx = next_nonspace(code, t.end);
      if (nx != std::string_view::npos && code[nx] == '(') {
        sink.report("rand", t.line,
                    "time(...) call: wall-clock seeds break run reproducibility");
      }
    }
  }
}

// unordered-iter: iterating a hash container feeds hash-order — which varies
// across libstdc++ versions and ASLR — into whatever consumes the loop.
// Heuristic: remember every identifier declared right after an
// unordered_map/unordered_set template type in this file, then flag
// range-fors whose range expression mentions one, and explicit .begin()
// family calls on one.
void rule_unordered_iter(std::string_view code, const std::vector<Tok>& toks, Sink& sink) {
  std::set<std::string_view> uvars;
  for (const Tok& t : toks) {
    if (t.text != "unordered_map" && t.text != "unordered_set" &&
        t.text != "unordered_multimap" && t.text != "unordered_multiset") {
      continue;
    }
    const std::size_t open = next_nonspace(code, t.end);
    if (open == std::string_view::npos || code[open] != '<') continue;
    std::size_t after = match_angles(code, open);
    if (after == std::string_view::npos) continue;
    // Skip refs/pointers between the type and the declared name.
    while (true) {
      after = next_nonspace(code, after);
      if (after == std::string_view::npos) break;
      if (code[after] == '&' || code[after] == '*') {
        ++after;
        continue;
      }
      break;
    }
    if (after == std::string_view::npos || !is_ident_start(code[after])) continue;
    std::size_t end = after;
    while (end < code.size() && is_ident_char(code[end])) ++end;
    uvars.insert(code.substr(after, end - after));
  }
  if (uvars.empty()) return;

  for (std::size_t ti = 0; ti < toks.size(); ++ti) {
    const Tok& t = toks[ti];
    if (t.text == "for") {
      const std::size_t open = next_nonspace(code, t.end);
      if (open == std::string_view::npos || code[open] != '(') continue;
      // Find ':' at paren depth 1 (not '::'), then the closing ')'.
      int depth = 0;
      std::size_t colon = std::string_view::npos;
      std::size_t close = std::string_view::npos;
      for (std::size_t i = open; i < code.size(); ++i) {
        const char c = code[i];
        if (c == '(') {
          ++depth;
        } else if (c == ')') {
          --depth;
          if (depth == 0) {
            close = i;
            break;
          }
        } else if (c == ':' && depth == 1 && colon == std::string_view::npos) {
          const bool dbl = (i + 1 < code.size() && code[i + 1] == ':') ||
                           (i > 0 && code[i - 1] == ':');
          if (!dbl) colon = i;
        } else if (c == ';' && depth == 1) {
          break;  // classic for loop, not range-for
        }
      }
      if (colon == std::string_view::npos || close == std::string_view::npos) continue;
      for (std::size_t tj = ti + 1; tj < toks.size() && toks[tj].begin < close; ++tj) {
        if (toks[tj].begin > colon && uvars.count(toks[tj].text) != 0) {
          sink.report("unordered-iter", t.line,
                      "range-for over unordered container '" + std::string(toks[tj].text) +
                          "': hash order is not deterministic; copy into a sorted "
                          "container first");
          break;
        }
      }
    } else if (t.text == "begin" || t.text == "cbegin" || t.text == "rbegin" ||
               t.text == "crbegin") {
      if (!preceded_by_member_access(code, t.begin)) continue;
      // Identifier before the access operator.
      std::size_t p = prev_nonspace(code, t.begin);
      if (p != std::string_view::npos && code[p] == '>') --p;  // '->'
      if (p == std::string_view::npos || p == 0) continue;
      const std::size_t ident_end = prev_nonspace(code, p);
      if (ident_end == std::string_view::npos || !is_ident_char(code[ident_end])) continue;
      std::size_t ident_begin = ident_end;
      while (ident_begin > 0 && is_ident_char(code[ident_begin - 1])) --ident_begin;
      const std::string_view ident = code.substr(ident_begin, ident_end + 1 - ident_begin);
      if (uvars.count(ident) != 0) {
        sink.report("unordered-iter", t.line,
                    "iteration over unordered container '" + std::string(ident) +
                        "' via ." + std::string(t.text) + "(): hash order is not "
                        "deterministic");
      }
    }
  }
}

// pointer-key: ordering keyed on a pointer value (map/set key, or a
// less/greater comparator instantiated on a pointer) depends on allocation
// addresses, so two runs — let alone two machines — disagree. Key by pid,
// rank, slot id, or another value-stable identity instead.
void rule_pointer_key(std::string_view code, const std::vector<Tok>& toks, Sink& sink) {
  static const std::unordered_set<std::string_view> kKeyed = {
      "map",      "set",      "multimap",          "multiset", "unordered_map",
      "unordered_set", "unordered_multimap", "unordered_multiset", "less", "greater"};
  for (const Tok& t : toks) {
    if (kKeyed.count(t.text) == 0) continue;
    if (preceded_by_member_access(code, t.begin)) continue;  // .map(...) member call
    const std::size_t open = next_nonspace(code, t.end);
    if (open == std::string_view::npos || code[open] != '<') continue;
    const std::string arg = first_template_arg(code, open);
    if (!arg.empty() && arg.back() == '*') {
      sink.report("pointer-key", t.line,
                  std::string(t.text) + "<" + arg + ", ...>: pointer values are not a "
                      "deterministic ordering key; key by a stable id instead");
    }
  }
}

// hot-alloc: inside // HPCS_HOT_BEGIN .. // HPCS_HOT_END regions, no
// allocation and no type-erased std::function construction. These regions
// are the event-loop fast paths docs/performance.md documents as
// allocation-free; this rule keeps them that way. Non-allocating placement
// new carries an ALLOW at the site.
void rule_hot_alloc(std::string_view code, const std::vector<Tok>& toks, Sink& sink) {
  static const std::unordered_set<std::string_view> kAlloc = {
      "new", "make_unique", "make_shared", "malloc", "calloc", "realloc"};
  for (const Tok& t : toks) {
    if (!sink.hot(t.line)) continue;
    if (kAlloc.count(t.text) != 0) {
      sink.report("hot-alloc", t.line,
                  "allocation (" + std::string(t.text) +
                      ") inside an HPCS_HOT region (docs/performance.md)");
      continue;
    }
    if (t.text == "function") {
      const std::size_t p = prev_nonspace(code, t.begin);
      if (p != std::string_view::npos && code[p] == ':') {
        sink.report("hot-alloc", t.line,
                    "std::function inside an HPCS_HOT region: use "
                    "sim::InplaceFunction (non-allocating) instead");
      }
    }
  }
}

// missing-override: in any class whose base clause names SchedClass, every
// scheduler hook declaration must say `override` (or `final`) — a hook that
// merely shadows compiles fine and then silently never runs. The compile-time
// SchedClassImpl concept (kernel/sched_class.h) catches signature drift;
// this rule catches the shadowing shape the concept cannot distinguish.
void rule_missing_override(std::string_view code, const std::vector<Tok>& toks, Sink& sink) {
  static const std::unordered_set<std::string_view> kHooks = {
      "name",     "owns",          "make_rq",        "enqueue",       "dequeue",
      "pick_next", "put_prev",     "task_tick",      "wakeup_preempt", "yield",
      "steal_candidate", "wants_balance", "wakeup_cost"};

  for (std::size_t ti = 0; ti < toks.size(); ++ti) {
    if (toks[ti].text != "class" && toks[ti].text != "struct") continue;
    if (ti > 0 && toks[ti - 1].text == "enum") continue;
    if (ti + 1 >= toks.size()) continue;

    // Scan the class head: find '{' or ';' and remember whether a base
    // clause in between names SchedClass.
    std::size_t head = toks[ti].end;
    std::size_t body_open = std::string_view::npos;
    bool derives_sched_class = false;
    {
      int angle = 0;
      bool in_bases = false;
      for (std::size_t i = head; i < code.size(); ++i) {
        const char c = code[i];
        if (c == '<') {
          ++angle;
        } else if (c == '>') {
          if (angle > 0) --angle;
        } else if (c == ';' && angle == 0) {
          break;  // forward declaration
        } else if (c == '{' && angle == 0) {
          body_open = i;
          break;
        } else if (c == ':' && angle == 0) {
          const bool dbl = (i + 1 < code.size() && code[i + 1] == ':') ||
                           (i > 0 && code[i - 1] == ':');
          if (!dbl) {
            in_bases = true;
          } else {
            ++i;  // skip '::'
          }
        } else if (in_bases && is_ident_start(c)) {
          std::size_t e = i;
          while (e < code.size() && is_ident_char(code[e])) ++e;
          if (code.substr(i, e - i) == "SchedClass") derives_sched_class = true;
          i = e - 1;
        }
      }
    }
    if (!derives_sched_class || body_open == std::string_view::npos) continue;

    // Walk the class body; consider hook-named declarations at depth 1.
    int depth = 0;
    for (std::size_t i = body_open; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
        if (depth == 0) break;
      } else if (depth == 1 && is_ident_start(c)) {
        std::size_t e = i;
        while (e < code.size() && is_ident_char(code[e])) ++e;
        const std::string_view word = code.substr(i, e - i);
        if (kHooks.count(word) == 0) {
          i = e - 1;
          continue;
        }
        const std::size_t open = next_nonspace(code, e);
        if (open == std::string_view::npos || code[open] != '(') {
          i = e - 1;
          continue;
        }
        // Find the parameter list's ')' then scan the declaration tail.
        int paren = 0;
        std::size_t close = std::string_view::npos;
        for (std::size_t j = open; j < code.size(); ++j) {
          if (code[j] == '(') {
            ++paren;
          } else if (code[j] == ')') {
            --paren;
            if (paren == 0) {
              close = j;
              break;
            }
          }
        }
        if (close == std::string_view::npos) break;
        bool has_override = false;
        std::size_t tail_end = close;
        for (std::size_t j = close + 1; j < code.size(); ++j) {
          const char cj = code[j];
          if (cj == ';' || cj == '{') {
            tail_end = j;
            break;
          }
          if (is_ident_start(cj)) {
            std::size_t we = j;
            while (we < code.size() && is_ident_char(code[we])) ++we;
            const std::string_view w = code.substr(j, we - j);
            if (w == "override" || w == "final") has_override = true;
            j = we - 1;
          }
        }
        if (!has_override) {
          int line = 1;
          for (std::size_t j = 0; j < i; ++j) {
            if (code[j] == '\n') ++line;
          }
          sink.report("missing-override", line,
                      "SchedClass hook '" + std::string(word) +
                          "' declared without override: a signature mismatch would "
                          "silently shadow instead of overriding");
        }
        i = tail_end;
      }
    }
  }
}

// tracepoint-name: the id argument of an HPCS_TRACEPOINT record site must be
// a kTp* enumerator (optionally namespace/enum qualified) — a compile-time
// constant from the tracepoint catalogue in obs/tracepoint.h. A runtime
// expression there would silently decouple the record site from the
// per-tracepoint hit counters (whose registration order mirrors the
// catalogue), and make the set of tracepoints ungreppable.
void rule_tracepoint_name(std::string_view code, const std::vector<Tok>& toks, Sink& sink) {
  for (std::size_t ti = 0; ti < toks.size(); ++ti) {
    if (toks[ti].text != "HPCS_TRACEPOINT") continue;
    // Skip the macro's own definition (`#define HPCS_TRACEPOINT(...)`).
    if (ti > 0 && toks[ti - 1].text == "define") continue;
    const std::size_t open = next_nonspace(code, toks[ti].end);
    if (open == std::string_view::npos || code[open] != '(') continue;

    // Extract the second top-level argument of the invocation.
    int paren = 0;
    int commas = 0;
    std::size_t arg_begin = std::string_view::npos;
    std::size_t arg_end = std::string_view::npos;
    for (std::size_t i = open; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '(') {
        ++paren;
      } else if (c == ')') {
        --paren;
        if (paren == 0) {
          if (commas == 1) arg_end = i;
          break;
        }
      } else if (c == ',' && paren == 1) {
        ++commas;
        if (commas == 1) {
          arg_begin = i + 1;
        } else if (commas == 2) {
          arg_end = i;
          break;
        }
      }
    }

    // Valid shape: `(qualifier::)* kTp<ident>` with nothing else.
    bool ok = false;
    if (arg_begin != std::string_view::npos && arg_end != std::string_view::npos) {
      std::string flat;
      for (std::size_t i = arg_begin; i < arg_end; ++i) {
        if (!std::isspace(static_cast<unsigned char>(code[i]))) flat.push_back(code[i]);
      }
      std::size_t pos = 0;
      bool segments_ok = !flat.empty();
      std::size_t q;
      while (segments_ok && (q = flat.find("::", pos)) != std::string::npos) {
        segments_ok = q > pos && is_ident_start(flat[pos]);
        for (std::size_t i = pos; segments_ok && i < q; ++i) {
          segments_ok = is_ident_char(flat[i]);
        }
        pos = q + 2;
      }
      if (segments_ok) {
        const std::string last = flat.substr(pos);
        ok = last.size() > 3 && last.compare(0, 3, "kTp") == 0 && last != "kTpCount";
        for (std::size_t i = 0; ok && i < last.size(); ++i) {
          ok = is_ident_char(last[i]);
        }
      }
    }
    if (!ok) {
      sink.report("tracepoint-name", toks[ti].line,
                  "HPCS_TRACEPOINT id must be a kTp* enumerator from the tracepoint "
                  "catalogue (obs/tracepoint.h), not a runtime expression");
    }
  }
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kRules = {
      "wallclock", "rand", "unordered-iter", "pointer-key", "hot-alloc",
      "missing-override", "tracepoint-name"};
  return kRules;
}

std::vector<Finding> lint_source(const std::string& file_label, std::string_view source) {
  const Prepared prep = prepare(source);
  const std::vector<Tok> toks = tokenize(prep.code);
  std::vector<Finding> out;
  Sink sink(file_label, prep, out);
  rule_wallclock(toks, sink);
  rule_rand(prep.code, toks, sink);
  rule_unordered_iter(prep.code, toks, sink);
  rule_pointer_key(prep.code, toks, sink);
  rule_hot_alloc(prep.code, toks, sink);
  rule_missing_override(prep.code, toks, sink);
  rule_tracepoint_name(prep.code, toks, sink);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::vector<Finding> lint_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {Finding{path.string(), 0, "io-error", "cannot open file"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(path.string(), buf.str());
}

std::vector<Finding> lint_tree(const std::vector<std::filesystem::path>& roots) {
  std::vector<std::filesystem::path> files;
  const auto lintable = [](const std::filesystem::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
  };
  const auto in_fixture_dir = [](const std::filesystem::path& p) {
    for (const auto& part : p) {
      if (part == "fixtures" || part == "hpcslint_fixtures") return true;
    }
    return false;
  };
  for (const std::filesystem::path& root : roots) {
    if (std::filesystem::is_regular_file(root)) {
      if (lintable(root)) files.push_back(root);
      continue;
    }
    if (!std::filesystem::is_directory(root)) continue;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(root)) {
      if (entry.is_regular_file() && lintable(entry.path()) &&
          !in_fixture_dir(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> out;
  for (const std::filesystem::path& f : files) {
    std::vector<Finding> fs = lint_file(f);
    out.insert(out.end(), std::make_move_iterator(fs.begin()),
               std::make_move_iterator(fs.end()));
  }
  return out;
}

std::string format_finding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " + f.message;
}

}  // namespace hpcslint
