// Scheduling domains and the per-class workload balancer: spreading tasks
// across contexts/cores, idle pull, pinned tasks stay put, per-domain-level
// equalization (paper §IV-A example: a core with 1 task pulls from a core
// with 3 so each core ends with 2).

#include <gtest/gtest.h>

#include "test_util.h"

namespace hpcs::test {
namespace {

using kern::Policy;
using kern::Topology;

TEST(Domains, Power5Levels) {
  const Topology t = Topology::power5_chip(2);
  EXPECT_EQ(t.num_cpus(), 4);
  const auto& lv = t.domains_for(0);
  ASSERT_EQ(lv.size(), 2u);
  EXPECT_EQ(lv[0].level, "smt");
  ASSERT_EQ(lv[0].groups.size(), 2u);
  EXPECT_EQ(lv[0].groups[0], (std::vector<CpuId>{0}));
  EXPECT_EQ(lv[0].groups[1], (std::vector<CpuId>{1}));
  EXPECT_EQ(lv[1].level, "core");
  EXPECT_EQ(lv[1].groups[0], (std::vector<CpuId>{0, 1}));
  EXPECT_EQ(lv[1].groups[1], (std::vector<CpuId>{2, 3}));
  // CPU 3's SMT domain covers core 1.
  EXPECT_EQ(t.domains_for(3)[0].groups[0], (std::vector<CpuId>{2}));
}

TEST(Domains, SingleCoreHasOnlySmtLevel) {
  const Topology t = Topology::power5_chip(1);
  EXPECT_EQ(t.num_cpus(), 2);
  EXPECT_EQ(t.domains_for(0).size(), 1u);
}

TEST(Balancer, SpreadsHogsAcrossAllCpus) {
  KernelFixture f;
  f.k().start();
  // Four hogs all born on CPU 0: the balancer must spread them 1 per CPU.
  std::vector<kern::Task*> tasks;
  for (int i = 0; i < 4; ++i) {
    auto& t = f.k().create_task("hog" + std::to_string(i), std::make_unique<HogBody>(),
                                Policy::kNormal, 0);
    f.k().start_task(t);
    tasks.push_back(&t);
  }
  f.run_until(Duration::seconds(1.0));
  std::vector<int> per_cpu(4, 0);
  for (auto* t : tasks) ++per_cpu[static_cast<std::size_t>(t->cpu)];
  EXPECT_EQ(per_cpu, (std::vector<int>{1, 1, 1, 1}));
  EXPECT_GT(f.k().migrations(), 0);
  // Each hog then runs ~100% of one context at SMT speed.
  for (auto* t : tasks) {
    f.k().flush_account(*t);
    EXPECT_GT(t->t_run, Duration::milliseconds(900)) << t->name();
  }
}

TEST(Balancer, CoreLevelEqualization) {
  KernelFixture f;
  f.k().start();
  // Paper §IV-A: one core with 1 task, the other with 3 -> pull to 2 and 2.
  std::vector<kern::Task*> tasks;
  tasks.push_back(&f.k().create_task("t0", std::make_unique<HogBody>(), Policy::kNormal, 0));
  tasks.push_back(&f.k().create_task("t1", std::make_unique<HogBody>(), Policy::kNormal, 2));
  tasks.push_back(&f.k().create_task("t2", std::make_unique<HogBody>(), Policy::kNormal, 2));
  tasks.push_back(&f.k().create_task("t3", std::make_unique<HogBody>(), Policy::kNormal, 2));
  for (auto* t : tasks) f.k().start_task(*t);
  f.run_until(Duration::seconds(1.0));
  int core0 = 0;
  int core1 = 0;
  for (auto* t : tasks) (t->cpu < 2 ? core0 : core1) += 1;
  EXPECT_EQ(core0, 2);
  EXPECT_EQ(core1, 2);
}

TEST(Balancer, PinnedTasksAreNotMigrated) {
  KernelFixture f;
  f.k().start();
  std::vector<kern::Task*> tasks;
  for (int i = 0; i < 3; ++i) {
    auto& t = f.k().create_task("pin" + std::to_string(i), std::make_unique<HogBody>(),
                                Policy::kNormal, 0);
    f.k().sched_setaffinity(t, 0);
    f.k().start_task(t);
    tasks.push_back(&t);
  }
  f.run_until(Duration::seconds(1.0));
  for (auto* t : tasks) EXPECT_EQ(t->cpu, 0) << t->name();
  EXPECT_EQ(f.k().migrations(), 0);
}

TEST(Balancer, IdlePullTakesWorkQuickly) {
  KernelFixture f;
  f.k().start();
  // Two hogs on CPU 0; CPU 1 going idle must pull one instead of waiting for
  // the periodic balance.
  auto& a = f.k().create_task("a", std::make_unique<HogBody>(), Policy::kNormal, 0);
  auto& b = f.k().create_task("b", std::make_unique<HogBody>(), Policy::kNormal, 0);
  f.k().start_task(a);
  f.k().start_task(b);
  f.run_until(Duration::milliseconds(300));
  EXPECT_NE(a.cpu, b.cpu);
  f.k().flush_account(a);
  f.k().flush_account(b);
  // Both run nearly continuously once spread.
  EXPECT_GT(a.t_run + b.t_run, Duration::milliseconds(500));
}

TEST(Balancer, NoPullWhenBalanced) {
  KernelFixture f;
  f.k().start();
  std::vector<kern::Task*> tasks;
  for (int i = 0; i < 4; ++i) {
    auto& t = f.k().create_task("t" + std::to_string(i), std::make_unique<HogBody>(),
                                Policy::kNormal, i);
    f.k().start_task(t);
    tasks.push_back(&t);
  }
  f.run_until(Duration::seconds(1.0));
  EXPECT_EQ(f.k().migrations(), 0) << "balanced placement must not churn";
  for (int i = 0; i < 4; ++i) EXPECT_EQ(tasks[static_cast<std::size_t>(i)]->cpu, i);
}

}  // namespace
}  // namespace hpcs::test
