// Kernel edge cases: affinity of running/sleeping tasks, policy changes in
// every state, spurious wakeups, zero-length sleeps, yield semantics, sysfs
// knob effects, tick accounting at boundaries, and the Hybrid heuristic's
// future-work promise (good on both constant and dynamic workloads).

#include <gtest/gtest.h>

#include "analysis/paper_experiments.h"
#include "hpcsched/hpcsched.h"
#include "test_util.h"

namespace hpcs::test {
namespace {

using kern::Policy;

TEST(KernelEdge, AffinityOfSleepingTaskMovesImmediately) {
  KernelFixture f;
  f.k().start();
  auto& t = f.k().create_task("t", std::make_unique<HogBody>(), Policy::kNormal, 0);
  // Still sleeping (never started): affinity moves it directly.
  EXPECT_TRUE(f.k().sched_setaffinity(t, 3));
  EXPECT_EQ(t.cpu, 3);
  f.k().start_task(t);
  f.run_until(Duration::milliseconds(50));
  EXPECT_EQ(t.cpu, 3);
}

TEST(KernelEdge, AffinityOfRunningTaskAppliesAtNextWakeup) {
  KernelFixture f;
  f.k().start();
  auto& t = f.k().create_task("t", std::make_unique<PeriodicBody>(
                                        2.0e6, Duration::milliseconds(5)),
                              Policy::kNormal, 0);
  f.k().start_task(t);
  f.run_until(Duration::milliseconds(2));  // mid-compute
  EXPECT_TRUE(f.k().sched_setaffinity(t, 2));
  f.run_until(Duration::milliseconds(50));
  EXPECT_EQ(t.cpu, 2);
  EXPECT_EQ(t.pinned_cpu, 2);
}

TEST(KernelEdge, InvalidAffinityRejected) {
  KernelFixture f;
  f.k().start();
  auto& t = f.k().create_task("t", std::make_unique<HogBody>(), Policy::kNormal, 0);
  EXPECT_FALSE(f.k().sched_setaffinity(t, 99));
  EXPECT_FALSE(f.k().sched_setaffinity(t, -7));
  EXPECT_TRUE(f.k().sched_setaffinity(t, kInvalidCpu));  // clears the pin
}

TEST(KernelEdge, WakeOfRunnableTaskIsNoop) {
  KernelFixture f;
  f.k().start();
  auto& t = f.k().create_task("t", std::make_unique<HogBody>(), Policy::kNormal, 0);
  f.k().start_task(t);
  f.run_until(Duration::milliseconds(5));
  const auto wakeups_before = t.nr_wakeups;
  f.k().wake(t);  // already runnable
  f.k().wake(t);
  f.run_until(Duration::milliseconds(10));
  EXPECT_EQ(t.nr_wakeups, wakeups_before);
}

TEST(KernelEdge, ZeroSleepIsAnImmediateYieldToWakeup) {
  KernelFixture f;
  f.k().start();
  auto& t = f.k().create_task(
      "t",
      std::make_unique<ScriptBody>(std::vector<Act>{
          Act::compute(1.0e6), Act::sleep(Duration::zero()), Act::compute(1.0e6)}),
      Policy::kNormal, 0);
  f.k().start_task(t);
  f.run_until(Duration::milliseconds(50));
  EXPECT_TRUE(t.exited());
  EXPECT_LT(t.t_sleep, Duration::milliseconds(1));
}

TEST(KernelEdge, YieldRotatesHpcRoundRobin) {
  sim::Simulator s;
  kern::Kernel k(s, {});
  hpc::install_hpcsched(k, {});
  k.start();
  // A yielding HPC task shares with its peer even without slice expiry.
  auto& yielder = k.create_task(
      "yielder",
      std::make_unique<ScriptBody>(std::vector<Act>{
          Act::compute(5.0e6), Act::yield(), Act::compute(5.0e6), Act::yield(),
          Act::compute(5.0e6)}),
      Policy::kHpcRr, 0);
  auto& peer = k.create_task("peer", std::make_unique<HogBody>(), Policy::kHpcRr, 0);
  k.sched_setaffinity(yielder, 0);
  k.sched_setaffinity(peer, 0);
  k.start_task(yielder);
  k.start_task(peer);
  s.run(SimTime(2000000000));
  EXPECT_TRUE(yielder.exited());
  k.flush_account(peer);
  EXPECT_GT(peer.t_run, Duration::milliseconds(10));
}

TEST(KernelEdge, CfsLatencyKnobChangesSliceBehaviour) {
  KernelFixture f;
  f.k().start();
  ASSERT_TRUE(f.k().sysfs().write("kernel/sched_latency_ns", 4000000));  // 4 ms
  auto& a = f.k().create_task("a", std::make_unique<HogBody>(), Policy::kNormal, 0);
  auto& b = f.k().create_task("b", std::make_unique<HogBody>(), Policy::kNormal, 0);
  f.k().sched_setaffinity(a, 0);
  f.k().sched_setaffinity(b, 0);
  f.k().start_task(a);
  f.k().start_task(b);
  f.run_until(Duration::seconds(1.0));
  // 4 ms latency with min_granularity floor 4 ms -> ~2 ms slices floor to
  // min_granularity; many more switches than the default 10 ms slices.
  EXPECT_GT(a.nr_switches, 100);
}

TEST(KernelEdge, PolicyChangeWhileSleepingTakesEffectOnWake) {
  sim::Simulator s;
  kern::Kernel k(s, {});
  hpc::install_hpcsched(k, {});
  k.start();
  auto& t = k.create_task("t", std::make_unique<PeriodicBody>(
                                    1.0e6, Duration::milliseconds(10)),
                          Policy::kNormal, 0);
  k.start_task(t);
  s.run(SimTime(3000000));  // let it block
  EXPECT_TRUE(k.sched_setscheduler(t, Policy::kHpcRr));
  s.run(SimTime(100000000));
  EXPECT_EQ(t.policy(), Policy::kHpcRr);
  EXPECT_FALSE(t.exited());
  // It kept running fine across the class change.
  k.flush_account(t);
  EXPECT_GT(t.t_run, Duration::milliseconds(5));
}

TEST(KernelEdge, RequestSamePriorityIsFreeNoop) {
  KernelFixture f;
  f.k().start();
  auto& t = f.k().create_task("t", std::make_unique<HogBody>(), Policy::kNormal, 0);
  f.k().start_task(t);
  f.run_until(Duration::milliseconds(5));
  const auto writes = f.k().isa().writes();
  f.k().request_hw_prio(t, t.hw_prio);  // same value
  EXPECT_EQ(f.k().isa().writes(), writes);
}

// Future-work goal (paper §VI): one heuristic good on constant AND dynamic
// applications. Hybrid must be within striking distance of the specialist
// on each side.
TEST(HybridHeuristic, HandlesBothRegimes) {
  auto mb = analysis::MetBenchExperiment::paper();
  mb.workload.iterations = 12;
  for (auto& l : mb.workload.loads) l /= 4.0;
  const auto mb_base = analysis::run_metbench(mb, analysis::SchedMode::kBaselineCfs);
  const auto mb_uni = analysis::run_metbench(mb, analysis::SchedMode::kUniform);
  const auto mb_hyb = analysis::run_metbench(mb, analysis::SchedMode::kHybrid);
  EXPECT_GT(analysis::improvement_pct(mb_base, mb_hyb),
            analysis::improvement_pct(mb_base, mb_uni) - 4.0)
      << "hybrid must stay close to Uniform on a constant app";

  auto var = analysis::MetBenchVarExperiment::paper();
  var.workload.iterations = 24;
  var.workload.k = 8;
  for (auto& l : var.workload.loads_a) l /= 8.0;
  for (auto& l : var.workload.loads_b) l /= 8.0;
  const auto v_base = analysis::run_metbenchvar(var, analysis::SchedMode::kBaselineCfs);
  const auto v_ada = analysis::run_metbenchvar(var, analysis::SchedMode::kAdaptive);
  const auto v_hyb = analysis::run_metbenchvar(var, analysis::SchedMode::kHybrid);
  EXPECT_GT(analysis::improvement_pct(v_base, v_hyb),
            analysis::improvement_pct(v_base, v_ada) - 4.0)
      << "hybrid must stay close to Adaptive on a dynamic app";
}

}  // namespace
}  // namespace hpcs::test
