#pragma once
// Worker side of the sweep fabric. Like the Coordinator, a pure state
// machine: time is the `now_ms` argument, the connection arrives in the
// constructor, and step() does a bounded amount of work — drain frames,
// execute at most ONE sweep point, maybe heartbeat. One point per step keeps
// the loopback failover tests precise (kill a worker "mid-shard" means:
// between two step() calls) and lets the host loop interleave heartbeats
// with long points.
//
//   HELLO -> HELLO_ACK {job, params, count} -> registry resolve ->
//   (ASSIGN -> ROW* -> DONE)* -> BYE
//
// Any protocol surprise (reject, unknown job, count mismatch, corrupt frame)
// sends ERROR where possible and parks the session in kFailed; the host loop
// exits nonzero and the coordinator survives via retry/fallback.

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "dist/protocol.h"
#include "dist/registry.h"
#include "dist/transport.h"
#include "obs/recorder.h"

namespace hpcs::dist {

struct WorkerConfig {
  std::string name = "worker";
  std::uint32_t capacity = 1;  ///< concurrent shards accepted (queued locally)
  std::int64_t heartbeat_interval_ms = 1000;
};

class WorkerSession {
 public:
  enum class Phase : std::uint8_t { kHello, kRunning, kFinished, kFailed };

  WorkerSession(WorkerConfig cfg, const JobRegistry& jobs,
                std::unique_ptr<Connection> conn);

  /// Pump once. Returns true while the session wants more steps.
  bool step(std::int64_t now_ms);

  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] bool finished() const {
    return phase_ == Phase::kFinished || phase_ == Phase::kFailed;
  }
  [[nodiscard]] const std::string& fail_reason() const { return fail_reason_; }
  [[nodiscard]] std::int64_t rows_sent() const { return rows_sent_; }
  [[nodiscard]] std::int64_t shards_done() const { return shards_done_; }
  /// True when an ASSIGN is queued but not fully executed — "mid-shard".
  [[nodiscard]] bool mid_shard() const { return !assigns_.empty(); }

  /// Attach a fabric-side observability recorder (assign/row/heartbeat
  /// tracepoints, now_ms-driven). Same single-branch-off contract as the
  /// kernel and Coordinator seams.
  void set_obs(obs::Recorder* rec) { obs_ = rec; }
  [[nodiscard]] obs::Recorder* obs() const { return obs_; }

 private:
  struct PendingShard {
    std::uint64_t shard = 0;
    std::vector<std::uint32_t> indices;
    std::size_t next = 0;  ///< next position in indices to execute
  };

  void handle_frame(const Frame& f, std::int64_t now_ms);
  void execute_one(std::int64_t now_ms);
  void fail(const std::string& why, bool tell_peer);
  bool send_or_fail(const Frame& f);

  WorkerConfig cfg_;
  const JobRegistry& jobs_;
  std::unique_ptr<Connection> conn_;
  FrameDecoder decoder_;
  Phase phase_ = Phase::kHello;
  ResolvedJob job_;
  std::deque<PendingShard> assigns_;
  std::string fail_reason_;
  std::int64_t last_send_ms_ = -1;
  std::int64_t rows_sent_ = 0;
  std::int64_t shards_done_ = 0;
  bool hello_sent_ = false;
  obs::Recorder* obs_ = nullptr;
};

}  // namespace hpcs::dist
