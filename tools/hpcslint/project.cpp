// hpcslint front end, stage 3: the cross-TU link step.
//
// Input: one TuIndex per file (parser.cpp). This file merges them into a
// whole-program view and runs the three rule families that need it:
//
//  det-taint   A function is *tainted* when its body touches a
//              nondeterminism source (wall clock, ambient RNG, env read,
//              hash-order iteration) or calls a tainted function. Taint
//              propagates callee→caller over the resolved call graph; any
//              tainted function belonging to the deterministic core
//              (simcore/kernel/power5/obs, by namespace or path) is an
//              error. ALLOW'd sources never taint — an allowed source is a
//              reviewed exception, not a leak.
//
//  lock-order  Every `MutexLock b(..)` executed while `a` is held is an
//              edge a→b; so is every acquisition a callee performs while
//              the caller holds a lock, and every acquisition inside a
//              REQUIRES(m) function (m→acquired). A cycle in this graph is
//              a potential deadlock. Mutex names are normalized to
//              Class::field when the field is found in the merged class
//              table, so `mu_` in two classes stays two nodes.
//
//  lock-guard  A write to a GUARDED_BY(g) field recorded by the parser
//              with no matching mutex in its held-set (locks in scope plus
//              the function's REQUIRES) is reported. This is the portable
//              subset of Clang's -Wthread-safety, which CI only gets on
//              one matrix leg.
//
//  dist-purity A function in the pure state-machine zone (the deterministic
//              core above, plus everything under src/dist that is not under
//              dist/host) must be driven by `now_ms` and the config: if it
//              reaches a host-environment source — a wall clock, RNG, file
//              or stream IO, socket, sleep, process call — outside an
//              HPCS_HOST_BEGIN/END region, that is an error. The closure
//              runs over the same resolved call graph as det-taint but
//              seeds from IO sources as well as nondeterminism sources.
//
// Call resolution (v3) is qualified-name based with dispatch awareness:
// qualified chains resolve exact-first (then caller-namespace-prefixed,
// then whole-suffix over the name index); member calls with a known
// receiver type resolve through the class hierarchy — walking up base
// classes to the declaring method, then fanning out to every override in
// derived classes when the anchor is virtual. Callables bound into
// `InplaceFunction`/`std::function` slots (CallbackBind) become call-graph
// edges from the slot's invokers — and from callees with callback-typed
// parameters — to the callable's body, so taint flows through dispatch
// sites like `EventQueue::schedule`. Unqualified names still resolve
// same-class, then enclosing-namespace, then globally; a name matching
// more than kMaxCandidates symbols (or one from the std-noise list:
// push_back, size, find, ...) resolves to nothing rather than to
// everything.

#include "tu.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <unordered_set>
#include <utility>

#include "json_mini.h"

namespace hpcslint {
namespace {

constexpr std::size_t kMaxCandidates = 8;

/// Member/free function names so common in std usage that resolving them
/// through the project symbol table would connect unrelated code.
bool is_noise_call(const std::string& name) {
  static const std::unordered_set<std::string_view> k = {
      "size",      "empty",       "begin",      "end",        "cbegin",
      "cend",      "rbegin",      "rend",       "push_back",  "emplace_back",
      "push_front", "emplace_front", "pop_back", "pop_front", "front",
      "back",      "clear",       "insert",     "erase",      "find",
      "count",     "at",          "reserve",    "resize",     "capacity",
      "get",       "reset",       "release",    "c_str",      "data",
      "str",       "substr",      "append",     "compare",    "load",
      "store",     "exchange",    "fetch_add",  "notify_all", "notify_one",
      "wait",      "wait_for",    "join",       "joinable",   "detach",
      "lock",      "unlock",      "try_lock",   "native",     "min",
      "max",       "move",        "forward",    "swap",       "to_string",
      "sort",      "stable_sort", "fill",       "copy",       "transform",
      "accumulate", "abs",        "floor",      "ceil",       "round",
      "sqrt",      "pow",         "exp",        "log",        "log2",
      "make_pair", "make_tuple",  "tie",        "emplace",    "assign",
      "push",      "pop",         "top",        "first",      "second",
      "printf",    "fprintf",     "snprintf",   "memcpy",     "memset",
      "memmove",   "strlen",      "strcmp",     "open",       "close",
      "good",      "fail",        "eof",        "rdbuf",      "write",
      "read",      "flush",       "value",      "has_value",  "push_heap",
      "pop_heap",  "lower_bound", "upper_bound"};
  return k.count(name) != 0;
}

/// Last field-ish segment of a mutex expression: "pool.mu_" → "mu_".
std::string mutex_tail(const std::string& m) {
  const std::size_t cut = m.find_last_of(".>:");
  return cut == std::string::npos ? m : m.substr(cut + 1);
}

std::string join_chain(const std::vector<std::string>& segs) {
  std::string out;
  for (const std::string& s : segs) {
    if (!out.empty()) out += "::";
    out += s;
  }
  return out;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Last `::` segment of a joined chain ("threads_::emplace_back" → the call).
std::string chain_tail(const std::string& joined) {
  const std::size_t cut = joined.rfind("::");
  return cut == std::string::npos ? joined : joined.substr(cut + 2);
}

/// HPCS_HOST service code under src/dist/host runs accept/pump loops on
/// long-lived threads — those functions are concurrency roots for the race
/// analysis.
bool in_dist_host_file(const std::string& file) {
  return file.find("dist/host") != std::string::npos ||
         file.find("dist\\host") != std::string::npos;
}

/// ALL_CAPS identifiers in switch arms are macros (tracepoints, asserts) —
/// noise in the transition graph, dropped at extraction time.
bool is_macro_like(const std::string& s) {
  bool has_upper = false;
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (std::isupper(u) != 0) {
      has_upper = true;
    } else if (std::isdigit(u) == 0 && c != '_') {
      return false;
    }
  }
  return has_upper && !s.empty();
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Fields that *are* synchronization objects (or thread handles) are never
/// race-report candidates themselves: a mutex needs no GUARDED_BY.
bool is_sync_primitive_field(const FieldInfo& f) {
  if (f.is_thread) return true;
  const std::string tail = lower(chain_tail(f.type));
  return tail.find("mutex") != std::string::npos ||
         tail.find("condition_variable") != std::string::npos ||
         tail.find("condvar") != std::string::npos ||
         tail.find("atomic") != std::string::npos || tail == "thread" ||
         tail == "jthread";
}

/// A class-owned lockable member — evidence the class opted into internal
/// synchronization (and the GUARDED_BY suggestion target).
bool is_mutex_field(const FieldInfo& f) {
  return lower(chain_tail(f.type)).find("mutex") != std::string::npos;
}

struct OwnedTaint {
  std::string origin;  ///< "what at file:line" — pre-rendered for messages
};

struct OwnedLockEdge {
  std::string from, to;
  std::size_t tu = 0;
  int line = 0;
};

struct OwnedWrite {
  PendingFieldWrite w;
  std::size_t tu = 0;
};

struct OwnedUse {
  PendingContainerUse u;
  std::size_t tu = 0;
};

struct OwnedCall {
  CallSite cs;
  std::size_t tu = 0;
};

struct OwnedSwitch {
  SwitchInfo sw;
  std::size_t tu = 0;
};

struct OwnedEnum {
  EnumInfo e;
  std::size_t tu = 0;  ///< defining TU — decides protocol-enum status by path
};

/// One merged symbol: every declaration and body sharing a qualified name
/// (overload sets collapse into one node — conservative and simple).
struct Node {
  std::string qname;
  std::string name;
  std::string class_qname;
  bool has_body = false;
  bool is_protected = false;
  bool is_virtual = false;  ///< virtual anywhere in the overload/decl set
  bool in_host = false;     ///< defining body sits in an HPCS_HOST region
  bool has_callback_param = false;  ///< takes a std::function/InplaceFunction
  std::size_t def_tu = 0;  ///< TU of the first body (finding attribution)
  int def_line = 0;
  std::vector<std::string> requires_m;
  std::vector<OwnedCall> calls;
  std::vector<OwnedTaint> taints;
  std::vector<OwnedTaint> io_taints;  ///< host-environment sources (dist-purity)
  std::vector<OwnedLockEdge> lock_edges;  ///< normalized at build time
  std::vector<std::string> acquired;      ///< normalized
  std::vector<OwnedWrite> writes;
  std::vector<OwnedUse> uses;
  std::vector<OwnedSwitch> switches;
};

class Linker {
 public:
  Linker(std::vector<TuIndex>& tus, std::vector<Finding>& out,
         std::string* protocol_graph)
      : tus_(tus), out_(out), graph_(protocol_graph) {}

  void run() {
    merge_classes();
    build_hierarchy();
    merge_functions();
    merge_enums();
    collect_binds();
    resolve_calls_all();
    resolve_pending_uses();   // may add taints — must precede the closure
    resolve_pending_writes();
    build_lock_graph();
    report_lock_cycles();
    taint_closure();
    report_det_taint();
    purity_closure();
    report_purity();
    protocol_analysis();
    race_analysis();
  }

 private:
  std::vector<TuIndex>& tus_;
  std::vector<Finding>& out_;
  std::string* graph_ = nullptr;  ///< receives the transition-graph JSON
  std::map<std::string, ClassInfo> classes_;
  std::map<std::string, Node> nodes_;
  std::map<std::string, std::vector<std::string>> by_name_;
  std::map<std::string, std::vector<std::string>> derived_;  ///< base → direct derived
  /// Slot key ("Class::field", or "func#name" for locals) → bound callables.
  std::map<std::string, std::vector<std::string>> slot_bindings_;
  /// "encl_qname|callee_chain" → callables passed as arguments to that call.
  std::map<std::string, std::vector<std::string>> arg_binds_;
  std::map<std::string, std::vector<std::string>> callees_;  ///< resolved edges
  std::map<std::string, std::vector<std::string>> callers_;  ///< reverse edges
  std::map<std::string, OwnedEnum> enums_;  ///< merged enum table (qname keyed)
  /// Direct resolved call edges with the lockset held at the site — the
  /// substrate of the interprocedural entry-lockset propagation. Callback
  /// dispatch edges are deliberately absent: a bound callable's entry
  /// lockset stays its REQUIRES set (conservative).
  struct HeldEdge {
    std::string caller, callee;
    std::set<std::string> held;  ///< normalized
  };
  std::vector<HeldEdge> held_edges_;
  std::map<std::string, std::map<std::string, OwnedLockEdge>> lock_adj_;
  std::map<std::string, std::set<std::string>> closure_memo_;
  std::set<std::string> closure_busy_;

  void report(const char* rule, std::size_t tu, int line, std::string msg) {
    if (tus_[tu].prep.allowed(rule, line)) return;
    out_.push_back(Finding{tus_[tu].file, line, rule, std::move(msg)});
  }

  void merge_classes() {
    for (TuIndex& tu : tus_) {
      for (ClassInfo& c : tu.classes) {
        ClassInfo& m = classes_[c.qname];
        if (m.qname.empty()) {
          m.qname = c.qname;
          m.line = c.line;
        }
        for (const std::string& b : c.bases) m.bases.push_back(b);
        for (auto& [name, f] : c.fields) {
          FieldInfo& mf = m.fields[name];
          if (mf.name.empty()) mf = f;
          if (mf.guard.empty()) mf.guard = f.guard;
          if (mf.container == ContainerKind::kNone) {
            mf.container = f.container;
            mf.pointer_key = f.pointer_key;
          }
          if (mf.type.empty()) mf.type = f.type;
          mf.is_callback = mf.is_callback || f.is_callback;
          mf.is_thread = mf.is_thread || f.is_thread;
        }
      }
    }
  }

  /// Resolve a type name as written (`TraceSink`, `kern::TraceSink`) to a
  /// merged class qname: exact, then prefixed with each enclosing namespace
  /// of `context` (innermost first), then unique whole-suffix match.
  std::string resolve_class(const std::string& name, const std::string& context) {
    if (name.empty()) return {};
    if (classes_.count(name) != 0) return name;
    std::string ns = context;
    std::size_t cut;
    while ((cut = ns.rfind("::")) != std::string::npos) {
      ns.resize(cut);
      const std::string q = ns + "::" + name;
      if (classes_.count(q) != 0) return q;
    }
    std::string hit;
    const std::string suffix = "::" + name;
    for (const auto& [q, c] : classes_) {
      if (ends_with(q, suffix)) {
        if (!hit.empty()) return {};  // ambiguous — resolve to nothing
        hit = q;
      }
    }
    return hit;
  }

  void build_hierarchy() {
    for (const auto& [q, c] : classes_) {
      const std::size_t cut = q.rfind("::");
      const std::string ns = cut == std::string::npos ? std::string() : q.substr(0, cut);
      for (const std::string& b : c.bases) {
        const std::string bq = resolve_class(b, ns);
        if (!bq.empty() && bq != q) derived_[bq].push_back(q);
      }
    }
  }

  /// Every class transitively derived from `base`.
  std::vector<std::string> derived_closure(const std::string& base) {
    std::vector<std::string> out;
    std::set<std::string> seen{base};
    std::deque<std::string> work{base};
    while (!work.empty()) {
      const std::string cur = std::move(work.front());
      work.pop_front();
      const auto it = derived_.find(cur);
      if (it == derived_.end()) continue;
      for (const std::string& d : it->second) {
        if (seen.insert(d).second) {
          out.push_back(d);
          work.push_back(d);
        }
      }
    }
    return out;
  }

  /// Find the node for method `name` starting at `cls` and walking up base
  /// classes — the static-dispatch anchor for a receiver of type `cls`.
  std::string find_method(const std::string& cls, const std::string& name,
                          std::set<std::string>& seen) {
    if (!seen.insert(cls).second) return {};
    const std::string q = cls + "::" + name;
    if (nodes_.count(q) != 0) return q;
    const auto c = classes_.find(cls);
    if (c == classes_.end()) return {};
    const std::size_t cut = cls.rfind("::");
    const std::string ns = cut == std::string::npos ? std::string() : cls.substr(0, cut);
    for (const std::string& b : c->second.bases) {
      const std::string bq = resolve_class(b, ns);
      if (bq.empty()) continue;
      const std::string r = find_method(bq, name, seen);
      if (!r.empty()) return r;
    }
    return {};
  }

  /// Add every override of `name` reachable through classes derived from
  /// `cls` — the dynamic-dispatch fan-out for a virtual anchor.
  void fan_out(const std::string& cls, const std::string& name,
               std::vector<std::string>& out) {
    for (const std::string& d : derived_closure(cls)) {
      const std::string q = d + "::" + name;
      if (nodes_.count(q) != 0 &&
          std::find(out.begin(), out.end(), q) == out.end()) {
        out.push_back(q);
      }
    }
  }

  /// `mu_` → `Class::mu_` when the class (of the function that names it)
  /// really has that field; otherwise the bare tail.
  std::string normalize_mutex(const std::string& raw, const std::string& class_qname) {
    const std::string tail = mutex_tail(raw);
    const auto c = classes_.find(class_qname);
    if (c != classes_.end() && c->second.fields.count(tail) != 0) {
      return class_qname + "::" + tail;
    }
    return tail;
  }

  void merge_functions() {
    for (std::size_t ti = 0; ti < tus_.size(); ++ti) {
      TuIndex& tu = tus_[ti];
      for (FuncInfo& f : tu.funcs) {
        Node& n = nodes_[f.qname];
        if (n.qname.empty()) {
          n.qname = f.qname;
          n.name = f.name;
          n.class_qname = f.class_qname;
        }
        if (n.class_qname.empty()) n.class_qname = f.class_qname;
        n.is_protected = n.is_protected || f.in_protected_scope;
        n.is_virtual = n.is_virtual || f.is_virtual || f.is_override;
        for (const VarInfo& p : f.params) {
          if (p.is_callback) n.has_callback_param = true;
        }
        for (const std::string& r : f.requires_mutexes) n.requires_m.push_back(r);
        if (f.has_body && !n.has_body) {
          n.has_body = true;
          n.def_tu = ti;
          n.def_line = f.line;
          n.in_host = f.in_host_region;
        }
        if (!f.has_body) continue;
        for (CallSite& cs : f.calls) n.calls.push_back(OwnedCall{std::move(cs), ti});
        for (const TaintSource& t : f.taints) {
          n.taints.push_back(
              OwnedTaint{t.what + " at " + tu.file + ":" + std::to_string(t.line)});
        }
        for (const TaintSource& t : f.io_taints) {
          n.io_taints.push_back(
              OwnedTaint{t.what + " at " + tu.file + ":" + std::to_string(t.line)});
        }
        for (const LockEdge& e : f.lock_edges) {
          n.lock_edges.push_back(OwnedLockEdge{
              normalize_mutex(e.held, f.class_qname),
              normalize_mutex(e.acquired, f.class_qname), ti, e.line});
        }
        for (const std::string& a : f.acquired) {
          n.acquired.push_back(normalize_mutex(a, f.class_qname));
        }
        for (PendingFieldWrite& w : f.pending_writes) {
          n.writes.push_back(OwnedWrite{std::move(w), ti});
        }
        for (PendingContainerUse& u : f.pending_uses) {
          n.uses.push_back(OwnedUse{std::move(u), ti});
        }
        for (SwitchInfo& sw : f.switches) {
          n.switches.push_back(OwnedSwitch{std::move(sw), ti});
        }
      }
    }
    for (const auto& [q, n] : nodes_) by_name_[n.name].push_back(q);
  }

  void merge_enums() {
    for (std::size_t ti = 0; ti < tus_.size(); ++ti) {
      for (const EnumInfo& e : tus_[ti].enums) {
        if (enums_.count(e.qname) == 0) enums_[e.qname] = OwnedEnum{e, ti};
      }
    }
  }

  /// Resolve an enum name as written in a case label (`FrameType`,
  /// `dist::FrameType`) to a merged enum qname — same strategy as
  /// resolve_class: exact, context-prefixed innermost-first, unique suffix.
  std::string resolve_enum(const std::string& name, const std::string& context) {
    if (name.empty()) return {};
    if (enums_.count(name) != 0) return name;
    std::string ns = context;
    std::size_t cut;
    while ((cut = ns.rfind("::")) != std::string::npos) {
      ns.resize(cut);
      const std::string q = ns + "::" + name;
      if (enums_.count(q) != 0) return q;
    }
    std::string hit;
    const std::string suffix = "::" + name;
    for (const auto& [q, oe] : enums_) {
      if (ends_with(q, suffix)) {
        if (!hit.empty()) return {};  // ambiguous — resolve to nothing
        hit = q;
      }
    }
    return hit;
  }

  /// Resolve the callable side of a bind: lambdas are exact synthetic qnames;
  /// `&Class::method` / `&free_fn` chains resolve enclosing-context-first,
  /// then by unique-enough suffix.
  std::vector<std::string> resolve_callable(const CallbackBind& b) {
    if (nodes_.count(b.callee) != 0) return {b.callee};
    if (!b.encl_class.empty() && nodes_.count(b.encl_class + "::" + b.callee) != 0) {
      return {b.encl_class + "::" + b.callee};
    }
    std::string ns = b.encl_qname;
    std::size_t cut;
    while ((cut = ns.rfind("::")) != std::string::npos) {
      ns.resize(cut);
      if (nodes_.count(ns + "::" + b.callee) != 0) return {ns + "::" + b.callee};
    }
    const std::size_t tail = b.callee.rfind("::");
    const std::string last =
        tail == std::string::npos ? b.callee : b.callee.substr(tail + 2);
    std::vector<std::string> out;
    const auto it = by_name_.find(last);
    if (it != by_name_.end()) {
      const std::string suffix = "::" + b.callee;
      for (const std::string& q : it->second) {
        if (q == b.callee || ends_with(q, suffix)) {
          out.push_back(q);
          if (out.size() > kMaxCandidates) return {};
        }
      }
    }
    return out;
  }

  /// Walk the hierarchy from `cls` to the class declaring callback field
  /// `field`; "" when no base declares it as a callback slot.
  std::string slot_declaring_key(const std::string& cls, const std::string& field,
                                 std::set<std::string>& seen) {
    if (!seen.insert(cls).second) return {};
    const auto c = classes_.find(cls);
    if (c == classes_.end()) return {};
    const auto f = c->second.fields.find(field);
    if (f != c->second.fields.end() && f->second.is_callback) {
      return cls + "::" + field;
    }
    const std::size_t cut = cls.rfind("::");
    const std::string ns = cut == std::string::npos ? std::string() : cls.substr(0, cut);
    for (const std::string& b : c->second.bases) {
      const std::string bq = resolve_class(b, ns);
      if (bq.empty()) continue;
      const std::string r = slot_declaring_key(bq, field, seen);
      if (!r.empty()) return r;
    }
    return {};
  }

  std::string slot_key(const std::string& cls, const std::string& field) {
    std::set<std::string> seen;
    return slot_declaring_key(cls, field, seen);
  }

  void collect_binds() {
    for (const TuIndex& tu : tus_) {
      for (const CallbackBind& b : tu.binds) {
        std::vector<std::string> callables = resolve_callable(b);
        if (callables.empty()) continue;
        if (b.kind == CallbackBind::Kind::kArg) {
          auto& slot = arg_binds_[b.encl_qname + "|" + b.target];
          slot.insert(slot.end(), callables.begin(), callables.end());
          continue;
        }
        std::string key;
        if (!b.recv_type.empty()) {
          const std::string cq = resolve_class(b.recv_type, b.encl_qname);
          if (!cq.empty()) key = slot_key(cq, b.target);
        }
        if (key.empty() && !b.encl_class.empty()) {
          key = slot_key(b.encl_class, b.target);
        }
        // Local callback variables bind and dispatch within one function.
        if (key.empty()) key = b.encl_qname + "#" + b.target;
        auto& slot = slot_bindings_[key];
        slot.insert(slot.end(), callables.begin(), callables.end());
      }
    }
  }

  std::vector<std::string> resolve_call(const Node& caller, const CallSite& cs) {
    if (cs.chain.empty()) return {};
    const std::string& last = cs.chain.back();
    if (is_noise_call(last)) return {};
    if (cs.chain.size() > 1) {
      // Qualified: exact qname first, then the caller's enclosing namespaces
      // prefixed (innermost first), then whole-suffix over the name index.
      // Explicit qualification never fans out — `Base::f()` means Base::f.
      const std::string joined = join_chain(cs.chain);
      if (nodes_.count(joined) != 0) return {joined};
      std::string ns = caller.qname;
      std::size_t cut;
      while ((cut = ns.rfind("::")) != std::string::npos) {
        ns.resize(cut);
        const std::string q = ns + "::" + joined;
        if (nodes_.count(q) != 0) return {q};
      }
      std::vector<std::string> out;
      const auto it = by_name_.find(last);
      if (it != by_name_.end()) {
        const std::string suffix = "::" + joined;
        for (const std::string& q : it->second) {
          if (ends_with(q, suffix)) {
            out.push_back(q);
            if (out.size() > kMaxCandidates) return {};
          }
        }
      }
      return out;
    }
    // Member call with a known receiver type: hierarchy-aware. Anchor on the
    // declaring method (walking up bases), fan out to derived overrides when
    // the anchor is virtual.
    if (cs.member_access && !cs.recv_type.empty()) {
      const std::string cls = resolve_class(cs.recv_type, caller.qname);
      if (!cls.empty()) {
        std::set<std::string> seen;
        const std::string anchor = find_method(cls, last, seen);
        if (!anchor.empty()) {
          std::vector<std::string> out{anchor};
          const auto a = nodes_.find(anchor);
          if (a != nodes_.end() && a->second.is_virtual) fan_out(cls, last, out);
          return out;
        }
      }
    }
    // Unqualified: same class wins outright (with virtual fan-out — an
    // unqualified `f()` in a method dispatches dynamically on `this`)…
    if (!caller.class_qname.empty()) {
      const std::string q = caller.class_qname + "::" + last;
      const auto it = nodes_.find(q);
      if (it != nodes_.end()) {
        std::vector<std::string> out{q};
        if (it->second.is_virtual) fan_out(caller.class_qname, last, out);
        return out;
      }
    }
    if (!cs.member_access) {
      // …then the enclosing namespaces, innermost first…
      std::string ns = caller.qname;
      std::size_t cut;
      while ((cut = ns.rfind("::")) != std::string::npos) {
        ns.resize(cut);
        const std::string q = ns + "::" + last;
        if (nodes_.count(q) != 0) return {q};
      }
      if (nodes_.count(last) != 0) return {last};
    }
    // …then any symbol with the name, if the set is small enough to trust.
    const auto it = by_name_.find(last);
    if (it != by_name_.end() && it->second.size() <= kMaxCandidates) return it->second;
    return {};
  }

  /// Call-graph edges a call site contributes through callback slots: a call
  /// of a bound `std::function`/`InplaceFunction` field (or local) executes
  /// every callable ever bound into that slot.
  std::vector<std::string> callback_targets(const Node& caller, const CallSite& cs) {
    if (cs.chain.size() != 1) return {};
    const std::string& nm = cs.chain[0];
    std::vector<std::string> keys;
    if (cs.member_access && !cs.recv_type.empty()) {
      const std::string cq = resolve_class(cs.recv_type, caller.qname);
      if (!cq.empty()) {
        const std::string k = slot_key(cq, nm);
        if (!k.empty()) keys.push_back(k);
      }
    }
    if (!caller.class_qname.empty()) {
      const std::string k = slot_key(caller.class_qname, nm);
      if (!k.empty()) keys.push_back(k);
    }
    keys.push_back(caller.qname + "#" + nm);  // local callback variable
    std::vector<std::string> out;
    for (const std::string& k : keys) {
      const auto it = slot_bindings_.find(k);
      if (it == slot_bindings_.end()) continue;
      for (const std::string& c : it->second) {
        if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
      }
    }
    return out;
  }

  void add_edge(const std::string& from, const std::string& to,
                std::set<std::string>& seen) {
    if (to != from && seen.insert(from + "|" + to).second) {
      callees_[from].push_back(to);
      callers_[to].push_back(from);
    }
  }

  void resolve_calls_all() {
    std::set<std::string> seen;
    for (const auto& [q, n] : nodes_) {
      for (const OwnedCall& oc : n.calls) {
        const std::vector<std::string> resolved = resolve_call(n, oc.cs);
        for (const std::string& callee : resolved) {
          add_edge(q, callee, seen);
          HeldEdge he{q, callee, {}};
          for (const std::string& h : oc.cs.held) {
            he.held.insert(normalize_mutex(h, n.class_qname));
          }
          held_edges_.push_back(std::move(he));
        }
        for (const std::string& cb : callback_targets(n, oc.cs)) {
          add_edge(q, cb, seen);
        }
        // A callable passed as an argument runs inside the callee when the
        // callee takes a callback parameter (dispatch sites like
        // EventQueue::schedule): edge callee → callable.
        const auto ab = arg_binds_.find(q + "|" + join_chain(oc.cs.chain));
        if (ab != arg_binds_.end()) {
          for (const std::string& callee : resolved) {
            const auto cn = nodes_.find(callee);
            if (cn == nodes_.end() || !cn->second.has_callback_param) continue;
            for (const std::string& cb : ab->second) add_edge(callee, cb, seen);
          }
        }
      }
    }
  }

  void resolve_pending_uses() {
    for (auto& [q, n] : nodes_) {
      const auto c = classes_.find(n.class_qname);
      if (c == classes_.end()) continue;
      for (const OwnedUse& ou : n.uses) {
        const auto f = c->second.fields.find(ou.u.name);
        if (f == c->second.fields.end()) continue;
        const FieldInfo& fi = f->second;
        const std::string shown = n.class_qname + "::" + ou.u.name;
        if (fi.container == ContainerKind::kUnordered) {
          if (ou.u.range_for) {
            report("unordered-iter", ou.tu, ou.u.line,
                   "range-for over unordered container '" + shown +
                       "': hash order is not deterministic; copy into a sorted "
                       "container first");
          } else {
            report("unordered-iter", ou.tu, ou.u.line,
                   "iteration over unordered container '" + shown + "' via ." +
                       ou.u.via + "(): hash order is not deterministic");
          }
          if (!tus_[ou.tu].prep.allowed("unordered-iter", ou.u.line) &&
              !tus_[ou.tu].prep.allowed("det-taint", ou.u.line)) {
            n.taints.push_back(OwnedTaint{"iteration over unordered '" + shown +
                                          "' at " + tus_[ou.tu].file + ":" +
                                          std::to_string(ou.u.line)});
          }
        } else if (fi.container == ContainerKind::kOrdered && fi.pointer_key) {
          report("pointer-key", ou.tu, ou.u.line,
                 "iteration over pointer-keyed container '" + shown +
                     "': traversal follows allocation addresses; key by a stable "
                     "id instead");
        }
      }
    }
  }

  void resolve_pending_writes() {
    for (const auto& [q, n] : nodes_) {
      const auto c = classes_.find(n.class_qname);
      if (c == classes_.end()) continue;
      for (const OwnedWrite& ow : n.writes) {
        if (!ow.w.is_write) continue;  // reads feed the race analysis only
        const auto f = c->second.fields.find(ow.w.field);
        if (f == c->second.fields.end() || f->second.guard.empty()) continue;
        const std::string want = mutex_tail(f->second.guard);
        bool held = false;
        for (const std::string& h : ow.w.held) {
          if (mutex_tail(h) == want) {
            held = true;
            break;
          }
        }
        if (held) continue;
        report("lock-guard", ow.tu, ow.w.line,
               "write to '" + n.class_qname + "::" + ow.w.field + "' (GUARDED_BY(" +
                   f->second.guard + ")) without holding '" + f->second.guard +
                   "': take a MutexLock or annotate the function REQUIRES(" +
                   f->second.guard + ")");
      }
    }
  }

  /// Every mutex `q` may acquire, directly or through resolved callees.
  const std::set<std::string>& acquisition_closure(const std::string& q) {
    const auto memo = closure_memo_.find(q);
    if (memo != closure_memo_.end()) return memo->second;
    if (closure_busy_.count(q) != 0) {
      static const std::set<std::string> kEmpty;
      return kEmpty;  // recursion: the cycle's locks surface via its members
    }
    closure_busy_.insert(q);
    std::set<std::string> acc;
    const auto n = nodes_.find(q);
    if (n != nodes_.end()) {
      acc.insert(n->second.acquired.begin(), n->second.acquired.end());
      const auto ce = callees_.find(q);
      if (ce != callees_.end()) {
        for (const std::string& callee : ce->second) {
          const std::set<std::string>& sub = acquisition_closure(callee);
          acc.insert(sub.begin(), sub.end());
        }
      }
    }
    closure_busy_.erase(q);
    return closure_memo_[q] = std::move(acc);
  }

  void add_lock_edge(const std::string& from, const std::string& to, std::size_t tu,
                     int line) {
    if (from.empty() || to.empty()) return;
    auto& slot = lock_adj_[from];
    const auto it = slot.find(to);
    if (it == slot.end()) {
      slot.emplace(to, OwnedLockEdge{from, to, tu, line});
    }
  }

  void build_lock_graph() {
    for (const auto& [q, n] : nodes_) {
      for (const OwnedLockEdge& e : n.lock_edges) add_lock_edge(e.from, e.to, e.tu, e.line);
      // REQUIRES(m) means m is held on entry: every acquisition is m→a.
      for (const std::string& r : n.requires_m) {
        const std::string from = normalize_mutex(r, n.class_qname);
        for (const std::string& a : n.acquired) {
          if (a != from) add_lock_edge(from, a, n.def_tu, n.def_line);
        }
      }
      // Calls made while holding locks: held × callee acquisition closure.
      for (const OwnedCall& oc : n.calls) {
        if (oc.cs.held.empty()) continue;
        std::vector<std::string> callees = resolve_call(n, oc.cs);
        for (const std::string& callee : callees) {
          for (const std::string& a : acquisition_closure(callee)) {
            for (const std::string& h : oc.cs.held) {
              const std::string from = normalize_mutex(h, n.class_qname);
              if (a != from) add_lock_edge(from, a, oc.tu, oc.cs.line);
            }
          }
        }
      }
    }
  }

  [[nodiscard]] bool reaches(const std::string& from, const std::string& to) const {
    std::set<std::string> seen;
    std::deque<std::string> work{from};
    while (!work.empty()) {
      const std::string cur = work.front();
      work.pop_front();
      if (cur == to) return true;
      if (!seen.insert(cur).second) continue;
      const auto it = lock_adj_.find(cur);
      if (it == lock_adj_.end()) continue;
      for (const auto& [next, e] : it->second) work.push_back(next);
    }
    return false;
  }

  void report_lock_cycles() {
    std::set<std::string> reported;
    for (const auto& [from, edges] : lock_adj_) {
      for (const auto& [to, e] : edges) {
        if (from == to) {
          if (reported.insert(from + "|" + from).second) {
            report("lock-order", e.tu, e.line,
                   "mutex '" + from + "' acquired while already held: "
                   "self-deadlock on a non-recursive mutex");
          }
          continue;
        }
        if (!reaches(to, from)) continue;
        const std::string key = std::min(from, to) + "|" + std::max(from, to);
        if (!reported.insert(key).second) continue;
        std::string msg = "lock-order cycle: this site acquires '" + to +
                          "' while holding '" + from + "'";
        const auto back = lock_adj_.find(to);
        if (back != lock_adj_.end()) {
          const auto be = back->second.find(from);
          if (be != back->second.end()) {
            msg += ", but " + tus_[be->second.tu].file + ":" +
                   std::to_string(be->second.line) + " acquires '" + from +
                   "' while holding '" + to + "'";
          }
        }
        msg += "; pick one global acquisition order";
        report("lock-order", e.tu, e.line, std::move(msg));
      }
    }
  }

  struct TaintMark {
    std::string origin;
    std::vector<std::string> path;  ///< caller→…→source, callee names
  };
  std::map<std::string, TaintMark> tainted_;

  void taint_closure() {
    std::deque<std::string> work;
    for (const auto& [q, n] : nodes_) {
      if (n.taints.empty()) continue;
      tainted_[q] = TaintMark{n.taints.front().origin, {}};
      work.push_back(q);
    }
    while (!work.empty()) {
      const std::string cur = work.front();
      work.pop_front();
      const auto cs = callers_.find(cur);
      if (cs == callers_.end()) continue;
      const TaintMark mark = tainted_[cur];
      for (const std::string& caller : cs->second) {
        if (tainted_.count(caller) != 0) continue;
        TaintMark up;
        up.origin = mark.origin;
        up.path.reserve(mark.path.size() + 1);
        up.path.push_back(cur);
        up.path.insert(up.path.end(), mark.path.begin(), mark.path.end());
        tainted_[caller] = std::move(up);
        work.push_back(caller);
      }
    }
  }

  void report_det_taint() {
    for (const auto& [q, n] : nodes_) {
      if (!n.is_protected || !n.has_body) continue;
      const auto t = tainted_.find(q);
      if (t == tainted_.end()) continue;
      std::string msg = "deterministic-core function '" + q +
                        "' reaches a nondeterminism source (" + t->second.origin + ")";
      if (!t->second.path.empty()) {
        msg += " via ";
        const std::size_t shown = std::min<std::size_t>(t->second.path.size(), 4);
        for (std::size_t i = 0; i < shown; ++i) {
          if (i != 0) msg += " -> ";
          msg += t->second.path[i];
        }
        if (shown < t->second.path.size()) msg += " -> ...";
      }
      msg += "; derive it from the experiment config or HPCSLINT-ALLOW(det-taint) "
             "the definition";
      report("det-taint", n.def_tu, n.def_line, std::move(msg));
    }
  }

  std::map<std::string, TaintMark> impure_;

  /// Like taint_closure(), but seeded from host-environment sources (file and
  /// stream IO, sockets, sleeps, process calls) as well as nondeterminism
  /// sources — the dist-purity rule cares about both.
  void purity_closure() {
    std::deque<std::string> work;
    for (const auto& [q, n] : nodes_) {
      std::string origin;
      if (!n.io_taints.empty()) {
        origin = n.io_taints.front().origin;
      } else if (!n.taints.empty()) {
        origin = n.taints.front().origin;
      }
      if (origin.empty()) continue;
      impure_[q] = TaintMark{std::move(origin), {}};
      work.push_back(q);
    }
    while (!work.empty()) {
      const std::string cur = std::move(work.front());
      work.pop_front();
      const auto cs = callers_.find(cur);
      if (cs == callers_.end()) continue;
      const TaintMark mark = impure_[cur];
      for (const std::string& caller : cs->second) {
        if (impure_.count(caller) != 0) continue;
        TaintMark up;
        up.origin = mark.origin;
        up.path.reserve(mark.path.size() + 1);
        up.path.push_back(cur);
        up.path.insert(up.path.end(), mark.path.begin(), mark.path.end());
        impure_[caller] = std::move(up);
        work.push_back(caller);
      }
    }
  }

  /// Pure state-machine zone: the deterministic core, plus src/dist outside
  /// dist/host. HPCS_HOST-wrapped definitions are exempt by construction.
  [[nodiscard]] bool purity_subject(const Node& n) const {
    if (!n.has_body || n.in_host) return false;
    if (n.is_protected) return true;
    return is_pure_machine_file(tus_[n.def_tu].file);
  }

  void report_purity() {
    for (const auto& [q, n] : nodes_) {
      if (!purity_subject(n)) continue;
      const auto t = impure_.find(q);
      if (t == impure_.end()) continue;
      // det-taint already reports this node: one finding per defect.
      if (n.is_protected && tainted_.count(q) != 0) continue;
      std::string msg = "state-machine function '" + q +
                        "' reaches a host-environment source (" + t->second.origin +
                        ")";
      if (!t->second.path.empty()) {
        msg += " via ";
        const std::size_t shown = std::min<std::size_t>(t->second.path.size(), 4);
        for (std::size_t i = 0; i < shown; ++i) {
          if (i != 0) msg += " -> ";
          msg += t->second.path[i];
        }
        if (shown < t->second.path.size()) msg += " -> ...";
      }
      msg += "; drive it from now_ms and the config, move the call into an "
             "HPCS_HOST_BEGIN/END region, or HPCSLINT-ALLOW(dist-purity) the "
             "definition";
      report("dist-purity", n.def_tu, n.def_line, std::move(msg));
    }
  }

  // -------------------------------------------------------------------------
  // v4: protocol-state exhaustiveness + transition-graph extraction
  //
  // A *protocol enum* is any enum defined in the pure state-machine zone
  // (src/dist outside dist/host): FrameType, WorkerSession::Phase,
  // Coordinator::ShardState, FrameDecoder::Result. Every switch over one —
  // anywhere in the tree — must name every enumerator explicitly; a
  // `default:` arm does not count, because it is exactly how a new message
  // type silently falls into "ignore" when the protocol grows. Switches
  // whose own definition also lives in the pure zone additionally become
  // *machines* in the extracted `state × message → action` graph, which CI
  // diffs against tools/hpcslint/dist_protocol_spec.json (proto-drift).

  [[nodiscard]] bool is_protocol_enum(const std::string& qname) const {
    const auto it = enums_.find(qname);
    return it != enums_.end() && is_pure_machine_file(tus_[it->second.tu].file);
  }

  /// Enum a case label refers to: `FrameType::kHello` resolves the prefix
  /// chain; a bare `kHello` (unscoped enums) resolves when exactly one known
  /// enum declares that enumerator.
  std::string enum_of_label(const std::vector<std::string>& label,
                            const std::string& context) {
    if (label.empty()) return {};
    if (label.size() == 1) {
      std::string hit;
      for (const auto& [q, oe] : enums_) {
        const auto& en = oe.e.enumerators;
        if (std::find(en.begin(), en.end(), label[0]) != en.end()) {
          if (!hit.empty()) return {};  // ambiguous enumerator name
          hit = q;
        }
      }
      return hit;
    }
    std::vector<std::string> prefix(label.begin(), label.end() - 1);
    return resolve_enum(join_chain(prefix), context);
  }

  void protocol_analysis() {
    struct Cell {
      std::set<std::string> calls;
      std::set<std::string> states;
    };
    struct Machine {
      std::string handler, cls, enum_q, file;
      bool has_default = false;
      int line = 0;
      std::map<std::string, Cell> cells;  ///< enumerator → actions
    };
    std::vector<Machine> machines;

    for (const auto& [q, n] : nodes_) {
      for (const OwnedSwitch& os : n.switches) {
        // Subject enum: the first case label that resolves to a known enum.
        std::string subject;
        for (const SwitchCase& sc : os.sw.cases) {
          subject = enum_of_label(sc.label, q);
          if (!subject.empty()) break;
        }
        if (subject.empty() || !is_protocol_enum(subject)) continue;
        const EnumInfo& en = enums_.at(subject).e;

        std::set<std::string> covered;
        for (const SwitchCase& sc : os.sw.cases) {
          if (sc.label.empty() || enum_of_label(sc.label, q) != subject) continue;
          covered.insert(sc.label.back());
        }
        std::string missing;
        for (const std::string& e : en.enumerators) {
          if (covered.count(e) != 0) continue;
          if (!missing.empty()) missing += ", ";
          missing += e;
        }
        if (!missing.empty()) {
          report("proto-exhaustive", os.tu, os.sw.line,
                 "switch on protocol enum '" + subject + "' does not handle " +
                     missing + ": every protocol message/state must have an "
                     "explicit arm (a default: arm hides drift when the enum "
                     "grows)");
        }

        if (graph_ == nullptr || !is_pure_machine_file(tus_[os.tu].file)) continue;
        Machine m;
        m.handler = q;
        m.cls = n.class_qname;
        m.enum_q = subject;
        m.file = sarif_relative_path(tus_[os.tu].file);
        m.has_default = os.sw.has_default;
        m.line = os.sw.line;
        for (const SwitchCase& sc : os.sw.cases) {
          if (sc.label.empty() || enum_of_label(sc.label, q) != subject) continue;
          Cell& cell = m.cells[sc.label.back()];
          for (const std::string& c : sc.calls) {
            if (!is_noise_call(c) && !is_macro_like(c)) cell.calls.insert(c);
          }
          // A state transition is a reference to an enum nested inside the
          // machine's own class (Phase::kRunning inside WorkerSession) —
          // references to foreign enums (obs::kTp…) are not state changes.
          for (const std::string& s : sc.state_refs) {
            const std::size_t cut = s.find("::");
            if (cut == std::string::npos || m.cls.empty()) continue;
            if (enums_.count(m.cls + "::" + s.substr(0, cut)) != 0) {
              cell.states.insert(s);
            }
          }
        }
        machines.push_back(std::move(m));
      }
    }
    if (graph_ == nullptr) return;

    std::sort(machines.begin(), machines.end(),
              [](const Machine& a, const Machine& b) {
                if (a.handler != b.handler) return a.handler < b.handler;
                if (a.enum_q != b.enum_q) return a.enum_q < b.enum_q;
                return a.line < b.line;
              });

    // Hand-rolled pretty emitter: the artifact is checked in as the protocol
    // spec, so the layout must be stable and reviewable. No line numbers —
    // the spec should survive unrelated edits to the handler files.
    std::string& g = *graph_;
    g = "{\n  \"version\": 1,\n  \"machines\": [";
    const auto emit_list = [&g](const std::set<std::string>& xs) {
      bool first = true;
      for (const std::string& x : xs) {
        if (!first) g += ", ";
        first = false;
        g += "\"" + json::escape(x) + "\"";
      }
    };
    for (std::size_t i = 0; i < machines.size(); ++i) {
      const Machine& m = machines[i];
      g += i == 0 ? "\n" : ",\n";
      g += "    {\n";
      g += "      \"handler\": \"" + json::escape(m.handler) + "\",\n";
      g += "      \"class\": \"" + json::escape(m.cls) + "\",\n";
      g += "      \"enum\": \"" + json::escape(m.enum_q) + "\",\n";
      g += "      \"file\": \"" + json::escape(m.file) + "\",\n";
      g += std::string("      \"has_default\": ") +
           (m.has_default ? "true" : "false") + ",\n";
      g += "      \"transitions\": [";
      // Declaration order of the enum, not case order: reordering arms in
      // the handler is not protocol drift.
      const EnumInfo& en = enums_.at(m.enum_q).e;
      bool first_t = true;
      for (const std::string& e : en.enumerators) {
        const auto cell = m.cells.find(e);
        if (cell == m.cells.end()) continue;
        g += first_t ? "\n" : ",\n";
        first_t = false;
        g += "        {\"message\": \"" + json::escape(e) + "\", \"calls\": [";
        emit_list(cell->second.calls);
        g += "], \"states\": [";
        emit_list(cell->second.states);
        g += "]}";
      }
      g += first_t ? "]\n" : "\n      ]\n";
      g += "    }";
    }
    g += machines.empty() ? "]\n}\n" : "\n  ]\n}\n";
  }

  // -------------------------------------------------------------------------
  // v4: thread-root inference + lockset race detection
  //
  // Roots: callables submitted to an exp::ThreadPool (`pool.submit(λ)`),
  // bodies of `std::thread` constructions (direct-init or landing in a
  // thread container), and HPCS_HOST service loops under src/dist/host.
  // Everything reachable from a root over the resolved call graph runs in
  // that root's thread context; code reachable from no root runs in the
  // main/spawning context. A field touched from ≥2 distinct contexts is
  // *shared*. Entry locksets propagate interprocedurally: a function's
  // entry set is its REQUIRES plus the intersection over every call site
  // of (locks held at the site ∪ caller's entry set) — roots start empty
  // (a spawned body never inherits its spawner's locks).
  //
  // Reporting needs evidence, not just sharing — classes synchronized
  // externally (Coordinator, driven by one pump loop) stay quiet:
  //  * inconsistent lockset: some accesses hold a mutex, this one does not;
  //  * all accesses bare, but the class owns a mutex member (it opted into
  //    internal locking and missed a spot).
  // GUARDED_BY'd fields are the lock-guard rule's jurisdiction; sync
  // primitives themselves are exempt.

  std::set<std::string> race_roots_;
  std::map<std::string, std::set<std::string>> root_ctx_;  ///< node → roots
  std::map<std::string, std::set<std::string>> entry_held_;
  std::set<std::string> entry_top_;  ///< still ⊤ in the fixpoint

  void collect_race_roots() {
    for (const TuIndex& tu : tus_) {
      for (const CallbackBind& b : tu.binds) {
        bool spawn = b.spawns_thread;
        const std::string tail = chain_tail(b.target);
        if (!spawn && b.kind == CallbackBind::Kind::kArg && tail == "submit") {
          spawn = true;  // exp::ThreadPool::submit — the pool runs it
        }
        if (!spawn && b.kind == CallbackBind::Kind::kArg && !b.recv_name.empty() &&
            (tail == "emplace_back" || tail == "push_back")) {
          // `threads_.emplace_back(λ)` in an out-of-class method body: the
          // receiver's thread-ness lives in the class merged from the header.
          const auto c = classes_.find(b.encl_class);
          if (c != classes_.end()) {
            const auto f = c->second.fields.find(b.recv_name);
            spawn = f != c->second.fields.end() && f->second.is_thread;
          }
        }
        if (!spawn) continue;
        for (const std::string& q : resolve_callable(b)) race_roots_.insert(q);
      }
    }
    for (const auto& [q, n] : nodes_) {
      if (n.has_body && n.in_host && in_dist_host_file(tus_[n.def_tu].file)) {
        race_roots_.insert(q);
      }
    }
  }

  void propagate_root_contexts() {
    for (const std::string& r : race_roots_) {
      std::deque<std::string> work{r};
      std::set<std::string> seen;
      while (!work.empty()) {
        const std::string cur = std::move(work.front());
        work.pop_front();
        if (!seen.insert(cur).second) continue;
        root_ctx_[cur].insert(r);
        const auto it = callees_.find(cur);
        if (it == callees_.end()) continue;
        for (const std::string& next : it->second) work.push_back(next);
      }
    }
  }

  [[nodiscard]] std::set<std::string> requires_norm(const Node& n) const {
    std::set<std::string> out;
    for (const std::string& r : n.requires_m) {
      // normalize_mutex is non-const only through classes_ lookup; inline it.
      const std::string tail = mutex_tail(r);
      const auto c = classes_.find(n.class_qname);
      if (c != classes_.end() && c->second.fields.count(tail) != 0) {
        out.insert(n.class_qname + "::" + tail);
      } else {
        out.insert(tail);
      }
    }
    return out;
  }

  /// Optimistic (⊤-initialized) shrinking fixpoint over held_edges_.
  void entry_lockset_fixpoint() {
    std::map<std::string, std::vector<const HeldEdge*>> incoming;
    for (const HeldEdge& e : held_edges_) incoming[e.callee].push_back(&e);
    for (const auto& [q, n] : nodes_) {
      if (race_roots_.count(q) != 0 || incoming.count(q) == 0) {
        entry_held_[q] = requires_norm(n);  // spawned/external entry: REQUIRES only
      } else {
        entry_top_.insert(q);
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [q, n] : nodes_) {
        if (race_roots_.count(q) != 0) continue;
        const auto in = incoming.find(q);
        if (in == incoming.end()) continue;
        std::set<std::string> inter;
        bool any_known = false;
        for (const HeldEdge* e : in->second) {
          if (entry_top_.count(e->caller) != 0) continue;  // ⊤ caller: skip
          std::set<std::string> site = e->held;
          const auto ce = entry_held_.find(e->caller);
          if (ce != entry_held_.end()) {
            site.insert(ce->second.begin(), ce->second.end());
          }
          if (!any_known) {
            inter = std::move(site);
            any_known = true;
          } else {
            std::set<std::string> keep;
            for (const std::string& m : inter) {
              if (site.count(m) != 0) keep.insert(m);
            }
            inter = std::move(keep);
          }
        }
        if (!any_known) continue;  // all callers still ⊤
        std::set<std::string> cand = requires_norm(n);
        cand.insert(inter.begin(), inter.end());
        const bool was_top = entry_top_.erase(q) != 0;
        auto& cur = entry_held_[q];
        if (was_top || cand != cur) {
          cur = std::move(cand);
          changed = true;
        }
      }
    }
    // Call-graph cycles unreachable from any resolved context stay ⊤:
    // fall back to REQUIRES only (conservative toward reporting, but such
    // nodes are also unreachable from roots, so they carry no contexts).
    for (const std::string& q : entry_top_) {
      const auto n = nodes_.find(q);
      if (n != nodes_.end()) entry_held_[q] = requires_norm(n->second);
    }
  }

  void race_analysis() {
    collect_race_roots();
    if (race_roots_.empty()) return;  // no concurrency, no races
    propagate_root_contexts();
    entry_lockset_fixpoint();

    struct Access {
      std::string file;
      int line = 0;
      std::size_t tu = 0;
      std::set<std::string> held;      ///< effective: site locks ∪ entry set
      std::set<std::string> contexts;  ///< root qnames, or the main context
    };
    // (class, field) → accesses, gathered over the sorted node map.
    std::map<std::string, std::map<std::string, std::vector<Access>>> by_field;
    for (const auto& [q, n] : nodes_) {
      if (n.class_qname.empty()) continue;
      const auto c = classes_.find(n.class_qname);
      if (c == classes_.end()) continue;
      for (const OwnedWrite& ow : n.writes) {
        const auto f = c->second.fields.find(ow.w.field);
        if (f == c->second.fields.end()) continue;
        if (!f->second.guard.empty() || is_sync_primitive_field(f->second)) continue;
        Access a;
        a.file = tus_[ow.tu].file;
        a.line = ow.w.line;
        a.tu = ow.tu;
        for (const std::string& h : ow.w.held) {
          a.held.insert(normalize_mutex(h, n.class_qname));
        }
        const auto eh = entry_held_.find(q);
        if (eh != entry_held_.end()) {
          a.held.insert(eh->second.begin(), eh->second.end());
        }
        const auto ctx = root_ctx_.find(q);
        if (ctx != root_ctx_.end() && !ctx->second.empty()) {
          a.contexts = ctx->second;
        } else {
          a.contexts.insert("<main>");
        }
        by_field[n.class_qname][ow.w.field].push_back(std::move(a));
      }
    }

    for (const auto& [cls, fields] : by_field) {
      for (const auto& [field, accesses] : fields) {
        std::set<std::string> contexts;
        for (const Access& a : accesses) {
          contexts.insert(a.contexts.begin(), a.contexts.end());
        }
        if (contexts.size() < 2) continue;  // single thread context: no race
        std::set<std::string> common = accesses.front().held;
        for (const Access& a : accesses) {
          std::set<std::string> keep;
          for (const std::string& m : common) {
            if (a.held.count(m) != 0) keep.insert(m);
          }
          common = std::move(keep);
        }
        if (!common.empty()) continue;  // consistently guarded

        // Most-held mutex = the annotation suggestion; lexicographic min on
        // ties keeps the message deterministic.
        std::map<std::string, std::size_t> votes;
        for (const Access& a : accesses) {
          for (const std::string& m : a.held) ++votes[m];
        }
        std::string best;
        std::size_t best_n = 0;
        for (const auto& [m, k] : votes) {
          if (k > best_n) {
            best = m;
            best_n = k;
          }
        }
        const std::string shown = cls + "::" + field;
        if (best_n > 0) {
          // Inconsistent lockset: report the first bare access (file/line
          // order) that misses the majority mutex.
          const Access* bad = nullptr;
          for (const Access& a : accesses) {
            if (a.held.count(best) != 0) continue;
            if (bad == nullptr || a.file < bad->file ||
                (a.file == bad->file && a.line < bad->line)) {
              bad = &a;
            }
          }
          if (bad == nullptr) continue;
          report("shared-race", bad->tu, bad->line,
                 "shared field '" + shown + "' (reached from " +
                     std::to_string(contexts.size()) +
                     " thread contexts) has an inconsistent lockset: " +
                     std::to_string(best_n) + " of " +
                     std::to_string(accesses.size()) + " accesses hold '" +
                     best + "' but this one does not; annotate the field "
                     "GUARDED_BY(" + mutex_tail(best) + ") and guard every "
                     "access");
        } else {
          // Every access is bare: only a defect when the class owns a mutex.
          const auto c = classes_.find(cls);
          if (c == classes_.end()) continue;
          std::string mu;
          for (const auto& [fname, fi] : c->second.fields) {
            if (is_mutex_field(fi)) {
              mu = fname;
              break;
            }
          }
          if (mu.empty()) continue;  // externally synchronized by design
          const Access* first = &accesses.front();
          for (const Access& a : accesses) {
            if (a.file < first->file ||
                (a.file == first->file && a.line < first->line)) {
              first = &a;
            }
          }
          report("shared-race", first->tu, first->line,
                 "shared field '" + shown + "' is reached from " +
                     std::to_string(contexts.size()) +
                     " thread contexts with no lock held at any access, but '" +
                     cls + "' owns mutex '" + mu + "'; annotate the field "
                     "GUARDED_BY(" + mu + ") and take a MutexLock around each "
                     "access");
        }
      }
    }
  }
};

/// Structural JSON equality (order-sensitive for arrays, as emitted).
bool json_same(const json::Value& a, const json::Value& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case json::Value::Kind::kNull: return true;
    case json::Value::Kind::kBool: return a.boolean == b.boolean;
    case json::Value::Kind::kNumber: return a.number == b.number;
    case json::Value::Kind::kString: return a.str == b.str;
    case json::Value::Kind::kArray:
      if (a.arr.size() != b.arr.size()) return false;
      for (std::size_t i = 0; i < a.arr.size(); ++i) {
        if (!json_same(a.arr[i], b.arr[i])) return false;
      }
      return true;
    case json::Value::Kind::kObject:
      if (a.obj.size() != b.obj.size()) return false;
      for (std::size_t i = 0; i < a.obj.size(); ++i) {
        if (a.obj[i].first != b.obj[i].first ||
            !json_same(a.obj[i].second, b.obj[i].second)) {
          return false;
        }
      }
      return true;
  }
  return false;
}

std::string str_of(const json::Value* v) { return v != nullptr && v->is_string() ? v->str : std::string(); }

std::string render_name_list(const json::Value* v) {
  std::string out = "[";
  if (v != nullptr && v->is_array()) {
    for (std::size_t i = 0; i < v->arr.size(); ++i) {
      if (i != 0) out += ", ";
      out += v->arr[i].str;
    }
  }
  return out + "]";
}

}  // namespace

void link_program(std::vector<TuIndex>& tus, std::vector<Finding>& out,
                  std::string* protocol_graph) {
  Linker(tus, out, protocol_graph).run();
}

std::vector<Finding> proto_drift_findings(const std::string& extracted_graph,
                                          std::string_view spec_text,
                                          const std::string& spec_label) {
  std::vector<Finding> out;
  json::Value ext, spec;
  std::string err;
  if (!json::parse(extracted_graph, ext, err)) {
    out.push_back(Finding{spec_label, 0, "proto-drift",
                          "internal error: extracted transition graph is not "
                          "valid JSON: " + err});
    return out;
  }
  if (!json::parse(spec_text, spec, err)) {
    out.push_back(Finding{spec_label, 0, "proto-drift",
                          "cannot parse protocol spec: " + err +
                              "; regenerate it with hpcslint --emit-proto"});
    return out;
  }
  const auto machines_of = [](const json::Value& root) {
    std::map<std::string, const json::Value*> out_m;
    const json::Value* ms = root.get("machines");
    if (ms != nullptr && ms->is_array()) {
      for (const json::Value& m : ms->arr) {
        const std::string h = str_of(m.get("handler"));
        if (!h.empty()) out_m.emplace(h, &m);
      }
    }
    return out_m;
  };
  const std::map<std::string, const json::Value*> em = machines_of(ext);
  const std::map<std::string, const json::Value*> sm = machines_of(spec);

  for (const auto& [h, m] : sm) {
    if (em.count(h) != 0) continue;
    out.push_back(Finding{
        spec_label, 1, "proto-drift",
        "protocol machine '" + h + "' is in the spec but was not extracted "
        "from the tree; if the handler was removed deliberately, regenerate "
        "the spec with hpcslint --emit-proto"});
  }
  for (const auto& [h, m] : em) {
    const std::string file = str_of(m->get("file"));
    const auto s = sm.find(h);
    if (s == sm.end()) {
      out.push_back(Finding{
          file.empty() ? spec_label : file, 1, "proto-drift",
          "protocol machine '" + h + "' (switch over '" +
              str_of(m->get("enum")) + "') is not in the spec; review the new "
              "state machine and regenerate the spec with hpcslint "
              "--emit-proto"});
      continue;
    }
    if (json_same(*m, *s->second)) continue;

    // Same machine, different shape: name the first concrete divergence so
    // the finding reads as a protocol change, not a JSON diff.
    std::vector<std::string> details;
    for (const char* key : {"class", "enum", "file"}) {
      const std::string a = str_of(m->get(key));
      const std::string b = str_of(s->second->get(key));
      if (a != b) {
        details.push_back(std::string(key) + " changed: '" + b + "' -> '" + a + "'");
      }
    }
    const json::Value* ed = m->get("has_default");
    const json::Value* sd = s->second->get("has_default");
    if (ed != nullptr && sd != nullptr && ed->boolean != sd->boolean) {
      details.push_back(std::string("default arm ") +
                        (ed->boolean ? "added" : "removed"));
    }
    const auto cells_of = [](const json::Value* machine) {
      std::map<std::string, const json::Value*> cells;
      const json::Value* ts = machine->get("transitions");
      if (ts != nullptr && ts->is_array()) {
        for (const json::Value& t : ts->arr) {
          const std::string msg = str_of(t.get("message"));
          if (!msg.empty()) cells.emplace(msg, &t);
        }
      }
      return cells;
    };
    const std::map<std::string, const json::Value*> ec = cells_of(m);
    const std::map<std::string, const json::Value*> sc = cells_of(s->second);
    for (const auto& [msg, t] : sc) {
      if (ec.count(msg) == 0) details.push_back("no longer handles '" + msg + "'");
    }
    for (const auto& [msg, t] : ec) {
      const auto st = sc.find(msg);
      if (st == sc.end()) {
        details.push_back("now handles '" + msg + "'");
        continue;
      }
      if (json_same(*t, *st->second)) continue;
      const json::Value* eca = t->get("calls");
      const json::Value* sca = st->second->get("calls");
      if (eca != nullptr && sca != nullptr && !json_same(*eca, *sca)) {
        details.push_back("'" + msg + "' actions changed: " +
                          render_name_list(sca) + " -> " + render_name_list(eca));
      }
      const json::Value* est = t->get("states");
      const json::Value* sst = st->second->get("states");
      if (est != nullptr && sst != nullptr && !json_same(*est, *sst)) {
        details.push_back("'" + msg + "' state transitions changed: " +
                          render_name_list(sst) + " -> " + render_name_list(est));
      }
    }
    if (details.empty()) details.push_back("transition graph differs from the spec");
    std::string msg = "protocol drift in machine '" + h + "': ";
    const std::size_t shown = std::min<std::size_t>(details.size(), 3);
    for (std::size_t i = 0; i < shown; ++i) {
      if (i != 0) msg += "; ";
      msg += details[i];
    }
    if (shown < details.size()) {
      msg += "; and " + std::to_string(details.size() - shown) + " more change(s)";
    }
    msg += " — update the handler or regenerate the spec with hpcslint "
           "--emit-proto";
    out.push_back(Finding{file.empty() ? spec_label : file, 1, "proto-drift",
                          std::move(msg)});
  }
  return out;
}

}  // namespace hpcslint
