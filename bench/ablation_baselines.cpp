// Ablation: HPCSched versus the related-work solution groups of §II-A.
//   data distribution      — the application repartitions its own load
//                            (METIS / dynamic mesh repartitioning style)
//   resource distribution  — HPCSched steering hardware priorities (ours)
// plus the combination. The paper's qualitative claims: the app-level fix
// works but costs repartition time and programmer effort; the scheduler fix
// is transparent, finer-grained and composes with it.

#include <cstdio>

#include "analysis/paper_experiments.h"
#include "analysis/sweep.h"
#include "bench_json.h"
#include "exp/parallel_runner.h"
#include "workloads/repartition.h"

using namespace hpcs;
using analysis::SchedMode;

int main(int argc, char** argv) {
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  std::printf("=== Solution groups of the related work (paper II-A) ===\n\n");

  // The same intrinsic 4:1 imbalance everywhere.
  wl::MetBenchConfig plain;
  plain.iterations = 40;
  wl::RepartitionConfig repart;
  repart.iterations = 40;

  wl::RepartitionConfig no_repart = repart;
  no_repart.period = 0;

  auto base_cfg = analysis::paper_defaults(SchedMode::kBaselineCfs, 1, false);
  auto hpc_cfg = analysis::paper_defaults(SchedMode::kUniform, 1, false);

  std::vector<analysis::SweepPoint> points;
  points.push_back(analysis::SweepPoint{"imbalanced baseline", base_cfg,
                                        [plain] { return wl::make_metbench(plain); }});
  points.push_back(analysis::SweepPoint{"data redistribution", base_cfg,
                                        [repart] { return wl::make_repartition(repart); }});
  points.push_back(analysis::SweepPoint{"HPCSched (ours)", hpc_cfg,
                                        [plain] { return wl::make_metbench(plain); }});
  points.push_back(analysis::SweepPoint{"both combined", hpc_cfg,
                                        [repart] { return wl::make_repartition(repart); }});

  const auto rows = analysis::run_sweep(points, jobs);
  std::printf("%s\n", analysis::render_sweep(rows).c_str());

  std::printf(
      "data redistribution converges over several periods and pays the repartition\n"
      "cost; HPCSched reacts within one iteration, needs no source changes, and when\n"
      "the application repartitions anyway, the scheduler covers the residual\n"
      "imbalance between periods — the granularity argument of II-A.\n\n");

  // Repartition-period sweep: the app-level knob analogous to our heuristics.
  std::printf("--- repartition period sweep (data redistribution only) ---\n");
  std::vector<analysis::SweepPoint> periods;
  periods.push_back(analysis::SweepPoint{"baseline", base_cfg,
                                         [plain] { return wl::make_metbench(plain); }});
  for (const int p : {2, 5, 10, 20}) {
    wl::RepartitionConfig c = repart;
    c.period = p;
    periods.push_back(analysis::SweepPoint{"period " + std::to_string(p), base_cfg,
                                           [c] { return wl::make_repartition(c); }});
  }
  const auto period_rows = analysis::run_sweep(periods, jobs);
  std::printf("%s", analysis::render_sweep(period_rows).c_str());

  auto rows_json = [](const std::vector<analysis::SweepRow>& rs) {
    std::vector<bench::JsonObject> out;
    for (const analysis::SweepRow& r : rs) {
      bench::JsonObject e;
      e.field("label", r.label)
          .field("exec_s", r.exec_s)
          .field("mean_imbalance", r.mean_imbalance)
          .field("improvement_vs_first_pct", r.improvement_vs_first_pct);
      out.push_back(std::move(e));
    }
    return out;
  };
  bench::JsonObject root;
  root.field("bench", "ablation_baselines").field("jobs", jobs);
  root.array("solution_groups", rows_json(rows));
  root.array("repartition_period_sweep", rows_json(period_rows));
  bench::write_json_file("BENCH_ablation_baselines.json", root);
  return 0;
}
