// OS-noise daemon tests: per-CPU spawning and pinning, duty-cycle sanity,
// jitter determinism, and interference characteristics (CFS tasks suffer,
// HPC tasks are shielded).

#include <gtest/gtest.h>

#include "hpcsched/hpcsched.h"
#include "kernel/noise.h"
#include "test_util.h"

namespace hpcs::test {
namespace {

using kern::NoiseConfig;
using kern::Policy;

TEST(Noise, SpawnsOnePinnedDaemonPerCpu) {
  KernelFixture f;
  f.k().start();
  Rng rng(1);
  const auto daemons = kern::spawn_noise_daemons(f.k(), NoiseConfig{}, rng);
  ASSERT_EQ(daemons.size(), 4u);
  for (CpuId cpu = 0; cpu < 4; ++cpu) {
    EXPECT_EQ(daemons[static_cast<std::size_t>(cpu)]->pinned_cpu, cpu);
    EXPECT_EQ(daemons[static_cast<std::size_t>(cpu)]->cpu, cpu);
  }
}

TEST(Noise, DutyCycleMatchesConfig) {
  KernelFixture f;
  f.k().start();
  NoiseConfig cfg;
  cfg.period = Duration::milliseconds(10);
  cfg.burst = Duration::microseconds(50);
  Rng rng(2);
  const auto daemons = kern::spawn_noise_daemons(f.k(), cfg, rng);
  f.run_until(Duration::seconds(5.0));
  for (auto* d : daemons) {
    f.k().flush_account(*d);
    // ~50us of work (at SMT speed ~0.65 -> ~77us CPU) every ~10ms: a duty of
    // roughly 0.5-1%.
    const double duty = d->t_run / (d->t_run + d->t_ready + d->t_sleep);
    EXPECT_GT(duty, 0.002) << d->name();
    EXPECT_LT(duty, 0.02) << d->name();
    EXPECT_GT(d->nr_wakeups, 300) << d->name();  // ~500 periods in 5s
  }
}

TEST(Noise, DeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    KernelFixture f;
    f.k().start();
    NoiseConfig cfg;
    Rng rng(seed);
    auto daemons = kern::spawn_noise_daemons(f.k(), cfg, rng);
    f.run_until(Duration::seconds(1.0));
    f.k().flush_account(*daemons[0]);
    return daemons[0]->t_run.ns();
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(Noise, StealsFromCfsButNotFromHpc) {
  // Identical compute tasks, one SCHED_NORMAL and one SCHED_HPC, each sharing
  // its CPU with a noise daemon: the HPC task must finish first because the
  // daemon cannot preempt it.
  sim::Simulator s;
  kern::Kernel k(s, {});
  hpc::install_hpcsched(k, {});
  k.start();
  NoiseConfig heavy;
  heavy.period = Duration::milliseconds(2);
  heavy.burst = Duration::microseconds(500);  // ~25% duty: exaggerated noise
  Rng rng(3);
  kern::spawn_noise_daemons(k, heavy, rng);

  auto& cfs_task = k.create_task("cfs", std::make_unique<ScriptBody>(std::vector<Act>{
                                             Act::compute(200.0e6)}),
                                 Policy::kNormal, 0);
  auto& hpc_task = k.create_task("hpc", std::make_unique<ScriptBody>(std::vector<Act>{
                                             Act::compute(200.0e6)}),
                                 Policy::kHpcRr, 2);
  k.sched_setaffinity(cfs_task, 0);
  k.sched_setaffinity(hpc_task, 2);
  k.start_task(cfs_task);
  k.start_task(hpc_task);
  s.run(SimTime(std::int64_t{5} * 1000000000));
  ASSERT_TRUE(cfs_task.exited());
  ASSERT_TRUE(hpc_task.exited());
  const double cfs_ms = (cfs_task.exit_time - cfs_task.created).ms();
  const double hpc_ms = (hpc_task.exit_time - hpc_task.created).ms();
  EXPECT_LT(hpc_ms, cfs_ms * 0.90) << "HPC class must shield against noise";
  // The CFS task lost roughly the daemon's share on top.
  EXPECT_GT(cfs_task.t_ready, Duration::milliseconds(10));
  EXPECT_LT(hpc_task.t_ready, Duration::milliseconds(1));
}

}  // namespace
}  // namespace hpcs::test
