// Seeded lockset race, TU 2 of 2: report() reads hits_ with no lock while
// the pool lambda in lockset_pos.h writes it under mu_ — an inconsistent
// lockset on a field reached from two thread contexts. hpcslint must flag
// THIS access (the bare one) with rule shared-race and suggest
// GUARDED_BY(mu_).
#include "lockset_pos.h"

namespace fx {

void Counter::report() {
  long seen = hits_;
  (void)seen;
}

}  // namespace fx
