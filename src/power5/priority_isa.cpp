#include "power5/priority_isa.h"

namespace hpcs::p5 {

IsaResult PriorityIsa::issue_or_nop(CpuId cpu, int reg, Privilege level) {
  const auto prio = prio_for_or_nop(reg);
  if (!prio) return IsaResult::kBadEncoding;
  return set_priority(cpu, *prio, level);
}

IsaResult PriorityIsa::set_priority(CpuId cpu, HwPrio p, Privilege level) {
  if (!can_set(level, p)) {
    ++rejected_;
    return IsaResult::kNoPermission;
  }
  chip_->set_cpu_priority(cpu, p);
  ++writes_;
  return IsaResult::kOk;
}

}  // namespace hpcs::p5
