#pragma once
// Parameter-sweep harness: run a labelled list of experiment points and
// collect comparable rows (exec time, utilization spread, imbalance,
// scheduler counters), with CSV export — the bulk-experimentation layer the
// ablation benches and downstream studies build on.

#include <ostream>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "exp/pure_function.h"

namespace hpcs::analysis {

struct SweepPoint {
  std::string label;
  ExperimentConfig config;
  /// Factory (sweeps reuse workloads across points; programs are one-shot).
  /// PureFunction enforces the engine's purity contract at compile time:
  /// run_sweep may invoke this from any worker thread, so stateful factories
  /// (`mutable` lambdas, functors with a non-const call operator) are
  /// rejected where the point is built (see src/exp/pure_function.h).
  exp::PureFunction<std::vector<std::unique_ptr<mpi::RankProgram>>()> workload;
};

struct SweepRow {
  std::string label;
  double exec_s = 0.0;
  double min_util = 0.0;
  double max_util = 0.0;
  double mean_imbalance = 0.0;
  std::int64_t prio_changes = 0;
  std::int64_t ctx_switches = 0;
  double avg_wakeup_latency_us = 0.0;
  /// Improvement over the sweep's first row (the conventional baseline).
  double improvement_vs_first_pct = 0.0;
};

/// Run every point and derive the rows, fanning independent points across
/// `jobs` workers (exp::ParallelRunner). Results are committed in point
/// order and the improvement-vs-first column is derived after collection,
/// so the rows are bit-identical for every jobs value; jobs = 1 (the
/// default) is the plain serial loop. jobs = 0 resolves HPCS_JOBS /
/// hardware_concurrency (exp::default_jobs()).
[[nodiscard]] std::vector<SweepRow> run_sweep(const std::vector<SweepPoint>& points,
                                              unsigned jobs = 1);

/// label,exec_s,min_util,max_util,mean_imbalance,prio_changes,ctx_switches,
/// avg_wakeup_latency_us,improvement_vs_first_pct
void write_sweep_csv(std::ostream& os, const std::vector<SweepRow>& rows);

/// Fixed-width text table of the rows.
[[nodiscard]] std::string render_sweep(const std::vector<SweepRow>& rows);

}  // namespace hpcs::analysis
