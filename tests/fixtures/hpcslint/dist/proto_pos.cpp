// Protocol-state exhaustiveness violation: MsgType is defined in a dist/
// zone file, so it is a protocol enum and every switch over it must name
// every enumerator. handle() misses kStop — hpcslint must flag the switch
// with rule proto-exhaustive, and the default: arm must NOT excuse the gap
// (a default is exactly how a new message silently falls into "ignore").
namespace fx::dist {

enum class MsgType : unsigned char { kPing, kPong, kStop };

class Session {
 public:
  int handle(MsgType m) {
    switch (m) {
      case MsgType::kPing: return 1;
      case MsgType::kPong: return 2;
      default: return 0;
    }
  }
};

}  // namespace fx::dist
