#include "workloads/metbench.h"

#include "common/check.h"

namespace hpcs::wl {
namespace {

/// Compute -> barrier -> mark, `iterations` times, then exit.
class MetBenchWorker final : public mpi::RankProgram {
 public:
  MetBenchWorker(double load, int iterations) : load_(load), iterations_(iterations) {}

  mpi::MpiOp next() override {
    if (iter_ >= iterations_) return mpi::OpExit{};
    switch (phase_) {
      case 0:
        phase_ = 1;
        return mpi::OpCompute{load_};
      case 1:
        phase_ = 2;
        return mpi::OpBarrier{};
      default:
        phase_ = 0;
        ++iter_;
        return mpi::OpMarkIteration{};
    }
  }

 protected:
  double load_;

 private:
  int iterations_;
  int iter_ = 0;
  int phase_ = 0;
};

}  // namespace

ProgramSet make_metbench(const MetBenchConfig& cfg) {
  HPCS_CHECK_MSG(!cfg.loads.empty(), "MetBench needs at least one worker load");
  ProgramSet out;
  for (const double load : cfg.loads) {
    HPCS_CHECK_MSG(load > 0.0, "worker loads must be positive");
    out.push_back(std::make_unique<MetBenchWorker>(load, cfg.iterations));
  }
  if (cfg.include_master) {
    out.push_back(std::make_unique<MetBenchWorker>(cfg.master_load, cfg.iterations));
  }
  return out;
}

}  // namespace hpcs::wl
