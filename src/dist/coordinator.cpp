#include "dist/coordinator.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "exp/parallel_runner.h"

namespace hpcs::dist {

namespace {
constexpr const char* kTag = "dist";

/// Tracepoint timestamps: the fabric's only clock is now_ms, scaled to the
/// nanosecond domain TraceEntry uses. Deterministic whenever now_ms is (the
/// loopback tests drive an explicit clock).
[[nodiscard]] SimTime ms_time(std::int64_t now_ms) {
  return SimTime(now_ms * 1'000'000);
}
}

Coordinator::Coordinator(CoordinatorConfig cfg, std::size_t count, TaskFn local_fn)
    : cfg_(std::move(cfg)), local_fn_(std::move(local_fn)) {
  HPCS_CHECK_MSG(local_fn_ != nullptr, "Coordinator needs a local task function");
  if (cfg_.shard_size == 0) cfg_.shard_size = 1;
  rows_.resize(count);
  row_present_.assign(count, 0);
  for (std::size_t begin = 0; begin < count; begin += cfg_.shard_size) {
    Shard s;
    const std::size_t end = std::min(count, begin + cfg_.shard_size);
    for (std::size_t i = begin; i < end; ++i) {
      s.indices.push_back(static_cast<std::uint32_t>(i));
    }
    shards_.push_back(std::move(s));
  }
  stats_.shards_total = static_cast<std::int64_t>(shards_.size());
}

void Coordinator::adopt(std::unique_ptr<Connection> conn, std::int64_t now_ms) {
  WorkerPeer p;
  p.conn = std::move(conn);
  p.last_seen_ms = now_ms;
  workers_.push_back(std::move(p));
}

int Coordinator::workers_alive() const {
  int alive = 0;
  for (const WorkerPeer& w : workers_) {
    if (!w.dead) ++alive;
  }
  return alive;
}

std::int64_t Coordinator::backoff_ms(int attempts) const {
  std::int64_t d = cfg_.retry_backoff_base_ms;
  for (int i = 1; i < attempts && d < cfg_.retry_backoff_cap_ms; ++i) d *= 2;
  return std::min(d, cfg_.retry_backoff_cap_ms);
}

void Coordinator::step(std::int64_t now_ms) {
  if (start_ms_ < 0) start_ms_ = now_ms;

  for (std::size_t wi = 0; wi < workers_.size(); ++wi) pump_peer(wi, now_ms);

  // Liveness: silence past the timeout means the worker (or its link) is
  // gone; its shards go back in the queue.
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    WorkerPeer& w = workers_[wi];
    if (!w.dead && now_ms - w.last_seen_ms > cfg_.liveness_timeout_ms) {
      kill_peer(wi, "liveness timeout", now_ms);
    }
  }

  // Shard steal: assigned but no row progress for too long — requeue for
  // someone else while the slow owner grinds on (its late rows are stale).
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    Shard& s = shards_[si];
    if (s.state == ShardState::kAssigned &&
        now_ms - s.progress_ms > cfg_.shard_timeout_ms) {
      requeue_shard(si, now_ms, /*stolen=*/true);
    }
  }

  // Shards that exhausted their remote attempts run on the coordinator —
  // the per-shard escape hatch that guarantees termination. In manual_local
  // mode they wait for run_one_local() instead, so one job's stragglers
  // cannot block a multi-job service loop.
  if (!cfg_.manual_local) {
    for (std::size_t si = 0; si < shards_.size(); ++si) {
      Shard& s = shards_[si];
      if (s.state == ShardState::kPending && s.attempts >= cfg_.max_shard_attempts) {
        run_shard_locally(si, now_ms);
      }
    }
  }

  assign_ready_shards(now_ms);

  // Graceful degradation: out of workers entirely. Either nobody connected
  // within the window, or everyone who did is dead.
  if (!cfg_.manual_local && !done() && workers_alive() == 0) {
    const bool nobody_ever = stats_.workers_connected == 0;
    if (!nobody_ever || now_ms - start_ms_ >= cfg_.connect_wait_ms) {
      if (nobody_ever) {
        HPCS_LOG_WARN(kTag, "no workers within %lld ms; running %zu points locally",
                      static_cast<long long>(cfg_.connect_wait_ms),
                      rows_.size() - committed_);
      } else {
        HPCS_LOG_WARN(kTag, "all workers dead; running %zu remaining points locally",
                      rows_.size() - committed_);
      }
      run_remaining_locally(now_ms);
    }
  }

  maybe_finish(now_ms);
}

void Coordinator::pump_peer(std::size_t wi, std::int64_t now_ms) {
  WorkerPeer& w = workers_[wi];
  if (w.dead) return;
  const std::string bytes = w.conn->poll_recv();
  if (!bytes.empty()) w.decoder.feed(bytes);
  Frame f;
  for (;;) {
    const FrameDecoder::Result r = w.decoder.next(f);
    if (r == FrameDecoder::Result::kNeedMore) break;
    if (r == FrameDecoder::Result::kError) {
      ++stats_.frames_bad;
      kill_peer(wi, w.decoder.error().c_str(), now_ms);
      return;
    }
    handle_frame(wi, f, now_ms);
    if (w.dead) return;
  }
  if (w.conn->closed()) {
    // A closed stream with a partial frame buffered is a truncated frame.
    if (w.decoder.pending_bytes() != 0) ++stats_.frames_bad;
    kill_peer(wi, "connection closed", now_ms);
  }
}

void Coordinator::handle_frame(std::size_t wi, const Frame& f, std::int64_t now_ms) {
  WorkerPeer& w = workers_[wi];
  w.last_seen_ms = now_ms;
  switch (f.type) {
    case FrameType::kHello: {
      Hello h;
      if (!decode_hello(f, h)) {
        ++stats_.frames_bad;
        kill_peer(wi, "malformed HELLO", now_ms);
        return;
      }
      if (h.version != kProtoVersion) {
        HelloAck nack;
        nack.accept = false;
        nack.reason = "protocol version mismatch";
        (void)w.conn->send(encode_frame(encode_hello_ack(nack)));
        w.conn->close();
        w.dead = true;
        ++stats_.workers_rejected;
        return;
      }
      w.helloed = true;
      w.name = h.worker_name;
      w.capacity = std::max<std::uint32_t>(1, h.capacity);
      ++stats_.workers_connected;
      HelloAck ack;
      ack.accept = true;
      ack.job = cfg_.job;
      ack.params = cfg_.params;
      ack.count = rows_.size();
      if (!w.conn->send(encode_frame(encode_hello_ack(ack)))) {
        kill_peer(wi, "send failed", now_ms);
      }
      return;
    }
    case FrameType::kRow: {
      Row row;
      if (!decode_row(f, row) || row.index >= rows_.size()) {
        ++stats_.frames_bad;
        kill_peer(wi, "malformed ROW", now_ms);
        return;
      }
      HPCS_TRACEPOINT(obs_, obs::TpId::kTpDistRow, ms_time(now_ms),
                      static_cast<CpuId>(wi), row.index,
                      static_cast<std::int64_t>(row.shard));
      commit_row(row.index, std::move(row.payload), RowOrigin::kRemote);
      if (row.shard < shards_.size()) {
        Shard& s = shards_[row.shard];
        if (s.state == ShardState::kAssigned && s.owner == static_cast<int>(wi)) {
          s.progress_ms = now_ms;
        }
      }
      return;
    }
    case FrameType::kDone: {
      Done d;
      if (!decode_done(f, d) || d.shard >= shards_.size()) {
        ++stats_.frames_bad;
        kill_peer(wi, "malformed DONE", now_ms);
        return;
      }
      Shard& s = shards_[d.shard];
      if (s.state == ShardState::kAssigned && s.owner == static_cast<int>(wi)) {
        s.owner = -1;
        --w.busy_shards;
        const bool complete = std::all_of(
            s.indices.begin(), s.indices.end(),
            [this](std::uint32_t i) { return row_present_[i] != 0; });
        if (complete) {
          mark_done(s, now_ms, w.name);
        } else {
          // DONE without the rows: treat like a failed attempt.
          s.state = ShardState::kPending;
          s.eligible_ms = now_ms + backoff_ms(s.attempts);
          ++stats_.shards_retried;
        }
      } else if (s.stolen_from == static_cast<int>(wi)) {
        // The slow owner finally finished a stolen shard; free its slot.
        s.stolen_from = -1;
        --w.busy_shards;
      }
      return;
    }
    case FrameType::kHeartbeat:
      HPCS_TRACEPOINT(obs_, obs::TpId::kTpDistHeartbeat, ms_time(now_ms),
                      static_cast<CpuId>(wi), static_cast<std::int64_t>(wi), 0);
      return;  // last_seen refresh is all a heartbeat means
    case FrameType::kError: {
      Error e;
      if (decode_error(f, e)) {
        HPCS_LOG_WARN(kTag, "worker '%s' error: %s", w.name.c_str(), e.reason.c_str());
      }
      kill_peer(wi, "worker reported error", now_ms);
      return;
    }
    case FrameType::kHelloAck:
    case FrameType::kAssign:
    case FrameType::kBye:
      // Coordinator-only frames arriving *at* the coordinator: corrupt peer.
      ++stats_.frames_bad;
      kill_peer(wi, "unexpected frame", now_ms);
      return;
  }
}

void Coordinator::kill_peer(std::size_t wi, const char* why, std::int64_t now_ms) {
  WorkerPeer& w = workers_[wi];
  if (w.dead) return;
  HPCS_LOG_INFO(kTag, "worker '%s' removed: %s", w.name.c_str(), why);
  w.conn->close();
  w.dead = true;
  w.busy_shards = 0;
  ++stats_.workers_dead;
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    Shard& s = shards_[si];
    if (s.state == ShardState::kAssigned && s.owner == static_cast<int>(wi)) {
      requeue_shard(si, now_ms, /*stolen=*/false);
    }
    if (s.stolen_from == static_cast<int>(wi)) s.stolen_from = -1;
  }
}

void Coordinator::requeue_shard(std::size_t si, std::int64_t now_ms, bool stolen) {
  Shard& s = shards_[si];
  const int prev_owner = s.owner;
  if (stolen) {
    // Keep the slow owner's slot occupied until it reports DONE or dies —
    // a worker that cannot finish a shard should not be handed another.
    s.stolen_from = s.owner;
    ++stats_.shards_stolen;
    HPCS_TRACEPOINT(obs_, obs::TpId::kTpDistSteal, ms_time(now_ms),
                    static_cast<CpuId>(prev_owner), static_cast<std::int64_t>(si),
                    prev_owner);
  } else {
    ++stats_.shards_retried;
    HPCS_TRACEPOINT(obs_, obs::TpId::kTpDistRetry, ms_time(now_ms),
                    static_cast<CpuId>(prev_owner), static_cast<std::int64_t>(si),
                    s.attempts);
  }
  s.owner = -1;
  // Everything already streamed back stays committed (points are pure), so
  // a retried shard that was fully received is simply done.
  const bool complete =
      std::all_of(s.indices.begin(), s.indices.end(),
                  [this](std::uint32_t i) { return row_present_[i] != 0; });
  if (complete) {
    mark_done(s, now_ms,
              prev_owner >= 0 ? workers_[static_cast<std::size_t>(prev_owner)].name
                              : std::string("local"));
    return;
  }
  s.state = ShardState::kPending;
  s.eligible_ms = now_ms + backoff_ms(s.attempts);
}

void Coordinator::assign_ready_shards(std::int64_t now_ms) {
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    WorkerPeer& w = workers_[wi];
    if (w.dead || !w.helloed) continue;
    while (w.busy_shards < static_cast<int>(w.capacity)) {
      std::size_t pick = shards_.size();
      for (std::size_t si = 0; si < shards_.size(); ++si) {
        Shard& s = shards_[si];
        if (s.state == ShardState::kPending && s.eligible_ms <= now_ms &&
            s.attempts < cfg_.max_shard_attempts) {
          pick = si;
          break;
        }
      }
      if (pick == shards_.size()) return;
      Shard& s = shards_[pick];
      Assign a;
      a.shard = pick;
      a.indices = s.indices;
      if (!w.conn->send(encode_frame(encode_assign(a)))) {
        kill_peer(wi, "send failed", now_ms);
        break;
      }
      s.state = ShardState::kAssigned;
      s.owner = static_cast<int>(wi);
      ++s.attempts;
      s.progress_ms = now_ms;
      if (s.first_assign_ms < 0) s.first_assign_ms = now_ms;
      ++w.busy_shards;
      ++stats_.shards_assigned;
      HPCS_TRACEPOINT(obs_, obs::TpId::kTpDistAssign, ms_time(now_ms),
                      static_cast<CpuId>(wi), static_cast<std::int64_t>(pick),
                      s.attempts);
    }
  }
}

void Coordinator::commit_row(std::uint32_t index, std::string payload, RowOrigin origin) {
  if (row_present_[index] != 0) {
    // Double delivery (stale row after a steal, or a retry racing the
    // original). Points are pure, so the bytes are interchangeable; keep the
    // first and count the rest. A seeded duplicate is not a stale row — the
    // cache simply lost the race.
    if (origin != RowOrigin::kSeeded) ++stats_.rows_stale;
    return;
  }
  rows_[index] = std::move(payload);
  row_present_[index] = 1;
  ++committed_;
  commit_log_.push_back(CommitLogEntry{index, origin});
  if (origin == RowOrigin::kRemote) {
    ++stats_.rows_remote;
  } else if (origin == RowOrigin::kLocal) {
    ++stats_.rows_local;
  } else {
    ++stats_.rows_seeded;
  }
}

void Coordinator::seed_row(std::uint32_t index, std::string payload, std::int64_t now_ms) {
  if (index >= rows_.size()) return;
  commit_row(index, std::move(payload), RowOrigin::kSeeded);
  const std::size_t si = index / cfg_.shard_size;
  Shard& s = shards_[si];
  if (s.state == ShardState::kDone) return;
  const bool complete =
      std::all_of(s.indices.begin(), s.indices.end(),
                  [this](std::uint32_t i) { return row_present_[i] != 0; });
  // Only an unassigned shard is closed out here; an assigned one stays with
  // its owner until DONE/requeue so the peer bookkeeping keeps a single path.
  if (complete && s.state == ShardState::kPending) {
    mark_done(s, now_ms, "cache");
  }
}

bool Coordinator::run_one_local(std::int64_t now_ms) {
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    Shard& s = shards_[si];
    if (s.state != ShardState::kPending) continue;
    for (const std::uint32_t i : s.indices) {
      if (row_present_[i] != 0) continue;
      commit_row(i, local_fn_(i), RowOrigin::kLocal);
      const bool complete =
          std::all_of(s.indices.begin(), s.indices.end(),
                      [this](std::uint32_t k) { return row_present_[k] != 0; });
      if (complete) {
        mark_done(s, now_ms, "local");
        s.owner = -1;
        ++stats_.shards_local;
      }
      maybe_finish(now_ms);
      return true;
    }
    // Every row already present (seeds/stale overlap): close the shard out.
    mark_done(s, now_ms, "local");
    s.owner = -1;
  }
  return false;
}

std::vector<Coordinator::CommittedRow> Coordinator::drain_new_rows() {
  std::vector<CommittedRow> out;
  out.reserve(commit_log_.size() - drain_cursor_);
  for (; drain_cursor_ < commit_log_.size(); ++drain_cursor_) {
    const CommitLogEntry& e = commit_log_[drain_cursor_];
    CommittedRow r;
    r.index = e.index;
    r.seeded = e.origin == RowOrigin::kSeeded;
    r.payload = rows_[e.index];
    out.push_back(std::move(r));
  }
  return out;
}

void Coordinator::run_shard_locally(std::size_t si, std::int64_t now_ms) {
  Shard& s = shards_[si];
  for (const std::uint32_t i : s.indices) {
    if (row_present_[i] == 0) commit_row(i, local_fn_(i), RowOrigin::kLocal);
  }
  mark_done(s, now_ms, "local");
  s.owner = -1;
  ++stats_.shards_local;
}

void Coordinator::run_remaining_locally(std::int64_t now_ms) {
  stats_.fell_back_local = true;
  std::vector<std::uint32_t> todo;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(rows_.size()); ++i) {
    if (row_present_[i] == 0) todo.push_back(i);
  }
  // Same slot-commit shape as exp::ParallelRunner::map — results land by
  // index, so local degradation keeps the byte-identity contract.
  exp::ParallelRunner runner(cfg_.local_jobs == 0 ? 1 : cfg_.local_jobs);
  std::vector<std::string> out =
      runner.map(todo.size(), [&](std::size_t k) { return local_fn_(todo[k]); });
  for (std::size_t k = 0; k < todo.size(); ++k) {
    commit_row(todo[k], std::move(out[k]), RowOrigin::kLocal);
  }
  for (Shard& s : shards_) {
    if (s.state != ShardState::kDone) {
      mark_done(s, now_ms, "local");
      s.owner = -1;
      ++stats_.shards_local;
    }
  }
}

void Coordinator::mark_done(Shard& s, std::int64_t now_ms, const std::string& who) {
  s.state = ShardState::kDone;
  if (s.done_ms < 0) {
    s.done_ms = now_ms;
    s.done_by = who;
  }
}

std::vector<ShardSpan> Coordinator::shard_spans() const {
  std::vector<ShardSpan> spans;
  spans.reserve(shards_.size());
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    const Shard& s = shards_[si];
    ShardSpan sp;
    sp.shard = static_cast<std::uint32_t>(si);
    sp.first_assign_ms = s.first_assign_ms;
    sp.done_ms = s.done_ms;
    sp.attempts = s.attempts;
    sp.done_by = s.done_by;
    spans.push_back(std::move(sp));
  }
  return spans;
}

void Coordinator::maybe_finish(std::int64_t) {
  if (!done() || bye_sent_) return;
  for (WorkerPeer& w : workers_) {
    if (!w.dead) {
      (void)w.conn->send(encode_frame(encode_bye()));
      w.conn->close();
      // An orderly goodbye, not a death — keep workers_dead honest.
      w.dead = true;
    }
  }
  bye_sent_ = true;
}

std::vector<std::string> Coordinator::take_rows() {
  HPCS_CHECK_MSG(done(), "take_rows() before the fabric completed");
  row_present_.clear();
  committed_ = 0;
  drain_cursor_ = commit_log_.size();  // payload slots are gone with rows_
  return std::move(rows_);
}

}  // namespace hpcs::dist
