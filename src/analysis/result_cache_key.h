#pragma once
// Cache key derivation for the content-addressed result store (cache/store.h).
//
// A sweep point is a pure function of (job name, params blob, point index) —
// the same purity contract dist::Coordinator's retry logic and the in-process
// engine already rely on — so that triple, plus the two format versions that
// govern how the bytes are produced, IS the content address:
//
//     key = FNV-1a-64( kCacheKeyVersion
//                    | run_result_format_version()   (blob layout)
//                    | job name                      (length-prefixed)
//                    | params blob                   (carries kParamsVersion,
//                    |                                seed, obs config)
//                    | point index )
//
// The material is rendered through dist::WireWriter, so every field is
// length-delimited/fixed-width and no two distinct inputs can collide by
// concatenation. Bumping any layer's version (serializer, params encoding,
// this scheme) silently invalidates the old population instead of decoding
// stale bytes.

#include <cstdint>
#include <string>

namespace hpcs::analysis {

/// Bump to orphan every existing cache entry on a key-scheme change.
inline constexpr std::uint32_t kCacheKeyVersion = 1;

/// 64-bit content address of one sweep point's serialized RunResult.
[[nodiscard]] std::uint64_t result_cache_key(const std::string& job,
                                             const std::string& params,
                                             std::uint32_t index);

}  // namespace hpcs::analysis
