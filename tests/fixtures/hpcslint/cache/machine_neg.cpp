// Cache-purity fixture, negative twin of machine_pos.cpp: the planner
// ranks a caller-supplied (size, mtime) inventory — mtimes are data, not
// clock reads — and the filesystem probe sits inside a declared HPCS_HOST
// region, the src/cache/store.cpp convention. Nothing may be reported.
#include <cstdio>

namespace hpcs::cache {

class EvictionPlanner {
 public:
  void stamp(long long mtime_ns);
  bool probe();
  long long seen_ns_ = 0;
};

void EvictionPlanner::stamp(long long mtime_ns) { seen_ns_ = mtime_ns; }

// HPCS_HOST_BEGIN — blob inventory scan: deliberate file IO feeding the
// pure planner nothing but (path, size, mtime) tuples.
bool EvictionPlanner::probe() {
  std::FILE* f = std::fopen("blob.rcb", "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}
// HPCS_HOST_END

}  // namespace hpcs::cache
