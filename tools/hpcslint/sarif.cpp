// SARIF 2.1.0 emission and baseline handling.
//
// The baseline workflow: `hpcslint --sarif FILE` renders every finding with
// a stable partialFingerprint ("hpcslint/v1"); the checked-in
// tools/hpcslint/baseline.sarif.json is simply a previous run's output. CI
// re-lints, loads the baseline's fingerprint set, and fails only on
// findings whose fingerprint is new — so pre-existing accepted findings
// never block a PR, and new nondeterminism cannot slip in.
//
// Fingerprints hash file|rule|message (FNV-1a) plus an occurrence index for
// identical tuples — deliberately NOT the line number, so inserting a
// comment above a baselined finding does not invalidate the baseline, while
// a genuinely new second occurrence of the same finding still gates.

#include <cstdint>
#include <cstdio>
#include <map>

#include "hpcslint.h"
#include "json_mini.h"

namespace hpcslint {
namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string fingerprint_of(const Finding& f, int occurrence) {
  const std::string key = f.file + "|" + f.rule + "|" + f.message;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a(key)));
  return std::string(buf) + "-" + std::to_string(occurrence);
}

}  // namespace

std::vector<std::string> fingerprints(const std::vector<Finding>& fs) {
  std::vector<std::string> out;
  out.reserve(fs.size());
  std::map<std::string, int> seen;
  for (const Finding& f : fs) {
    const std::string key = f.file + "|" + f.rule + "|" + f.message;
    out.push_back(fingerprint_of(f, seen[key]++));
  }
  return out;
}

std::string sarif_report(const std::vector<Finding>& fs) {
  const std::vector<std::string> fps = fingerprints(fs);
  std::string out;
  out += "{\n";
  out += "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n";
  out += "    {\n";
  out += "      \"tool\": {\n";
  out += "        \"driver\": {\n";
  out += "          \"name\": \"hpcslint\",\n";
  out += "          \"version\": \"2.0.0\",\n";
  out += "          \"informationUri\": \"docs/static_analysis.md\",\n";
  out += "          \"rules\": [\n";
  const std::vector<std::string>& names = rule_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    out += "            {\"id\": \"" + json::escape(names[i]) + "\"}";
    out += i + 1 < names.size() ? ",\n" : "\n";
  }
  out += "          ]\n";
  out += "        }\n";
  out += "      },\n";
  out += "      \"results\": [\n";
  for (std::size_t i = 0; i < fs.size(); ++i) {
    const Finding& f = fs[i];
    out += "        {\n";
    out += "          \"ruleId\": \"" + json::escape(f.rule) + "\",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": {\"text\": \"" + json::escape(f.message) + "\"},\n";
    out += "          \"locations\": [\n";
    out += "            {\n";
    out += "              \"physicalLocation\": {\n";
    out += "                \"artifactLocation\": {\"uri\": \"" + json::escape(f.file) +
           "\"},\n";
    out += "                \"region\": {\"startLine\": " + std::to_string(f.line) +
           "}\n";
    out += "              }\n";
    out += "            }\n";
    out += "          ],\n";
    out += "          \"partialFingerprints\": {\"hpcslint/v1\": \"" +
           json::escape(fps[i]) + "\"}\n";
    out += "        }";
    out += i + 1 < fs.size() ? ",\n" : "\n";
  }
  out += "      ]\n";
  out += "    }\n";
  out += "  ]\n";
  out += "}\n";
  return out;
}

bool load_baseline(std::string_view sarif_text, std::set<std::string>& out,
                   std::string& error) {
  json::Value doc;
  if (!json::parse(sarif_text, doc, error)) return false;
  const json::Value* runs = doc.get("runs");
  if (runs == nullptr || !runs->is_array()) {
    error = "not a SARIF document: missing \"runs\" array";
    return false;
  }
  for (const json::Value& run : runs->arr) {
    const json::Value* results = run.get("results");
    if (results == nullptr || !results->is_array()) continue;
    for (const json::Value& result : results->arr) {
      const json::Value* pf = result.get("partialFingerprints");
      if (pf == nullptr) continue;
      const json::Value* fp = pf->get("hpcslint/v1");
      if (fp != nullptr && fp->is_string()) out.insert(fp->str);
    }
  }
  return true;
}

std::vector<Finding> filter_baselined(const std::vector<Finding>& fs,
                                      const std::set<std::string>& baseline) {
  const std::vector<std::string> fps = fingerprints(fs);
  std::vector<Finding> out;
  for (std::size_t i = 0; i < fs.size(); ++i) {
    if (baseline.count(fps[i]) == 0) out.push_back(fs[i]);
  }
  return out;
}

}  // namespace hpcslint
