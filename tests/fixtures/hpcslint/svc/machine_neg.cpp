// Svc-purity fixture, negative twin of machine_pos.cpp: the same service
// shape, but admission is driven from a now_ms parameter and the journal
// write sits inside a declared HPCS_HOST region (the svc/host seam).
// Nothing may be reported.
#include <cstdio>

namespace hpcs::svc {

class SweepService {
 public:
  void admit(long long now_ms);
  void finish();
  long long deadline_ms_ = 0;
  int jobs_done_ = 0;
};

void SweepService::admit(long long now_ms) { deadline_ms_ = now_ms + 50; }

// HPCS_HOST_BEGIN — job journal: records an already-decided completion
// count to the host filesystem; never feeds back into scheduling decisions.
void SweepService::finish() {
  std::FILE* f = std::fopen("jobs.log", "ab");
  if (f != nullptr) {
    std::fwrite(&jobs_done_, sizeof(jobs_done_), 1, f);
    std::fclose(f);
  }
  ++jobs_done_;
}
// HPCS_HOST_END

}  // namespace hpcs::svc
