#include "workloads/metbenchvar.h"

#include "common/check.h"

namespace hpcs::wl {
namespace {

class MetBenchVarWorker final : public mpi::RankProgram {
 public:
  MetBenchVarWorker(double load_a, double load_b, int k, int iterations)
      : load_a_(load_a), load_b_(load_b), k_(k), iterations_(iterations) {}

  mpi::MpiOp next() override {
    if (iter_ >= iterations_) return mpi::OpExit{};
    switch (phase_) {
      case 0: {
        phase_ = 1;
        // Periods alternate: iterations [0,k) run load A, [k,2k) load B, ...
        const bool period_a = (iter_ / k_) % 2 == 0;
        return mpi::OpCompute{period_a ? load_a_ : load_b_};
      }
      case 1:
        phase_ = 2;
        return mpi::OpBarrier{};
      default:
        phase_ = 0;
        ++iter_;
        return mpi::OpMarkIteration{};
    }
  }

 private:
  double load_a_;
  double load_b_;
  int k_;
  int iterations_;
  int iter_ = 0;
  int phase_ = 0;
};

}  // namespace

ProgramSet make_metbenchvar(const MetBenchVarConfig& cfg) {
  HPCS_CHECK(cfg.loads_a.size() == cfg.loads_b.size() && !cfg.loads_a.empty());
  HPCS_CHECK(cfg.k > 0);
  ProgramSet out;
  for (std::size_t i = 0; i < cfg.loads_a.size(); ++i) {
    out.push_back(std::make_unique<MetBenchVarWorker>(cfg.loads_a[i], cfg.loads_b[i], cfg.k,
                                                      cfg.iterations));
  }
  return out;
}

}  // namespace hpcs::wl
