// Event-loop and parallel-engine micro benchmark. Measures:
//  1. events/sec on three event-queue hot patterns:
//       - recurring per-CPU ticks re-armed via the reschedule() fast path
//       - one-shot events with a 32-byte capture (simmpi send-style; these
//         exceed std::function's inline buffer — InplaceFunction keeps them
//         allocation-free)
//       - timeout churn: schedule a fat-capture guard, cancel before firing
//  2. wall-clock of an 8-point MetBench sweep run serially (--jobs 1) vs on
//     all hardware threads, plus a row-for-row equality check (the engine's
//     bit-identical contract).
// Emits BENCH_simcore.json. Flags: --jobs N (HPCS_JOBS) for the parallel leg.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "analysis/paper_experiments.h"
#include "analysis/sweep.h"
#include "bench_json.h"
#include "exp/parallel_runner.h"
#include "simcore/simulator.h"

using namespace hpcs;

namespace {

double now_s() {
  // Bench timing harness: measuring the simulator from outside is the one
  // legitimate wall-clock read (simulation code itself must use SimTime).
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())  // HPCSLINT-ALLOW(wallclock)
      .count();
}

double bench_tick_loop() {
  sim::Simulator s;
  constexpr int kCpus = 4;
  struct Ctx {
    sim::Simulator* s;
    sim::EventHandle h;
  };
  std::vector<Ctx> ctx(kCpus);
  for (int i = 0; i < kCpus; ++i) {
    ctx[i].s = &s;
    Ctx* c = &ctx[i];
    c->h = s.schedule_in(Duration::milliseconds(1), [c] {
      if (!c->s->reschedule_in(c->h, Duration::milliseconds(1))) std::abort();
    });
  }
  const double t0 = now_s();
  const std::uint64_t target = 6'000'000;
  while (s.events_executed() < target) s.step();
  return double(s.events_executed()) / (now_s() - t0);
}

double bench_big_capture() {
  sim::EventQueue q;
  struct Payload {
    std::uint64_t a, b, c, d;
  };
  std::uint64_t sink = 0;
  const std::uint64_t kBatches = 60'000;
  const int kBatch = 64;
  std::int64_t t = 0;
  const double t0 = now_s();
  for (std::uint64_t b = 0; b < kBatches; ++b) {
    for (int i = 0; i < kBatch; ++i) {
      Payload p{b, std::uint64_t(i), b ^ std::uint64_t(i), b + std::uint64_t(i)};
      q.schedule(SimTime(t + i), [p, &sink] { sink += p.a + p.d; });
    }
    while (!q.empty()) q.pop_and_run();
    t += kBatch;
  }
  const double rate = double(kBatches * kBatch) / (now_s() - t0);
  if (sink == 0) std::abort();
  return rate;
}

double bench_cancel_churn() {
  sim::EventQueue q;
  struct Payload {
    std::uint64_t a, b, c, d;
  };
  std::uint64_t sink = 0;
  const std::uint64_t kIters = 4'000'000;
  const double t0 = now_s();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    Payload p{i, i + 1, i + 2, i + 3};
    auto h = q.schedule(SimTime(std::int64_t(i + 1000)), [p, &sink] { sink += p.b; });
    if (!q.cancel(h)) std::abort();
    if ((i & 63) == 63) {
      // Drain the lazily-deleted entries, as a real run loop would.
      q.schedule(SimTime(std::int64_t(i + 1)), [&sink] { ++sink; });
      q.pop_and_run();
    }
  }
  return double(kIters) / (now_s() - t0);
}

std::vector<analysis::SweepPoint> make_sweep_points() {
  std::vector<analysis::SweepPoint> points;
  const std::vector<analysis::SchedMode> modes = {
      analysis::SchedMode::kBaselineCfs, analysis::SchedMode::kStatic,
      analysis::SchedMode::kUniform, analysis::SchedMode::kAdaptive};
  for (const std::uint64_t seed : {1ull, 2ull}) {
    for (const analysis::SchedMode mode : modes) {
      auto e = analysis::MetBenchExperiment::paper();
      e.workload.iterations = 15;
      analysis::ExperimentConfig cfg = analysis::paper_defaults(mode, seed, false);
      if (mode == analysis::SchedMode::kStatic) cfg.static_prios = e.static_prios;
      const wl::MetBenchConfig w = e.workload;
      points.push_back(analysis::SweepPoint{
          std::string(analysis::sched_mode_name(mode)) + "/seed" + std::to_string(seed), cfg,
          [w] { return wl::make_metbench(w); }});
    }
  }
  return points;
}

bool rows_equal(const std::vector<analysis::SweepRow>& a,
                const std::vector<analysis::SweepRow>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].label != b[i].label || a[i].exec_s != b[i].exec_s ||
        a[i].min_util != b[i].min_util || a[i].max_util != b[i].max_util ||
        a[i].mean_imbalance != b[i].mean_imbalance || a[i].prio_changes != b[i].prio_changes ||
        a[i].ctx_switches != b[i].ctx_switches ||
        a[i].avg_wakeup_latency_us != b[i].avg_wakeup_latency_us ||
        a[i].improvement_vs_first_pct != b[i].improvement_vs_first_pct) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf("=== simcore micro: event-loop hot paths ===\n");
  const double tick = bench_tick_loop();
  const double big = bench_big_capture();
  const double cancel = bench_cancel_churn();
  std::printf("tick loop (reschedule fast path): %8.1fM events/s\n", tick / 1e6);
  std::printf("32B-capture one-shot events:      %8.1fM events/s\n", big / 1e6);
  std::printf("schedule+cancel churn:            %8.1fM events/s\n", cancel / 1e6);

  std::printf("\n=== parallel experiment engine: 8-point MetBench sweep ===\n");
  const auto points = make_sweep_points();
  const double s0 = now_s();
  const auto serial_rows = analysis::run_sweep(points, 1);
  const double serial_s = now_s() - s0;
  const double p0 = now_s();
  const auto parallel_rows = analysis::run_sweep(points, jobs);
  const double parallel_s = now_s() - p0;
  const bool identical = rows_equal(serial_rows, parallel_rows);
  std::printf("serial  (--jobs 1): %.3fs\n", serial_s);
  std::printf("parallel (--jobs %u): %.3fs  speedup %.2fx\n", jobs, parallel_s,
              parallel_s > 0 ? serial_s / parallel_s : 0.0);
  std::printf("rows bit-identical: %s\n", identical ? "yes" : "NO — DETERMINISM BUG");
  std::printf("hardware threads: %u\n", hw);

  bench::JsonObject events;
  events.field("tick_reschedule_per_s", tick)
      .field("big_capture_per_s", big)
      .field("cancel_churn_per_s", cancel);
  bench::JsonObject sweep;
  sweep.field("points", static_cast<std::int64_t>(points.size()))
      .field("serial_s", serial_s)
      .field("parallel_s", parallel_s)
      .field("jobs", jobs)
      .field("speedup", parallel_s > 0 ? serial_s / parallel_s : 0.0)
      .field("rows_bit_identical", identical);
  bench::JsonObject root;
  root.field("bench", "micro_simcore")
      .field("hardware_concurrency", hw)
      .object("events_per_sec", events)
      .object("sweep", sweep);
  bench::write_json_file("BENCH_simcore.json", root);
  return identical ? 0 : 1;
}
