// Reproduces Figure 5: BT-MZ traces (a window of the 200-iteration run, as
// in the paper: "each trace represents only some iterations").

#include "fig_common.h"

int main() {
  using namespace hpcs;
  using analysis::SchedMode;

  auto e = analysis::BtMzExperiment::paper();
  e.workload.iterations = 60;  // a representative window

  std::printf("=== Figure 5: effect of the proposed solution on BT-MZ ===\n\n");
  for (const auto& [mode, label] :
       {std::pair{SchedMode::kBaselineCfs, "(a) baseline execution"},
        std::pair{SchedMode::kStatic, "(b) static prioritization"},
        std::pair{SchedMode::kUniform, "(c) Uniform prioritization"},
        std::pair{SchedMode::kAdaptive, "(d) Adaptive prioritization"}}) {
    auto r = analysis::run_btmz(e, mode, /*trace=*/true);
    bench::print_trace_figure(label, r, 120);
    std::printf("\n");
  }
  return 0;
}
