#pragma once
// --dist / HPCS_DIST spec parsing shared by every bench driver and
// hpcs-distd. Accepted forms:
//
//   coordinator:PORT        listen on 127.0.0.1:PORT (0 = ephemeral)
//   worker:HOST:PORT        connect to a coordinator
//   worker HOST:PORT        same, two-token CLI form (caller joins with ' ')
//
// The HPCS_DIST environment variable takes the same spec and is applied
// before flags, so `HPCS_DIST=worker:127.0.0.1:7070 table3_metbench` turns
// any driver into a worker without touching its command line.

#include <cstdint>
#include <string>

namespace hpcs::dist::host {

struct DistOptions {
  enum class Mode : std::uint8_t { kOff, kCoordinator, kWorker };
  Mode mode = Mode::kOff;
  std::string hostname;      ///< worker: coordinator address
  std::uint16_t port = 0;    ///< listen port (coordinator) / target (worker)
  std::string port_file;     ///< coordinator: write the bound port here
  std::uint32_t capacity = 1;///< worker: concurrent shards advertised
};

/// Parse a spec (see header comment) into `out`. False with `err` set on
/// junk; `out` is untouched in that case.
[[nodiscard]] bool parse_dist_spec(const std::string& spec, DistOptions& out,
                                   std::string& err);

/// Apply the HPCS_DIST environment variable, if set. Returns false with
/// `err` set when the variable exists but is malformed.
[[nodiscard]] bool apply_dist_env(DistOptions& out, std::string& err);

}  // namespace hpcs::dist::host
