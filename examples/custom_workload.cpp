// Example: writing your own MPI-style workload against the public API.
//
// A 4-rank "stencil" application: each rank computes a rank-dependent load,
// exchanges halos with its ring neighbours (isend/irecv/waitall) and repeats.
// Rank loads drift over time — rank 0 grows heavier while rank 3 gets
// lighter — so the dynamic scheduler has to keep re-balancing, which is
// exactly the scenario where HPCSched beats a one-shot static tuning.

#include <cstdio>
#include <memory>

#include "analysis/experiment.h"
#include "simmpi/ops.h"

using namespace hpcs;

namespace {

/// A user-defined RankProgram: all it takes is emitting ops.
class DriftingStencil final : public mpi::RankProgram {
 public:
  DriftingStencil(int rank, int ranks, int iterations)
      : rank_(rank), ranks_(ranks), iterations_(iterations) {}

  mpi::MpiOp next() override {
    if (iter_ >= iterations_) return mpi::OpExit{};
    const int left = (rank_ + ranks_ - 1) % ranks_;
    const int right = (rank_ + 1) % ranks_;
    switch (phase_++) {
      case 0: {
        // Load drifts linearly over the run: rank 0 from 0.2x to 1.8x of the
        // base, rank N-1 the other way around.
        const double progress = static_cast<double>(iter_) / iterations_;
        const double skew = static_cast<double>(rank_) / (ranks_ - 1);  // 0..1
        const double weight = 0.2 + 1.6 * ((1.0 - skew) * progress + skew * (1.0 - progress));
        return mpi::OpCompute{60.0e6 * weight};
      }
      case 1: return mpi::OpIrecv{left, 0};
      case 2: return mpi::OpIrecv{right, 0};
      case 3: return mpi::OpIsend{left, 0, 32768};
      case 4: return mpi::OpIsend{right, 0, 32768};
      case 5: return mpi::OpWaitAll{};
      default:
        phase_ = 0;
        ++iter_;
        return mpi::OpMarkIteration{};
    }
  }

 private:
  int rank_;
  int ranks_;
  int iterations_;
  int iter_ = 0;
  int phase_ = 0;
};

std::vector<std::unique_ptr<mpi::RankProgram>> make_stencil(int ranks, int iterations) {
  std::vector<std::unique_ptr<mpi::RankProgram>> out;
  for (int r = 0; r < ranks; ++r) {
    out.push_back(std::make_unique<DriftingStencil>(r, ranks, iterations));
  }
  return out;
}

void report(const char* label, const analysis::RunResult& r) {
  std::printf("%-22s exec %7.2fs   utils:", label, r.exec_time.sec());
  for (const auto& rank : r.ranks) std::printf(" %5.1f%%", rank.util_pct);
  std::printf("   prio changes: %lld\n", static_cast<long long>(r.hw_prio_changes));
}

}  // namespace

int main() {
  std::printf("== custom workload: drifting stencil (loads migrate rank3 -> rank0) ==\n\n");
  constexpr int kIters = 60;

  analysis::ExperimentConfig cfg;
  cfg.seed = 11;

  cfg.mode = analysis::SchedMode::kBaselineCfs;
  const auto base = analysis::run_experiment(cfg, make_stencil(4, kIters));
  report("baseline CFS", base);

  // Static tuning fit to the INITIAL profile: right at first, wrong later.
  cfg.mode = analysis::SchedMode::kStatic;
  cfg.static_prios = {4, 4, 5, 6};
  const auto stat = analysis::run_experiment(cfg, make_stencil(4, kIters));
  report("static (initial fit)", stat);

  cfg.mode = analysis::SchedMode::kUniform;
  const auto uni = analysis::run_experiment(cfg, make_stencil(4, kIters));
  report("HPCSched uniform", uni);

  cfg.mode = analysis::SchedMode::kAdaptive;
  const auto ada = analysis::run_experiment(cfg, make_stencil(4, kIters));
  report("HPCSched adaptive", ada);

  cfg.mode = analysis::SchedMode::kHybrid;
  const auto hyb = analysis::run_experiment(cfg, make_stencil(4, kIters));
  report("HPCSched hybrid", hyb);

  std::printf("\nimprovement over baseline: static %+.1f%%, uniform %+.1f%%, adaptive %+.1f%%, hybrid %+.1f%%\n",
              analysis::improvement_pct(base, stat), analysis::improvement_pct(base, uni),
              analysis::improvement_pct(base, ada), analysis::improvement_pct(base, hyb));
  return 0;
}
