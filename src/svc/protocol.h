#pragma once
// Typed view of the sweep-service client frames (svc/wire.h carries the
// bytes; this header carries the meaning). The params blob stays opaque at
// this layer exactly like the fabric's: the service forwards it to the job
// registry and into cache keys without knowing what a run is.
//
// Every decode_* returns false on a malformed payload (truncated, trailing
// bytes, out-of-range enums); the server treats that as a corrupt client and
// closes the session, clients treat it as a corrupt server and give up.

#include <cstdint>
#include <string>

#include "svc/wire.h"

namespace hpcs::svc {

/// Lifecycle of one submitted sweep. Queued jobs wait for a running slot;
/// running jobs own a dist::Coordinator; kDone/kCancelled are terminal.
enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning,
  kDone,
  kCancelled,
};

[[nodiscard]] const char* job_state_name(JobState s);

struct SubmitJob {
  std::uint32_t version = kSvcProtoVersion;
  std::string tenant;  ///< fair-share accounting bucket
  std::string job;     ///< registry name (e.g. "table3_metbench")
  std::string params;  ///< opaque blob (analysis::encode_job_params)
};

struct SubmitAck {
  bool accept = false;
  std::string reason;        ///< set when rejected
  std::uint64_t job_id = 0;  ///< server-assigned, valid when accepted
  std::uint64_t count = 0;   ///< sweep points in the job
};

struct JobStatus {
  std::uint64_t job_id = 0;
};

struct Status {
  std::uint64_t job_id = 0;
  bool known = false;  ///< false: the id matches no job this server has seen
  JobState state = JobState::kQueued;
  std::uint64_t total = 0;   ///< points in the job
  std::uint64_t done = 0;    ///< rows committed so far
  std::uint64_t cached = 0;  ///< rows served from the result cache
};

struct StreamRows {
  std::uint64_t job_id = 0;
};

struct SvcRow {
  std::uint64_t job_id = 0;
  std::uint32_t index = 0;
  std::string payload;  ///< serialized RunResult bytes, byte-identical anywhere
};

struct JobDone {
  std::uint64_t job_id = 0;
  JobState state = JobState::kDone;  ///< terminal: kDone or kCancelled
  std::uint64_t total = 0;
  std::uint64_t cached = 0;
};

struct Cancel {
  std::uint64_t job_id = 0;
};

struct CancelAck {
  std::uint64_t job_id = 0;
  bool ok = false;  ///< false: unknown id or already terminal
};

struct ShutdownAck {
  std::uint64_t jobs_remaining = 0;  ///< still draining when nonzero
};

struct SvcError {
  std::string reason;
};

[[nodiscard]] SvcFrame encode_submit_job(const SubmitJob& m);
[[nodiscard]] SvcFrame encode_submit_ack(const SubmitAck& m);
[[nodiscard]] SvcFrame encode_job_status(const JobStatus& m);
[[nodiscard]] SvcFrame encode_status(const Status& m);
[[nodiscard]] SvcFrame encode_stream_rows(const StreamRows& m);
[[nodiscard]] SvcFrame encode_svc_row(const SvcRow& m);
[[nodiscard]] SvcFrame encode_job_done(const JobDone& m);
[[nodiscard]] SvcFrame encode_cancel(const Cancel& m);
[[nodiscard]] SvcFrame encode_cancel_ack(const CancelAck& m);
[[nodiscard]] SvcFrame encode_shutdown();
[[nodiscard]] SvcFrame encode_shutdown_ack(const ShutdownAck& m);
[[nodiscard]] SvcFrame encode_svc_error(const SvcError& m);

[[nodiscard]] bool decode_submit_job(const SvcFrame& f, SubmitJob& out);
[[nodiscard]] bool decode_submit_ack(const SvcFrame& f, SubmitAck& out);
[[nodiscard]] bool decode_job_status(const SvcFrame& f, JobStatus& out);
[[nodiscard]] bool decode_status(const SvcFrame& f, Status& out);
[[nodiscard]] bool decode_stream_rows(const SvcFrame& f, StreamRows& out);
[[nodiscard]] bool decode_svc_row(const SvcFrame& f, SvcRow& out);
[[nodiscard]] bool decode_job_done(const SvcFrame& f, JobDone& out);
[[nodiscard]] bool decode_cancel(const SvcFrame& f, Cancel& out);
[[nodiscard]] bool decode_cancel_ack(const SvcFrame& f, CancelAck& out);
[[nodiscard]] bool decode_shutdown_ack(const SvcFrame& f, ShutdownAck& out);
[[nodiscard]] bool decode_svc_error(const SvcFrame& f, SvcError& out);

}  // namespace hpcs::svc
