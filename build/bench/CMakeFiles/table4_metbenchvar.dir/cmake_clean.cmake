file(REMOVE_RECURSE
  "CMakeFiles/table4_metbenchvar.dir/table4_metbenchvar.cpp.o"
  "CMakeFiles/table4_metbenchvar.dir/table4_metbenchvar.cpp.o.d"
  "table4_metbenchvar"
  "table4_metbenchvar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_metbenchvar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
