#pragma once
// Runtime-tunable parameters of the HPC scheduler (paper §IV-B). Exposed
// through the sysfs registry under "hpcsched/...".

#include "common/types.h"

namespace hpcs::hpc {

struct HpcTunables {
  /// Utilization (percent) below which a task is a "low utilization" task.
  int low_util = 65;
  /// Utilization (percent) above which a task is a "high utilization" task.
  int high_util = 85;
  /// Hardware priority range the scheduler explores: [4,6] keeps the maximum
  /// priority difference at +/-2 (paper §IV-B, drawing on [4]).
  int min_prio = 4;
  int max_prio = 6;
  /// Adaptive heuristic weights, in percent (G + L = 100). G close to 100
  /// makes Adaptive behave like Uniform; the paper's aggressive setting is
  /// G=10 / L=90.
  int adaptive_g_pct = 10;
  /// Consecutive same-direction iterations of classification mismatch
  /// between the last and the global utilization after which the Load
  /// Imbalance Detector declares a behaviour change and restarts a task's
  /// utilization history.
  int reset_after = 3;
  /// Round-robin time slice of the SCHED_HPC RR policy.
  Duration rr_slice = Duration::milliseconds(100);
  /// Scheduler-path cost of an HPC wakeup: the round-robin head insert is
  /// O(1) and only competes with other HPC tasks.
  Duration wakeup_cost = Duration::microseconds(2);
};

}  // namespace hpcs::hpc
