// Stress/property tests of the whole kernel under randomized mixed
// workloads: RT + HPC + CFS tasks with random bodies, random policy flips
// and affinity changes mid-run. Invariants: nothing crashes, accounting is
// conserved, RT never starves behind lower classes, HPC priorities stay in
// range, all finite tasks finish.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hpcsched/hpcsched.h"
#include "test_util.h"

namespace hpcs::test {
namespace {

using kern::Policy;

class MixedStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MixedStress, RandomizedMixRunsClean) {
  Rng rng(GetParam());
  sim::Simulator s;
  kern::KernelConfig kc;
  kc.fair_scheduler =
      rng.uniform() < 0.5 ? kern::FairScheduler::kCfs : kern::FairScheduler::kO1;
  if (rng.uniform() < 0.3) kc.smt_snooze_delay = Duration::microseconds(100);
  kern::Kernel k(s, kc);
  auto& hpc_cls = hpc::install_hpcsched(k, {});
  k.start();

  std::vector<kern::Task*> finite;
  std::vector<kern::Task*> all;
  const int n = static_cast<int>(rng.uniform_int(6, 14));
  for (int i = 0; i < n; ++i) {
    const double dice = rng.uniform();
    Policy policy = Policy::kNormal;
    if (dice < 0.2) {
      policy = Policy::kRr;
    } else if (dice < 0.5) {
      policy = rng.uniform() < 0.5 ? Policy::kHpcRr : Policy::kHpcFifo;
    } else if (dice < 0.6) {
      policy = Policy::kBatch;
    }
    const auto cpu = static_cast<CpuId>(rng.uniform_int(0, 3));
    std::unique_ptr<kern::TaskBody> body;
    const bool is_finite = rng.uniform() < 0.5;
    if (is_finite) {
      std::vector<Act> acts;
      const int segs = static_cast<int>(rng.uniform_int(1, 6));
      for (int g = 0; g < segs; ++g) {
        acts.push_back(Act::compute(rng.uniform(0.1e6, 20.0e6)));
        if (rng.uniform() < 0.5) {
          acts.push_back(Act::sleep(Duration(static_cast<std::int64_t>(
              rng.uniform(0.1e6, 20.0e6)))));
        }
      }
      body = std::make_unique<ScriptBody>(std::move(acts));
    } else {
      body = std::make_unique<PeriodicBody>(
          rng.uniform(0.1e6, 5.0e6),
          Duration(static_cast<std::int64_t>(rng.uniform(1.0e6, 20.0e6))));
    }
    auto& t = k.create_task("t" + std::to_string(i), std::move(body), policy, cpu);
    if (policy == Policy::kRr) k.sched_setscheduler(t, Policy::kRr, 50);
    k.start_task(t);
    all.push_back(&t);
    if (is_finite) finite.push_back(&t);
  }

  // Random perturbations while the mix runs.
  for (int j = 0; j < 10; ++j) {
    const auto when = Duration(static_cast<std::int64_t>(rng.uniform(1e6, 400e6)));
    auto* victim = all[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(all.size()) - 1))];
    const double what = rng.uniform();
    s.schedule_at(SimTime::zero() + when, [&k, victim, what, &rng] {
      if (victim->exited()) return;
      if (what < 0.4) {
        k.sched_setaffinity(*victim, static_cast<CpuId>(rng.uniform_int(0, 3)));
      } else if (what < 0.7 && !kern::is_hpc_policy(victim->policy())) {
        k.sched_setscheduler(*victim, Policy::kHpcRr);
      } else {
        k.set_nice(*victim, static_cast<int>(rng.uniform_int(-10, 10)));
      }
    });
  }

  s.run(SimTime::zero() + Duration::seconds(1.0));

  for (auto* t : finite) {
    EXPECT_TRUE(t->exited()) << t->name() << " did not finish";
  }
  for (auto* t : all) {
    k.flush_account(*t);
    const Duration lifetime = (t->exited() ? t->exit_time : k.now()) - t->created;
    const Duration accounted = t->t_run + t->t_ready + t->t_sleep;
    EXPECT_NEAR(static_cast<double>(accounted.ns()), static_cast<double>(lifetime.ns()), 2e4)
        << t->name() << " accounting leak";
    const int hw = p5::to_int(t->hw_prio);
    EXPECT_GE(hw, 1) << t->name();
    EXPECT_LE(hw, 6) << t->name();
  }
  (void)hpc_cls;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedStress,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808, 909, 1010));

}  // namespace
}  // namespace hpcs::test
