#pragma once
// Paper-style table formatting: renders RunResults in the layout of
// Tables III-VI (Test / Proc / %Comp / Priority / Exec. Time) plus generic
// fixed-width helpers for the benches.

#include <string>
#include <vector>

#include "analysis/experiment.h"

namespace hpcs::analysis {

/// One experiment's rows of a paper table.
struct TableSection {
  std::string label;  ///< "Baseline 2.6.24", "Static", "Uniform", ...
  const RunResult* result = nullptr;
  /// Priorities to display for non-dynamic modes (paper prints "-" for the
  /// dynamic scheduler because priorities change at run time).
  std::vector<int> display_prios;
};

/// Render a full characterization table (the Tables III-VI layout).
[[nodiscard]] std::string render_characterization_table(const std::string& title,
                                                        const std::vector<TableSection>& sections);

/// Render Table I (decode cycles per priority difference).
[[nodiscard]] std::string render_decode_table();

/// Render Table II (privilege level and or-nop per priority).
[[nodiscard]] std::string render_privilege_table();

/// Simple fixed-width row helper used by the benches.
[[nodiscard]] std::string fixed(const std::string& s, std::size_t width);

}  // namespace hpcs::analysis
