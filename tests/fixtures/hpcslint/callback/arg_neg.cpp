// Callback value-flow fixture, negative twin of arg_pos.cpp: the same
// InplaceFunction argument shape, pure lambda body. No det-taint anywhere.

namespace hpcs::sim {

template <typename Sig>
class InplaceFunction {
 public:
  void bind() {}
};

class Queue {
 public:
  void schedule(InplaceFunction<void()> fn);
  int depth_ = 0;
};

void Queue::schedule(InplaceFunction<void()> fn) {
  fn.bind();
  ++depth_;
}

void arm(Queue& q) {
  q.schedule([] {
    static long long t = 0;
    t += 7;
  });
}

}  // namespace hpcs::sim
