#pragma once
// Shared rendering for the figure benches: each paper figure is a set of
// PARAVER traces (one per scheduler configuration); we regenerate them as
// ASCII Gantt charts plus a per-iteration utilization series — the exact
// data the paper's figures visualize.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/paper_experiments.h"
#include "trace/gantt.h"

namespace hpcs::bench {

inline void print_trace_figure(const char* subtitle, const analysis::RunResult& r,
                               int width = 110) {
  std::printf("--- %s (exec %.2fs) ---\n", subtitle, r.exec_time.sec());
  std::vector<Pid> pids;
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < r.ranks.size(); ++i) {
    pids.push_back(r.ranks[i].pid);
    labels.push_back("P" + std::to_string(i + 1));
  }
  trace::GanttOptions opt;
  opt.width = width;
  std::printf("%s\n", trace::render_gantt(*r.tracer, pids, labels, opt).c_str());
}

/// Per-iteration utilization series of every rank (the data of Fig. 3-6),
/// printed as compact rows. `stride` subsamples long series.
inline void print_iteration_series(const analysis::RunResult& r, int stride = 1) {
  for (std::size_t i = 0; i < r.ranks.size(); ++i) {
    const auto& evs = r.tracer->iteration_events(r.ranks[i].pid);
    std::printf("P%zu util/iter:", i + 1);
    int printed = 0;
    for (std::size_t k = 0; k < evs.size(); k += static_cast<std::size_t>(stride)) {
      if (printed++ > 40) {
        std::printf(" ...");
        break;
      }
      std::printf(" %3.0f", evs[k].util_last);
    }
    std::printf("\n");
  }
}

}  // namespace hpcs::bench
