# Empty dependencies file for table5_btmz.
# This may be replaced when dependencies are built.
