#include "analysis/dist_jobs.h"

#include "analysis/paper_experiments.h"
#include "analysis/run_serialize.h"
#include "dist/wire.h"

namespace hpcs::analysis {

namespace {

/// v2: carries obs window_ns so fabric workers reproduce the windowed
/// series — without it a --dist manifest could never match a local one.
constexpr std::uint32_t kParamsVersion = 2;

RunResult run_table3(SchedMode m, std::uint64_t seed, const obs::ObsConfig& obs) {
  return run_metbench(MetBenchExperiment::paper(), m, /*trace=*/false, seed, obs);
}
RunResult run_table4(SchedMode m, std::uint64_t seed, const obs::ObsConfig& obs) {
  return run_metbenchvar(MetBenchVarExperiment::paper(), m, /*trace=*/false, seed, obs);
}
RunResult run_table5(SchedMode m, std::uint64_t seed, const obs::ObsConfig& obs) {
  return run_btmz(BtMzExperiment::paper(), m, /*trace=*/false, seed, obs);
}
RunResult run_table6(SchedMode m, std::uint64_t seed, const obs::ObsConfig& obs) {
  return run_siesta(SiestaExperiment::paper(), m, /*trace=*/false, seed, obs);
}

}  // namespace

const std::vector<PaperTableJob>& paper_table_jobs() {
  static const std::vector<PaperTableJob> kJobs = {
      {"table3_metbench",
       {SchedMode::kBaselineCfs, SchedMode::kStatic, SchedMode::kUniform,
        SchedMode::kAdaptive},
       &run_table3},
      {"table4_metbenchvar",
       {SchedMode::kBaselineCfs, SchedMode::kStatic, SchedMode::kUniform,
        SchedMode::kAdaptive},
       &run_table4},
      {"table5_btmz",
       {SchedMode::kBaselineCfs, SchedMode::kStatic, SchedMode::kUniform,
        SchedMode::kAdaptive},
       &run_table5},
      {"table6_siesta",
       {SchedMode::kBaselineCfs, SchedMode::kUniform, SchedMode::kAdaptive},
       &run_table6},
  };
  return kJobs;
}

const PaperTableJob* find_paper_table_job(const std::string& name) {
  for (const PaperTableJob& j : paper_table_jobs()) {
    if (name == j.name) return &j;
  }
  return nullptr;
}

std::string encode_job_params(std::uint64_t seed, const obs::ObsConfig& obs) {
  dist::WireWriter w;
  w.u32(kParamsVersion)
      .u64(seed)
      .u8(obs.enabled ? 1 : 0)
      .u64(obs.ring_capacity)
      .i64(obs.window_ns);
  return w.take();
}

bool decode_job_params(const std::string& blob, std::uint64_t& seed, obs::ObsConfig& obs) {
  dist::WireReader r(blob);
  if (r.u32() != kParamsVersion) return false;
  seed = r.u64();
  obs.enabled = r.u8() != 0;
  obs.ring_capacity = r.u64();
  obs.window_ns = r.i64();
  obs.chrome_trace = false;  // trace capture never crosses the fabric
  obs.chrome_stream = false;
  return r.done();
}

void register_paper_table_jobs(dist::JobRegistry& reg) {
  for (const PaperTableJob& j : paper_table_jobs()) {
    const PaperTableJob* job = &j;
    reg.add(job->name, [job](const std::string& params) {
      dist::ResolvedJob out;
      std::uint64_t seed = 1;
      obs::ObsConfig obs;
      if (!decode_job_params(params, seed, obs)) return out;  // count=0: reject
      out.count = job->modes.size();
      out.fn = [job, seed, obs](std::uint32_t index) {
        return serialize_run_result(job->run(job->modes[index], seed, obs));
      };
      return out;
    });
  }
}

}  // namespace hpcs::analysis
