// Ablation: OS-noise sensitivity (the extrinsic imbalance axis, paper §I
// references [9],[22],[24],[28]). Sweeps daemon duty cycle and measures the
// SIESTA improvement split and the Adaptive heuristic's stability on
// MetBench — the "aggressive heuristic over-reacts to noise" claim of §V-A.

#include <cstdio>

#include "analysis/paper_experiments.h"

using namespace hpcs;
using analysis::SchedMode;

int main() {
  std::printf("=== Noise sweep: burst length at fixed 10ms period ===\n\n");

  auto siesta = analysis::SiestaExperiment::paper();
  siesta.workload.microiters = 15000;

  auto mb = analysis::MetBenchExperiment::paper();
  mb.workload.iterations = 15;

  std::printf("%-12s | %-30s | %-30s\n", "burst (us)", "SIESTA base(s) / uniform gain",
              "MetBench adaptive gain / prio chgs");
  for (const int burst_us : {0, 25, 50, 100, 250}) {
    kern::NoiseConfig noise;
    noise.burst = Duration::microseconds(burst_us);
    const bool enable = burst_us > 0;

    analysis::ExperimentConfig sb = analysis::paper_defaults(SchedMode::kBaselineCfs, 1, false);
    sb.noise = noise;
    sb.enable_noise = enable;
    const auto siesta_base = analysis::run_experiment(sb, wl::make_siesta(siesta.workload));
    analysis::ExperimentConfig su = analysis::paper_defaults(SchedMode::kUniform, 1, false);
    su.noise = noise;
    su.enable_noise = enable;
    const auto siesta_uni = analysis::run_experiment(su, wl::make_siesta(siesta.workload));

    analysis::ExperimentConfig ab = analysis::paper_defaults(SchedMode::kBaselineCfs, 1, false);
    ab.noise = noise;
    ab.enable_noise = enable;
    const auto mb_base = analysis::run_experiment(ab, wl::make_metbench(mb.workload));
    analysis::ExperimentConfig aa = analysis::paper_defaults(SchedMode::kAdaptive, 1, false);
    aa.noise = noise;
    aa.enable_noise = enable;
    const auto mb_ada = analysis::run_experiment(aa, wl::make_metbench(mb.workload));

    std::printf("%-12d | %8.2fs / %+6.2f%%           | %+6.2f%% / %lld\n", burst_us,
                siesta_base.exec_time.sec(),
                analysis::improvement_pct(siesta_base, siesta_uni),
                analysis::improvement_pct(mb_base, mb_ada),
                static_cast<long long>(mb_ada.hw_prio_changes));
  }

  std::printf(
      "\nwithout noise the SIESTA gain shrinks toward the pure wakeup-cost delta and\n"
      "Adaptive stops over-reacting on MetBench (priority changes drop to the\n"
      "convergence minimum); heavier noise grows both effects — the paper's §V-D\n"
      "latency story and §V-A Fig. 3d over-reaction story on one axis.\n");
  return 0;
}
