#pragma once
// hpcslint front end, stage 1: source preparation and tokenization.
//
// prepare() blanks comments and literal contents in place (preserving length
// and line structure, so byte offsets still map to lines) while harvesting
// the lint directives that live in comments: `HPCSLINT-ALLOW(rule,...)` and
// the `HPCS_HOT_BEGIN`/`HPCS_HOT_END` region markers. tokenize() then turns
// the blanked code into a flat token stream — identifiers, numbers, and
// punctuation — which is what both the legacy token-pattern rules and the
// recursive-descent parser (parser.h) consume.

#include <cctype>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace hpcslint {

inline bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
inline bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Blanked source plus the per-line directive maps.
struct Prepared {
  std::string code;  ///< same length as the input; only lintable code remains
  std::vector<std::set<std::string, std::less<>>> allow;  ///< per line, 1-based
  std::vector<char> hot;                                  ///< per line, 1-based
  /// `HPCS_HOST_BEGIN` .. `HPCS_HOST_END` region lines (1-based). Host
  /// regions mark deliberate host-environment code — wall clocks, sockets,
  /// env vars — whose findings would otherwise demand one ALLOW per line.
  std::vector<char> host;

  /// Rules a host region blanket-allows: exactly the "host environment
  /// leaking into the simulation" family. Everything else (hot-alloc,
  /// lock-order, ...) still applies inside host regions.
  [[nodiscard]] static bool host_exempt(std::string_view rule) {
    return rule == "wallclock" || rule == "rand" || rule == "det-taint" ||
           rule == "dist-purity";
  }

  /// True when `rule` is ALLOW'd on `line` (trailing or standalone form), or
  /// the line sits in a host region and `rule` is host-exempt.
  [[nodiscard]] bool allowed(const char* rule, int line) const {
    const auto l = static_cast<std::size_t>(line);
    if (l < allow.size() && allow[l].count(rule) != 0) return true;
    return l < host.size() && host[l] != 0 && host_exempt(rule);
  }
};

[[nodiscard]] Prepared prepare(std::string_view src);

enum class TokKind : unsigned char { kIdent, kNumber, kPunct };

struct Tok {
  std::size_t begin = 0;
  std::size_t end = 0;
  int line = 0;
  TokKind kind = TokKind::kIdent;
  std::string_view text;

  [[nodiscard]] bool is(std::string_view s) const { return text == s; }
  [[nodiscard]] bool ident() const { return kind == TokKind::kIdent; }
};

/// Full token stream over blanked code. Identifiers and numbers are single
/// tokens; punctuation comes out one character at a time (the parser matches
/// two-char operators like `::` and `->` by peeking).
[[nodiscard]] std::vector<Tok> tokenize(std::string_view code);

// Char-level context helpers over the blanked code, shared by the legacy
// token-pattern rules.
[[nodiscard]] std::size_t prev_nonspace(std::string_view code, std::size_t pos);
[[nodiscard]] std::size_t next_nonspace(std::string_view code, std::size_t pos);
/// True when the char before `pos` (skipping whitespace) ends a member
/// access: `.` or `->`.
[[nodiscard]] bool preceded_by_member_access(std::string_view code, std::size_t pos);
/// From `open` (position of '<'), return the position just past the matching
/// '>', or npos. Tracks nested <> and () so `map<int, pair<a,b>>` works; a
/// stray comparison operator simply fails the match.
[[nodiscard]] std::size_t match_angles(std::string_view code, std::size_t open);
/// First template argument between '<' at `open` and its matching '>',
/// whitespace-trimmed; empty when the angles don't match.
[[nodiscard]] std::string first_template_arg(std::string_view code, std::size_t open);

}  // namespace hpcslint
