file(REMOVE_RECURSE
  "CMakeFiles/ext_cluster_gang.dir/ext_cluster_gang.cpp.o"
  "CMakeFiles/ext_cluster_gang.dir/ext_cluster_gang.cpp.o.d"
  "ext_cluster_gang"
  "ext_cluster_gang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cluster_gang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
