// Reproduces Figure 5: BT-MZ traces (a window of the 200-iteration run, as
// in the paper: "each trace represents only some iterations").

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace hpcs;
  using analysis::SchedMode;

  bench::init_logging(argc, argv);
  bench::reject_dist_unsupported(argc, argv);
  bench::FigObs fobs("fig5_btmz", bench::parse_obs_options(argc, argv));
  auto e = analysis::BtMzExperiment::paper();
  e.workload.iterations = 60;  // a representative window

  std::printf("=== Figure 5: effect of the proposed solution on BT-MZ ===\n\n");
  for (const auto& [mode, label] :
       {std::pair{SchedMode::kBaselineCfs, "(a) baseline execution"},
        std::pair{SchedMode::kStatic, "(b) static prioritization"},
        std::pair{SchedMode::kUniform, "(c) Uniform prioritization"},
        std::pair{SchedMode::kAdaptive, "(d) Adaptive prioritization"}}) {
    auto r = analysis::run_btmz(e, mode, /*trace=*/true, /*seed=*/1, fobs.cfg());
    bench::print_trace_figure(label, r, 120);
    std::printf("\n");
    fobs.keep(label, std::move(r));
  }
  fobs.finish();
  return 0;
}
