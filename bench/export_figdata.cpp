// Exports the machine-readable data behind every figure: per-iteration
// utilization CSVs, state-interval CSVs, priority timelines and real
// Paraver .prv/.pcf/.row trace sets for the four workloads — into
// ./bench_data/. This is how a downstream user regenerates the paper's
// plots with their own tooling (or opens the traces in wxparaver).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <utility>

#include "analysis/paper_experiments.h"
#include "fig_common.h"
#include "trace/csv.h"
#include "trace/paraver.h"

using namespace hpcs;
using analysis::SchedMode;

namespace {

void export_run(const std::string& dir, const std::string& name,
                const analysis::RunResult& r) {
  std::vector<Pid> pids;
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < r.ranks.size(); ++i) {
    pids.push_back(r.ranks[i].pid);
    labels.push_back("P" + std::to_string(i + 1));
  }
  {
    std::ofstream os(dir + "/" + name + "_iterations.csv");
    trace::write_iterations_csv(os, *r.tracer, pids, labels);
  }
  {
    std::ofstream os(dir + "/" + name + "_intervals.csv");
    trace::write_intervals_csv(os, *r.tracer, pids, labels);
  }
  {
    std::ofstream os(dir + "/" + name + "_priorities.csv");
    trace::write_priorities_csv(os, *r.tracer, pids, labels);
  }
  trace::ParaverJob job;
  job.pids = pids;
  job.labels = labels;
  trace::export_paraver(dir + "/" + name, *r.tracer, job);
  std::printf("  %s: exec %.2fs -> %s/%s_*.csv + .prv/.pcf/.row\n", name.c_str(),
              r.exec_time.sec(), dir.c_str(), name.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_logging(argc, argv);
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  bench::FigObs fobs("export_figdata", bench::parse_obs_options(argc, argv));
  const std::string dir = "bench_data";
  std::filesystem::create_directories(dir);
  std::printf("=== exporting figure data to ./%s ===\n", dir.c_str());

  // The five exports are independent runs: fan them across the parallel
  // engine (--jobs N / HPCS_JOBS) as index-dispatched closures, then write
  // the files in the fixed export order so every byte matches the serial
  // path. With --obs-trace the same runs additionally land in one
  // Chrome-trace / Perfetto file (each export as its own "process").
  auto metbench = analysis::MetBenchExperiment::paper();
  metbench.workload.iterations = 12;
  const auto metbenchvar = analysis::MetBenchVarExperiment::paper();
  auto btmz = analysis::BtMzExperiment::paper();
  btmz.workload.iterations = 60;
  auto siesta = analysis::SiestaExperiment::paper();
  siesta.workload.microiters = 8000;

  struct Export {
    const char* name;
    std::function<analysis::RunResult()> run;
  };
  const std::vector<Export> exports = {
      {"fig3a_metbench_baseline",
       [&] { return analysis::run_metbench(metbench, SchedMode::kBaselineCfs, true, 1, fobs.cfg()); }},
      {"fig3c_metbench_uniform",
       [&] { return analysis::run_metbench(metbench, SchedMode::kUniform, true, 1, fobs.cfg()); }},
      {"fig4c_metbenchvar_uniform",
       [&] { return analysis::run_metbenchvar(metbenchvar, SchedMode::kUniform, true, 1, fobs.cfg()); }},
      {"fig5c_btmz_uniform",
       [&] { return analysis::run_btmz(btmz, SchedMode::kUniform, true, 1, fobs.cfg()); }},
      {"fig6b_siesta_uniform",
       [&] { return analysis::run_siesta(siesta, SchedMode::kUniform, true, 1, fobs.cfg()); }},
  };

  exp::ParallelRunner runner(jobs);
  auto results = runner.map(exports.size(), [&](std::size_t i) { return exports[i].run(); });
  for (std::size_t i = 0; i < exports.size(); ++i) {
    export_run(dir, exports[i].name, results[i]);
    fobs.keep(exports[i].name, std::move(results[i]));
  }
  fobs.finish();
  std::printf("done.\n");
  return 0;
}
