#include "obs/recorder.h"

#include <cctype>
#include <cstdlib>

#include "common/check.h"

namespace hpcs::obs {

bool parse_ring_capacity(const char* text, std::size_t& out, std::string& error) {
  if (text == nullptr || text[0] == '\0') {
    error = "ring capacity is empty; expected a power of two, e.g. 4096";
    return false;
  }
  for (const char* p = text; *p != '\0'; ++p) {
    if (std::isdigit(static_cast<unsigned char>(*p)) == 0) {
      error = std::string("ring capacity '") + text +
              "' is not a number; expected a power of two, e.g. 4096";
      return false;
    }
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  constexpr unsigned long long kMax = 1ULL << 30U;
  if (v < 2 || v > kMax) {
    error = std::string("ring capacity '") + text +
            "' is out of range; expected a power of two in [2, 2^30]";
    return false;
  }
  if ((v & (v - 1)) != 0) {
    error = std::string("ring capacity '") + text +
            "' is not a power of two; the ring wraps with a mask, use e.g. "
            "1024, 4096, 65536";
    return false;
  }
  out = static_cast<std::size_t>(v);
  return true;
}

Recorder::Recorder(const ObsConfig& cfg, int num_cpus) {
  HPCS_CHECK(num_cpus > 0);
  rings_.reserve(static_cast<std::size_t>(num_cpus));
  for (int c = 0; c < num_cpus; ++c) rings_.emplace_back(cfg.ring_capacity);

  // Fixed registration order — this IS the manifest layout. Append only.
  tp_hits_.reserve(kTpCount);
  for (std::size_t i = 0; i < kTpCount; ++i) {
    tp_hits_.push_back(
        &metrics_.counter(std::string("tp.") + tp_name(static_cast<TpId>(i))));
  }
  ring_dropped_ = &metrics_.counter("tp.ring_dropped");

  wakeup_latency_us_ = &metrics_.histogram(
      "kern.wakeup_latency_us", {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});
  runq_depth_ = &metrics_.histogram("kern.runq_depth", {0, 1, 2, 4, 8, 16, 32});

  // End-of-run counters: instrumentation sets them once before snapshot.
  metrics_.counter("kern.ctx_switches");
  metrics_.counter("kern.migrations");
  metrics_.counter("kern.balance_pulls");
  metrics_.counter("sim.events_executed");
  metrics_.counter("sim.eq_scheduled");
  metrics_.counter("sim.eq_dispatched");
  metrics_.counter("sim.eq_resched_inplace");
  metrics_.counter("sim.eq_resched_pending");
  metrics_.counter("sim.eq_stale_dropped");
  metrics_.counter("sim.eq_wheel_armed");
  metrics_.counter("sim.eq_wheel_hits");
  metrics_.counter("sim.eq_wheel_cascades");
  metrics_.counter("sim.eq_wheel_heap_fallbacks");
  metrics_.counter("sim.eq_wheel_batches");
  metrics_.counter("sim.eq_wheel_max_batch");
  metrics_.counter("sim.eq_wheel_level_skips");
  metrics_.counter("hpc.iterations");
  metrics_.counter("hpc.prio_changes");
  metrics_.counter("hpc.resets");
  metrics_.counter("hpc.imbalance_detections");
  metrics_.counter("hpc.heuristic_decisions");
  metrics_.gauge("run.sim_end_s");
}

std::uint64_t Recorder::total_dropped() const {
  std::uint64_t total = 0;
  for (const TraceRing& r : rings_) total += r.dropped();
  return total;
}

MetricsSnapshot Recorder::snapshot(SimTime at) {
  ring_dropped_->set(static_cast<std::int64_t>(total_dropped()));
  metrics_.gauge("run.sim_end_s").set(at.sec());
  return metrics_.snapshot(at);
}

}  // namespace hpcs::obs
