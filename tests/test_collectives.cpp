// Collective-operation tests: allreduce synchronization + cost model, bcast
// root/non-root semantics, reduce root blocking, repeated rounds, PARAVER
// export of the resulting traces.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "simmpi/mpi_world.h"
#include "test_util.h"
#include "trace/paraver.h"

namespace hpcs::test {
namespace {

using mpi::MpiOp;
using mpi::RankProgram;

class OpListProgram final : public RankProgram {
 public:
  explicit OpListProgram(std::vector<MpiOp> ops) : ops_(std::move(ops)) {}
  MpiOp next() override {
    if (i_ >= ops_.size()) return mpi::OpExit{};
    return ops_[i_++];
  }

 private:
  std::vector<MpiOp> ops_;
  std::size_t i_ = 0;
};

std::vector<std::unique_ptr<RankProgram>> programs(
    std::initializer_list<std::vector<MpiOp>> lists) {
  std::vector<std::unique_ptr<RankProgram>> out;
  for (const auto& l : lists) out.push_back(std::make_unique<OpListProgram>(l));
  return out;
}

struct WorldFixture : KernelFixture {
  WorldFixture() { k().start(); }
};

TEST(Collectives, AllreduceSynchronizesLikeBarrier) {
  WorldFixture f;
  // Rank 1 computes 10x longer; rank 0's mark must wait for it.
  mpi::MpiWorld w(f.k(), {},
                  programs({
                      {mpi::OpCompute{1.0e6}, mpi::OpAllreduce{64}, mpi::OpMarkIteration{}},
                      {mpi::OpCompute{10.0e6}, mpi::OpAllreduce{64}, mpi::OpMarkIteration{}},
                  }));
  w.start();
  mpi::run_to_completion(f.sim, w);
  EXPECT_GT(w.marks(0)[0].when, SimTime::zero() + Duration::milliseconds(15));
}

TEST(Collectives, AllreduceRepeatedRounds) {
  WorldFixture f;
  std::vector<MpiOp> ops;
  for (int i = 0; i < 5; ++i) {
    ops.push_back(mpi::OpCompute{1.0e6});
    ops.push_back(mpi::OpAllreduce{8});
    ops.push_back(mpi::OpMarkIteration{});
  }
  mpi::MpiWorld w(f.k(), {}, programs({ops, ops, ops}));
  w.start();
  mpi::run_to_completion(f.sim, w);
  for (int r = 0; r < 3; ++r) EXPECT_EQ(w.marks(r).size(), 5u);
}

TEST(Collectives, BcastRootDoesNotBlock) {
  WorldFixture f;
  // The root computes, broadcasts, computes again without waiting; the
  // receiver blocks until delivery.
  mpi::MpiWorld w(f.k(), {},
                  programs({
                      {mpi::OpCompute{1.0e6}, mpi::OpBcast{0, 4096}, mpi::OpCompute{1.0e6},
                       mpi::OpMarkIteration{}},
                      {mpi::OpBcast{0, 4096}, mpi::OpMarkIteration{}},
                  }));
  w.start();
  mpi::run_to_completion(f.sim, w);
  // Receiver's mark: after root's first compute (~1.54 ms) + tree latency.
  EXPECT_GT(w.marks(1)[0].when, SimTime::zero() + Duration::microseconds(1500));
  // Root never waited: its second compute followed immediately (its mark is
  // about two compute segments in).
  EXPECT_LT(w.marks(0)[0].when, SimTime::zero() + Duration::milliseconds(4));
}

TEST(Collectives, BcastLateJoinerGetsBufferedRound) {
  WorldFixture f;
  // The receiver reaches the bcast long after the root posted it.
  mpi::MpiWorld w(f.k(), {},
                  programs({
                      {mpi::OpBcast{0, 64}},
                      {mpi::OpCompute{20.0e6}, mpi::OpBcast{0, 64}, mpi::OpMarkIteration{}},
                  }));
  w.start();
  mpi::run_to_completion(f.sim, w);
  // No deadlock, and the late receiver barely waited beyond its compute.
  EXPECT_LT(w.marks(1)[0].when, SimTime::zero() + Duration::milliseconds(32));
}

TEST(Collectives, ReduceRootWaitsForContributions) {
  WorldFixture f;
  mpi::MpiWorld w(f.k(), {},
                  programs({
                      {mpi::OpReduce{0, 64}, mpi::OpMarkIteration{}},
                      {mpi::OpCompute{8.0e6}, mpi::OpReduce{0, 64}},
                      {mpi::OpCompute{2.0e6}, mpi::OpReduce{0, 64}},
                  }));
  w.start();
  mpi::run_to_completion(f.sim, w);
  // The root's mark waits for the slowest contributor (~12.3 ms at 0.65).
  EXPECT_GT(w.marks(0)[0].when, SimTime::zero() + Duration::milliseconds(11));
}

TEST(Collectives, ReduceNonRootDoesNotBlock) {
  WorldFixture f;
  mpi::MpiWorld w(f.k(), {},
                  programs({
                      {mpi::OpCompute{20.0e6}, mpi::OpReduce{0, 64}},
                      {mpi::OpReduce{0, 64}, mpi::OpMarkIteration{}, mpi::OpCompute{1.0e6},
                       mpi::OpMarkIteration{}},
                  }));
  w.start();
  mpi::run_to_completion(f.sim, w);
  // Rank 1 contributed and moved on immediately.
  EXPECT_LT(w.marks(1)[0].when, SimTime::zero() + Duration::milliseconds(1));
}

TEST(Paraver, ExportFormats) {
  WorldFixture f;
  auto tracer = std::make_unique<trace::Tracer>();
  f.k().set_trace(tracer.get());
  mpi::MpiWorld w(f.k(), {},
                  programs({
                      {mpi::OpCompute{1.0e6}, mpi::OpBarrier{}},
                      {mpi::OpCompute{2.0e6}, mpi::OpBarrier{}},
                  }));
  w.start();
  mpi::run_to_completion(f.sim, w);
  tracer->finalize(w.finish_time());

  trace::ParaverJob job;
  job.pids = {w.task(0).pid(), w.task(1).pid()};
  job.labels = {"rank0", "rank1"};
  job.cpus = 4;

  std::ostringstream prv;
  trace::write_prv(prv, *tracer, job);
  const std::string s = prv.str();
  EXPECT_EQ(s.rfind("#Paraver", 0), 0u) << "header must lead";
  EXPECT_NE(s.find(":1(4):1:2("), std::string::npos);  // 1 node of 4 cpus, 1 appl, 2 tasks
  EXPECT_NE(s.find(":1\n"), std::string::npos);     // running state records
  EXPECT_NE(s.find(":6\n"), std::string::npos);     // waiting state records

  std::ostringstream pcf;
  trace::write_pcf(pcf);
  EXPECT_NE(pcf.str().find("STATES"), std::string::npos);
  EXPECT_NE(pcf.str().find("Waiting a message"), std::string::npos);

  std::ostringstream row;
  trace::write_row(row, job);
  EXPECT_NE(row.str().find("LEVEL TASK SIZE 2"), std::string::npos);
  EXPECT_NE(row.str().find("rank1"), std::string::npos);
}

TEST(Paraver, ExportToFiles) {
  WorldFixture f;
  auto tracer = std::make_unique<trace::Tracer>();
  f.k().set_trace(tracer.get());
  mpi::MpiWorld w(f.k(), {}, programs({{mpi::OpCompute{1.0e6}}}));
  w.start();
  mpi::run_to_completion(f.sim, w);
  tracer->finalize(w.finish_time());
  trace::ParaverJob job;
  job.pids = {w.task(0).pid()};
  job.labels = {"rank0"};
  EXPECT_TRUE(trace::export_paraver("/tmp/hpcs_prv_test", *tracer, job));
  std::ifstream check("/tmp/hpcs_prv_test.prv");
  EXPECT_TRUE(check.good());
}

}  // namespace
}  // namespace hpcs::test
