#pragma once
// --dist glue for the table drivers: the same binary is a local sweep, a
// fabric coordinator, or a fabric worker depending on one flag (or the
// HPCS_DIST environment variable):
//
//   table3_metbench                          local (serial or --jobs N)
//   table3_metbench --dist coordinator:7070  shard modes across TCP workers
//   table3_metbench --dist worker 127.0.0.1:7070   serve a coordinator
//   table3_metbench --dist coordinator:0 --dist-port-file p.txt
//                                            ephemeral port, written to p.txt
//
// A worker serves ANY registered paper-table job — the coordinator's
// HELLO_ACK names the job — so `table3_metbench --dist worker ...` happily
// computes rows for table6_siesta (hpcs-distd is the same loop without the
// table printing code).
//
// Determinism: rows are serialized RunResults (bit-exact doubles, see
// analysis/run_serialize.h) committed into mode-order slots, so the driver's
// printed table, BENCH_*.json and MANIFEST_*.json are byte-identical to a
// local run for any worker count or kill schedule. The fabric's own
// counters go to MANIFEST_<name>.fabric.host.json — a host-side sidecar,
// like the engine's .host.json, never part of deterministic output.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "analysis/dist_jobs.h"
#include "analysis/result_cache_key.h"
#include "analysis/run_serialize.h"
#include "bench_common.h"
#include "cache/store.h"
#include "common/check.h"
#include "dist/coordinator.h"
#include "dist/host/dist_options.h"
#include "dist/host/host_clock.h"
#include "dist/host/service.h"
#include "dist/host/tcp_transport.h"
#include "dist/worker.h"

namespace hpcs::bench {

struct DistContext {
  dist::host::DistOptions opt;
  /// Content-addressed result cache (--cache-dir / HPCS_CACHE_DIR). Works in
  /// local and coordinator modes: hits replay stored rows, misses compute
  /// then persist. Empty dir = off.
  cache::CacheConfig cache;
  [[nodiscard]] bool off() const {
    return opt.mode == dist::host::DistOptions::Mode::kOff;
  }
  [[nodiscard]] bool coordinator() const {
    return opt.mode == dist::host::DistOptions::Mode::kCoordinator;
  }
  [[nodiscard]] bool worker() const {
    return opt.mode == dist::host::DistOptions::Mode::kWorker;
  }
  [[nodiscard]] bool cache_on() const { return !cache.dir.empty(); }
};

/// Parse HPCS_DIST, then --dist SPEC / --dist=SPEC (flag wins) plus
/// --dist-port-file PATH, --cache-dir DIR (HPCS_CACHE_DIR) and
/// --cache-budget BYTES. Exits with code 2 on a malformed spec — a driver
/// silently running local when the user asked for a fabric is the worst
/// failure mode.
inline DistContext parse_dist_options(int argc, char** argv) {
  DistContext ctx;
  std::string err;
  if (!dist::host::apply_dist_env(ctx.opt, err)) {
    std::fprintf(stderr, "error: HPCS_DIST: %s\n", err.c_str());
    std::exit(2);
  }
  if (const char* env = std::getenv("HPCS_CACHE_DIR")) ctx.cache.dir = env;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    std::string spec;
    if (std::strcmp(a, "--dist") == 0 && i + 1 < argc) {
      spec = argv[++i];
      // Two-token worker form: --dist worker HOST:PORT
      if (spec == "worker" && i + 1 < argc) spec += std::string(" ") + argv[++i];
    } else if (std::strncmp(a, "--dist=", 7) == 0) {
      spec = a + 7;
    } else if (std::strcmp(a, "--dist-port-file") == 0 && i + 1 < argc) {
      ctx.opt.port_file = argv[++i];
      continue;
    } else if (std::strncmp(a, "--dist-port-file=", 17) == 0) {
      ctx.opt.port_file = a + 17;
      continue;
    } else if (std::strcmp(a, "--cache-dir") == 0 && i + 1 < argc) {
      ctx.cache.dir = argv[++i];
      continue;
    } else if (std::strncmp(a, "--cache-dir=", 12) == 0) {
      ctx.cache.dir = a + 12;
      continue;
    } else if (std::strcmp(a, "--cache-budget") == 0 && i + 1 < argc) {
      const long long v = std::atoll(argv[++i]);
      if (v < 1) {
        std::fprintf(stderr, "error: --cache-budget wants a positive byte count\n");
        std::exit(2);
      }
      ctx.cache.budget_bytes = static_cast<std::uint64_t>(v);
      continue;
    } else {
      continue;
    }
    if (!dist::host::parse_dist_spec(spec, ctx.opt, err)) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      std::exit(2);
    }
  }
  return ctx;
}

/// Refuse flag combinations that cannot keep their promises under --dist or
/// --cache-dir: trace capture produces host-side objects that neither cross
/// the fabric nor survive the cache's serialize round-trip, and a worker
/// computes rows for someone else's sweep — it has no results to cache.
inline void reject_dist_incompatible(const DistContext& ctx, const ObsOptions& obs) {
  if ((!ctx.off() || ctx.cache_on()) && !obs.trace_path.empty()) {
    std::fprintf(stderr,
                 "error: --obs-trace requires a plain local run (traces do not "
                 "serialize); drop --dist/--cache-dir or --obs-trace\n");
    std::exit(2);
  }
  if ((!ctx.off() || ctx.cache_on()) && !obs.ring_dump_path.empty()) {
    std::fprintf(stderr,
                 "error: --obs-ring-dump requires a plain local run (rings do not "
                 "serialize); drop --dist/--cache-dir or --obs-ring-dump\n");
    std::exit(2);
  }
  if (ctx.worker() && ctx.cache_on()) {
    std::fprintf(stderr,
                 "error: --cache-dir is a coordinator/local concern; a worker "
                 "holds no sweep of its own to cache\n");
    std::exit(2);
  }
}

/// Worker mode: serve the fabric until BYE, then exit the process (0 clean,
/// 1 failed). No-op in any other mode.
// HPCS_HOST_BEGIN — process identity and the connect/serve loop.
inline void maybe_serve_dist_worker(const DistContext& ctx) {
  if (!ctx.worker()) return;
  std::string err;
  auto conn = dist::host::tcp_connect(ctx.opt.hostname, ctx.opt.port, err);
  if (conn == nullptr) {
    std::fprintf(stderr, "error: --dist worker: %s\n", err.c_str());
    std::exit(1);
  }
  dist::JobRegistry reg;
  analysis::register_paper_table_jobs(reg);
  dist::WorkerConfig wcfg;
  wcfg.name = "pid" + std::to_string(::getpid());
  wcfg.capacity = ctx.opt.capacity;
  dist::WorkerSession session(wcfg, reg, std::move(conn));
  if (!dist::host::serve_worker(session, err)) {
    std::fprintf(stderr, "error: dist worker failed: %s\n", err.c_str());
    std::exit(1);
  }
  std::printf("dist worker done: %lld rows, %lld shards\n",
              static_cast<long long>(session.rows_sent()),
              static_cast<long long>(session.shards_done()));
  std::exit(0);
}
// HPCS_HOST_END

/// MANIFEST_<name>.fabric.host.json: the fabric's host-side counters plus,
/// since v2, the per-shard spans and (when --obs is on) the coordinator's
/// fabric-tracepoint hit counts; since v3, rows_seeded and (when a cache is
/// attached) the result-cache counters (schema hpcs-dist-fabric-v3). The CI
/// dist-smoke job asserts on these.
inline void write_fabric_sidecar(const char* name, std::uint16_t port,
                                 const dist::FabricStats& s,
                                 const std::vector<dist::ShardSpan>& spans,
                                 obs::Recorder* rec = nullptr,
                                 const cache::CacheStats* cstats = nullptr) {
  JsonObject root;
  root.field("schema", "hpcs-dist-fabric-v3").field("bench", name).field("port", port);
  JsonObject fabric;
  fabric.field("workers_connected", s.workers_connected)
      .field("workers_rejected", s.workers_rejected)
      .field("workers_dead", s.workers_dead)
      .field("shards_total", s.shards_total)
      .field("shards_assigned", s.shards_assigned)
      .field("shards_retried", s.shards_retried)
      .field("shards_stolen", s.shards_stolen)
      .field("shards_local", s.shards_local)
      .field("rows_remote", s.rows_remote)
      .field("rows_local", s.rows_local)
      .field("rows_seeded", s.rows_seeded)
      .field("rows_stale", s.rows_stale)
      .field("frames_bad", s.frames_bad)
      .field("fell_back_local", s.fell_back_local ? 1 : 0);
  root.object("fabric", fabric);
  if (cstats != nullptr) {
    JsonObject cj;
    cj.field("hits", cstats->hits)
        .field("misses", cstats->misses)
        .field("stores", cstats->stores)
        .field("evictions", cstats->evictions)
        .field("corrupt", cstats->corrupt);
    root.object("cache", cj);
  }
  std::vector<JsonObject> span_objs;
  for (const dist::ShardSpan& sp : spans) {
    JsonObject o;
    o.field("shard", static_cast<std::int64_t>(sp.shard))
        .field("first_assign_ms", sp.first_assign_ms)
        .field("done_ms", sp.done_ms)
        .field("attempts", sp.attempts)
        .field("done_by", sp.done_by);
    span_objs.push_back(std::move(o));
  }
  root.array("spans", span_objs);
  if (rec != nullptr) {
    // Fabric tracepoint hit counts: the coordinator's view of the run
    // (assign/row/retry/steal/heartbeat). Snapshot at sidecar-write time.
    JsonObject tps;
    obs::MetricsRegistry& m = rec->metrics();
    for (const obs::TpId id :
         {obs::TpId::kTpDistAssign, obs::TpId::kTpDistRow, obs::TpId::kTpDistRetry,
          obs::TpId::kTpDistSteal, obs::TpId::kTpDistHeartbeat}) {
      tps.field(obs::tp_name(id), m.counter(std::string("tp.") + obs::tp_name(id)).value());
    }
    root.object("tracepoints", tps);
  }
  write_json_file(std::string("MANIFEST_") + name + ".fabric.host.json", root);
}

/// Local sweep through the result cache: probe every point, compute only
/// the misses (still honoring --jobs), persist what was computed. Every row
/// — hit or miss — takes the same serialize->deserialize round trip the
/// fabric uses, so the driver's output is byte-identical to a plain local
/// run whatever the hit pattern. Cache counters go to the v3 sidecar.
inline std::vector<analysis::RunResult> run_modes_cached(
    const DistContext& ctx, const char* name, unsigned jobs,
    const std::vector<analysis::SchedMode>& modes,
    const std::function<analysis::RunResult(analysis::SchedMode)>& run,
    exp::EngineStats* host_stats, std::uint64_t seed, const ObsOptions& obs) {
  const std::string params = analysis::encode_job_params(seed, obs.cfg);
  std::vector<std::string> rows(modes.size());
  std::vector<bool> seeded(modes.size(), false);

  // HPCS_HOST_BEGIN — cache probes (file IO at the ResultCache leaves).
  cache::ResultCache store(ctx.cache);
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const std::uint64_t key =
        analysis::result_cache_key(name, params, static_cast<std::uint32_t>(i));
    seeded[i] = store.get(key, rows[i]);
  }
  // HPCS_HOST_END

  std::vector<analysis::SchedMode> missing;
  std::vector<std::size_t> missing_at;
  for (std::size_t i = 0; i < modes.size(); ++i) {
    if (!seeded[i]) {
      missing.push_back(modes[i]);
      missing_at.push_back(i);
    }
  }
  const std::vector<analysis::RunResult> fresh = run_modes(jobs, missing, run, host_stats);
  for (std::size_t m = 0; m < missing_at.size(); ++m) {
    rows[missing_at[m]] = analysis::serialize_run_result(fresh[m]);
  }

  // HPCS_HOST_BEGIN — persist the freshly computed rows, report, sidecar.
  for (std::size_t i = 0; i < modes.size(); ++i) {
    if (seeded[i]) continue;
    store.put(analysis::result_cache_key(name, params, static_cast<std::uint32_t>(i)),
              rows[i]);
  }
  const cache::CacheStats& cs = store.stats();
  std::fprintf(stderr, "cache: %lld hits, %lld misses, %lld stores (%s)\n",
               static_cast<long long>(cs.hits), static_cast<long long>(cs.misses),
               static_cast<long long>(cs.stores), ctx.cache.dir.c_str());
  dist::FabricStats s;
  s.rows_seeded = cs.hits;
  s.rows_local = static_cast<std::int64_t>(missing.size());
  write_fabric_sidecar(name, 0, s, {}, nullptr, &cs);
  // HPCS_HOST_END

  std::vector<analysis::RunResult> results;
  results.reserve(rows.size());
  for (const std::string& row : rows) {
    analysis::RunResult r;
    HPCS_CHECK_MSG(analysis::deserialize_run_result(row, r),
                   "cache returned a malformed row");
    results.push_back(std::move(r));
  }
  return results;
}

/// run_modes with a fabric in front: coordinator mode shards the sweep over
/// TCP workers (degrading to local execution as needed), seeding shards from
/// the result cache when one is attached; local mode goes through
/// run_modes_cached (with a cache) or plain run_modes. Results come back in
/// mode order either way.
inline std::vector<analysis::RunResult> run_modes_dist(
    const DistContext& ctx, const char* name, unsigned jobs,
    const std::vector<analysis::SchedMode>& modes,
    const std::function<analysis::RunResult(analysis::SchedMode)>& run,
    exp::EngineStats* host_stats, std::uint64_t seed, const ObsOptions& obs) {
  if (!ctx.coordinator() && !ctx.cache_on()) return run_modes(jobs, modes, run, host_stats);

  const analysis::PaperTableJob* job = analysis::find_paper_table_job(name);
  HPCS_CHECK_MSG(job != nullptr, "driver name missing from paper_table_jobs()");
  HPCS_CHECK_MSG(job->modes == modes, "driver mode list drifted from dist_jobs.cpp");

  if (!ctx.coordinator()) {
    return run_modes_cached(ctx, name, jobs, modes, run, host_stats, seed, obs);
  }

  dist::CoordinatorConfig cfg;
  cfg.job = name;
  cfg.params = analysis::encode_job_params(seed, obs.cfg);
  cfg.shard_size = 1;  // one mode per shard: max stealability
  cfg.local_jobs = jobs;
  // Host-run timeouts are generous: a point is a whole table run and
  // sanitizer builds are 10-20x slower.
  cfg.connect_wait_ms = 15000;
  cfg.liveness_timeout_ms = 60000;
  cfg.shard_timeout_ms = 300000;
  dist::Coordinator coord(cfg, modes.size(), [job, seed, &obs](std::uint32_t i) {
    return analysis::serialize_run_result(job->run(job->modes[i], seed, obs.cfg));
  });

  // Fabric-side recorder: assign/row/retry/steal/heartbeat tracepoints from
  // the coordinator's perspective, dumped into the host sidecar below. The
  // per-run Recorders live inside each point's run_experiment; this one only
  // watches the fabric itself.
  std::unique_ptr<obs::Recorder> fabric_rec;
  if (obs.cfg.enabled) {
    obs::ObsConfig fcfg = obs.cfg;
    fcfg.window_ns = 0;  // windows are sim-time; the fabric has none
    fabric_rec = std::make_unique<obs::Recorder>(fcfg, /*num_cpus=*/1);
    coord.set_obs(fabric_rec.get());
  }

  // HPCS_HOST_BEGIN — listener setup + the wall-clock service loop.
  std::string err;
  std::uint16_t bound = 0;
  auto listener = dist::host::tcp_listen(ctx.opt.port, bound, err);
  if (listener == nullptr) {
    std::fprintf(stderr, "error: --dist coordinator: %s\n", err.c_str());
    std::exit(1);
  }
  if (!ctx.opt.port_file.empty()) {
    std::FILE* f = std::fopen(ctx.opt.port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write --dist-port-file %s\n",
                   ctx.opt.port_file.c_str());
      std::exit(1);
    }
    std::fprintf(f, "%u\n", static_cast<unsigned>(bound));
    std::fclose(f);
  }
  std::fprintf(stderr, "dist: coordinating %zu points on 127.0.0.1:%u\n", modes.size(),
               static_cast<unsigned>(bound));
  // Seed shards from the result cache before serving: a hit completes its
  // shard outright (never assigned, never computed), and rows the fabric
  // does compute get persisted afterwards for the next run.
  cache::ResultCache cache_store(ctx.cache);
  std::vector<bool> seeded(modes.size(), false);
  if (ctx.cache_on()) {
    const std::string& params = cfg.params;
    for (std::size_t i = 0; i < modes.size(); ++i) {
      std::string payload;
      const std::uint64_t key =
          analysis::result_cache_key(name, params, static_cast<std::uint32_t>(i));
      if (cache_store.get(key, payload)) {
        coord.seed_row(static_cast<std::uint32_t>(i), std::move(payload),
                       dist::host::now_ms());
        seeded[i] = true;
      }
    }
  }
  std::vector<std::string> rows = dist::host::serve_coordinator(coord, *listener);
  if (ctx.cache_on()) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (seeded[i]) continue;
      cache_store.put(
          analysis::result_cache_key(name, cfg.params, static_cast<std::uint32_t>(i)),
          rows[i]);
    }
  }
  // HPCS_HOST_END

  const dist::FabricStats& s = coord.stats();
  std::fprintf(stderr,
               "dist: done — %lld workers, %lld rows remote, %lld local, "
               "%lld retried, %lld stolen, %lld stale\n",
               static_cast<long long>(s.workers_connected),
               static_cast<long long>(s.rows_remote),
               static_cast<long long>(s.rows_local),
               static_cast<long long>(s.shards_retried),
               static_cast<long long>(s.shards_stolen),
               static_cast<long long>(s.rows_stale));
  write_fabric_sidecar(name, bound, s, coord.shard_spans(), fabric_rec.get(),
                       ctx.cache_on() ? &cache_store.stats() : nullptr);

  std::vector<analysis::RunResult> results;
  results.reserve(rows.size());
  for (const std::string& row : rows) {
    analysis::RunResult r;
    HPCS_CHECK_MSG(analysis::deserialize_run_result(row, r),
                   "fabric returned a malformed row");
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace hpcs::bench
