# Empty dependencies file for table3_metbench.
# This may be replaced when dependencies are built.
