// Scheduler-core basics: task lifecycle, compute execution at machine speed,
// sleep/wakeup, accounting conservation, hardware-priority application at
// context switches, SMT speed coupling between siblings.

#include <gtest/gtest.h>

#include "test_util.h"

namespace hpcs::test {
namespace {

using kern::Policy;
using kern::TaskState;

TEST(KernelBasic, SingleTaskComputesAndExits) {
  KernelFixture f;
  f.k().start();
  // 10 ms of work on CPU 0; the sibling is idle, the spin-idle model keeps
  // contention at medium priority, so speed is 0.65.
  auto& t = f.k().create_task("worker", std::make_unique<ScriptBody>(std::vector<Act>{
                                             Act::compute(10.0e6)}),
                              Policy::kNormal, 0);
  f.k().start_task(t);
  f.run_until(Duration::milliseconds(100));
  EXPECT_TRUE(t.exited());
  // Wall time = work / 0.65 (+ wakeup cost + rounding).
  const double expected_ms = 10.0 / 0.65;
  EXPECT_NEAR((t.exit_time - t.created).ms(), expected_ms, 0.5);
  EXPECT_NEAR(t.t_run.ms(), expected_ms, 0.5);
}

TEST(KernelBasic, TrueSnoozeRunsAtFullSpeed) {
  kern::KernelConfig cfg;
  cfg.throughput.idle_contention_prio = -1;  // sibling context really off
  KernelFixture f(cfg);
  f.k().start();
  auto& t = f.k().create_task("worker", std::make_unique<ScriptBody>(std::vector<Act>{
                                             Act::compute(10.0e6)}),
                              Policy::kNormal, 0);
  f.k().start_task(t);
  f.run_until(Duration::milliseconds(100));
  EXPECT_TRUE(t.exited());
  EXPECT_NEAR(t.t_run.ms(), 10.0, 0.2);  // ST speed 1.0
}

TEST(KernelBasic, SleepWakesAfterDuration) {
  KernelFixture f;
  f.k().start();
  auto& t = f.k().create_task(
      "sleeper",
      std::make_unique<ScriptBody>(std::vector<Act>{
          Act::compute(1.0e6), Act::sleep(Duration::milliseconds(20)), Act::compute(1.0e6)}),
      Policy::kNormal, 0);
  f.k().start_task(t);
  f.run_until(Duration::milliseconds(100));
  EXPECT_TRUE(t.exited());
  EXPECT_GE(t.t_sleep, Duration::milliseconds(20));
  EXPECT_LT(t.t_sleep, Duration::milliseconds(25));
  EXPECT_EQ(t.nr_wakeups, 2);  // initial start + timer wake
}

TEST(KernelBasic, AccountingConservation) {
  KernelFixture f;
  f.k().start();
  auto& t = f.k().create_task(
      "worker",
      std::make_unique<ScriptBody>(std::vector<Act>{
          Act::compute(5.0e6), Act::sleep(Duration::milliseconds(10)), Act::compute(5.0e6)}),
      Policy::kNormal, 0);
  f.k().start_task(t);
  f.run_until(Duration::milliseconds(200));
  ASSERT_TRUE(t.exited());
  const Duration lifetime = t.exit_time - t.created;
  const Duration accounted = t.t_run + t.t_ready + t.t_sleep;
  EXPECT_NEAR(accounted.ns(), lifetime.ns(), 1000.0)
      << "run+ready+sleep must cover the task lifetime";
}

TEST(KernelBasic, SmtSiblingsShareCoreSpeed) {
  KernelFixture f;
  f.k().start();
  // Two equal hogs on the two contexts of core 0: each runs at 0.65, so
  // 13 ms of work takes ~20 ms wall.
  auto& a = f.k().create_task("a", std::make_unique<ScriptBody>(std::vector<Act>{
                                        Act::compute(13.0e6)}),
                              Policy::kNormal, 0);
  auto& b = f.k().create_task("b", std::make_unique<ScriptBody>(std::vector<Act>{
                                        Act::compute(13.0e6)}),
                              Policy::kNormal, 1);
  f.k().start_task(a);
  f.k().start_task(b);
  f.run_until(Duration::milliseconds(100));
  ASSERT_TRUE(a.exited() && b.exited());
  EXPECT_NEAR((a.exit_time - a.created).ms(), 20.0, 1.0);
  EXPECT_NEAR((b.exit_time - b.created).ms(), 20.0, 1.0);
}

TEST(KernelBasic, HardwarePriorityBiasesSiblingSpeeds) {
  KernelFixture f;
  f.k().start();
  auto& fast = f.k().create_task("fast", std::make_unique<ScriptBody>(std::vector<Act>{
                                              Act::compute(13.0e6)}),
                                 Policy::kNormal, 0);
  auto& slow = f.k().create_task("slow", std::make_unique<ScriptBody>(std::vector<Act>{
                                              Act::compute(13.0e6)}),
                                 Policy::kNormal, 1);
  f.k().request_hw_prio(fast, p5::HwPrio::kHigh);  // 6 vs 4: 0.75 vs ~0.187
  f.k().start_task(fast);
  f.k().start_task(slow);
  f.run_until(Duration::milliseconds(400));
  ASSERT_TRUE(fast.exited() && slow.exited());
  const double fast_ms = (fast.exit_time - fast.created).ms();
  EXPECT_NEAR(fast_ms, 13.0 / 0.76, 1.0);
  // After `fast` exits, `slow` runs against the spinning idle at its own
  // priority 4 vs idle 4 -> 0.65; its total time reflects both phases.
  EXPECT_GT((slow.exit_time - slow.created).ms(), fast_ms + 5.0);
}

TEST(KernelBasic, PriorityChangeMidRunReshapesCompletion) {
  KernelFixture f;
  f.k().start();
  auto& a = f.k().create_task("a", std::make_unique<ScriptBody>(std::vector<Act>{
                                        Act::compute(13.0e6)}),
                              Policy::kNormal, 0);
  auto& b = f.k().create_task("b", std::make_unique<ScriptBody>(std::vector<Act>{
                                        Act::compute(13.0e6)}),
                              Policy::kNormal, 1);
  f.k().start_task(a);
  f.k().start_task(b);
  // Mid-flight, boost task a.
  f.sim.schedule_at(SimTime::zero() + Duration::milliseconds(10), [&] {
    f.k().request_hw_prio(a, p5::HwPrio::kHigh);
  });
  f.run_until(Duration::milliseconds(400));
  ASSERT_TRUE(a.exited() && b.exited());
  // First 10 ms at 0.65 (6.5e6 done), remaining 6.5e6 at 0.75 -> ~8.67 ms.
  EXPECT_NEAR((a.exit_time - a.created).ms(), 10.0 + 6.5 / 0.76, 1.0);
  EXPECT_GT((b.exit_time - b.created).ms(), 25.0);
}

TEST(KernelBasic, ContextSwitchRestoresHwPriority) {
  KernelFixture f;
  f.k().start();
  auto& hog = f.k().create_task("hog", std::make_unique<HogBody>(), Policy::kNormal, 0);
  auto& boosted = f.k().create_task("boosted", std::make_unique<PeriodicBody>(
                                                    0.5e6, Duration::milliseconds(5)),
                                    Policy::kNormal, 0);
  f.k().request_hw_prio(boosted, p5::HwPrio::kMediumHigh);
  f.k().start_task(hog);
  f.k().start_task(boosted);
  f.run_until(Duration::milliseconds(50));
  // While the hog runs the context priority must be 4; the ISA write count
  // grows as the two tasks alternate.
  EXPECT_GT(f.k().isa().writes(), 4);
  EXPECT_FALSE(hog.exited());
}

TEST(KernelBasic, WakeupLatencyMeasured) {
  KernelFixture f;
  f.k().start();
  auto& t = f.k().create_task("sleeper", std::make_unique<PeriodicBody>(
                                              1.0e6, Duration::milliseconds(5)),
                              Policy::kNormal, 0);
  f.k().start_task(t);
  f.run_until(Duration::milliseconds(100));
  EXPECT_GT(t.wakeup_latency_us.count(), 5);
  // Idle CPU: latency is just the CFS wakeup cost (25 us default).
  EXPECT_NEAR(t.wakeup_latency_us.mean(), 25.0, 5.0);
}

TEST(KernelBasic, BodyApiMisuseIsFatal) {
  KernelFixture f;
  f.k().start();
  auto& t = f.k().create_task("t", std::make_unique<HogBody>(), Policy::kNormal, 0);
  // Calling the body API on a sleeping task (outside step()) aborts.
  EXPECT_DEATH(f.k().body_compute(t, 100.0), "body API");
}

TEST(KernelBasic, CreateTaskValidatesArguments) {
  KernelFixture f;
  f.k().start();
  EXPECT_DEATH(f.k().create_task("bad", std::make_unique<HogBody>(), Policy::kNormal, 99),
               "");
  // SCHED_HPC without the HPC class registered is rejected by the syscall.
  auto& t = f.k().create_task("t", std::make_unique<HogBody>(), Policy::kNormal, 0);
  EXPECT_FALSE(f.k().sched_setscheduler(t, Policy::kHpcRr));
}

TEST(KernelBasic, ExitedTaskStatsFrozen) {
  KernelFixture f;
  f.k().start();
  auto& t = f.k().create_task("t", std::make_unique<ScriptBody>(std::vector<Act>{
                                        Act::compute(1.0e6)}),
                              Policy::kNormal, 0);
  f.k().start_task(t);
  f.run_until(Duration::milliseconds(10));
  ASSERT_TRUE(t.exited());
  const Duration run_at_exit = t.t_run;
  f.run_until(Duration::milliseconds(200));
  EXPECT_EQ(t.t_run, run_at_exit);
  EXPECT_EQ(t.state(), TaskState::kExited);
}

}  // namespace
}  // namespace hpcs::test
