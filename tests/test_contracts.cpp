// Compile-time contract checks introduced by the static-analysis layer:
// the SchedClassImpl concept (kernel/sched_class.h) and the workload-factory
// purity contract (exp/pure_function.h). Most of the value here is in
// static_asserts — the contracts exist so violations fail the build — but
// the runtime behaviour of PureFunction is exercised too.

#include <memory>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/sweep.h"
#include "cluster/gang.h"
#include "exp/pure_function.h"
#include "hpcsched/hpc_class.h"
#include "kernel/cfs_class.h"
#include "kernel/idle_class.h"
#include "kernel/o1_class.h"
#include "kernel/rt_class.h"
#include "kernel/sched_class.h"
#include "workloads/metbench.h"

namespace {

using hpcs::exp::PureFunction;

// ---------------------------------------------------------------------------
// SchedClassImpl: every in-tree class satisfies it; broken shapes don't.

static_assert(hpcs::kern::SchedClassImpl<hpcs::kern::CfsClass>);
static_assert(hpcs::kern::SchedClassImpl<hpcs::kern::O1Class>);
static_assert(hpcs::kern::SchedClassImpl<hpcs::kern::RtClass>);
static_assert(hpcs::kern::SchedClassImpl<hpcs::kern::IdleClass>);
static_assert(hpcs::kern::SchedClassImpl<hpcs::hpc::HpcSchedClass>);

// The abstract interface is not itself an implementation.
static_assert(!hpcs::kern::SchedClassImpl<hpcs::kern::SchedClass>);

// A class that forgets a hook stays abstract and is rejected.
class ForgotPickNext : public hpcs::kern::SchedClass {
 public:
  [[nodiscard]] const char* name() const override { return "broken"; }
  [[nodiscard]] bool owns(hpcs::kern::Policy) const override { return false; }
  [[nodiscard]] std::unique_ptr<hpcs::kern::ClassRq> make_rq() const override {
    return nullptr;
  }
  void enqueue(hpcs::kern::Kernel&, hpcs::kern::Rq&, hpcs::kern::Task&, bool) override {}
  void dequeue(hpcs::kern::Kernel&, hpcs::kern::Rq&, hpcs::kern::Task&, bool) override {}
  // pick_next missing
  void put_prev(hpcs::kern::Kernel&, hpcs::kern::Rq&, hpcs::kern::Task&) override {}
  void task_tick(hpcs::kern::Kernel&, hpcs::kern::Rq&, hpcs::kern::Task&) override {}
  [[nodiscard]] bool wakeup_preempt(hpcs::kern::Kernel&, hpcs::kern::Rq&, hpcs::kern::Task&,
                                    hpcs::kern::Task&) override {
    return false;
  }
};
static_assert(!hpcs::kern::SchedClassImpl<ForgotPickNext>);

// A standalone type with hook-shaped methods but no SchedClass base is not a
// scheduling class either (the Kernel stores SchedClass pointers).
struct NotDerived {
  [[nodiscard]] const char* name() const { return "free-floating"; }
};
static_assert(!hpcs::kern::SchedClassImpl<NotDerived>);

// ---------------------------------------------------------------------------
// PureFunction: the factory purity contract.

using Factory = PureFunction<int()>;

// Plain and capturing (non-mutable) lambdas convert, like std::function.
static_assert(std::is_constructible_v<Factory, int (*)()>);
static_assert(std::is_convertible_v<decltype([] { return 1; }), Factory>);

// The canonical stateful-factory shapes are rejected at compile time.
static_assert(!std::is_constructible_v<Factory, decltype([n = 0]() mutable { return ++n; })>);
struct StatefulFunctor {
  int n = 0;
  int operator()() { return ++n; }  // non-const call operator
};
static_assert(!std::is_constructible_v<Factory, StatefulFunctor>);

// The const twin of the same functor is accepted.
struct PureFunctor {
  int base = 41;
  int operator()() const { return base + 1; }
};
static_assert(std::is_constructible_v<Factory, PureFunctor>);

// The real factory signatures stay convertible from the idiomatic lambdas
// the benches use.
static_assert(
    std::is_constructible_v<decltype(hpcs::analysis::SweepPoint::workload),
                            decltype([] { return hpcs::wl::make_metbench({}); })>);
static_assert(
    std::is_constructible_v<decltype(hpcs::cluster::JobSpec::make_programs),
                            decltype([] { return hpcs::wl::make_metbench({}); })>);

TEST(PureFunction, InvokesAndSupportsBoolCheck) {
  Factory empty;
  EXPECT_FALSE(static_cast<bool>(empty));

  Factory f = PureFunctor{};
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(), 42);

  int calls_observed = 0;
  PureFunction<int(int)> add = [&calls_observed](int x) {
    // Capturing by reference compiles (the contract is const-invocability;
    // aliasing is TSan's job) — the factory itself stays const.
    ++calls_observed;
    return x + 1;
  };
  EXPECT_EQ(add(4), 5);
  EXPECT_EQ(calls_observed, 1);
}

TEST(PureFunction, CopiesShareNoMutableState) {
  PureFunction<int()> a = PureFunctor{.base = 10};
  PureFunction<int()> b = a;  // copyable, like std::function
  EXPECT_EQ(a(), 11);
  EXPECT_EQ(b(), 11);
}

// ---------------------------------------------------------------------------
// The audited in-tree factories: building a SweepPoint from each paper
// workload factory must keep compiling (they are all pure), and invoking the
// factory twice must produce independent program sets.

TEST(FactoryAudit, MetBenchFactoryIsReinvocable) {
  const hpcs::wl::MetBenchConfig cfg;
  hpcs::analysis::SweepPoint point{"metbench", {}, [cfg] { return hpcs::wl::make_metbench(cfg); }};
  auto first = point.workload();
  auto second = point.workload();
  EXPECT_EQ(first.size(), second.size());
  EXPECT_FALSE(first.empty());
  EXPECT_NE(first[0].get(), second[0].get());  // fresh programs, no sharing
}

}  // namespace
