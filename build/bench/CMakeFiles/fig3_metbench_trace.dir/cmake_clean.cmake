file(REMOVE_RECURSE
  "CMakeFiles/fig3_metbench_trace.dir/fig3_metbench_trace.cpp.o"
  "CMakeFiles/fig3_metbench_trace.dir/fig3_metbench_trace.cpp.o.d"
  "fig3_metbench_trace"
  "fig3_metbench_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_metbench_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
