// Example: writing your OWN scheduling class — the §III selling point of the
// 2.6.23 framework ("the new scheduler framework allows kernel developers to
// write scheduler algorithms specifically tailored for a class of
// applications... adding a new scheduler algorithm is easier than in the
// past"). HPCSched itself is one instance; here is a minimal second one.
//
// The Deadlineish class schedules SCHED_BATCH tasks by an explicit per-task
// "deadline" (stored in the task's nice value for simplicity: lower nice =
// earlier deadline = runs first), preempting on wakeup if the woken task's
// deadline is earlier. It plugs in between RT and CFS with
// Kernel::add_class_before_cfs() — no kernel changes needed.

#include <algorithm>
#include <cstdio>
#include <deque>
#include <memory>

#include "kernel/kernel.h"
#include "simcore/simulator.h"

using namespace hpcs;

namespace {

struct DeadlineRq final : kern::ClassRq {
  std::deque<kern::Task*> queue;  // kept sorted by deadline (nice value)
};

class DeadlineishClass final : public kern::SchedClass {
 public:
  [[nodiscard]] const char* name() const override { return "deadlineish"; }
  [[nodiscard]] bool owns(kern::Policy p) const override {
    return p == kern::Policy::kBatch;  // steal SCHED_BATCH for the demo
  }
  [[nodiscard]] std::unique_ptr<kern::ClassRq> make_rq() const override {
    return std::make_unique<DeadlineRq>();
  }

  void enqueue(kern::Kernel&, kern::Rq& rq, kern::Task& t, bool) override {
    auto& q = static_cast<DeadlineRq&>(*rq.class_rqs[static_cast<std::size_t>(index())]).queue;
    const auto pos = std::find_if(q.begin(), q.end(),
                                  [&](kern::Task* o) { return o->nice > t.nice; });
    q.insert(pos, &t);
  }
  void dequeue(kern::Kernel&, kern::Rq& rq, kern::Task& t, bool) override {
    auto& q = static_cast<DeadlineRq&>(*rq.class_rqs[static_cast<std::size_t>(index())]).queue;
    const auto it = std::find(q.begin(), q.end(), &t);
    if (it != q.end()) q.erase(it);
  }
  kern::Task* pick_next(kern::Kernel&, kern::Rq& rq) override {
    auto& q = static_cast<DeadlineRq&>(*rq.class_rqs[static_cast<std::size_t>(index())]).queue;
    if (q.empty()) return nullptr;
    kern::Task* t = q.front();
    q.pop_front();
    return t;
  }
  void put_prev(kern::Kernel& k, kern::Rq& rq, kern::Task& t) override {
    enqueue(k, rq, t, false);
  }
  void task_tick(kern::Kernel&, kern::Rq&, kern::Task&) override {}  // run to block
  [[nodiscard]] bool wakeup_preempt(kern::Kernel&, kern::Rq&, kern::Task& curr,
                                    kern::Task& woken) override {
    return woken.nice < curr.nice;  // earlier deadline preempts
  }
};

// Out-of-tree classes get the same compile-time interface check as the
// built-in ones — see kernel/sched_class.h.
HPCS_ASSERT_SCHED_CLASS(DeadlineishClass);

/// Fixed-size job body that reports its completion time.
class Job final : public kern::TaskBody {
 public:
  explicit Job(Work w) : work_(w) {}
  void step(kern::Kernel& k, kern::Task& t) override {
    if (done_) {
      k.body_exit(t);
      return;
    }
    done_ = true;
    k.body_compute(t, work_);
  }

 private:
  Work work_;
  bool done_ = false;
};

}  // namespace

int main() {
  std::printf("== plugging a custom scheduling class into the framework ==\n\n");

  sim::Simulator s;
  kern::Kernel k(s, {});
  k.add_class_before_cfs(std::make_unique<DeadlineishClass>());
  k.start();

  std::printf("class chain:");
  for (const auto& cls : k.classes()) std::printf(" %s", cls->name());
  std::printf("\n\n");

  // Three batch jobs with deadlines 3 < 7 < 9 (encoded in nice), submitted
  // in scrambled order, all pinned to CPU 0 — they must complete in
  // deadline order; a CFS hog on the same CPU starves behind them.
  struct Spec {
    const char* name;
    int deadline;
  };
  std::vector<kern::Task*> jobs;
  for (const Spec spec : {Spec{"job-d7", 7}, Spec{"job-d3", 3}, Spec{"job-d9", 9}}) {
    auto& t = k.create_task(spec.name, std::make_unique<Job>(30.0e6), kern::Policy::kBatch, 0);
    k.sched_setaffinity(t, 0);
    k.set_nice(t, spec.deadline);
    jobs.push_back(&t);
  }
  auto& hog = k.create_task("cfs-hog", std::make_unique<Job>(20.0e6), kern::Policy::kNormal, 0);
  k.sched_setaffinity(hog, 0);
  k.start_task(hog);
  for (auto* j : jobs) k.start_task(*j);

  s.run(SimTime(std::int64_t{2} * 1000000000));

  std::printf("completion order (deadline scheduling, submitted scrambled):\n");
  std::vector<kern::Task*> sorted = jobs;
  std::sort(sorted.begin(), sorted.end(),
            [](kern::Task* a, kern::Task* b) { return a->exit_time < b->exit_time; });
  for (auto* j : sorted) {
    std::printf("  %-8s deadline %d  finished at %7.2f ms\n", j->name().c_str(), j->nice,
                j->exit_time.ms());
  }
  std::printf("  %-8s (SCHED_NORMAL) finished at %7.2f ms — behind every batch job,\n",
              hog.name().c_str(), hog.exit_time.ms());
  std::printf("  because the custom class outranks CFS in the chain.\n");
  return 0;
}
