file(REMOVE_RECURSE
  "CMakeFiles/export_figdata.dir/export_figdata.cpp.o"
  "CMakeFiles/export_figdata.dir/export_figdata.cpp.o.d"
  "export_figdata"
  "export_figdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_figdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
