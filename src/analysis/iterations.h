#pragma once
// Per-iteration statistics derived from workload iteration marks: iteration
// durations, per-iteration CPU utilization, and the classic load-imbalance
// factor lambda = max/mean - 1 — the quantities the paper's figures plot.

#include <vector>

#include "analysis/experiment.h"

namespace hpcs::analysis {

/// One rank's derived iteration series.
struct IterationSeries {
  std::vector<double> duration_s;  ///< wall time of each iteration
  std::vector<double> util_pct;    ///< CPU time / wall time per iteration
};

/// Derive a rank's series from its marks (mark i closes iteration i).
[[nodiscard]] IterationSeries derive_series(const std::vector<mpi::IterationMark>& marks,
                                            SimTime start = SimTime::zero());

/// Cross-rank imbalance per iteration: lambda_i = max_r(cpu_i_r)/mean_r - 1,
/// computed over per-iteration CPU time. 0 = perfectly balanced. Requires
/// all ranks to have the same number of marks; extra marks are truncated.
[[nodiscard]] std::vector<double> imbalance_factor(const RunResult& r);

/// Mean of the imbalance series (a single "how imbalanced was this run").
[[nodiscard]] double mean_imbalance(const RunResult& r);

/// Number of iterations (after a behaviour change at `from_iter`) until the
/// imbalance drops below `threshold` and stays there: the adaptation-lag
/// metric of Fig. 4 ("the scheduler needs two more iterations to detect and
/// correct the new imbalance"). Returns -1 if it never settles.
[[nodiscard]] int adaptation_lag(const RunResult& r, int from_iter, double threshold = 0.25);

}  // namespace hpcs::analysis
