#pragma once
// The old O(1) scheduler (paper §III): the algorithm CFS replaced in Linux
// 2.6.23. Per-CPU active/expired priority arrays (40 levels for normal
// tasks), a bitmap for O(1) lookup, per-priority time slices, an
// interactivity bonus derived from sleep behaviour, and the famous zero-cost
// array swap when the active array drains.
//
// Implemented as an alternative "fair" scheduling class so experiments can
// run the paper's Baseline on either scheduler generation
// (KernelConfig::fair_scheduler).

#include <array>
#include <deque>
#include <map>

#include "kernel/sched_class.h"

namespace hpcs::kern {

struct O1Tunables {
  /// Time slice at nice 0; scales linearly with static priority, clamped to
  /// [min_slice, 2*base_slice] — the shape of the 2.6 task_timeslice().
  Duration base_slice = Duration::milliseconds(100);
  Duration min_slice = Duration::milliseconds(5);
  /// Sleep time accumulates into sleep_avg up to this ceiling.
  Duration max_sleep_avg = Duration::seconds(1.0);
  /// Maximum interactivity bonus (priority levels), the kernel's MAX_BONUS/2.
  int max_bonus = 5;
  /// Scheduler-path cost of an O(1) wakeup (cheaper than CFS: array insert).
  Duration wakeup_cost = Duration::microseconds(15);
};

/// Per-task O(1) state, kept in a side table inside the class (the real
/// kernel embeds it in task_struct).
struct O1TaskState {
  Duration sleep_avg = Duration::zero();
  SimTime sleep_since = SimTime::zero();
  bool in_expired = false;  ///< queued on the expired array
};

inline constexpr int kO1Levels = 40;  ///< normal-task priorities 100..139 -> 0..39

struct O1Rq final : ClassRq {
  struct PrioArray {
    std::array<std::deque<Task*>, kO1Levels> queues;
    std::uint64_t bitmap = 0;
    int nr = 0;
  };
  PrioArray arrays[2];
  int active = 0;  ///< index of the active array; expired is (active^1)
  std::int64_t swaps = 0;
};

class O1Class final : public SchedClass {
 public:
  explicit O1Class(O1Tunables tunables = {}) : tun_(tunables) {}

  [[nodiscard]] const char* name() const override { return "o1"; }
  [[nodiscard]] bool owns(Policy p) const override {
    return p == Policy::kNormal || p == Policy::kBatch;
  }
  [[nodiscard]] std::unique_ptr<ClassRq> make_rq() const override {
    return std::make_unique<O1Rq>();
  }

  void enqueue(Kernel& k, Rq& rq, Task& t, bool wakeup) override;
  void dequeue(Kernel& k, Rq& rq, Task& t, bool sleep) override;
  Task* pick_next(Kernel& k, Rq& rq) override;
  void put_prev(Kernel& k, Rq& rq, Task& t) override;
  void task_tick(Kernel& k, Rq& rq, Task& t) override;
  [[nodiscard]] bool wakeup_preempt(Kernel& k, Rq& rq, Task& curr, Task& woken) override;
  void yield(Kernel& k, Rq& rq, Task& t) override;
  Task* steal_candidate(Kernel& k, Rq& rq) override;
  [[nodiscard]] bool wants_balance() const override { return true; }
  [[nodiscard]] Duration wakeup_cost() const override { return tun_.wakeup_cost; }

  [[nodiscard]] const O1Tunables& tunables() const { return tun_; }

  /// Static priority level (0..39) from the nice value.
  [[nodiscard]] static int static_level(int nice) { return nice + 20; }

  /// Dynamic level after the interactivity bonus.
  [[nodiscard]] int dynamic_level(const Task& t) const;

  /// Time slice granted to a task (scales with static priority).
  [[nodiscard]] Duration timeslice(const Task& t) const;

  /// True when the task's sleep_avg marks it interactive (re-queued to the
  /// active array on expiry instead of the expired one).
  [[nodiscard]] bool interactive(const Task& t) const;

  [[nodiscard]] std::int64_t array_swaps(Rq& rq) const {
    return static_cast<O1Rq&>(*rq.class_rqs[static_cast<std::size_t>(index())]).swaps;
  }

 private:
  static O1Rq& orq(Rq& rq, int index);
  O1TaskState& state(const Task& t);
  static void push(O1Rq::PrioArray& a, int level, Task* t, bool front);
  static bool erase(O1Rq::PrioArray& a, int level, Task* t);

  O1Tunables tun_;
  std::map<Pid, O1TaskState> states_;
};

}  // namespace hpcs::kern
