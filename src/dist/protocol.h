#pragma once
// Typed view of the fabric's frames (wire.h carries the bytes; this header
// carries the meaning). The conversation is:
//
//   worker -> HELLO {version, worker name, capacity}
//   coord  -> HELLO_ACK {accept, reason | job, params blob, point count}
//   coord  -> ASSIGN {shard id, indices[]}           (repeated)
//   worker -> ROW {shard id, index, payload}         (streamed per point)
//   worker -> DONE {shard id}
//   worker -> HEARTBEAT {}                           (periodic)
//   either -> ERROR {reason}                         (fatal, then close)
//   coord  -> BYE {}                                 (run complete)
//
// The params blob is opaque to the dist layer: the coordinator forwards
// whatever the job registered (for the paper-table jobs it is the obs config
// and seed, encoded in analysis/dist_jobs.cpp), so workers reproduce the
// exact run configuration without dist knowing what a run is.
//
// Every decode_* returns false on a malformed payload (truncated, trailing
// bytes, absurd counts); the caller treats that as a corrupt peer.

#include <cstdint>
#include <string>
#include <vector>

#include "dist/wire.h"

namespace hpcs::dist {

struct Hello {
  std::uint32_t version = kProtoVersion;
  std::string worker_name;
  std::uint32_t capacity = 1;  ///< shards the worker accepts concurrently
};

struct HelloAck {
  bool accept = false;
  std::string reason;  ///< set when rejected
  std::string job;     ///< job name the worker must resolve
  std::string params;  ///< opaque job parameter blob
  std::uint64_t count = 0;  ///< total sweep points in the job
};

struct Assign {
  std::uint64_t shard = 0;
  std::vector<std::uint32_t> indices;
};

struct Row {
  std::uint64_t shard = 0;
  std::uint32_t index = 0;
  std::string payload;
};

struct Done {
  std::uint64_t shard = 0;
};

struct Error {
  std::string reason;
};

[[nodiscard]] Frame encode_hello(const Hello& m);
[[nodiscard]] Frame encode_hello_ack(const HelloAck& m);
[[nodiscard]] Frame encode_assign(const Assign& m);
[[nodiscard]] Frame encode_row(const Row& m);
[[nodiscard]] Frame encode_done(const Done& m);
[[nodiscard]] Frame encode_heartbeat();
[[nodiscard]] Frame encode_error(const Error& m);
[[nodiscard]] Frame encode_bye();

[[nodiscard]] bool decode_hello(const Frame& f, Hello& out);
[[nodiscard]] bool decode_hello_ack(const Frame& f, HelloAck& out);
[[nodiscard]] bool decode_assign(const Frame& f, Assign& out);
[[nodiscard]] bool decode_row(const Frame& f, Row& out);
[[nodiscard]] bool decode_done(const Frame& f, Done& out);
[[nodiscard]] bool decode_error(const Frame& f, Error& out);

}  // namespace hpcs::dist
