// hpcslint front end, stage 3: the cross-TU link step.
//
// Input: one TuIndex per file (parser.cpp). This file merges them into a
// whole-program view and runs the three rule families that need it:
//
//  det-taint   A function is *tainted* when its body touches a
//              nondeterminism source (wall clock, ambient RNG, env read,
//              hash-order iteration) or calls a tainted function. Taint
//              propagates callee→caller over the resolved call graph; any
//              tainted function belonging to the deterministic core
//              (simcore/kernel/power5/obs, by namespace or path) is an
//              error. ALLOW'd sources never taint — an allowed source is a
//              reviewed exception, not a leak.
//
//  lock-order  Every `MutexLock b(..)` executed while `a` is held is an
//              edge a→b; so is every acquisition a callee performs while
//              the caller holds a lock, and every acquisition inside a
//              REQUIRES(m) function (m→acquired). A cycle in this graph is
//              a potential deadlock. Mutex names are normalized to
//              Class::field when the field is found in the merged class
//              table, so `mu_` in two classes stays two nodes.
//
//  lock-guard  A write to a GUARDED_BY(g) field recorded by the parser
//              with no matching mutex in its held-set (locks in scope plus
//              the function's REQUIRES) is reported. This is the portable
//              subset of Clang's -Wthread-safety, which CI only gets on
//              one matrix leg.
//
// Call resolution is deliberately conservative: unqualified names resolve
// same-class, then enclosing-namespace, then globally; a name matching more
// than kMaxCandidates symbols (or one from the std-noise list: push_back,
// size, find, ...) resolves to nothing rather than to everything.

#include "tu.h"

#include <algorithm>
#include <deque>
#include <unordered_set>
#include <utility>

namespace hpcslint {
namespace {

constexpr std::size_t kMaxCandidates = 8;

/// Member/free function names so common in std usage that resolving them
/// through the project symbol table would connect unrelated code.
bool is_noise_call(const std::string& name) {
  static const std::unordered_set<std::string_view> k = {
      "size",      "empty",       "begin",      "end",        "cbegin",
      "cend",      "rbegin",      "rend",       "push_back",  "emplace_back",
      "push_front", "emplace_front", "pop_back", "pop_front", "front",
      "back",      "clear",       "insert",     "erase",      "find",
      "count",     "at",          "reserve",    "resize",     "capacity",
      "get",       "reset",       "release",    "c_str",      "data",
      "str",       "substr",      "append",     "compare",    "load",
      "store",     "exchange",    "fetch_add",  "notify_all", "notify_one",
      "wait",      "wait_for",    "join",       "joinable",   "detach",
      "lock",      "unlock",      "try_lock",   "native",     "min",
      "max",       "move",        "forward",    "swap",       "to_string",
      "sort",      "stable_sort", "fill",       "copy",       "transform",
      "accumulate", "abs",        "floor",      "ceil",       "round",
      "sqrt",      "pow",         "exp",        "log",        "log2",
      "make_pair", "make_tuple",  "tie",        "emplace",    "assign",
      "push",      "pop",         "top",        "first",      "second",
      "printf",    "fprintf",     "snprintf",   "memcpy",     "memset",
      "memmove",   "strlen",      "strcmp",     "open",       "close",
      "good",      "fail",        "eof",        "rdbuf",      "write",
      "read",      "flush",       "value",      "has_value",  "push_heap",
      "pop_heap",  "lower_bound", "upper_bound"};
  return k.count(name) != 0;
}

/// Last field-ish segment of a mutex expression: "pool.mu_" → "mu_".
std::string mutex_tail(const std::string& m) {
  const std::size_t cut = m.find_last_of(".>:");
  return cut == std::string::npos ? m : m.substr(cut + 1);
}

std::string join_chain(const std::vector<std::string>& segs) {
  std::string out;
  for (const std::string& s : segs) {
    if (!out.empty()) out += "::";
    out += s;
  }
  return out;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

struct OwnedTaint {
  std::string origin;  ///< "what at file:line" — pre-rendered for messages
};

struct OwnedLockEdge {
  std::string from, to;
  std::size_t tu = 0;
  int line = 0;
};

struct OwnedWrite {
  PendingFieldWrite w;
  std::size_t tu = 0;
};

struct OwnedUse {
  PendingContainerUse u;
  std::size_t tu = 0;
};

struct OwnedCall {
  CallSite cs;
  std::size_t tu = 0;
};

/// One merged symbol: every declaration and body sharing a qualified name
/// (overload sets collapse into one node — conservative and simple).
struct Node {
  std::string qname;
  std::string name;
  std::string class_qname;
  bool has_body = false;
  bool is_protected = false;
  std::size_t def_tu = 0;  ///< TU of the first body (finding attribution)
  int def_line = 0;
  std::vector<std::string> requires_m;
  std::vector<OwnedCall> calls;
  std::vector<OwnedTaint> taints;
  std::vector<OwnedLockEdge> lock_edges;  ///< normalized at build time
  std::vector<std::string> acquired;      ///< normalized
  std::vector<OwnedWrite> writes;
  std::vector<OwnedUse> uses;
};

class Linker {
 public:
  Linker(std::vector<TuIndex>& tus, std::vector<Finding>& out)
      : tus_(tus), out_(out) {}

  void run() {
    merge_classes();
    merge_functions();
    resolve_calls_all();
    resolve_pending_uses();   // may add taints — must precede the closure
    resolve_pending_writes();
    build_lock_graph();
    report_lock_cycles();
    taint_closure();
    report_det_taint();
  }

 private:
  std::vector<TuIndex>& tus_;
  std::vector<Finding>& out_;
  std::map<std::string, ClassInfo> classes_;
  std::map<std::string, Node> nodes_;
  std::map<std::string, std::vector<std::string>> by_name_;
  std::map<std::string, std::vector<std::string>> callees_;  ///< resolved edges
  std::map<std::string, std::vector<std::string>> callers_;  ///< reverse edges
  std::map<std::string, std::map<std::string, OwnedLockEdge>> lock_adj_;
  std::map<std::string, std::set<std::string>> closure_memo_;
  std::set<std::string> closure_busy_;

  void report(const char* rule, std::size_t tu, int line, std::string msg) {
    if (tus_[tu].prep.allowed(rule, line)) return;
    out_.push_back(Finding{tus_[tu].file, line, rule, std::move(msg)});
  }

  void merge_classes() {
    for (TuIndex& tu : tus_) {
      for (ClassInfo& c : tu.classes) {
        ClassInfo& m = classes_[c.qname];
        if (m.qname.empty()) {
          m.qname = c.qname;
          m.line = c.line;
        }
        for (const std::string& b : c.bases) m.bases.push_back(b);
        for (auto& [name, f] : c.fields) {
          FieldInfo& mf = m.fields[name];
          if (mf.name.empty()) mf = f;
          if (mf.guard.empty()) mf.guard = f.guard;
          if (mf.container == ContainerKind::kNone) {
            mf.container = f.container;
            mf.pointer_key = f.pointer_key;
          }
        }
      }
    }
  }

  /// `mu_` → `Class::mu_` when the class (of the function that names it)
  /// really has that field; otherwise the bare tail.
  std::string normalize_mutex(const std::string& raw, const std::string& class_qname) {
    const std::string tail = mutex_tail(raw);
    const auto c = classes_.find(class_qname);
    if (c != classes_.end() && c->second.fields.count(tail) != 0) {
      return class_qname + "::" + tail;
    }
    return tail;
  }

  void merge_functions() {
    for (std::size_t ti = 0; ti < tus_.size(); ++ti) {
      TuIndex& tu = tus_[ti];
      for (FuncInfo& f : tu.funcs) {
        Node& n = nodes_[f.qname];
        if (n.qname.empty()) {
          n.qname = f.qname;
          n.name = f.name;
          n.class_qname = f.class_qname;
        }
        if (n.class_qname.empty()) n.class_qname = f.class_qname;
        n.is_protected = n.is_protected || f.in_protected_scope;
        for (const std::string& r : f.requires_mutexes) n.requires_m.push_back(r);
        if (f.has_body && !n.has_body) {
          n.has_body = true;
          n.def_tu = ti;
          n.def_line = f.line;
        }
        if (!f.has_body) continue;
        for (CallSite& cs : f.calls) n.calls.push_back(OwnedCall{std::move(cs), ti});
        for (const TaintSource& t : f.taints) {
          n.taints.push_back(
              OwnedTaint{t.what + " at " + tu.file + ":" + std::to_string(t.line)});
        }
        for (const LockEdge& e : f.lock_edges) {
          n.lock_edges.push_back(OwnedLockEdge{
              normalize_mutex(e.held, f.class_qname),
              normalize_mutex(e.acquired, f.class_qname), ti, e.line});
        }
        for (const std::string& a : f.acquired) {
          n.acquired.push_back(normalize_mutex(a, f.class_qname));
        }
        for (PendingFieldWrite& w : f.pending_writes) {
          n.writes.push_back(OwnedWrite{std::move(w), ti});
        }
        for (PendingContainerUse& u : f.pending_uses) {
          n.uses.push_back(OwnedUse{std::move(u), ti});
        }
      }
    }
    for (const auto& [q, n] : nodes_) by_name_[n.name].push_back(q);
  }

  std::vector<std::string> resolve_call(const Node& caller, const CallSite& cs) {
    if (cs.chain.empty()) return {};
    const std::string& last = cs.chain.back();
    if (is_noise_call(last)) return {};
    std::vector<std::string> out;
    if (cs.chain.size() > 1) {
      // Qualified: match whole-suffix against merged qnames.
      const std::string joined = join_chain(cs.chain);
      for (const auto& [q, n] : nodes_) {
        if (q == joined || ends_with(q, "::" + joined)) {
          out.push_back(q);
          if (out.size() > kMaxCandidates) return {};
        }
      }
      return out;
    }
    // Unqualified: same class wins outright…
    if (!caller.class_qname.empty()) {
      const std::string q = caller.class_qname + "::" + last;
      if (nodes_.count(q) != 0) return {q};
    }
    if (!cs.member_access) {
      // …then the enclosing namespaces, innermost first…
      std::string ns = caller.qname;
      std::size_t cut;
      while ((cut = ns.rfind("::")) != std::string::npos) {
        ns.resize(cut);
        const std::string q = ns + "::" + last;
        if (nodes_.count(q) != 0) return {q};
      }
      if (nodes_.count(last) != 0) return {last};
    }
    // …then any symbol with the name, if the set is small enough to trust.
    const auto it = by_name_.find(last);
    if (it != by_name_.end() && it->second.size() <= kMaxCandidates) return it->second;
    return {};
  }

  void resolve_calls_all() {
    for (const auto& [q, n] : nodes_) {
      std::set<std::string> seen;
      for (const OwnedCall& oc : n.calls) {
        for (std::string& callee : resolve_call(n, oc.cs)) {
          if (callee != q && seen.insert(callee).second) {
            callees_[q].push_back(callee);
            callers_[callee].push_back(q);
          }
        }
      }
    }
  }

  void resolve_pending_uses() {
    for (auto& [q, n] : nodes_) {
      const auto c = classes_.find(n.class_qname);
      if (c == classes_.end()) continue;
      for (const OwnedUse& ou : n.uses) {
        const auto f = c->second.fields.find(ou.u.name);
        if (f == c->second.fields.end()) continue;
        const FieldInfo& fi = f->second;
        const std::string shown = n.class_qname + "::" + ou.u.name;
        if (fi.container == ContainerKind::kUnordered) {
          if (ou.u.range_for) {
            report("unordered-iter", ou.tu, ou.u.line,
                   "range-for over unordered container '" + shown +
                       "': hash order is not deterministic; copy into a sorted "
                       "container first");
          } else {
            report("unordered-iter", ou.tu, ou.u.line,
                   "iteration over unordered container '" + shown + "' via ." +
                       ou.u.via + "(): hash order is not deterministic");
          }
          if (!tus_[ou.tu].prep.allowed("unordered-iter", ou.u.line) &&
              !tus_[ou.tu].prep.allowed("det-taint", ou.u.line)) {
            n.taints.push_back(OwnedTaint{"iteration over unordered '" + shown +
                                          "' at " + tus_[ou.tu].file + ":" +
                                          std::to_string(ou.u.line)});
          }
        } else if (fi.container == ContainerKind::kOrdered && fi.pointer_key) {
          report("pointer-key", ou.tu, ou.u.line,
                 "iteration over pointer-keyed container '" + shown +
                     "': traversal follows allocation addresses; key by a stable "
                     "id instead");
        }
      }
    }
  }

  void resolve_pending_writes() {
    for (const auto& [q, n] : nodes_) {
      const auto c = classes_.find(n.class_qname);
      if (c == classes_.end()) continue;
      for (const OwnedWrite& ow : n.writes) {
        const auto f = c->second.fields.find(ow.w.field);
        if (f == c->second.fields.end() || f->second.guard.empty()) continue;
        const std::string want = mutex_tail(f->second.guard);
        bool held = false;
        for (const std::string& h : ow.w.held) {
          if (mutex_tail(h) == want) {
            held = true;
            break;
          }
        }
        if (held) continue;
        report("lock-guard", ow.tu, ow.w.line,
               "write to '" + n.class_qname + "::" + ow.w.field + "' (GUARDED_BY(" +
                   f->second.guard + ")) without holding '" + f->second.guard +
                   "': take a MutexLock or annotate the function REQUIRES(" +
                   f->second.guard + ")");
      }
    }
  }

  /// Every mutex `q` may acquire, directly or through resolved callees.
  const std::set<std::string>& acquisition_closure(const std::string& q) {
    const auto memo = closure_memo_.find(q);
    if (memo != closure_memo_.end()) return memo->second;
    if (closure_busy_.count(q) != 0) {
      static const std::set<std::string> kEmpty;
      return kEmpty;  // recursion: the cycle's locks surface via its members
    }
    closure_busy_.insert(q);
    std::set<std::string> acc;
    const auto n = nodes_.find(q);
    if (n != nodes_.end()) {
      acc.insert(n->second.acquired.begin(), n->second.acquired.end());
      const auto ce = callees_.find(q);
      if (ce != callees_.end()) {
        for (const std::string& callee : ce->second) {
          const std::set<std::string>& sub = acquisition_closure(callee);
          acc.insert(sub.begin(), sub.end());
        }
      }
    }
    closure_busy_.erase(q);
    return closure_memo_[q] = std::move(acc);
  }

  void add_lock_edge(const std::string& from, const std::string& to, std::size_t tu,
                     int line) {
    if (from.empty() || to.empty()) return;
    auto& slot = lock_adj_[from];
    const auto it = slot.find(to);
    if (it == slot.end()) {
      slot.emplace(to, OwnedLockEdge{from, to, tu, line});
    }
  }

  void build_lock_graph() {
    for (const auto& [q, n] : nodes_) {
      for (const OwnedLockEdge& e : n.lock_edges) add_lock_edge(e.from, e.to, e.tu, e.line);
      // REQUIRES(m) means m is held on entry: every acquisition is m→a.
      for (const std::string& r : n.requires_m) {
        const std::string from = normalize_mutex(r, n.class_qname);
        for (const std::string& a : n.acquired) {
          if (a != from) add_lock_edge(from, a, n.def_tu, n.def_line);
        }
      }
      // Calls made while holding locks: held × callee acquisition closure.
      for (const OwnedCall& oc : n.calls) {
        if (oc.cs.held.empty()) continue;
        std::vector<std::string> callees = resolve_call(n, oc.cs);
        for (const std::string& callee : callees) {
          for (const std::string& a : acquisition_closure(callee)) {
            for (const std::string& h : oc.cs.held) {
              const std::string from = normalize_mutex(h, n.class_qname);
              if (a != from) add_lock_edge(from, a, oc.tu, oc.cs.line);
            }
          }
        }
      }
    }
  }

  [[nodiscard]] bool reaches(const std::string& from, const std::string& to) const {
    std::set<std::string> seen;
    std::deque<std::string> work{from};
    while (!work.empty()) {
      const std::string cur = work.front();
      work.pop_front();
      if (cur == to) return true;
      if (!seen.insert(cur).second) continue;
      const auto it = lock_adj_.find(cur);
      if (it == lock_adj_.end()) continue;
      for (const auto& [next, e] : it->second) work.push_back(next);
    }
    return false;
  }

  void report_lock_cycles() {
    std::set<std::string> reported;
    for (const auto& [from, edges] : lock_adj_) {
      for (const auto& [to, e] : edges) {
        if (from == to) {
          if (reported.insert(from + "|" + from).second) {
            report("lock-order", e.tu, e.line,
                   "mutex '" + from + "' acquired while already held: "
                   "self-deadlock on a non-recursive mutex");
          }
          continue;
        }
        if (!reaches(to, from)) continue;
        const std::string key = std::min(from, to) + "|" + std::max(from, to);
        if (!reported.insert(key).second) continue;
        std::string msg = "lock-order cycle: this site acquires '" + to +
                          "' while holding '" + from + "'";
        const auto back = lock_adj_.find(to);
        if (back != lock_adj_.end()) {
          const auto be = back->second.find(from);
          if (be != back->second.end()) {
            msg += ", but " + tus_[be->second.tu].file + ":" +
                   std::to_string(be->second.line) + " acquires '" + from +
                   "' while holding '" + to + "'";
          }
        }
        msg += "; pick one global acquisition order";
        report("lock-order", e.tu, e.line, std::move(msg));
      }
    }
  }

  struct TaintMark {
    std::string origin;
    std::vector<std::string> path;  ///< caller→…→source, callee names
  };
  std::map<std::string, TaintMark> tainted_;

  void taint_closure() {
    std::deque<std::string> work;
    for (const auto& [q, n] : nodes_) {
      if (n.taints.empty()) continue;
      tainted_[q] = TaintMark{n.taints.front().origin, {}};
      work.push_back(q);
    }
    while (!work.empty()) {
      const std::string cur = work.front();
      work.pop_front();
      const auto cs = callers_.find(cur);
      if (cs == callers_.end()) continue;
      const TaintMark mark = tainted_[cur];
      for (const std::string& caller : cs->second) {
        if (tainted_.count(caller) != 0) continue;
        TaintMark up;
        up.origin = mark.origin;
        up.path.reserve(mark.path.size() + 1);
        up.path.push_back(cur);
        up.path.insert(up.path.end(), mark.path.begin(), mark.path.end());
        tainted_[caller] = std::move(up);
        work.push_back(caller);
      }
    }
  }

  void report_det_taint() {
    for (const auto& [q, n] : nodes_) {
      if (!n.is_protected || !n.has_body) continue;
      const auto t = tainted_.find(q);
      if (t == tainted_.end()) continue;
      std::string msg = "deterministic-core function '" + q +
                        "' reaches a nondeterminism source (" + t->second.origin + ")";
      if (!t->second.path.empty()) {
        msg += " via ";
        const std::size_t shown = std::min<std::size_t>(t->second.path.size(), 4);
        for (std::size_t i = 0; i < shown; ++i) {
          if (i != 0) msg += " -> ";
          msg += t->second.path[i];
        }
        if (shown < t->second.path.size()) msg += " -> ...";
      }
      msg += "; derive it from the experiment config or HPCSLINT-ALLOW(det-taint) "
             "the definition";
      report("det-taint", n.def_tu, n.def_line, std::move(msg));
    }
  }
};

}  // namespace

void link_program(std::vector<TuIndex>& tus, std::vector<Finding>& out) {
  Linker(tus, out).run();
}

}  // namespace hpcslint
