// Fixture: every write to the guarded field is covered — either by a
// MutexLock in scope or by a REQUIRES annotation on the function. Reads are
// never reported. hpcslint must stay quiet.
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& m);
};
#define GUARDED_BY(x)
#define REQUIRES(x)

class Counter {
 public:
  void locked_bump() {
    MutexLock l(mu_);
    hits_ += 1;
  }
  void annotated_bump() REQUIRES(mu_) { ++hits_; }
  long read_only() const { return hits_; }

 private:
  Mutex mu_;
  long hits_ GUARDED_BY(mu_) = 0;
};
