// Ablation: OS-noise sensitivity (the extrinsic imbalance axis, paper §I
// references [9],[22],[24],[28]). Sweeps daemon duty cycle and measures the
// SIESTA improvement split and the Adaptive heuristic's stability on
// MetBench — the "aggressive heuristic over-reacts to noise" claim of §V-A.
//
// The 4 runs per burst level are independent; the whole grid fans across the
// parallel experiment engine (--jobs N / HPCS_JOBS) and is printed in order
// afterwards.

#include <cstdio>
#include <functional>
#include <utility>
#include <vector>

#include "analysis/paper_experiments.h"
#include "bench_json.h"
#include "exp/parallel_runner.h"

using namespace hpcs;
using analysis::SchedMode;

int main(int argc, char** argv) {
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  std::printf("=== Noise sweep: burst length at fixed 10ms period ===\n\n");

  auto siesta = analysis::SiestaExperiment::paper();
  siesta.workload.microiters = 15000;

  auto mb = analysis::MetBenchExperiment::paper();
  mb.workload.iterations = 15;

  const std::vector<int> bursts = {0, 25, 50, 100, 250};
  struct Row {
    analysis::RunResult siesta_base, siesta_uni, mb_base, mb_ada;
  };
  std::vector<Row> rows(bursts.size());

  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    const int burst_us = bursts[i];
    kern::NoiseConfig noise;
    noise.burst = Duration::microseconds(burst_us);
    const bool enable = burst_us > 0;
    auto with_noise = [noise, enable](SchedMode mode) {
      analysis::ExperimentConfig cfg = analysis::paper_defaults(mode, 1, false);
      cfg.noise = noise;
      cfg.enable_noise = enable;
      return cfg;
    };
    tasks.push_back([&rows, i, with_noise, &siesta] {
      rows[i].siesta_base = analysis::run_experiment(with_noise(SchedMode::kBaselineCfs),
                                                     wl::make_siesta(siesta.workload));
    });
    tasks.push_back([&rows, i, with_noise, &siesta] {
      rows[i].siesta_uni = analysis::run_experiment(with_noise(SchedMode::kUniform),
                                                    wl::make_siesta(siesta.workload));
    });
    tasks.push_back([&rows, i, with_noise, &mb] {
      rows[i].mb_base = analysis::run_experiment(with_noise(SchedMode::kBaselineCfs),
                                                 wl::make_metbench(mb.workload));
    });
    tasks.push_back([&rows, i, with_noise, &mb] {
      rows[i].mb_ada = analysis::run_experiment(with_noise(SchedMode::kAdaptive),
                                                wl::make_metbench(mb.workload));
    });
  }
  exp::ParallelRunner runner(jobs);
  runner.run_all(std::move(tasks));

  std::printf("%-12s | %-30s | %-30s\n", "burst (us)", "SIESTA base(s) / uniform gain",
              "MetBench adaptive gain / prio chgs");
  std::vector<bench::JsonObject> entries;
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    const Row& r = rows[i];
    std::printf("%-12d | %8.2fs / %+6.2f%%           | %+6.2f%% / %lld\n", bursts[i],
                r.siesta_base.exec_time.sec(),
                analysis::improvement_pct(r.siesta_base, r.siesta_uni),
                analysis::improvement_pct(r.mb_base, r.mb_ada),
                static_cast<long long>(r.mb_ada.hw_prio_changes));
    bench::JsonObject e;
    e.field("burst_us", bursts[i])
        .field("siesta_base_s", r.siesta_base.exec_time.sec())
        .field("siesta_uniform_gain_pct", analysis::improvement_pct(r.siesta_base, r.siesta_uni))
        .field("metbench_adaptive_gain_pct", analysis::improvement_pct(r.mb_base, r.mb_ada))
        .field("metbench_adaptive_prio_changes", r.mb_ada.hw_prio_changes);
    entries.push_back(std::move(e));
  }

  std::printf(
      "\nwithout noise the SIESTA gain shrinks toward the pure wakeup-cost delta and\n"
      "Adaptive stops over-reacting on MetBench (priority changes drop to the\n"
      "convergence minimum); heavier noise grows both effects — the paper's §V-D\n"
      "latency story and §V-A Fig. 3d over-reaction story on one axis.\n");

  bench::JsonObject root;
  root.field("bench", "ablation_noise").field("jobs", jobs);
  root.array("burst_sweep", entries);
  bench::write_json_file("BENCH_ablation_noise.json", root);
  return 0;
}
