// Tests for the analysis/report layer and the common utilities that back it:
// ps-like reports, sysfs dumps, improvement computation, formatting helpers,
// running statistics, histograms, RNG stream independence, and the POWER6
// parameter preset.

#include <gtest/gtest.h>

#include "analysis/paper_experiments.h"
#include "analysis/report.h"
#include "analysis/experiment.h"
#include "common/log.h"
#include "common/stats.h"
#include "power5/throughput.h"
#include "test_util.h"
#include "workloads/metbench.h"

namespace hpcs::test {
namespace {

TEST(Report, TaskAndCpuReports) {
  KernelFixture f;
  f.k().start();
  auto& t = f.k().create_task("worker", std::make_unique<HogBody>(), kern::Policy::kNormal, 2);
  f.k().start_task(t);
  f.run_until(Duration::milliseconds(50));

  const std::string tasks = analysis::task_report(f.k());
  EXPECT_NE(tasks.find("worker"), std::string::npos);
  EXPECT_NE(tasks.find("SCHED_NORMAL"), std::string::npos);
  EXPECT_NE(tasks.find("PID"), std::string::npos);

  const std::string cpus = analysis::cpu_report(f.k());
  EXPECT_NE(cpus.find("worker"), std::string::npos) << cpus;
  EXPECT_NE(cpus.find("0.650"), std::string::npos) << "running context speed";

  const std::string stats = analysis::sched_stats_report(f.k());
  EXPECT_NE(stats.find("context switches"), std::string::npos);
  EXPECT_NE(stats.find("wakeup latency"), std::string::npos);
}

TEST(Report, SysfsDumpListsKnobs) {
  KernelFixture f;
  f.k().start();
  const std::string s = analysis::sysfs_report(f.k());
  EXPECT_NE(s.find("kernel/sched_latency_ns"), std::string::npos);
  EXPECT_NE(s.find("20000000"), std::string::npos);
}

TEST(Analysis, ImprovementPct) {
  analysis::RunResult base;
  base.exec_time = Duration::seconds(100.0);
  analysis::RunResult faster;
  faster.exec_time = Duration::seconds(88.0);
  EXPECT_NEAR(improvement_pct(base, faster), 12.0, 1e-9);
  analysis::RunResult slower;
  slower.exec_time = Duration::seconds(110.0);
  EXPECT_NEAR(improvement_pct(base, slower), -10.0, 1e-9);
}

TEST(Analysis, MinMaxUtil) {
  analysis::RunResult r;
  r.ranks.push_back({.name = "a", .util_pct = 25.0});
  r.ranks.push_back({.name = "b", .util_pct = 99.0});
  EXPECT_DOUBLE_EQ(r.min_util(), 25.0);
  EXPECT_DOUBLE_EQ(r.max_util(), 99.0);
}

TEST(CommonFormat, Durations) {
  EXPECT_EQ(format_duration(Duration::seconds(1.5)), "1.500s");
  EXPECT_EQ(format_duration(Duration::milliseconds(12)), "12.000ms");
  EXPECT_EQ(format_duration(Duration::microseconds(7)), "7.000us");
  EXPECT_EQ(format_duration(Duration(42)), "42ns");
  EXPECT_EQ(format_time(SimTime(2500000000)), "2.500s");
}

TEST(CommonStats, RunningStat) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  s.reset();
  EXPECT_EQ(s.count(), 0);
}

TEST(CommonStats, Histogram) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.total(), 100);
  for (const auto c : h.buckets()) EXPECT_EQ(c, 10);
  EXPECT_NEAR(h.percentile(0.5), 45.0, 10.0);
  h.add(-50.0);   // clamps to first bucket
  h.add(1000.0);  // clamps to last bucket
  EXPECT_EQ(h.buckets().front(), 11);
  EXPECT_EQ(h.buckets().back(), 11);
}

TEST(CommonRng, ForkedStreamsAreIndependent) {
  Rng root(99);
  Rng a = root.fork();
  Rng b = root.fork();
  bool differ = false;
  for (int i = 0; i < 16; ++i) {
    if (a.uniform() != b.uniform()) differ = true;
  }
  EXPECT_TRUE(differ);
  // Re-deriving from the same seed reproduces the same child stream.
  Rng root2(99);
  Rng a2 = root2.fork();
  Rng a3(0);
  (void)a3;
  Rng check(99);
  Rng c = check.fork();
  for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(a2.uniform(), c.uniform());
}

TEST(CommonLog, LevelFiltering) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kOff);
  HPCS_LOG_ERROR("test", "suppressed %d", 1);  // must not crash, goes nowhere
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(old);
}

TEST(Power6, PresetIsSteeperThanPower5) {
  const p5::ThroughputParams p5_params;
  const p5::ThroughputParams p6 = p5::power6_params();
  // In-order core: lower equal-share point, stronger lever both ways.
  EXPECT_LT(p5::speed_for_share(p6, 0.5), p5::speed_for_share(p5_params, 0.5));
  EXPECT_GT(p5::speed_for_share(p6, 0.875), p5::speed_for_share(p6, 0.5) * 1.3);
  EXPECT_LT(p5::speed_for_share(p6, 0.125), p5::speed_for_share(p5_params, 0.125));
  // Monotone.
  double prev = -1.0;
  for (double s = 0.0; s <= 1.0; s += 1.0 / 64) {
    const double v = p5::speed_for_share(p6, s);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Power6, WorksAsMachineModel) {
  kern::KernelConfig cfg;
  cfg.throughput = p5::power6_params();
  analysis::ExperimentConfig ec;
  ec.kernel = cfg;
  ec.mode = analysis::SchedMode::kUniform;
  wl::MetBenchConfig w;
  w.iterations = 6;
  w.loads = {0.1e9, 0.4e9, 0.1e9, 0.4e9};
  const auto uni = analysis::run_experiment(ec, wl::make_metbench(w));
  ec.mode = analysis::SchedMode::kBaselineCfs;
  const auto base = analysis::run_experiment(ec, wl::make_metbench(w));
  // The steeper lever balances at least as well.
  EXPECT_GT(analysis::improvement_pct(base, uni), 8.0);
}


TEST(PaperReferences, CoverEveryReportedMode) {
  using analysis::SchedMode;
  EXPECT_NEAR(analysis::paper_reference_metbench(SchedMode::kBaselineCfs).exec_time_s, 81.78,
              1e-9);
  EXPECT_EQ(analysis::paper_reference_metbench(SchedMode::kStatic).util_pct.size(), 4u);
  EXPECT_NEAR(analysis::paper_reference_metbenchvar(SchedMode::kUniform).exec_time_s, 327.17,
              1e-9);
  EXPECT_NEAR(analysis::paper_reference_btmz(SchedMode::kAdaptive).exec_time_s, 79.92, 1e-9);
  EXPECT_NEAR(analysis::paper_reference_siesta(SchedMode::kBaselineCfs).exec_time_s, 81.49,
              1e-9);
  // SIESTA has no static run in the paper.
  EXPECT_EQ(analysis::paper_reference_siesta(SchedMode::kStatic).exec_time_s, 0.0);
}

TEST(PolicyNames, AllDistinct) {
  using kern::Policy;
  EXPECT_STREQ(kern::policy_name(Policy::kFifo), "SCHED_FIFO");
  EXPECT_STREQ(kern::policy_name(Policy::kHpcRr), "SCHED_HPC(RR)");
  EXPECT_STREQ(kern::policy_name(Policy::kHpcFifo), "SCHED_HPC(FIFO)");
  EXPECT_STREQ(kern::policy_name(Policy::kNormal), "SCHED_NORMAL");
  EXPECT_TRUE(kern::is_hpc_policy(Policy::kHpcRr));
  EXPECT_FALSE(kern::is_hpc_policy(Policy::kNormal));
}

}  // namespace
}  // namespace hpcs::test
