#pragma once
// The SCHED_HPC scheduling class (paper §IV), inserted between the real-time
// and CFS classes (Fig. 1b). Run-queue algorithm: a simple FIFO or
// round-robin list — with one MPI process per CPU a list is as good as a
// red-black tree and much cheaper. Every wakeup of an HPC task closes an
// iteration: the Load Imbalance Detector and the configured heuristic then
// choose the hardware priority the Mechanism applies before the next
// iteration starts.

#include <deque>
#include <memory>

#include "hpcsched/heuristics.h"
#include "hpcsched/imbalance_detector.h"
#include "hpcsched/iteration_tracker.h"
#include "hpcsched/mechanism.h"
#include "hpcsched/tunables.h"
#include "kernel/sched_class.h"

namespace hpcs::hpc {

struct HpcRq final : kern::ClassRq {
  std::deque<kern::Task*> queue;
};

class HpcSchedClass final : public kern::SchedClass {
 public:
  HpcSchedClass(HpcTunables tunables, std::unique_ptr<Heuristic> heuristic,
                std::unique_ptr<Mechanism> mechanism);

  [[nodiscard]] const char* name() const override { return "hpc"; }
  [[nodiscard]] bool owns(kern::Policy p) const override { return kern::is_hpc_policy(p); }
  [[nodiscard]] std::unique_ptr<kern::ClassRq> make_rq() const override {
    return std::make_unique<HpcRq>();
  }

  void enqueue(kern::Kernel& k, kern::Rq& rq, kern::Task& t, bool wakeup) override;
  void dequeue(kern::Kernel& k, kern::Rq& rq, kern::Task& t, bool sleep) override;
  kern::Task* pick_next(kern::Kernel& k, kern::Rq& rq) override;
  void put_prev(kern::Kernel& k, kern::Rq& rq, kern::Task& t) override;
  void task_tick(kern::Kernel& k, kern::Rq& rq, kern::Task& t) override;
  [[nodiscard]] bool wakeup_preempt(kern::Kernel& k, kern::Rq& rq, kern::Task& curr,
                                    kern::Task& woken) override;
  void yield(kern::Kernel& k, kern::Rq& rq, kern::Task& t) override;
  kern::Task* steal_candidate(kern::Kernel& k, kern::Rq& rq) override;
  [[nodiscard]] bool wants_balance() const override { return true; }
  [[nodiscard]] Duration wakeup_cost() const override { return tun_.wakeup_cost; }

  [[nodiscard]] HpcTunables& tunables() { return tun_; }
  [[nodiscard]] const HpcTunables& tunables() const { return tun_; }
  [[nodiscard]] IterationTracker& tracker() { return tracker_; }
  [[nodiscard]] ImbalanceDetector& detector() { return detector_; }
  [[nodiscard]] Heuristic& heuristic() { return *heuristic_; }
  [[nodiscard]] Mechanism& mechanism() { return *mechanism_; }

  /// Swap the heuristic at run time (exposed via sysfs "hpcsched/heuristic";
  /// the paper selected it at kernel compile time — ours is hot-swappable).
  void set_heuristic(std::unique_ptr<Heuristic> h);

  /// Enable/disable the balancing logic (the scheduling policy keeps working
  /// either way — used to isolate the policy effect in ablations).
  void set_balancing_enabled(bool on) { balancing_enabled_ = on; }

  [[nodiscard]] std::int64_t priority_changes() const { return prio_changes_; }
  [[nodiscard]] std::int64_t iterations_observed() const { return iterations_; }
  [[nodiscard]] std::int64_t history_resets() const { return resets_; }
  /// Iterations that closed while the detector judged the application
  /// imbalanced (i.e. the heuristic was consulted for a new priority).
  [[nodiscard]] std::int64_t imbalance_detections() const { return imbalance_detections_; }
  /// Priority classifications made by the heuristic (whether or not the
  /// resulting priority differed from the task's current one).
  [[nodiscard]] std::int64_t heuristic_decisions() const { return heuristic_decisions_; }

 private:
  static HpcRq& hrq(kern::Rq& rq, int index);
  void on_iteration_complete(kern::Kernel& k, kern::Task& t, const IterationSample& sample);

  HpcTunables tun_;
  std::unique_ptr<Heuristic> heuristic_;
  std::unique_ptr<Mechanism> mechanism_;
  IterationTracker tracker_;
  ImbalanceDetector detector_;
  bool balancing_enabled_ = true;
  std::int64_t prio_changes_ = 0;
  std::int64_t iterations_ = 0;
  std::int64_t resets_ = 0;
  std::int64_t imbalance_detections_ = 0;
  std::int64_t heuristic_decisions_ = 0;
};

}  // namespace hpcs::hpc
