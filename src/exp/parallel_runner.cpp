#include "exp/parallel_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

namespace hpcs::exp {

unsigned default_jobs() {
  if (const char* env = std::getenv("HPCS_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

unsigned parse_jobs_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--jobs") == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[i + 1], nullptr, 10);
      if (v >= 1) return static_cast<unsigned>(v);
    } else if (std::strncmp(a, "--jobs=", 7) == 0) {
      const long v = std::strtol(a + 7, nullptr, 10);
      if (v >= 1) return static_cast<unsigned>(v);
    }
  }
  return default_jobs();
}

ParallelRunner::ParallelRunner(unsigned jobs) : jobs_(jobs == 0 ? default_jobs() : jobs) {}

void ParallelRunner::run_all(std::vector<std::function<void()>> tasks) {
  // Host-side engine stats only: batch wall time never feeds back into any
  // simulation result (runs are pure functions of their configs).
  const auto wall_begin = std::chrono::steady_clock::now();  // HPCSLINT-ALLOW(wallclock)
  last_stats_ = EngineStats{};
  last_stats_.tasks = static_cast<std::int64_t>(tasks.size());

  std::vector<std::exception_ptr> errors(tasks.size());
  if (jobs_ <= 1 || tasks.size() <= 1) {
    // Serial reference path: identical code shape, no threads involved.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      try {
        tasks[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
    last_stats_.jobs_submitted = last_stats_.tasks;
    last_stats_.jobs_executed = last_stats_.tasks;
  } else {
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, tasks.size()));
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      pool.submit([&tasks, &errors, i] {
        try {
          tasks[i]();
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
    const PoolStats ps = pool.stats();
    last_stats_.workers = workers;
    last_stats_.jobs_submitted = ps.submitted;
    last_stats_.jobs_executed = ps.executed;
    last_stats_.max_queue_depth = ps.max_queue_depth;
    last_stats_.per_worker_executed = ps.per_worker_executed;
  }
  const auto wall_end = std::chrono::steady_clock::now();  // HPCSLINT-ALLOW(wallclock)
  last_stats_.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_begin).count();

  for (std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace hpcs::exp
