#pragma once
// Shared rendering for the figure benches: each paper figure is a set of
// PARAVER traces (one per scheduler configuration); we regenerate them as
// ASCII Gantt charts plus a per-iteration utilization series — the exact
// data the paper's figures visualize.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "analysis/paper_experiments.h"
#include "bench_common.h"
#include "trace/gantt.h"

namespace hpcs::bench {

/// Obs accumulation for the figure drivers: they run their modes serially
/// and label the runs with figure subtitles, so collect (label, result)
/// pairs and emit the manifest + Chrome trace once at the end. Results are
/// kept alive here because the Chrome sinks live inside them. No host
/// sidecar: figure drivers do not go through the parallel engine.
class FigObs {
 public:
  FigObs(const char* name, ObsOptions opt) : name_(name), opt_(std::move(opt)) {}

  [[nodiscard]] const obs::ObsConfig& cfg() const { return opt_.cfg; }

  /// Take ownership of a finished run. No-op (result dropped) with obs off.
  void keep(const std::string& label, analysis::RunResult r) {
    if (!opt_.cfg.enabled) return;
    labels_.push_back(label);
    results_.push_back(std::move(r));
  }

  /// Write MANIFEST_<name>.json (+ the Chrome trace when requested).
  void finish() {
    if (!opt_.cfg.enabled) return;
    std::vector<obs::ManifestRun> runs;
    for (std::size_t i = 0; i < results_.size(); ++i) {
      runs.push_back({labels_[i], results_[i].metrics});
    }
    obs::write_manifest_json("MANIFEST_" + name_ + ".json", name_, runs);
    if (!opt_.trace_path.empty()) {
      std::vector<obs::ChromeTraceRun> truns;
      for (std::size_t i = 0; i < results_.size(); ++i) {
        if (results_[i].chrome) {
          truns.push_back({labels_[i], results_[i].chrome.get(), &results_[i].metrics});
        }
      }
      if (obs::write_chrome_trace(opt_.trace_path, truns)) {
        std::printf("wrote Chrome trace: %s (open in ui.perfetto.dev)\n",
                    opt_.trace_path.c_str());
      }
    }
  }

 private:
  std::string name_;
  ObsOptions opt_;
  std::vector<std::string> labels_;
  std::vector<analysis::RunResult> results_;
};

/// The figure drivers are trace producers: their whole output hangs off the
/// in-process Tracer, which never crosses the sweep fabric. Refuse --dist /
/// HPCS_DIST up front instead of silently running local.
inline void reject_dist_unsupported(int argc, char** argv) {
  bool asked = std::getenv("HPCS_DIST") != nullptr && std::getenv("HPCS_DIST")[0] != '\0';
  for (int i = 1; i < argc && !asked; ++i) {
    asked = std::strcmp(argv[i], "--dist") == 0 ||
            std::strncmp(argv[i], "--dist=", 7) == 0;
  }
  if (asked) {
    std::fprintf(stderr,
                 "error: figure drivers capture traces and cannot run under "
                 "--dist; use the table drivers for distributed sweeps\n");
    std::exit(2);
  }
}

inline void print_trace_figure(const char* subtitle, const analysis::RunResult& r,
                               int width = 110) {
  std::printf("--- %s (exec %.2fs) ---\n", subtitle, r.exec_time.sec());
  std::vector<Pid> pids;
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < r.ranks.size(); ++i) {
    pids.push_back(r.ranks[i].pid);
    labels.push_back("P" + std::to_string(i + 1));
  }
  trace::GanttOptions opt;
  opt.width = width;
  std::printf("%s\n", trace::render_gantt(*r.tracer, pids, labels, opt).c_str());
}

/// Per-iteration utilization series of every rank (the data of Fig. 3-6),
/// printed as compact rows. `stride` subsamples long series.
inline void print_iteration_series(const analysis::RunResult& r, int stride = 1) {
  for (std::size_t i = 0; i < r.ranks.size(); ++i) {
    const auto& evs = r.tracer->iteration_events(r.ranks[i].pid);
    std::printf("P%zu util/iter:", i + 1);
    int printed = 0;
    for (std::size_t k = 0; k < evs.size(); k += static_cast<std::size_t>(stride)) {
      if (printed++ > 40) {
        std::printf(" ...");
        break;
      }
      std::printf(" %3.0f", evs[k].util_last);
    }
    std::printf("\n");
  }
}

}  // namespace hpcs::bench
