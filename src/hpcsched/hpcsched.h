#pragma once
// Public entry point of the HPCSched library: install the SCHED_HPC class
// into a simulated kernel and expose its tunables through sysfs. This is the
// header a downstream user includes; see examples/quickstart.cpp.

#include "hpcsched/hpc_class.h"

namespace hpcs::hpc {

struct HpcSchedConfig {
  HpcTunables tunables{};
  HeuristicKind heuristic = HeuristicKind::kUniform;
  /// Use the POWER5 hardware-priority mechanism; false selects the Null
  /// mechanism (non-POWER architecture: policy benefits only, §IV-C).
  bool power5_mechanism = true;
};

/// Create the HPC scheduling class, insert it between the real-time and CFS
/// classes (paper Fig. 1b) and register its sysfs tunables
/// (hpcsched/low_util, hpcsched/high_util, hpcsched/min_prio,
/// hpcsched/max_prio, hpcsched/adaptive_g_pct, hpcsched/reset_after).
/// Must be called before Kernel::start().
HpcSchedClass& install_hpcsched(kern::Kernel& k, const HpcSchedConfig& cfg = {});

}  // namespace hpcs::hpc
