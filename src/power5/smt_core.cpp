#include "power5/smt_core.h"

#include "common/check.h"

namespace hpcs::p5 {

CtxId SmtCore::check_ctx(CtxId ctx) {
  HPCS_CHECK_MSG(ctx == 0 || ctx == 1, "context index must be 0 or 1");
  return ctx;
}

bool SmtCore::set_priority(CtxId ctx, HwPrio p) {
  check_ctx(ctx);
  if (prio_[ctx] == p) return false;
  prio_[ctx] = p;
  recompute();
  notify();
  return true;
}

bool SmtCore::set_active(CtxId ctx, bool active) {
  check_ctx(ctx);
  const bool snooze_cleared = snoozed_[ctx];
  if (active_[ctx] == active && !snooze_cleared) return false;
  active_[ctx] = active;
  snoozed_[ctx] = false;  // any activity transition restarts the spin phase
  recompute();
  notify();
  return true;
}

bool SmtCore::set_snoozed(CtxId ctx, bool snoozed) {
  check_ctx(ctx);
  if (snoozed_[ctx] == snoozed) return false;
  snoozed_[ctx] = snoozed;
  recompute();
  notify();
  return true;
}

void SmtCore::recompute() {
  const CoreSpeeds s = context_speeds(params_, lut_, prio_[0], active_[0], prio_[1],
                                      active_[1], snoozed_[0], snoozed_[1]);
  speeds_[0] = s.a;
  speeds_[1] = s.b;
}

void SmtCore::notify() {
  if (listener_) listener_(id_);
}

}  // namespace hpcs::p5
