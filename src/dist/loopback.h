#pragma once
// In-process loopback transport: the deterministic test double for the
// fabric. A pair shares two byte queues; send() appends, poll_recv() drains.
// Strictly single-threaded by design — the unit tests interleave
// coordinator.step() / worker.step() explicitly, which makes every failure
// schedule (worker killed mid-shard, truncated frame, stale row) exactly
// reproducible. For cross-thread runs use the TCP transport.
//
// Failure injection hooks:
//   * close() either end — the peer observes closed() after draining.
//   * send() raw garbage/truncated bytes — frames are only assembled by the
//     receiver's FrameDecoder, so tests can corrupt the stream directly.
//   * LoopbackConnection::drop_outgoing(true) — subsequently "sent" bytes
//     vanish (the classic half-dead worker whose rows never arrive).

#include <memory>
#include <string>
#include <utility>

#include "dist/transport.h"

namespace hpcs::dist {

namespace detail {
struct LoopbackState {
  std::string to_a;  ///< bytes in flight toward endpoint A
  std::string to_b;  ///< bytes in flight toward endpoint B
  bool a_closed = false;
  bool b_closed = false;
};
}  // namespace detail

class LoopbackConnection final : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<detail::LoopbackState> st, bool is_a)
      : st_(std::move(st)), is_a_(is_a) {}

  bool send(std::string_view bytes) override {
    if (peer_closed() || self_closed()) return false;
    if (drop_outgoing_) return true;  // silently lost: half-dead peer
    (is_a_ ? st_->to_b : st_->to_a).append(bytes.data(), bytes.size());
    return true;
  }

  [[nodiscard]] std::string poll_recv() override {
    std::string& q = is_a_ ? st_->to_a : st_->to_b;
    return std::exchange(q, {});
  }

  [[nodiscard]] bool closed() const override {
    // Like a socket: readable until drained, then EOF once the peer is gone.
    const std::string& q = is_a_ ? st_->to_a : st_->to_b;
    return self_closed() || (peer_closed() && q.empty());
  }

  void close() override { (is_a_ ? st_->a_closed : st_->b_closed) = true; }

  void drop_outgoing(bool on) { drop_outgoing_ = on; }

 private:
  [[nodiscard]] bool self_closed() const { return is_a_ ? st_->a_closed : st_->b_closed; }
  [[nodiscard]] bool peer_closed() const { return is_a_ ? st_->b_closed : st_->a_closed; }

  std::shared_ptr<detail::LoopbackState> st_;
  bool is_a_;
  bool drop_outgoing_ = false;
};

/// A connected pair: {A end, B end}.
[[nodiscard]] inline std::pair<std::unique_ptr<LoopbackConnection>,
                               std::unique_ptr<LoopbackConnection>>
loopback_pair() {
  auto st = std::make_shared<detail::LoopbackState>();
  return {std::make_unique<LoopbackConnection>(st, true),
          std::make_unique<LoopbackConnection>(st, false)};
}

}  // namespace hpcs::dist
