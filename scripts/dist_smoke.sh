#!/usr/bin/env bash
# dist-smoke: the sweep fabric's acceptance contract.
#
#   scripts/dist_smoke.sh [BUILD_DIR]     # default: build
#
# Runs table3_metbench twice — once serially, once as a --dist coordinator
# fed by two hpcs-distd workers over localhost TCP — with --obs-window on,
# and requires the printed table, BENCH_*.json and MANIFEST_*.json (v2,
# windowed series included) to be byte-identical. Then asserts the fabric
# sidecar shows both workers connected and doing real row work, carries the
# per-shard spans and fabric tracepoint counts, and schema-validates the
# fabric output dir (including the hpcs-dist-fabric-v3 sidecar) with
# scripts/check_bench_json.py.
#
# A second pass exercises the content-addressed result cache (--cache-dir):
# a cold run populates the store, a warm run must serve every row from it —
# byte-identical stdout and BENCH json, zero recomputation — and corrupting
# a blob must degrade to a miss (recompute + re-store), never an error.
#
# Needs the table3_metbench and hpcs-distd targets already built in
# BUILD_DIR. Exit status: 0 on success, 1 on any divergence or timeout.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
BENCH_ABS="$PWD/${BUILD_DIR}/bench"
DISTD_ABS="$PWD/${BUILD_DIR}/tools/hpcs-distd/hpcs-distd"
SMOKE_DIR="${BUILD_DIR}/dist-smoke"

[[ -x "${BENCH_ABS}/table3_metbench" ]] || {
  echo "ERROR: ${BENCH_ABS}/table3_metbench not built"
  exit 1
}
[[ -x "${DISTD_ABS}" ]] || {
  echo "ERROR: ${DISTD_ABS} not built"
  exit 1
}

rm -rf "${SMOKE_DIR}"
mkdir -p "${SMOKE_DIR}/serial" "${SMOKE_DIR}/fabric"

# 10-second simulated windows: enough boundaries for a real series without
# bloating the byte-compared manifests.
OBS_WINDOW=10000000000

echo "--- serial reference run"
(cd "${SMOKE_DIR}/serial" &&
  "${BENCH_ABS}/table3_metbench" --obs --obs-window "${OBS_WINDOW}" > stdout.txt)

echo "--- coordinator + 2 hpcs-distd workers"
(
  cd "${SMOKE_DIR}/fabric"
  "${BENCH_ABS}/table3_metbench" --obs --obs-window "${OBS_WINDOW}" \
    --dist coordinator:0 \
    --dist-port-file port.txt > stdout.txt &
  coord=$!
  for _ in $(seq 1 150); do
    [[ -s port.txt ]] && break
    sleep 0.1
  done
  if [[ ! -s port.txt ]]; then
    echo "ERROR: coordinator never wrote its port"
    kill "${coord}" 2>/dev/null || true
    exit 1
  fi
  "${DISTD_ABS}" "127.0.0.1:$(cat port.txt)" --name ci-w1 >worker1.log 2>&1 &
  w1=$!
  "${DISTD_ABS}" "127.0.0.1:$(cat port.txt)" --name ci-w2 >worker2.log 2>&1 &
  w2=$!
  wait "${coord}" && wait "${w1}" && wait "${w2}"
)

for f in stdout.txt BENCH_table3_metbench.json MANIFEST_table3_metbench.json; do
  diff "${SMOKE_DIR}/serial/${f}" "${SMOKE_DIR}/fabric/${f}" || {
    echo "ERROR: ${f} differs between serial and fabric runs"
    exit 1
  }
done
echo "serial vs fabric: table, BENCH json, metrics manifest all byte-identical"

python3 -c "
import json
doc = json.load(open('${SMOKE_DIR}/fabric/MANIFEST_table3_metbench.fabric.host.json'))
assert doc['schema'] == 'hpcs-dist-fabric-v3', doc
f = doc['fabric']
assert f['workers_connected'] == 2, f
assert f['rows_remote'] + f['rows_local'] == f['shards_total'], f
assert f['rows_remote'] >= 1, f
spans = doc['spans']
assert len(spans) == f['shards_total'], spans
done_remote = [s for s in spans if s['done_by'] != 'local']
assert len(done_remote) == f['rows_remote'], spans
assert all(s['done_ms'] >= s['first_assign_ms'] >= 0 for s in done_remote), spans
tp = doc['tracepoints']
assert tp['dist_assign'] >= f['shards_assigned'] > 0, tp
assert tp['dist_row'] == f['rows_remote'] + f['rows_stale'], tp
print('fabric sidecar ok:', {k: f[k] for k in ('workers_connected', 'rows_remote', 'rows_local')})
print('fabric tracing ok:', tp, '+', len(spans), 'spans')
"

# The fabric dir holds a golden-spec'd BENCH file plus the manifest and both
# sidecars — run it through the same validator as the main bench output
# (this is also what exercises the fabric-sidecar schema branch in CI).
python3 -c "
import json
spec = json.load(open('scripts/bench_golden.json'))
sub = {'BENCH_table3_metbench.json': spec['BENCH_table3_metbench.json']}
json.dump(sub, open('${SMOKE_DIR}/golden_subset.json', 'w'))
"
python3 scripts/check_bench_json.py "${SMOKE_DIR}/golden_subset.json" "${SMOKE_DIR}/fabric"

echo "--- result cache: cold run, warm run, corrupt-blob run"
CACHE_DIR="$PWD/${SMOKE_DIR}/cache-store"
mkdir -p "${SMOKE_DIR}/cold" "${SMOKE_DIR}/warm" "${SMOKE_DIR}/corrupt"
(cd "${SMOKE_DIR}/cold" &&
  "${BENCH_ABS}/table3_metbench" --cache-dir "${CACHE_DIR}" > stdout.txt 2> cache.txt)
grep -q "cache: 0 hits, 4 misses, 4 stores" "${SMOKE_DIR}/cold/cache.txt" || {
  echo "ERROR: cold run should miss and store every row"
  cat "${SMOKE_DIR}/cold/cache.txt"
  exit 1
}
(cd "${SMOKE_DIR}/warm" &&
  "${BENCH_ABS}/table3_metbench" --cache-dir "${CACHE_DIR}" > stdout.txt 2> cache.txt)
grep -q "cache: 4 hits, 0 misses, 0 stores" "${SMOKE_DIR}/warm/cache.txt" || {
  echo "ERROR: warm run should hit every row"
  cat "${SMOKE_DIR}/warm/cache.txt"
  exit 1
}

# One flipped byte in one blob: the next run detects it on read, recomputes
# that row, re-stores it — and still prints the exact same table.
blob=$(find "${CACHE_DIR}" -name '*.rcb' | sort | head -1)
printf 'X' | dd of="${blob}" bs=1 seek=20 conv=notrunc status=none
(cd "${SMOKE_DIR}/corrupt" &&
  "${BENCH_ABS}/table3_metbench" --cache-dir "${CACHE_DIR}" > stdout.txt 2> cache.txt)
grep -q "cache: 3 hits, 1 misses, 1 stores" "${SMOKE_DIR}/corrupt/cache.txt" || {
  echo "ERROR: corrupt blob should degrade to exactly one miss"
  cat "${SMOKE_DIR}/corrupt/cache.txt"
  exit 1
}

for d in cold warm corrupt; do
  for f in stdout.txt BENCH_table3_metbench.json; do
    diff "${SMOKE_DIR}/serial/${f}" "${SMOKE_DIR}/${d}/${f}" >/dev/null || {
      echo "ERROR: ${d}/${f} differs from the serial reference"
      exit 1
    }
  done
done
python3 -c "
import json
doc = json.load(open('${SMOKE_DIR}/warm/MANIFEST_table3_metbench.fabric.host.json'))
assert doc['schema'] == 'hpcs-dist-fabric-v3', doc
c = doc['cache']
assert c['hits'] == 4 and c['misses'] == 0 and c['stores'] == 0, c
assert doc['fabric']['rows_seeded'] == 4, doc['fabric']
print('cache sidecar ok:', c)
"
echo "cache pass: cold/warm/corrupt all byte-identical to serial"

echo "dist-smoke passed"
