#include "simcore/simulator.h"

#include <utility>

#include "common/check.h"

namespace hpcs::sim {

EventHandle Simulator::schedule_in(Duration delay, EventCallback cb) {
  HPCS_CHECK_MSG(delay >= Duration::zero(), "negative event delay");
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventHandle Simulator::schedule_at(SimTime when, EventCallback cb) {
  HPCS_CHECK_MSG(when >= now_, "event scheduled in the past");
  return queue_.schedule(when, std::move(cb));
}

bool Simulator::reschedule_in(EventHandle h, Duration delay) {
  HPCS_CHECK_MSG(delay >= Duration::zero(), "negative event delay");
  return queue_.reschedule(h, now_ + delay);
}

bool Simulator::reschedule_at(EventHandle h, SimTime when) {
  HPCS_CHECK_MSG(when >= now_, "event rescheduled into the past");
  return queue_.reschedule(h, when);
}

SimTime Simulator::run(SimTime deadline) {
  while (queue_.run_next(deadline, now_)) ++executed_;
  if (queue_.empty()) return now_;
  now_ = deadline;
  return now_;
}

bool Simulator::step() {
  if (!queue_.run_next(SimTime::max(), now_)) return false;
  ++executed_;
  return true;
}

}  // namespace hpcs::sim
