#pragma once
// On-disk format of one cached row: a self-verifying envelope around the
// serialized RunResult bytes. Layout (all little-endian, via dist wire
// primitives):
//
//     u32 magic   "RCB1"
//     u32 blob format version (kBlobVersion)
//     u64 cache key (must match the key the file name claims)
//     u64 FNV-1a of the payload bytes
//     str payload (u32 length + bytes)
//
// decode_result_blob() is the integrity gate: any mismatch — short file,
// trailing garbage, flipped bit, foreign key, older format — downgrades to a
// verdict, never to trusted bytes. The store maps every non-kOk verdict to a
// cache miss, so a damaged cache can cost time but can never change output.
//
// Pure bytes-to-bytes code: file IO lives in store.cpp at HPCS_HOST leaves.

#include <cstdint>
#include <string>
#include <string_view>

namespace hpcs::cache {

inline constexpr std::uint32_t kBlobMagic = 0x31424352u;  // "RCB1" little-endian
inline constexpr std::uint32_t kBlobVersion = 1;

enum class BlobVerdict : std::uint8_t {
  kOk,        ///< envelope intact, key matches, checksum matches
  kCorrupt,   ///< truncated, bad magic, bad checksum, wrong key, trailing bytes
  kVersion,   ///< intact envelope from an incompatible format version
};

/// Wrap `payload` in the envelope above under `key`.
[[nodiscard]] std::string encode_result_blob(std::uint64_t key, std::string_view payload);

/// Verify `bytes` against `key`; on kOk, `payload` holds the row bytes.
[[nodiscard]] BlobVerdict decode_result_blob(std::string_view bytes, std::uint64_t key,
                                             std::string& payload);

}  // namespace hpcs::cache
