// Cache-purity fixture (positive): eviction planning under a cache/ path
// segment stamps entries with the live clock and probes the filesystem
// while ranking them. Both are purity errors: the plan must be a pure
// function of the scanned (size, mtime) inventory so a replayed run evicts
// the same blobs, and the inventory itself arrives via an HPCS_HOST scan.
#include <chrono>
#include <cstdio>

namespace hpcs::cache {

class EvictionPlanner {
 public:
  void stamp();
  bool probe();
  long long seen_ns_ = 0;
};

void EvictionPlanner::stamp() {
  seen_ns_ = std::chrono::steady_clock::now().time_since_epoch().count();
}

bool EvictionPlanner::probe() {
  std::FILE* f = std::fopen("blob.rcb", "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace hpcs::cache
