// Reproduces Figure 5: BT-MZ traces (a window of the 200-iteration run, as
// in the paper: "each trace represents only some iterations").
//
// The four runs fan across the parallel experiment engine (--jobs N /
// HPCS_JOBS); printing happens after collection, in figure order, so the
// output is byte-identical to the serial loop this replaces.

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace hpcs;
  using analysis::SchedMode;

  bench::init_logging(argc, argv);
  bench::reject_dist_unsupported(argc, argv);
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  bench::FigObs fobs("fig5_btmz", bench::parse_obs_options(argc, argv));
  auto e = analysis::BtMzExperiment::paper();
  e.workload.iterations = 60;  // a representative window

  const std::vector<std::pair<SchedMode, const char*>> figures = {
      {SchedMode::kBaselineCfs, "(a) baseline execution"},
      {SchedMode::kStatic, "(b) static prioritization"},
      {SchedMode::kUniform, "(c) Uniform prioritization"},
      {SchedMode::kAdaptive, "(d) Adaptive prioritization"}};
  std::vector<SchedMode> modes;
  for (const auto& [mode, label] : figures) modes.push_back(mode);

  std::printf("=== Figure 5: effect of the proposed solution on BT-MZ ===\n\n");
  auto results = bench::run_modes(jobs, modes, [&e, &fobs](SchedMode m) {
    return analysis::run_btmz(e, m, /*trace=*/true, /*seed=*/1, fobs.cfg());
  });
  for (std::size_t i = 0; i < figures.size(); ++i) {
    bench::print_trace_figure(figures[i].second, results[i], 120);
    std::printf("\n");
    fobs.keep(figures[i].second, std::move(results[i]));
  }
  fobs.finish();
  return 0;
}
