#include "obs/manifest.h"

#include <cstdio>
#include <memory>

namespace hpcs::obs {
namespace {

[[nodiscard]] std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

[[nodiscard]] std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void append_metric(std::string& out, const MetricValue& m) {
  out += "      {\"name\": \"" + esc(m.name) + "\", \"kind\": \"";
  out += metric_kind_name(m.kind);
  out += "\"";
  switch (m.kind) {
    case MetricKind::kCounter:
      out += ", \"count\": " + std::to_string(m.count);
      break;
    case MetricKind::kGauge:
      out += ", \"value\": " + fmt_double(m.value);
      break;
    case MetricKind::kHistogram: {
      out += ", \"count\": " + std::to_string(m.count);
      out += ", \"sum\": " + fmt_double(m.value);
      out += ", \"edges\": [";
      for (std::size_t i = 0; i < m.edges.size(); ++i) {
        if (i) out += ", ";
        out += fmt_double(m.edges[i]);
      }
      out += "], \"buckets\": [";
      for (std::size_t i = 0; i < m.buckets.size(); ++i) {
        if (i) out += ", ";
        out += std::to_string(m.buckets[i]);
      }
      out += "]";
      break;
    }
  }
  out += "}";
}

void append_windows(std::string& out, const WindowedSeries& w) {
  out += "    \"windows\": {\"window_ns\": " + std::to_string(w.window_ns);
  out += ", \"int_columns\": [";
  for (std::size_t i = 0; i < w.int_columns.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + esc(w.int_columns[i]) + "\"";
  }
  out += "], \"real_columns\": [";
  for (std::size_t i = 0; i < w.real_columns.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + esc(w.real_columns[i]) + "\"";
  }
  out += "], \"samples\": [";
  for (std::size_t s = 0; s < w.samples.size(); ++s) {
    out += s ? ",\n      {" : "\n      {";
    out += "\"t_ns\": " + std::to_string(w.samples[s].end.ns());
    out += ", \"ints\": [";
    for (std::size_t i = 0; i < w.samples[s].ints.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(w.samples[s].ints[i]);
    }
    out += "], \"reals\": [";
    for (std::size_t i = 0; i < w.samples[s].reals.size(); ++i) {
      if (i) out += ", ";
      out += fmt_double(w.samples[s].reals[i]);
    }
    out += "]}";
  }
  out += w.samples.empty() ? "]}" : "\n    ]}";
}

}  // namespace

std::string render_manifest_json(const std::string& bench,
                                 const std::vector<ManifestRun>& runs) {
  std::string out = "{\n";
  out += "  \"schema\": \"";
  out += kManifestSchema;
  out += "\",\n";
  out += "  \"bench\": \"" + esc(bench) + "\",\n";
  out += "  \"runs\": [";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    out += r ? ", {\n" : "{\n";
    out += "    \"name\": \"" + esc(runs[r].name) + "\",\n";
    out += "    \"sim_end_s\": " + fmt_double(runs[r].metrics.at.sec()) + ",\n";
    out += "    \"metrics\": [\n";
    const std::vector<MetricValue>& ms = runs[r].metrics.metrics;
    for (std::size_t i = 0; i < ms.size(); ++i) {
      append_metric(out, ms[i]);
      out += i + 1 < ms.size() ? ",\n" : "\n";
    }
    out += "    ],\n";
    append_windows(out, runs[r].metrics.windows);
    out += "\n  }";
  }
  out += "]\n}\n";
  return out;
}

// HPCS_HOST_BEGIN — result-file write: rendered JSON is deterministic; only
// the fopen/fwrite to the host filesystem lives here.
bool write_manifest_json(const std::string& path, const std::string& bench,
                         const std::vector<ManifestRun>& runs) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "w"), &std::fclose);
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string body = render_manifest_json(bench, runs);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f.get()) == body.size();
  if (!ok) std::fprintf(stderr, "warning: short write to %s\n", path.c_str());
  return ok;
}
// HPCS_HOST_END

}  // namespace hpcs::obs
