file(REMOVE_RECURSE
  "CMakeFiles/test_hpcsched_unit.dir/test_hpcsched_unit.cpp.o"
  "CMakeFiles/test_hpcsched_unit.dir/test_hpcsched_unit.cpp.o.d"
  "test_hpcsched_unit"
  "test_hpcsched_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpcsched_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
