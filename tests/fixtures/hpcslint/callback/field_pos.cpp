// Callback value-flow fixture (positive): a lambda that reads the steady
// clock is assigned into a std::function field, and a different method
// invokes the slot. Taint must flow lambda → slot → Pump::fire even though
// fire() never names the lambda. (The setter holds the callable too, so it
// is also flagged — the load-bearing assertion is the dispatch site.)
#include <chrono>
#include <functional>

namespace hpcs::sim {

class Pump {
 public:
  void set_handler();
  void fire();
  std::function<void(int)> cb_;
  long long seen_ = 0;
};

void Pump::set_handler() {
  cb_ = [this](int bias) {
    seen_ = std::chrono::steady_clock::now().time_since_epoch().count() + bias;
  };
}

void Pump::fire() { cb_(3); }

}  // namespace hpcs::sim
