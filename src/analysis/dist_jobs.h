#pragma once
// The paper-table jobs as the sweep fabric sees them: one named job per
// table driver, whose points are the driver's scheduler modes in driver
// order. This table is the single source of truth for BOTH sides of a
// --dist run — the coordinator's local fallback and every worker resolve
// the same entry, so a point computes byte-identical bytes wherever it runs
// (the purity requirement dist::Coordinator's retry logic relies on).
//
// The opaque params blob carries {seed, obs on/off, ring capacity}: the full
// run configuration a worker needs to reproduce the driver's lambda.
// chrome_trace is deliberately NOT carried — trace capture is local-only and
// the drivers reject --obs-trace under --dist.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "dist/registry.h"

namespace hpcs::analysis {

struct PaperTableJob {
  const char* name;                  ///< matches the driver/bench name
  std::vector<SchedMode> modes;      ///< sweep points, driver order
  /// Pure point function: mode + run config -> full result.
  RunResult (*run)(SchedMode mode, std::uint64_t seed, const obs::ObsConfig& obs);
};

/// All four table jobs (table3_metbench, table4_metbenchvar, table5_btmz,
/// table6_siesta), in table order.
[[nodiscard]] const std::vector<PaperTableJob>& paper_table_jobs();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const PaperTableJob* find_paper_table_job(const std::string& name);

/// Params blob for the fabric's HELLO_ACK (versioned, opaque above here).
[[nodiscard]] std::string encode_job_params(std::uint64_t seed, const obs::ObsConfig& obs);
[[nodiscard]] bool decode_job_params(const std::string& blob, std::uint64_t& seed,
                                     obs::ObsConfig& obs);

/// Register every paper-table job in `reg` (what hpcs-distd and the drivers'
/// worker mode call): each factory decodes the params blob and returns the
/// serialize(run(modes[index])) task.
void register_paper_table_jobs(dist::JobRegistry& reg);

}  // namespace hpcs::analysis
