#include "kernel/kernel.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/log.h"
#include "kernel/cfs_class.h"
#include "kernel/idle_class.h"
#include "kernel/rt_class.h"
#include "obs/recorder.h"

namespace hpcs::kern {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kFifo: return "SCHED_FIFO";
    case Policy::kRr: return "SCHED_RR";
    case Policy::kHpcFifo: return "SCHED_HPC(FIFO)";
    case Policy::kHpcRr: return "SCHED_HPC(RR)";
    case Policy::kNormal: return "SCHED_NORMAL";
    case Policy::kBatch: return "SCHED_BATCH";
    case Policy::kIdle: return "SCHED_IDLE";
  }
  return "?";
}

Kernel::Kernel(sim::Simulator& sim, const KernelConfig& cfg)
    : sim_(&sim),
      cfg_(cfg),
      chip_(cfg.num_cores * cfg.num_chips, cfg.throughput),
      isa_(chip_),
      topo_(Topology::power5_system(cfg.num_chips, cfg.num_cores)) {
  classes_.push_back(std::make_unique<RtClass>(cfg.rt_rr_slice));
  if (cfg.fair_scheduler == FairScheduler::kCfs) {
    classes_.push_back(std::make_unique<CfsClass>(cfg.cfs));
  } else {
    classes_.push_back(std::make_unique<O1Class>(cfg.o1));
  }
  classes_.push_back(std::make_unique<IdleClass>());
  cfs_index_ = 1;
}

Kernel::~Kernel() = default;

SchedClass& Kernel::add_class_before_cfs(std::unique_ptr<SchedClass> cls) {
  HPCS_CHECK_MSG(!started_, "classes must be registered before start()");
  SchedClass& ref = *cls;
  classes_.insert(classes_.begin() + cfs_index_, std::move(cls));
  ++cfs_index_;
  return ref;
}

void Kernel::start() {
  HPCS_CHECK_MSG(!started_, "kernel already started");
  started_ = true;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    classes_[i]->set_index(static_cast<int>(i));
  }
  cpus_.resize(static_cast<std::size_t>(topo_.num_cpus()));
  for (CpuId cpu = 0; cpu < topo_.num_cpus(); ++cpu) {
    CpuState& c = cpus_[static_cast<std::size_t>(cpu)];
    c.rq.cpu = cpu;
    for (const auto& cls : classes_) {
      c.rq.class_rqs.push_back(cls->make_rq());
      c.rq.class_count.push_back(0);
    }
    c.idle_task = std::make_unique<Task>(-(cpu + 1), "idle/" + std::to_string(cpu),
                                         Policy::kIdle);
    c.idle_task->class_idx_ = class_index(Policy::kIdle);
    c.idle_task->cpu = cpu;
    c.rq.idle = c.idle_task.get();
    c.rq.curr = c.idle_task.get();
    if (cfg_.balance_interval_ticks > 0) {
      // First tick with (ticks + cpu) % interval == 0, expressed as a
      // countdown so on_tick never divides.
      const std::int64_t n = cfg_.balance_interval_ticks;
      c.balance_countdown = (n - (1 + cpu) % n) % n + 1;
    }
    c.tick_event = sim_->schedule_in(cfg_.tick, [this, cpu] { on_tick(cpu); });
  }
  chip_.set_listener([this](CoreId core) { on_speed_change(core); });
  // Every CPU boots idle: start their snooze timers.
  for (CpuId cpu = 0; cpu < topo_.num_cpus(); ++cpu) arm_snooze(cpu);

  if (cfg_.fair_scheduler != FairScheduler::kCfs) return;

  // sysfs view of the CFS knobs, mirroring /proc/sys/kernel/sched_*.
  auto* cfs = static_cast<CfsClass*>(classes_[static_cast<std::size_t>(cfs_index_)].get());
  sysfs_.register_attr(
      "kernel/sched_latency_ns", [cfs] { return cfs->tunables().latency.ns(); },
      [cfs](std::int64_t v) {
        if (v <= 0) return false;
        cfs->tunables().latency = Duration(v);
        return true;
      });
  sysfs_.register_attr(
      "kernel/sched_min_granularity_ns",
      [cfs] { return cfs->tunables().min_granularity.ns(); },
      [cfs](std::int64_t v) {
        if (v <= 0) return false;
        cfs->tunables().min_granularity = Duration(v);
        return true;
      });
  sysfs_.register_attr(
      "kernel/sched_wakeup_granularity_ns",
      [cfs] { return cfs->tunables().wakeup_granularity.ns(); },
      [cfs](std::int64_t v) {
        if (v < 0) return false;
        cfs->tunables().wakeup_granularity = Duration(v);
        return true;
      });
}

Kernel::CpuState& Kernel::cs(CpuId cpu) {
  HPCS_CHECK(cpu >= 0 && cpu < static_cast<CpuId>(cpus_.size()));
  return cpus_[static_cast<std::size_t>(cpu)];
}

Rq& Kernel::rq(CpuId cpu) { return cs(cpu).rq; }

int Kernel::class_index(Policy p) const {
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i]->owns(p)) return static_cast<int>(i);
  }
  HPCS_CHECK_MSG(false, "no scheduling class owns this policy");
  return -1;
}

SchedClass* Kernel::class_for(Policy p) const {
  for (const auto& cls : classes_) {
    if (cls->owns(p)) return cls.get();
  }
  return nullptr;
}

Task* Kernel::find_task(Pid pid) const {
  for (const auto& t : tasks_) {
    if (t->pid() == pid) return t.get();
  }
  return nullptr;
}

Task& Kernel::create_task(std::string name, std::unique_ptr<TaskBody> body, Policy policy,
                          CpuId initial_cpu) {
  HPCS_CHECK_MSG(started_, "start() the kernel before creating tasks");
  HPCS_CHECK_MSG(policy != Policy::kIdle, "cannot create user tasks with the idle policy");
  HPCS_CHECK_MSG(class_for(policy) != nullptr,
                 "no scheduling class registered for this policy");
  HPCS_CHECK(initial_cpu >= 0 && initial_cpu < topo_.num_cpus());
  auto t = std::make_unique<Task>(next_pid_++, std::move(name), policy);
  t->class_idx_ = class_index(policy);
  t->body_ = std::move(body);
  t->cpu = initial_cpu;
  t->created = now();
  t->acc_since_ = now();
  Task& ref = *t;
  tasks_.push_back(std::move(t));
  return ref;
}

void Kernel::start_task(Task& t) { wake(t); }

// ---------------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------------

void Kernel::flush_account(Task& t) {
  if (t.state_ == TaskState::kExited) return;
  const Duration delta = now() - t.acc_since_;
  t.acc_since_ = now();
  if (delta <= Duration::zero()) return;
  switch (t.acc_state_) {
    case AccState::kRun:
      t.t_run += delta;
      t.vruntime += CfsClass::calc_delta_fair(delta, t.nice);
      break;
    case AccState::kReady:
      t.t_ready += delta;
      break;
    case AccState::kSleep:
      t.t_sleep += delta;
      break;
  }
}

void Kernel::set_acc_state(Task& t, AccState s) {
  flush_account(t);
  t.acc_state_ = s;
}

// ---------------------------------------------------------------------------
// Run-queue plumbing
// ---------------------------------------------------------------------------

void Kernel::enqueue_task(Task& t, bool wakeup) {
  Rq& r = rq(t.cpu);
  const int idx = t.class_idx_;
  classes_[static_cast<std::size_t>(idx)]->enqueue(*this, r, t, wakeup);
  t.on_rq = true;
  ++r.class_count[static_cast<std::size_t>(idx)];
  set_acc_state(t, AccState::kReady);
}

void Kernel::dequeue_task(Task& t, bool sleep) {
  Rq& r = rq(t.cpu);
  const int idx = t.class_idx_;
  classes_[static_cast<std::size_t>(idx)]->dequeue(*this, r, t, sleep);
  t.on_rq = false;
  --r.class_count[static_cast<std::size_t>(idx)];
  HPCS_CHECK(r.class_count[static_cast<std::size_t>(idx)] >= 0);
}

void Kernel::maybe_preempt(CpuId cpu, Task& woken) {
  Rq& r = rq(cpu);
  Task* curr = r.curr;
  if (curr == nullptr || curr == r.idle) {
    resched_cpu(cpu);
    return;
  }
  const int wi = woken.class_idx_;
  const int ci = curr->class_idx_;
  if (wi < ci) {
    // Class ordering: a higher-priority class always preempts (paper §III).
    resched_cpu(cpu);
  } else if (wi == ci &&
             classes_[static_cast<std::size_t>(wi)]->wakeup_preempt(*this, r, *curr, woken)) {
    resched_cpu(cpu);
  }
}

void Kernel::resched_cpu(CpuId cpu) {
  CpuState& c = cs(cpu);
  if (c.resched_pending) return;
  c.resched_pending = true;
  sim_->schedule_in(Duration::zero(), [this, cpu] {
    cs(cpu).resched_pending = false;
    schedule_cpu(cpu);
  });
}

Task* Kernel::pick_next(Rq& r) {
  for (const auto& cls : classes_) {
    if (Task* t = cls->pick_next(*this, r)) return t;
  }
  return r.idle;
}

void Kernel::schedule_cpu(CpuId cpu) {
  CpuState& c = cs(cpu);
  Rq& r = c.rq;
  accrue_exec(cpu);
  stop_exec(cpu);

  Task* prev = r.curr;
  if (prev != nullptr && prev != r.idle && prev->state() == TaskState::kRunnable) {
    set_acc_state(*prev, AccState::kReady);
    classes_[static_cast<std::size_t>(prev->class_idx_)]->put_prev(*this, r, *prev);
  }

  Task* next = pick_next(r);
  if (next == r.idle && !in_balance_) {
    // New-idle balancing: try to pull work before going idle (paper §IV-A).
    in_balance_ = true;
    for (const auto& cls : classes_) {
      if (cls->wants_balance() && balance_pull(cpu, *cls)) break;
    }
    in_balance_ = false;
    next = pick_next(r);
  }

  r.curr = next;
  r.need_resched = false;
  if (next != prev) {
    ++ctx_switches_;
    if (next != r.idle) ++next->nr_switches;
    if (trace_ != nullptr) trace_->on_switch(now(), cpu, prev, next);
    HPCS_TRACEPOINT(obs_, obs::TpId::kTpSchedSwitch, now(), cpu,
                    next != r.idle ? next->pid() : kInvalidPid,
                    (prev != nullptr && prev != r.idle) ? prev->pid() : kInvalidPid);
    if (obs_ != nullptr) {
      std::int64_t depth = 0;
      for (const int n : r.class_count) depth += n;
      obs_->runq_depth().observe(static_cast<double>(depth));
    }
  }

  if (next != r.idle) {
    set_acc_state(*next, AccState::kRun);
    next->last_dispatch = now();
    if (next->woken_pending_) {
      const Duration lat = now() - next->wake_time_;
      next->woken_pending_ = false;
      wakeup_latency_us_.add(lat.us());
      next->wakeup_latency_us.add(lat.us());
      if (trace_ != nullptr) trace_->on_wakeup_latency(now(), *next, lat);
      if (obs_ != nullptr) obs_->wakeup_latency_us().observe(lat.us());
    }
    sim_->cancel(c.snooze_event);
    chip_.set_cpu_active(cpu, true);
    if (cfg_.hw_prio_enabled && chip_.cpu_priority(cpu) != next->hw_prio) {
      // The context switch path issues the or-nop that restores the incoming
      // task's hardware priority (Mechanism, paper §IV-C).
      isa_.set_priority(cpu, next->hw_prio, p5::Privilege::kSupervisor);
    }
  } else {
    chip_.set_cpu_active(cpu, false);
    arm_snooze(cpu);
  }
  start_exec(cpu);
}

// ---------------------------------------------------------------------------
// Execution engine
// ---------------------------------------------------------------------------

void Kernel::arm_snooze(CpuId cpu) {
  // The idle loop spins for smt_snooze_delay, then cedes the core to the
  // sibling context (Linux/POWER5 snooze).
  if (cfg_.smt_snooze_delay < Duration::zero()) return;
  CpuState& c = cs(cpu);
  if (sim_->reschedule_in(c.snooze_event, cfg_.smt_snooze_delay)) return;
  c.snooze_event =
      sim_->schedule_in(cfg_.smt_snooze_delay, [this, cpu] { chip_.set_cpu_snoozed(cpu, true); });
}

void Kernel::accrue_exec(CpuId cpu) {
  CpuState& c = cs(cpu);
  if (!c.exec_active) return;
  Task* t = c.rq.curr;
  HPCS_CHECK(t != nullptr && t != c.rq.idle);
  const Duration delta = now() - c.seg_start;
  c.seg_start = now();
  if (delta <= Duration::zero()) return;
  t->remaining -= static_cast<double>(delta.ns()) * c.seg_speed;
  if (t->remaining < 0.0) t->remaining = 0.0;
}

void Kernel::stop_exec(CpuId cpu) {
  CpuState& c = cs(cpu);
  c.exec_active = false;
  sim_->cancel(c.exec_event);
}

void Kernel::start_exec(CpuId cpu) {
  CpuState& c = cs(cpu);
  Task* t = c.rq.curr;
  if (t == nullptr || t == c.rq.idle) return;
  c.exec_active = true;
  c.seg_start = now();
  c.seg_speed = chip_.cpu_speed(cpu);
  arm_exec_event(cpu);
}

void Kernel::arm_exec_event(CpuId cpu) {
  CpuState& c = cs(cpu);
  Task* t = c.rq.curr;
  HPCS_CHECK(t != nullptr && t != c.rq.idle);
  Duration delay = Duration::zero();
  if (t->remaining > 0.0) {
    if (c.seg_speed <= 0.0) {
      // Context stalled; re-armed on speed change.
      sim_->cancel(c.exec_event);
      return;
    }
    delay = Duration(static_cast<std::int64_t>(std::ceil(t->remaining / c.seg_speed)));
  }
  // Completion events are re-armed constantly (every speed change, every
  // compute segment): move the pending/firing event instead of paying the
  // cancel + slot-allocate + closure-construct cycle.
  if (sim_->reschedule_in(c.exec_event, delay)) return;
  c.exec_event = sim_->schedule_in(delay, [this, cpu] { on_exec_event(cpu); });
}

void Kernel::on_exec_event(CpuId cpu) {
  CpuState& c = cs(cpu);
  HPCS_CHECK(c.exec_active);
  accrue_exec(cpu);
  Task* t = c.rq.curr;
  HPCS_CHECK(t != nullptr && t != c.rq.idle);
  if (t->remaining > 0.5) {
    // Rounding residue: finish the tail of the segment.
    arm_exec_event(cpu);
    return;
  }
  t->remaining = 0.0;

  HPCS_CHECK_MSG(t->body_ != nullptr, "task reached an interaction point without a body");
  t->req_ = Task::Req::kNone;
  t->body_->step(*this, *t);

  switch (t->req_) {
    case Task::Req::kCompute:
      t->remaining = t->req_work_;
      arm_exec_event(cpu);
      break;
    case Task::Req::kBlock:
    case Task::Req::kSleep: {
      set_acc_state(*t, AccState::kSleep);
      t->state_ = TaskState::kSleeping;
      if (trace_ != nullptr) trace_->on_state(now(), *t, TaskState::kSleeping);
      dequeue_task(*t, true);
      if (t->req_ == Task::Req::kSleep) {
        Task* tp = t;
        sim_->schedule_in(t->req_sleep_, [this, tp] { wake(*tp); });
      }
      schedule_cpu(cpu);
      break;
    }
    case Task::Req::kYield:
      classes_[static_cast<std::size_t>(t->class_idx_)]->yield(*this, c.rq, *t);
      schedule_cpu(cpu);
      break;
    case Task::Req::kExit:
      flush_account(*t);
      t->state_ = TaskState::kExited;
      t->exit_time = now();
      if (trace_ != nullptr) trace_->on_state(now(), *t, TaskState::kExited);
      dequeue_task(*t, true);
      schedule_cpu(cpu);
      break;
    case Task::Req::kNone:
      HPCS_CHECK_MSG(false, "TaskBody::step() must request exactly one action");
      break;
  }
}

void Kernel::on_speed_change(CoreId core) {
  for (p5::CtxId ctx = 0; ctx < 2; ++ctx) {
    const CpuId cpu = p5::Chip::cpu_of(core, ctx);
    CpuState& c = cs(cpu);
    if (!c.exec_active) continue;
    accrue_exec(cpu);  // integrate at the old speed up to now
    c.seg_speed = chip_.cpu_speed(cpu);
    arm_exec_event(cpu);
  }
}

// ---------------------------------------------------------------------------
// Body API
// ---------------------------------------------------------------------------

namespace {
void check_single_request(const Task& t) {
  HPCS_CHECK_MSG(t.state() == TaskState::kRunnable,
                 "body API used outside TaskBody::step()");
}
}  // namespace

void Kernel::body_compute(Task& t, Work work) {
  check_single_request(t);
  HPCS_CHECK_MSG(work > 0.0, "compute segment must have positive work");
  t.req_ = Task::Req::kCompute;
  t.req_work_ = work;
}

void Kernel::body_block(Task& t) {
  check_single_request(t);
  t.req_ = Task::Req::kBlock;
}

void Kernel::body_sleep(Task& t, Duration d) {
  check_single_request(t);
  HPCS_CHECK_MSG(d >= Duration::zero(), "negative sleep");
  t.req_ = Task::Req::kSleep;
  t.req_sleep_ = d;
}

void Kernel::body_yield(Task& t) {
  check_single_request(t);
  t.req_ = Task::Req::kYield;
}

void Kernel::body_exit(Task& t) {
  check_single_request(t);
  t.req_ = Task::Req::kExit;
}

// ---------------------------------------------------------------------------
// Wakeups
// ---------------------------------------------------------------------------

void Kernel::wake(Task& t) {
  if (t.state_ != TaskState::kSleeping || t.woken_pending_) return;
  t.woken_pending_ = true;
  t.wake_time_ = now();
  ++t.nr_wakeups;
  SchedClass* cls = class_for(t.policy());
  HPCS_CHECK(cls != nullptr);
  const Duration cost = cls->wakeup_cost();
  if (cost <= Duration::zero()) {
    do_wake(t);
  } else {
    Task* tp = &t;
    sim_->schedule_in(cost, [this, tp] { do_wake(*tp); });
  }
}

void Kernel::do_wake(Task& t) {
  if (t.state_ != TaskState::kSleeping) return;
  t.state_ = TaskState::kRunnable;
  if (trace_ != nullptr) trace_->on_state(now(), t, TaskState::kRunnable);
  HPCS_TRACEPOINT(obs_, obs::TpId::kTpWake, now(), t.cpu, t.pid(), 0);
  if (t.pinned_cpu != kInvalidCpu) t.cpu = t.pinned_cpu;
  enqueue_task(t, /*wakeup=*/true);
  maybe_preempt(t.cpu, t);
}

void Kernel::request_hw_prio(Task& t, p5::HwPrio prio) {
  if (t.hw_prio == prio) return;
  t.hw_prio = prio;
  if (trace_ != nullptr) trace_->on_hw_prio(now(), t, prio);
  HPCS_TRACEPOINT(obs_, obs::TpId::kTpHwPrio, now(), t.cpu, t.pid(),
                  static_cast<std::int64_t>(prio));
  if (cfg_.hw_prio_enabled && started_ && rq(t.cpu).curr == &t) {
    isa_.set_priority(t.cpu, prio, p5::Privilege::kSupervisor);
  }
}

// ---------------------------------------------------------------------------
// Syscalls
// ---------------------------------------------------------------------------

bool Kernel::sched_setscheduler(Task& t, Policy policy, int rt_prio) {
  if (policy == Policy::kIdle) return false;
  if (class_for(policy) == nullptr) return false;  // e.g. SCHED_HPC on a stock kernel
  if (rt_prio < 0 || rt_prio >= kRtPrioLevels) return false;

  Rq& r = rq(t.cpu);
  const bool running = (r.curr == &t);
  const bool queued = t.on_rq && !running;
  const int old_idx = t.class_idx_;

  if (queued) dequeue_task(t, false);
  if (running) --r.class_count[static_cast<std::size_t>(old_idx)];

  t.policy_ = policy;
  t.class_idx_ = class_index(policy);
  t.rt_prio = rt_prio;
  t.slice_left = Duration::zero();

  if (queued) enqueue_task(t, false);
  if (running) ++r.class_count[static_cast<std::size_t>(t.class_idx_)];
  if (queued || running) resched_cpu(t.cpu);
  return true;
}

bool Kernel::sched_setaffinity(Task& t, CpuId cpu) {
  if (cpu != kInvalidCpu && (cpu < 0 || cpu >= topo_.num_cpus())) return false;
  t.pinned_cpu = cpu;
  if (cpu == kInvalidCpu || t.cpu == cpu) return true;
  if (t.state_ == TaskState::kSleeping || t.state_ == TaskState::kExited) {
    t.cpu = cpu;
    return true;
  }
  Rq& r = rq(t.cpu);
  if (r.curr == &t) {
    // A running task migrates at its next wakeup (do_wake honors the pin).
    return true;
  }
  migrate(t, cpu);
  return true;
}

void Kernel::set_nice(Task& t, int nice) { t.nice = std::clamp(nice, -20, 19); }

// ---------------------------------------------------------------------------
// Tick + balancing
// ---------------------------------------------------------------------------

// HPCS_HOT_BEGIN — the highest-volume event in the simulator (one per CPU
// per simulated millisecond); the schedule_in fallback below captures only
// [this, cpu], which fits InplaceFunction's inline buffer.
void Kernel::on_tick(CpuId cpu) {
  CpuState& c = cs(cpu);
  ++c.ticks;
  // Windowed-snapshot flush rides the tick (sim-time driven, so the series
  // is exactly as deterministic as the totals). Two compares when inactive.
  if (obs_ != nullptr) obs_->advance_window(now());
  Task* curr = c.rq.curr;
  if (curr != nullptr && curr != c.rq.idle) {
    flush_account(*curr);
    classes_[static_cast<std::size_t>(curr->class_idx_)]->task_tick(*this, c.rq, *curr);
  }
  if (cfg_.balance_interval_ticks > 0 && --c.balance_countdown == 0) {
    c.balance_countdown = cfg_.balance_interval_ticks;
    for (const auto& cls : classes_) {
      if (cls->wants_balance()) balance_pull(cpu, *cls);
    }
  }
  // Recurring tick: re-arm the firing event in place (no slot churn). This
  // is the highest-volume event in the simulator — one per CPU per 1 ms.
  if (!sim_->reschedule_in(c.tick_event, cfg_.tick)) {
    c.tick_event = sim_->schedule_in(cfg_.tick, [this, cpu] { on_tick(cpu); });
  }
  if (c.rq.need_resched) {
    c.rq.need_resched = false;
    resched_cpu(cpu);
  }
}
// HPCS_HOT_END

bool Kernel::balance_pull(CpuId cpu, SchedClass& cls) {
  const auto ci = static_cast<std::size_t>(cls.index());
  for (const Domain& dom : topo_.domains_for(cpu)) {
    int my_group = -1;
    std::vector<int> loads(dom.groups.size(), 0);
    for (std::size_t g = 0; g < dom.groups.size(); ++g) {
      for (CpuId c : dom.groups[g]) {
        loads[g] += rq(c).class_count[ci];
        if (c == cpu) my_group = static_cast<int>(g);
      }
    }
    if (my_group < 0) continue;
    int busiest = -1;
    for (std::size_t g = 0; g < dom.groups.size(); ++g) {
      if (static_cast<int>(g) == my_group) continue;
      if (busiest < 0 || loads[g] > loads[static_cast<std::size_t>(busiest)]) {
        busiest = static_cast<int>(g);
      }
    }
    // Pull only when moving one task strictly reduces the imbalance.
    if (busiest < 0 ||
        loads[static_cast<std::size_t>(busiest)] <= loads[static_cast<std::size_t>(my_group)] + 1)
      continue;
    CpuId src = kInvalidCpu;
    int src_load = -1;
    for (CpuId c : dom.groups[static_cast<std::size_t>(busiest)]) {
      if (rq(c).class_count[ci] > src_load) {
        src_load = rq(c).class_count[ci];
        src = c;
      }
    }
    if (src == kInvalidCpu) continue;
    Task* cand = cls.steal_candidate(*this, rq(src));
    if (cand == nullptr) continue;
    if (cand->pinned_cpu != kInvalidCpu && cand->pinned_cpu != cpu) continue;
    HPCS_TRACEPOINT(obs_, obs::TpId::kTpBalancePull, now(), cpu, cand->pid(), src);
    migrate(*cand, cpu);
    ++balance_pulls_;
    return true;
  }
  return false;
}

void Kernel::migrate(Task& t, CpuId dst) {
  HPCS_CHECK(t.on_rq);
  HPCS_CHECK_MSG(rq(t.cpu).curr != &t, "cannot migrate a running task");
  dequeue_task(t, false);
  HPCS_TRACEPOINT(obs_, obs::TpId::kTpMigrate, now(), t.cpu, t.pid(), dst);
  t.cpu = dst;
  ++t.nr_migrations;
  ++migrations_;
  enqueue_task(t, false);
  maybe_preempt(dst, t);
}

}  // namespace hpcs::kern
