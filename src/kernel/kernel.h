#pragma once
// The Scheduler Core plus the execution engine: the facade tying together the
// POWER5 machine model, the scheduling-class chain, per-CPU run queues, the
// timer tick, wakeups and the per-class workload balancer.
//
// Tasks "execute" by owning compute segments: while a task with remaining
// work sits on a CPU, a completion event is scheduled at
// now + remaining / context_speed. Any change of the context's speed (the
// SMT sibling starting/stopping, a hardware-priority write) re-linearizes
// the remaining work and re-arms the event — this is how the POWER5
// prioritization couples into task progress.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "kernel/cfs_class.h"
#include "kernel/domains.h"
#include "kernel/o1_class.h"
#include "kernel/sched_class.h"
#include "kernel/sysfs.h"
#include "kernel/task.h"
#include "kernel/trace_hooks.h"
#include "power5/chip.h"
#include "power5/priority_isa.h"
#include "simcore/simulator.h"

namespace hpcs::obs {
class Recorder;
}

namespace hpcs::kern {

/// Which generation of the fair scheduler handles SCHED_NORMAL/SCHED_BATCH:
/// the Completely Fair Scheduler of 2.6.23+ or the old O(1) scheduler the
/// paper's §III contrasts it with.
enum class FairScheduler { kCfs, kO1 };

struct KernelConfig {
  int num_cores = 2;   ///< cores per chip (POWER5: two cores, 2-way SMT)
  int num_chips = 1;   ///< chips in the system (adds the chip domain level)
  p5::ThroughputParams throughput{};
  /// Linux/POWER5 smt_snooze_delay: how long the idle loop spins before
  /// ceding the core to the sibling (single-thread mode). Negative =
  /// never snooze (the HPC setting the paper's numbers imply, see
  /// DESIGN.md §2); zero = immediate snooze.
  Duration smt_snooze_delay = Duration(-1);
  Duration tick = Duration::milliseconds(1);  ///< HZ=1000
  Duration rt_rr_slice = Duration::milliseconds(100);
  FairScheduler fair_scheduler = FairScheduler::kCfs;
  CfsTunables cfs{};
  O1Tunables o1{};
  /// Ticks between periodic balancer runs on each CPU.
  int balance_interval_ticks = 64;
  /// When false the machine ignores hardware-priority writes (a non-POWER
  /// architecture): the HPC class still works but only its policy effect
  /// remains (paper §IV-C).
  bool hw_prio_enabled = true;
};

class Kernel {
 public:
  Kernel(sim::Simulator& sim, const KernelConfig& cfg);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Insert an additional scheduling class between the real-time and CFS
  /// classes (this is where HPCSched sits, paper Fig. 1b). Must be called
  /// before start(). Returns the registered class.
  SchedClass& add_class_before_cfs(std::unique_ptr<SchedClass> cls);

  /// Finalize the class chain, create idle tasks and start the timer tick.
  void start();
  [[nodiscard]] bool started() const { return started_; }

  // ---- task management ----

  /// Create a task (initially sleeping) placed on `initial_cpu`.
  Task& create_task(std::string name, std::unique_ptr<TaskBody> body, Policy policy,
                    CpuId initial_cpu);
  /// First wakeup of a freshly created task.
  void start_task(Task& t);

  // ---- syscalls ----

  /// sched_setscheduler(2): move a task to a new policy (and class).
  bool sched_setscheduler(Task& t, Policy policy, int rt_prio = 0);
  /// Pin a task to one CPU (kInvalidCpu clears the pin). Migrates if needed.
  bool sched_setaffinity(Task& t, CpuId cpu);
  /// nice(2): adjust the CFS weight.
  void set_nice(Task& t, int nice);

  // ---- body API (valid only inside TaskBody::step) ----

  void body_compute(Task& t, Work work);
  void body_block(Task& t);
  void body_sleep(Task& t, Duration d);
  void body_yield(Task& t);
  void body_exit(Task& t);

  /// Wake a sleeping task (message arrival, timer, ...). Safe on tasks that
  /// are already runnable or exited (no-op).
  void wake(Task& t);

  /// Set a task's requested hardware thread priority; applied to the SMT
  /// context immediately if the task is running, otherwise at next dispatch.
  /// This is the entry point the HPCSched Mechanism uses.
  void request_hw_prio(Task& t, p5::HwPrio prio);

  // ---- accessors ----

  [[nodiscard]] SimTime now() const { return sim_->now(); }
  [[nodiscard]] sim::Simulator& sim() { return *sim_; }
  [[nodiscard]] p5::Chip& chip() { return chip_; }
  [[nodiscard]] p5::PriorityIsa& isa() { return isa_; }
  [[nodiscard]] Sysfs& sysfs() { return sysfs_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] Duration tick_period() const { return cfg_.tick; }
  [[nodiscard]] int num_cpus() const { return topo_.num_cpus(); }
  [[nodiscard]] Rq& rq(CpuId cpu);
  [[nodiscard]] SchedClass* class_for(Policy p) const;
  [[nodiscard]] const std::vector<std::unique_ptr<SchedClass>>& classes() const {
    return classes_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Task>>& tasks() const { return tasks_; }
  [[nodiscard]] Task* find_task(Pid pid) const;

  void set_trace(TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] TraceSink* trace() const { return trace_; }

  /// Attach the per-run observability recorder (tracepoints + metrics);
  /// nullptr (the default) disables every record site at the cost of one
  /// predictable branch.
  void set_obs(obs::Recorder* rec) { obs_ = rec; }
  [[nodiscard]] obs::Recorder* obs() const { return obs_; }

  [[nodiscard]] std::int64_t context_switches() const { return ctx_switches_; }
  [[nodiscard]] std::int64_t migrations() const { return migrations_; }
  [[nodiscard]] std::int64_t balance_pulls() const { return balance_pulls_; }
  [[nodiscard]] const RunningStat& wakeup_latency_us() const { return wakeup_latency_us_; }

  /// Trigger a reschedule of `cpu` (deferred to a zero-delay event).
  void resched_cpu(CpuId cpu);

  /// Flush pending run/ready/sleep accounting of a task up to now().
  void flush_account(Task& t);

 private:
  struct CpuState {
    Rq rq;
    std::unique_ptr<Task> idle_task;
    bool exec_active = false;
    SimTime seg_start = SimTime::zero();
    double seg_speed = 0.0;
    sim::EventHandle exec_event;
    bool resched_pending = false;
    sim::EventHandle tick_event;
    sim::EventHandle snooze_event;
    std::int64_t ticks = 0;
    // Ticks remaining until the next balance pass; replaces the per-tick
    // `(ticks + cpu) % interval` divide while firing on the same ticks.
    std::int64_t balance_countdown = 0;
  };

  CpuState& cs(CpuId cpu);
  [[nodiscard]] int class_index(Policy p) const;

  // Run-queue plumbing.
  void enqueue_task(Task& t, bool wakeup);
  void dequeue_task(Task& t, bool sleep);
  void maybe_preempt(CpuId cpu, Task& woken);
  Task* pick_next(Rq& rq);
  void schedule_cpu(CpuId cpu);
  void set_acc_state(Task& t, AccState s);

  // Execution engine.
  void arm_snooze(CpuId cpu);
  void accrue_exec(CpuId cpu);
  void stop_exec(CpuId cpu);
  void start_exec(CpuId cpu);
  void arm_exec_event(CpuId cpu);
  void on_exec_event(CpuId cpu);
  void on_speed_change(CoreId core);

  // Wakeups.
  void do_wake(Task& t);

  // Tick + balancing.
  void on_tick(CpuId cpu);
  bool balance_pull(CpuId cpu, SchedClass& cls);
  void migrate(Task& t, CpuId dst);

  sim::Simulator* sim_;
  KernelConfig cfg_;
  p5::Chip chip_;
  p5::PriorityIsa isa_;
  Topology topo_;
  Sysfs sysfs_;
  TraceSink* trace_ = nullptr;
  obs::Recorder* obs_ = nullptr;

  std::vector<std::unique_ptr<SchedClass>> classes_;  ///< priority order
  int cfs_index_ = -1;
  std::vector<CpuState> cpus_;
  std::vector<std::unique_ptr<Task>> tasks_;
  Pid next_pid_ = 1;
  bool started_ = false;
  bool in_balance_ = false;

  std::int64_t ctx_switches_ = 0;
  std::int64_t migrations_ = 0;
  std::int64_t balance_pulls_ = 0;
  RunningStat wakeup_latency_us_;
};

}  // namespace hpcs::kern
