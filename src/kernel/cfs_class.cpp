#include "kernel/cfs_class.h"

#include <algorithm>

#include "common/check.h"
#include "kernel/kernel.h"

namespace hpcs::kern {

HPCS_ASSERT_SCHED_CLASS(CfsClass);

namespace {

CfsKey key_of(const Task& t) { return {t.vruntime.ns(), t.pid()}; }

}  // namespace

CfsRq& CfsClass::crq(Rq& rq, int index) {
  return static_cast<CfsRq&>(*rq.class_rqs[static_cast<std::size_t>(index)]);
}

std::int64_t CfsClass::nice_to_weight(int nice) {
  // The canonical kernel prio_to_weight[] table (nice -20 .. +19).
  static constexpr std::int64_t kWeights[40] = {
      88761, 71755, 56483, 46273, 36291, 29154, 23254, 18705, 14949, 11916,
      9548,  7620,  6100,  4904,  3906,  3121,  2501,  1991,  1586,  1277,
      1024,  820,   655,   526,   423,   335,   272,   215,   172,   137,
      110,   87,    70,    56,    45,    36,    29,    23,    18,    15};
  const int idx = std::clamp(nice, -20, 19) + 20;
  return kWeights[idx];
}

Duration CfsClass::calc_delta_fair(Duration delta, int nice) {
  if (nice == 0) return delta;  // weight 1024 / 1024
  const std::int64_t w = nice_to_weight(nice);
  return Duration(delta.ns() * 1024 / w);
}

Duration CfsClass::slice_for(int nr_running) const {
  if (nr_running <= 0) nr_running = 1;
  const Duration slice = tun_.latency / nr_running;
  return std::max(slice, tun_.min_granularity);
}

void CfsClass::update_min_vruntime(CfsRq& c, const Task* curr_of_class) const {
  Duration candidate = Duration::max();
  if (curr_of_class != nullptr) candidate = curr_of_class->vruntime;
  if (const CfsKey* lk = c.tree.leftmost_key()) {
    candidate = std::min(candidate, Duration(lk->first));
  }
  if (candidate != Duration::max()) {
    c.min_vruntime = std::max(c.min_vruntime, candidate);
  }
}

void CfsClass::enqueue(Kernel& k, Rq& rq, Task& t, bool wakeup) {
  (void)k;
  CfsRq& c = crq(rq, index());
  if (wakeup && tun_.sleeper_fairness) {
    // Sleeper credit: grant a waking task up to half a latency period of
    // vruntime headroom so interactive tasks get scheduled promptly, but
    // never let vruntime move backwards.
    const Duration floor = c.min_vruntime - tun_.latency / 2;
    t.vruntime = std::max(t.vruntime, floor);
  } else {
    // Migrated or policy-switched task: normalize into this queue's window.
    t.vruntime = std::max(t.vruntime, c.min_vruntime - tun_.latency / 2);
  }
  const bool inserted = c.tree.insert(key_of(t), &t);
  HPCS_CHECK_MSG(inserted, "duplicate task in CFS tree");
  update_min_vruntime(c, nullptr);
}

void CfsClass::dequeue(Kernel& k, Rq& rq, Task& t, bool sleep) {
  (void)k;
  (void)sleep;
  CfsRq& c = crq(rq, index());
  // A running task was already removed from the tree by pick_next.
  c.tree.erase(key_of(t));
  const Task* curr = (rq.curr != nullptr && owns(rq.curr->policy()) && rq.curr != &t)
                         ? rq.curr
                         : nullptr;
  update_min_vruntime(c, curr);
}

Task* CfsClass::pick_next(Kernel& k, Rq& rq) {
  (void)k;
  CfsRq& c = crq(rq, index());
  Task** leftmost = c.tree.leftmost();
  if (leftmost == nullptr) return nullptr;
  Task* t = *leftmost;
  c.tree.erase(key_of(*t));
  return t;
}

void CfsClass::put_prev(Kernel& k, Rq& rq, Task& t) {
  (void)k;
  CfsRq& c = crq(rq, index());
  const bool inserted = c.tree.insert(key_of(t), &t);
  HPCS_CHECK_MSG(inserted, "put_prev: duplicate task in CFS tree");
  update_min_vruntime(c, nullptr);
}

void CfsClass::task_tick(Kernel& k, Rq& rq, Task& t) {
  CfsRq& c = crq(rq, index());
  update_min_vruntime(c, &t);
  const int nr = static_cast<int>(c.tree.size()) + 1;
  if (nr < 2) return;  // nothing else to run
  const Duration slice = slice_for(nr);
  const Duration delta_exec = k.now() - t.last_dispatch;
  if (delta_exec > slice) {
    rq.need_resched = true;
    return;
  }
  // Bound the wait of a markedly "more deserving" leftmost task.
  if (const CfsKey* lk = c.tree.leftmost_key()) {
    const Duration vdiff = t.vruntime - Duration(lk->first);
    if (vdiff > slice && delta_exec > tun_.min_granularity) rq.need_resched = true;
  }
}

bool CfsClass::wakeup_preempt(Kernel& k, Rq& rq, Task& curr, Task& woken) {
  (void)k;
  (void)rq;
  if (curr.policy() == Policy::kBatch && woken.policy() == Policy::kNormal) return true;
  if (woken.policy() == Policy::kBatch) return false;  // batch never wakeup-preempts
  const Duration vdiff = curr.vruntime - woken.vruntime;
  return vdiff > tun_.wakeup_granularity;
}

void CfsClass::yield(Kernel& k, Rq& rq, Task& t) {
  // Charge the yielding task the slice it declined so it moves rightward.
  (void)k;
  CfsRq& c = crq(rq, index());
  const int nr = static_cast<int>(c.tree.size()) + 1;
  t.vruntime += slice_for(nr);
}

Task* CfsClass::steal_candidate(Kernel& k, Rq& rq) {
  (void)k;
  CfsRq& c = crq(rq, index());
  // Pull from the tail (largest vruntime): the task that would run last here
  // loses the least by migrating — mirrors the kernel pulling cache-cold work.
  Task* best = nullptr;
  c.tree.for_each([&](const CfsKey&, Task* const& t) {
    if (t->pinned_cpu == kInvalidCpu) best = t;
  });
  return best;
}

}  // namespace hpcs::kern
