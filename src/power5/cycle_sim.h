#pragma once
// Cycle-level decode-slot micro-simulator: the ground-truth model behind the
// fluid throughput curve. It replays the POWER5 arbitration literally —
// every time slice of R cycles the lower-priority context receives 1 decode
// cycle and the higher-priority one R-1 (paper §II-B / Table I) — against
// two threads with bounded instruction-level parallelism, and counts the
// instructions each context actually issues.
//
// Used by tests and `bench/ablation_throughput` to cross-validate the
// interpolated speed(share) curve: the decode SHARE delivered by the window
// mechanism must match Table I exactly, and the issue throughput must be
// monotone and asymmetric the way the fluid model assumes.

#include <cstdint>

#include "power5/hw_priority.h"

namespace hpcs::p5 {

/// A thread's execution characteristics in the micro-simulator.
struct ThreadModel {
  /// Instructions the thread *generates* per cycle (its inherent ILP /
  /// memory-boundedness). Work accrues with time into a small buffer and is
  /// consumed on granted decode slots — so a thread with demand_ipc < 1
  /// saturates: extra decode share beyond its demand buys nothing (the
  /// winner-saturation effect of the fluid curve).
  double demand_ipc = 1.0;
  /// Fraction of granted cycles lost to stalls (cache-miss model): a
  /// stalled slot issues nothing and is wasted unless the sibling steals it.
  double stall_rate = 0.0;
  /// Instruction-buffer depth in window units (how much accrued work can
  /// wait for decode slots).
  double buffer_depth = 8.0;
};

struct CycleSimResult {
  std::int64_t cycles = 0;
  std::int64_t decode_a = 0;  ///< decode cycles granted to context A
  std::int64_t decode_b = 0;
  double issued_a = 0.0;  ///< instructions issued by A
  double issued_b = 0.0;

  [[nodiscard]] double share_a() const {
    const auto total = decode_a + decode_b;
    return total > 0 ? static_cast<double>(decode_a) / static_cast<double>(total) : 0.0;
  }
  [[nodiscard]] double ipc_a() const {
    return cycles > 0 ? issued_a / static_cast<double>(cycles) : 0.0;
  }
  [[nodiscard]] double ipc_b() const {
    return cycles > 0 ? issued_b / static_cast<double>(cycles) : 0.0;
  }
};

/// Run the decode arbitration for `cycles` cycles with priorities (a, b).
/// Both priorities must be regular (2..6). `steal` lets a thread issue in a
/// slot its sibling left stalled (the reclaim effect of the fluid model).
/// Deterministic: stalls are spread by a fixed-stride counter, not RNG.
[[nodiscard]] CycleSimResult run_decode_sim(HwPrio a, HwPrio b, const ThreadModel& ta,
                                            const ThreadModel& tb, std::int64_t cycles,
                                            bool steal = true);

}  // namespace hpcs::p5
