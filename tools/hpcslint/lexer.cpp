#include "lexer.h"

#include <algorithm>
#include <utility>

namespace hpcslint {
namespace {

constexpr std::string_view kAllowDirective = "HPCSLINT-ALLOW(";
constexpr std::string_view kHotBegin = "HPCS_HOT_BEGIN";
constexpr std::string_view kHotEnd = "HPCS_HOT_END";
constexpr std::string_view kHostBegin = "HPCS_HOST_BEGIN";
constexpr std::string_view kHostEnd = "HPCS_HOST_END";

/// True when position `i` (a single quote) sits inside a pp-number: the
/// maximal identifier/quote run ending just before `i` starts with a digit
/// at a token boundary. Distinguishes the C++14 digit separator in
/// 1'000'000 and 0xFF'FF from the char literal in u8'a' (whose run starts
/// with 'u') and from a quote after an identifier (foo'x').
bool in_numeric_literal(std::string_view src, std::size_t i) {
  std::size_t s = i;
  while (s > 0 && (is_ident_char(src[s - 1]) || src[s - 1] == '\'' ||
                   src[s - 1] == '.')) {
    --s;
  }
  return s < i && std::isdigit(static_cast<unsigned char>(src[s])) != 0;
}

/// True when the quote at `i` opens a raw string literal: the identifier
/// run ending at `i` is exactly one of the raw-string prefixes. A plain
/// identifier that merely ends in R (FOOBAR"x") is not a raw string.
bool is_raw_string_prefix(std::string_view src, std::size_t i) {
  if (i == 0 || src[i - 1] != 'R') return false;
  std::size_t s = i;
  while (s > 0 && is_ident_char(src[s - 1])) --s;
  const std::string_view prefix = src.substr(s, i - s);
  return prefix == "R" || prefix == "uR" || prefix == "u8R" ||
         prefix == "UR" || prefix == "LR";
}

}  // namespace

Prepared prepare(std::string_view src) {
  Prepared p;
  p.code.assign(src.begin(), src.end());

  struct CommentNote {
    int line = 0;
    bool standalone = false;  ///< no code precedes the comment on its line
    std::vector<std::string> allow_rules;
    bool hot_begin = false;
    bool hot_end = false;
    bool host_begin = false;
    bool host_end = false;
  };
  std::vector<CommentNote> notes;

  auto note_comment = [&notes](std::string_view text, int comment_line, bool standalone) {
    CommentNote note;
    note.line = comment_line;
    note.standalone = standalone;
    for (std::size_t a = text.find(kAllowDirective); a != std::string_view::npos;
         a = text.find(kAllowDirective, a + 1)) {
      std::size_t pos = a + kAllowDirective.size();
      std::string rule;
      while (pos < text.size() && text[pos] != ')') {
        const char c = text[pos++];
        if (c == ',') {
          if (!rule.empty()) note.allow_rules.push_back(std::move(rule));
          rule.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
          rule += c;
        }
      }
      if (!rule.empty()) note.allow_rules.push_back(std::move(rule));
    }
    note.hot_begin = text.find(kHotBegin) != std::string_view::npos;
    // HPCS_HOT_END shares the HPCS_HOT prefix — check END explicitly so
    // BEGIN does not match it.
    note.hot_end = text.find(kHotEnd) != std::string_view::npos;
    if (note.hot_begin && note.hot_end) note.hot_begin = false;  // one marker per comment
    note.host_begin = text.find(kHostBegin) != std::string_view::npos;
    note.host_end = text.find(kHostEnd) != std::string_view::npos;
    if (note.host_begin && note.host_end) note.host_begin = false;
    if (!note.allow_rules.empty() || note.hot_begin || note.hot_end ||
        note.host_begin || note.host_end) {
      notes.push_back(std::move(note));
    }
  };

  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool line_has_code = false;
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      line_has_code = false;
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i;
      const int comment_line = line;
      const bool standalone = !line_has_code;
      while (i < n && src[i] != '\n') p.code[i++] = ' ';
      note_comment(src.substr(start, i - start), comment_line, standalone);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start = i;
      const int comment_line = line;
      const bool standalone = !line_has_code;
      p.code[i] = p.code[i + 1] = ' ';
      i += 2;
      while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          ++line;
        } else {
          p.code[i] = ' ';
        }
        ++i;
      }
      if (i < n) {
        p.code[i] = p.code[i + 1] = ' ';
        i += 2;
      }
      note_comment(src.substr(start, std::min(i, n) - start), comment_line, standalone);
      continue;
    }
    if (c == '"') {
      line_has_code = true;
      const bool raw = is_raw_string_prefix(src, i);
      if (raw) {
        std::size_t d = i + 1;
        std::string delim;
        while (d < n && src[d] != '(' && src[d] != '\n') delim += src[d++];
        const std::string closer = ")" + delim + "\"";
        std::size_t end = src.find(closer, d);
        end = end == std::string_view::npos ? n : end + closer.size();
        for (std::size_t j = i; j < end; ++j) {
          if (src[j] == '\n') {
            ++line;
          } else {
            p.code[j] = ' ';
          }
        }
        i = end;
        continue;
      }
      ++i;
      while (i < n && src[i] != '"' && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n) {
          p.code[i] = ' ';
          ++i;
        }
        p.code[i] = ' ';
        ++i;
      }
      if (i < n && src[i] == '"') ++i;
      continue;
    }
    if (c == '\'') {
      // Digit separator (1'000'000, 0xFF'FF) vs. char literal: a quote is a
      // separator only when it sits inside a pp-number — a prev-digit /
      // next-xdigit peek misreads 0xFF'FF (prev is a hex letter) and u8'a'
      // (prev '8' is a digit but the token is a char literal).
      const bool separator =
          in_numeric_literal(src, i) && i + 1 < n &&
          std::isalnum(static_cast<unsigned char>(src[i + 1])) != 0;
      if (separator) {
        ++i;
        continue;
      }
      line_has_code = true;
      ++i;
      while (i < n && src[i] != '\'' && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n) {
          p.code[i] = ' ';
          ++i;
        }
        p.code[i] = ' ';
        ++i;
      }
      if (i < n && src[i] == '\'') ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) == 0) line_has_code = true;
    ++i;
  }

  const int total_lines = line + 1;
  p.allow.assign(static_cast<std::size_t>(total_lines) + 1, {});
  p.hot.assign(static_cast<std::size_t>(total_lines) + 1, 0);
  p.host.assign(static_cast<std::size_t>(total_lines) + 1, 0);

  bool hot = false;
  int hot_from = 0;
  bool host = false;
  int host_from = 0;
  auto mark = [total_lines](std::vector<char>& map, int from, int to) {
    to = std::min(to, total_lines);
    for (int l = std::max(from, 1); l <= to; ++l) {
      map[static_cast<std::size_t>(l)] = 1;
    }
  };
  for (const CommentNote& note : notes) {
    for (const std::string& rule : note.allow_rules) {
      p.allow[static_cast<std::size_t>(note.line)].insert(rule);
      // A standalone ALLOW comment suppresses on the line that follows it.
      if (note.standalone && note.line + 1 < static_cast<int>(p.allow.size())) {
        p.allow[static_cast<std::size_t>(note.line) + 1].insert(rule);
      }
    }
    if (note.hot_begin && !hot) {
      hot = true;
      hot_from = note.line;
    } else if (note.hot_end && hot) {
      hot = false;
      mark(p.hot, hot_from, note.line);
    }
    if (note.host_begin && !host) {
      host = true;
      host_from = note.line;
    } else if (note.host_end && host) {
      host = false;
      mark(p.host, host_from, note.line);
    }
  }
  if (hot) mark(p.hot, hot_from, total_lines);    // unclosed region runs to EOF
  if (host) mark(p.host, host_from, total_lines);
  return p;
}

std::vector<Tok> tokenize(std::string_view code) {
  std::vector<Tok> out;
  int line = 1;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (is_ident_start(c)) {
      const std::size_t begin = i;
      while (i < code.size() && is_ident_char(code[i])) ++i;
      out.push_back(Tok{begin, i, line, TokKind::kIdent, code.substr(begin, i - begin)});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      const std::size_t begin = i;
      // A quote inside a number is a C++14 digit separator — keep 1'000'000
      // a single kNumber token instead of fragmenting at each quote.
      while (i < code.size() &&
             (is_ident_char(code[i]) || code[i] == '.' ||
              (code[i] == '\'' && i + 1 < code.size() &&
               std::isalnum(static_cast<unsigned char>(code[i + 1])) != 0))) {
        ++i;
      }
      out.push_back(Tok{begin, i, line, TokKind::kNumber, code.substr(begin, i - begin)});
      continue;
    }
    out.push_back(Tok{i, i + 1, line, TokKind::kPunct, code.substr(i, 1)});
    ++i;
  }
  return out;
}

std::size_t prev_nonspace(std::string_view code, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(code[pos])) == 0) return pos;
  }
  return std::string_view::npos;
}

std::size_t next_nonspace(std::string_view code, std::size_t pos) {
  while (pos < code.size()) {
    if (std::isspace(static_cast<unsigned char>(code[pos])) == 0) return pos;
    ++pos;
  }
  return std::string_view::npos;
}

bool preceded_by_member_access(std::string_view code, std::size_t pos) {
  const std::size_t p = prev_nonspace(code, pos);
  if (p == std::string_view::npos) return false;
  if (code[p] == '.') return true;
  return code[p] == '>' && p > 0 && code[p - 1] == '-';
}

std::size_t match_angles(std::string_view code, std::size_t open) {
  int angle = 0;
  int paren = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<') {
      ++angle;
    } else if (c == '>') {
      if (i > 0 && code[i - 1] == '-') continue;  // ->
      --angle;
      if (angle == 0) return i + 1;
    } else if (c == '(') {
      ++paren;
    } else if (c == ')') {
      if (paren == 0) return std::string_view::npos;
      --paren;
    } else if (c == ';' || c == '{') {
      return std::string_view::npos;  // was a comparison, not a template
    }
  }
  return std::string_view::npos;
}

std::string first_template_arg(std::string_view code, std::size_t open) {
  int angle = 0;
  int paren = 0;
  bool complete = false;  // saw the first arg's terminator (',' or final '>')
  std::string arg;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<') {
      ++angle;
      if (angle == 1) continue;
    } else if (c == '>') {
      if (i > 0 && code[i - 1] == '-') {
        // '->' inside an argument; fall through and record it
      } else {
        --angle;
        if (angle == 0) {
          complete = true;
          break;
        }
      }
    } else if (c == '(') {
      ++paren;
    } else if (c == ')') {
      --paren;
    } else if (c == ',' && angle == 1 && paren == 0) {
      complete = true;
      break;
    } else if (c == ';' || c == '{') {
      return {};
    }
    if (angle >= 1) arg += c;
  }
  while (!arg.empty() && std::isspace(static_cast<unsigned char>(arg.back())) != 0) {
    arg.pop_back();
  }
  while (!arg.empty() && std::isspace(static_cast<unsigned char>(arg.front())) != 0) {
    arg.erase(arg.begin());
  }
  return complete ? arg : std::string{};
}

}  // namespace hpcslint
