#!/usr/bin/env python3
"""Smoke-diff bench JSON output against golden ranges.

Usage:
    scripts/check_bench_json.py <golden.json> <bench_output_dir>

The golden spec maps bench JSON file names to checks keyed by dotted paths
into the document ("sweep.rows_bit_identical", "modes.1.exec_s" — integer
segments index arrays). Each check is one of:

    {"equals": <value>}            exact match (bools, strings, counts)
    {"min": <x>}                   value >= x
    {"max": <y>}                   value <= y
    {"min": <x>, "max": <y>}      closed range

Simulated metrics (exec_s, utilisation, ctx_switches) are deterministic
functions of the config, so their ranges are tight: drifting outside one
means the scheduler's behaviour changed and the golden file must be
re-baselined deliberately. Wall-clock throughput numbers get loose one-sided
bounds only.

Besides the golden checks, every MANIFEST_*.json present in the output dir is
validated against the observability manifest schema (hpcs-obs-manifest-v1):
run layout, metric kinds, histogram bucket/edge arity, unique metric names,
and the fixed-layout contract (every run carries the identical metric
name/kind sequence). Host sidecars (MANIFEST_*.host.json) are checked for
their own schema tag and engine-stat fields; fabric sidecars
(MANIFEST_*.fabric.host.json, written by --dist coordinator runs) for the
hpcs-dist-fabric-v1 schema and its counter fields.

Exit status: 0 all checks pass, 1 any failure (missing file, missing path,
out-of-range value, malformed manifest).
"""

import glob
import json
import os
import sys

MANIFEST_SCHEMA = "hpcs-obs-manifest-v1"
HOST_SCHEMA = "hpcs-obs-host-v1"
FABRIC_SCHEMA = "hpcs-dist-fabric-v1"
METRIC_KINDS = ("counter", "gauge", "histogram")

# Event-queue counter family: a manifest that carries any sim.eq_* metric
# must carry the whole set (obs/recorder.cpp registers them together — a
# partial set means the registration order drifted or a counter was dropped).
EQ_COUNTERS = (
    "sim.eq_scheduled",
    "sim.eq_dispatched",
    "sim.eq_resched_inplace",
    "sim.eq_resched_pending",
    "sim.eq_stale_dropped",
    "sim.eq_wheel_armed",
    "sim.eq_wheel_hits",
    "sim.eq_wheel_cascades",
    "sim.eq_wheel_heap_fallbacks",
    "sim.eq_wheel_batches",
    "sim.eq_wheel_max_batch",
    "sim.eq_wheel_level_skips",
)

# Counters in the fabric sidecar's "fabric" object (bench/bench_dist.h
# write_fabric_sidecar). All non-negative integers; fell_back_local is 0/1.
FABRIC_COUNTERS = (
    "workers_connected",
    "workers_rejected",
    "workers_dead",
    "shards_total",
    "shards_assigned",
    "shards_retried",
    "shards_stolen",
    "shards_local",
    "rows_remote",
    "rows_local",
    "rows_stale",
    "frames_bad",
    "fell_back_local",
)


def validate_manifest(doc, fname):
    """Return a list of problem strings for one manifest document."""
    problems = []
    if doc.get("schema") != MANIFEST_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, want {MANIFEST_SCHEMA!r}")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        problems.append("bench must be a non-empty string")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("runs must be a non-empty array")
        return problems

    layout = None  # (name, kind) sequence every run must share
    for ri, run in enumerate(runs):
        where = f"runs.{ri}"
        if not isinstance(run.get("name"), str) or not run.get("name"):
            problems.append(f"{where}.name must be a non-empty string")
        if not isinstance(run.get("sim_end_s"), (int, float)):
            problems.append(f"{where}.sim_end_s must be a number")
        metrics = run.get("metrics")
        if not isinstance(metrics, list) or not metrics:
            problems.append(f"{where}.metrics must be a non-empty array")
            continue

        seen = set()
        this_layout = []
        for mi, m in enumerate(metrics):
            mwhere = f"{where}.metrics.{mi}"
            name, kind = m.get("name"), m.get("kind")
            if not isinstance(name, str) or not name:
                problems.append(f"{mwhere}.name must be a non-empty string")
                continue
            if name in seen:
                problems.append(f"{mwhere}: duplicate metric name {name!r}")
            seen.add(name)
            this_layout.append((name, kind))
            if kind not in METRIC_KINDS:
                problems.append(f"{mwhere} ({name}): kind {kind!r} not in {METRIC_KINDS}")
                continue
            if kind == "counter" and not isinstance(m.get("count"), int):
                problems.append(f"{mwhere} ({name}): counter needs integer count")
            if kind == "gauge" and not isinstance(m.get("value"), (int, float)):
                problems.append(f"{mwhere} ({name}): gauge needs numeric value")
            if kind == "histogram":
                edges, buckets = m.get("edges"), m.get("buckets")
                if not isinstance(m.get("count"), int) or not isinstance(
                    m.get("sum"), (int, float)
                ):
                    problems.append(f"{mwhere} ({name}): histogram needs count and sum")
                if not isinstance(edges, list) or not isinstance(buckets, list):
                    problems.append(f"{mwhere} ({name}): histogram needs edges and buckets")
                    continue
                if len(buckets) != len(edges) + 1:
                    problems.append(
                        f"{mwhere} ({name}): {len(buckets)} buckets for "
                        f"{len(edges)} edges (want edges+1)"
                    )
                if any(not a < b for a, b in zip(edges, edges[1:])):
                    problems.append(f"{mwhere} ({name}): edges not strictly ascending")
                if any(not isinstance(b, int) or b < 0 for b in buckets):
                    problems.append(f"{mwhere} ({name}): buckets must be counts >= 0")

        if layout is None:
            layout = this_layout
        elif this_layout != layout:
            problems.append(
                f"{where}: metric layout differs from runs.0 — the manifest "
                "contract is one fixed registration order for every run"
            )

        names = {n for n, _ in this_layout}
        if any(n.startswith("sim.eq_") for n in names):
            missing = [n for n in EQ_COUNTERS if n not in names]
            if missing:
                problems.append(
                    f"{where}: event-queue counter set incomplete, missing {missing}"
                )
    return problems


def validate_host_sidecar(doc, fname):
    problems = []
    if doc.get("schema") != HOST_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, want {HOST_SCHEMA!r}")
    engine = doc.get("engine")
    if not isinstance(engine, dict):
        problems.append("engine must be an object")
        return problems
    for key in ("tasks", "workers", "jobs_submitted", "jobs_executed", "max_queue_depth"):
        if not isinstance(engine.get(key), int):
            problems.append(f"engine.{key} must be an integer")
    if not isinstance(engine.get("wall_ms"), (int, float)):
        problems.append("engine.wall_ms must be a number")
    return problems


def validate_fabric_sidecar(doc, fname):
    problems = []
    if doc.get("schema") != FABRIC_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, want {FABRIC_SCHEMA!r}")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        problems.append("bench must be a non-empty string")
    if not isinstance(doc.get("port"), int) or not 0 <= doc["port"] <= 65535:
        problems.append("port must be an integer in [0, 65535]")
    fabric = doc.get("fabric")
    if not isinstance(fabric, dict):
        problems.append("fabric must be an object")
        return problems
    for key in FABRIC_COUNTERS:
        val = fabric.get(key)
        if not isinstance(val, int) or val < 0:
            problems.append(f"fabric.{key} must be a non-negative integer")
    if isinstance(fabric.get("fell_back_local"), int) and fabric["fell_back_local"] not in (0, 1):
        problems.append("fabric.fell_back_local must be 0 or 1")
    # Internal consistency: every row came from somewhere, every shard that
    # ran locally is part of the total.
    ints = all(isinstance(fabric.get(k), int) for k in FABRIC_COUNTERS)
    if ints:
        if fabric["shards_local"] > fabric["shards_total"]:
            problems.append("fabric.shards_local exceeds shards_total")
        if fabric["rows_remote"] + fabric["rows_local"] == 0 and fabric["shards_total"] > 0:
            problems.append("fabric produced no rows for a non-empty sweep")
    return problems


def check_manifests(bench_dir):
    failures = 0
    for path in sorted(glob.glob(f"{bench_dir}/MANIFEST_*.json")):
        fname = os.path.basename(path)
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL {fname}: cannot load ({e})")
            failures += 1
            continue
        # Order matters: the fabric sidecar's name also ends in ".host.json".
        if fname.endswith(".fabric.host.json"):
            validate, kind = validate_fabric_sidecar, "fabric sidecar"
        elif fname.endswith(".host.json"):
            validate, kind = validate_host_sidecar, "host sidecar"
        else:
            validate, kind = validate_manifest, "manifest"
        problems = validate(doc, fname)
        for p in problems:
            print(f"FAIL {fname}: {p}")
        failures += len(problems)
        if not problems:
            print(f"  ok  {fname}: valid {kind}")
    return failures


def lookup(doc, dotted):
    node = doc
    for seg in dotted.split("."):
        if isinstance(node, list):
            node = node[int(seg)]
        elif isinstance(node, dict):
            node = node[seg]
        else:
            raise KeyError(seg)
    return node


def run_checks(spec_path, bench_dir):
    with open(spec_path, encoding="utf-8") as f:
        spec = json.load(f)

    failures = 0
    for fname, checks in spec.items():
        path = f"{bench_dir}/{fname}"
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL {fname}: cannot load ({e})")
            failures += len(checks)
            continue

        for dotted, rule in checks.items():
            try:
                value = lookup(doc, dotted)
            except (KeyError, IndexError, ValueError):
                print(f"FAIL {fname}: {dotted} missing")
                failures += 1
                continue

            ok = True
            if "equals" in rule:
                ok = value == rule["equals"]
            if ok and "min" in rule:
                ok = value >= rule["min"]
            if ok and "max" in rule:
                ok = value <= rule["max"]

            if ok:
                print(f"  ok  {fname}: {dotted} = {value}")
            else:
                print(f"FAIL {fname}: {dotted} = {value}, expected {rule}")
                failures += 1

    return failures


def main(argv):
    if len(argv) != 3:
        print("usage: check_bench_json.py <golden.json> <bench_output_dir>", file=sys.stderr)
        return 2
    failures = run_checks(argv[1], argv[2])
    failures += check_manifests(argv[2])
    if failures:
        print(f"bench smoke-diff: {failures} check(s) FAILED")
        return 1
    print("bench smoke-diff: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
