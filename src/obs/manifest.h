#pragma once
// Per-run metrics manifest: the deterministic JSON dump of one or more
// MetricsSnapshots. The renderer lives in src/obs (not bench/) so the tests
// can assert byte-identity between serial and parallel sweeps without
// depending on bench headers; bench drivers wrap it to write
// MANIFEST_<name>.json next to their BENCH_<name>.json.
//
// Everything here is a pure function of the snapshots: fixed key order,
// fixed number formatting (%.10g, matching bench/bench_json.h), no
// wall-clock anywhere. Host-side engine stats go in a separate .host.json
// sidecar precisely so this file can be compared byte-for-byte.

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace hpcs::obs {

/// Schema v2 = v1 (totals, fixed metric layout) + a per-run "windows" block
/// carrying the deterministic windowed time series (empty when --obs-window
/// was not given). scripts/check_bench_json.py validates both; old v1
/// baselines stay readable by the tooling.
inline constexpr const char* kManifestSchema = "hpcs-obs-manifest-v2";

struct ManifestRun {
  std::string name;  ///< run/mode label, e.g. "hpc_fifo_prio"
  MetricsSnapshot metrics;
};

/// Render the manifest document (schema kManifestSchema) for `bench`.
[[nodiscard]] std::string render_manifest_json(const std::string& bench,
                                               const std::vector<ManifestRun>& runs);

/// Render + write to `path`. Returns false on I/O error.
bool write_manifest_json(const std::string& path, const std::string& bench,
                         const std::vector<ManifestRun>& runs);

}  // namespace hpcs::obs
