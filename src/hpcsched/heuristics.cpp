#include "hpcsched/heuristics.h"

#include <algorithm>

#include "common/check.h"

namespace hpcs::hpc {

const char* heuristic_kind_name(HeuristicKind k) {
  switch (k) {
    case HeuristicKind::kUniform: return "uniform";
    case HeuristicKind::kAdaptive: return "adaptive";
    case HeuristicKind::kHybrid: return "hybrid";
  }
  return "?";
}

int classify_band(double util_pct, const HpcTunables& tun) {
  if (util_pct >= static_cast<double>(tun.high_util)) return 2;
  if (util_pct <= static_cast<double>(tun.low_util)) return 0;
  return 1;
}

int classify_priority(double util_pct, const HpcTunables& tun) {
  const int band = classify_band(util_pct, tun);
  const int mid = (tun.min_prio + tun.max_prio) / 2;
  switch (band) {
    case 2: return tun.max_prio;
    case 0: return tun.min_prio;
    default: return mid;
  }
}

double UniformHeuristic::metric(const TaskIterStats& s, const HpcTunables& tun) const {
  (void)tun;
  return s.util_global;
}

double AdaptiveHeuristic::metric(const TaskIterStats& s, const HpcTunables& tun) const {
  const double g = std::clamp(tun.adaptive_g_pct, 0, 100) / 100.0;
  return g * s.util_global_prev + (1.0 - g) * s.util_last;
}

double HybridHeuristic::metric(const TaskIterStats& s, const HpcTunables& tun) const {
  (void)tun;
  // Map the EMA variance of per-iteration utilization into a recency weight
  // L in [0.1, 0.9]: quiet history -> trust the global ratio, noisy history
  // -> trust the last iteration.
  const double x = std::clamp(s.util_emvar / dynamic_variance_, 0.0, 1.0);
  const double l = 0.1 + 0.8 * x;
  return (1.0 - l) * s.util_global_prev + l * s.util_last;
}

std::unique_ptr<Heuristic> make_heuristic(HeuristicKind kind) {
  switch (kind) {
    case HeuristicKind::kUniform: return std::make_unique<UniformHeuristic>();
    case HeuristicKind::kAdaptive: return std::make_unique<AdaptiveHeuristic>();
    case HeuristicKind::kHybrid: return std::make_unique<HybridHeuristic>();
  }
  HPCS_CHECK(false);
  return nullptr;
}

}  // namespace hpcs::hpc
