#include "kernel/rt_class.h"

#include <algorithm>

#include "common/check.h"
#include "kernel/kernel.h"

namespace hpcs::kern {

HPCS_ASSERT_SCHED_CLASS(RtClass);

RtRq& RtClass::rrq(Rq& rq, int index) {
  return static_cast<RtRq&>(*rq.class_rqs[static_cast<std::size_t>(index)]);
}

void RtClass::enqueue(Kernel& k, Rq& rq, Task& t, bool wakeup) {
  (void)k;
  (void)wakeup;
  RtRq& r = rrq(rq, index());
  HPCS_CHECK(t.rt_prio >= 0 && t.rt_prio < kRtPrioLevels);
  r.queues[static_cast<std::size_t>(t.rt_prio)].push_back(&t);
  ++r.nr;
  if (t.policy() == Policy::kRr && t.slice_left <= Duration::zero()) {
    t.slice_left = rr_slice_;
  }
}

void RtClass::dequeue(Kernel& k, Rq& rq, Task& t, bool sleep) {
  (void)k;
  (void)sleep;
  RtRq& r = rrq(rq, index());
  auto& q = r.queues[static_cast<std::size_t>(t.rt_prio)];
  auto it = std::find(q.begin(), q.end(), &t);
  if (it != q.end()) {
    q.erase(it);
    --r.nr;
  }
  // If the task is currently running it was already removed by pick_next.
}

Task* RtClass::pick_next(Kernel& k, Rq& rq) {
  (void)k;
  RtRq& r = rrq(rq, index());
  for (auto& q : r.queues) {
    if (!q.empty()) {
      Task* t = q.front();
      q.pop_front();
      --r.nr;
      return t;
    }
  }
  return nullptr;
}

void RtClass::put_prev(Kernel& k, Rq& rq, Task& t) {
  (void)k;
  RtRq& r = rrq(rq, index());
  // FIFO semantics (and an RR task whose slice is not exhausted) resume at
  // the head of their priority list; an expired RR task rotates to the tail.
  auto& q = r.queues[static_cast<std::size_t>(t.rt_prio)];
  if (t.policy() == Policy::kRr && t.slice_left <= Duration::zero()) {
    t.slice_left = rr_slice_;
    q.push_back(&t);
  } else {
    q.push_front(&t);
  }
  ++r.nr;
}

void RtClass::task_tick(Kernel& k, Rq& rq, Task& t) {
  if (t.policy() != Policy::kRr) return;  // FIFO: no time slicing
  t.slice_left -= k.tick_period();
  if (t.slice_left <= Duration::zero()) {
    RtRq& r = rrq(rq, index());
    // Rotate only if a peer of the same priority is waiting.
    if (!r.queues[static_cast<std::size_t>(t.rt_prio)].empty()) {
      rq.need_resched = true;
    } else {
      t.slice_left = rr_slice_;
    }
  }
}

bool RtClass::wakeup_preempt(Kernel& k, Rq& rq, Task& curr, Task& woken) {
  (void)k;
  (void)rq;
  return woken.rt_prio < curr.rt_prio;  // strictly higher RT priority only
}

void RtClass::yield(Kernel& k, Rq& rq, Task& t) {
  (void)k;
  (void)rq;
  // Expire the slice so put_prev rotates the task to the tail.
  t.slice_left = Duration::zero();
}

Task* RtClass::steal_candidate(Kernel& k, Rq& rq) {
  (void)k;
  RtRq& r = rrq(rq, index());
  for (auto it = r.queues.rbegin(); it != r.queues.rend(); ++it) {
    for (Task* t : *it) {
      if (t->pinned_cpu == kInvalidCpu) return t;
    }
  }
  return nullptr;
}

}  // namespace hpcs::kern
