#pragma once
// Sweep-fabric coordinator: shards a deterministic point list across worker
// connections, streams rows back, and survives every worker failure mode by
// falling back — first to reassignment, ultimately to running points
// locally. Pure state machine: no threads, no sockets, no clock. Time is
// the `now_ms` argument to step(); transports arrive via adopt(). That is
// what makes the failover tests (tests/test_dist.cpp) deterministic.
//
// Determinism contract: every point is a pure function of (job, params,
// index) — the same exp::PureFunction guarantee the in-process engine relies
// on — so a point may be executed twice (retry, steal, stale double
// delivery) and whichever row arrives first is byte-identical to any other.
// Rows commit into an index-addressed slot vector; take_rows() returns them
// in index order. The result is byte-identical to a serial run regardless
// of worker count, shard schedule, or kill schedule.
//
// Liveness / retry:
//   * Any frame from a worker refreshes its liveness; silence past
//     liveness_timeout_ms (or a closed/corrupt connection) marks it dead and
//     requeues its assigned shards.
//   * A shard with no row progress past shard_timeout_ms is *stolen*:
//     requeued for another worker while the slow owner keeps streaming into
//     the void (stale rows are counted, never trusted twice).
//   * Each requeue backs off exponentially (retry_backoff_base_ms * 2^k,
//     capped); after max_shard_attempts the shard is executed locally.
//   * With no workers at all — none connected within connect_wait_ms, or
//     all dead — the remaining points run through the local task function,
//     so the coordinator always terminates.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dist/protocol.h"
#include "dist/registry.h"
#include "dist/transport.h"
#include "obs/recorder.h"

namespace hpcs::dist {

/// Host-side fabric counters for the .fabric.host.json sidecar and the CI
/// smoke assertions. Observational only — never part of deterministic
/// output.
struct FabricStats {
  std::int64_t workers_connected = 0;  ///< HELLOs accepted
  std::int64_t workers_rejected = 0;   ///< HELLOs refused (version mismatch...)
  std::int64_t workers_dead = 0;       ///< closed, corrupt, or timed out
  std::int64_t shards_total = 0;
  std::int64_t shards_assigned = 0;    ///< ASSIGN frames sent
  std::int64_t shards_retried = 0;     ///< requeued after worker death
  std::int64_t shards_stolen = 0;      ///< requeued after shard timeout
  std::int64_t shards_local = 0;       ///< executed by the local fallback
  std::int64_t rows_remote = 0;        ///< rows committed from workers
  std::int64_t rows_local = 0;         ///< rows committed by local fallback
  std::int64_t rows_seeded = 0;        ///< rows pre-committed via seed_row()
  std::int64_t rows_stale = 0;         ///< duplicate/late rows discarded
  std::int64_t frames_bad = 0;         ///< corrupt frames / decode failures
  bool fell_back_local = false;        ///< the no-workers degradation path ran
};

/// One shard's fabric lifetime for the sidecar's "spans" array: when it was
/// first assigned, when its last row landed, how many assignments it took and
/// who finished it. Times are the fabric's now_ms (wall-clock under real TCP,
/// the injected clock under loopback tests) — host-side data, never part of
/// deterministic output.
struct ShardSpan {
  std::uint32_t shard = 0;
  std::int64_t first_assign_ms = -1;  ///< -1 = never assigned remotely
  std::int64_t done_ms = -1;          ///< -1 = finished outside step() timing
  int attempts = 0;
  std::string done_by;                ///< worker name, or "local"
};

struct CoordinatorConfig {
  std::string job;     ///< job name workers resolve in their registry
  std::string params;  ///< opaque parameter blob forwarded in HELLO_ACK
  std::uint32_t shard_size = 1;
  unsigned local_jobs = 1;  ///< exp::ParallelRunner width for local fallback
  std::int64_t connect_wait_ms = 10000;
  std::int64_t liveness_timeout_ms = 5000;
  std::int64_t shard_timeout_ms = 120000;
  std::int64_t retry_backoff_base_ms = 100;
  std::int64_t retry_backoff_cap_ms = 5000;
  int max_shard_attempts = 4;
  /// When true, step() never executes points itself — no exhausted-attempt
  /// shard runs, no all-workers-dead bulk fallback. The owner drives local
  /// progress one point at a time through run_one_local(), which is how the
  /// sweep service interleaves many jobs fairly instead of letting one
  /// coordinator block the loop on a bulk drain.
  bool manual_local = false;
};

class Coordinator {
 public:
  /// `count` points; `local_fn` is the pure per-index task used for
  /// graceful degradation (and must match what workers compute).
  Coordinator(CoordinatorConfig cfg, std::size_t count, TaskFn local_fn);

  /// Hand a fresh connection (TCP accept or loopback end) to the fabric.
  void adopt(std::unique_ptr<Connection> conn, std::int64_t now_ms);

  /// Pump the fabric once: drain frames, detect death/timeouts, assign
  /// eligible shards, degrade to local execution when out of workers.
  void step(std::int64_t now_ms);

  [[nodiscard]] bool done() const { return committed_ == rows_.size(); }

  /// Pre-commit one row from outside the fabric (a content-addressed cache
  /// hit). Points are pure, so a seeded row is byte-interchangeable with a
  /// computed one; a shard whose every row is seeded is marked done by
  /// "cache" and never assigned. Seeding an already-committed index is a
  /// no-op (not a stale row).
  void seed_row(std::uint32_t index, std::string payload, std::int64_t now_ms);

  /// Execute exactly one pending point through the local task function.
  /// Returns false when nothing is pending (everything committed or
  /// currently assigned to a live worker). This is the manual_local drain
  /// primitive: callers decide how often local compute runs and on whose
  /// behalf.
  bool run_one_local(std::int64_t now_ms);

  /// Rows committed since the previous call, in commit order (remote, local,
  /// and seeded alike; `seeded` tells cache writers what not to re-store).
  /// Payloads are copies — take_rows() is still the index-ordered bulk exit.
  struct CommittedRow {
    std::uint32_t index = 0;
    bool seeded = false;
    std::string payload;
  };
  [[nodiscard]] std::vector<CommittedRow> drain_new_rows();

  /// All rows in index order; valid once done(). Leaves the coordinator
  /// empty.
  [[nodiscard]] std::vector<std::string> take_rows();

  [[nodiscard]] const FabricStats& stats() const { return stats_; }
  /// Live (accepted, not dead) worker count — liveness gauge for the sidecar.
  [[nodiscard]] int workers_alive() const;

  /// Attach a fabric-side observability recorder: assign/row/retry/steal/
  /// heartbeat tracepoints fire with `when` = now_ms scaled to nanoseconds
  /// and `cpu` = worker index. nullptr (the default) keeps every site a
  /// single branch, exactly like the kernel's seam.
  void set_obs(obs::Recorder* rec) { obs_ = rec; }
  [[nodiscard]] obs::Recorder* obs() const { return obs_; }

  /// Per-shard spans in shard order; stable once done().
  [[nodiscard]] std::vector<ShardSpan> shard_spans() const;

 private:
  enum class ShardState : std::uint8_t { kPending, kAssigned, kDone };
  enum class RowOrigin : std::uint8_t { kRemote, kLocal, kSeeded };

  struct Shard {
    std::vector<std::uint32_t> indices;
    ShardState state = ShardState::kPending;
    int attempts = 0;             ///< assignments so far
    std::int64_t eligible_ms = 0; ///< backoff gate for the next assignment
    std::int64_t progress_ms = 0; ///< last assign/row time while assigned
    int owner = -1;               ///< index into workers_ while assigned
    int stolen_from = -1;         ///< previous owner still grinding (steal)
    std::int64_t first_assign_ms = -1;  ///< span start (first ASSIGN sent)
    std::int64_t done_ms = -1;          ///< span end (shard became kDone)
    std::string done_by;                ///< finisher ("local" or worker name)
  };

  struct WorkerPeer {
    std::unique_ptr<Connection> conn;
    FrameDecoder decoder;
    std::string name;
    std::int64_t last_seen_ms = 0;
    bool helloed = false;
    bool dead = false;
    int busy_shards = 0;  ///< shards currently assigned to this peer
    std::uint32_t capacity = 1;
  };

  void pump_peer(std::size_t wi, std::int64_t now_ms);
  void handle_frame(std::size_t wi, const Frame& f, std::int64_t now_ms);
  void kill_peer(std::size_t wi, const char* why, std::int64_t now_ms);
  void requeue_shard(std::size_t si, std::int64_t now_ms, bool stolen);
  void assign_ready_shards(std::int64_t now_ms);
  void commit_row(std::uint32_t index, std::string payload, RowOrigin origin);
  void run_shard_locally(std::size_t si, std::int64_t now_ms);
  void run_remaining_locally(std::int64_t now_ms);
  [[nodiscard]] std::int64_t backoff_ms(int attempts) const;
  void maybe_finish(std::int64_t now_ms);
  void mark_done(Shard& s, std::int64_t now_ms, const std::string& who);

  CoordinatorConfig cfg_;
  TaskFn local_fn_;
  std::vector<std::string> rows_;       ///< index-addressed slots
  std::vector<char> row_present_;       ///< slot committed?
  std::size_t committed_ = 0;
  struct CommitLogEntry {
    std::uint32_t index = 0;
    RowOrigin origin = RowOrigin::kRemote;
  };
  std::vector<CommitLogEntry> commit_log_;  ///< commit order, for drain_new_rows
  std::size_t drain_cursor_ = 0;
  std::vector<Shard> shards_;
  std::vector<WorkerPeer> workers_;
  FabricStats stats_;
  obs::Recorder* obs_ = nullptr;
  std::int64_t start_ms_ = -1;  ///< first step() time (connect-wait anchor)
  bool bye_sent_ = false;
};

}  // namespace hpcs::dist
