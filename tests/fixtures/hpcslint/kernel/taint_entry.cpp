// Cross-TU taint fixture, TU 2 of 2: the entry point. scaled_tick() never
// touches a clock itself — it calls jitter_seed(), defined in
// taint_source.cpp. Only whole-program taint propagation through the merged
// call graph can flag it: linting this file alone must stay quiet, linting
// both TUs together must report det-taint on scaled_tick.

namespace hpcs::kern {

double jitter_seed();

double scaled_tick() { return jitter_seed() * 2.0; }

double pure_tick() { return 42.0; }  // no taint: must stay quiet either way

}  // namespace hpcs::kern
