file(REMOVE_RECURSE
  "CMakeFiles/test_power5.dir/test_power5.cpp.o"
  "CMakeFiles/test_power5.dir/test_power5.cpp.o.d"
  "test_power5"
  "test_power5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
