#pragma once
// The software-visible priority-setting interface: issuing `or X,X,X`
// (Table II) on a context, subject to privilege checks. This is the
// "Mechanism" boundary the HPC scheduler talks to (paper §IV-C).

#include "power5/chip.h"
#include "power5/hw_priority.h"

namespace hpcs::p5 {

/// Outcome of attempting a priority change.
enum class IsaResult {
  kOk,             ///< priority applied
  kNoPermission,   ///< privilege level too low: the or-nop is executed as a
                   ///< plain no-op and the priority is unchanged (real HW
                   ///< behaviour: silently ignored, not trapped)
  kBadEncoding,    ///< register number is not a priority encoding
};

class PriorityIsa {
 public:
  explicit PriorityIsa(Chip& chip) : chip_(&chip) {}

  /// Execute `or reg,reg,reg` on the given CPU at the given privilege.
  IsaResult issue_or_nop(CpuId cpu, int reg, Privilege level);

  /// Convenience wrapper: set a priority value directly (still privilege
  /// checked). This is what the kernel-side Mechanism uses.
  IsaResult set_priority(CpuId cpu, HwPrio p, Privilege level);

  [[nodiscard]] HwPrio read_priority(CpuId cpu) const { return chip_->cpu_priority(cpu); }

  /// Counters for test/diagnostic purposes.
  [[nodiscard]] std::int64_t writes() const { return writes_; }
  [[nodiscard]] std::int64_t rejected() const { return rejected_; }

 private:
  Chip* chip_;
  std::int64_t writes_ = 0;
  std::int64_t rejected_ = 0;
};

}  // namespace hpcs::p5
