// Unit and property tests of the discrete-event core: ordering, FIFO
// tie-breaking, cancellation semantics, determinism.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "simcore/simulator.h"

namespace hpcs::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime(30), [&] { order.push_back(3); });
  q.schedule(SimTime(10), [&] { order.push_back(1); });
  q.schedule(SimTime(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule(SimTime(10), [&] { fired = true; });
  EXPECT_TRUE(q.pending(h));
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.pending(h));
  EXPECT_FALSE(q.cancel(h));  // second cancel is a no-op
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime(1), [] {});
  q.pop_and_run();
  EXPECT_FALSE(q.pending(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, SlotRecyclingKeepsHandlesDistinct) {
  EventQueue q;
  EventHandle h1 = q.schedule(SimTime(1), [] {});
  q.pop_and_run();
  // The recycled slot must not make the stale handle valid again.
  EventHandle h2 = q.schedule(SimTime(2), [] {});
  EXPECT_FALSE(q.pending(h1));
  EXPECT_TRUE(q.pending(h2));
  EXPECT_FALSE(q.cancel(h1));
  EXPECT_TRUE(q.cancel(h2));
}

TEST(EventQueue, SizeCountsLiveEventsOnly) {
  EventQueue q;
  EventHandle a = q.schedule(SimTime(1), [] {});
  q.schedule(SimTime(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), SimTime(2));
}

TEST(Simulator, NowAdvancesWithEvents) {
  Simulator s;
  SimTime seen = SimTime::zero();
  s.schedule_in(Duration(100), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, SimTime(100));
  EXPECT_EQ(s.now(), SimTime(100));
}

TEST(Simulator, NestedScheduling) {
  Simulator s;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 5) s.schedule_in(Duration(10), recur);
  };
  s.schedule_in(Duration(10), recur);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), SimTime(50));
}

TEST(Simulator, RunRespectsDeadline) {
  Simulator s;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_in(Duration(i * 10), [&] { ++fired; });
  }
  s.run(SimTime(50));
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(s.now(), SimTime(50));
  s.run();
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, ZeroDelayEventRunsAtCurrentTime) {
  Simulator s;
  SimTime when = SimTime::max();
  s.schedule_in(Duration(5), [&] {
    s.schedule_in(Duration::zero(), [&] { when = s.now(); });
  });
  s.run();
  EXPECT_EQ(when, SimTime(5));
}

// Property: a random schedule/cancel workload never fires cancelled events,
// fires everything else exactly once, and in non-decreasing time order.
TEST(EventQueueProperty, RandomScheduleCancelStress) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    EventQueue q;
    std::vector<EventHandle> handles;
    std::vector<int> fired_count(2000, 0);
    std::vector<bool> cancelled(2000, false);
    SimTime last_fired = SimTime::zero();
    int next_id = 0;

    for (int round = 0; round < 2000; ++round) {
      const double dice = rng.uniform();
      if (dice < 0.6 || q.empty()) {
        const int id = next_id++;
        const SimTime when(rng.uniform_int(0, 100000));
        if (id < 2000) {
          handles.push_back(q.schedule(when, [&fired_count, id] { ++fired_count[static_cast<std::size_t>(id)]; }));
        }
      } else if (dice < 0.8 && !handles.empty()) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(handles.size()) - 1));
        if (q.cancel(handles[pick])) {
          cancelled[pick] = true;
        }
      }
    }
    // Drain; events may be in the "past" relative to each other but must pop
    // in non-decreasing order.
    while (!q.empty()) {
      const SimTime t = q.next_time();
      EXPECT_GE(t, last_fired);
      last_fired = t;
      q.pop_and_run();
    }
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (cancelled[i]) {
        EXPECT_EQ(fired_count[i], 0) << "cancelled event " << i << " fired";
      } else {
        EXPECT_EQ(fired_count[i], 1) << "event " << i << " fired " << fired_count[i] << " times";
      }
    }
  }
}

TEST(EventQueueReschedule, MovesPendingEventWithoutTouchingCallback) {
  EventQueue q;
  std::vector<int> order;
  EventHandle h = q.schedule(SimTime(10), [&] { order.push_back(1); });
  q.schedule(SimTime(20), [&] { order.push_back(2); });
  EXPECT_TRUE(q.reschedule(h, SimTime(30)));  // 1 now fires after 2
  EXPECT_TRUE(q.pending(h));
  EXPECT_EQ(q.size(), 2u);  // the superseded heap entry is not a live event
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventQueueReschedule, StaleHandleReturnsFalse) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime(1), [] {});
  q.pop_and_run();
  EXPECT_FALSE(q.reschedule(h, SimTime(5)));  // already fired
  EventHandle c = q.schedule(SimTime(1), [] {});
  q.cancel(c);
  EXPECT_FALSE(q.reschedule(c, SimTime(5)));  // cancelled
  EXPECT_FALSE(q.reschedule(EventHandle{}, SimTime(5)));  // default handle
}

TEST(EventQueueReschedule, RearmFromInsideFiringCallback) {
  // The recurring-event fast path: the callback re-arms its own slot and the
  // original handle stays valid across every firing.
  EventQueue q;
  struct State {
    EventQueue* q;
    EventHandle h;
    int fired = 0;
  } st{&q, {}, 0};
  st.h = q.schedule(SimTime(10), [&st] {
    if (++st.fired < 5) {
      ASSERT_TRUE(st.q->reschedule(st.h, SimTime(st.fired * 10 + 10)));
    }
  });
  SimTime last = SimTime::zero();
  while (!q.empty()) last = q.pop_and_run();
  EXPECT_EQ(st.fired, 5);
  EXPECT_EQ(last, SimTime(50));
  EXPECT_FALSE(q.pending(st.h));
}

TEST(EventQueueReschedule, FifoOrderFollowsRescheduleTime) {
  // A rescheduled event ties with later-scheduled events at the same time:
  // reschedule() consumes a fresh sequence number, exactly like the
  // cancel+schedule pair it replaces.
  EventQueue q;
  std::vector<int> order;
  EventHandle h = q.schedule(SimTime(5), [&] { order.push_back(0); });
  q.schedule(SimTime(10), [&] { order.push_back(1); });
  EXPECT_TRUE(q.reschedule(h, SimTime(10)));  // now ties with 1, but later seq
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(EventQueueReschedule, CancelThenReuseKeepsGenerationsDistinct) {
  // A slot whose cancelled entry is still lazily parked in the heap must not
  // resurrect the old handle when the slot is eventually recycled.
  EventQueue q;
  EventHandle old = q.schedule(SimTime(50), [] { FAIL() << "cancelled event fired"; });
  q.cancel(old);
  // Drain: the cancelled entry surfaces, the slot is recycled.
  q.schedule(SimTime(1), [] {});
  while (!q.empty()) q.pop_and_run();
  bool fired = false;
  EventHandle fresh = q.schedule(SimTime(60), [&] { fired = true; });
  EXPECT_FALSE(q.pending(old));
  EXPECT_FALSE(q.cancel(old));
  EXPECT_FALSE(q.reschedule(old, SimTime(70)));
  EXPECT_TRUE(q.pending(fresh));
  while (!q.empty()) q.pop_and_run();
  EXPECT_TRUE(fired);
}

TEST(EventQueueClear, ResetsSequenceNumbering) {
  // clear() must reset the FIFO tie-break counter: a reused queue has to
  // behave exactly like a fresh one (determinism contract).
  auto tie_break_order = [](EventQueue& q) {
    std::vector<int> order;
    for (int i = 0; i < 4; ++i) q.schedule(SimTime(7), [&order, i] { order.push_back(i); });
    while (!q.empty()) q.pop_and_run();
    return order;
  };
  EventQueue fresh;
  const auto expected = tie_break_order(fresh);
  EventQueue reused;
  reused.schedule(SimTime(1), [] {});
  reused.schedule(SimTime(2), [] {});
  reused.clear();
  EXPECT_TRUE(reused.empty());
  EXPECT_EQ(tie_break_order(reused), expected);
}

TEST(EventQueueClear, DropsPendingEventsAndHandles) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule(SimTime(5), [&] { fired = true; });
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pending(h));
  EXPECT_FALSE(q.cancel(h));
  EXPECT_FALSE(fired);
}

// --- timing-wheel edge cases ----------------------------------------------
// The wheel keeps near-future events in hashed slot lists and overflows
// far-future ones into the legacy heap; these tests pin the seams between
// the two structures. set_wheel_min_pending(0) forces every in-horizon arm
// onto the wheel so a tiny test population actually exercises it.

TEST(EventQueueWheel, RescheduleCrossesWheelHeapBoundaryBothWays) {
  EventQueue q;
  q.set_wheel_min_pending(0);
  std::vector<int> order;
  // `a` arms inside the wheel horizon (~16.8 ms), `b` beyond it (heap).
  EventHandle a = q.schedule(SimTime(1'000), [&] { order.push_back(1); });
  EventHandle b = q.schedule(SimTime(50'000'000), [&] { order.push_back(2); });
  EXPECT_GE(q.stats().wheel_armed, 1);
  EXPECT_GE(q.stats().heap_armed, 1);
  // Swap the structures: a goes past the horizon, b comes inside it.
  EXPECT_TRUE(q.reschedule(a, SimTime(60'000'000)));
  EXPECT_TRUE(q.reschedule(b, SimTime(2'000)));
  EXPECT_EQ(q.next_time(), SimTime(2'000));
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventQueueWheel, CancelOfWheelResidentEventNeverFires) {
  EventQueue q;
  q.set_wheel_min_pending(0);
  std::vector<int> order;
  EventHandle a = q.schedule(SimTime(500), [&] { order.push_back(1); });
  q.schedule(SimTime(600), [&] { order.push_back(2); });
  EXPECT_GE(q.stats().wheel_armed, 2);
  EXPECT_TRUE(q.cancel(a));
  EXPECT_FALSE(q.cancel(a));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{2}));
  // The cancelled wheel node was lazily purged, not dispatched.
  EXPECT_GE(q.stats().stale_dropped, 1);
}

TEST(EventQueueWheel, SeqWrapPreservesFifoAcrossCascadeAndHeapMerge) {
  // 64 simultaneous events whose insertion sequences wrap through
  // UINT32_MAX mid-batch. With the default arm policy the first ~32 land in
  // the heap (population below the threshold) and the rest in the wheel's
  // level-2 slot, so the drain exercises the wrap-aware tiebreak in the
  // heap's ordering, in the heap-vs-wheel merge, and across a cascade.
  EventQueue q;
  q.set_next_seq_for_test(0xFFFFFFE0u);
  std::vector<int> order;
  const SimTime when(0x300000);  // level-2 distance from cursor 0
  for (int i = 0; i < 64; ++i) {
    q.schedule(when, [&order, i] { order.push_back(i); });
  }
  EXPECT_GE(q.stats().heap_armed, 1);
  EXPECT_GE(q.stats().wheel_armed, 1);
  while (!q.empty()) q.pop_and_run();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_GE(q.stats().wheel_cascades, 1);
}

TEST(EventQueueWheel, ClearDropsWheelAndHeapResidents) {
  EventQueue q;
  q.set_wheel_min_pending(0);
  bool fired = false;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(q.schedule(SimTime(100 + i), [&] { fired = true; }));       // wheel
    handles.push_back(q.schedule(SimTime(50'000'000 + i), [&] { fired = true; }));  // heap
  }
  EXPECT_EQ(q.size(), 20u);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  for (const EventHandle& h : handles) EXPECT_FALSE(q.pending(h));
  // The cleared queue behaves like a fresh one.
  std::vector<int> order;
  q.schedule(SimTime(20), [&order] { order.push_back(2); });
  q.schedule(SimTime(10), [&order] { order.push_back(1); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueWheel, InCallbackSameInstantReArmJoinsTheLiveBatch) {
  // Re-arming the firing event to its own timestamp must dispatch it again
  // within the same instant, after the events already queued there (its new
  // insertion sequence is larger) — identically with and without the wheel.
  auto run = [](bool wheel) {
    EventQueue q;
    q.set_wheel_enabled(wheel);
    q.set_wheel_min_pending(0);
    std::vector<int> order;
    int rearms = 0;
    EventHandle a;
    a = q.schedule(SimTime(100), [&] {
      order.push_back(1);
      if (rearms++ == 0) {
        ASSERT_TRUE(q.reschedule(a, SimTime(100)));
      }
    });
    q.schedule(SimTime(100), [&] { order.push_back(2); });
    while (!q.empty()) q.pop_and_run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 1}));
  };
  run(true);
  run(false);
}

TEST(EventQueueWheel, RoutingPolicyNeverAffectsFiringOrder) {
  // The adaptive arm policy only picks a container; the dispatch order is a
  // pure function of (when, seq). Drive an identical random workload through
  // wheel-always, wheel-never, and the default adaptive routing and demand
  // the same firing sequence.
  auto run = [](int flavor) {
    EventQueue q;
    if (flavor == 0) q.set_wheel_min_pending(0);
    if (flavor == 1) q.set_wheel_enabled(false);
    Rng rng(99);
    std::vector<int> order;
    std::vector<EventHandle> handles;
    std::int64_t now = 0;
    int next_id = 0;
    for (int round = 0; round < 3000; ++round) {
      const double dice = rng.uniform();
      if (dice < 0.55 || q.empty()) {
        const int id = next_id++;
        handles.push_back(q.schedule(SimTime(now + rng.uniform_int(0, 40'000'000)),
                                     [&order, id] { order.push_back(id); }));
      } else if (dice < 0.7 && !handles.empty()) {
        q.cancel(handles[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(handles.size()) - 1))]);
      } else {
        now = q.next_time().ns();
        q.pop_and_run();
      }
    }
    while (!q.empty()) {
      now = q.next_time().ns();
      q.pop_and_run();
    }
    return order;
  };
  const auto wheel_always = run(0);
  const auto wheel_never = run(1);
  const auto adaptive = run(2);
  EXPECT_EQ(wheel_always, wheel_never);
  EXPECT_EQ(wheel_always, adaptive);
}

TEST(EventQueueWheel, RandomScheduleCancelStressWheelForced) {
  // The RandomScheduleCancelStress property with every in-horizon arm forced
  // onto the wheel: monotone non-decreasing pop order, every live event
  // fires exactly once, every cancelled one never fires.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    EventQueue q;
    q.set_wheel_min_pending(0);
    std::vector<EventHandle> handles;
    std::vector<int> fired(2000, 0);
    std::vector<bool> cancelled(2000, false);
    int next_id = 0;
    for (int round = 0; round < 2000; ++round) {
      const double dice = rng.uniform();
      if (dice < 0.6 || q.empty()) {
        const int id = next_id++;
        if (id < 2000) {
          handles.push_back(q.schedule(SimTime(rng.uniform_int(0, 100000)),
                                       [&fired, id] { ++fired[static_cast<std::size_t>(id)]; }));
        }
      } else if (dice < 0.8 && !handles.empty()) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(handles.size()) - 1));
        if (q.cancel(handles[pick])) cancelled[pick] = true;
      }
    }
    std::int64_t last = -1;
    while (!q.empty()) {
      const SimTime t = q.next_time();
      EXPECT_GE(t.ns(), last) << "seed " << seed;
      last = t.ns();
      q.pop_and_run();
    }
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (cancelled[i]) {
        EXPECT_EQ(fired[i], 0) << "seed " << seed << " cancelled event " << i << " fired";
      } else {
        EXPECT_EQ(fired[i], 1) << "seed " << seed << " event " << i;
      }
    }
  }
}

// Determinism: two identical runs produce the identical firing order.
TEST(EventQueueProperty, DeterministicReplay) {
  auto run_once = [](std::uint64_t seed) {
    Rng rng(seed);
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 500; ++i) {
      s.schedule_at(SimTime(rng.uniform_int(0, 1000)), [&order, i] { order.push_back(i); });
    }
    s.run();
    return order;
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

}  // namespace
}  // namespace hpcs::sim
