#include "kernel/sysfs.h"

#include <algorithm>

namespace hpcs::kern {

void Sysfs::register_attr(const std::string& path, Getter get, Setter set) {
  attrs_[path] = Attr{std::move(get), std::move(set)};
}

void Sysfs::register_int(const std::string& path, std::int64_t* target, std::int64_t min_value,
                         std::int64_t max_value) {
  register_attr(
      path, [target]() { return *target; },
      [target, min_value, max_value](std::int64_t v) {
        if (v < min_value || v > max_value) return false;
        *target = v;
        return true;
      });
}

std::optional<std::int64_t> Sysfs::read(const std::string& path) const {
  const auto it = attrs_.find(path);
  if (it == attrs_.end()) return std::nullopt;
  return it->second.get();
}

bool Sysfs::write(const std::string& path, std::int64_t value) {
  const auto it = attrs_.find(path);
  if (it == attrs_.end()) return false;
  return it->second.set(value);
}

std::vector<std::string> Sysfs::list() const {
  std::vector<std::string> out;
  out.reserve(attrs_.size());
  for (const auto& [path, attr] : attrs_) out.push_back(path);
  return out;
}

}  // namespace hpcs::kern
