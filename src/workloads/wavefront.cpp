#include "workloads/wavefront.h"

#include "common/check.h"

namespace hpcs::wl {
namespace {

/// Forward sweep: recv from r-1 (except r=0), compute, send to r+1 (except
/// last). Backward sweep: mirror. Then mark and repeat.
class WavefrontRank final : public mpi::RankProgram {
 public:
  WavefrontRank(int rank, const WavefrontConfig& cfg) : rank_(rank), cfg_(cfg) {
    work_ = cfg.block_work;
    if (static_cast<std::size_t>(rank) < cfg.weights.size()) {
      work_ *= cfg.weights[static_cast<std::size_t>(rank)];
    }
  }

  mpi::MpiOp next() override {
    if (iter_ >= cfg_.iterations) return mpi::OpExit{};
    const int last = cfg_.ranks - 1;
    switch (phase_++) {
      // ---- forward sweep (0 -> last) ----
      case 0:
        if (rank_ == 0) { ++phase_; return mpi::OpCompute{work_}; }
        return mpi::OpRecv{rank_ - 1, 0};
      case 1:
        return mpi::OpCompute{work_};
      case 2:
        if (rank_ == last) { ++phase_; return next(); }
        return mpi::OpSend{rank_ + 1, 0, cfg_.msg_bytes};
      // ---- backward sweep (last -> 0) ----
      case 3:
        if (rank_ == last) { ++phase_; return mpi::OpCompute{work_}; }
        return mpi::OpRecv{rank_ + 1, 1};
      case 4:
        return mpi::OpCompute{work_};
      case 5:
        if (rank_ == 0) { ++phase_; return next(); }
        return mpi::OpSend{rank_ - 1, 1, cfg_.msg_bytes};
      default:
        phase_ = 0;
        ++iter_;
        return mpi::OpMarkIteration{};
    }
  }

 private:
  int rank_;
  WavefrontConfig cfg_;
  double work_;
  int iter_ = 0;
  int phase_ = 0;
};

}  // namespace

ProgramSet make_wavefront(const WavefrontConfig& cfg) {
  HPCS_CHECK(cfg.ranks >= 2);
  HPCS_CHECK(cfg.weights.empty() ||
             static_cast<int>(cfg.weights.size()) == cfg.ranks);
  ProgramSet out;
  for (int r = 0; r < cfg.ranks; ++r) {
    out.push_back(std::make_unique<WavefrontRank>(r, cfg));
  }
  return out;
}

}  // namespace hpcs::wl
