#pragma once
// Fundamental value types shared by every layer of the simulation.
//
// All simulated time is kept in integer nanoseconds. Using a strong type for
// both instants (SimTime) and spans (Duration) prevents the classic
// instant/span mix-up bugs and keeps unit conversions explicit.

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace hpcs {

/// A span of simulated time, in nanoseconds. Signed so that differences and
/// backward corrections are representable; negative durations are legal as
/// intermediate values but never as event delays.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) * 1e-3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) * 1e-9; }

  [[nodiscard]] static constexpr Duration nanoseconds(std::int64_t v) { return Duration(v); }
  [[nodiscard]] static constexpr Duration microseconds(std::int64_t v) { return Duration(v * 1000); }
  [[nodiscard]] static constexpr Duration milliseconds(std::int64_t v) { return Duration(v * 1000000); }
  [[nodiscard]] static constexpr Duration seconds(double v) {
    return Duration(static_cast<std::int64_t>(v * 1e9));
  }
  [[nodiscard]] static constexpr Duration zero() { return Duration(0); }
  [[nodiscard]] static constexpr Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  friend constexpr Duration operator+(Duration a, Duration b) { return Duration(a.ns_ + b.ns_); }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration(a.ns_ - b.ns_); }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration(a.ns_ * k); }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return Duration(a.ns_ * k); }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration(a.ns_ / k); }
  /// Ratio of two spans as a double (e.g. utilization computations).
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

 private:
  std::int64_t ns_ = 0;
};

/// An instant of simulated time (nanoseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) * 1e-6; }

  [[nodiscard]] static constexpr SimTime zero() { return SimTime(0); }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  friend constexpr SimTime operator+(SimTime t, Duration d) { return SimTime(t.ns_ + d.ns()); }
  friend constexpr SimTime operator-(SimTime t, Duration d) { return SimTime(t.ns_ - d.ns()); }
  friend constexpr Duration operator-(SimTime a, SimTime b) { return Duration(a.ns_ - b.ns_); }
  constexpr SimTime& operator+=(Duration d) { ns_ += d.ns(); return *this; }

 private:
  std::int64_t ns_ = 0;
};

/// Abstract computational work, in "work units". One work unit takes one
/// nanosecond on a context running at speed 1.0 (single-thread mode), so a
/// task's intrinsic load is directly its ST execution time in nanoseconds.
using Work = double;

/// Index of a logical CPU (an SMT context as seen by the OS).
using CpuId = int;
/// Index of a physical core.
using CoreId = int;
/// Process identifier of a simulated task.
using Pid = int;

inline constexpr CpuId kInvalidCpu = -1;
inline constexpr Pid kInvalidPid = -1;

[[nodiscard]] std::string format_time(SimTime t);
[[nodiscard]] std::string format_duration(Duration d);

}  // namespace hpcs
