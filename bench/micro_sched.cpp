// Micro-benchmarks (google-benchmark) of the scheduler's hot paths — the
// engineering claim of §IV-A: with ~1 task per CPU, the HPC class's
// round-robin list is as good as (and simpler/cheaper than) the CFS
// red-black tree. Also covers the event queue and the throughput model.

#include <benchmark/benchmark.h>

#include <deque>
#include <memory>
#include <vector>

#include "kernel/rbtree.h"
#include "kernel/task.h"
#include "power5/throughput.h"
#include "simcore/event_queue.h"

namespace {

using hpcs::Duration;
using hpcs::SimTime;

// CFS-style pick-next: erase leftmost, reinsert with advanced key.
void BM_CfsTreePickNext(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  hpcs::kern::RbTree<std::pair<std::int64_t, int>, int> tree;
  for (int i = 0; i < n; ++i) tree.insert({i * 1000, i}, i);
  std::int64_t clock = n * 1000;
  for (auto _ : state) {
    const auto key = *tree.leftmost_key();
    const int v = *tree.leftmost();
    tree.erase(key);
    clock += 1000;
    tree.insert({clock, key.second}, v);
    benchmark::DoNotOptimize(tree.leftmost());
  }
}
BENCHMARK(BM_CfsTreePickNext)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// HPC-style pick-next: deque rotate.
void BM_HpcQueuePickNext(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::deque<int> q;
  for (int i = 0; i < n; ++i) q.push_back(i);
  for (auto _ : state) {
    const int t = q.front();
    q.pop_front();
    q.push_back(t);
    benchmark::DoNotOptimize(q.front());
  }
}
BENCHMARK(BM_HpcQueuePickNext)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_RbTreeInsertErase(benchmark::State& state) {
  hpcs::kern::RbTree<int, int> tree;
  int i = 0;
  for (auto _ : state) {
    tree.insert(i, i);
    if (i >= 1024) tree.erase(i - 1024);
    ++i;
  }
}
BENCHMARK(BM_RbTreeInsertErase);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  hpcs::sim::EventQueue q;
  std::int64_t t = 0;
  int sink = 0;
  for (auto _ : state) {
    q.schedule(SimTime(t + 100), [&sink] { ++sink; });
    q.schedule(SimTime(t + 50), [&sink] { ++sink; });
    q.pop_and_run();
    q.pop_and_run();
    t += 100;
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_EventQueueCancel(benchmark::State& state) {
  hpcs::sim::EventQueue q;
  std::int64_t t = 0;
  for (auto _ : state) {
    auto h = q.schedule(SimTime(t + 100), [] {});
    benchmark::DoNotOptimize(q.cancel(h));
    ++t;
  }
}
BENCHMARK(BM_EventQueueCancel);

void BM_ThroughputModel(benchmark::State& state) {
  const hpcs::p5::ThroughputParams params;
  int pa = 2;
  int pb = 6;
  for (auto _ : state) {
    const auto s = hpcs::p5::context_speeds(params, hpcs::p5::hw_prio_from_int(pa), true,
                                            hpcs::p5::hw_prio_from_int(pb), true);
    benchmark::DoNotOptimize(s);
    pa = pa == 6 ? 2 : pa + 1;
  }
}
BENCHMARK(BM_ThroughputModel);

}  // namespace

BENCHMARK_MAIN();
