#pragma once
// Sweep-service client API framing: the same length-prefixed wire format as
// the dist fabric (u32 len | u8 type | payload, everything little-endian via
// dist::WireWriter/WireReader) with its own frame-type space and version.
// The conversation is
//
//   client -> SUBMIT_JOB   {version, tenant, job, params blob}
//   server -> SUBMIT_ACK   {accept, reason | job id, point count}
//   client -> JOB_STATUS   {job id}
//   server -> STATUS       {job id, known, state, total, done, cached}
//   client -> STREAM_ROWS  {job id}                    (subscribe)
//   server -> ROW          {job id, index, payload}    (replayed + live)
//   server -> JOB_DONE     {job id, final state, total, cached}
//   client -> CANCEL       {job id}
//   server -> CANCEL_ACK   {job id, ok}
//   client -> SHUTDOWN     {}                          (drain: finish + exit)
//   server -> SHUTDOWN_ACK {jobs remaining}
//   either -> ERROR        {reason}                    (fatal, then close)
//
// Reassembly reuses dist::RawFrameDecoder with this protocol's own validity
// predicate, so corrupt peers die at the framing layer exactly like fabric
// peers do.

#include <cstdint>
#include <string>
#include <string_view>

#include "dist/wire.h"

namespace hpcs::svc {

/// Client-API protocol version carried in SUBMIT_JOB; bumped on any frame
/// layout change. Independent of the fabric's dist::kProtoVersion.
inline constexpr std::uint32_t kSvcProtoVersion = 1;

enum class SvcFrameType : std::uint8_t {
  kSubmitJob = 1,  ///< client -> server: version, tenant, job, params
  kSubmitAck,      ///< server -> client: accept/reject, job id, count
  kJobStatus,      ///< client -> server: job id
  kStatus,         ///< server -> client: state/progress snapshot
  kStreamRows,     ///< client -> server: subscribe to a job's rows
  kRow,            ///< server -> client: one committed row
  kJobDone,        ///< server -> client: job reached a terminal state
  kCancel,         ///< client -> server: cancel a job
  kCancelAck,      ///< server -> client: cancel outcome
  kShutdown,       ///< client -> server: drain and exit
  kShutdownAck,    ///< server -> client: drain begun, jobs remaining
  kError,          ///< either direction: fatal condition, reason string
};

/// True when `t` is one of the SvcFrameType enumerators above.
[[nodiscard]] bool svc_frame_type_valid(std::uint8_t t);
[[nodiscard]] const char* svc_frame_type_name(SvcFrameType t);

struct SvcFrame {
  SvcFrameType type = SvcFrameType::kError;
  std::string payload;
};

[[nodiscard]] std::string encode_svc_frame(const SvcFrame& f);

/// Service-typed view of the shared reassembly core (dist::RawFrameDecoder).
class SvcFrameDecoder {
 public:
  using Result = dist::RawFrameDecoder::Result;

  SvcFrameDecoder() : raw_(&svc_frame_type_valid) {}

  void feed(std::string_view bytes) { raw_.feed(bytes); }
  [[nodiscard]] Result next(SvcFrame& out);
  [[nodiscard]] const std::string& error() const { return raw_.error(); }
  [[nodiscard]] std::size_t pending_bytes() const { return raw_.pending_bytes(); }

 private:
  dist::RawFrameDecoder raw_;
};

}  // namespace hpcs::svc
