#pragma once
// FNV-1a 64-bit: the content hash behind the result cache's keys and blob
// checksums. Chosen over a cryptographic hash deliberately — the cache is a
// performance layer over a *deterministic* simulator, so a collision cannot
// corrupt results silently (the blob embeds its key and payload checksum and
// is re-verified on read) and the hash only has to be stable across
// platforms, which a pure integer fold is by construction.

#include <cstdint>
#include <string_view>

namespace hpcs::cache {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes,
                                              std::uint64_t seed = kFnvOffsetBasis) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace hpcs::cache
