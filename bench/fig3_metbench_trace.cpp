// Reproduces Figure 3: MetBench execution traces under (a) the standard
// scheduler, (b) static prioritization, (c) Uniform and (d) Adaptive
// HPCSched. '#' = computing, '.' = waiting; the digit row shows hardware
// priorities while they differ from the default 4.
//
// The four runs fan across the parallel experiment engine (--jobs N /
// HPCS_JOBS); printing happens after collection, in figure order, so the
// output is byte-identical to the serial loop this replaces.

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace hpcs;
  using analysis::SchedMode;

  bench::init_logging(argc, argv);
  bench::reject_dist_unsupported(argc, argv);
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  bench::FigObs fobs("fig3_metbench", bench::parse_obs_options(argc, argv));
  auto e = analysis::MetBenchExperiment::paper();
  e.workload.iterations = 12;  // enough iterations to see the pattern clearly

  const std::vector<std::pair<SchedMode, const char*>> figures = {
      {SchedMode::kBaselineCfs, "(a) standard execution"},
      {SchedMode::kStatic, "(b) static prioritization"},
      {SchedMode::kUniform, "(c) Uniform prioritization"},
      {SchedMode::kAdaptive, "(d) Adaptive prioritization"}};
  std::vector<SchedMode> modes;
  for (const auto& [mode, label] : figures) modes.push_back(mode);

  std::printf("=== Figure 3: effect of the proposed solution on MetBench ===\n\n");
  auto results = bench::run_modes(jobs, modes, [&e, &fobs](SchedMode m) {
    return analysis::run_metbench(e, m, /*trace=*/true, /*seed=*/1, fobs.cfg());
  });
  for (std::size_t i = 0; i < figures.size(); ++i) {
    bench::print_trace_figure(figures[i].second, results[i]);
    if (analysis::is_dynamic_mode(figures[i].first)) bench::print_iteration_series(results[i]);
    std::printf("\n");
    fobs.keep(figures[i].second, std::move(results[i]));
  }
  fobs.finish();
  return 0;
}
