// Reproduces Table III: MetBench balanced and imbalanced characterization —
// Baseline (stock CFS), Static hand-tuned priorities [5], and HPCSched with
// the Uniform and Adaptive heuristics.

#include "bench_common.h"

int main() {
  using namespace hpcs;
  using analysis::SchedMode;

  const auto e = analysis::MetBenchExperiment::paper();

  std::printf("=== Table III: MetBench characterization ===\n\n");
  auto baseline = analysis::run_metbench(e, SchedMode::kBaselineCfs);
  auto stat = analysis::run_metbench(e, SchedMode::kStatic);
  auto uniform = analysis::run_metbench(e, SchedMode::kUniform);
  auto adaptive = analysis::run_metbench(e, SchedMode::kAdaptive);

  bench::print_side_by_side(baseline, analysis::paper_reference_metbench(SchedMode::kBaselineCfs));
  std::printf("\n");
  bench::print_side_by_side(stat, analysis::paper_reference_metbench(SchedMode::kStatic));
  std::printf("\n");
  bench::print_side_by_side(uniform, analysis::paper_reference_metbench(SchedMode::kUniform));
  std::printf("\n");
  bench::print_side_by_side(adaptive, analysis::paper_reference_metbench(SchedMode::kAdaptive));
  std::printf("\n");

  bench::print_improvement_summary("Static vs baseline", baseline, stat, 81.78, 70.90);
  bench::print_improvement_summary("Uniform vs baseline", baseline, uniform, 81.78, 71.74);
  bench::print_improvement_summary("Adaptive vs baseline", baseline, adaptive, 81.78, 71.65);

  std::printf("\npriority changes: uniform=%lld adaptive=%lld\n",
              static_cast<long long>(uniform.hw_prio_changes),
              static_cast<long long>(adaptive.hw_prio_changes));

  // The paper-format table, all four sections.
  std::vector<analysis::TableSection> sections = {
      {"Baseline", &baseline, {4, 4, 4, 4}},
      {"Static", &stat, {4, 6, 4, 6}},
      {"Uniform", &uniform, {}},
      {"Adaptive", &adaptive, {}},
  };
  std::printf("\n%s\n",
              analysis::render_characterization_table("Table III (measured)", sections).c_str());
  return 0;
}
