#include "simmpi/network.h"

#include <algorithm>
#include <cmath>

namespace hpcs::mpi {

Duration NetworkModel::delay(std::int64_t bytes) {
  const double transfer_us = static_cast<double>(bytes) / std::max(1.0, p_.bytes_per_us);
  double total_ns = static_cast<double>(p_.base_latency.ns()) + transfer_us * 1000.0;
  if (p_.jitter_frac > 0.0) {
    total_ns *= rng_.uniform(1.0 - p_.jitter_frac, 1.0 + p_.jitter_frac);
  }
  return Duration(std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(total_ns))));
}

}  // namespace hpcs::mpi
