# Empty dependencies file for test_cfs.
# This may be replaced when dependencies are built.
