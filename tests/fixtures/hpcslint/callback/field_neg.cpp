// Callback value-flow fixture, negative twin of field_pos.cpp: identical
// slot/bind/dispatch shape, but the bound lambda is pure arithmetic. No
// det-taint may be reported anywhere in this TU.
#include <functional>

namespace hpcs::sim {

class Pump {
 public:
  void set_handler();
  void fire();
  std::function<void(int)> cb_;
  long long seen_ = 0;
};

void Pump::set_handler() {
  cb_ = [this](int bias) { seen_ += bias; };
}

void Pump::fire() { cb_(3); }

}  // namespace hpcs::sim
