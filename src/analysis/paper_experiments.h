#pragma once
// Canonical configurations of the paper's evaluation (§V): one function per
// benchmark, parameterized by scheduler mode and an iteration scale so tests
// can run abbreviated versions of the same setups the benches report.
//
// Placement follows the paper's machine: ranks 0..3 on logical CPUs 0..3 of
// one dual-core 2-way-SMT POWER5, so ranks (0,1) share core 0 and (2,3)
// share core 1.

#include "analysis/experiment.h"
#include "workloads/btmz.h"
#include "workloads/metbench.h"
#include "workloads/metbenchvar.h"
#include "workloads/siesta.h"

namespace hpcs::analysis {

/// Reference values from the paper for one experiment section, used by
/// EXPERIMENTS.md generation and the shape checks in tests.
struct PaperReference {
  const char* label;
  double exec_time_s;
  std::vector<double> util_pct;
};

// ---- Table III / Fig. 3: MetBench ----
struct MetBenchExperiment {
  wl::MetBenchConfig workload{};
  std::vector<int> static_prios = {4, 6, 4, 6};
  static MetBenchExperiment paper();  ///< 40 iterations, Table III calibration
};
RunResult run_metbench(const MetBenchExperiment& e, SchedMode mode, bool trace = false,
                       std::uint64_t seed = 1, const obs::ObsConfig& obs = {});

// ---- Table IV / Fig. 4: MetBenchVar ----
struct MetBenchVarExperiment {
  wl::MetBenchVarConfig workload{};
  std::vector<int> static_prios = {4, 6, 4, 6};  ///< tuned for the FIRST period
  static MetBenchVarExperiment paper();  ///< k=15, 45 iterations
};
RunResult run_metbenchvar(const MetBenchVarExperiment& e, SchedMode mode, bool trace = false,
                          std::uint64_t seed = 1, const obs::ObsConfig& obs = {});

// ---- Table V / Fig. 5: BT-MZ ----
struct BtMzExperiment {
  wl::BtMzConfig workload{};
  std::vector<int> static_prios = {4, 4, 5, 6};  ///< the paper's hand-tuned set
  static BtMzExperiment paper();  ///< class A, 200 iterations
};
RunResult run_btmz(const BtMzExperiment& e, SchedMode mode, bool trace = false,
                   std::uint64_t seed = 1, const obs::ObsConfig& obs = {});

// ---- Table VI / Fig. 6: SIESTA ----
struct SiestaExperiment {
  wl::SiestaConfig workload{};
  static SiestaExperiment paper();  ///< benzene-like irregular run
};
RunResult run_siesta(const SiestaExperiment& e, SchedMode mode, bool trace = false,
                       std::uint64_t seed = 1, const obs::ObsConfig& obs = {});

/// The paper's reported numbers (for side-by-side printing).
PaperReference paper_reference_metbench(SchedMode mode);
PaperReference paper_reference_metbenchvar(SchedMode mode);
PaperReference paper_reference_btmz(SchedMode mode);
PaperReference paper_reference_siesta(SchedMode mode);

/// Default kernel/noise/network config shared by all paper experiments.
ExperimentConfig paper_defaults(SchedMode mode, std::uint64_t seed, bool trace,
                                const obs::ObsConfig& obs = {});

}  // namespace hpcs::analysis
