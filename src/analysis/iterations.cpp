#include "analysis/iterations.h"

#include <algorithm>

#include "common/check.h"

namespace hpcs::analysis {

IterationSeries derive_series(const std::vector<mpi::IterationMark>& marks, SimTime start) {
  IterationSeries out;
  SimTime prev_when = start;
  Duration prev_cpu = Duration::zero();
  for (const mpi::IterationMark& m : marks) {
    const Duration wall = m.when - prev_when;
    const Duration cpu = m.cpu_time - prev_cpu;
    out.duration_s.push_back(wall.sec());
    out.util_pct.push_back(wall > Duration::zero() ? 100.0 * (cpu / wall) : 0.0);
    prev_when = m.when;
    prev_cpu = m.cpu_time;
  }
  return out;
}

std::vector<double> imbalance_factor(const RunResult& r) {
  std::vector<double> out;
  if (r.marks.empty()) return out;
  std::size_t iters = r.marks.front().size();
  for (const auto& m : r.marks) iters = std::min(iters, m.size());
  if (iters == 0) return out;

  // Per-rank per-iteration CPU time.
  std::vector<std::vector<double>> cpu(r.marks.size());
  for (std::size_t rank = 0; rank < r.marks.size(); ++rank) {
    Duration prev = Duration::zero();
    for (std::size_t i = 0; i < iters; ++i) {
      cpu[rank].push_back((r.marks[rank][i].cpu_time - prev).sec());
      prev = r.marks[rank][i].cpu_time;
    }
  }
  for (std::size_t i = 0; i < iters; ++i) {
    double mx = 0.0;
    double sum = 0.0;
    for (std::size_t rank = 0; rank < cpu.size(); ++rank) {
      mx = std::max(mx, cpu[rank][i]);
      sum += cpu[rank][i];
    }
    const double mean = sum / static_cast<double>(cpu.size());
    out.push_back(mean > 0.0 ? mx / mean - 1.0 : 0.0);
  }
  return out;
}

double mean_imbalance(const RunResult& r) {
  const auto lambda = imbalance_factor(r);
  if (lambda.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : lambda) sum += v;
  return sum / static_cast<double>(lambda.size());
}

int adaptation_lag(const RunResult& r, int from_iter, double threshold) {
  const auto lambda = imbalance_factor(r);
  HPCS_CHECK(from_iter >= 0);
  for (std::size_t i = static_cast<std::size_t>(from_iter); i < lambda.size(); ++i) {
    if (lambda[i] >= threshold) continue;
    // Must stay settled for the remainder of this behaviour period (or at
    // least two iterations) to count.
    const std::size_t horizon = std::min(lambda.size(), i + 2);
    bool stable = true;
    for (std::size_t j = i; j < horizon; ++j) stable = stable && lambda[j] < threshold;
    if (stable) return static_cast<int>(i) - from_iter;
  }
  return -1;
}

}  // namespace hpcs::analysis
