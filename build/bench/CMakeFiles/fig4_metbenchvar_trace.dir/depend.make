# Empty dependencies file for fig4_metbenchvar_trace.
# This may be replaced when dependencies are built.
