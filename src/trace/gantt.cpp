#include "trace/gantt.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace hpcs::trace {
namespace {

SimTime auto_end(const Tracer& tracer, const std::vector<Pid>& pids) {
  SimTime end = SimTime::zero();
  for (const Pid pid : pids) {
    for (const Interval& iv : tracer.intervals(pid)) end = std::max(end, iv.end);
  }
  return end;
}

}  // namespace

std::string render_gantt(const Tracer& tracer, const std::vector<Pid>& pids,
                         const std::vector<std::string>& labels, const GanttOptions& opt) {
  HPCS_CHECK(pids.size() == labels.size());
  GanttOptions o = opt;
  if (o.end <= o.begin) o.end = auto_end(tracer, pids);
  if (o.end <= o.begin) return "(empty trace)\n";

  const Duration span = o.end - o.begin;
  const Duration cell = span / o.width;
  std::ostringstream out;

  std::size_t label_w = 4;
  for (const auto& l : labels) label_w = std::max(label_w, l.size());

  for (std::size_t i = 0; i < pids.size(); ++i) {
    const Pid pid = pids[i];
    out << labels[i] << std::string(label_w - labels[i].size(), ' ') << " |";
    for (int c = 0; c < o.width; ++c) {
      const SimTime lo = o.begin + cell * c;
      const SimTime hi = (c == o.width - 1) ? o.end : o.begin + cell * (c + 1);
      const double frac = tracer.compute_fraction(pid, lo, hi);
      out << (frac >= 0.5 ? '#' : (frac > 0.05 ? '+' : '.'));
    }
    out << "|\n";

    if (o.show_priorities && !tracer.prio_events(pid).empty()) {
      out << std::string(label_w, ' ') << " |";
      const auto& prios = tracer.prio_events(pid);
      for (int c = 0; c < o.width; ++c) {
        const SimTime lo = o.begin + cell * c;
        // Priority in effect at the start of the cell (default 4).
        int prio = 4;
        for (const PrioEvent& e : prios) {
          if (e.when <= lo) prio = e.prio;
        }
        out << (prio == 4 ? ' ' : static_cast<char>('0' + prio));
      }
      out << "| (hw prio when != 4)\n";
    }
  }
  out << std::string(label_w, ' ') << "  ^" << format_time(o.begin) << " ... "
      << format_time(o.end) << "  ('#'=computing, '.'=waiting)\n";
  return out.str();
}

}  // namespace hpcs::trace
