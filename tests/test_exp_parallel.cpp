// Tests of the parallel experiment engine: the thread pool, the runner's
// ordering/exception semantics, and the headline contract — run_sweep output
// is bit-identical for every jobs value.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/paper_experiments.h"
#include "analysis/sweep.h"
#include "exp/parallel_runner.h"
#include "exp/thread_pool.h"
#include "obs/manifest.h"
#include "workloads/metbench.h"

namespace hpcs {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob) {
  std::atomic<int> count{0};
  exp::ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroWorkersRunsInlineOnWaitIdle) {
  exp::ThreadPool pool(0);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) pool.submit([&order, i] { order.push_back(i); });
  EXPECT_TRUE(order.empty());  // nothing ran yet: no workers
  pool.wait_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, WaitIdleIsReusable) {
  std::atomic<int> count{0};
  exp::ThreadPool pool(2);
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelRunner, MapReturnsResultsInIndexOrder) {
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    exp::ParallelRunner runner(jobs);
    const std::vector<int> out = runner.map(64, [](std::size_t i) { return static_cast<int>(i * i); });
    ASSERT_EQ(out.size(), 64u) << "jobs=" << jobs;
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i * i)) << "jobs=" << jobs;
    }
  }
}

TEST(ParallelRunner, RunAllExecutesEveryTask) {
  std::vector<int> slots(32, 0);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    tasks.push_back([&slots, i] { slots[i] = static_cast<int>(i) + 1; });
  }
  exp::ParallelRunner runner(4);
  runner.run_all(std::move(tasks));
  for (std::size_t i = 0; i < slots.size(); ++i) EXPECT_EQ(slots[i], static_cast<int>(i) + 1);
}

TEST(ParallelRunner, FirstExceptionBySubmissionIndexIsRethrown) {
  for (const unsigned jobs : {1u, 4u}) {
    exp::ParallelRunner runner(jobs);
    std::atomic<int> completed{0};
    std::vector<std::function<void()>> tasks;
    tasks.push_back([&completed] { ++completed; });
    tasks.push_back([] { throw std::runtime_error("first"); });
    tasks.push_back([&completed] { ++completed; });
    tasks.push_back([] { throw std::runtime_error("second"); });
    try {
      runner.run_all(std::move(tasks));
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "first") << "jobs=" << jobs;
    }
    // All non-throwing tasks still ran to completion.
    EXPECT_EQ(completed.load(), 2) << "jobs=" << jobs;
  }
}

TEST(ParallelRunner, JobsFlagParsing) {
  const char* argv1[] = {"prog", "--jobs", "3"};
  EXPECT_EQ(exp::parse_jobs_flag(3, const_cast<char**>(argv1)), 3u);
  const char* argv2[] = {"prog", "--jobs=7"};
  EXPECT_EQ(exp::parse_jobs_flag(2, const_cast<char**>(argv2)), 7u);
  const char* argv3[] = {"prog"};
  EXPECT_GE(exp::parse_jobs_flag(1, const_cast<char**>(argv3)), 1u);
}

// The headline contract: a sweep fanned across N workers produces rows
// bit-identical to the serial loop, for every N.
TEST(ParallelSweep, BitIdenticalAcrossJobCounts) {
  std::vector<analysis::SweepPoint> points;
  for (const auto mode : {analysis::SchedMode::kBaselineCfs, analysis::SchedMode::kUniform,
                          analysis::SchedMode::kAdaptive}) {
    for (const std::uint64_t seed : {1ull, 7ull}) {
      wl::MetBenchConfig w;
      w.iterations = 3;
      points.push_back(analysis::SweepPoint{
          std::string(analysis::sched_mode_name(mode)) + "-" + std::to_string(seed),
          analysis::paper_defaults(mode, seed, false), [w] { return wl::make_metbench(w); }});
    }
  }
  const auto reference = analysis::run_sweep(points, 1);
  ASSERT_EQ(reference.size(), points.size());
  for (const unsigned jobs : {2u, 3u, 8u}) {
    const auto rows = analysis::run_sweep(points, jobs);
    ASSERT_EQ(rows.size(), reference.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].label, reference[i].label) << "jobs=" << jobs;
      EXPECT_EQ(rows[i].exec_s, reference[i].exec_s) << "jobs=" << jobs << " row " << i;
      EXPECT_EQ(rows[i].min_util, reference[i].min_util) << "jobs=" << jobs << " row " << i;
      EXPECT_EQ(rows[i].max_util, reference[i].max_util) << "jobs=" << jobs << " row " << i;
      EXPECT_EQ(rows[i].mean_imbalance, reference[i].mean_imbalance)
          << "jobs=" << jobs << " row " << i;
      EXPECT_EQ(rows[i].prio_changes, reference[i].prio_changes) << "jobs=" << jobs << " row " << i;
      EXPECT_EQ(rows[i].ctx_switches, reference[i].ctx_switches) << "jobs=" << jobs << " row " << i;
      EXPECT_EQ(rows[i].avg_wakeup_latency_us, reference[i].avg_wakeup_latency_us)
          << "jobs=" << jobs << " row " << i;
      EXPECT_EQ(rows[i].improvement_vs_first_pct, reference[i].improvement_vs_first_pct)
          << "jobs=" << jobs << " row " << i;
    }
  }
}

TEST(ParallelRunner, EngineStatsReflectTheBatch) {
  exp::ParallelRunner serial(1);
  (void)serial.map(5, [](std::size_t i) { return i; });
  EXPECT_EQ(serial.last_stats().tasks, 5);
  EXPECT_EQ(serial.last_stats().workers, 0u);  // inline, no pool threads
  EXPECT_EQ(serial.last_stats().jobs_executed, 5);

  exp::ParallelRunner parallel(3);
  (void)parallel.map(8, [](std::size_t i) { return i; });
  EXPECT_EQ(parallel.last_stats().tasks, 8);
  EXPECT_EQ(parallel.last_stats().workers, 3u);
  EXPECT_EQ(parallel.last_stats().jobs_submitted, 8);
  EXPECT_EQ(parallel.last_stats().jobs_executed, 8);
  EXPECT_GE(parallel.last_stats().wall_ms, 0.0);
}

TEST(ThreadPool, PerWorkerExecutedCountsSumToExecuted) {
  exp::ThreadPool pool(3);
  for (int i = 0; i < 50; ++i) pool.submit([] {});
  pool.wait_idle();
  const exp::PoolStats s = pool.stats();
  ASSERT_EQ(s.per_worker_executed.size(), 3u);
  std::int64_t sum = 0;
  for (const std::int64_t n : s.per_worker_executed) {
    EXPECT_GE(n, 0);
    sum += n;
  }
  EXPECT_EQ(sum, s.executed);
  EXPECT_EQ(s.executed, 50);
}

TEST(ThreadPool, InlinePoolHasNoPerWorkerCounters) {
  exp::ThreadPool pool(0);
  pool.submit([] {});
  pool.wait_idle();
  const exp::PoolStats s = pool.stats();
  EXPECT_EQ(s.executed, 1);
  EXPECT_TRUE(s.per_worker_executed.empty());
}

TEST(ParallelRunner, PerWorkerCountsSurfaceInEngineStats) {
  // Serial path: no pool, no per-worker breakdown.
  exp::ParallelRunner serial(1);
  (void)serial.map(4, [](std::size_t i) { return i; });
  EXPECT_TRUE(serial.last_stats().per_worker_executed.empty());

  // Parallel path: one slot per worker, summing to the batch size.
  exp::ParallelRunner parallel(4);
  (void)parallel.map(32, [](std::size_t i) { return i; });
  const exp::EngineStats& s = parallel.last_stats();
  ASSERT_EQ(s.per_worker_executed.size(), 4u);
  std::int64_t sum = 0;
  for (const std::int64_t n : s.per_worker_executed) sum += n;
  EXPECT_EQ(sum, 32);
}

// The observability extension of the headline contract: the rendered
// metrics manifest — every counter, gauge and histogram of every run — is
// byte-identical whether the sweep ran serially or across N workers.
TEST(ParallelSweep, MetricsManifestByteIdenticalAcrossJobCounts) {
  auto e = analysis::MetBenchExperiment::paper();
  e.workload.iterations = 3;
  obs::ObsConfig obs;
  obs.enabled = true;
  const std::vector<analysis::SchedMode> modes = {
      analysis::SchedMode::kBaselineCfs, analysis::SchedMode::kUniform,
      analysis::SchedMode::kAdaptive, analysis::SchedMode::kStatic};

  const auto render = [&](unsigned jobs) {
    exp::ParallelRunner runner(jobs);
    auto results = runner.map(modes.size(), [&](std::size_t i) {
      return analysis::run_metbench(e, modes[i], /*trace=*/false, /*seed=*/1, obs);
    });
    std::vector<obs::ManifestRun> runs;
    for (std::size_t i = 0; i < modes.size(); ++i) {
      runs.push_back({analysis::sched_mode_name(modes[i]), results[i].metrics});
    }
    return obs::render_manifest_json("exp_parallel", runs);
  };

  const std::string reference = render(1);
  EXPECT_FALSE(reference.empty());
  for (const unsigned jobs : {2u, 4u}) {
    EXPECT_EQ(render(jobs), reference) << "jobs=" << jobs;
  }
}

// The v2 windowed series rides the same per-run Recorder, so it must hold
// the same contract: --obs-window output is byte-identical for any --jobs.
TEST(ParallelSweep, WindowedManifestByteIdenticalAcrossJobCounts) {
  auto e = analysis::MetBenchExperiment::paper();
  e.workload.iterations = 3;
  obs::ObsConfig obs;
  obs.enabled = true;
  obs.window_ns = 50'000'000;
  const std::vector<analysis::SchedMode> modes = {
      analysis::SchedMode::kBaselineCfs, analysis::SchedMode::kUniform,
      analysis::SchedMode::kAdaptive, analysis::SchedMode::kStatic};

  const auto render = [&](unsigned jobs) {
    exp::ParallelRunner runner(jobs);
    auto results = runner.map(modes.size(), [&](std::size_t i) {
      return analysis::run_metbench(e, modes[i], /*trace=*/false, /*seed=*/1, obs);
    });
    std::vector<obs::ManifestRun> runs;
    for (std::size_t i = 0; i < modes.size(); ++i) {
      EXPECT_TRUE(results[i].metrics.windows.enabled());
      EXPECT_FALSE(results[i].metrics.windows.samples.empty());
      runs.push_back({analysis::sched_mode_name(modes[i]), results[i].metrics});
    }
    return obs::render_manifest_json("exp_parallel", runs);
  };

  const std::string reference = render(1);
  EXPECT_NE(reference.find("\"window_ns\": 50000000"), std::string::npos);
  for (const unsigned jobs : {2u, 4u}) {
    EXPECT_EQ(render(jobs), reference) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace hpcs
