# Empty dependencies file for fig6_siesta_trace.
# This may be replaced when dependencies are built.
