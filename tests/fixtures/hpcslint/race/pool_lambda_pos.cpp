// Unguarded shared fields, two spawn shapes. Both classes own a mutex —
// they opted into internal locking — yet no access path holds it:
//  * Tally::total_ is written from an exp::ThreadPool-style submission and
//    read from the main context;
//  * Gauge::level_ is written from a std::thread body and read from the
//    main context.
// hpcslint must flag each field once with rule shared-race and suggest
// GUARDED_BY(mu_).
struct Mutex {};
struct MutexLock { explicit MutexLock(Mutex& m); };
struct ThreadPool {
  template <class F>
  void submit(F f);
};
namespace std {
struct thread {
  template <class F>
  explicit thread(F f);
  void join();
};
}  // namespace std

namespace fx {

class Tally {
 public:
  void start() {
    pool_.submit([this] { total_ += 1; });
  }
  long read() { return total_; }

 private:
  Mutex mu_;
  ThreadPool pool_;
  long total_ = 0;
};

class Gauge {
 public:
  void start() {
    std::thread t([this] { level_ += 1; });
    t.join();
  }
  long read() { return level_; }

 private:
  Mutex mu_;
  long level_ = 0;
};

}  // namespace fx
