#pragma once
// Parallel experiment engine: fan a batch of *independent* experiment runs
// across a thread pool with results committed in submission order, so the
// output of a parallel run is bit-identical to the serial loop it replaces.
//
// Why this is safe: run_experiment() (and everything the sweep / table /
// ablation drivers execute per point) is fully self-contained — each run
// owns its Simulator, Kernel and Rng, seeded from its config alone. Runs
// therefore commute, and writing each result into a pre-allocated,
// index-addressed slot makes the collected vector independent of worker
// interleaving. Anything order-dependent (e.g. a sweep's
// improvement-vs-first column) is computed *after* collection.
//
// Knobs: the --jobs N flag (parse_jobs_flag) and the HPCS_JOBS environment
// variable; default_jobs() resolves env -> hardware_concurrency.

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "exp/thread_pool.h"

namespace hpcs::exp {

/// Host-side engine stats for the last run_all()/map() batch: how the sweep
/// executed on this machine. Strictly observational — simulation results are
/// a pure function of their configs — and therefore reported in the
/// .host.json sidecar, never in the deterministic metrics manifest.
struct EngineStats {
  std::int64_t tasks = 0;            ///< batch size
  unsigned workers = 0;              ///< pool threads actually spawned (0 = inline)
  std::int64_t jobs_submitted = 0;   ///< pool submit() calls
  std::int64_t jobs_executed = 0;    ///< pool jobs completed
  std::int64_t max_queue_depth = 0;  ///< job-queue high-water mark
  /// Jobs completed per pool thread (size == workers; empty for the serial
  /// path). The spread shows how evenly the batch divided across workers —
  /// one saturated worker and N-1 idle ones means the sweep serialized.
  std::vector<std::int64_t> per_worker_executed;
  double wall_ms = 0.0;              ///< batch wall time (host clock)
};

/// Resolve the default worker count: HPCS_JOBS if set (clamped to >= 1),
/// else std::thread::hardware_concurrency().
[[nodiscard]] unsigned default_jobs();

/// Scan argv for "--jobs N" / "--jobs=N" (removing nothing); returns
/// default_jobs() when the flag is absent. Benches call this so every
/// table*/ablation_* driver grows the knob uniformly.
[[nodiscard]] unsigned parse_jobs_flag(int argc, char** argv);

class ParallelRunner {
 public:
  /// `jobs` parallel workers; 0 means default_jobs(). jobs=1 runs inline on
  /// the caller's thread (no pool threads, no synchronization).
  explicit ParallelRunner(unsigned jobs = 0);

  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Stats of the most recent run_all()/map() batch (host-side only).
  [[nodiscard]] const EngineStats& last_stats() const { return last_stats_; }

  /// Run every task to completion, in parallel up to jobs(). Each task is
  /// self-contained and writes its own outputs (typically a captured
  /// reference to a result slot). The first exception (by submission index)
  /// is rethrown after all tasks have finished.
  void run_all(std::vector<std::function<void()>> tasks);

  /// Apply `fn` to 0..n-1 in parallel and return the results in index
  /// order — the deterministic map used by run_sweep and the table drivers.
  template <typename Fn>
  auto map(std::size_t n, Fn fn) -> std::vector<decltype(fn(std::size_t{}))> {
    using R = decltype(fn(std::size_t{}));
    std::vector<std::optional<R>> slots(n);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      tasks.push_back([&slots, &fn, i] { slots[i].emplace(fn(i)); });
    }
    run_all(std::move(tasks));
    std::vector<R> out;
    out.reserve(n);
    for (std::optional<R>& s : slots) out.push_back(std::move(*s));
    return out;
  }

 private:
  unsigned jobs_;
  EngineStats last_stats_;
};

}  // namespace hpcs::exp
