#include "power5/throughput.h"

#include <algorithm>

#include "common/check.h"

namespace hpcs::p5 {

double speed_for_share(const ThroughputParams& p, double share) {
  HPCS_CHECK_MSG(p.share_points.size() == p.speed_points.size() && p.share_points.size() >= 2,
                 "malformed throughput curve");
  share = std::clamp(share, 0.0, 1.0);
  const auto& xs = p.share_points;
  const auto& ys = p.speed_points;
  if (share <= xs.front()) return ys.front();
  if (share >= xs.back()) return ys.back();
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (share <= xs[i]) {
      const double t = (share - xs[i - 1]) / (xs[i] - xs[i - 1]);
      return ys[i - 1] + t * (ys[i] - ys[i - 1]);
    }
  }
  return ys.back();
}

namespace {
/// Grid resolution. 512 cells keeps the walk inside one cell to at most a
/// couple of anchor comparisons for any plausible curve while the table stays
/// cache-resident (2 KiB of segment indices).
constexpr std::size_t kLutCells = 512;
}  // namespace

SpeedLut::SpeedLut(const ThroughputParams& p) : xs_(p.share_points), ys_(p.speed_points) {
  HPCS_CHECK_MSG(xs_.size() == ys_.size() && xs_.size() >= 2, "malformed throughput curve");
  HPCS_CHECK_MSG(std::is_sorted(xs_.begin(), xs_.end()), "share anchors must be sorted");
  scale_ = static_cast<double>(kLutCells);
  seg_.resize(kLutCells);
  std::uint32_t i = 1;
  for (std::size_t c = 0; c < kLutCells; ++c) {
    const double cell_left = static_cast<double>(c) / scale_;
    while (i + 1 < xs_.size() && xs_[i] < cell_left) ++i;
    seg_[c] = i;
  }
}

double SpeedLut::operator()(double share) const {
  share = std::clamp(share, 0.0, 1.0);
  if (share <= xs_.front()) return ys_.front();
  if (share >= xs_.back()) return ys_.back();
  // Jump straight to the cell's first candidate segment, then advance past
  // any anchors inside the cell. Comparisons and interpolation match the
  // linear scan in speed_for_share exactly, so values are bit-identical.
  auto c = static_cast<std::size_t>(share * scale_);
  if (c >= seg_.size()) c = seg_.size() - 1;
  std::size_t i = seg_[c];
  while (i + 1 < xs_.size() && share > xs_[i]) ++i;
  const double t = (share - xs_[i - 1]) / (xs_[i] - xs_[i - 1]);
  return ys_[i - 1] + t * (ys_[i] - ys_[i - 1]);
}

ThroughputParams power6_params() {
  ThroughputParams p;
  p.share_points = {0.0,  1.0 / 64, 1.0 / 32, 1.0 / 16, 0.125, 0.25,
                    0.5,  0.75,     0.875,    15.0 / 16, 31.0 / 32, 1.0};
  p.speed_points = {0.0,  0.02, 0.04, 0.07, 0.13, 0.45,
                    0.58, 0.76, 0.82, 0.84, 0.85, 0.86};
  return p;
}

ThroughputParams cell_params() {
  // CELL-like preset (the paper: the CELL processor exposes 3 priority
  // levels per task). Coarser lever: only three distinct operating points,
  // modeled as a flatter curve with a single big step.
  ThroughputParams p;
  p.share_points = {0.0, 0.125, 0.25, 0.5, 0.75, 0.875, 1.0};
  p.speed_points = {0.0, 0.30, 0.45, 0.60, 0.70, 0.72, 0.72};
  return p;
}

double decode_share_a(HwPrio a, HwPrio b) {
  const DecodeAllocation alloc = decode_allocation(a, b);
  HPCS_CHECK_MSG(!alloc.special, "decode_share_a on special priorities");
  return static_cast<double>(alloc.cycles_a) / static_cast<double>(alloc.window);
}

namespace {

/// Shared implementation of context_speeds, parameterized on the share->speed
/// evaluator (the linear scan or a SpeedLut). Must stay a single code path so
/// both variants make identical decisions.
template <typename SpeedFn>
CoreSpeeds context_speeds_impl(const ThroughputParams& p, const SpeedFn& speed, HwPrio a,
                               bool a_active, HwPrio b, bool b_active, bool a_snoozed,
                               bool b_snoozed) {
  const auto pair_speeds = [&speed](double share_a) -> CoreSpeeds {
    return {speed(share_a), speed(1.0 - share_a)};
  };

  const bool a_on = a_active && a != HwPrio::kOff;
  const bool b_on = b_active && b != HwPrio::kOff;

  if (!a_on && !b_on) return {0.0, 0.0};
  if (a_on && !b_on) {
    if (b_snoozed || p.idle_contention_prio < 0) return {p.st_speed, 0.0};
    // The idle sibling context spins (SMT snooze disabled or not yet
    // triggered) and keeps consuming the decode share of
    // `idle_contention_prio`.
    const HwPrio idle = hw_prio_from_int(p.idle_contention_prio);
    const CoreSpeeds s = context_speeds_impl(p, speed, a, true, idle, true, false, false);
    return {s.a, 0.0};
  }
  if (!a_on && b_on) {
    if (a_snoozed || p.idle_contention_prio < 0) return {0.0, p.st_speed};
    const HwPrio idle = hw_prio_from_int(p.idle_contention_prio);
    const CoreSpeeds s = context_speeds_impl(p, speed, idle, true, b, true, false, false);
    return {0.0, s.b};
  }

  // Both active. Handle the special priorities first (paper §II-B):
  // priority 7 means the sibling is off; if both claim 7 the hardware cannot
  // honor it — treat as equal regular share.
  if (a == HwPrio::kVeryHigh && b != HwPrio::kVeryHigh) return {p.st_speed, 0.0};
  if (b == HwPrio::kVeryHigh && a != HwPrio::kVeryHigh) return {0.0, p.st_speed};
  if (a == HwPrio::kVeryHigh && b == HwPrio::kVeryHigh) return pair_speeds(0.5);

  // Priority 1 = background: the foreground thread runs near ST speed, the
  // background thread picks up leftovers.
  if (a == HwPrio::kVeryLow && b == HwPrio::kVeryLow) return pair_speeds(0.5);
  if (a == HwPrio::kVeryLow) return {p.background_bg, p.background_fg};
  if (b == HwPrio::kVeryLow) return {p.background_fg, p.background_bg};

  return pair_speeds(decode_share_a(a, b));
}

}  // namespace

CoreSpeeds context_speeds(const ThroughputParams& p, HwPrio a, bool a_active, HwPrio b,
                          bool b_active, bool a_snoozed, bool b_snoozed) {
  const auto scan = [&p](double share) { return speed_for_share(p, share); };
  return context_speeds_impl(p, scan, a, a_active, b, b_active, a_snoozed, b_snoozed);
}

CoreSpeeds context_speeds(const ThroughputParams& p, const SpeedLut& lut, HwPrio a,
                          bool a_active, HwPrio b, bool b_active, bool a_snoozed,
                          bool b_snoozed) {
  return context_speeds_impl(p, lut, a, a_active, b, b_active, a_snoozed, b_snoozed);
}

}  // namespace hpcs::p5
