#include "obs/chrome_trace.h"

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/check.h"
#include "kernel/task.h"

namespace hpcs::obs {
namespace {

[[nodiscard]] bool is_idle(const kern::Task* t) {
  return t == nullptr || t->policy() == kern::Policy::kIdle;
}

/// ts/dur in microseconds with fixed precision: integer nanoseconds / 1000
/// renders exactly, so output is deterministic across platforms.
[[nodiscard]] std::string us(SimTime t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(t.ns()) / 1000.0);
  return buf;
}

[[nodiscard]] std::string us(Duration d) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(d.ns()) / 1000.0);
  return buf;
}

[[nodiscard]] std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void append_event(std::string& out, bool& first, const std::string& body) {
  if (!first) out += ",\n";
  first = false;
  out += "  {" + body + "}";
}

// --- streaming spool frame encoding (private, native-endian) ---------------

enum : std::uint8_t { kFrameSlice = 0, kFramePrio = 1, kFrameIter = 2 };

// HPCS_HOST_BEGIN — spool-file IO: these helpers move already-deterministic
// frame bytes to/from the host tmpfile; no simulation state is read here.
void put_bytes(std::FILE* f, const void* p, std::size_t n, std::size_t& bytes) {
  HPCS_CHECK_MSG(std::fwrite(p, 1, n, f) == n, "chrome trace spool write failed");
  bytes += n;
}

template <typename T>
void put_pod(std::FILE* f, const T& v, std::size_t& bytes) {
  put_bytes(f, &v, sizeof(T), bytes);
}

void put_str(std::FILE* f, const std::string& s, std::size_t& bytes) {
  const auto len = static_cast<std::uint32_t>(s.size());
  put_pod(f, len, bytes);
  put_bytes(f, s.data(), s.size(), bytes);
}

template <typename T>
[[nodiscard]] T get_pod(std::FILE* f) {
  T v{};
  HPCS_CHECK_MSG(std::fread(&v, 1, sizeof(T), f) == sizeof(T),
                 "chrome trace spool truncated");
  return v;
}

[[nodiscard]] std::string get_str(std::FILE* f) {
  const auto len = get_pod<std::uint32_t>(f);
  std::string s(len, '\0');
  if (len != 0) {
    HPCS_CHECK_MSG(std::fread(s.data(), 1, len, f) == len,
                   "chrome trace spool truncated");
  }
  return s;
}
// HPCS_HOST_END

}  // namespace

// --- buffered sink ---------------------------------------------------------

void ChromeTraceSink::on_switch(SimTime t, CpuId cpu, const kern::Task* prev,
                                const kern::Task* next) {
  (void)prev;  // the open slice already knows who is leaving
  if (cpu >= static_cast<CpuId>(open_.size())) {
    open_.resize(static_cast<std::size_t>(cpu) + 1);
  }
  OpenSlice& o = open_[static_cast<std::size_t>(cpu)];
  if (o.open) {
    slices_.push_back(Slice{cpu, o.pid, o.name, o.begin, t});
    o.open = false;
  }
  if (!is_idle(next)) {
    o.open = true;
    o.pid = next->pid();
    o.name = next->name();
    o.begin = t;
  }
}

void ChromeTraceSink::on_hw_prio(SimTime t, const kern::Task& task, p5::HwPrio prio) {
  prios_.push_back(PrioSample{task.pid(), task.name(), t, static_cast<int>(prio)});
}

void ChromeTraceSink::on_iteration(SimTime t, const kern::Task& task, int iteration,
                                   double util_last, double util_metric) {
  iters_.push_back(IterationMark{task.pid(), task.name(), t, iteration, util_last, util_metric});
}

void ChromeTraceSink::finalize(SimTime end) {
  for (std::size_t cpu = 0; cpu < open_.size(); ++cpu) {
    OpenSlice& o = open_[cpu];
    if (!o.open) continue;
    slices_.push_back(Slice{static_cast<CpuId>(cpu), o.pid, o.name, o.begin, end});
    o.open = false;
  }
}

void ChromeTraceSink::replay(Visitor& v) {
  for (const Slice& s : slices_) v.on_slice(s);
  for (const PrioSample& p : prios_) v.on_prio(p);
  for (const IterationMark& m : iters_) v.on_iteration(m);
}

// --- streaming sink --------------------------------------------------------

// HPCS_HOST_BEGIN — spool lifetime: the tmpfile is host scratch space.
ChromeTraceStreamSink::ChromeTraceStreamSink() : spool_(std::tmpfile()) {
  HPCS_CHECK_MSG(spool_ != nullptr, "cannot create chrome trace spool file");
}

ChromeTraceStreamSink::~ChromeTraceStreamSink() {
  if (spool_ != nullptr) std::fclose(spool_);  // tmpfile: unlinked, auto-deleted
}
// HPCS_HOST_END

void ChromeTraceStreamSink::put_slice(const Slice& s) {
  put_pod(spool_, static_cast<std::uint8_t>(kFrameSlice), spool_bytes_);
  put_pod(spool_, static_cast<std::int32_t>(s.cpu), spool_bytes_);
  put_pod(spool_, static_cast<std::int32_t>(s.pid), spool_bytes_);
  put_pod(spool_, s.begin.ns(), spool_bytes_);
  put_pod(spool_, s.end.ns(), spool_bytes_);
  put_str(spool_, s.name, spool_bytes_);
  ++spooled_records_;
}

void ChromeTraceStreamSink::put_prio(const PrioSample& p) {
  put_pod(spool_, static_cast<std::uint8_t>(kFramePrio), spool_bytes_);
  put_pod(spool_, static_cast<std::int32_t>(p.pid), spool_bytes_);
  put_pod(spool_, p.when.ns(), spool_bytes_);
  put_pod(spool_, static_cast<std::int32_t>(p.prio), spool_bytes_);
  put_str(spool_, p.task, spool_bytes_);
  ++spooled_records_;
}

void ChromeTraceStreamSink::put_iter(const IterationMark& m) {
  put_pod(spool_, static_cast<std::uint8_t>(kFrameIter), spool_bytes_);
  put_pod(spool_, static_cast<std::int32_t>(m.pid), spool_bytes_);
  put_pod(spool_, m.when.ns(), spool_bytes_);
  put_pod(spool_, static_cast<std::int32_t>(m.iteration), spool_bytes_);
  put_pod(spool_, m.util_last, spool_bytes_);
  put_pod(spool_, m.util_metric, spool_bytes_);
  put_str(spool_, m.task, spool_bytes_);
  ++spooled_records_;
}

void ChromeTraceStreamSink::on_switch(SimTime t, CpuId cpu, const kern::Task* prev,
                                      const kern::Task* next) {
  (void)prev;
  HPCS_CHECK_MSG(!replaying_, "chrome trace capture after replay");
  if (cpu >= static_cast<CpuId>(open_.size())) {
    open_.resize(static_cast<std::size_t>(cpu) + 1);
  }
  OpenSlice& o = open_[static_cast<std::size_t>(cpu)];
  if (o.open) {
    put_slice(Slice{cpu, o.pid, o.name, o.begin, t});
    o.open = false;
  }
  if (!is_idle(next)) {
    o.open = true;
    o.pid = next->pid();
    o.name = next->name();
    o.begin = t;
  }
}

void ChromeTraceStreamSink::on_hw_prio(SimTime t, const kern::Task& task, p5::HwPrio prio) {
  HPCS_CHECK_MSG(!replaying_, "chrome trace capture after replay");
  put_prio(PrioSample{task.pid(), task.name(), t, static_cast<int>(prio)});
}

void ChromeTraceStreamSink::on_iteration(SimTime t, const kern::Task& task, int iteration,
                                         double util_last, double util_metric) {
  HPCS_CHECK_MSG(!replaying_, "chrome trace capture after replay");
  put_iter(IterationMark{task.pid(), task.name(), t, iteration, util_last, util_metric});
}

void ChromeTraceStreamSink::finalize(SimTime end) {
  for (std::size_t cpu = 0; cpu < open_.size(); ++cpu) {
    OpenSlice& o = open_[cpu];
    if (!o.open) continue;
    put_slice(Slice{static_cast<CpuId>(cpu), o.pid, o.name, o.begin, end});
    o.open = false;
  }
}

void ChromeTraceStreamSink::replay(Visitor& v) {
  replaying_ = true;
  // HPCS_HOST_BEGIN — rewinding the host spool; frame decode is above.
  HPCS_CHECK_MSG(std::fflush(spool_) == 0, "chrome trace spool flush failed");
  // One sequential pass per record kind keeps the grouped capture order of
  // the buffered sink (all slices, then prios, then iterations) while the
  // spool holds them interleaved.
  for (std::uint8_t want = kFrameSlice; want <= kFrameIter; ++want) {
    HPCS_CHECK_MSG(std::fseek(spool_, 0, SEEK_SET) == 0, "chrome trace spool seek failed");
    for (std::size_t i = 0; i < spooled_records_; ++i) {
      const auto kind = get_pod<std::uint8_t>(spool_);
      switch (kind) {
        case kFrameSlice: {
          Slice s;
          s.cpu = get_pod<std::int32_t>(spool_);
          s.pid = get_pod<std::int32_t>(spool_);
          s.begin = SimTime(get_pod<std::int64_t>(spool_));
          s.end = SimTime(get_pod<std::int64_t>(spool_));
          s.name = get_str(spool_);
          if (kind == want) v.on_slice(s);
          break;
        }
        case kFramePrio: {
          PrioSample p;
          p.pid = get_pod<std::int32_t>(spool_);
          p.when = SimTime(get_pod<std::int64_t>(spool_));
          p.prio = get_pod<std::int32_t>(spool_);
          p.task = get_str(spool_);
          if (kind == want) v.on_prio(p);
          break;
        }
        case kFrameIter: {
          IterationMark m;
          m.pid = get_pod<std::int32_t>(spool_);
          m.when = SimTime(get_pod<std::int64_t>(spool_));
          m.iteration = get_pod<std::int32_t>(spool_);
          m.util_last = get_pod<double>(spool_);
          m.util_metric = get_pod<double>(spool_);
          m.task = get_str(spool_);
          if (kind == want) v.on_iteration(m);
          break;
        }
        default: HPCS_CHECK_MSG(false, "chrome trace spool corrupt");
      }
    }
  }
  // HPCS_HOST_END
}

// --- rendering -------------------------------------------------------------

namespace {

/// Pass 1 over a capture: everything the emit pass must know up front —
/// the CPU row count and the first-appearance order of iteration tracks.
struct CollectVisitor final : ChromeTraceCapture::Visitor {
  int max_cpu = -1;
  std::vector<Pid> iter_pids;
  std::vector<std::string> iter_tasks;

  void on_slice(const ChromeTraceCapture::Slice& s) override {
    if (s.cpu > max_cpu) max_cpu = s.cpu;
  }
  void on_prio(const ChromeTraceCapture::PrioSample&) override {}
  void on_iteration(const ChromeTraceCapture::IterationMark& m) override {
    for (const Pid p : iter_pids) {
      if (p == m.pid) return;
    }
    iter_pids.push_back(m.pid);
    iter_tasks.push_back(m.task);
  }
};

/// Pass 2: emit the JSON events. Iteration thread metadata is flushed just
/// before the first instant, matching the historical single-pass layout.
struct EmitVisitor final : ChromeTraceCapture::Visitor {
  std::string& out;
  bool& first;
  int pid;
  const CollectVisitor& info;
  bool iter_meta_done = false;

  EmitVisitor(std::string& o, bool& f, int process, const CollectVisitor& i)
      : out(o), first(f), pid(process), info(i) {}

  void on_slice(const ChromeTraceCapture::Slice& s) override {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
                  "\"ts\":%s,\"dur\":%s,\"args\":{\"pid\":%d}",
                  esc(s.name).c_str(), pid, s.cpu, us(s.begin).c_str(),
                  us(s.end - s.begin).c_str(), s.pid);
    append_event(out, first, buf);
  }

  void on_prio(const ChromeTraceCapture::PrioSample& p) override {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"name\":\"hw_prio %s\",\"ph\":\"C\",\"pid\":%d,"
                  "\"ts\":%s,\"args\":{\"prio\":%d}",
                  esc(p.task).c_str(), pid, us(p.when).c_str(), p.prio);
    append_event(out, first, buf);
  }

  void on_iteration(const ChromeTraceCapture::IterationMark& m) override {
    char buf[256];
    if (!iter_meta_done) {
      iter_meta_done = true;
      for (std::size_t i = 0; i < info.iter_pids.size(); ++i) {
        std::snprintf(buf, sizeof(buf),
                      "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                      "\"args\":{\"name\":\"%s iterations\"}",
                      pid, 10000 + info.iter_pids[i], esc(info.iter_tasks[i]).c_str());
        append_event(out, first, buf);
      }
    }
    std::snprintf(buf, sizeof(buf),
                  "\"name\":\"iter %d\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
                  "\"tid\":%d,\"ts\":%s,"
                  "\"args\":{\"task\":\"%s\",\"util_last\":%.10g,\"util_metric\":%.10g}",
                  m.iteration, pid, 10000 + m.pid, us(m.when).c_str(),
                  esc(m.task).c_str(), m.util_last, m.util_metric);
    append_event(out, first, buf);
  }
};

/// Windowed-series counter tracks ("C" events, one track per column). Flat
/// all-zero columns are skipped — most runs exercise a fraction of the
/// catalogue and 40 dead tracks would bury the interesting ones. Emission
/// order is the fixed column order, so output stays deterministic.
void append_counter_tracks(std::string& out, bool& first, int pid,
                           const MetricsSnapshot& metrics) {
  const WindowedSeries& w = metrics.windows;
  if (!w.enabled() || w.samples.empty()) return;
  char buf[256];
  for (std::size_t c = 0; c < w.int_columns.size(); ++c) {
    bool flat = true;
    for (const WindowSample& s : w.samples) flat = flat && s.ints[c] == 0;
    if (flat) continue;
    for (const WindowSample& s : w.samples) {
      std::snprintf(buf, sizeof(buf),
                    "\"name\":\"win %s\",\"ph\":\"C\",\"pid\":%d,"
                    "\"ts\":%s,\"args\":{\"v\":%lld}",
                    esc(w.int_columns[c]).c_str(), pid, us(s.end).c_str(),
                    static_cast<long long>(s.ints[c]));
      append_event(out, first, buf);
    }
  }
  for (std::size_t c = 0; c < w.real_columns.size(); ++c) {
    bool flat = true;
    for (const WindowSample& s : w.samples) flat = flat && s.reals[c] == 0.0;
    if (flat) continue;
    for (const WindowSample& s : w.samples) {
      std::snprintf(buf, sizeof(buf),
                    "\"name\":\"win %s\",\"ph\":\"C\",\"pid\":%d,"
                    "\"ts\":%s,\"args\":{\"v\":%.10g}",
                    esc(w.real_columns[c]).c_str(), pid, us(s.end).c_str(),
                    s.reals[c]);
      append_event(out, first, buf);
    }
  }
}

}  // namespace

std::string render_chrome_trace(const std::vector<ChromeTraceRun>& runs) {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  char buf[256];

  for (std::size_t r = 0; r < runs.size(); ++r) {
    const int pid = static_cast<int>(r) + 1;
    ChromeTraceCapture& sink = *runs[r].sink;

    CollectVisitor info;
    sink.replay(info);

    // Process / thread naming metadata.
    std::snprintf(buf, sizeof(buf),
                  "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"args\":{\"name\":\"%s\"}",
                  pid, esc(runs[r].name).c_str());
    append_event(out, first, buf);

    for (int cpu = 0; cpu <= info.max_cpu; ++cpu) {
      std::snprintf(buf, sizeof(buf),
                    "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                    "\"args\":{\"name\":\"cpu %d\"}",
                    pid, cpu, cpu);
      append_event(out, first, buf);
    }

    EmitVisitor emit(out, first, pid, info);
    sink.replay(emit);

    if (runs[r].metrics != nullptr) {
      append_counter_tracks(out, first, pid, *runs[r].metrics);
    }
  }

  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

// HPCS_HOST_BEGIN — result-file write: the rendered JSON is deterministic;
// only the fopen/fwrite to the host filesystem lives here.
bool write_chrome_trace(const std::string& path, const std::vector<ChromeTraceRun>& runs) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "w"), &std::fclose);
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string body = render_chrome_trace(runs);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f.get()) == body.size();
  if (!ok) std::fprintf(stderr, "warning: short write to %s\n", path.c_str());
  return ok;
}
// HPCS_HOST_END

}  // namespace hpcs::obs
