#pragma once
// Metrics registry: named counters, gauges and histograms for one simulation
// run. Determinism is the whole design: metrics register in a fixed order
// (the order of register calls, which for a Recorder is the order of its
// constructor), values are driven only by simulated events, and snapshot()
// walks the registration order — so two runs of the same config produce
// byte-identical dumps whether they execute serially or on an
// exp::ParallelRunner worker (the same slot-commit contract as PR 1).
//
// Handles returned by counter()/gauge()/histogram() are stable references
// (metrics live in a deque); record sites keep the reference and never pay a
// name lookup again.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.h"

namespace hpcs::obs {

class Counter {
 public:
  void inc(std::int64_t n = 1) { v_ += n; }
  void set(std::int64_t v) { v_ = v; }
  [[nodiscard]] std::int64_t value() const { return v_; }

 private:
  std::int64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  [[nodiscard]] double value() const { return v_; }

 private:
  double v_ = 0.0;
};

/// Fixed-bucket histogram. Bucket i (i < edges.size()) counts observations
/// with value <= edges[i] (first matching edge wins, so an observation equal
/// to an edge lands in that edge's bucket); the final bucket is the overflow
/// bucket for values above the last edge.
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<std::int64_t>& buckets() const { return buckets_; }
  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::vector<double> edges_;           ///< ascending upper bounds
  std::vector<std::int64_t> buckets_;   ///< edges_.size() + 1 (last = overflow)
  std::int64_t count_ = 0;
  double sum_ = 0.0;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* metric_kind_name(MetricKind k);

/// One metric's value at snapshot time.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t count = 0;  ///< counter value, or histogram observation count
  double value = 0.0;      ///< gauge value, or histogram sum
  std::vector<double> edges;
  std::vector<std::int64_t> buckets;
};

/// One windowed sample: every column's value at a window boundary. `end` is
/// the sim-time the window closed at; the window covers (previous end, end].
struct WindowSample {
  SimTime end = SimTime::zero();
  std::vector<std::int64_t> ints;  ///< one per WindowedSeries::int_columns
  std::vector<double> reals;       ///< one per WindowedSeries::real_columns
};

/// Deterministic per-window time series over the whole registry (manifest
/// v2). Column layout derives from the registration order — a counter is one
/// int column, a gauge one real column, a histogram an int `<name>.count`
/// plus a real `<name>.sum` — so the series layout is as fixed as the
/// manifest's metric layout. Counter and histogram columns carry per-window
/// *deltas* (a window with no events samples zeros, never holes); gauge
/// columns carry the value at the boundary.
struct WindowedSeries {
  std::int64_t window_ns = 0;  ///< 0 = windowing off (columns/samples empty)
  std::vector<std::string> int_columns;
  std::vector<std::string> real_columns;
  std::vector<WindowSample> samples;

  [[nodiscard]] bool enabled() const { return window_ns > 0; }
  /// Column-ordered lookup of an int column index; -1 when absent.
  [[nodiscard]] int int_column(const std::string& name) const;
  /// Column-ordered lookup of a real column index; -1 when absent.
  [[nodiscard]] int real_column(const std::string& name) const;
};

/// The full registry dump: every metric in registration order, stamped with
/// the simulated time the snapshot was taken at.
struct MetricsSnapshot {
  SimTime at = SimTime::zero();
  std::vector<MetricValue> metrics;
  WindowedSeries windows;  ///< empty unless the run sampled windows

  [[nodiscard]] bool empty() const { return metrics.empty(); }
  /// Registration-ordered lookup; nullptr when absent (tests use this).
  [[nodiscard]] const MetricValue* find(const std::string& name) const;
};

class MetricsRegistry {
 public:
  /// Register (or fetch the already-registered) metric of that name. A name
  /// registers as exactly one kind; re-registering under a different kind is
  /// a programming error (checked).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> edges);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Dump every metric in registration order.
  [[nodiscard]] MetricsSnapshot snapshot(SimTime at) const;

  /// Derive the windowed-series column layout from the registration order
  /// (see WindowedSeries). Call after every metric is registered.
  void window_columns(std::vector<std::string>& int_columns,
                      std::vector<std::string>& real_columns) const;

  /// Sample the *cumulative* value of every column in layout order. The
  /// window flusher diffs consecutive cumulative samples to get deltas;
  /// `real_is_point` marks real columns that are point-sampled (gauges)
  /// rather than diffed (histogram sums).
  void sample_window_values(std::vector<std::int64_t>& ints,
                            std::vector<double>& reals,
                            std::vector<char>* real_is_point = nullptr) const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  [[nodiscard]] Entry* find_entry(const std::string& name);

  // Deques: handle addresses must survive later registrations.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<Entry> entries_;  ///< registration order
};

}  // namespace hpcs::obs
