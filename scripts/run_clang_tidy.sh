#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy at the repo root) over the first-party
# tree using a compile database. Usage:
#   scripts/run_clang_tidy.sh [build-dir]
# The build dir is configured with CMAKE_EXPORT_COMPILE_COMMANDS if it does
# not already have a compile_commands.json. Exits 0 with a notice when
# clang-tidy is not installed so local gcc-only setups are not blocked.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not installed, skipping (CI's clang job runs it)"
  exit 0
fi

BUILD_DIR="${1:-build-tidy}"
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# First-party sources only: tidy has no business in _deps or fixtures.
mapfile -t SOURCES < <(find src bench tests tools examples -name '*.cpp' \
  -not -path '*/fixtures/*' | sort)

echo "clang-tidy over ${#SOURCES[@]} files (config: .clang-tidy)"
clang-tidy -p "${BUILD_DIR}" --quiet --warnings-as-errors='*' "${SOURCES[@]}"
echo "clang-tidy: clean"
