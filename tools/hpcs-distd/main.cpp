// hpcs-distd: standalone sweep-fabric worker. Connects to a coordinator
// (any table driver running --dist coordinator:PORT), serves whatever
// registered paper-table job the coordinator names, exits 0 on BYE.
//
//   hpcs-distd HOST:PORT [--name NAME] [--capacity N]
//
// This is the same service loop the drivers' own `--dist worker` mode uses
// (bench/bench_dist.h); the separate binary exists so a fleet machine needs
// no bench artifacts, just the library and this tool.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

#include "analysis/dist_jobs.h"
#include "dist/host/dist_options.h"
#include "dist/host/service.h"
#include "dist/host/tcp_transport.h"
#include "dist/registry.h"
#include "dist/worker.h"

namespace {

[[noreturn]] void usage(int code) {
  std::fprintf(stderr, "usage: hpcs-distd HOST:PORT [--name NAME] [--capacity N]\n");
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hpcs;

  // HPCS_HOST_BEGIN — argv/pid plumbing and the blocking serve loop.
  std::string target;
  std::string name = "distd-pid" + std::to_string(::getpid());
  std::uint32_t capacity = 1;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(0);
    } else if (std::strcmp(a, "--name") == 0 && i + 1 < argc) {
      name = argv[++i];
    } else if (std::strcmp(a, "--capacity") == 0 && i + 1 < argc) {
      const long v = std::atol(argv[++i]);
      if (v < 1 || v > 1024) usage(2);
      capacity = static_cast<std::uint32_t>(v);
    } else if (a[0] == '-') {
      usage(2);
    } else if (target.empty()) {
      target = a;
    } else {
      usage(2);
    }
  }
  if (target.empty()) usage(2);

  // Reuse the worker-spec parser for HOST:PORT validation.
  dist::host::DistOptions opt;
  std::string err;
  if (!dist::host::parse_dist_spec("worker:" + target, opt, err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 2;
  }

  auto conn = dist::host::tcp_connect(opt.hostname, opt.port, err);
  if (conn == nullptr) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }

  dist::JobRegistry reg;
  analysis::register_paper_table_jobs(reg);
  dist::WorkerConfig cfg;
  cfg.name = name;
  cfg.capacity = capacity;
  dist::WorkerSession session(cfg, reg, std::move(conn));
  if (!dist::host::serve_worker(session, err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  std::printf("hpcs-distd '%s': %lld rows, %lld shards\n", name.c_str(),
              static_cast<long long>(session.rows_sent()),
              static_cast<long long>(session.shards_done()));
  return 0;
  // HPCS_HOST_END
}
