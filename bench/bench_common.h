#pragma once
// Shared reporting helpers for the table-reproduction benches: print each
// experiment in the paper's table layout next to the paper's own numbers,
// summarize the headline improvements, and fan the per-mode runs across the
// parallel experiment engine (--jobs N / HPCS_JOBS; results are committed in
// mode order, so output is bit-identical to the serial drivers).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/paper_experiments.h"
#include "analysis/tables.h"
#include "bench_json.h"
#include "common/log.h"
#include "exp/parallel_runner.h"
#include "obs/chrome_trace.h"
#include "obs/manifest.h"
#include "obs/ring_dump.h"

namespace hpcs::bench {

/// Observability knobs shared by the bench drivers. Off by default so the
/// golden numbers are unaffected; switched on by flag or environment:
///   --obs / HPCS_OBS=1            metrics registry + tracepoint rings,
///                                 MANIFEST_<name>.json (+ .host.json sidecar)
///   --obs-trace PATH / HPCS_OBS_TRACE=PATH
///                                 additionally capture a Chrome-trace /
///                                 Perfetto JSON view of every run into PATH
///                                 (implies --obs)
///   --obs-ring N / HPCS_OBS_RING=N
///                                 per-CPU tracepoint ring capacity in
///                                 entries; must be a power of two (the ring
///                                 wraps with a mask). Default 4096. An
///                                 invalid value aborts with exit code 2
///                                 rather than silently rounding — a bench
///                                 that drops a different number of trace
///                                 entries than asked for is not comparable.
///   --obs-trace-stream / HPCS_OBS_TRACE_STREAM=1
///                                 spool Chrome-trace records to disk during
///                                 capture instead of buffering them in
///                                 memory (same bytes out; for long runs)
///   --obs-ring-dump PATH / HPCS_OBS_RING_DUMP=PATH
///                                 dump every run's retained tracepoint ring
///                                 entries raw (32 bytes each, little-endian,
///                                 versioned header) into PATH for post-mortem
///                                 tooling — scripts/obs_ring_decode.py reads
///                                 it back (implies --obs)
///   --obs-window NS / HPCS_OBS_WINDOW=NS
///                                 sample every registered metric on sim-time
///                                 window boundaries of NS nanoseconds into
///                                 the manifest's per-window series (schema
///                                 hpcs-obs-manifest-v2; implies --obs). The
///                                 series is byte-identical serial vs --jobs N
///                                 vs --dist, so scripts/manifest_diff.py can
///                                 flag mid-run anomalies that identical
///                                 totals hide. An invalid value aborts with
///                                 exit code 2.
struct ObsOptions {
  obs::ObsConfig cfg;
  std::string trace_path;
  std::string ring_dump_path;
};

inline ObsOptions parse_obs_options(int argc, char** argv) {
  ObsOptions o;
  auto set_ring = [&](const char* text, const char* origin) {
    std::string error;
    if (!obs::parse_ring_capacity(text, o.cfg.ring_capacity, error)) {
      std::fprintf(stderr, "error: %s: %s\n", origin, error.c_str());
      std::exit(2);
    }
  };
  auto set_window = [&](const char* text, const char* origin) {
    std::string error;
    if (!obs::parse_window_ns(text, o.cfg.window_ns, error)) {
      std::fprintf(stderr, "error: %s: %s\n", origin, error.c_str());
      std::exit(2);
    }
  };
  if (const char* env = std::getenv("HPCS_OBS")) {
    if (env[0] != '\0' && std::strcmp(env, "0") != 0) o.cfg.enabled = true;
  }
  if (const char* env = std::getenv("HPCS_OBS_TRACE")) {
    if (env[0] != '\0') o.trace_path = env;
  }
  if (const char* env = std::getenv("HPCS_OBS_TRACE_STREAM")) {
    if (env[0] != '\0' && std::strcmp(env, "0") != 0) o.cfg.chrome_stream = true;
  }
  if (const char* env = std::getenv("HPCS_OBS_RING")) {
    if (env[0] != '\0') set_ring(env, "HPCS_OBS_RING");
  }
  if (const char* env = std::getenv("HPCS_OBS_RING_DUMP")) {
    if (env[0] != '\0') o.ring_dump_path = env;
  }
  if (const char* env = std::getenv("HPCS_OBS_WINDOW")) {
    if (env[0] != '\0') set_window(env, "HPCS_OBS_WINDOW");
  }
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--obs") == 0) {
      o.cfg.enabled = true;
    } else if (std::strcmp(a, "--obs-trace") == 0 && i + 1 < argc) {
      o.trace_path = argv[i + 1];
    } else if (std::strncmp(a, "--obs-trace=", 12) == 0) {
      o.trace_path = a + 12;
    } else if (std::strcmp(a, "--obs-trace-stream") == 0) {
      o.cfg.chrome_stream = true;
    } else if (std::strcmp(a, "--obs-ring-dump") == 0 && i + 1 < argc) {
      o.ring_dump_path = argv[i + 1];
    } else if (std::strncmp(a, "--obs-ring-dump=", 16) == 0) {
      o.ring_dump_path = a + 16;
    } else if (std::strcmp(a, "--obs-ring") == 0 && i + 1 < argc) {
      set_ring(argv[++i], "--obs-ring");
    } else if (std::strncmp(a, "--obs-ring=", 11) == 0) {
      set_ring(a + 11, "--obs-ring");
    } else if (std::strcmp(a, "--obs-window") == 0 && i + 1 < argc) {
      set_window(argv[++i], "--obs-window");
    } else if (std::strncmp(a, "--obs-window=", 13) == 0) {
      set_window(a + 13, "--obs-window");
    }
  }
  if (!o.trace_path.empty()) {
    o.cfg.enabled = true;
    o.cfg.chrome_trace = true;
  }
  if (!o.ring_dump_path.empty()) o.cfg.enabled = true;
  if (o.cfg.window_ns > 0) o.cfg.enabled = true;
  return o;
}

/// Wire the runtime log threshold: HPCS_LOG_LEVEL first, then --log-level
/// LEVEL / --log-level=LEVEL so the flag wins. Unknown levels warn and keep
/// the current threshold rather than aborting a long bench run.
inline void init_logging(int argc, char** argv) {
  init_log_level_from_env();
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const char* val = nullptr;
    if (std::strcmp(a, "--log-level") == 0 && i + 1 < argc) {
      val = argv[i + 1];
    } else if (std::strncmp(a, "--log-level=", 12) == 0) {
      val = a + 12;
    }
    if (val != nullptr) {
      LogLevel lvl;
      if (parse_log_level(val, lvl)) {
        set_log_level(lvl);
      } else {
        std::fprintf(stderr, "warning: unknown log level '%s'\n", val);
      }
    }
  }
}

/// Run one experiment per mode through the parallel engine; results come
/// back in mode order regardless of worker interleaving. `host_stats`, when
/// given, receives the engine's host-side stats for the .host.json sidecar.
template <typename RunFn>
std::vector<analysis::RunResult> run_modes(unsigned jobs,
                                           const std::vector<analysis::SchedMode>& modes,
                                           RunFn run,
                                           exp::EngineStats* host_stats = nullptr) {
  exp::ParallelRunner runner(jobs);
  auto results = runner.map(modes.size(), [&](std::size_t i) { return run(modes[i]); });
  if (host_stats != nullptr) *host_stats = runner.last_stats();
  return results;
}

/// MANIFEST_<name>.json: the deterministic per-run metrics manifest (one
/// entry per mode, fixed metric order — see docs/observability.md). A sweep
/// run with --jobs N produces a byte-identical file to the serial run.
inline void write_metrics_manifest(const char* name,
                                   const std::vector<analysis::SchedMode>& modes,
                                   const std::vector<analysis::RunResult>& results) {
  std::vector<obs::ManifestRun> runs;
  for (std::size_t i = 0; i < modes.size(); ++i) {
    runs.push_back({analysis::sched_mode_name(modes[i]), results[i].metrics});
  }
  obs::write_manifest_json(std::string("MANIFEST_") + name + ".json", name, runs);
}

/// MANIFEST_<name>.host.json: host-side sidecar (pool stats + wall time).
/// Deliberately a separate file — it is the one place wall-clock appears, so
/// the main manifest stays byte-comparable across machines and job counts.
inline void write_host_sidecar(const char* name, unsigned jobs,
                               const exp::EngineStats& s) {
  JsonObject root;
  root.field("schema", "hpcs-obs-host-v1").field("bench", name).field("jobs", jobs);
  JsonObject engine;
  engine.field("tasks", s.tasks)
      .field("workers", s.workers)
      .field("jobs_submitted", s.jobs_submitted)
      .field("jobs_executed", s.jobs_executed)
      .field("max_queue_depth", s.max_queue_depth)
      .array("per_worker_executed", s.per_worker_executed)
      .field("wall_ms", s.wall_ms);
  root.object("engine", engine);
  write_json_file(std::string("MANIFEST_") + name + ".host.json", root);
}

/// One-call obs epilogue for a table/ablation driver: manifest + host
/// sidecar (+ Chrome trace when --obs-trace was given). No-op with obs off.
inline void write_obs_outputs(const char* name, const ObsOptions& o, unsigned jobs,
                              const std::vector<analysis::SchedMode>& modes,
                              const std::vector<analysis::RunResult>& results,
                              const exp::EngineStats* host_stats = nullptr) {
  if (!o.cfg.enabled) return;
  write_metrics_manifest(name, modes, results);
  if (host_stats != nullptr) write_host_sidecar(name, jobs, *host_stats);
  if (!o.trace_path.empty()) {
    std::vector<obs::ChromeTraceRun> runs;
    for (std::size_t i = 0; i < modes.size(); ++i) {
      if (results[i].chrome) {
        runs.push_back({analysis::sched_mode_name(modes[i]), results[i].chrome.get(),
                        &results[i].metrics});
      }
    }
    if (obs::write_chrome_trace(o.trace_path, runs)) {
      std::printf("wrote Chrome trace: %s (open in ui.perfetto.dev)\n", o.trace_path.c_str());
    }
  }
  if (!o.ring_dump_path.empty()) {
    std::vector<obs::RingDumpRun> runs;
    for (std::size_t i = 0; i < modes.size(); ++i) {
      runs.push_back({analysis::sched_mode_name(modes[i]), results[i].recorder.get()});
    }
    std::string error;
    if (obs::write_ring_dump(o.ring_dump_path, runs, error)) {
      std::printf("wrote ring dump: %s (decode with scripts/obs_ring_decode.py)\n",
                  o.ring_dump_path.c_str());
    } else {
      std::fprintf(stderr, "error: --obs-ring-dump: %s\n", error.c_str());
      std::exit(1);
    }
  }
}

/// BENCH_<name>.json for a table driver: one entry per mode with the
/// headline exec time and utilization spread.
inline void write_table_json(const char* name, unsigned jobs,
                             const std::vector<analysis::SchedMode>& modes,
                             const std::vector<analysis::RunResult>& results) {
  JsonObject root;
  root.field("bench", name).field("jobs", jobs);
  std::vector<JsonObject> entries;
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const analysis::RunResult& r = results[i];
    JsonObject e;
    e.field("mode", analysis::sched_mode_name(modes[i]))
        .field("exec_s", r.exec_time.sec())
        .field("min_util_pct", r.min_util())
        .field("max_util_pct", r.max_util())
        .field("ctx_switches", r.context_switches)
        .field("hw_prio_changes", r.hw_prio_changes);
    if (i > 0) e.field("improvement_vs_first_pct", analysis::improvement_pct(results[0], r));
    entries.push_back(std::move(e));
  }
  root.array("modes", entries);
  write_json_file(std::string("BENCH_") + name + ".json", root);
}

inline void print_side_by_side(const analysis::RunResult& ours,
                               const analysis::PaperReference& paper) {
  std::printf("%-18s | %-28s | %-28s\n", paper.label, "measured (this repro)", "paper (POWER5)");
  for (std::size_t i = 0; i < ours.ranks.size(); ++i) {
    const double paper_util = i < paper.util_pct.size() ? paper.util_pct[i] : 0.0;
    std::printf("  P%-15zu | util %6.2f%%                | util %6.2f%%\n", i + 1,
                ours.ranks[i].util_pct, paper_util);
  }
  std::printf("  %-16s | %10.2fs                 | %10.2fs\n", "exec time",
              ours.exec_time.sec(), paper.exec_time_s);
}

inline void print_improvement_summary(const char* what, const analysis::RunResult& baseline,
                                      const analysis::RunResult& candidate,
                                      double paper_baseline_s, double paper_candidate_s) {
  const double ours = analysis::improvement_pct(baseline, candidate);
  const double paper =
      paper_baseline_s > 0 ? 100.0 * (1.0 - paper_candidate_s / paper_baseline_s) : 0.0;
  std::printf("%-26s improvement: measured %+6.2f%%   paper %+6.2f%%\n", what, ours, paper);
}

}  // namespace hpcs::bench
