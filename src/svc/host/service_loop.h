#pragma once
// Wall-clock loop that drives a SweepService over real transports — the
// seam `hpcs-sweepd` stands on. Accepts client and worker connections,
// steps the machine, and pumps the cache effect queues against a real
// ResultCache: probe answers go back in as seeded rows, freshly computed
// rows get persisted. The machine itself never touches the clock, the
// sockets, or the filesystem (svc/service.h explains why).

#include "cache/store.h"
#include "dist/transport.h"
#include "svc/service.h"

namespace hpcs::svc::host {

/// Drive `svc` until done() (i.e. a client sent SHUTDOWN and every job
/// drained). `cache` may be disabled (empty dir); it is probed for every
/// admitted point and fed every computed row.
void serve_sweep(SweepService& svc, dist::Listener& clients,
                 dist::Listener& workers, cache::ResultCache& cache);

}  // namespace hpcs::svc::host
