#!/usr/bin/env bash
# svc-smoke: the sweep service's acceptance contract.
#
#   scripts/svc_smoke.sh [BUILD_DIR]     # default: build
#
# Boots one hpcs-sweepd (ephemeral ports, result cache, --obs, sidecar),
# then drives it with hpcs-submit over localhost TCP:
#
#   1. two concurrent submissions from different tenants both stream to
#      completion (the daemon multiplexes sweeps, max-running permitting);
#   2. a worker (hpcs-distd) attached to the worker port serves remote rows
#      for a third job;
#   3. resubmitting a finished sweep is served entirely from the result
#      cache — and its rows are byte-identical to the fresh run's;
#   4. --status answers for done and unknown jobs, --shutdown drains the
#      daemon to a clean exit;
#   5. the v3 fabric sidecar carries fabric/service/cache/jobs/tracepoints
#      and passes scripts/check_bench_json.py.
#
# Needs the hpcs-sweepd, hpcs-submit and hpcs-distd targets already built
# in BUILD_DIR. Exit status: 0 on success, 1 on any failure or timeout.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
SWEEPD="$PWD/${BUILD_DIR}/tools/hpcs-sweepd/hpcs-sweepd"
SUBMIT="$PWD/${BUILD_DIR}/tools/hpcs-submit/hpcs-submit"
DISTD="$PWD/${BUILD_DIR}/tools/hpcs-distd/hpcs-distd"
SMOKE_DIR="${BUILD_DIR}/svc-smoke"

for bin in "${SWEEPD}" "${SUBMIT}" "${DISTD}"; do
  [[ -x "${bin}" ]] || {
    echo "ERROR: ${bin} not built"
    exit 1
  }
done

rm -rf "${SMOKE_DIR}"
mkdir -p "${SMOKE_DIR}"
cd "${SMOKE_DIR}"

"${SWEEPD}" --port 0 --worker-port 0 \
  --port-file client_port.txt --worker-port-file worker_port.txt \
  --cache-dir cache --max-running 2 --obs \
  --sidecar MANIFEST_sweepd.fabric.host.json > sweepd.log 2>&1 &
daemon=$!
trap 'kill "${daemon}" 2>/dev/null || true' EXIT

for _ in $(seq 1 150); do
  [[ -s client_port.txt && -s worker_port.txt ]] && break
  sleep 0.1
done
[[ -s client_port.txt && -s worker_port.txt ]] || {
  echo "ERROR: daemon never wrote its port files"
  exit 1
}
ADDR="127.0.0.1:$(cat client_port.txt)"
WADDR="127.0.0.1:$(cat worker_port.txt)"

echo "--- two concurrent tenants"
"${SUBMIT}" "${ADDR}" --job table3_metbench --tenant alice > alice.txt &
a=$!
"${SUBMIT}" "${ADDR}" --job table4_metbenchvar --tenant bob > bob.txt &
b=$!
wait "${a}" || {
  echo "ERROR: alice's submission failed"
  cat alice.txt
  exit 1
}
wait "${b}" || {
  echo "ERROR: bob's submission failed"
  cat bob.txt
  exit 1
}
grep -q "done: 4 rows" alice.txt && grep -q "done: 4 rows" bob.txt || {
  echo "ERROR: a stream ended without 4 committed rows"
  exit 1
}
echo "both tenants streamed to completion"

echo "--- worker-served job"
"${DISTD}" "${WADDR}" --name smoke-w1 > worker.log 2>&1 &
w=$!
"${SUBMIT}" "${ADDR}" --job table5_btmz --tenant carol --seed 7 > carol.txt
grep -q "done: " carol.txt || {
  echo "ERROR: worker-served job did not finish"
  exit 1
}
kill "${w}" 2>/dev/null || true
wait "${w}" 2>/dev/null || true

echo "--- warm-cache resubmit is byte-identical"
"${SUBMIT}" "${ADDR}" --job table3_metbench --tenant alice > alice2.txt
grep -q "(4 cached)" alice2.txt || {
  echo "ERROR: resubmitted sweep was not served from the cache"
  cat alice2.txt
  exit 1
}
# Rows must match the fresh run byte-for-byte, modulo the job id prefix.
sed 's/^job [0-9]* //' alice.txt | grep '^row' > rows_fresh.txt
sed 's/^job [0-9]* //' alice2.txt | grep '^row' > rows_cached.txt
diff rows_fresh.txt rows_cached.txt || {
  echo "ERROR: cached rows differ from the fresh run"
  exit 1
}
echo "cache replay byte-identical"

echo "--- status and shutdown"
last_id=$(sed -n 's/^job \([0-9]*\) accepted.*/\1/p' alice2.txt)
"${SUBMIT}" "${ADDR}" --status "${last_id}" | grep -q "done, 4/4 rows (4 cached)" || {
  echo "ERROR: --status misreported the cached job"
  exit 1
}
if "${SUBMIT}" "${ADDR}" --status 9999 > status_unknown.txt 2>&1; then
  echo "ERROR: --status for an unknown job must exit nonzero"
  exit 1
fi
"${SUBMIT}" "${ADDR}" --shutdown | grep -q "draining: 0 jobs remaining" || {
  echo "ERROR: --shutdown did not report a drained daemon"
  exit 1
}
wait "${daemon}"
trap - EXIT
echo "daemon drained and exited"

python3 -c "
import json
doc = json.load(open('MANIFEST_sweepd.fabric.host.json'))
assert doc['schema'] == 'hpcs-dist-fabric-v3', doc
assert doc['daemon'] == 'hpcs-sweepd', doc
s = doc['service']
assert s['jobs_submitted'] == 4 and s['jobs_done'] == 4, s
f = doc['fabric']
assert f['workers_connected'] == 1 and f['rows_remote'] >= 1, f
assert f['rows_seeded'] == 4, f
c = doc['cache']
assert c['hits'] == 4 and c['stores'] >= 8, c
jobs = doc['jobs']
assert len(jobs) == 4 and all(j['state'] == 'done' for j in jobs), jobs
tp = doc['tracepoints']
assert tp['svc_submit'] == 4 and tp['svc_job_done'] == 4, tp
assert tp['cache_hit'] == 4 and tp['cache_miss'] >= 8, tp
print('sweepd sidecar ok:', {k: s[k] for k in ('jobs_submitted', 'jobs_done', 'rows_streamed')})
"
echo '{}' > empty_golden.json
python3 ../../scripts/check_bench_json.py empty_golden.json .
echo "svc-smoke passed"
