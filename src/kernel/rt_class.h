#pragma once
// The real-time class: 100 round-robin run-queue lists, one per RT priority
// (paper §III). Essentially the old O(1) scheduler algorithm: pick the first
// task of the highest non-empty priority list. SCHED_FIFO tasks keep the head
// until they yield or block; SCHED_RR tasks rotate when their slice expires.

#include <array>
#include <deque>

#include "kernel/sched_class.h"

namespace hpcs::kern {

inline constexpr int kRtPrioLevels = 100;

struct RtRq final : ClassRq {
  std::array<std::deque<Task*>, kRtPrioLevels> queues;
  int nr = 0;
};

class RtClass final : public SchedClass {
 public:
  explicit RtClass(Duration rr_slice = Duration::milliseconds(100)) : rr_slice_(rr_slice) {}

  [[nodiscard]] const char* name() const override { return "rt"; }
  [[nodiscard]] bool owns(Policy p) const override {
    return p == Policy::kFifo || p == Policy::kRr;
  }
  [[nodiscard]] std::unique_ptr<ClassRq> make_rq() const override {
    return std::make_unique<RtRq>();
  }

  void enqueue(Kernel& k, Rq& rq, Task& t, bool wakeup) override;
  void dequeue(Kernel& k, Rq& rq, Task& t, bool sleep) override;
  Task* pick_next(Kernel& k, Rq& rq) override;
  void put_prev(Kernel& k, Rq& rq, Task& t) override;
  void task_tick(Kernel& k, Rq& rq, Task& t) override;
  [[nodiscard]] bool wakeup_preempt(Kernel& k, Rq& rq, Task& curr, Task& woken) override;
  void yield(Kernel& k, Rq& rq, Task& t) override;
  Task* steal_candidate(Kernel& k, Rq& rq) override;

  [[nodiscard]] Duration rr_slice() const { return rr_slice_; }

 private:
  static RtRq& rrq(Rq& rq, int index);
  Duration rr_slice_;
};

}  // namespace hpcs::kern
