#pragma once
// The Completely Fair Scheduler class (paper §III): tasks ordered in a
// red-black tree by virtual runtime; the leftmost task runs next. No fixed
// time quantum — each task gets a slice proportional to the latency target
// divided by the number of runnable tasks.

#include <cstdint>
#include <utility>

#include "kernel/rbtree.h"
#include "kernel/sched_class.h"

namespace hpcs::kern {

struct CfsTunables {
  Duration latency = Duration::milliseconds(20);       ///< target max wait (paper: 20 ms)
  Duration min_granularity = Duration::milliseconds(4);
  Duration wakeup_granularity = Duration::milliseconds(10);
  /// Sleeper credit: a waking task is placed at min_vruntime - latency/2.
  bool sleeper_fairness = true;
  /// Scheduler-path cost of a CFS wakeup (see SchedClass::wakeup_cost).
  Duration wakeup_cost = Duration::microseconds(25);
};

/// Key of the CFS tree: (vruntime ns, pid) — pid breaks ties so keys are
/// unique.
using CfsKey = std::pair<std::int64_t, Pid>;

struct CfsRq final : ClassRq {
  RbTree<CfsKey, Task*> tree;
  Duration min_vruntime = Duration::zero();
  int nr_queued = 0;  ///< tasks in the tree (excludes the running task)
};

class CfsClass final : public SchedClass {
 public:
  explicit CfsClass(CfsTunables tunables = {}) : tun_(tunables) {}

  [[nodiscard]] const char* name() const override { return "fair"; }
  [[nodiscard]] bool owns(Policy p) const override {
    return p == Policy::kNormal || p == Policy::kBatch;
  }
  [[nodiscard]] std::unique_ptr<ClassRq> make_rq() const override {
    return std::make_unique<CfsRq>();
  }

  void enqueue(Kernel& k, Rq& rq, Task& t, bool wakeup) override;
  void dequeue(Kernel& k, Rq& rq, Task& t, bool sleep) override;
  Task* pick_next(Kernel& k, Rq& rq) override;
  void put_prev(Kernel& k, Rq& rq, Task& t) override;
  void task_tick(Kernel& k, Rq& rq, Task& t) override;
  [[nodiscard]] bool wakeup_preempt(Kernel& k, Rq& rq, Task& curr, Task& woken) override;
  void yield(Kernel& k, Rq& rq, Task& t) override;
  Task* steal_candidate(Kernel& k, Rq& rq) override;
  [[nodiscard]] bool wants_balance() const override { return true; }
  [[nodiscard]] Duration wakeup_cost() const override { return tun_.wakeup_cost; }

  [[nodiscard]] const CfsTunables& tunables() const { return tun_; }
  CfsTunables& tunables() { return tun_; }

  /// CFS load weight for a nice level (-20..19); the canonical kernel table.
  [[nodiscard]] static std::int64_t nice_to_weight(int nice);

  /// Scale a real-time delta into vruntime for the given nice level.
  [[nodiscard]] static Duration calc_delta_fair(Duration delta, int nice);

  /// The slice a task would get with `nr_running` competitors.
  [[nodiscard]] Duration slice_for(int nr_running) const;

 private:
  static CfsRq& crq(Rq& rq, int index);
  void update_min_vruntime(CfsRq& c, const Task* curr_of_class) const;

  CfsTunables tun_;
};

}  // namespace hpcs::kern
