file(REMOVE_RECURSE
  "CMakeFiles/example_priority_characterization.dir/priority_characterization.cpp.o"
  "CMakeFiles/example_priority_characterization.dir/priority_characterization.cpp.o.d"
  "example_priority_characterization"
  "example_priority_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_priority_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
