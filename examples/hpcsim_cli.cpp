// hpcsim command-line driver: run any packaged workload under any scheduler
// configuration and inspect the result — tables, ASCII Gantt, ps-like
// reports, PARAVER export. The "swiss-army knife" entry point of the
// library.
//
// Usage:
//   example_hpcsim_cli [--workload metbench|metbenchvar|btmz|siesta|wavefront]
//                      [--mode baseline|static|uniform|adaptive|hybrid]
//                      [--iterations N] [--seed S] [--no-noise]
//                      [--fair cfs|o1] [--snooze-us N]
//                      [--gantt] [--report] [--paraver PREFIX]

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/iterations.h"
#include "analysis/paper_experiments.h"
#include "analysis/report.h"
#include "trace/gantt.h"
#include "trace/paraver.h"
#include "workloads/wavefront.h"

using namespace hpcs;

namespace {

struct CliOptions {
  std::string workload = "metbench";
  std::string mode = "uniform";
  int iterations = 0;  // 0 = workload default
  std::uint64_t seed = 1;
  bool noise = true;
  std::string fair = "cfs";
  std::int64_t snooze_us = -1;
  bool gantt = false;
  bool report = false;
  std::string paraver_prefix;
};

analysis::SchedMode parse_mode(const std::string& m) {
  if (m == "baseline") return analysis::SchedMode::kBaselineCfs;
  if (m == "static") return analysis::SchedMode::kStatic;
  if (m == "uniform") return analysis::SchedMode::kUniform;
  if (m == "adaptive") return analysis::SchedMode::kAdaptive;
  if (m == "hybrid") return analysis::SchedMode::kHybrid;
  std::fprintf(stderr, "unknown mode '%s'\n", m.c_str());
  std::exit(2);
}

wl::ProgramSet make_workload(const CliOptions& o, std::vector<int>* static_prios) {
  if (o.workload == "metbench") {
    auto e = analysis::MetBenchExperiment::paper();
    if (o.iterations > 0) e.workload.iterations = o.iterations;
    *static_prios = e.static_prios;
    return wl::make_metbench(e.workload);
  }
  if (o.workload == "metbenchvar") {
    auto e = analysis::MetBenchVarExperiment::paper();
    if (o.iterations > 0) e.workload.iterations = o.iterations;
    *static_prios = e.static_prios;
    return wl::make_metbenchvar(e.workload);
  }
  if (o.workload == "btmz") {
    auto e = analysis::BtMzExperiment::paper();
    if (o.iterations > 0) e.workload.iterations = o.iterations;
    *static_prios = e.static_prios;
    return wl::make_btmz(e.workload);
  }
  if (o.workload == "siesta") {
    auto e = analysis::SiestaExperiment::paper();
    if (o.iterations > 0) e.workload.microiters = o.iterations;
    e.workload.seed = o.seed;
    return wl::make_siesta(e.workload);
  }
  if (o.workload == "wavefront") {
    wl::WavefrontConfig cfg;
    if (o.iterations > 0) cfg.iterations = o.iterations;
    return wl::make_wavefront(cfg);
  }
  std::fprintf(stderr, "unknown workload '%s'\n", o.workload.c_str());
  std::exit(2);
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--workload")) {
      o.workload = need_value(i);
    } else if (!std::strcmp(a, "--mode")) {
      o.mode = need_value(i);
    } else if (!std::strcmp(a, "--iterations")) {
      o.iterations = std::atoi(need_value(i));
    } else if (!std::strcmp(a, "--seed")) {
      o.seed = static_cast<std::uint64_t>(std::atoll(need_value(i)));
    } else if (!std::strcmp(a, "--no-noise")) {
      o.noise = false;
    } else if (!std::strcmp(a, "--fair")) {
      o.fair = need_value(i);
    } else if (!std::strcmp(a, "--snooze-us")) {
      o.snooze_us = std::atoll(need_value(i));
    } else if (!std::strcmp(a, "--gantt")) {
      o.gantt = true;
    } else if (!std::strcmp(a, "--report")) {
      o.report = true;
    } else if (!std::strcmp(a, "--paraver")) {
      o.paraver_prefix = need_value(i);
    } else if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
      std::printf(
          "usage: %s [--workload W] [--mode M] [--iterations N] [--seed S]\n"
          "          [--no-noise] [--fair cfs|o1] [--snooze-us N]\n"
          "          [--gantt] [--report] [--paraver PREFIX]\n"
          "workloads: metbench metbenchvar btmz siesta wavefront\n"
          "modes:     baseline static uniform adaptive hybrid\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", a);
      std::exit(2);
    }
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions o = parse(argc, argv);

  std::vector<int> static_prios;
  auto programs = make_workload(o, &static_prios);
  const std::size_t ranks = programs.size();

  analysis::ExperimentConfig cfg = analysis::paper_defaults(parse_mode(o.mode), o.seed,
                                                            o.gantt || !o.paraver_prefix.empty());
  cfg.enable_noise = o.noise;
  cfg.static_prios = static_prios;
  cfg.kernel.fair_scheduler =
      o.fair == "o1" ? kern::FairScheduler::kO1 : kern::FairScheduler::kCfs;
  if (o.snooze_us >= 0) cfg.kernel.smt_snooze_delay = Duration::microseconds(o.snooze_us);
  if (o.workload == "btmz") cfg.placement = {0, 2, 3, 1};

  const auto r = analysis::run_experiment(cfg, std::move(programs));

  std::printf("workload=%s mode=%s fair=%s seed=%llu ranks=%zu\n", o.workload.c_str(),
              o.mode.c_str(), o.fair.c_str(), static_cast<unsigned long long>(o.seed), ranks);
  std::printf("exec time: %.3fs   mean imbalance: %.3f   ctx switches: %lld   "
              "prio changes: %lld\n",
              r.exec_time.sec(), analysis::mean_imbalance(r),
              static_cast<long long>(r.context_switches),
              static_cast<long long>(r.hw_prio_changes));
  for (const auto& rank : r.ranks) {
    std::printf("  %-8s util %6.2f%%  hw prio %d  wakeups %-7lld avg latency %.1fus\n",
                rank.name.c_str(), rank.util_pct, rank.final_hw_prio,
                static_cast<long long>(rank.wakeups), rank.avg_wakeup_latency_us);
  }

  std::vector<Pid> pids;
  std::vector<std::string> labels;
  for (const auto& rank : r.ranks) {
    pids.push_back(rank.pid);
    labels.push_back(rank.name);
  }

  if (o.gantt && r.tracer) {
    trace::GanttOptions opt;
    opt.width = 110;
    std::printf("\n%s", trace::render_gantt(*r.tracer, pids, labels, opt).c_str());
  }
  if (!o.paraver_prefix.empty() && r.tracer) {
    trace::ParaverJob job;
    job.pids = pids;
    job.labels = labels;
    if (trace::export_paraver(o.paraver_prefix, *r.tracer, job)) {
      std::printf("\nParaver trace written to %s.{prv,pcf,row}\n", o.paraver_prefix.c_str());
    } else {
      std::fprintf(stderr, "failed to write Paraver trace to %s.*\n",
                   o.paraver_prefix.c_str());
      return 1;
    }
  }
  if (o.report) {
    std::printf("\n(note: per-task reports reflect the end-of-run state)\n");
  }
  return 0;
}
