// Lexer regression traps: C++14 digit separators and raw string literals
// must not desync the comment/string blanking pass. Every literal below
// used to fragment the token stream (1'000'000 read as number / char /
// number, 0xFF'FF ending at the first separator, u8'a' read as a digit
// separator, any identifier ending in R treated as a raw-string prefix).
// The raw strings mention rand(), srand() and steady_clock in prose; a
// desynced lexer either reports those or swallows the ONE real finding:
// the rand() call in jitter() below.
namespace fx {

inline unsigned long budget() { return 1'000'000; }
inline unsigned mask() { return 0xFF'FF; }
inline char tag() { return u8'a'; }
inline int scalaR = 7;  // identifier ending in R, then a plain string:
inline const char* nameR = "not a raw string, rand() stays blanked";

inline const char* doc() {
  return R"(raw string: rand() and srand(1) and steady_clock in prose)";
}

inline const char* sql() {
  return R"sep(raw delimiter with "quotes" and rand() inside)sep";
}

inline int jitter() {
  return rand();
}

}  // namespace fx
