#pragma once
// Deterministic random number generation. Every stochastic component of the
// simulation (network jitter, OS noise, SIESTA burst sizes) draws from an Rng
// seeded from the experiment configuration, so runs are exactly repeatable.

#include <cstdint>
#include <random>

namespace hpcs {

/// Seeded pseudo-random source (xoshiro-quality via std::mt19937_64) with the
/// handful of distributions the simulator needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Log-normal parameterized by the mean and sigma of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Normal (Gaussian).
  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Derive an independent child stream; used to give each task its own
  /// stream so adding a task does not perturb the draws of the others.
  [[nodiscard]] Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace hpcs
