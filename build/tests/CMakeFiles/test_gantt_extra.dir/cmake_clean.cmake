file(REMOVE_RECURSE
  "CMakeFiles/test_gantt_extra.dir/test_gantt_extra.cpp.o"
  "CMakeFiles/test_gantt_extra.dir/test_gantt_extra.cpp.o.d"
  "test_gantt_extra"
  "test_gantt_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gantt_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
