# Empty dependencies file for test_gantt_extra.
# This may be replaced when dependencies are built.
