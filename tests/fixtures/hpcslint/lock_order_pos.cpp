// Fixture: two functions acquire the same pair of mutexes in opposite
// orders — the classic ABBA deadlock. hpcslint must report a lock-order
// cycle between TwoLocks::a_ and TwoLocks::b_.
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& m);
};

class TwoLocks {
 public:
  void ab() {
    MutexLock l1(a_);
    MutexLock l2(b_);  // edge a_ -> b_
  }
  void ba() {
    MutexLock l1(b_);
    MutexLock l2(a_);  // edge b_ -> a_: closes the cycle
  }

 private:
  Mutex a_;
  Mutex b_;
};
