#include "analysis/paper_experiments.h"

namespace hpcs::analysis {

ExperimentConfig paper_defaults(SchedMode mode, std::uint64_t seed, bool trace,
                                const obs::ObsConfig& obs) {
  ExperimentConfig cfg;
  cfg.mode = mode;
  cfg.placement = {0, 1, 2, 3};
  cfg.enable_noise = true;
  cfg.capture_trace = trace;
  cfg.obs = obs;
  cfg.seed = seed;
  return cfg;
}

// ---------------------------------------------------------------------------
// MetBench (Table III / Fig. 3)
// ---------------------------------------------------------------------------

MetBenchExperiment MetBenchExperiment::paper() {
  MetBenchExperiment e;
  e.workload.iterations = 40;
  return e;
}

RunResult run_metbench(const MetBenchExperiment& e, SchedMode mode, bool trace,
                       std::uint64_t seed, const obs::ObsConfig& obs) {
  ExperimentConfig cfg = paper_defaults(mode, seed, trace, obs);
  if (mode == SchedMode::kStatic) cfg.static_prios = e.static_prios;
  return run_experiment(cfg, wl::make_metbench(e.workload));
}

PaperReference paper_reference_metbench(SchedMode mode) {
  switch (mode) {
    case SchedMode::kBaselineCfs:
      return {"Baseline 2.6.24", 81.78, {25.34, 99.98, 25.32, 99.97}};
    case SchedMode::kStatic:
      return {"Static", 70.90, {99.97, 99.64, 99.95, 99.64}};
    case SchedMode::kUniform:
      return {"Uniform", 71.74, {96.17, 98.57, 90.94, 99.57}};
    case SchedMode::kAdaptive:
      return {"Adaptive", 71.65, {80.64, 99.52, 87.52, 99.20}};
    default:
      return {"(not in paper)", 0.0, {}};
  }
}

// ---------------------------------------------------------------------------
// MetBenchVar (Table IV / Fig. 4)
// ---------------------------------------------------------------------------

MetBenchVarExperiment MetBenchVarExperiment::paper() {
  MetBenchVarExperiment e;
  e.workload.iterations = 45;
  e.workload.k = 15;
  return e;
}

RunResult run_metbenchvar(const MetBenchVarExperiment& e, SchedMode mode, bool trace,
                          std::uint64_t seed, const obs::ObsConfig& obs) {
  ExperimentConfig cfg = paper_defaults(mode, seed, trace, obs);
  if (mode == SchedMode::kStatic) cfg.static_prios = e.static_prios;
  return run_experiment(cfg, wl::make_metbenchvar(e.workload));
}

PaperReference paper_reference_metbenchvar(SchedMode mode) {
  switch (mode) {
    case SchedMode::kBaselineCfs:
      return {"Baseline 2.6.24", 368.17, {50.24, 75.09, 50.22, 75.08}};
    case SchedMode::kStatic:
      return {"Static", 338.40, {99.97, 68.06, 99.94, 68.04}};
    case SchedMode::kUniform:
      return {"Uniform", 327.17, {91.47, 95.55, 91.44, 95.33}};
    case SchedMode::kAdaptive:
      return {"Adaptive", 326.41, {89.61, 93.08, 89.99, 95.15}};
    default:
      return {"(not in paper)", 0.0, {}};
  }
}

// ---------------------------------------------------------------------------
// BT-MZ (Table V / Fig. 5)
// ---------------------------------------------------------------------------

BtMzExperiment BtMzExperiment::paper() {
  BtMzExperiment e;
  e.workload.iterations = 200;
  return e;
}

RunResult run_btmz(const BtMzExperiment& e, SchedMode mode, bool trace, std::uint64_t seed,
                   const obs::ObsConfig& obs) {
  ExperimentConfig cfg = paper_defaults(mode, seed, trace, obs);
  // Complementary SMT pairing, which Table V's static utilizations imply
  // (P1 with P4 on core 0, P2 with P3 on core 1): the lightest rank shares a
  // core with the heaviest.
  cfg.placement = {0, 2, 3, 1};
  if (mode == SchedMode::kStatic) cfg.static_prios = e.static_prios;
  return run_experiment(cfg, wl::make_btmz(e.workload));
}

PaperReference paper_reference_btmz(SchedMode mode) {
  switch (mode) {
    case SchedMode::kBaselineCfs:
      return {"Baseline 2.6.24", 94.97, {17.63, 29.85, 66.09, 99.85}};
    case SchedMode::kStatic:
      return {"Static", 79.63, {70.64, 42.22, 60.96, 99.85}};
    case SchedMode::kUniform:
      return {"Uniform", 79.81, {70.31, 37.18, 65.29, 99.85}};
    case SchedMode::kAdaptive:
      return {"Adaptive", 79.92, {70.31, 37.30, 65.30, 99.83}};
    default:
      return {"(not in paper)", 0.0, {}};
  }
}

// ---------------------------------------------------------------------------
// SIESTA (Table VI / Fig. 6)
// ---------------------------------------------------------------------------

SiestaExperiment SiestaExperiment::paper() {
  SiestaExperiment e;
  return e;
}

RunResult run_siesta(const SiestaExperiment& e, SchedMode mode, bool trace, std::uint64_t seed,
                     const obs::ObsConfig& obs) {
  ExperimentConfig cfg = paper_defaults(mode, seed, trace, obs);
  return run_experiment(cfg, wl::make_siesta(e.workload));
}

PaperReference paper_reference_siesta(SchedMode mode) {
  switch (mode) {
    case SchedMode::kBaselineCfs:
      return {"Baseline 2.6.24", 81.49, {98.90, 52.79, 28.45, 19.99}};
    case SchedMode::kUniform:
      return {"Uniform", 76.82, {98.81, 53.38, 31.41, 21.68}};
    case SchedMode::kAdaptive:
      return {"Adaptive", 76.91, {98.81, 53.40, 31.47, 21.71}};
    default:
      return {"(not in paper)", 0.0, {}};
  }
}

}  // namespace hpcs::analysis
