// Tests of the POWER5 machine model: Table I decode arbitration, Table II
// privilege/or-nop encoding, throughput-model calibration anchors and
// monotonicity properties, SMT core + chip bookkeeping, priority ISA.

#include <gtest/gtest.h>

#include "power5/chip.h"
#include "power5/priority_isa.h"
#include "power5/throughput.h"

namespace hpcs::p5 {
namespace {

// ---- Table I -------------------------------------------------------------

TEST(DecodeAllocation, TableIExactRows) {
  // Paper Table I: (diff, R, cycles_hi, cycles_lo).
  const int rows[][4] = {{0, 2, 1, 1}, {1, 4, 3, 1}, {2, 8, 7, 1},
                         {3, 16, 15, 1}, {4, 32, 31, 1}, {5, 64, 63, 1}};
  for (const auto& row : rows) {
    EXPECT_EQ(decode_window(row[0]), row[1]);
    EXPECT_EQ(decode_window(-row[0]), row[1]) << "window must be symmetric";
  }
  // Realizable regular pairs.
  const DecodeAllocation a62 = decode_allocation(HwPrio::kHigh, HwPrio::kLow);
  EXPECT_EQ(a62.window, 32);
  EXPECT_EQ(a62.cycles_a, 31);
  EXPECT_EQ(a62.cycles_b, 1);
  EXPECT_FALSE(a62.special);
}

TEST(DecodeAllocation, PaperExample6vs2) {
  // "assuming priority 6 vs 2 (difference 4), the core fetches 31 times from
  // TaskA and once from TaskB".
  const DecodeAllocation a = decode_allocation(hw_prio_from_int(6), hw_prio_from_int(2));
  EXPECT_EQ(a.cycles_a, 31);
  EXPECT_EQ(a.cycles_b, 1);
}

TEST(DecodeAllocation, EqualPrioritiesSplitEvenly) {
  for (int p = 2; p <= 6; ++p) {
    const auto a = decode_allocation(hw_prio_from_int(p), hw_prio_from_int(p));
    EXPECT_EQ(a.window, 2);
    EXPECT_EQ(a.cycles_a, 1);
    EXPECT_EQ(a.cycles_b, 1);
  }
}

TEST(DecodeAllocation, SpecialPrioritiesBypassTableI) {
  EXPECT_TRUE(decode_allocation(HwPrio::kOff, HwPrio::kMedium).special);
  EXPECT_TRUE(decode_allocation(HwPrio::kVeryLow, HwPrio::kMedium).special);
  EXPECT_TRUE(decode_allocation(HwPrio::kVeryHigh, HwPrio::kMedium).special);
  EXPECT_FALSE(decode_allocation(HwPrio::kLow, HwPrio::kHigh).special);
}

TEST(DecodeAllocation, MirrorSymmetry) {
  for (int pa = 2; pa <= 6; ++pa) {
    for (int pb = 2; pb <= 6; ++pb) {
      const auto ab = decode_allocation(hw_prio_from_int(pa), hw_prio_from_int(pb));
      const auto ba = decode_allocation(hw_prio_from_int(pb), hw_prio_from_int(pa));
      EXPECT_EQ(ab.cycles_a, ba.cycles_b);
      EXPECT_EQ(ab.cycles_b, ba.cycles_a);
      EXPECT_EQ(ab.window, ba.window);
      EXPECT_EQ(ab.cycles_a + ab.cycles_b,
                (pa == pb) ? 2 : ab.window);  // hi + lo = R (or 1+1 at equal)
    }
  }
}

// ---- Table II ------------------------------------------------------------

TEST(PrivilegeTable, TableIIEncodings) {
  EXPECT_EQ(or_nop_register(HwPrio::kVeryLow), 31);
  EXPECT_EQ(or_nop_register(HwPrio::kLow), 1);
  EXPECT_EQ(or_nop_register(HwPrio::kMediumLow), 6);
  EXPECT_EQ(or_nop_register(HwPrio::kMedium), 2);
  EXPECT_EQ(or_nop_register(HwPrio::kMediumHigh), 5);
  EXPECT_EQ(or_nop_register(HwPrio::kHigh), 3);
  EXPECT_EQ(or_nop_register(HwPrio::kVeryHigh), 7);
  EXPECT_FALSE(or_nop_register(HwPrio::kOff).has_value());
}

TEST(PrivilegeTable, RoundTrip) {
  for (int p = 1; p <= 7; ++p) {
    const auto prio = hw_prio_from_int(p);
    const auto reg = or_nop_register(prio);
    ASSERT_TRUE(reg.has_value());
    EXPECT_EQ(prio_for_or_nop(*reg), prio);
  }
  EXPECT_FALSE(prio_for_or_nop(4).has_value());  // not an encoding
}

TEST(PrivilegeTable, PrivilegeLevels) {
  // User: 2,3,4. Supervisor adds 1,5,6. Hypervisor: 0,7.
  EXPECT_TRUE(can_set(Privilege::kUser, HwPrio::kLow));
  EXPECT_TRUE(can_set(Privilege::kUser, HwPrio::kMediumLow));
  EXPECT_TRUE(can_set(Privilege::kUser, HwPrio::kMedium));
  EXPECT_FALSE(can_set(Privilege::kUser, HwPrio::kMediumHigh));
  EXPECT_FALSE(can_set(Privilege::kUser, HwPrio::kHigh));
  EXPECT_FALSE(can_set(Privilege::kUser, HwPrio::kVeryLow));
  EXPECT_TRUE(can_set(Privilege::kSupervisor, HwPrio::kHigh));
  EXPECT_TRUE(can_set(Privilege::kSupervisor, HwPrio::kVeryLow));
  EXPECT_FALSE(can_set(Privilege::kSupervisor, HwPrio::kVeryHigh));
  EXPECT_FALSE(can_set(Privilege::kSupervisor, HwPrio::kOff));
  EXPECT_TRUE(can_set(Privilege::kHypervisor, HwPrio::kVeryHigh));
  EXPECT_TRUE(can_set(Privilege::kHypervisor, HwPrio::kOff));
}

// ---- Throughput model ----------------------------------------------------

TEST(Throughput, CalibrationAnchors) {
  const ThroughputParams p;
  // Equal priorities: 0.65 each (1.3x total SMT throughput).
  const auto eq = context_speeds(p, HwPrio::kMedium, true, HwPrio::kMedium, true);
  EXPECT_NEAR(eq.a, 0.65, 1e-9);
  EXPECT_NEAR(eq.b, 0.65, 1e-9);
  // Priority difference 2: winner ~+17%, loser ~4x slower (paper anchors).
  const auto d2 = context_speeds(p, HwPrio::kHigh, true, HwPrio::kMedium, true);
  EXPECT_NEAR(d2.a, 0.76, 1e-9);
  EXPECT_NEAR(d2.a / d2.b, 4.0, 0.1);
  // Priority difference 1 is gentle on the loser (concave curve): it keeps
  // ~85% of its equal-share speed — the Table V static profile.
  const auto d1 = context_speeds(p, HwPrio::kMediumHigh, true, HwPrio::kMedium, true);
  EXPECT_NEAR(d1.a, 0.73, 1e-9);
  EXPECT_NEAR(d1.b, 0.55, 1e-9);
  // The asymmetry of [4]: the winner gains X, the loser loses ~10X.
  const double winner_gain = d2.a / eq.a - 1.0;
  const double loser_loss = 1.0 - d2.b / eq.b;
  EXPECT_GT(loser_loss / winner_gain, 3.0);
}

TEST(Throughput, MonotoneInOwnPriority) {
  const ThroughputParams p;
  double prev = 0.0;
  for (int mine = 2; mine <= 6; ++mine) {
    const auto s = context_speeds(p, hw_prio_from_int(mine), true, HwPrio::kMedium, true);
    EXPECT_GE(s.a, prev - 1e-12) << "speed must not decrease with own priority";
    prev = s.a;
  }
}

TEST(Throughput, AntiMonotoneInSiblingPriority) {
  const ThroughputParams p;
  double prev = 2.0;
  for (int theirs = 2; theirs <= 6; ++theirs) {
    const auto s = context_speeds(p, HwPrio::kMedium, true, hw_prio_from_int(theirs), true);
    EXPECT_LE(s.a, prev + 1e-12);
    prev = s.a;
  }
}

TEST(Throughput, SpeedsAreBounded) {
  // Priority 7 (single-thread mode: sibling legitimately stalls at 0) is
  // covered by VeryHighMeansSiblingOff; here both contexts must progress.
  const ThroughputParams p;
  for (int pa = 1; pa <= 6; ++pa) {
    for (int pb = 1; pb <= 6; ++pb) {
      const auto s =
          context_speeds(p, hw_prio_from_int(pa), true, hw_prio_from_int(pb), true);
      EXPECT_GT(s.a, 0.0) << pa << " vs " << pb;
      EXPECT_LE(s.a, 1.0);
      EXPECT_GT(s.b, 0.0);
      EXPECT_LE(s.b, 1.0);
    }
  }
}

TEST(Throughput, SingleThreadModeWithTrueSnooze) {
  ThroughputParams p;
  p.idle_contention_prio = -1;  // context really off
  const auto s = context_speeds(p, HwPrio::kMedium, true, HwPrio::kMedium, false);
  EXPECT_DOUBLE_EQ(s.a, 1.0);
  EXPECT_DOUBLE_EQ(s.b, 0.0);
}

TEST(Throughput, SpinIdleKeepsContention) {
  const ThroughputParams p;  // default: idle contends at medium
  const auto s = context_speeds(p, HwPrio::kMedium, true, HwPrio::kMedium, false);
  EXPECT_NEAR(s.a, 0.65, 1e-9);  // no solo boost (Table III baseline)
  EXPECT_DOUBLE_EQ(s.b, 0.0);
  // ...but raising our priority against the spinning idle still helps.
  const auto s6 = context_speeds(p, HwPrio::kHigh, true, HwPrio::kMedium, false);
  EXPECT_NEAR(s6.a, 0.76, 1e-9);
}

TEST(Throughput, BackgroundPriority) {
  const ThroughputParams p;
  const auto s = context_speeds(p, HwPrio::kMedium, true, HwPrio::kVeryLow, true);
  EXPECT_NEAR(s.a, p.background_fg, 1e-9);
  EXPECT_NEAR(s.b, p.background_bg, 1e-9);
}

TEST(Throughput, VeryHighMeansSiblingOff) {
  const ThroughputParams p;
  const auto s = context_speeds(p, HwPrio::kVeryHigh, true, HwPrio::kMedium, true);
  EXPECT_DOUBLE_EQ(s.a, 1.0);
  EXPECT_DOUBLE_EQ(s.b, 0.0);
}

TEST(Throughput, DecodeShare) {
  EXPECT_DOUBLE_EQ(decode_share_a(HwPrio::kMedium, HwPrio::kMedium), 0.5);
  EXPECT_DOUBLE_EQ(decode_share_a(HwPrio::kHigh, HwPrio::kMedium), 7.0 / 8.0);
  EXPECT_DOUBLE_EQ(decode_share_a(HwPrio::kMedium, HwPrio::kHigh), 1.0 / 8.0);
}

// ---- SmtCore / Chip ------------------------------------------------------

TEST(SmtCore, SpeedUpdatesOnPriorityChange) {
  SmtCore core(0, ThroughputParams{});
  core.set_active(0, true);
  core.set_active(1, true);
  EXPECT_NEAR(core.speed(0), 0.65, 1e-9);
  int notifications = 0;
  core.set_listener([&](CoreId) { ++notifications; });
  EXPECT_TRUE(core.set_priority(0, HwPrio::kHigh));
  EXPECT_NEAR(core.speed(0), 0.76, 1e-9);
  EXPECT_LT(core.speed(1), 0.25);
  EXPECT_EQ(notifications, 1);
  EXPECT_FALSE(core.set_priority(0, HwPrio::kHigh));  // no-op, no notify
  EXPECT_EQ(notifications, 1);
}

TEST(Chip, TopologyMapping) {
  Chip chip(2);
  EXPECT_EQ(chip.num_cpus(), 4);
  EXPECT_EQ(Chip::core_of(0), 0);
  EXPECT_EQ(Chip::core_of(3), 1);
  EXPECT_EQ(Chip::ctx_of(2), 0);
  EXPECT_EQ(Chip::sibling_of(0), 1);
  EXPECT_EQ(Chip::sibling_of(3), 2);
  EXPECT_EQ(Chip::cpu_of(1, 1), 3);
}

TEST(Chip, PerCpuPriorityIsolation) {
  Chip chip(2);
  chip.set_cpu_active(0, true);
  chip.set_cpu_active(1, true);
  chip.set_cpu_active(2, true);
  chip.set_cpu_active(3, true);
  chip.set_cpu_priority(0, HwPrio::kHigh);
  EXPECT_NEAR(chip.cpu_speed(0), 0.76, 1e-9);
  EXPECT_LT(chip.cpu_speed(1), 0.25);
  // The other core is unaffected.
  EXPECT_NEAR(chip.cpu_speed(2), 0.65, 1e-9);
  EXPECT_NEAR(chip.cpu_speed(3), 0.65, 1e-9);
}

// ---- Priority ISA ----------------------------------------------------------

TEST(PriorityIsa, PrivilegeChecked) {
  Chip chip(2);
  PriorityIsa isa(chip);
  EXPECT_EQ(isa.set_priority(0, HwPrio::kMediumLow, Privilege::kUser), IsaResult::kOk);
  EXPECT_EQ(isa.read_priority(0), HwPrio::kMediumLow);
  // User cannot set 6; the write is silently dropped, priority unchanged.
  EXPECT_EQ(isa.set_priority(0, HwPrio::kHigh, Privilege::kUser), IsaResult::kNoPermission);
  EXPECT_EQ(isa.read_priority(0), HwPrio::kMediumLow);
  EXPECT_EQ(isa.set_priority(0, HwPrio::kHigh, Privilege::kSupervisor), IsaResult::kOk);
  EXPECT_EQ(isa.read_priority(0), HwPrio::kHigh);
  EXPECT_EQ(isa.rejected(), 1);
  EXPECT_EQ(isa.writes(), 2);
}

TEST(PriorityIsa, OrNopInterface) {
  Chip chip(2);
  PriorityIsa isa(chip);
  // or 3,3,3 sets High (supervisor required).
  EXPECT_EQ(isa.issue_or_nop(1, 3, Privilege::kSupervisor), IsaResult::kOk);
  EXPECT_EQ(isa.read_priority(1), HwPrio::kHigh);
  // or 4,4,4 is not a priority encoding.
  EXPECT_EQ(isa.issue_or_nop(1, 4, Privilege::kHypervisor), IsaResult::kBadEncoding);
}

}  // namespace
}  // namespace hpcs::p5
