# Empty compiler generated dependencies file for example_heuristic_tuning.
# This may be replaced when dependencies are built.
