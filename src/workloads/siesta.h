#pragma once
// SIESTA-like workload (paper §V-D): an ab-initio materials code whose
// behaviour is irregular — execution phases are very small, ranks exchange
// many point-to-point messages, there is no global barrier, and one
// iteration is not representative of the next. The benzene input shows a
// strongly skewed utilization profile (98.90 / 52.79 / 28.45 / 19.99 %).
//
// Structure: rank 0 (the "driver") computes a burst, scatters work to the
// other ranks and gathers their replies; workers receive, compute their
// (randomly varying, lognormal) share and reply. Cycles are ~1 ms, so the
// run is wakeup-dominated — the configuration that makes SIESTA "very
// sensible" to scheduler latency and OS noise, which is where its ~6%
// improvement under HPCSched comes from.

#include <cstdint>
#include <memory>
#include <vector>

#include "workloads/metbench.h"

namespace hpcs::wl {

struct SiestaConfig {
  int ranks = 4;
  int microiters = 60000;       ///< driver cycles (each ~1.36 ms wall)
  double cycle_work = 0.534e6;  ///< mean driver burst (work units); calibrated
                                ///< so the baseline lands at Table VI's 81.5 s
  /// Mean worker burst as a fraction of the driver burst; index 0 is the
  /// driver itself. Calibrated from Table VI's baseline utilizations.
  std::vector<double> fractions = {1.0, 0.53, 0.28, 0.20};
  double sigma = 0.5;  ///< lognormal sigma of per-cycle burst variation
  int mark_every = 200;
  std::int64_t msg_bytes = 8192;
  std::uint64_t seed = 42;
};

ProgramSet make_siesta(const SiestaConfig& cfg);

}  // namespace hpcs::wl
