// Reproduces Figure 6: SIESTA traces — fine-grained execution phases and
// heavy messaging; the figure shows (a) standard execution, (b) Uniform and
// (c) Adaptive. The paper's point: phases are so small and irregular that
// iteration-based balancing barely changes utilizations; the win is the
// responsive scheduling policy.

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace hpcs;
  using analysis::SchedMode;

  bench::init_logging(argc, argv);
  bench::reject_dist_unsupported(argc, argv);
  bench::FigObs fobs("fig6_siesta", bench::parse_obs_options(argc, argv));
  auto e = analysis::SiestaExperiment::paper();
  e.workload.microiters = 8000;  // a window of the full run
  e.workload.mark_every = 100;

  std::printf("=== Figure 6: effect of the proposed solution on SIESTA ===\n\n");
  for (const auto& [mode, label] :
       {std::pair{SchedMode::kBaselineCfs, "(a) standard execution"},
        std::pair{SchedMode::kUniform, "(b) Uniform prioritization"},
        std::pair{SchedMode::kAdaptive, "(c) Adaptive prioritization"}}) {
    auto r = analysis::run_siesta(e, mode, /*trace=*/true, /*seed=*/1, fobs.cfg());
    bench::print_trace_figure(label, r, 120);
    std::printf("avg wakeup latency per rank (us):");
    for (const auto& rank : r.ranks) std::printf(" %.1f", rank.avg_wakeup_latency_us);
    std::printf("\n\n");
    fobs.keep(label, std::move(r));
  }
  fobs.finish();
  return 0;
}
