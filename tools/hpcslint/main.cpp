// hpcslint CLI. Exit status 0 = clean, 1 = findings, 2 = usage/io error.
//
//   hpcslint [roots...]              lint *.h/*.hpp/*.cc/*.cpp under each
//                                    root (default roots: src bench tests,
//                                    resolved against the current directory)
//   hpcslint --compile-commands F    take the translation-unit set from a
//                                    CMake compile_commands.json instead of
//                                    directory roots
//   hpcslint --sarif FILE            also write a SARIF 2.1.0 report
//                                    ("-" = stdout)
//   hpcslint --baseline FILE         suppress findings whose fingerprint is
//                                    in this SARIF baseline; exit 1 only on
//                                    NEW findings
//   hpcslint --jobs N                parse translation units on N pool
//                                    threads (output byte-identical to -j1)
//   hpcslint --emit-proto FILE       write the extracted protocol transition
//                                    graph JSON ("-" = stdout); this is how
//                                    tools/hpcslint/dist_protocol_spec.json
//                                    is (re)generated
//   hpcslint --proto-spec FILE       diff the extracted transition graph
//                                    against this spec; drift becomes
//                                    proto-drift findings (gated like any
//                                    other rule)
//   hpcslint --list-rules            print rule names, one per line
//
// CI runs this over the real tree via ctest (tests/CMakeLists.txt registers
// `hpcslint_tree`) and the hpcslint-sarif workflow job, which lints from
// compile_commands.json and gates on tools/hpcslint/baseline.sarif.json.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "hpcslint.h"

namespace {

bool write_text(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> roots;
  std::string sarif_path;
  std::string baseline_path;
  std::string compile_commands;
  std::string emit_proto_path;
  std::string proto_spec_path;
  unsigned jobs = 1;

  // Paths in fingerprints, SARIF output, and messages are repo-relative:
  // relativize against the working directory (CI and the baseline script
  // both run from the repository root).
  std::error_code cwd_ec;
  const std::filesystem::path cwd = std::filesystem::current_path(cwd_ec);
  if (!cwd_ec) hpcslint::set_sarif_path_root(cwd);

  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "hpcslint: %s requires a value\n", argv[i]);
      return nullptr;
    }
    return argv[i + 1];
  };

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const std::string& r : hpcslint::rule_names()) std::printf("%s\n", r.c_str());
      return 0;
    }
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: hpcslint [--list-rules] [--compile-commands FILE]\n"
          "                [--sarif FILE|-] [--baseline FILE] [--jobs N]\n"
          "                [--emit-proto FILE|-] [--proto-spec FILE] "
          "[roots...]\n");
      return 0;
    }
    if (std::strcmp(argv[i], "--jobs") == 0 || std::strcmp(argv[i], "-j") == 0) {
      const char* v = need_value(i);
      if (v == nullptr) return 2;
      const long parsed = std::strtol(v, nullptr, 10);
      if (parsed < 1 || parsed > 256) {
        std::fprintf(stderr, "hpcslint: --jobs wants 1..256, got %s\n", v);
        return 2;
      }
      jobs = static_cast<unsigned>(parsed);
      ++i;
      continue;
    }
    if (std::strcmp(argv[i], "--sarif") == 0) {
      const char* v = need_value(i);
      if (v == nullptr) return 2;
      sarif_path = v;
      ++i;
      continue;
    }
    if (std::strcmp(argv[i], "--baseline") == 0) {
      const char* v = need_value(i);
      if (v == nullptr) return 2;
      baseline_path = v;
      ++i;
      continue;
    }
    if (std::strcmp(argv[i], "--compile-commands") == 0) {
      const char* v = need_value(i);
      if (v == nullptr) return 2;
      compile_commands = v;
      ++i;
      continue;
    }
    if (std::strcmp(argv[i], "--emit-proto") == 0) {
      const char* v = need_value(i);
      if (v == nullptr) return 2;
      emit_proto_path = v;
      ++i;
      continue;
    }
    if (std::strcmp(argv[i], "--proto-spec") == 0) {
      const char* v = need_value(i);
      if (v == nullptr) return 2;
      proto_spec_path = v;
      ++i;
      continue;
    }
    if (argv[i][0] == '-') {
      std::fprintf(stderr, "hpcslint: unknown option %s (see --help)\n", argv[i]);
      return 2;
    }
    roots.emplace_back(argv[i]);
  }

  if (!compile_commands.empty()) {
    if (!roots.empty()) {
      std::fprintf(stderr,
                   "hpcslint: --compile-commands and explicit roots are "
                   "mutually exclusive\n");
      return 2;
    }
    std::string error;
    if (!hpcslint::files_from_compile_commands(compile_commands, roots, error)) {
      std::fprintf(stderr, "hpcslint: %s\n", error.c_str());
      return 2;
    }
  } else if (roots.empty()) {
    for (const char* d : {"src", "bench", "tests"}) {
      if (std::filesystem::is_directory(d)) roots.emplace_back(d);
    }
    if (roots.empty()) {
      std::fprintf(stderr, "hpcslint: no roots given and none of src/bench/tests "
                           "exist in the current directory\n");
      return 2;
    }
  } else {
    for (const std::filesystem::path& r : roots) {
      if (!std::filesystem::exists(r)) {
        std::fprintf(stderr, "hpcslint: no such file or directory: %s\n",
                     r.string().c_str());
        return 2;
      }
    }
  }

  const hpcslint::LintResult result = hpcslint::lint_tree_full(roots, jobs);
  std::vector<hpcslint::Finding> findings = result.findings;

  if (!emit_proto_path.empty()) {
    if (!write_text(emit_proto_path, result.protocol_graph)) {
      std::fprintf(stderr, "hpcslint: cannot write %s\n", emit_proto_path.c_str());
      return 2;
    }
  }

  if (!proto_spec_path.empty()) {
    std::ifstream in(proto_spec_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "hpcslint: cannot read protocol spec %s\n",
                   proto_spec_path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::vector<hpcslint::Finding> drift = hpcslint::proto_drift_findings(
        result.protocol_graph, ss.str(), proto_spec_path);
    findings.insert(findings.end(), drift.begin(), drift.end());
    hpcslint::sort_findings(findings);
  }

  if (!sarif_path.empty()) {
    if (!write_text(sarif_path, hpcslint::sarif_report(findings))) {
      std::fprintf(stderr, "hpcslint: cannot write %s\n", sarif_path.c_str());
      return 2;
    }
  }

  std::vector<hpcslint::Finding> gate = findings;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "hpcslint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::set<std::string> baseline;
    std::string error;
    if (!hpcslint::load_baseline(ss.str(), baseline, error)) {
      std::fprintf(stderr, "hpcslint: bad baseline %s: %s\n",
                   baseline_path.c_str(), error.c_str());
      return 2;
    }
    gate = hpcslint::filter_baselined(findings, baseline);
  }

  for (const hpcslint::Finding& f : gate) {
    std::printf("%s\n", hpcslint::format_finding(f).c_str());
  }
  if (gate.empty()) {
    if (!baseline_path.empty() && !findings.empty()) {
      std::fprintf(stderr, "hpcslint: clean (%zu baselined finding(s) suppressed)\n",
                   findings.size());
    } else {
      std::fprintf(stderr, "hpcslint: clean\n");
    }
    return 0;
  }
  std::fprintf(stderr, "hpcslint: %zu %sfinding(s)\n", gate.size(),
               baseline_path.empty() ? "" : "new ");
  return 1;
}
