#include "hpcsched/hpc_class.h"

#include <algorithm>

#include "common/check.h"
#include "kernel/kernel.h"
#include "obs/recorder.h"

namespace hpcs::hpc {

HPCS_ASSERT_SCHED_CLASS(HpcSchedClass);

HpcSchedClass::HpcSchedClass(HpcTunables tunables, std::unique_ptr<Heuristic> heuristic,
                             std::unique_ptr<Mechanism> mechanism)
    : tun_(tunables), heuristic_(std::move(heuristic)), mechanism_(std::move(mechanism)) {
  HPCS_CHECK(heuristic_ != nullptr && mechanism_ != nullptr);
  HPCS_CHECK_MSG(tun_.min_prio >= 1 && tun_.max_prio <= 6 && tun_.min_prio <= tun_.max_prio,
                 "HPC priority range must stay within the supervisor range [1,6]");
}

void HpcSchedClass::set_heuristic(std::unique_ptr<Heuristic> h) {
  HPCS_CHECK(h != nullptr);
  heuristic_ = std::move(h);
}

HpcRq& HpcSchedClass::hrq(kern::Rq& rq, int index) {
  return static_cast<HpcRq&>(*rq.class_rqs[static_cast<std::size_t>(index)]);
}

void HpcSchedClass::enqueue(kern::Kernel& k, kern::Rq& rq, kern::Task& t, bool wakeup) {
  hrq(rq, index()).queue.push_back(&t);
  if (t.policy() == kern::Policy::kHpcRr && t.slice_left <= Duration::zero()) {
    t.slice_left = tun_.rr_slice;
  }
  if (!wakeup) return;

  // Wakeup = beginning of a new iteration: account the waiting phase, close
  // iteration i and (unless the application is balanced) apply the priority
  // the heuristic picks for iteration i+1 (paper §IV-B).
  const auto sample = tracker_.on_wakeup(t.pid(), k.now());
  if (sample.has_value()) on_iteration_complete(k, t, *sample);
}

void HpcSchedClass::on_iteration_complete(kern::Kernel& k, kern::Task& t,
                                          const IterationSample& sample) {
  ++iterations_;
  HPCS_TRACEPOINT(k.obs(), obs::TpId::kTpHpcIteration, k.now(), t.cpu, t.pid(),
                  sample.iteration);
  TaskIterStats* s = tracker_.stats_mutable(t.pid());
  HPCS_CHECK(s != nullptr);

  if (detector_.behaviour_changed(*s, tun_)) {
    tracker_.reset_history(t.pid());
    ++resets_;
    HPCS_TRACEPOINT(k.obs(), obs::TpId::kTpHpcHistoryReset, k.now(), t.cpu, t.pid(), 0);
  }

  const double metric = heuristic_->metric(*s, tun_);
  // The detector judges balance from the freshest signal (the iteration that
  // just completed); the heuristic classifies with its own, possibly
  // history-weighted metric.
  detector_.record(t.pid(), sample.util_last);

  if (kern::TraceSink* sink = k.trace()) {
    sink->on_iteration(k.now(), t, sample.iteration, sample.util_last, metric);
  }

  if (!balancing_enabled_) return;
  // In a stable (balanced) state the detector suppresses further priority
  // changes so the scheduler does not oscillate between two solutions.
  if (detector_.balanced(tun_)) return;

  ++imbalance_detections_;
  HPCS_TRACEPOINT(k.obs(), obs::TpId::kTpHpcImbalance, k.now(), t.cpu, t.pid(),
                  static_cast<std::int64_t>(sample.util_last * 100.0));

  const int target = classify_priority(metric, tun_);
  ++heuristic_decisions_;
  if (mechanism_->read(t) != target) {
    if (mechanism_->apply(k, t, target)) {
      ++prio_changes_;
      HPCS_TRACEPOINT(k.obs(), obs::TpId::kTpHpcPrioChange, k.now(), t.cpu, t.pid(), target);
    }
  }
}

void HpcSchedClass::dequeue(kern::Kernel& k, kern::Rq& rq, kern::Task& t, bool sleep) {
  auto& q = hrq(rq, index()).queue;
  const auto it = std::find(q.begin(), q.end(), &t);
  if (it != q.end()) q.erase(it);
  if (sleep) {
    // End of the computing phase: bank t_R (paper Fig. 2).
    tracker_.on_run_end(t.pid(), k.now());
    // Keep the tracker history for post-run inspection, but stop counting
    // the task in the balance decision.
    if (t.exited()) detector_.forget(t.pid());
  }
}

kern::Task* HpcSchedClass::pick_next(kern::Kernel& k, kern::Rq& rq) {
  (void)k;
  auto& q = hrq(rq, index()).queue;
  if (q.empty()) return nullptr;
  kern::Task* t = q.front();
  q.pop_front();
  return t;
}

void HpcSchedClass::put_prev(kern::Kernel& k, kern::Rq& rq, kern::Task& t) {
  (void)k;
  auto& q = hrq(rq, index()).queue;
  if (t.policy() == kern::Policy::kHpcRr && t.slice_left <= Duration::zero()) {
    t.slice_left = tun_.rr_slice;
    q.push_back(&t);  // RR: rotate to the tail on slice expiry
  } else {
    q.push_front(&t);  // FIFO: keep the head until the task yields or blocks
  }
}

void HpcSchedClass::task_tick(kern::Kernel& k, kern::Rq& rq, kern::Task& t) {
  if (t.policy() != kern::Policy::kHpcRr) return;
  t.slice_left -= k.tick_period();
  if (t.slice_left <= Duration::zero()) {
    if (!hrq(rq, index()).queue.empty()) {
      rq.need_resched = true;
    } else {
      t.slice_left = tun_.rr_slice;
    }
  }
}

bool HpcSchedClass::wakeup_preempt(kern::Kernel& k, kern::Rq& rq, kern::Task& curr,
                                   kern::Task& woken) {
  (void)k;
  (void)rq;
  (void)curr;
  (void)woken;
  // Within the HPC class there is no priority notion: FIFO/RR order decides.
  return false;
}

void HpcSchedClass::yield(kern::Kernel& k, kern::Rq& rq, kern::Task& t) {
  (void)k;
  (void)rq;
  t.slice_left = Duration::zero();  // put_prev rotates the task to the tail
}

kern::Task* HpcSchedClass::steal_candidate(kern::Kernel& k, kern::Rq& rq) {
  (void)k;
  auto& q = hrq(rq, index()).queue;
  for (auto it = q.rbegin(); it != q.rend(); ++it) {
    if ((*it)->pinned_cpu == kInvalidCpu) return *it;
  }
  return nullptr;
}

}  // namespace hpcs::hpc
