#include "cluster/gang.h"

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "hpcsched/hpcsched.h"
#include "kernel/noise.h"
#include "simcore/simulator.h"
#include "simmpi/mpi_world.h"

namespace hpcs::cluster {

const char* gang_policy_name(GangPolicy p) {
  switch (p) {
    case GangPolicy::kPacked: return "packed";
    case GangPolicy::kRoundRobin: return "round-robin";
    case GangPolicy::kLeastLoaded: return "least-loaded";
  }
  return "?";
}

std::vector<int> assign_jobs(const std::vector<JobSpec>& jobs, int nodes, int cpus_per_node,
                             GangPolicy policy) {
  HPCS_CHECK(nodes > 0 && cpus_per_node > 0);
  std::vector<int> assignment(jobs.size(), 0);
  switch (policy) {
    case GangPolicy::kPacked: {
      // First fit by free CPU count; overflow wraps to the next node.
      std::vector<int> free_cpus(static_cast<std::size_t>(nodes), cpus_per_node);
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        int chosen = nodes - 1;
        for (int n = 0; n < nodes; ++n) {
          if (free_cpus[static_cast<std::size_t>(n)] >= jobs[j].ranks) {
            chosen = n;
            break;
          }
        }
        assignment[j] = chosen;
        free_cpus[static_cast<std::size_t>(chosen)] -= jobs[j].ranks;
      }
      break;
    }
    case GangPolicy::kRoundRobin:
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        assignment[j] = static_cast<int>(j) % nodes;
      }
      break;
    case GangPolicy::kLeastLoaded: {
      std::vector<double> load(static_cast<std::size_t>(nodes), 0.0);
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        const auto it = std::min_element(load.begin(), load.end());
        assignment[j] = static_cast<int>(it - load.begin());
        *it += jobs[j].load_estimate;
      }
      break;
    }
  }
  return assignment;
}

ClusterResult run_cluster(const ClusterConfig& cfg, const std::vector<JobSpec>& jobs,
                          GangPolicy policy) {
  sim::Simulator simulator;

  // Bring up the nodes: one full kernel each, sharing the event loop.
  std::vector<std::unique_ptr<kern::Kernel>> kernels;
  Rng noise_rng(cfg.seed ^ 0xC1A5ull);
  for (int n = 0; n < cfg.nodes; ++n) {
    auto k = std::make_unique<kern::Kernel>(simulator, cfg.node_kernel);
    if (cfg.hpcsched) {
      hpc::HpcSchedConfig hc;
      hc.tunables = cfg.tunables;
      hpc::install_hpcsched(*k, hc);
    }
    k->start();
    if (cfg.noise) kern::spawn_noise_daemons(*k, cfg.noise_config, noise_rng);
    kernels.push_back(std::move(k));
  }

  const int cpus = kernels.front()->num_cpus();
  const std::vector<int> assignment = assign_jobs(jobs, cfg.nodes, cpus, policy);

  // Create all worlds (gangs start simultaneously — space sharing).
  std::vector<std::unique_ptr<mpi::MpiWorld>> worlds;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    mpi::MpiWorldConfig wc;
    wc.policy = cfg.hpcsched ? kern::Policy::kHpcRr : kern::Policy::kNormal;
    wc.net = cfg.net;
    wc.seed = cfg.seed + j;
    wc.name_prefix = jobs[j].name + "/r";
    // Round-robin the gang's ranks over the node's CPUs.
    for (int r = 0; r < jobs[j].ranks; ++r) wc.placement.push_back(r % cpus);
    worlds.push_back(std::make_unique<mpi::MpiWorld>(
        *kernels[static_cast<std::size_t>(assignment[j])], wc, jobs[j].make_programs()));
  }
  for (auto& w : worlds) w->start();

  // Run until every job is done.
  const auto all_done = [&worlds] {
    return std::all_of(worlds.begin(), worlds.end(),
                       [](const auto& w) { return w->done(); });
  };
  const SimTime deadline = SimTime(std::int64_t{8} * 3600 * 1000000000);
  while (!all_done() && simulator.now() < deadline && simulator.step()) {
  }
  HPCS_CHECK_MSG(all_done(), "cluster jobs did not complete before the deadline");

  ClusterResult res;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    JobResult jr;
    jr.name = jobs[j].name;
    jr.node = assignment[j];
    jr.finish = worlds[j]->finish_time();
    jr.exec_time = jr.finish - SimTime::zero();
    res.jobs.push_back(jr);
    res.makespan = std::max(res.makespan, jr.exec_time);
  }
  return res;
}

}  // namespace hpcs::cluster
