#pragma once
// Simulated task (process) descriptor — the moral equivalent of
// `struct task_struct` for this simulator, carrying scheduling state,
// accounting and the behaviour ("body") that drives the task.

#include <cstdint>
#include <memory>
#include <string>

#include "common/stats.h"
#include "common/types.h"
#include "power5/hw_priority.h"

namespace hpcs::kern {

class Kernel;
class Task;

/// Scheduling policies. The first two live in the real-time class, the HPC
/// pair in the HPCSched class (paper §IV-A), the normal/batch pair in CFS.
enum class Policy : std::uint8_t {
  kFifo,     ///< SCHED_FIFO
  kRr,       ///< SCHED_RR
  kHpcFifo,  ///< SCHED_HPC with the FIFO run-queue algorithm
  kHpcRr,    ///< SCHED_HPC with the round-robin run-queue algorithm
  kNormal,   ///< SCHED_NORMAL (a.k.a. SCHED_OTHER)
  kBatch,    ///< SCHED_BATCH
  kIdle,     ///< the per-CPU idle task
};

[[nodiscard]] const char* policy_name(Policy p);
[[nodiscard]] inline bool is_hpc_policy(Policy p) {
  return p == Policy::kHpcFifo || p == Policy::kHpcRr;
}

enum class TaskState : std::uint8_t {
  kRunnable,  ///< on a run queue (possibly running)
  kSleeping,  ///< blocked, waiting for a wakeup
  kExited,
};

/// What a task does when it reaches an interaction point. `step()` is called
/// when the task is first dispatched and whenever its current compute segment
/// completes; it must request exactly one action through the Kernel body API
/// (`body_compute`, `body_block`, `body_sleep`, `body_yield`, `body_exit`).
class TaskBody {
 public:
  virtual ~TaskBody() = default;
  virtual void step(Kernel& k, Task& t) = 0;
};

/// Accounting bucket a task is currently charged to.
enum class AccState : std::uint8_t { kRun, kReady, kSleep };

class Task {
 public:
  Task(Pid pid, std::string name, Policy policy) : pid_(pid), name_(std::move(name)), policy_(policy) {}

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  [[nodiscard]] Pid pid() const { return pid_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Policy policy() const { return policy_; }
  [[nodiscard]] TaskState state() const { return state_; }
  [[nodiscard]] bool exited() const { return state_ == TaskState::kExited; }

  // ---- scheduling fields (manipulated by the kernel and classes) ----

  /// Real-time priority for SCHED_FIFO / SCHED_RR (0 = highest, 99 lowest).
  int rt_prio = 0;
  /// Nice value for CFS (-20..19).
  int nice = 0;
  /// Hardware thread priority requested for this task (applied to the SMT
  /// context whenever the task is switched in).
  p5::HwPrio hw_prio = p5::kDefaultPrio;

  CpuId cpu = 0;                    ///< run queue the task belongs to
  CpuId pinned_cpu = kInvalidCpu;   ///< kInvalidCpu = runs anywhere
  bool on_rq = false;               ///< queued in a class structure or running

  Duration vruntime = Duration::zero();      ///< CFS virtual runtime
  Duration slice_left = Duration::zero();    ///< RR time slice remaining
  SimTime last_dispatch = SimTime::zero();   ///< time of last switch-in

  // ---- execution engine ----
  Work remaining = 0;  ///< work units left in the current compute segment

  // ---- statistics ----
  Duration t_run = Duration::zero();
  Duration t_ready = Duration::zero();
  Duration t_sleep = Duration::zero();
  std::int64_t nr_switches = 0;
  std::int64_t nr_migrations = 0;
  std::int64_t nr_wakeups = 0;
  RunningStat wakeup_latency_us;  ///< scheduler latency samples (microseconds)
  SimTime created = SimTime::zero();
  SimTime exit_time = SimTime::zero();

  /// Fraction of lifetime spent computing (the paper's "% Comp" column).
  [[nodiscard]] double cpu_utilization() const {
    const Duration total = t_run + t_ready + t_sleep;
    return total > Duration::zero() ? t_run / total : 0.0;
  }

 private:
  friend class Kernel;

  enum class Req : std::uint8_t { kNone, kCompute, kBlock, kSleep, kYield, kExit };

  Pid pid_;
  std::string name_;
  Policy policy_;
  TaskState state_ = TaskState::kSleeping;
  /// Index of the scheduling class owning policy_, cached by the kernel at
  /// creation / sched_setscheduler() so the per-tick and per-switch paths
  /// skip the owns() scan over the class chain.
  int class_idx_ = -1;

  std::unique_ptr<TaskBody> body_;

  // Request recorded by the body API during step(), executed afterwards.
  Req req_ = Req::kNone;
  Work req_work_ = 0;
  Duration req_sleep_ = Duration::zero();

  // Accounting.
  AccState acc_state_ = AccState::kSleep;
  SimTime acc_since_ = SimTime::zero();

  // Wakeup-latency measurement.
  SimTime wake_time_ = SimTime::zero();
  bool woken_pending_ = false;
};

}  // namespace hpcs::kern
