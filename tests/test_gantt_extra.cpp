// Additional rendering tests: Gantt windows, multi-task alignment, partial
// compute cells, and end-to-end Gantt output from real scheduler runs.

#include <gtest/gtest.h>

#include "analysis/paper_experiments.h"
#include "trace/gantt.h"

namespace hpcs::trace {
namespace {

SimTime at_ms(std::int64_t ms) { return SimTime(ms * 1000000); }

struct TwoTasks {
  kern::Task a{1, "a", kern::Policy::kNormal};
  kern::Task b{2, "b", kern::Policy::kNormal};
  Tracer tracer;
};

TEST(GanttExtra, WindowSelectsSubrange) {
  TwoTasks f;
  f.tracer.on_state(at_ms(0), f.a, kern::TaskState::kRunnable);
  f.tracer.on_state(at_ms(100), f.a, kern::TaskState::kSleeping);
  f.tracer.finalize(at_ms(200));
  GanttOptions opt;
  opt.width = 10;
  opt.show_priorities = false;
  opt.begin = at_ms(100);
  opt.end = at_ms(200);
  const std::string g = render_gantt(f.tracer, {1}, {"a"}, opt);
  // Entirely waiting within the window (the row, not the legend line).
  EXPECT_NE(g.find("|..........|"), std::string::npos) << g;
}

TEST(GanttExtra, PartialCellsUsePlus) {
  TwoTasks f;
  // Computing 20% of each cell -> '+' marker.
  for (int i = 0; i < 10; ++i) {
    f.tracer.on_state(at_ms(i * 10), f.a, kern::TaskState::kRunnable);
    f.tracer.on_state(at_ms(i * 10 + 2), f.a, kern::TaskState::kSleeping);
  }
  f.tracer.finalize(at_ms(100));
  GanttOptions opt;
  opt.width = 10;
  opt.show_priorities = false;
  opt.end = at_ms(100);
  const std::string g = render_gantt(f.tracer, {1}, {"a"}, opt);
  EXPECT_NE(g.find("++++++++++"), std::string::npos) << g;
}

TEST(GanttExtra, MultipleTasksShareTimeAxis) {
  TwoTasks f;
  f.tracer.on_state(at_ms(0), f.a, kern::TaskState::kRunnable);
  f.tracer.on_state(at_ms(50), f.a, kern::TaskState::kSleeping);
  f.tracer.on_state(at_ms(50), f.b, kern::TaskState::kRunnable);
  f.tracer.on_state(at_ms(100), f.b, kern::TaskState::kExited);
  f.tracer.finalize(at_ms(100));
  GanttOptions opt;
  opt.width = 10;
  opt.show_priorities = false;
  const std::string g = render_gantt(f.tracer, {1, 2}, {"a", "b"}, opt);
  // Complementary halves.
  EXPECT_NE(g.find("#####....."), std::string::npos) << g;
  EXPECT_NE(g.find(".....#####"), std::string::npos) << g;
}

TEST(GanttExtra, EndToEndFromRealRun) {
  auto e = analysis::MetBenchExperiment::paper();
  e.workload.iterations = 4;
  for (auto& l : e.workload.loads) l /= 8.0;
  const auto r = analysis::run_metbench(e, analysis::SchedMode::kUniform, /*trace=*/true);
  std::vector<Pid> pids;
  std::vector<std::string> labels;
  for (const auto& rank : r.ranks) {
    pids.push_back(rank.pid);
    labels.push_back(rank.name);
  }
  const std::string g = render_gantt(*r.tracer, pids, labels);
  // All four rank rows present, time axis annotated, priorities overlaid.
  for (const auto& l : labels) EXPECT_NE(g.find(l), std::string::npos);
  EXPECT_NE(g.find("'#'=computing"), std::string::npos);
  EXPECT_NE(g.find("666"), std::string::npos) << "heavy ranks must show priority 6";
}

}  // namespace
}  // namespace hpcs::trace
