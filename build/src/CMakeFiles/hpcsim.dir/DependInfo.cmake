
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/experiment.cpp" "src/CMakeFiles/hpcsim.dir/analysis/experiment.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/analysis/experiment.cpp.o.d"
  "/root/repo/src/analysis/iterations.cpp" "src/CMakeFiles/hpcsim.dir/analysis/iterations.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/analysis/iterations.cpp.o.d"
  "/root/repo/src/analysis/paper_experiments.cpp" "src/CMakeFiles/hpcsim.dir/analysis/paper_experiments.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/analysis/paper_experiments.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/CMakeFiles/hpcsim.dir/analysis/report.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/analysis/report.cpp.o.d"
  "/root/repo/src/analysis/sweep.cpp" "src/CMakeFiles/hpcsim.dir/analysis/sweep.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/analysis/sweep.cpp.o.d"
  "/root/repo/src/analysis/tables.cpp" "src/CMakeFiles/hpcsim.dir/analysis/tables.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/analysis/tables.cpp.o.d"
  "/root/repo/src/cluster/gang.cpp" "src/CMakeFiles/hpcsim.dir/cluster/gang.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/cluster/gang.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/hpcsim.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/common/log.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/hpcsim.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/types.cpp" "src/CMakeFiles/hpcsim.dir/common/types.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/common/types.cpp.o.d"
  "/root/repo/src/hpcsched/heuristics.cpp" "src/CMakeFiles/hpcsim.dir/hpcsched/heuristics.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/hpcsched/heuristics.cpp.o.d"
  "/root/repo/src/hpcsched/hpc_class.cpp" "src/CMakeFiles/hpcsim.dir/hpcsched/hpc_class.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/hpcsched/hpc_class.cpp.o.d"
  "/root/repo/src/hpcsched/hpcsched.cpp" "src/CMakeFiles/hpcsim.dir/hpcsched/hpcsched.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/hpcsched/hpcsched.cpp.o.d"
  "/root/repo/src/hpcsched/imbalance_detector.cpp" "src/CMakeFiles/hpcsim.dir/hpcsched/imbalance_detector.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/hpcsched/imbalance_detector.cpp.o.d"
  "/root/repo/src/hpcsched/iteration_tracker.cpp" "src/CMakeFiles/hpcsim.dir/hpcsched/iteration_tracker.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/hpcsched/iteration_tracker.cpp.o.d"
  "/root/repo/src/hpcsched/mechanism.cpp" "src/CMakeFiles/hpcsim.dir/hpcsched/mechanism.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/hpcsched/mechanism.cpp.o.d"
  "/root/repo/src/kernel/cfs_class.cpp" "src/CMakeFiles/hpcsim.dir/kernel/cfs_class.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/kernel/cfs_class.cpp.o.d"
  "/root/repo/src/kernel/kernel.cpp" "src/CMakeFiles/hpcsim.dir/kernel/kernel.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/kernel/kernel.cpp.o.d"
  "/root/repo/src/kernel/noise.cpp" "src/CMakeFiles/hpcsim.dir/kernel/noise.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/kernel/noise.cpp.o.d"
  "/root/repo/src/kernel/o1_class.cpp" "src/CMakeFiles/hpcsim.dir/kernel/o1_class.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/kernel/o1_class.cpp.o.d"
  "/root/repo/src/kernel/rt_class.cpp" "src/CMakeFiles/hpcsim.dir/kernel/rt_class.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/kernel/rt_class.cpp.o.d"
  "/root/repo/src/kernel/sysfs.cpp" "src/CMakeFiles/hpcsim.dir/kernel/sysfs.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/kernel/sysfs.cpp.o.d"
  "/root/repo/src/power5/chip.cpp" "src/CMakeFiles/hpcsim.dir/power5/chip.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/power5/chip.cpp.o.d"
  "/root/repo/src/power5/cycle_sim.cpp" "src/CMakeFiles/hpcsim.dir/power5/cycle_sim.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/power5/cycle_sim.cpp.o.d"
  "/root/repo/src/power5/hw_priority.cpp" "src/CMakeFiles/hpcsim.dir/power5/hw_priority.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/power5/hw_priority.cpp.o.d"
  "/root/repo/src/power5/priority_isa.cpp" "src/CMakeFiles/hpcsim.dir/power5/priority_isa.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/power5/priority_isa.cpp.o.d"
  "/root/repo/src/power5/smt_core.cpp" "src/CMakeFiles/hpcsim.dir/power5/smt_core.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/power5/smt_core.cpp.o.d"
  "/root/repo/src/power5/throughput.cpp" "src/CMakeFiles/hpcsim.dir/power5/throughput.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/power5/throughput.cpp.o.d"
  "/root/repo/src/simcore/event_queue.cpp" "src/CMakeFiles/hpcsim.dir/simcore/event_queue.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/simcore/event_queue.cpp.o.d"
  "/root/repo/src/simcore/simulator.cpp" "src/CMakeFiles/hpcsim.dir/simcore/simulator.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/simcore/simulator.cpp.o.d"
  "/root/repo/src/simmpi/mpi_world.cpp" "src/CMakeFiles/hpcsim.dir/simmpi/mpi_world.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/simmpi/mpi_world.cpp.o.d"
  "/root/repo/src/simmpi/network.cpp" "src/CMakeFiles/hpcsim.dir/simmpi/network.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/simmpi/network.cpp.o.d"
  "/root/repo/src/trace/csv.cpp" "src/CMakeFiles/hpcsim.dir/trace/csv.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/trace/csv.cpp.o.d"
  "/root/repo/src/trace/gantt.cpp" "src/CMakeFiles/hpcsim.dir/trace/gantt.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/trace/gantt.cpp.o.d"
  "/root/repo/src/trace/paraver.cpp" "src/CMakeFiles/hpcsim.dir/trace/paraver.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/trace/paraver.cpp.o.d"
  "/root/repo/src/trace/tracer.cpp" "src/CMakeFiles/hpcsim.dir/trace/tracer.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/trace/tracer.cpp.o.d"
  "/root/repo/src/workloads/btmz.cpp" "src/CMakeFiles/hpcsim.dir/workloads/btmz.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/workloads/btmz.cpp.o.d"
  "/root/repo/src/workloads/metbench.cpp" "src/CMakeFiles/hpcsim.dir/workloads/metbench.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/workloads/metbench.cpp.o.d"
  "/root/repo/src/workloads/metbenchvar.cpp" "src/CMakeFiles/hpcsim.dir/workloads/metbenchvar.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/workloads/metbenchvar.cpp.o.d"
  "/root/repo/src/workloads/repartition.cpp" "src/CMakeFiles/hpcsim.dir/workloads/repartition.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/workloads/repartition.cpp.o.d"
  "/root/repo/src/workloads/siesta.cpp" "src/CMakeFiles/hpcsim.dir/workloads/siesta.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/workloads/siesta.cpp.o.d"
  "/root/repo/src/workloads/wavefront.cpp" "src/CMakeFiles/hpcsim.dir/workloads/wavefront.cpp.o" "gcc" "src/CMakeFiles/hpcsim.dir/workloads/wavefront.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
