#pragma once
// PARAVER-style tracing (paper §V uses PARAVER to visualize runs): records
// per-task state intervals (computing vs waiting), hardware-priority change
// events, per-iteration utilization samples and wakeup latencies. The Gantt
// renderer and CSV exporter consume this data to regenerate Figures 3-6.

#include <map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "kernel/task.h"
#include "kernel/trace_hooks.h"

namespace hpcs::trace {

/// What a task was doing during an interval. Matches the paper's two-tone
/// traces: computing (runnable, dark) vs waiting (blocked, light).
enum class Activity { kCompute, kWait };

struct Interval {
  SimTime begin = SimTime::zero();
  SimTime end = SimTime::zero();
  Activity activity = Activity::kWait;
};

struct PrioEvent {
  SimTime when = SimTime::zero();
  int prio = 4;
};

struct IterationEvent {
  SimTime when = SimTime::zero();
  int iteration = 0;
  double util_last = 0.0;
  double util_metric = 0.0;
};

class Tracer final : public kern::TraceSink {
 public:
  // TraceSink implementation.
  void on_state(SimTime t, const kern::Task& task, kern::TaskState new_state) override;
  void on_hw_prio(SimTime t, const kern::Task& task, p5::HwPrio prio) override;
  void on_iteration(SimTime t, const kern::Task& task, int iteration, double util_last,
                    double util_metric) override;
  void on_wakeup_latency(SimTime t, const kern::Task& task, Duration latency) override;

  /// Close all open intervals at `end`.
  void finalize(SimTime end);

  [[nodiscard]] const std::vector<Interval>& intervals(Pid pid) const;
  [[nodiscard]] const std::vector<PrioEvent>& prio_events(Pid pid) const;
  [[nodiscard]] const std::vector<IterationEvent>& iteration_events(Pid pid) const;
  [[nodiscard]] const RunningStat& wakeup_latency_us(Pid pid) const;
  [[nodiscard]] std::vector<Pid> traced_pids() const;

  /// Fraction of [begin,end] the task spent computing.
  [[nodiscard]] double compute_fraction(Pid pid, SimTime begin, SimTime end) const;

 private:
  struct PerTask {
    std::vector<Interval> intervals;
    std::vector<PrioEvent> prios;
    std::vector<IterationEvent> iterations;
    RunningStat latency_us;
    Activity open_activity = Activity::kWait;
    SimTime open_since = SimTime::zero();
    bool has_open = false;
    bool exited = false;
  };

  PerTask& slot(const kern::Task& task, SimTime t);

  std::map<Pid, PerTask> tasks_;
};

}  // namespace hpcs::trace
