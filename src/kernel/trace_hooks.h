#pragma once
// Tracing interface the kernel (and the HPC scheduler) emit events through.
// The trace module implements this to build PARAVER-style interval traces;
// tests implement it to observe scheduler behaviour.

#include "common/types.h"
#include "power5/hw_priority.h"

namespace hpcs::kern {

class Task;
enum class TaskState : std::uint8_t;

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Context switch on `cpu`; either pointer may be the idle task.
  virtual void on_switch(SimTime t, CpuId cpu, const Task* prev, const Task* next) {
    (void)t; (void)cpu; (void)prev; (void)next;
  }
  /// Task lifecycle transition (runnable/sleeping/exited).
  virtual void on_state(SimTime t, const Task& task, TaskState new_state) {
    (void)t; (void)task; (void)new_state;
  }
  /// A task's requested hardware priority changed.
  virtual void on_hw_prio(SimTime t, const Task& task, p5::HwPrio prio) {
    (void)t; (void)task; (void)prio;
  }
  /// Measured wakeup→dispatch latency for a task.
  virtual void on_wakeup_latency(SimTime t, const Task& task, Duration latency) {
    (void)t; (void)task; (void)latency;
  }
  /// Emitted by the HPC scheduler when a task completes an iteration
  /// (run phase + wait phase), with its last-iteration and global utilization.
  virtual void on_iteration(SimTime t, const Task& task, int iteration, double util_last,
                            double util_global) {
    (void)t; (void)task; (void)iteration; (void)util_last; (void)util_global;
  }
};

}  // namespace hpcs::kern
