// compile_commands.json driver: turn CMake's compilation database into the
// translation-unit set for a whole-program lint. Only the "file" member of
// each entry is used — hpcslint does not reproduce the compiler's include
// resolution; instead every header sitting next to an accepted source file
// (same directory, non-recursive) joins the program, which is where this
// repo keeps the class definitions the link step needs.

#include <algorithm>
#include <fstream>
#include <sstream>

#include "hpcslint.h"
#include "json_mini.h"

namespace hpcslint {
namespace {

namespace fs = std::filesystem;

bool has_skipped_component(const fs::path& p) {
  for (const auto& part : p) {
    const std::string s = part.string();
    if (s == "_deps" || s == "external" || s == "fixtures" ||
        s == "hpcslint_fixtures" || s == "build" || s == "CMakeFiles") {
      return true;
    }
  }
  return false;
}

bool is_source_ext(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".cpp";
}

bool is_header_ext(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp";
}

}  // namespace

bool files_from_compile_commands(const fs::path& json_path,
                                 std::vector<fs::path>& out, std::string& error) {
  std::ifstream in(json_path, std::ios::binary);
  if (!in) {
    error = "cannot read " + json_path.string();
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  json::Value doc;
  if (!json::parse(text, doc, error)) {
    error = json_path.string() + ": " + error;
    return false;
  }
  if (!doc.is_array()) {
    error = json_path.string() + ": expected a top-level array";
    return false;
  }

  std::vector<fs::path> files;
  std::vector<fs::path> dirs;
  for (const json::Value& entry : doc.arr) {
    const json::Value* file = entry.get("file");
    if (file == nullptr || !file->is_string()) continue;
    fs::path p(file->str);
    if (!p.is_absolute()) {
      const json::Value* dir = entry.get("directory");
      if (dir != nullptr && dir->is_string()) p = fs::path(dir->str) / p;
    }
    std::error_code ec;
    const fs::path canon = fs::weakly_canonical(p, ec);
    if (!ec) p = canon;
    if (has_skipped_component(p) || !is_source_ext(p)) continue;
    files.push_back(p);
    dirs.push_back(p.parent_path());
  }

  // Headers never appear in the database; pull in the ones that live beside
  // the accepted sources.
  std::sort(dirs.begin(), dirs.end());
  dirs.erase(std::unique(dirs.begin(), dirs.end()), dirs.end());
  for (const fs::path& dir : dirs) {
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (it->is_regular_file(ec) && is_header_ext(it->path()) &&
          !has_skipped_component(it->path())) {
        files.push_back(it->path());
      }
    }
  }

  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  if (files.empty()) {
    error = json_path.string() + ": no usable translation units";
    return false;
  }
  out = std::move(files);
  return true;
}

}  // namespace hpcslint
