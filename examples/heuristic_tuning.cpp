// Example: tuning the HPC scheduler at run time through the sysfs interface
// (paper §IV-B: "the user can set some parameters at run time to tune the
// heuristic"). Sweeps the Adaptive G/L split on a dynamic workload and
// prints the trade-off between responsiveness and over-reaction.

#include <cstdio>

#include "analysis/experiment.h"
#include "workloads/metbenchvar.h"

using namespace hpcs;

int main() {
  std::printf("== tuning the Adaptive heuristic: G (history) vs L (recency) ==\n\n");

  wl::MetBenchVarConfig wl_cfg;
  wl_cfg.iterations = 24;
  wl_cfg.k = 8;
  for (auto& l : wl_cfg.loads_a) l /= 8.0;
  for (auto& l : wl_cfg.loads_b) l /= 8.0;

  analysis::ExperimentConfig base_cfg;
  base_cfg.mode = analysis::SchedMode::kBaselineCfs;
  base_cfg.seed = 3;
  const auto base = analysis::run_experiment(base_cfg, wl::make_metbenchvar(wl_cfg));
  std::printf("baseline: %.2fs\n\n", base.exec_time.sec());

  std::printf("%-8s %-10s %-12s %-14s %-10s\n", "G(%)", "exec(s)", "improve(%)", "prio changes",
              "resets");
  for (const int g : {0, 10, 25, 50, 75, 90, 100}) {
    analysis::ExperimentConfig cfg;
    cfg.mode = analysis::SchedMode::kAdaptive;
    cfg.seed = 3;
    cfg.hpc.adaptive_g_pct = g;  // what a user would do via
                                 // sysfs write("hpcsched/adaptive_g_pct", g)
    const auto r = analysis::run_experiment(cfg, wl::make_metbenchvar(wl_cfg));
    std::printf("%-8d %-10.2f %-+12.2f %-14lld %-10lld\n", g, r.exec_time.sec(),
                analysis::improvement_pct(base, r),
                static_cast<long long>(r.hw_prio_changes),
                static_cast<long long>(r.hpc_history_resets));
  }

  std::printf(
      "\nsmall G = aggressive (fast adaptation, more over-reaction under noise);\n"
      "large G = conservative (Uniform-like: stable but slower after behaviour\n"
      "changes). The paper's aggressive setting is G=10 (L=0.90).\n");
  return 0;
}
