#pragma once
// Chrome trace-event (Perfetto legacy JSON) exporter. A ChromeTraceSink is a
// kern::TraceSink that turns scheduler activity into trace events:
//
//   - per-CPU "X" slices, one per occupancy of a CPU by a task (from
//     on_switch), so the CPU rows read like the kernel's sched view;
//   - per-task "C" counter events for hardware-priority changes, rendering
//     the paper's priority staircase as a counter track;
//   - per-task "i" instants for completed HPC iterations.
//
// write_chrome_trace() lays several runs (e.g. the four modes of a figure
// driver) into one file, each run as its own "process", and the result opens
// directly in chrome://tracing or ui.perfetto.dev (docs/observability.md).

#include <string>
#include <vector>

#include "common/types.h"
#include "kernel/trace_hooks.h"

namespace hpcs::obs {

class ChromeTraceSink final : public kern::TraceSink {
 public:
  struct Slice {
    CpuId cpu = 0;
    Pid pid = kInvalidPid;
    std::string name;
    SimTime begin = SimTime::zero();
    SimTime end = SimTime::zero();
  };
  struct PrioSample {
    Pid pid = kInvalidPid;
    std::string task;
    SimTime when = SimTime::zero();
    int prio = 0;
  };
  struct IterationMark {
    Pid pid = kInvalidPid;
    std::string task;
    SimTime when = SimTime::zero();
    int iteration = 0;
    double util_last = 0.0;
    double util_metric = 0.0;
  };

  // TraceSink implementation.
  void on_switch(SimTime t, CpuId cpu, const kern::Task* prev,
                 const kern::Task* next) override;
  void on_hw_prio(SimTime t, const kern::Task& task, p5::HwPrio prio) override;
  void on_iteration(SimTime t, const kern::Task& task, int iteration, double util_last,
                    double util_metric) override;

  /// Close every open CPU slice at `end`. Call once when the run finishes.
  void finalize(SimTime end);

  [[nodiscard]] const std::vector<Slice>& slices() const { return slices_; }
  [[nodiscard]] const std::vector<PrioSample>& prio_samples() const { return prios_; }
  [[nodiscard]] const std::vector<IterationMark>& iterations() const { return iters_; }

 private:
  struct OpenSlice {
    bool open = false;
    Pid pid = kInvalidPid;
    std::string name;
    SimTime begin = SimTime::zero();
  };

  std::vector<Slice> slices_;
  std::vector<PrioSample> prios_;
  std::vector<IterationMark> iters_;
  std::vector<OpenSlice> open_;  ///< indexed by cpu
};

/// One run ("process") in the exported file.
struct ChromeTraceRun {
  std::string name;  ///< process label, e.g. the mode name
  const ChromeTraceSink* sink = nullptr;
};

/// Render the runs as a Chrome trace-event JSON document (deterministic:
/// fixed event order, fixed number formatting).
[[nodiscard]] std::string render_chrome_trace(const std::vector<ChromeTraceRun>& runs);

/// Render + write to `path`. Returns false on I/O error (callers warn, they
/// do not fail a run over a trace file).
bool write_chrome_trace(const std::string& path, const std::vector<ChromeTraceRun>& runs);

}  // namespace hpcs::obs
