#include "analysis/experiment.h"

#include <algorithm>

#include "common/check.h"
#include "simcore/simulator.h"
#include "trace/multi_sink.h"

namespace hpcs::analysis {

const char* sched_mode_name(SchedMode m) {
  switch (m) {
    case SchedMode::kBaselineCfs: return "Baseline";
    case SchedMode::kStatic: return "Static";
    case SchedMode::kUniform: return "Uniform";
    case SchedMode::kAdaptive: return "Adaptive";
    case SchedMode::kHybrid: return "Hybrid";
  }
  return "?";
}

bool is_dynamic_mode(SchedMode m) {
  return m == SchedMode::kUniform || m == SchedMode::kAdaptive || m == SchedMode::kHybrid;
}

double RunResult::min_util() const {
  double v = 100.0;
  for (const auto& r : ranks) v = std::min(v, r.util_pct);
  return ranks.empty() ? 0.0 : v;
}

double RunResult::max_util() const {
  double v = 0.0;
  for (const auto& r : ranks) v = std::max(v, r.util_pct);
  return v;
}

RunResult run_experiment(const ExperimentConfig& cfg,
                         std::vector<std::unique_ptr<mpi::RankProgram>> programs) {
  sim::Simulator simulator;
  kern::Kernel kernel(simulator, cfg.kernel);

  hpc::HpcSchedClass* hpc_class = nullptr;
  if (is_dynamic_mode(cfg.mode)) {
    hpc::HpcSchedConfig hc;
    hc.tunables = cfg.hpc;
    switch (cfg.mode) {
      case SchedMode::kUniform: hc.heuristic = hpc::HeuristicKind::kUniform; break;
      case SchedMode::kAdaptive: hc.heuristic = hpc::HeuristicKind::kAdaptive; break;
      default: hc.heuristic = hpc::HeuristicKind::kHybrid; break;
    }
    hc.power5_mechanism = cfg.kernel.hw_prio_enabled;
    hpc_class = &hpc::install_hpcsched(kernel, hc);
  }

  std::unique_ptr<trace::Tracer> tracer;
  if (cfg.capture_trace) tracer = std::make_unique<trace::Tracer>();

  std::unique_ptr<obs::Recorder> recorder;
  std::unique_ptr<obs::ChromeTraceCapture> chrome;
  if (cfg.obs.enabled) {
    recorder = std::make_unique<obs::Recorder>(cfg.obs, kernel.num_cpus());
    kernel.set_obs(recorder.get());
    if (cfg.obs.chrome_trace) {
      if (cfg.obs.chrome_stream) {
        chrome = std::make_unique<obs::ChromeTraceStreamSink>();
      } else {
        chrome = std::make_unique<obs::ChromeTraceSink>();
      }
    }
  }

  // Every observer shares the kernel's single TraceSink pointer through the
  // fan-out, so Paraver-style tracing and the Perfetto exporter can record
  // one run simultaneously.
  trace::MultiSink sinks;
  sinks.add(tracer.get());
  sinks.add(chrome.get());
  if (!sinks.empty()) kernel.set_trace(&sinks);

  kernel.start();

  Rng noise_rng(cfg.seed * 2654435761u + 17);
  if (cfg.enable_noise) kern::spawn_noise_daemons(kernel, cfg.noise, noise_rng);

  mpi::MpiWorldConfig wc;
  wc.policy = is_dynamic_mode(cfg.mode) ? kern::Policy::kHpcRr : kern::Policy::kNormal;
  wc.placement = cfg.placement;
  if (cfg.mode == SchedMode::kStatic) wc.static_hw_prio = cfg.static_prios;
  wc.net = cfg.net;
  wc.seed = cfg.seed;
  mpi::MpiWorld world(kernel, wc, std::move(programs));
  world.start();

  const SimTime start = simulator.now();
  mpi::run_to_completion(simulator, world, cfg.deadline);

  RunResult res;
  res.mode = cfg.mode;
  res.exec_time = world.finish_time() - start;
  res.avg_wakeup_latency_us = kernel.wakeup_latency_us().mean();
  res.context_switches = kernel.context_switches();
  res.migrations = kernel.migrations();
  res.messages = world.messages_delivered();
  if (hpc_class != nullptr) {
    res.hw_prio_changes = hpc_class->priority_changes();
    res.hpc_history_resets = hpc_class->history_resets();
  }

  for (int r = 0; r < world.size(); ++r) {
    kern::Task& t = world.task(r);
    TaskResult tr;
    tr.name = t.name();
    tr.pid = t.pid();
    tr.util_pct = 100.0 * t.cpu_utilization();
    tr.final_hw_prio = p5::to_int(t.hw_prio);
    tr.cpu_time = t.t_run;
    tr.wakeups = t.nr_wakeups;
    tr.avg_wakeup_latency_us = t.wakeup_latency_us.mean();
    if (hpc_class != nullptr) {
      if (const auto* s = hpc_class->tracker().stats(t.pid())) {
        tr.iterations = s->total_iterations;
      }
    }
    res.ranks.push_back(tr);
    res.marks.push_back(world.marks(r));
  }

  if (tracer) {
    tracer->finalize(world.finish_time());
    res.tracer = std::move(tracer);
  }
  if (chrome) {
    chrome->finalize(world.finish_time());
    res.chrome = std::move(chrome);
  }
  kernel.set_trace(nullptr);
  if (recorder) {
    // Fixed-order end-of-run counters (registered in the Recorder ctor).
    obs::MetricsRegistry& m = recorder->metrics();
    m.counter("kern.ctx_switches").set(kernel.context_switches());
    m.counter("kern.migrations").set(kernel.migrations());
    m.counter("kern.balance_pulls").set(kernel.balance_pulls());
    const sim::EventQueueStats& qs = simulator.queue_stats();
    m.counter("sim.events_executed").set(static_cast<std::int64_t>(simulator.events_executed()));
    m.counter("sim.eq_scheduled").set(qs.scheduled);
    m.counter("sim.eq_dispatched").set(qs.dispatched);
    m.counter("sim.eq_resched_inplace").set(qs.resched_inplace);
    m.counter("sim.eq_resched_pending").set(qs.resched_pending);
    m.counter("sim.eq_stale_dropped").set(qs.stale_dropped);
    m.counter("sim.eq_wheel_armed").set(qs.wheel_armed);
    m.counter("sim.eq_wheel_hits").set(qs.wheel_dispatched);
    m.counter("sim.eq_wheel_cascades").set(qs.wheel_cascades);
    m.counter("sim.eq_wheel_heap_fallbacks").set(qs.heap_armed);
    m.counter("sim.eq_wheel_batches").set(qs.wheel_batches);
    m.counter("sim.eq_wheel_max_batch").set(qs.wheel_max_batch);
    m.counter("sim.eq_wheel_level_skips").set(qs.wheel_level_skips);
    if (hpc_class != nullptr) {
      m.counter("hpc.iterations").set(hpc_class->iterations_observed());
      m.counter("hpc.prio_changes").set(hpc_class->priority_changes());
      m.counter("hpc.resets").set(hpc_class->history_resets());
      m.counter("hpc.imbalance_detections").set(hpc_class->imbalance_detections());
      m.counter("hpc.heuristic_decisions").set(hpc_class->heuristic_decisions());
    }
    res.metrics = recorder->snapshot(world.finish_time());
    kernel.set_obs(nullptr);
    res.recorder = std::move(recorder);
  }
  return res;
}

double improvement_pct(const RunResult& baseline, const RunResult& candidate) {
  HPCS_CHECK(baseline.exec_time > Duration::zero());
  return 100.0 * (1.0 - candidate.exec_time / baseline.exec_time);
}

}  // namespace hpcs::analysis
