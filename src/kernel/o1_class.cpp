#include "kernel/o1_class.h"

#include <algorithm>

#include "common/check.h"
#include "kernel/kernel.h"

namespace hpcs::kern {

HPCS_ASSERT_SCHED_CLASS(O1Class);

O1Rq& O1Class::orq(Rq& rq, int index) {
  return static_cast<O1Rq&>(*rq.class_rqs[static_cast<std::size_t>(index)]);
}

O1TaskState& O1Class::state(const Task& t) { return states_[t.pid()]; }

void O1Class::push(O1Rq::PrioArray& a, int level, Task* t, bool front) {
  auto& q = a.queues[static_cast<std::size_t>(level)];
  if (front) {
    q.push_front(t);
  } else {
    q.push_back(t);
  }
  a.bitmap |= (std::uint64_t{1} << level);
  ++a.nr;
}

bool O1Class::erase(O1Rq::PrioArray& a, int level, Task* t) {
  auto& q = a.queues[static_cast<std::size_t>(level)];
  const auto it = std::find(q.begin(), q.end(), t);
  if (it == q.end()) return false;
  q.erase(it);
  if (q.empty()) a.bitmap &= ~(std::uint64_t{1} << level);
  --a.nr;
  return true;
}

int O1Class::dynamic_level(const Task& t) const {
  const auto it = states_.find(t.pid());
  int bonus = 0;
  if (it != states_.end() && tun_.max_sleep_avg > Duration::zero()) {
    // bonus = sleep_avg / max_sleep_avg * (2*max_bonus) - max_bonus, i.e. a
    // task that sleeps a lot gets up to -max_bonus levels (better), a task
    // that never sleeps up to +max_bonus (worse).
    const double frac = std::clamp(it->second.sleep_avg / tun_.max_sleep_avg, 0.0, 1.0);
    bonus = static_cast<int>(frac * 2 * tun_.max_bonus) - tun_.max_bonus;
  }
  // SCHED_BATCH never receives an interactivity boost.
  if (t.policy() == Policy::kBatch && bonus < 0) bonus = 0;
  return std::clamp(static_level(t.nice) - bonus, 0, kO1Levels - 1);
}

Duration O1Class::timeslice(const Task& t) const {
  // Higher-priority (lower nice) tasks get longer slices, like the 2.6
  // task_timeslice(): nice -20 -> 2x base, nice 0 -> base, nice 19 -> min.
  const double scale = static_cast<double>(kO1Levels - static_level(t.nice)) / 20.0;
  const Duration slice = Duration(static_cast<std::int64_t>(
      static_cast<double>(tun_.base_slice.ns()) * scale));
  return std::max(tun_.min_slice, slice);
}

bool O1Class::interactive(const Task& t) const {
  const auto it = states_.find(t.pid());
  if (it == states_.end()) return false;
  // Roughly the kernel's TASK_INTERACTIVE test: a strongly negative bonus.
  return it->second.sleep_avg > tun_.max_sleep_avg / 2 && t.policy() != Policy::kBatch;
}

void O1Class::enqueue(Kernel& k, Rq& rq, Task& t, bool wakeup) {
  O1Rq& r = orq(rq, index());
  O1TaskState& s = state(t);
  if (wakeup) {
    // Credit the sleep into sleep_avg (capped).
    const Duration slept = k.now() - s.sleep_since;
    s.sleep_avg = std::min(tun_.max_sleep_avg, s.sleep_avg + slept);
    if (t.slice_left <= Duration::zero()) t.slice_left = timeslice(t);
  }
  if (t.slice_left <= Duration::zero()) t.slice_left = timeslice(t);
  s.in_expired = false;
  push(r.arrays[r.active], dynamic_level(t), &t, /*front=*/false);
}

void O1Class::dequeue(Kernel& k, Rq& rq, Task& t, bool sleep) {
  O1Rq& r = orq(rq, index());
  O1TaskState& s = state(t);
  // The task may sit on either array, and its dynamic level may have moved:
  // search its current level first, then scan (rare path).
  const int level = dynamic_level(t);
  bool erased = erase(r.arrays[0], level, &t) || erase(r.arrays[1], level, &t);
  if (!erased) {
    for (int a = 0; a < 2 && !erased; ++a) {
      for (int l = 0; l < kO1Levels && !erased; ++l) {
        erased = erase(r.arrays[a], l, &t);
      }
    }
  }
  if (sleep) {
    s.sleep_since = k.now();
    // Decay: running consumed sleep_avg proportionally to the time on CPU
    // since the last sleep; approximate with the elapsed slice.
    const Duration consumed = timeslice(t) - std::max(Duration::zero(), t.slice_left);
    s.sleep_avg = std::max(Duration::zero(), s.sleep_avg - consumed);
  }
}

Task* O1Class::pick_next(Kernel& k, Rq& rq) {
  (void)k;
  O1Rq& r = orq(rq, index());
  auto& active = r.arrays[r.active];
  if (active.nr == 0) {
    auto& expired = r.arrays[r.active ^ 1];
    if (expired.nr == 0) return nullptr;
    // The O(1) trick: swap the array indices, no list walking.
    r.active ^= 1;
    ++r.swaps;
  }
  auto& a = r.arrays[r.active];
  HPCS_CHECK(a.bitmap != 0);
  const int level = __builtin_ctzll(a.bitmap);
  Task* t = a.queues[static_cast<std::size_t>(level)].front();
  erase(a, level, t);
  return t;
}

void O1Class::put_prev(Kernel& k, Rq& rq, Task& t) {
  (void)k;
  O1Rq& r = orq(rq, index());
  O1TaskState& s = state(t);
  if (t.slice_left <= Duration::zero()) {
    // Slice expired: interactive tasks are re-queued on the active array
    // (they keep responding), others rotate into the expired array.
    t.slice_left = timeslice(t);
    if (interactive(t)) {
      push(r.arrays[r.active], dynamic_level(t), &t, /*front=*/false);
      s.in_expired = false;
    } else {
      push(r.arrays[r.active ^ 1], dynamic_level(t), &t, /*front=*/false);
      s.in_expired = true;
    }
  } else {
    push(r.arrays[r.active], dynamic_level(t), &t, /*front=*/true);
    s.in_expired = false;
  }
}

void O1Class::task_tick(Kernel& k, Rq& rq, Task& t) {
  t.slice_left -= k.tick_period();
  if (t.slice_left <= Duration::zero()) {
    O1Rq& r = orq(rq, index());
    // Reschedule if anyone else is runnable (either array).
    if (r.arrays[0].nr + r.arrays[1].nr > 0) {
      rq.need_resched = true;
    } else {
      t.slice_left = timeslice(t);
    }
  }
}

bool O1Class::wakeup_preempt(Kernel& k, Rq& rq, Task& curr, Task& woken) {
  (void)k;
  (void)rq;
  return dynamic_level(woken) < dynamic_level(curr);
}

void O1Class::yield(Kernel& k, Rq& rq, Task& t) {
  (void)k;
  (void)rq;
  t.slice_left = Duration::zero();  // expires into the expired array
}

Task* O1Class::steal_candidate(Kernel& k, Rq& rq) {
  (void)k;
  O1Rq& r = orq(rq, index());
  // Prefer expired tasks (cache-cold), lowest priority first.
  for (int a : {r.active ^ 1, r.active}) {
    for (int l = kO1Levels - 1; l >= 0; --l) {
      for (Task* t : r.arrays[a].queues[static_cast<std::size_t>(l)]) {
        if (t->pinned_cpu == kInvalidCpu) return t;
      }
    }
  }
  return nullptr;
}

}  // namespace hpcs::kern
