# Empty compiler generated dependencies file for ext_cluster_gang.
# This may be replaced when dependencies are built.
