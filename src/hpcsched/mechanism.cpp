#include "hpcsched/mechanism.h"

#include <algorithm>

namespace hpcs::hpc {

bool Power5Mechanism::apply(kern::Kernel& k, kern::Task& t, int prio) {
  // The kernel runs at supervisor privilege: priorities 1..6 are legal
  // (Table II); clamp defensively.
  const int clamped = std::clamp(prio, 1, 6);
  k.request_hw_prio(t, p5::hw_prio_from_int(clamped));
  ++applies_;
  return true;
}

int Power5Mechanism::read(const kern::Task& t) const { return p5::to_int(t.hw_prio); }

}  // namespace hpcs::hpc
