// hpcslint v3 driver: per-TU analysis + cross-TU link, shared by every
// entry point (single source string, unit list, file, tree). The pipeline:
//
//   prepare()  blank comments/strings, harvest ALLOW + HPCS_HOT regions
//   tokenize() identifier/number/punct token stream
//   token rules (token_rules.cpp)  — v1 pattern rules, unchanged behaviour
//   parse_tu() (parser.cpp)        — scopes, symbols, per-TU findings
//   link_program() (project.cpp)   — merge symbols across TUs, resolve
//                                    pending uses/writes, dispatch-aware
//                                    call graph, taint + purity closures,
//                                    lock-order graph
//
// The per-TU stage is embarrassingly parallel: with jobs > 1 it fans out
// over an exp::ThreadPool into caller-owned slots (one per unit), then the
// link step runs serially over the slots in unit order — the same recipe as
// exp::ParallelRunner, so output is byte-identical to the serial run.
// Findings are globally sorted by (file, line, rule, message) so output is
// reproducible regardless of TU order — the lint practices what it preaches.

#include <algorithm>
#include <fstream>
#include <sstream>

#include "exp/thread_pool.h"
#include "hpcslint.h"
#include "rules.h"
#include "tu.h"

namespace hpcslint {

void sort_findings(std::vector<Finding>& fs) {
  std::sort(fs.begin(), fs.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
}

namespace {

bool read_file(const std::filesystem::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

LintResult lint_units_full(const std::vector<SourceUnit>& units, unsigned jobs) {
  // Per-TU stage: pure function of one unit, written into its own slot.
  std::vector<TuIndex> tus(units.size());
  const auto analyze_one = [&](std::size_t i) {
    TuIndex tu = parse_tu(units[i].label, units[i].text);
    Sink sink(tu.file, tu.prep, tu.local_findings);
    run_token_rules(tu.prep, tu.toks, sink);
    tus[i] = std::move(tu);
  };
  if (jobs > 1 && units.size() > 1) {
    hpcs::exp::ThreadPool pool(jobs);
    for (std::size_t i = 0; i < units.size(); ++i) {
      pool.submit([&analyze_one, i] { analyze_one(i); });
    }
    pool.wait_idle();
  } else {
    for (std::size_t i = 0; i < units.size(); ++i) analyze_one(i);
  }

  // Link stage: serial over the slots in unit order — identical inputs in
  // identical order regardless of how the parse stage was scheduled.
  LintResult res;
  link_program(tus, res.findings, &res.protocol_graph);
  for (TuIndex& tu : tus) {
    res.findings.insert(res.findings.end(), tu.local_findings.begin(),
                        tu.local_findings.end());
  }
  sort_findings(res.findings);
  return res;
}

std::vector<Finding> lint_units(const std::vector<SourceUnit>& units, unsigned jobs) {
  return lint_units_full(units, jobs).findings;
}

std::vector<Finding> lint_source(const std::string& file_label,
                                 std::string_view source) {
  return lint_units({SourceUnit{file_label, std::string(source)}});
}

std::vector<Finding> lint_file(const std::filesystem::path& path) {
  std::string text;
  if (!read_file(path, text)) {
    return {Finding{path.string(), 0, "io-error", "cannot read file"}};
  }
  return lint_source(path.string(), text);
}

LintResult lint_tree_full(const std::vector<std::filesystem::path>& roots,
                          unsigned jobs) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (!fs::exists(root, ec)) continue;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
      continue;
    }
    for (auto it = fs::recursive_directory_iterator(root, ec);
         !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (it->is_directory(ec)) {
        const std::string name = it->path().filename().string();
        if (name == "fixtures" || name == "hpcslint_fixtures") {
          it.disable_recursion_pending();
        }
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp") {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<SourceUnit> units;
  std::vector<Finding> io_errors;
  units.reserve(files.size());
  for (const auto& path : files) {
    std::string text;
    if (!read_file(path, text)) {
      io_errors.push_back(Finding{path.string(), 0, "io-error", "cannot read file"});
      continue;
    }
    units.push_back(SourceUnit{path.string(), std::move(text)});
  }

  LintResult res = lint_units_full(units, jobs);
  res.findings.insert(res.findings.end(), io_errors.begin(), io_errors.end());
  sort_findings(res.findings);
  return res;
}

std::vector<Finding> lint_tree(const std::vector<std::filesystem::path>& roots,
                               unsigned jobs) {
  return lint_tree_full(roots, jobs).findings;
}

std::string format_finding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " + f.message;
}

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "wallclock",        "rand",       "unordered-iter",
      "pointer-key",      "hot-alloc",  "missing-override",
      "tracepoint-name",  "det-taint",  "lock-order",
      "lock-guard",       "dist-purity", "shared-race",
      "proto-exhaustive", "proto-drift",
  };
  return kNames;
}

}  // namespace hpcslint
