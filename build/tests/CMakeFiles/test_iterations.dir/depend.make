# Empty dependencies file for test_iterations.
# This may be replaced when dependencies are built.
