# Empty compiler generated dependencies file for test_kernel_basic.
# This may be replaced when dependencies are built.
