#pragma once
// The Load Imbalance Detector (paper §IV-B): the component that decides
// WHETHER the heuristic should act. It keeps the latest metric utilization
// of every SCHED_HPC task and
//   (1) declares the application balanced when every task is a high
//       utilization task — in a stable state the scheduler stops changing
//       priorities instead of oscillating between two solutions;
//   (2) detects behaviour changes: when a task's last-iteration
//       classification disagrees with its global classification for
//       `reset_after` consecutive iterations, the task's utilization history
//       is restarted so the heuristic re-converges quickly.

#include <map>

#include "common/types.h"
#include "hpcsched/heuristics.h"
#include "hpcsched/iteration_tracker.h"

namespace hpcs::hpc {

class ImbalanceDetector {
 public:
  /// Record the metric utilization of a task's just-completed iteration.
  void record(Pid pid, double metric_util);

  /// A task left the HPC class or exited.
  void forget(Pid pid);

  /// True when every tracked task is in the high-utilization band: the
  /// application is balanced and priorities should be left alone.
  [[nodiscard]] bool balanced(const HpcTunables& tun) const;

  /// Imbalance measure: spread between the highest and lowest tracked
  /// utilization (percentage points). 0 when fewer than two tasks.
  [[nodiscard]] double spread() const;

  /// Behaviour-change test for one task; updates the mismatch streak inside
  /// `s` and returns true when the history should be reset.
  [[nodiscard]] bool behaviour_changed(TaskIterStats& s, const HpcTunables& tun) const;

  [[nodiscard]] const std::map<Pid, double>& utilizations() const { return util_; }

  // Diagnostics.
  [[nodiscard]] std::int64_t balanced_checks() const { return balanced_checks_; }

 private:
  std::map<Pid, double> util_;
  mutable std::int64_t balanced_checks_ = 0;
};

}  // namespace hpcs::hpc
