// SARIF 2.1.0 emission and baseline handling.
//
// The baseline workflow: `hpcslint --sarif FILE` renders every finding with
// a stable partialFingerprint ("hpcslint/v2"); the checked-in
// tools/hpcslint/baseline.sarif.json is simply a previous run's output. CI
// re-lints, loads the baseline's fingerprint set, and fails only on
// findings whose fingerprint is new — so pre-existing accepted findings
// never block a PR, and new nondeterminism cannot slip in.
//
// Fingerprints hash file|rule|message (FNV-1a) plus an occurrence index for
// identical tuples — deliberately NOT the line number, so inserting a
// comment above a baselined finding does not invalidate the baseline, while
// a genuinely new second occurrence of the same finding still gates. Since
// v2 of the fingerprint scheme the file path — and every path embedded in
// the message (taint origins render "what at file:line") — is relativized
// against the configured repository root before hashing, so a baseline
// recorded in /home/dev/repo matches a CI run in /__w/repo/repo.

#include <cstdint>
#include <cstdio>
#include <map>

#include "hpcslint.h"
#include "json_mini.h"

namespace hpcslint {
namespace {

/// Repository root paths are relativized against; "" = leave paths alone.
/// Normalized to generic form with a trailing slash for prefix matching.
std::string g_path_root;  // NOLINT: set once in main before any linting

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Strip every occurrence of the root prefix — covers the file field and
/// paths embedded mid-message ("... at /repo/src/x.cpp:12").
std::string strip_root(const std::string& s) {
  if (g_path_root.empty()) return s;
  std::string out;
  out.reserve(s.size());
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t hit = s.find(g_path_root, pos);
    if (hit == std::string::npos) {
      out.append(s, pos, std::string::npos);
      break;
    }
    out.append(s, pos, hit - pos);
    pos = hit + g_path_root.size();  // drop the prefix, keep the relative tail
  }
  return out;
}

std::string portable_key(const Finding& f) {
  return strip_root(f.file) + "|" + f.rule + "|" + strip_root(f.message);
}

std::string fingerprint_of(const Finding& f, int occurrence) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a(portable_key(f))));
  return std::string(buf) + "-" + std::to_string(occurrence);
}

}  // namespace

void set_sarif_path_root(const std::filesystem::path& root) {
  if (root.empty()) {
    g_path_root.clear();
    return;
  }
  g_path_root = root.generic_string();
  if (g_path_root.back() != '/') g_path_root += '/';
}

std::string sarif_relative_path(const std::string& file) { return strip_root(file); }

std::vector<std::string> fingerprints(const std::vector<Finding>& fs) {
  std::vector<std::string> out;
  out.reserve(fs.size());
  std::map<std::string, int> seen;
  for (const Finding& f : fs) {
    out.push_back(fingerprint_of(f, seen[portable_key(f)]++));
  }
  return out;
}

std::string sarif_report(const std::vector<Finding>& fs) {
  const std::vector<std::string> fps = fingerprints(fs);
  std::string out;
  out += "{\n";
  out += "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n";
  out += "    {\n";
  out += "      \"tool\": {\n";
  out += "        \"driver\": {\n";
  out += "          \"name\": \"hpcslint\",\n";
  out += "          \"version\": \"4.0.0\",\n";
  out += "          \"informationUri\": \"docs/static_analysis.md\",\n";
  out += "          \"rules\": [\n";
  const std::vector<std::string>& names = rule_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    out += "            {\"id\": \"" + json::escape(names[i]) + "\"}";
    out += i + 1 < names.size() ? ",\n" : "\n";
  }
  out += "          ]\n";
  out += "        }\n";
  out += "      },\n";
  out += "      \"results\": [\n";
  for (std::size_t i = 0; i < fs.size(); ++i) {
    const Finding& f = fs[i];
    out += "        {\n";
    out += "          \"ruleId\": \"" + json::escape(f.rule) + "\",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": {\"text\": \"" + json::escape(strip_root(f.message)) +
           "\"},\n";
    out += "          \"locations\": [\n";
    out += "            {\n";
    out += "              \"physicalLocation\": {\n";
    out += "                \"artifactLocation\": {\"uri\": \"" +
           json::escape(strip_root(f.file)) + "\"},\n";
    out += "                \"region\": {\"startLine\": " + std::to_string(f.line) +
           "}\n";
    out += "              }\n";
    out += "            }\n";
    out += "          ],\n";
    out += "          \"partialFingerprints\": {\"hpcslint/v2\": \"" +
           json::escape(fps[i]) + "\"}\n";
    out += "        }";
    out += i + 1 < fs.size() ? ",\n" : "\n";
  }
  out += "      ]\n";
  out += "    }\n";
  out += "  ]\n";
  out += "}\n";
  return out;
}

bool load_baseline(std::string_view sarif_text, std::set<std::string>& out,
                   std::string& error) {
  json::Value doc;
  if (!json::parse(sarif_text, doc, error)) return false;
  const json::Value* runs = doc.get("runs");
  if (runs == nullptr || !runs->is_array()) {
    error = "not a SARIF document: missing \"runs\" array";
    return false;
  }
  for (const json::Value& run : runs->arr) {
    const json::Value* results = run.get("results");
    if (results == nullptr || !results->is_array()) continue;
    for (const json::Value& result : results->arr) {
      const json::Value* pf = result.get("partialFingerprints");
      if (pf == nullptr) continue;
      // v2 is current; v1 (absolute-path era) baselines still load so an old
      // checked-in file degrades to "everything is new" only if paths moved.
      const json::Value* fp = pf->get("hpcslint/v2");
      if (fp == nullptr) fp = pf->get("hpcslint/v1");
      if (fp != nullptr && fp->is_string()) out.insert(fp->str);
    }
  }
  return true;
}

std::vector<Finding> filter_baselined(const std::vector<Finding>& fs,
                                      const std::set<std::string>& baseline) {
  const std::vector<std::string> fps = fingerprints(fs);
  std::vector<Finding> out;
  for (std::size_t i = 0; i < fs.size(); ++i) {
    if (baseline.count(fps[i]) == 0) out.push_back(fs[i]);
  }
  return out;
}

}  // namespace hpcslint
