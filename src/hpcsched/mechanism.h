#pragma once
// The Mechanism component (paper §IV-C): the only architecture-dependent part
// of HPCSched. It knows how to apply a hardware priority to a task on the
// underlying machine. On non-POWER architectures the Null mechanism keeps the
// scheduler functional (the policy benefit remains) without any balancing
// effect.

#include "kernel/kernel.h"

namespace hpcs::hpc {

class Mechanism {
 public:
  virtual ~Mechanism() = default;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Apply hardware priority `prio` (the Table II integer encoding) to the
  /// task. Returns false when the architecture does not support it.
  virtual bool apply(kern::Kernel& k, kern::Task& t, int prio) = 0;

  /// Read the task's current hardware priority, or -1 if unsupported.
  [[nodiscard]] virtual int read(const kern::Task& t) const = 0;

  [[nodiscard]] std::int64_t applies() const { return applies_; }

 protected:
  std::int64_t applies_ = 0;
};

/// POWER5: priorities are set by the privileged or-nop interface; the kernel
/// (supervisor) may use 1..6 (Table II), and HPCSched further restricts
/// itself to [MIN_PRIO, MAX_PRIO].
class Power5Mechanism final : public Mechanism {
 public:
  [[nodiscard]] const char* name() const override { return "power5"; }
  bool apply(kern::Kernel& k, kern::Task& t, int prio) override;
  [[nodiscard]] int read(const kern::Task& t) const override;
};

/// Architecture without software-controlled SMT prioritization.
class NullMechanism final : public Mechanism {
 public:
  [[nodiscard]] const char* name() const override { return "null"; }
  bool apply(kern::Kernel&, kern::Task&, int) override { return false; }
  [[nodiscard]] int read(const kern::Task&) const override { return -1; }
};

}  // namespace hpcs::hpc
