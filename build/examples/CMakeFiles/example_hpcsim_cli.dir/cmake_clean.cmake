file(REMOVE_RECURSE
  "CMakeFiles/example_hpcsim_cli.dir/hpcsim_cli.cpp.o"
  "CMakeFiles/example_hpcsim_cli.dir/hpcsim_cli.cpp.o.d"
  "example_hpcsim_cli"
  "example_hpcsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hpcsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
