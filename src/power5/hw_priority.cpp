#include "power5/hw_priority.h"

#include "common/check.h"

namespace hpcs::p5 {

HwPrio hw_prio_from_int(int v) {
  HPCS_CHECK_MSG(v >= 0 && v <= 7, "hardware priority out of range");
  return static_cast<HwPrio>(v);
}

std::string_view hw_prio_name(HwPrio p) {
  switch (p) {
    case HwPrio::kOff: return "Thread off";
    case HwPrio::kVeryLow: return "Very low";
    case HwPrio::kLow: return "Low";
    case HwPrio::kMediumLow: return "Medium-Low";
    case HwPrio::kMedium: return "Medium";
    case HwPrio::kMediumHigh: return "Medium-high";
    case HwPrio::kHigh: return "High";
    case HwPrio::kVeryHigh: return "Very high";
  }
  return "?";
}

DecodeAllocation decode_allocation(HwPrio a, HwPrio b) {
  const int pa = to_int(a);
  const int pb = to_int(b);
  DecodeAllocation alloc;
  // Table I only covers "regular" priorities; 0, 1 and 7 bypass the window
  // arbitration entirely (paper §II-B).
  if (pa <= 1 || pb <= 1 || pa == 7 || pb == 7) {
    alloc.special = true;
    return alloc;
  }
  const int diff = pa - pb;
  alloc.window = decode_window(diff);
  if (diff == 0) {
    alloc.cycles_a = 1;
    alloc.cycles_b = 1;
  } else if (diff > 0) {
    alloc.cycles_a = alloc.window - 1;
    alloc.cycles_b = 1;
  } else {
    alloc.cycles_a = 1;
    alloc.cycles_b = alloc.window - 1;
  }
  return alloc;
}

std::optional<int> or_nop_register(HwPrio p) {
  switch (p) {
    case HwPrio::kOff: return std::nullopt;  // set via hypervisor call, not or-nop
    case HwPrio::kVeryLow: return 31;
    case HwPrio::kLow: return 1;
    case HwPrio::kMediumLow: return 6;
    case HwPrio::kMedium: return 2;
    case HwPrio::kMediumHigh: return 5;
    case HwPrio::kHigh: return 3;
    case HwPrio::kVeryHigh: return 7;
  }
  return std::nullopt;
}

std::optional<HwPrio> prio_for_or_nop(int reg) {
  switch (reg) {
    case 31: return HwPrio::kVeryLow;
    case 1: return HwPrio::kLow;
    case 6: return HwPrio::kMediumLow;
    case 2: return HwPrio::kMedium;
    case 5: return HwPrio::kMediumHigh;
    case 3: return HwPrio::kHigh;
    case 7: return HwPrio::kVeryHigh;
    default: return std::nullopt;
  }
}

Privilege required_privilege(HwPrio p) {
  switch (p) {
    case HwPrio::kOff:
    case HwPrio::kVeryHigh:
      return Privilege::kHypervisor;
    case HwPrio::kVeryLow:
    case HwPrio::kMediumHigh:
    case HwPrio::kHigh:
      return Privilege::kSupervisor;
    case HwPrio::kLow:
    case HwPrio::kMediumLow:
    case HwPrio::kMedium:
      return Privilege::kUser;
  }
  return Privilege::kHypervisor;
}

bool can_set(Privilege level, HwPrio p) {
  return static_cast<int>(level) >= static_cast<int>(required_privilege(p));
}

}  // namespace hpcs::p5
