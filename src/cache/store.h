#pragma once
// Content-addressed result store: RunResult blobs keyed by a 64-bit content
// hash (analysis::result_cache_key), laid out under a two-level fanout
// directory —
//
//     <dir>/ab/cd/abcd0123456789ef.rcb
//
// Writes go through a same-directory temp file + rename(), so readers (a
// second driver, a concurrently running sweep service) only ever observe
// complete blobs; a crash mid-write leaves a `.tmp.*` file every scan
// ignores. Reads verify the blob envelope (blob.h) and treat any damage as a
// miss — the store may lose time, never correctness. Recency is the blob
// file's mtime (touched on every hit), and put() enforces a byte budget by
// evicting oldest-first; eviction order is planned by the pure
// plan_eviction() so the policy is unit-testable without a filesystem.
//
// All file IO sits in HPCS_HOST regions: the deterministic machines (the
// coordinator, the sweep service) never call this class — hosts probe the
// cache between machine steps and feed hits back in as seeded rows.

#include <cstdint>
#include <string>
#include <vector>

namespace hpcs::cache {

struct CacheConfig {
  std::string dir;                            ///< empty = cache disabled
  std::uint64_t budget_bytes = 256ull << 20;  ///< eviction threshold
};

/// Host-side accounting for sidecars and smoke assertions — observational
/// only, never part of deterministic output.
struct CacheStats {
  std::int64_t hits = 0;       ///< get() served verified bytes
  std::int64_t misses = 0;     ///< get() found nothing usable (corrupt included)
  std::int64_t stores = 0;     ///< put() wrote a blob
  std::int64_t evictions = 0;  ///< blobs removed to respect the budget
  std::int64_t corrupt = 0;    ///< blobs that failed verification (also misses)
};

/// One on-disk blob as seen by a directory scan, for eviction planning.
struct BlobInfo {
  std::string path;
  std::uint64_t bytes = 0;
  std::int64_t mtime_ns = 0;  ///< nanosecond mtime; recency for LRU
};

class ResultCache {
 public:
  explicit ResultCache(CacheConfig cfg);

  [[nodiscard]] bool enabled() const { return !cfg_.dir.empty(); }

  /// Verified payload for `key`, or false (miss). A corrupt/truncated/
  /// version-mismatched blob is deleted, counted, and reported as a miss.
  [[nodiscard]] bool get(std::uint64_t key, std::string& payload);

  /// Atomically store `payload` under `key`, then evict down to the budget.
  void put(std::uint64_t key, const std::string& payload);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }

  /// Pure path math: fanout location of `key` under the cache dir (tests and
  /// the smoke script corrupt blobs in place through this).
  [[nodiscard]] std::string blob_path(std::uint64_t key) const;

  /// Oldest-first eviction plan: the paths to delete so the surviving bytes
  /// fit `budget`. Ties on mtime break by path, so the plan is deterministic
  /// for any scan order. Pure — exposed for unit tests.
  [[nodiscard]] static std::vector<std::string> plan_eviction(std::vector<BlobInfo> entries,
                                                              std::uint64_t budget);

 private:
  [[nodiscard]] std::vector<BlobInfo> scan_blobs() const;
  void evict_to_budget();

  CacheConfig cfg_;
  CacheStats stats_;
  std::uint64_t put_seq_ = 0;  ///< temp-file uniquifier within this process
};

/// 16-digit lowercase hex spelling of a cache key (file names, sidecars).
[[nodiscard]] std::string key_hex(std::uint64_t key);

}  // namespace hpcs::cache
