# Empty dependencies file for ablation_o1_vs_cfs.
# This may be replaced when dependencies are built.
