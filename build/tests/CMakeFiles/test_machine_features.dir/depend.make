# Empty dependencies file for test_machine_features.
# This may be replaced when dependencies are built.
