#pragma once
// Cancellable discrete-event queue.
//
// Events are (time, sequence, callback) triples ordered by time then by
// insertion sequence, which makes simultaneous events fire in a deterministic
// FIFO order. Cancellation is O(1): each event carries a generation counter
// and an EventHandle remembers the id/generation it was issued for; stale
// heap entries are skipped lazily at pop time.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace hpcs::sim {

using EventCallback = std::function<void()>;

/// Opaque reference to a scheduled event; safe to keep after the event fired
/// or was cancelled (operations on a stale handle are no-ops).
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const { return id_ != kNoId; }

 private:
  friend class EventQueue;
  static constexpr std::uint64_t kNoId = ~std::uint64_t{0};
  EventHandle(std::uint64_t id, std::uint64_t gen) : id_(id), gen_(gen) {}
  std::uint64_t id_ = kNoId;
  std::uint64_t gen_ = 0;
};

class EventQueue {
 public:
  /// Schedule `cb` to fire at absolute time `when` (must not be in the past
  /// relative to the last popped event).
  EventHandle schedule(SimTime when, EventCallback cb);

  /// Cancel a previously scheduled event. Returns true if the event was
  /// still pending; false if it already fired, was cancelled, or the handle
  /// is stale.
  bool cancel(EventHandle h);

  /// True if an event scheduled through `h` is still pending.
  [[nodiscard]] bool pending(EventHandle h) const;

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest pending event. Requires !empty().
  [[nodiscard]] SimTime next_time();

  /// Pop and run the earliest pending event; returns its time.
  SimTime pop_and_run();

  /// Drop all pending events.
  void clear();

 private:
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;
    std::uint64_t id;
    bool operator>(const HeapEntry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };
  struct Slot {
    EventCallback cb;
    std::uint64_t gen = 0;
    bool live = false;
  };

  void drop_stale();

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint64_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace hpcs::sim
