#pragma once
// Job registry: how a worker turns the coordinator's (job name, params blob)
// into actual work. Both sides of the fabric hold the same registration (for
// the paper tables it is analysis::register_paper_table_jobs), so the
// coordinator's local fallback and a remote worker compute byte-identical
// rows for the same index — the purity guarantee the failover logic leans on.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace hpcs::dist {

/// One sweep point: pure function of the index, returning the serialized
/// row. The same callable backs the coordinator's local fallback and the
/// workers' remote execution.
using TaskFn = std::function<std::string(std::uint32_t)>;

/// A job instantiated from its params blob: the point count it expects and
/// the per-index task.
struct ResolvedJob {
  std::size_t count = 0;
  TaskFn fn;
};

class JobRegistry {
 public:
  /// Factory: params blob -> resolved job. Returns count == 0 to signal the
  /// blob is malformed for this job.
  using Factory = std::function<ResolvedJob(const std::string& params)>;

  void add(std::string name, Factory make) { jobs_[std::move(name)] = std::move(make); }

  /// False if the name is unknown or the factory rejects the params.
  [[nodiscard]] bool resolve(const std::string& name, const std::string& params,
                             ResolvedJob& out) const {
    const auto it = jobs_.find(name);
    if (it == jobs_.end()) return false;
    out = it->second(params);
    return out.count != 0 && out.fn != nullptr;
  }

  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(jobs_.size());
    for (const auto& [k, v] : jobs_) out.push_back(k);
    return out;
  }

 private:
  std::map<std::string, Factory> jobs_;
};

}  // namespace hpcs::dist
