// CFS class behaviour: fairness between competing hogs, nice weighting,
// vruntime mechanics, wakeup preemption, slice computation, min_vruntime
// monotonicity.

#include <gtest/gtest.h>

#include "test_util.h"

namespace hpcs::test {
namespace {

using kern::CfsClass;
using kern::Policy;

TEST(CfsWeights, CanonicalTable) {
  EXPECT_EQ(CfsClass::nice_to_weight(0), 1024);
  EXPECT_EQ(CfsClass::nice_to_weight(-20), 88761);
  EXPECT_EQ(CfsClass::nice_to_weight(19), 15);
  // Each nice step is ~1.25x.
  for (int n = -20; n < 19; ++n) {
    const double ratio = static_cast<double>(CfsClass::nice_to_weight(n)) /
                         static_cast<double>(CfsClass::nice_to_weight(n + 1));
    EXPECT_NEAR(ratio, 1.25, 0.07) << "nice " << n;
  }
}

TEST(CfsWeights, CalcDeltaFair) {
  const Duration d = Duration::milliseconds(10);
  EXPECT_EQ(CfsClass::calc_delta_fair(d, 0), d);                    // weight 1024
  EXPECT_LT(CfsClass::calc_delta_fair(d, -5).ns(), d.ns());         // heavier: slower vruntime
  EXPECT_GT(CfsClass::calc_delta_fair(d, 5).ns(), d.ns());          // lighter: faster vruntime
}

TEST(CfsClassTest, SliceShrinksWithLoad) {
  CfsClass cfs;
  EXPECT_EQ(cfs.slice_for(1), Duration::milliseconds(20));
  EXPECT_EQ(cfs.slice_for(2), Duration::milliseconds(10));
  EXPECT_EQ(cfs.slice_for(5), Duration::milliseconds(4));
  // Floor at min_granularity.
  EXPECT_EQ(cfs.slice_for(50), Duration::milliseconds(4));
}

TEST(CfsFairness, TwoHogsShareOneCpuEvenly) {
  KernelFixture f;
  f.k().start();
  auto& a = f.k().create_task("a", std::make_unique<HogBody>(), Policy::kNormal, 0);
  auto& b = f.k().create_task("b", std::make_unique<HogBody>(), Policy::kNormal, 0);
  f.k().sched_setaffinity(a, 0);
  f.k().sched_setaffinity(b, 0);
  f.k().start_task(a);
  f.k().start_task(b);
  f.run_until(Duration::seconds(1.0));
  f.k().flush_account(a);
  f.k().flush_account(b);
  const double share_a = a.t_run / (a.t_run + b.t_run);
  EXPECT_NEAR(share_a, 0.5, 0.03);
  EXPECT_GT(a.nr_switches, 10);
}

TEST(CfsFairness, ThreeHogsShareOneCpuEvenly) {
  KernelFixture f;
  f.k().start();
  std::vector<kern::Task*> tasks;
  for (int i = 0; i < 3; ++i) {
    auto& t = f.k().create_task("hog" + std::to_string(i), std::make_unique<HogBody>(),
                                Policy::kNormal, 0);
    f.k().sched_setaffinity(t, 0);
    f.k().start_task(t);
    tasks.push_back(&t);
  }
  f.run_until(Duration::seconds(1.5));
  Duration total = Duration::zero();
  for (auto* t : tasks) {
    f.k().flush_account(*t);
    total += t->t_run;
  }
  for (auto* t : tasks) {
    EXPECT_NEAR(t->t_run / total, 1.0 / 3.0, 0.04) << t->name();
  }
}

TEST(CfsFairness, NiceWeightsBiasCpuShare) {
  KernelFixture f;
  f.k().start();
  auto& heavy = f.k().create_task("heavy", std::make_unique<HogBody>(), Policy::kNormal, 0);
  auto& light = f.k().create_task("light", std::make_unique<HogBody>(), Policy::kNormal, 0);
  f.k().sched_setaffinity(heavy, 0);
  f.k().sched_setaffinity(light, 0);
  f.k().set_nice(heavy, -5);
  f.k().set_nice(light, 5);
  f.k().start_task(heavy);
  f.k().start_task(light);
  f.run_until(Duration::seconds(2.0));
  f.k().flush_account(heavy);
  f.k().flush_account(light);
  // weight(-5)/weight(5) = 3121/335 ~ 9.3.
  const double ratio = heavy.t_run / light.t_run;
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 15.0);
}

TEST(CfsLatency, SleeperGetsCpuQuicklyUnderLoad) {
  KernelFixture f;
  f.k().start();
  auto& hog = f.k().create_task("hog", std::make_unique<HogBody>(), Policy::kNormal, 0);
  auto& sleeper = f.k().create_task(
      "sleeper", std::make_unique<PeriodicBody>(0.2e6, Duration::milliseconds(20)),
      Policy::kNormal, 0);
  f.k().sched_setaffinity(hog, 0);
  f.k().sched_setaffinity(sleeper, 0);
  f.k().start_task(hog);
  f.k().start_task(sleeper);
  f.run_until(Duration::seconds(1.0));
  EXPECT_GT(sleeper.wakeup_latency_us.count(), 10);
  // Sleeper credit + tick preemption bound the latency to a few ms.
  EXPECT_LT(sleeper.wakeup_latency_us.mean(), 6000.0);
  EXPECT_FALSE(sleeper.exited());
  f.k().flush_account(sleeper);
  EXPECT_GT(sleeper.t_run, Duration::milliseconds(5));
}

TEST(CfsLatency, NoStarvationWithManyTasks) {
  KernelFixture f;
  f.k().start();
  std::vector<kern::Task*> tasks;
  for (int i = 0; i < 8; ++i) {
    auto& t = f.k().create_task("t" + std::to_string(i), std::make_unique<HogBody>(),
                                Policy::kNormal, 0);
    f.k().sched_setaffinity(t, 0);
    f.k().start_task(t);
    tasks.push_back(&t);
  }
  f.run_until(Duration::seconds(2.0));
  for (auto* t : tasks) {
    f.k().flush_account(*t);
    EXPECT_GT(t->t_run, Duration::milliseconds(100)) << t->name() << " starved";
  }
}

TEST(CfsBatch, BatchYieldsToNormal) {
  KernelFixture f;
  f.k().start();
  auto& batch = f.k().create_task("batch", std::make_unique<HogBody>(), Policy::kBatch, 0);
  auto& normal = f.k().create_task(
      "normal", std::make_unique<PeriodicBody>(0.2e6, Duration::milliseconds(5)),
      Policy::kNormal, 0);
  f.k().sched_setaffinity(batch, 0);
  f.k().sched_setaffinity(normal, 0);
  f.k().start_task(batch);
  f.k().start_task(normal);
  f.run_until(Duration::seconds(1.0));
  // The interactive task wakes ~200x and always preempts batch promptly.
  EXPECT_GT(normal.nr_wakeups, 100);
  EXPECT_LT(normal.wakeup_latency_us.mean(), 2000.0);
}

}  // namespace
}  // namespace hpcs::test
