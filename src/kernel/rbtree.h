#pragma once
// From-scratch red-black tree, the data structure behind the CFS run queue
// (paper §III). Classic CLRS algorithms with a shared nil sentinel per tree.
//
// Keys must be unique under Compare (CFS guarantees this by keying on
// (vruntime, pid)). The tree tracks its leftmost node so that "pick next
// task" is O(1), mirroring the kernel's cached leftmost pointer.

#include <cstddef>
#include <functional>
#include <utility>

#include "common/check.h"

namespace hpcs::kern {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class RbTree {
 public:
  RbTree() {
    nil_ = new Node();
    nil_->color = Color::kBlack;
    nil_->left = nil_->right = nil_->parent = nil_;
    root_ = nil_;
    leftmost_ = nil_;
  }

  ~RbTree() {
    clear();
    delete nil_;
  }

  RbTree(const RbTree&) = delete;
  RbTree& operator=(const RbTree&) = delete;

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Insert a unique key. Returns false (and leaves the tree unchanged) if
  /// the key already exists.
  bool insert(const Key& key, Value value) {
    Node* parent = nil_;
    Node* cur = root_;
    bool is_leftmost_path = true;
    while (cur != nil_) {
      parent = cur;
      if (cmp_(key, cur->key)) {
        cur = cur->left;
      } else if (cmp_(cur->key, key)) {
        is_leftmost_path = false;
        cur = cur->right;
      } else {
        return false;  // duplicate
      }
    }
    Node* n = new Node();
    n->key = key;
    n->value = std::move(value);
    n->color = Color::kRed;
    n->left = n->right = nil_;
    n->parent = parent;
    if (parent == nil_) {
      root_ = n;
    } else if (cmp_(key, parent->key)) {
      parent->left = n;
    } else {
      parent->right = n;
    }
    if (is_leftmost_path) leftmost_ = n;
    insert_fixup(n);
    ++size_;
    return true;
  }

  /// Remove a key. Returns false if absent.
  bool erase(const Key& key) {
    Node* n = find_node(key);
    if (n == nil_) return false;
    if (n == leftmost_) leftmost_ = successor(n);
    erase_node(n);
    --size_;
    return true;
  }

  /// Pointer to the value stored under the minimum key, or nullptr if empty.
  [[nodiscard]] Value* leftmost() {
    return leftmost_ == nil_ ? nullptr : &leftmost_->value;
  }

  [[nodiscard]] const Key* leftmost_key() const {
    return leftmost_ == nil_ ? nullptr : &leftmost_->key;
  }

  [[nodiscard]] Value* find(const Key& key) {
    Node* n = find_node(key);
    return n == nil_ ? nullptr : &n->value;
  }

  [[nodiscard]] bool contains(const Key& key) const {
    return const_cast<RbTree*>(this)->find_node(key) != nil_;
  }

  /// In-order traversal (ascending key order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for_each_node(root_, fn);
  }

  void clear() {
    destroy(root_);
    root_ = nil_;
    leftmost_ = nil_;
    size_ = 0;
  }

  /// Verify every red-black invariant; aborts on violation. Returns the
  /// black-height. Used by property tests and (cheaply) by debug assertions.
  int validate() const {
    HPCS_CHECK_MSG(root_->color == Color::kBlack, "root must be black");
    // leftmost cache must match the true minimum
    if (size_ == 0) {
      HPCS_CHECK(leftmost_ == nil_);
    } else {
      Node* m = root_;
      while (m->left != nil_) m = m->left;
      HPCS_CHECK_MSG(m == leftmost_, "leftmost cache out of date");
    }
    std::size_t count = 0;
    const int bh = validate_node(root_, count);
    HPCS_CHECK_MSG(count == size_, "size mismatch");
    return bh;
  }

 private:
  enum class Color : unsigned char { kRed, kBlack };

  struct Node {
    Key key{};
    Value value{};
    Color color = Color::kRed;
    Node* left = nullptr;
    Node* right = nullptr;
    Node* parent = nullptr;
  };

  Node* find_node(const Key& key) {
    Node* cur = root_;
    while (cur != nil_) {
      if (cmp_(key, cur->key)) {
        cur = cur->left;
      } else if (cmp_(cur->key, key)) {
        cur = cur->right;
      } else {
        return cur;
      }
    }
    return nil_;
  }

  Node* successor(Node* n) const {
    if (n->right != nil_) {
      Node* c = n->right;
      while (c->left != nil_) c = c->left;
      return c;
    }
    Node* p = n->parent;
    while (p != nil_ && n == p->right) {
      n = p;
      p = p->parent;
    }
    return p;
  }

  void rotate_left(Node* x) {
    Node* y = x->right;
    x->right = y->left;
    if (y->left != nil_) y->left->parent = x;
    y->parent = x->parent;
    if (x->parent == nil_) {
      root_ = y;
    } else if (x == x->parent->left) {
      x->parent->left = y;
    } else {
      x->parent->right = y;
    }
    y->left = x;
    x->parent = y;
  }

  void rotate_right(Node* x) {
    Node* y = x->left;
    x->left = y->right;
    if (y->right != nil_) y->right->parent = x;
    y->parent = x->parent;
    if (x->parent == nil_) {
      root_ = y;
    } else if (x == x->parent->right) {
      x->parent->right = y;
    } else {
      x->parent->left = y;
    }
    y->right = x;
    x->parent = y;
  }

  void insert_fixup(Node* z) {
    while (z->parent->color == Color::kRed) {
      Node* gp = z->parent->parent;
      if (z->parent == gp->left) {
        Node* uncle = gp->right;
        if (uncle->color == Color::kRed) {
          z->parent->color = Color::kBlack;
          uncle->color = Color::kBlack;
          gp->color = Color::kRed;
          z = gp;
        } else {
          if (z == z->parent->right) {
            z = z->parent;
            rotate_left(z);
          }
          z->parent->color = Color::kBlack;
          gp->color = Color::kRed;
          rotate_right(gp);
        }
      } else {
        Node* uncle = gp->left;
        if (uncle->color == Color::kRed) {
          z->parent->color = Color::kBlack;
          uncle->color = Color::kBlack;
          gp->color = Color::kRed;
          z = gp;
        } else {
          if (z == z->parent->left) {
            z = z->parent;
            rotate_right(z);
          }
          z->parent->color = Color::kBlack;
          gp->color = Color::kRed;
          rotate_left(gp);
        }
      }
    }
    root_->color = Color::kBlack;
  }

  void transplant(Node* u, Node* v) {
    if (u->parent == nil_) {
      root_ = v;
    } else if (u == u->parent->left) {
      u->parent->left = v;
    } else {
      u->parent->right = v;
    }
    v->parent = u->parent;
  }

  void erase_node(Node* z) {
    Node* y = z;
    Color y_orig = y->color;
    Node* x;
    if (z->left == nil_) {
      x = z->right;
      transplant(z, z->right);
    } else if (z->right == nil_) {
      x = z->left;
      transplant(z, z->left);
    } else {
      y = z->right;
      while (y->left != nil_) y = y->left;
      y_orig = y->color;
      x = y->right;
      if (y->parent == z) {
        x->parent = y;  // x may be nil_; CLRS relies on this assignment
      } else {
        transplant(y, y->right);
        y->right = z->right;
        y->right->parent = y;
      }
      transplant(z, y);
      y->left = z->left;
      y->left->parent = y;
      y->color = z->color;
    }
    delete z;
    if (y_orig == Color::kBlack) erase_fixup(x);
    nil_->parent = nil_;  // undo any temporary parent stitching on the sentinel
  }

  void erase_fixup(Node* x) {
    while (x != root_ && x->color == Color::kBlack) {
      if (x == x->parent->left) {
        Node* w = x->parent->right;
        if (w->color == Color::kRed) {
          w->color = Color::kBlack;
          x->parent->color = Color::kRed;
          rotate_left(x->parent);
          w = x->parent->right;
        }
        if (w->left->color == Color::kBlack && w->right->color == Color::kBlack) {
          w->color = Color::kRed;
          x = x->parent;
        } else {
          if (w->right->color == Color::kBlack) {
            w->left->color = Color::kBlack;
            w->color = Color::kRed;
            rotate_right(w);
            w = x->parent->right;
          }
          w->color = x->parent->color;
          x->parent->color = Color::kBlack;
          w->right->color = Color::kBlack;
          rotate_left(x->parent);
          x = root_;
        }
      } else {
        Node* w = x->parent->left;
        if (w->color == Color::kRed) {
          w->color = Color::kBlack;
          x->parent->color = Color::kRed;
          rotate_right(x->parent);
          w = x->parent->left;
        }
        if (w->right->color == Color::kBlack && w->left->color == Color::kBlack) {
          w->color = Color::kRed;
          x = x->parent;
        } else {
          if (w->left->color == Color::kBlack) {
            w->right->color = Color::kBlack;
            w->color = Color::kRed;
            rotate_left(w);
            w = x->parent->left;
          }
          w->color = x->parent->color;
          x->parent->color = Color::kBlack;
          w->left->color = Color::kBlack;
          rotate_right(x->parent);
          x = root_;
        }
      }
    }
    x->color = Color::kBlack;
  }

  template <typename Fn>
  void for_each_node(Node* n, Fn& fn) const {
    if (n == nil_) return;
    for_each_node(n->left, fn);
    fn(n->key, n->value);
    for_each_node(n->right, fn);
  }

  void destroy(Node* n) {
    if (n == nil_) return;
    destroy(n->left);
    destroy(n->right);
    delete n;
  }

  int validate_node(Node* n, std::size_t& count) const {
    if (n == nil_) return 1;
    ++count;
    if (n->color == Color::kRed) {
      HPCS_CHECK_MSG(n->left->color == Color::kBlack && n->right->color == Color::kBlack,
                     "red node with red child");
    }
    if (n->left != nil_) {
      HPCS_CHECK_MSG(cmp_(n->left->key, n->key), "left child key not smaller");
      HPCS_CHECK(n->left->parent == n);
    }
    if (n->right != nil_) {
      HPCS_CHECK_MSG(cmp_(n->key, n->right->key), "right child key not larger");
      HPCS_CHECK(n->right->parent == n);
    }
    const int lh = validate_node(n->left, count);
    const int rh = validate_node(n->right, count);
    HPCS_CHECK_MSG(lh == rh, "black-height mismatch");
    return lh + (n->color == Color::kBlack ? 1 : 0);
  }

  Node* root_;
  Node* nil_;
  Node* leftmost_;
  std::size_t size_ = 0;
  Compare cmp_{};
};

}  // namespace hpcs::kern
