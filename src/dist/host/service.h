#pragma once
// Wall-clock service loops that drive the pure state machines over real
// transports. Both the bench drivers (--dist ...) and the standalone
// hpcs-distd worker binary sit on these two functions, so the protocol
// behaviour cannot drift between them.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "dist/transport.h"
#include "dist/worker.h"

namespace hpcs::dist::host {

/// Drive a Coordinator until done(): accept connections from `listener`,
/// step the fabric, sleep politely when idle. Returns the committed rows in
/// index order (the coordinator is left drained). Always terminates — the
/// coordinator degrades to local execution when workers never show up.
[[nodiscard]] std::vector<std::string> serve_coordinator(Coordinator& coord,
                                                         Listener& listener);

/// Drive a WorkerSession until BYE / failure. Returns true on a clean
/// finish, false with `err` set when the session failed.
[[nodiscard]] bool serve_worker(WorkerSession& session, std::string& err);

}  // namespace hpcs::dist::host
