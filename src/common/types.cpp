#include "common/types.h"

#include <cstdio>

namespace hpcs {

std::string format_duration(Duration d) {
  char buf[64];
  const double abs_ns = d.ns() < 0 ? -static_cast<double>(d.ns()) : static_cast<double>(d.ns());
  if (abs_ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3fs", d.sec());
  } else if (abs_ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3fms", d.ms());
  } else if (abs_ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3fus", d.us());
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(d.ns()));
  }
  return buf;
}

std::string format_time(SimTime t) { return format_duration(t - SimTime::zero()); }

}  // namespace hpcs
