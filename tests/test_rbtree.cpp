// Property tests of the CFS red-black tree: RB invariants hold after
// arbitrary insert/erase sequences, in-order traversal is sorted, the cached
// leftmost pointer always matches the true minimum.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "kernel/rbtree.h"

namespace hpcs::kern {
namespace {

using Tree = RbTree<int, int>;

TEST(RbTree, EmptyTree) {
  Tree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.leftmost(), nullptr);
  EXPECT_EQ(t.leftmost_key(), nullptr);
  t.validate();
}

TEST(RbTree, InsertFindErase) {
  Tree t;
  EXPECT_TRUE(t.insert(5, 50));
  EXPECT_TRUE(t.insert(3, 30));
  EXPECT_TRUE(t.insert(8, 80));
  EXPECT_FALSE(t.insert(5, 99));  // duplicate rejected
  EXPECT_EQ(t.size(), 3u);
  ASSERT_NE(t.find(3), nullptr);
  EXPECT_EQ(*t.find(3), 30);
  EXPECT_EQ(t.find(4), nullptr);
  EXPECT_TRUE(t.erase(3));
  EXPECT_FALSE(t.erase(3));
  EXPECT_EQ(t.size(), 2u);
  t.validate();
}

TEST(RbTree, LeftmostTracksMinimum) {
  Tree t;
  t.insert(10, 0);
  ASSERT_NE(t.leftmost_key(), nullptr);
  EXPECT_EQ(*t.leftmost_key(), 10);
  t.insert(5, 0);
  EXPECT_EQ(*t.leftmost_key(), 5);
  t.insert(7, 0);
  EXPECT_EQ(*t.leftmost_key(), 5);
  t.erase(5);
  EXPECT_EQ(*t.leftmost_key(), 7);
  t.erase(7);
  EXPECT_EQ(*t.leftmost_key(), 10);
  t.erase(10);
  EXPECT_EQ(t.leftmost_key(), nullptr);
}

TEST(RbTree, InOrderTraversalSorted) {
  Tree t;
  const std::vector<int> keys = {41, 38, 31, 12, 19, 8, 45, 99, 1};
  for (int k : keys) t.insert(k, k * 10);
  std::vector<int> seen;
  t.for_each([&](const int& k, const int& v) {
    seen.push_back(k);
    EXPECT_EQ(v, k * 10);
  });
  std::vector<int> expect = keys;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(seen, expect);
}

TEST(RbTree, AscendingInsertStaysBalanced) {
  Tree t;
  for (int i = 0; i < 4096; ++i) t.insert(i, i);
  const int bh = t.validate();
  // A red-black tree of n nodes has height <= 2*log2(n+1); black-height is
  // at most log2(n+1)+1.
  EXPECT_LE(bh, 14);
  ASSERT_NE(t.leftmost_key(), nullptr);
  EXPECT_EQ(*t.leftmost_key(), 0);
}

TEST(RbTree, DescendingInsertStaysBalanced) {
  Tree t;
  for (int i = 4096; i > 0; --i) t.insert(i, i);
  t.validate();
  EXPECT_EQ(*t.leftmost_key(), 1);
}

TEST(RbTree, ClearResets) {
  Tree t;
  for (int i = 0; i < 100; ++i) t.insert(i, i);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.leftmost(), nullptr);
  t.validate();
  EXPECT_TRUE(t.insert(1, 1));
}

// Property test: random interleaved inserts and erases mirrored against a
// std::map oracle, with full invariant validation along the way.
class RbTreeRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RbTreeRandomTest, MatchesMapOracle) {
  Rng rng(GetParam());
  Tree t;
  std::map<int, int> oracle;
  for (int round = 0; round < 4000; ++round) {
    const int key = static_cast<int>(rng.uniform_int(0, 500));
    if (rng.uniform() < 0.55) {
      const int val = static_cast<int>(rng.uniform_int(0, 1 << 20));
      const bool inserted = t.insert(key, val);
      const bool expect = oracle.emplace(key, val).second;
      EXPECT_EQ(inserted, expect);
    } else {
      EXPECT_EQ(t.erase(key), oracle.erase(key) > 0);
    }
    if (round % 97 == 0) {
      t.validate();
      EXPECT_EQ(t.size(), oracle.size());
      if (!oracle.empty()) {
        ASSERT_NE(t.leftmost_key(), nullptr);
        EXPECT_EQ(*t.leftmost_key(), oracle.begin()->first);
        EXPECT_EQ(*t.leftmost(), oracle.begin()->second);
      } else {
        EXPECT_EQ(t.leftmost_key(), nullptr);
      }
    }
  }
  t.validate();
  // Full content check at the end.
  std::vector<std::pair<int, int>> contents;
  t.for_each([&](const int& k, const int& v) { contents.emplace_back(k, v); });
  EXPECT_EQ(contents.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [k, v] : contents) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbTreeRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace hpcs::kern
