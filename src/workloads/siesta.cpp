#include "workloads/siesta.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace hpcs::wl {
namespace {

/// Lognormal with the requested mean: mu = ln(mean) - sigma^2/2.
double lognormal_burst(Rng& rng, double mean, double sigma) {
  const double mu = std::log(mean) - sigma * sigma / 2.0;
  return std::max(1.0, rng.lognormal(mu, sigma));
}

/// Rank 0: compute burst -> send work to every worker -> gather replies.
class SiestaDriver final : public mpi::RankProgram {
 public:
  SiestaDriver(const SiestaConfig& cfg, Rng rng) : cfg_(cfg), rng_(std::move(rng)) {}

  mpi::MpiOp next() override {
    if (iter_ >= cfg_.microiters) return mpi::OpExit{};
    const int workers = cfg_.ranks - 1;
    if (phase_ == 0) {
      ++phase_;
      return mpi::OpCompute{lognormal_burst(rng_, cfg_.cycle_work * cfg_.fractions[0],
                                            cfg_.sigma)};
    }
    if (phase_ <= workers) {  // scatter
      const int dst = phase_;
      ++phase_;
      return mpi::OpSend{dst, 0, cfg_.msg_bytes};
    }
    if (phase_ <= 2 * workers) {  // gather
      const int src = phase_ - workers;
      ++phase_;
      return mpi::OpRecv{src, 0};
    }
    phase_ = 0;
    ++iter_;
    if (cfg_.mark_every > 0 && iter_ % cfg_.mark_every == 0) return mpi::OpMarkIteration{};
    return next();
  }

 private:
  SiestaConfig cfg_;
  Rng rng_;
  int iter_ = 0;
  int phase_ = 0;
};

/// Worker: receive work -> compute a lognormal burst -> reply.
class SiestaWorker final : public mpi::RankProgram {
 public:
  SiestaWorker(const SiestaConfig& cfg, int rank, Rng rng)
      : cfg_(cfg), rank_(rank), rng_(std::move(rng)) {}

  mpi::MpiOp next() override {
    if (iter_ >= cfg_.microiters) return mpi::OpExit{};
    switch (phase_) {
      case 0:
        phase_ = 1;
        return mpi::OpRecv{0, 0};
      case 1:
        phase_ = 2;
        return mpi::OpCompute{lognormal_burst(
            rng_, cfg_.cycle_work * cfg_.fractions[static_cast<std::size_t>(rank_)],
            cfg_.sigma)};
      case 2:
        ++iter_;
        phase_ = (cfg_.mark_every > 0 && iter_ % cfg_.mark_every == 0) ? 3 : 0;
        return mpi::OpSend{0, 0, cfg_.msg_bytes};  // reply
      default:
        phase_ = 0;
        return mpi::OpMarkIteration{};
    }
  }

 private:
  SiestaConfig cfg_;
  int rank_;
  Rng rng_;
  int iter_ = 0;
  int phase_ = 0;
};

}  // namespace

ProgramSet make_siesta(const SiestaConfig& cfg) {
  HPCS_CHECK(cfg.ranks >= 2);
  HPCS_CHECK(static_cast<int>(cfg.fractions.size()) == cfg.ranks);
  Rng root(cfg.seed);
  ProgramSet out;
  out.push_back(std::make_unique<SiestaDriver>(cfg, root.fork()));
  for (int r = 1; r < cfg.ranks; ++r) {
    out.push_back(std::make_unique<SiestaWorker>(cfg, r, root.fork()));
  }
  return out;
}

}  // namespace hpcs::wl
