#pragma once
// Minimal leveled logger. The simulator is deterministic, so logs double as a
// debugging trace; they are off by default to keep benches quiet.

#include <cstdarg>
#include <string>

namespace hpcs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive; numeric 0-4
/// also accepted). Returns false and leaves `out` untouched on junk input.
[[nodiscard]] bool parse_log_level(const char* s, LogLevel& out);

/// Apply the HPCS_LOG_LEVEL environment variable if set and valid. Bench
/// drivers call this (via bench::init_logging) before parsing --log-level,
/// so the flag wins over the environment.
void init_log_level_from_env();

/// printf-style logging. `tag` names the emitting module (e.g. "cfs").
void log_message(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

#define HPCS_LOG_DEBUG(tag, ...) ::hpcs::log_message(::hpcs::LogLevel::kDebug, tag, __VA_ARGS__)
#define HPCS_LOG_INFO(tag, ...) ::hpcs::log_message(::hpcs::LogLevel::kInfo, tag, __VA_ARGS__)
#define HPCS_LOG_WARN(tag, ...) ::hpcs::log_message(::hpcs::LogLevel::kWarn, tag, __VA_ARGS__)
#define HPCS_LOG_ERROR(tag, ...) ::hpcs::log_message(::hpcs::LogLevel::kError, tag, __VA_ARGS__)

}  // namespace hpcs
