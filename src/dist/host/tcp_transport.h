#pragma once
// POSIX TCP implementation of the transport seam — the real-world sibling of
// loopback.h. Non-blocking sockets with an internal outbound buffer, so the
// single-threaded service loops never stall on a slow peer: send() queues,
// flush happens opportunistically on every send()/poll_recv().
//
// Wall-clock and file descriptors live only here (and in the service loops):
// the deterministic core never includes this header.

#include <cstdint>
#include <memory>
#include <string>

#include "dist/transport.h"

namespace hpcs::dist::host {

class TcpConnection final : public Connection {
 public:
  /// Takes ownership of a connected, non-blocking fd.
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection() override;

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  bool send(std::string_view bytes) override;
  [[nodiscard]] std::string poll_recv() override;
  [[nodiscard]] bool closed() const override { return dead_ && fd_ < 0; }
  void close() override;

 private:
  void flush();
  void mark_dead();

  int fd_ = -1;
  std::string out_;   ///< bytes accepted by send() but not yet written
  bool dead_ = false;
};

class TcpListener final : public Listener {
 public:
  explicit TcpListener(int fd) : fd_(fd) {}
  ~TcpListener() override;

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::unique_ptr<Connection> poll_accept() override;

 private:
  int fd_ = -1;
};

/// Bind + listen on 127.0.0.1:`port` (0 = ephemeral). On success reports the
/// actual port via `bound_port`. Returns nullptr with `err` set on failure.
[[nodiscard]] std::unique_ptr<TcpListener> tcp_listen(std::uint16_t port,
                                                      std::uint16_t& bound_port,
                                                      std::string& err);

/// Blocking connect to host:port, then switch the socket non-blocking.
/// Returns nullptr with `err` set on failure.
[[nodiscard]] std::unique_ptr<Connection> tcp_connect(const std::string& hostname,
                                                      std::uint16_t port,
                                                      std::string& err);

}  // namespace hpcs::dist::host
