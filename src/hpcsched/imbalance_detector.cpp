#include "hpcsched/imbalance_detector.h"

#include <algorithm>

namespace hpcs::hpc {

void ImbalanceDetector::record(Pid pid, double metric_util) { util_[pid] = metric_util; }

void ImbalanceDetector::forget(Pid pid) { util_.erase(pid); }

bool ImbalanceDetector::balanced(const HpcTunables& tun) const {
  ++balanced_checks_;
  if (util_.empty()) return true;
  return std::all_of(util_.begin(), util_.end(), [&](const auto& kv) {
    return classify_band(kv.second, tun) == 2;
  });
}

double ImbalanceDetector::spread() const {
  if (util_.size() < 2) return 0.0;
  double lo = 100.0;
  double hi = 0.0;
  for (const auto& [pid, u] : util_) {
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  return hi - lo;
}

bool ImbalanceDetector::behaviour_changed(TaskIterStats& s, const HpcTunables& tun) const {
  const int last_band = classify_band(s.util_last, tun);
  const int global_band = classify_band(s.util_global, tun);
  if (last_band == global_band) {
    s.mismatch_streak = 0;
    return false;
  }
  // A genuine behaviour change pushes the last-iteration utilization into
  // the SAME new band for several consecutive iterations. Alternating
  // mismatches (e.g. the 100%/0% sub-iteration pattern of a rank waking once
  // per waitall completion) are a stable regime, not a change — they must
  // not wipe the time-weighted history.
  if (s.mismatch_streak > 0 && last_band == s.last_mismatch_band) {
    ++s.mismatch_streak;
  } else {
    s.mismatch_streak = 1;
  }
  s.last_mismatch_band = last_band;
  return s.mismatch_streak >= tun.reset_after;
}

}  // namespace hpcs::hpc
