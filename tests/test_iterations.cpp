// Tests of the iteration-analysis module: series derivation, imbalance
// factor, and the adaptation-lag metric against real MetBenchVar runs (the
// quantitative version of the paper's Fig. 4 "needs two more iterations"
// observation).

#include <gtest/gtest.h>

#include "analysis/iterations.h"
#include "analysis/paper_experiments.h"

namespace hpcs::analysis {
namespace {

mpi::IterationMark mark(double t_s, double cpu_s) {
  return {SimTime(static_cast<std::int64_t>(t_s * 1e9)),
          Duration::seconds(cpu_s)};
}

TEST(IterationSeries, DeriveFromMarks) {
  std::vector<mpi::IterationMark> marks = {mark(2.0, 1.0), mark(4.0, 3.0), mark(8.0, 4.0)};
  const auto s = derive_series(marks);
  ASSERT_EQ(s.duration_s.size(), 3u);
  EXPECT_NEAR(s.duration_s[0], 2.0, 1e-9);
  EXPECT_NEAR(s.util_pct[0], 50.0, 1e-6);
  EXPECT_NEAR(s.duration_s[1], 2.0, 1e-9);
  EXPECT_NEAR(s.util_pct[1], 100.0, 1e-6);
  EXPECT_NEAR(s.util_pct[2], 25.0, 1e-6);
}

TEST(Imbalance, PerfectBalanceIsZero) {
  RunResult r;
  r.marks = {{mark(1, 0.5), mark(2, 1.0)}, {mark(1, 0.5), mark(2, 1.0)}};
  const auto lambda = imbalance_factor(r);
  ASSERT_EQ(lambda.size(), 2u);
  EXPECT_NEAR(lambda[0], 0.0, 1e-9);
  EXPECT_NEAR(lambda[1], 0.0, 1e-9);
}

TEST(Imbalance, FourToOneRatio) {
  RunResult r;
  // Rank 0 does 0.25s of CPU per iteration, rank 1 does 1.0s.
  r.marks = {{mark(1, 0.25), mark(2, 0.5)}, {mark(1, 1.0), mark(2, 2.0)}};
  const auto lambda = imbalance_factor(r);
  // mean = 0.625, max = 1.0 -> lambda = 0.6.
  EXPECT_NEAR(lambda[0], 0.6, 1e-9);
  EXPECT_NEAR(mean_imbalance(r), 0.6, 1e-9);
}

TEST(Imbalance, TruncatesToShortestRank) {
  RunResult r;
  r.marks = {{mark(1, 0.5)}, {mark(1, 0.5), mark(2, 1.0)}};
  EXPECT_EQ(imbalance_factor(r).size(), 1u);
}

TEST(AdaptationLag, SyntheticSeries) {
  RunResult r;
  // Balanced for 2 iterations, imbalanced for 3, then balanced again.
  std::vector<mpi::IterationMark> a;
  std::vector<mpi::IterationMark> b;
  double ta = 0;
  double ca = 0;
  double cb = 0;
  auto push = [&](double cpu_a, double cpu_b) {
    ta += 1.0;
    ca += cpu_a;
    cb += cpu_b;
    a.push_back(mark(ta, ca));
    b.push_back(mark(ta, cb));
  };
  push(1, 1);
  push(1, 1);
  push(0.2, 1);
  push(0.2, 1);
  push(0.2, 1);
  push(1, 1);
  push(1, 1);
  r.marks = {a, b};
  EXPECT_EQ(adaptation_lag(r, 2), 3);   // settles 3 iterations after the change
  EXPECT_EQ(adaptation_lag(r, 0), 0);   // already balanced at the start
  EXPECT_EQ(adaptation_lag(r, 5), 0);
}

// The quantitative Fig. 4 claim: after each behaviour switch the dynamic
// scheduler re-balances within a few iterations, while the static
// prioritization stays wrong for the whole reversed period.
TEST(AdaptationLag, MetBenchVarMeasured) {
  auto e = MetBenchVarExperiment::paper();
  e.workload.iterations = 24;
  e.workload.k = 8;
  for (auto& l : e.workload.loads_a) l /= 8.0;
  for (auto& l : e.workload.loads_b) l /= 8.0;

  const auto uni = run_metbenchvar(e, SchedMode::kUniform);
  const int lag = adaptation_lag(uni, e.workload.k, 0.30);
  EXPECT_GE(lag, 0) << "uniform must re-balance after the switch";
  EXPECT_LE(lag, 5) << "uniform should adapt within a few iterations";

  const auto stat = run_metbenchvar(e, SchedMode::kStatic);
  // Static: the whole second period stays imbalanced.
  const auto lambda = imbalance_factor(stat);
  double worst = 0.0;
  for (int i = e.workload.k; i < 2 * e.workload.k && i < static_cast<int>(lambda.size());
       ++i) {
    worst = std::max(worst, lambda[static_cast<std::size_t>(i)]);
  }
  EXPECT_GT(worst, 0.5) << "static stays imbalanced in the reversed period";

  // And overall: dynamic has lower mean imbalance than the baseline. (At
  // this abbreviated scale static's mean can land either side of uniform's
  // because uniform pays two adaptation transients, so only the baseline
  // comparison is asserted.)
  const auto base = run_metbenchvar(e, SchedMode::kBaselineCfs);
  EXPECT_LT(mean_imbalance(uni), mean_imbalance(base));
}

}  // namespace
}  // namespace hpcs::analysis
