#pragma once
// hpcslint v4 — the project's whole-program determinism & concurrency lint.
//
// The whole reproduction stands on one contract: a simulation run is a pure
// function of its config, so exp::ParallelRunner can fan sweeps across
// threads with bit-identical results. hpcslint statically rejects the code
// shapes that quietly break that contract. v1 was a single-pass lexer; v2
// added a small dependency-free C++ front end — tokenizer (lexer.h) →
// tolerant recursive-descent declaration/scope parser with a per-TU symbol
// table (tu.h, parser.cpp) → cross-TU link step (project.cpp) driven by the
// file set (optionally from build/compile_commands.json). v3 makes the link
// step dispatch-aware: calls resolve by qualified name (exact-first, never
// bare suffix), member calls resolve through the class-hierarchy graph with
// virtual fan-out to every override, lambdas and `&function` values bound
// into `std::function`/`InplaceFunction` slots become call-graph edges from
// their dispatch sites, and template bodies are analyzed structurally (one
// symbol per primary template). No libclang: the portable build stays
// self-contained, and every heuristic is documented at its implementation.
//
// Rule families (see docs/static_analysis.md for rationale and examples):
//
//  token rules (v1, unchanged behaviour):
//   wallclock        std::chrono::{system,steady,high_resolution}_clock
//   rand             rand/srand/rand_r/drand48, std::random_device, time(...)
//   hot-alloc        new / make_unique / make_shared / malloc / std::function
//                    inside // HPCS_HOT_BEGIN .. // HPCS_HOT_END regions
//   missing-override SchedClass hook declared without `override`
//   tracepoint-name  HPCS_TRACEPOINT id must be a kTp* catalogue enumerator
//
//  scoped container rules (v2: symbol-resolving, incl. class members across
//  translation units):
//   unordered-iter   iterating a variable declared as unordered_{map,set}
//   pointer-key      map/set/less/greater keyed on a pointer type, and
//                    iteration over a pointer-keyed ordered container
//
//  whole-program rules (v2, dispatch-aware since v3):
//   det-taint        a function in the deterministic core (simcore/kernel/
//                    power5/obs) transitively reaches a nondeterminism
//                    source through the call graph — including through
//                    virtual overrides and bound callbacks
//   lock-order       cycle in the MutexLock acquisition-order graph
//   lock-guard       write to a GUARDED_BY field outside any lock scope
//
//  state-machine purity (v3):
//   dist-purity      a function in the pure state-machine zone (the
//                    deterministic core, plus src/dist outside dist/host —
//                    Coordinator/WorkerSession) reaches a host-environment
//                    source: file/stream IO, sockets, sleeps, process calls,
//                    clocks, RNG. Such code must be driven by now_ms and the
//                    config; deliberate host IO belongs in HPCS_HOST regions.
//
//  whole-program concurrency (v4):
//   shared-race      a class field reached from ≥2 inferred thread contexts
//                    (exp::ThreadPool submissions, std::thread bodies,
//                    dist/host HPCS_HOST service loops, the main context)
//                    whose interprocedurally propagated lockset is empty or
//                    inconsistent — reported with a GUARDED_BY suggestion
//   proto-exhaustive a switch over a protocol enum (enums defined in
//                    src/dist outside dist/host) missing an enumerator arm;
//                    a default: arm does not count
//   proto-drift      the extracted state × message → action transition graph
//                    differs from the checked-in
//                    tools/hpcslint/dist_protocol_spec.json (--proto-spec)
//
// `// HPCSLINT-ALLOW(rule)` suppresses a finding on the same line (or the
// next line when the comment stands alone). `// HPCS_HOST_BEGIN` ..
// `// HPCS_HOST_END` marks a *host region* — deliberate host-environment
// code (wall clocks, sockets, env vars; e.g. src/dist/host) — which
// blanket-allows exactly the wallclock/rand/det-taint/dist-purity family
// instead of demanding one ALLOW per line; all other rules still apply
// inside. Findings can also be baselined: emit SARIF with --sarif, check the
// file in, and CI gates on *new* findings only (fingerprints not present in
// the baseline).

#include <filesystem>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace hpcslint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// One in-memory translation unit for lint_units(): `label` is used as
/// Finding::file and decides path-based protection for det-taint.
struct SourceUnit {
  std::string label;
  std::string text;
};

/// Lint one translation unit given as text — a single-TU project: all rule
/// families run, cross-TU resolution simply has nothing extra to see.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& file_label,
                                               std::string_view source);

/// Lint a set of translation units as one program: per-TU rules on each,
/// then the link step (symbol merge, call graph, taint, lock graph) across
/// all of them. This is what lint_tree and the compile_commands driver use;
/// the multi-TU fixtures call it directly. `jobs > 1` runs the per-TU
/// lex/parse stage on an exp::ThreadPool; results are merged in unit order
/// and the link step runs serially, so output is byte-identical to jobs=1.
[[nodiscard]] std::vector<Finding> lint_units(const std::vector<SourceUnit>& units,
                                              unsigned jobs = 1);

/// Findings plus the v4 protocol transition graph: the machine-readable
/// `state × message → action` JSON extracted from switches over protocol
/// enums in the pure state-machine zone (src/dist outside dist/host). The
/// CLI writes it with --emit-proto and diffs it against the checked-in
/// tools/hpcslint/dist_protocol_spec.json with --proto-spec.
struct LintResult {
  std::vector<Finding> findings;
  std::string protocol_graph;
};

/// lint_units / lint_tree with the protocol graph attached. The plain
/// overloads above are thin wrappers that drop the graph.
[[nodiscard]] LintResult lint_units_full(const std::vector<SourceUnit>& units,
                                         unsigned jobs = 1);
[[nodiscard]] LintResult lint_tree_full(const std::vector<std::filesystem::path>& roots,
                                        unsigned jobs = 1);

/// Compare an extracted transition graph against the checked-in spec text
/// and return one proto-drift finding per changed/added/removed machine.
/// `spec_label` attributes findings that have no better home (missing
/// machines, unparsable spec). Returned findings are unsorted — merge them
/// into a finding set and re-sort with sort_findings().
[[nodiscard]] std::vector<Finding> proto_drift_findings(
    const std::string& extracted_graph, std::string_view spec_text,
    const std::string& spec_label);

/// Canonical finding order: (file, line, rule, message). Every entry point
/// returns findings in this order; callers that append (e.g. proto-drift)
/// must restore it before emitting SARIF so fingerprint occurrence indices
/// stay stable.
void sort_findings(std::vector<Finding>& fs);

/// Lint a file on disk (returns a single io-error finding if unreadable).
[[nodiscard]] std::vector<Finding> lint_file(const std::filesystem::path& path);

/// Recursively lint every *.h/*.hpp/*.cc/*.cpp under the given roots as one
/// program, skipping any directory named "fixtures" (fixture files
/// deliberately violate the rules). Files are visited in sorted path order
/// so output is deterministic — the lint practices what it preaches.
[[nodiscard]] std::vector<Finding> lint_tree(const std::vector<std::filesystem::path>& roots,
                                             unsigned jobs = 1);

/// "file:line: [rule] message" — the single line format CI greps.
[[nodiscard]] std::string format_finding(const Finding& f);

/// Every rule name, for --list-rules and the self-test harness.
[[nodiscard]] const std::vector<std::string>& rule_names();

// ---------------------------------------------------------------------------
// SARIF 2.1.0 + baseline (sarif.cpp)

/// Root against which finding paths are relativized in fingerprints and in
/// emitted SARIF locations (and in the messages, which embed paths). Set it
/// to the repository root so baseline.sarif.json is identical regardless of
/// where the checkout lives; "" (the default) leaves paths as given.
void set_sarif_path_root(const std::filesystem::path& root);

/// `file` relative to the configured root when it lies under it ("src/x.cpp"
/// for "/repo/src/x.cpp" with root "/repo"); otherwise unchanged.
[[nodiscard]] std::string sarif_relative_path(const std::string& file);

/// Stable identity of a finding for baseline matching: FNV-1a over
/// root-relative file|rule|message plus a per-identical-tuple occurrence
/// index, so two findings with the same text on different lines baseline
/// independently, whole-file line drift does not invalidate the baseline,
/// and the fingerprints survive checkout-location changes.
[[nodiscard]] std::vector<std::string> fingerprints(const std::vector<Finding>& fs);

/// Render findings as a SARIF 2.1.0 document (one run, one result per
/// finding with a root-relative artifact URI, fingerprint under
/// partialFingerprints."hpcslint/v2").
[[nodiscard]] std::string sarif_report(const std::vector<Finding>& fs);

/// Extract the fingerprint set from a SARIF document previously written by
/// sarif_report (or regenerated via scripts/hpcslint_baseline.sh). Returns
/// false (and fills `error`) on malformed JSON.
[[nodiscard]] bool load_baseline(std::string_view sarif_text,
                                 std::set<std::string>& out, std::string& error);

/// Drop findings whose fingerprint is in `baseline`; the remainder are the
/// *new* findings CI fails on.
[[nodiscard]] std::vector<Finding> filter_baselined(const std::vector<Finding>& fs,
                                                    const std::set<std::string>& baseline);

// ---------------------------------------------------------------------------
// compile_commands.json driver (compile_commands.cpp)

/// Read the translation-unit list from a CMake compile_commands.json:
/// every "file" entry under the repository (external/_deps and fixture
/// paths are skipped), plus every header under the source directories those
/// files live in — headers do not appear in compile commands but carry
/// class definitions the link step needs. Returns false + `error` when the
/// file is missing or malformed.
[[nodiscard]] bool files_from_compile_commands(const std::filesystem::path& json_path,
                                               std::vector<std::filesystem::path>& out,
                                               std::string& error);

}  // namespace hpcslint
