// EXTENSION bench (paper §VI future work): cluster-level gang scheduling on
// top of per-node HPCSched. Four MPI jobs of different sizes and loads are
// gang-placed on a two-node POWER5 cluster under three policies; within each
// node HPCSched balances whatever lands there.

#include <cstdio>

#include "cluster/gang.h"

using namespace hpcs;

namespace {

cluster::JobSpec metbench_job(const std::string& name, int ranks, double large_load,
                              int iterations) {
  cluster::JobSpec job;
  job.name = name;
  job.ranks = ranks;
  wl::MetBenchConfig cfg;
  cfg.iterations = iterations;
  cfg.loads.assign(static_cast<std::size_t>(ranks), large_load);
  // Alternate small/large like the paper's MetBench (intrinsic imbalance).
  for (std::size_t i = 0; i < cfg.loads.size(); i += 2) cfg.loads[i] = large_load / 4.0;
  for (const double l : cfg.loads) job.load_estimate += l * iterations;
  job.make_programs = [cfg] { return wl::make_metbench(cfg); };
  return job;
}

}  // namespace

int main() {
  std::printf("=== Extension: gang scheduling of MPI jobs over a 2-node cluster ===\n\n");

  const std::vector<cluster::JobSpec> jobs = {
      metbench_job("bigA", 4, 0.4e9, 12),
      metbench_job("bigB", 4, 0.4e9, 12),
      metbench_job("medA", 2, 0.4e9, 12),
      metbench_job("medB", 2, 0.4e9, 12),
  };

  cluster::ClusterConfig cfg;
  cfg.nodes = 2;
  // With gangs sharing CPUs (2+ HPC tasks per context) the round-robin slice
  // matters: the default 100 ms serializes co-located ranks across barrier
  // phases. A latency-sized slice keeps gangs interleaved.
  cfg.tunables.rr_slice = Duration::milliseconds(10);

  std::printf("%-14s %-10s %-34s %-12s\n", "policy", "makespan", "per-job (node:seconds)",
              "");
  for (const auto policy : {cluster::GangPolicy::kPacked, cluster::GangPolicy::kRoundRobin,
                            cluster::GangPolicy::kLeastLoaded}) {
    const auto res = cluster::run_cluster(cfg, jobs, policy);
    std::printf("%-14s %-10.2f ", cluster::gang_policy_name(policy), res.makespan.sec());
    for (const auto& j : res.jobs) {
      std::printf("%s=%d:%.1fs ", j.name.c_str(), j.node, j.exec_time.sec());
    }
    std::printf("\n");
  }

  std::printf(
      "\npacked co-locates both big jobs on node 0 (2 tasks/CPU) while node 1 idles;\n"
      "least-loaded spreads by estimated work and should win on makespan. Within every\n"
      "node, HPCSched still balances each job's intrinsic 4:1 imbalance.\n");

  // Same placement question without HPCSched: the in-node balancing benefit
  // stacks with the gang placement benefit.
  cluster::ClusterConfig stock = cfg;
  stock.hpcsched = false;
  const auto with = cluster::run_cluster(cfg, jobs, cluster::GangPolicy::kLeastLoaded);
  const auto without = cluster::run_cluster(stock, jobs, cluster::GangPolicy::kLeastLoaded);
  std::printf("\nleast-loaded makespan: HPCSched %.2fs vs stock CFS %.2fs (%+.1f%%)\n",
              with.makespan.sec(), without.makespan.sec(),
              100.0 * (1.0 - with.makespan.sec() / without.makespan.sec()));
  return 0;
}
