#pragma once
// The MPI-like runtime: binds one RankProgram per rank to a simulated kernel
// task and interprets the op stream — compute segments, global barriers,
// eager point-to-point messages with a latency/bandwidth network model, and
// isend/irecv/waitall request tracking.

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "kernel/kernel.h"
#include "simmpi/network.h"
#include "simmpi/ops.h"

namespace hpcs::mpi {

/// Recorded at every OpMarkIteration: when it happened and the rank's
/// cumulative CPU time, so per-iteration utilization can be derived.
struct IterationMark {
  SimTime when = SimTime::zero();
  Duration cpu_time = Duration::zero();
};

struct MpiWorldConfig {
  kern::Policy policy = kern::Policy::kNormal;
  /// rank -> initial CPU; empty = round-robin over the machine.
  std::vector<CpuId> placement;
  /// Optional static hardware priorities per rank (the hand-tuned approach
  /// of [5]); empty = default priority 4 for everyone.
  std::vector<int> static_hw_prio;
  NetworkParams net{};
  std::uint64_t seed = 1;
  std::string name_prefix = "rank";
};

class MpiWorld {
 public:
  MpiWorld(kern::Kernel& k, MpiWorldConfig cfg,
           std::vector<std::unique_ptr<RankProgram>> programs);

  /// Wake every rank task (call after Kernel::start()).
  void start();

  [[nodiscard]] int size() const { return static_cast<int>(ranks_.size()); }
  [[nodiscard]] bool done() const { return exited_ == size(); }
  [[nodiscard]] kern::Task& task(int rank) const { return *ranks_[check_rank(rank)].task; }
  /// Completion time of the whole application (max over rank exits).
  [[nodiscard]] SimTime finish_time() const { return finish_time_; }
  [[nodiscard]] const std::vector<IterationMark>& marks(int rank) const {
    return ranks_[check_rank(rank)].marks;
  }
  [[nodiscard]] std::int64_t messages_delivered() const { return messages_; }
  [[nodiscard]] std::int64_t barriers_completed() const { return barrier_generation_; }

  /// Diagnostic snapshot of every rank's wait state — printed when a run
  /// fails to complete, so deadlocks are debuggable from the abort message.
  [[nodiscard]] std::string debug_state() const;

  /// Per-rank traffic counters.
  struct RankTraffic {
    std::int64_t msgs_sent = 0;
    std::int64_t msgs_received = 0;
    std::int64_t bytes_sent = 0;
  };
  [[nodiscard]] RankTraffic traffic(int rank) const {
    const RankState& rs = ranks_[check_rank(rank)];
    return {rs.msgs_sent, rs.msgs_received, rs.bytes_sent};
  }

  /// Interpreter entry point used by the per-rank task body; drives `rank`
  /// until an op requires the kernel (compute/block/exit). Not part of the
  /// user-facing API.
  void step_rank(int rank, kern::Task& t);

 private:

  struct Message {
    int src = 0;
    int tag = 0;
    std::int64_t bytes = 0;
    /// Rank blocked in a rendezvous send until this message is consumed
    /// (-1 = eager, nobody waits).
    int rv_sender = -1;
  };

  enum class WaitKind {
    kNone,
    kBarrier,
    kRecv,
    kWaitAll,
    kAllreduce,
    kBcast,
    kReduceRoot,
    kSendRendezvous,
  };

  struct RankState {
    kern::Task* task = nullptr;
    std::unique_ptr<RankProgram> program;
    std::deque<Message> mailbox;
    std::vector<std::pair<int, int>> pending_irecvs;  ///< (src, tag) posted, unmatched
    int pending_isends = 0;    ///< isends whose delivery has not completed yet
    int pending_rv_sends = 0;  ///< rendezvous sends not yet consumed by the peer
    // Per-rank traffic statistics.
    std::int64_t msgs_sent = 0;
    std::int64_t msgs_received = 0;
    std::int64_t bytes_sent = 0;
    WaitKind waiting = WaitKind::kNone;
    int recv_src = kAnySource;
    int recv_tag = kAnyTag;
    std::int64_t barrier_gen = 0;  ///< generation the rank is waiting for
    std::int64_t allreduce_gen = 0;
    std::int64_t bcast_taken = 0;   ///< broadcast rounds this rank consumed
    std::int64_t reduce_round = 0;  ///< reduce rounds this (root) rank completed
    std::vector<IterationMark> marks;
    bool exited = false;
  };

  /// Shared bookkeeping of a barrier-like collective.
  struct CollectiveState {
    int waiting = 0;
    std::int64_t generation = 0;
    bool release_pending = false;
  };

  [[nodiscard]] std::size_t check_rank(int rank) const;

  /// Release a sender blocked in a rendezvous send of `m` (no-op for eager).
  void release_rendezvous(const Message& m);

  /// True if a message matching (src, tag) is in the mailbox; consumes it.
  bool try_consume(RankState& rs, int src, int tag);
  /// Try to match the message against pending irecvs; returns true if used.
  bool match_irecv(RankState& rs, const Message& m);

  void deliver(int dst, Message m);
  void barrier_arrive(int rank);
  void maybe_release_barrier();
  void maybe_release_allreduce(std::int64_t bytes);
  /// Tree-phase latency of a collective over the live ranks.
  [[nodiscard]] Duration tree_delay(std::int64_t bytes, int phases);
  void wake_waiters(WaitKind kind);

  kern::Kernel* kernel_;
  MpiWorldConfig cfg_;
  NetworkModel net_;
  std::vector<RankState> ranks_;
  std::int64_t barrier_generation_ = 0;
  int barrier_waiting_ = 0;
  bool barrier_release_pending_ = false;
  CollectiveState allreduce_;
  std::int64_t bcast_rounds_posted_ = 0;     ///< bcast rounds the root issued
  std::int64_t bcast_rounds_delivered_ = 0;  ///< rounds that finished the tree
  std::int64_t reduce_contributions_ = 0;    ///< total non-root contributions
  std::int64_t reduce_rounds_ready_ = 0;     ///< rounds whose tree completed
  int exited_ = 0;
  SimTime finish_time_ = SimTime::zero();
  std::int64_t messages_ = 0;
};

/// Run the simulator until the world completes (or `deadline` passes).
/// Returns the world's finish time.
SimTime run_to_completion(sim::Simulator& s, MpiWorld& world,
                          SimTime deadline = SimTime(std::int64_t{3600} * 1000000000));

}  // namespace hpcs::mpi
