// MPI runtime tests: barrier correctness for arbitrary N, blocking and
// non-blocking point-to-point semantics, waitall (including isend
// completion), message matching with wildcards, network delay model,
// iteration marks, and deadlock-free exit semantics.

#include <gtest/gtest.h>

#include <numeric>

#include "simmpi/mpi_world.h"
#include "test_util.h"

namespace hpcs::test {
namespace {

using mpi::MpiOp;
using mpi::RankProgram;

/// Program defined by an inline op vector.
class OpListProgram final : public RankProgram {
 public:
  explicit OpListProgram(std::vector<MpiOp> ops) : ops_(std::move(ops)) {}
  MpiOp next() override {
    if (i_ >= ops_.size()) return mpi::OpExit{};
    return ops_[i_++];
  }

 private:
  std::vector<MpiOp> ops_;
  std::size_t i_ = 0;
};

std::vector<std::unique_ptr<RankProgram>> programs(
    std::initializer_list<std::vector<MpiOp>> lists) {
  std::vector<std::unique_ptr<RankProgram>> out;
  for (const auto& l : lists) out.push_back(std::make_unique<OpListProgram>(l));
  return out;
}

struct WorldFixture : KernelFixture {
  WorldFixture() { k().start(); }

  mpi::MpiWorld make_world(std::vector<std::unique_ptr<RankProgram>> progs,
                           mpi::MpiWorldConfig cfg = {}) {
    return mpi::MpiWorld(k(), cfg, std::move(progs));
  }
};

TEST(SimMpi, NetworkDelayScalesWithSize) {
  mpi::NetworkParams p;
  p.jitter_frac = 0.0;
  mpi::NetworkModel net(p, Rng(1));
  const Duration small = net.delay(0);
  const Duration large = net.delay(1000000);  // 1 MB at ~1 GB/s -> ~1 ms extra
  EXPECT_EQ(small, p.base_latency);
  EXPECT_NEAR((large - small).ms(), 1.0, 0.05);
}

TEST(SimMpi, BarrierSynchronizesUnevenRanks) {
  WorldFixture f;
  // Rank 1 computes 10x longer; rank 0 must wait at the barrier.
  auto w = f.make_world(programs({
      {mpi::OpCompute{1.0e6}, mpi::OpBarrier{}, mpi::OpMarkIteration{}},
      {mpi::OpCompute{10.0e6}, mpi::OpBarrier{}, mpi::OpMarkIteration{}},
  }));
  w.start();
  mpi::run_to_completion(f.sim, w);
  EXPECT_EQ(w.barriers_completed(), 1);
  // Both marks happen after the slow rank finished (within the release RTT).
  const SimTime m0 = w.marks(0)[0].when;
  const SimTime m1 = w.marks(1)[0].when;
  EXPECT_GT(m0, SimTime::zero() + Duration::milliseconds(15));
  EXPECT_LT((m0 - m1).ns() < 0 ? (m1 - m0) : (m0 - m1), Duration::milliseconds(1));
}

TEST(SimMpi, BarrierManyRanksManyIterations) {
  WorldFixture f;
  // 6 ranks (more than CPUs) x 5 iterations, random-ish loads.
  std::vector<std::unique_ptr<RankProgram>> progs;
  for (int r = 0; r < 6; ++r) {
    std::vector<MpiOp> ops;
    for (int i = 0; i < 5; ++i) {
      ops.push_back(mpi::OpCompute{1.0e6 * (r + 1)});
      ops.push_back(mpi::OpBarrier{});
      ops.push_back(mpi::OpMarkIteration{});
    }
    progs.push_back(std::make_unique<OpListProgram>(ops));
  }
  auto w = f.make_world(std::move(progs));
  w.start();
  mpi::run_to_completion(f.sim, w);
  EXPECT_EQ(w.barriers_completed(), 5);
  for (int r = 0; r < 6; ++r) EXPECT_EQ(w.marks(r).size(), 5u);
  // No rank may pass barrier i before every rank has arrived: mark i of the
  // fast ranks is never earlier than the slowest rank's compute end.
  for (int i = 0; i < 5; ++i) {
    SimTime lo = SimTime::max();
    SimTime hi = SimTime::zero();
    for (int r = 0; r < 6; ++r) {
      lo = std::min(lo, w.marks(r)[static_cast<std::size_t>(i)].when);
      hi = std::max(hi, w.marks(r)[static_cast<std::size_t>(i)].when);
    }
    // With 6 ranks on 4 CPUs two ranks share a CPU, so the marks of
    // co-located ranks are a few scheduler ticks apart.
    EXPECT_LT(hi - lo, Duration::milliseconds(20)) << "barrier " << i << " not aligned";
    if (i > 0) {
      SimTime prev_hi = SimTime::zero();
      for (int r = 0; r < 6; ++r) {
        prev_hi = std::max(prev_hi, w.marks(r)[static_cast<std::size_t>(i - 1)].when);
      }
      EXPECT_GE(lo, prev_hi - Duration::milliseconds(20))
          << "barrier " << i << " passed before barrier " << i - 1 << " settled";
    }
  }
}

TEST(SimMpi, BlockingRecvWaitsForMessage) {
  WorldFixture f;
  auto w = f.make_world(programs({
      {mpi::OpCompute{5.0e6}, mpi::OpSend{1, 7, 1024}},
      {mpi::OpRecv{0, 7}, mpi::OpMarkIteration{}},
  }));
  w.start();
  mpi::run_to_completion(f.sim, w);
  EXPECT_EQ(w.messages_delivered(), 1);
  // Rank 1 could only mark after rank 0's ~7.7 ms compute + transfer.
  EXPECT_GT(w.marks(1)[0].when, SimTime::zero() + Duration::milliseconds(7));
}

TEST(SimMpi, RecvMatchesBySourceAndTag) {
  WorldFixture f;
  // Rank 2 receives specifically (src=1, tag=9) even though (0, 5) arrives
  // first, then consumes the other message with wildcards.
  auto w = f.make_world(programs({
      {mpi::OpSend{2, 5, 64}},
      {mpi::OpCompute{3.0e6}, mpi::OpSend{2, 9, 64}},
      {mpi::OpRecv{1, 9}, mpi::OpMarkIteration{}, mpi::OpRecv{mpi::kAnySource, mpi::kAnyTag},
       mpi::OpMarkIteration{}},
  }));
  w.start();
  mpi::run_to_completion(f.sim, w);
  EXPECT_EQ(w.marks(2).size(), 2u);
  EXPECT_GT(w.marks(2)[0].when, SimTime::zero() + Duration::milliseconds(4));
}

TEST(SimMpi, WaitAllCoversIrecvAndIsend) {
  WorldFixture f;
  // Symmetric neighbour exchange between two ranks, BT-MZ style.
  auto exchange = [](int peer) {
    return std::vector<MpiOp>{
        mpi::OpCompute{2.0e6}, mpi::OpIrecv{peer, 0}, mpi::OpIsend{peer, 0, 4096},
        mpi::OpWaitAll{},      mpi::OpMarkIteration{},
    };
  };
  auto w = f.make_world(programs({exchange(1), exchange(0)}));
  w.start();
  mpi::run_to_completion(f.sim, w);
  EXPECT_EQ(w.messages_delivered(), 2);
  EXPECT_EQ(w.marks(0).size(), 1u);
  EXPECT_EQ(w.marks(1).size(), 1u);
}

TEST(SimMpi, IrecvConsumesAlreadyArrivedMessage) {
  WorldFixture f;
  // The message arrives long before the irecv is posted: waitall must not
  // block forever.
  auto w = f.make_world(programs({
      {mpi::OpSend{1, 3, 128}},
      {mpi::OpCompute{20.0e6}, mpi::OpIrecv{0, 3}, mpi::OpWaitAll{}, mpi::OpMarkIteration{}},
  }));
  w.start();
  mpi::run_to_completion(f.sim, w);
  EXPECT_EQ(w.marks(1).size(), 1u);
}

TEST(SimMpi, IterationMarksCarryCpuTime) {
  WorldFixture f;
  auto w = f.make_world(programs({
      {mpi::OpCompute{5.0e6}, mpi::OpMarkIteration{}, mpi::OpCompute{5.0e6},
       mpi::OpMarkIteration{}},
  }));
  w.start();
  mpi::run_to_completion(f.sim, w);
  const auto& marks = w.marks(0);
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_NEAR(marks[0].cpu_time.ms(), 5.0 / 0.65, 0.5);
  EXPECT_NEAR((marks[1].cpu_time - marks[0].cpu_time).ms(), 5.0 / 0.65, 0.5);
}

TEST(SimMpi, ExitDuringBarrierDoesNotDeadlock) {
  WorldFixture f;
  // Rank 1 exits without ever reaching the barrier rank 0 waits on...
  // here: rank 1 runs one barrier less. The world must still terminate.
  auto w = f.make_world(programs({
      {mpi::OpCompute{1.0e6}, mpi::OpBarrier{}, mpi::OpCompute{1.0e6}, mpi::OpBarrier{}},
      {mpi::OpCompute{1.0e6}, mpi::OpBarrier{}},
  }));
  w.start();
  mpi::run_to_completion(f.sim, w, SimTime::zero() + Duration::seconds(10.0));
  EXPECT_TRUE(w.done());
}

TEST(SimMpi, StaticHwPriosApplied) {
  WorldFixture f;
  mpi::MpiWorldConfig cfg;
  cfg.static_hw_prio = {4, 6};
  auto w = f.make_world(programs({
                            {mpi::OpCompute{1.0e6}},
                            {mpi::OpCompute{1.0e6}},
                        }),
                        cfg);
  EXPECT_EQ(p5::to_int(w.task(0).hw_prio), 4);
  EXPECT_EQ(p5::to_int(w.task(1).hw_prio), 6);
  w.start();
  mpi::run_to_completion(f.sim, w);
}

TEST(SimMpi, PlacementRoundRobinByDefault) {
  WorldFixture f;
  std::vector<std::unique_ptr<RankProgram>> progs;
  for (int r = 0; r < 4; ++r) {
    progs.push_back(std::make_unique<OpListProgram>(std::vector<MpiOp>{mpi::OpCompute{1.0e3}}));
  }
  auto w = f.make_world(std::move(progs));
  for (int r = 0; r < 4; ++r) EXPECT_EQ(w.task(r).cpu, r);
  w.start();
  mpi::run_to_completion(f.sim, w);
}


TEST(SimMpi, RendezvousSendBlocksUntilReceiverConsumes) {
  WorldFixture f;
  mpi::MpiWorldConfig cfg;
  cfg.net.eager_threshold = 1024;
  // Rank 0 sends a large message immediately, then marks; rank 1 only
  // receives after a long compute. The rendezvous send must pin rank 0
  // until rank 1's recv.
  auto w = f.make_world(programs({
                            {mpi::OpSend{1, 0, 1 << 20}, mpi::OpMarkIteration{}},
                            {mpi::OpCompute{20.0e6}, mpi::OpRecv{0, 0},
                             mpi::OpMarkIteration{}},
                        }),
                        cfg);
  w.start();
  mpi::run_to_completion(f.sim, w);
  // Rank 0's mark waits for rank 1's compute (~30.8 ms at 0.65).
  EXPECT_GT(w.marks(0)[0].when, SimTime::zero() + Duration::milliseconds(28));
}

TEST(SimMpi, EagerSendDoesNotBlock) {
  WorldFixture f;
  mpi::MpiWorldConfig cfg;
  cfg.net.eager_threshold = 1 << 22;  // everything eager
  auto w = f.make_world(programs({
                            {mpi::OpSend{1, 0, 1 << 20}, mpi::OpMarkIteration{}},
                            {mpi::OpCompute{20.0e6}, mpi::OpRecv{0, 0}},
                        }),
                        cfg);
  w.start();
  mpi::run_to_completion(f.sim, w);
  EXPECT_LT(w.marks(0)[0].when, SimTime::zero() + Duration::milliseconds(1));
}

TEST(SimMpi, RendezvousReleasedByExitedReceiver) {
  WorldFixture f;
  mpi::MpiWorldConfig cfg;
  cfg.net.eager_threshold = 1024;
  // Rank 1 exits without receiving: rank 0 must not deadlock.
  auto w = f.make_world(programs({
                            {mpi::OpSend{1, 0, 1 << 20}, mpi::OpMarkIteration{}},
                            {mpi::OpCompute{1.0e6}},
                        }),
                        cfg);
  w.start();
  mpi::run_to_completion(f.sim, w, SimTime::zero() + Duration::seconds(10.0));
  EXPECT_TRUE(w.done());
}

TEST(SimMpi, PerRankTrafficCounters) {
  WorldFixture f;
  auto w = f.make_world(programs({
      {mpi::OpSend{1, 0, 100}, mpi::OpSend{1, 0, 200}},
      {mpi::OpRecv{0, 0}, mpi::OpRecv{0, 0}},
  }));
  w.start();
  mpi::run_to_completion(f.sim, w);
  const auto t0 = w.traffic(0);
  const auto t1 = w.traffic(1);
  EXPECT_EQ(t0.msgs_sent, 2);
  EXPECT_EQ(t0.bytes_sent, 300);
  EXPECT_EQ(t0.msgs_received, 0);
  EXPECT_EQ(t1.msgs_received, 2);
}

}  // namespace
}  // namespace hpcs::test
