// Example: the cluster-level extension — submit a mixed batch of MPI jobs to
// a multi-node simulated cluster and let the gang scheduler place them while
// HPCSched balances inside each node (the paper's §VI future work).

#include <cstdio>

#include "cluster/gang.h"

using namespace hpcs;

int main() {
  std::printf("== gang scheduling a job mix over a 4-node POWER5 cluster ==\n\n");

  // A batch of 4-rank and 2-rank jobs with different intrinsic imbalances.
  std::vector<cluster::JobSpec> jobs;
  const struct {
    const char* name;
    int ranks;
    double large;
    int iters;
  } specs[] = {
      {"chem-4", 4, 0.5e9, 8}, {"cfd-4", 4, 0.35e9, 10}, {"post-2", 2, 0.2e9, 6},
      {"viz-2", 2, 0.1e9, 6},  {"qcd-4", 4, 0.45e9, 8},  {"io-2", 2, 0.05e9, 4},
  };
  for (const auto& s : specs) {
    cluster::JobSpec j;
    j.name = s.name;
    j.ranks = s.ranks;
    wl::MetBenchConfig mc;
    mc.iterations = s.iters;
    mc.loads.assign(static_cast<std::size_t>(s.ranks), s.large);
    for (std::size_t i = 0; i < mc.loads.size(); i += 2) mc.loads[i] = s.large / 4.0;
    for (const double l : mc.loads) j.load_estimate += l * s.iters;
    j.make_programs = [mc] { return wl::make_metbench(mc); };
    jobs.push_back(j);
  }

  cluster::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.tunables.rr_slice = Duration::milliseconds(10);

  for (const auto policy : {cluster::GangPolicy::kPacked, cluster::GangPolicy::kRoundRobin,
                            cluster::GangPolicy::kLeastLoaded}) {
    const auto res = cluster::run_cluster(cfg, jobs, policy);
    std::printf("%-14s makespan %6.2fs |", cluster::gang_policy_name(policy),
                res.makespan.sec());
    for (const auto& j : res.jobs) {
      std::printf(" %s->n%d(%.1fs)", j.name.c_str(), j.node, j.exec_time.sec());
    }
    std::printf("\n");
  }

  std::printf("\neach node runs HPCSched: the per-job 4:1 intrinsic imbalance is\n"
              "balanced locally while the gang scheduler works at node granularity.\n");
  return 0;
}
