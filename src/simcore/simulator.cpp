#include "simcore/simulator.h"

#include <utility>

#include "common/check.h"

namespace hpcs::sim {

EventHandle Simulator::schedule_in(Duration delay, EventCallback cb) {
  HPCS_CHECK_MSG(delay >= Duration::zero(), "negative event delay");
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventHandle Simulator::schedule_at(SimTime when, EventCallback cb) {
  HPCS_CHECK_MSG(when >= now_, "event scheduled in the past");
  return queue_.schedule(when, std::move(cb));
}

SimTime Simulator::run(SimTime deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    // Advance the clock before dispatching so the callback observes now().
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++executed_;
  }
  if (queue_.empty()) return now_;
  now_ = deadline;
  return now_;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  now_ = queue_.next_time();
  queue_.pop_and_run();
  ++executed_;
  return true;
}

}  // namespace hpcs::sim
