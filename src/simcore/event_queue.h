#pragma once
// Cancellable discrete-event queue.
//
// Events are (time, sequence, callback) triples ordered by time then by
// insertion sequence, which makes simultaneous events fire in a deterministic
// FIFO order. Cancellation is O(1): each event carries a generation counter
// and an EventHandle remembers the id/generation it was issued for; stale
// entries are skipped lazily when they surface.
//
// Storage is a hierarchical timing wheel backed by a binary-heap overflow
// (see docs/performance.md for the measured effect):
//  * The wheel has kWheelLevels levels of 256 slots; level 0 resolves single
//    nanoseconds, so a level-0 slot holds exactly one timestamp and its FIFO
//    list IS the (time, seq) dispatch order — arming and firing the
//    simulator's dominant traffic (per-CPU 1 ms ticks, exec completions,
//    network deliveries) is O(1) with at most kWheelLevels-1 cascades.
//  * Events beyond the wheel horizon (2^24 ns ≈ 16.8 ms) — sparse far-future
//    timers — overflow into the heap, which is exactly the structure that
//    likes sparse traffic. Dispatch merges the two by (time, seq), so the
//    firing order is bit-identical to the heap-only implementation
//    (tests/test_eq_differential.cpp proves it byte-for-byte).
//  * Same-instant events dispatch as a *batch*: once a level-0 slot is
//    located, run_next() keeps a cursor into it and every further event at
//    that timestamp dispatches without re-searching the wheel or touching
//    the heap — the stale-sweep and slot-lookup cost is paid once per
//    distinct timestamp, not once per event.
//
// Hot-path design (see docs/performance.md):
//  * Callbacks are InplaceFunction — a fixed 48-byte inline buffer, so
//    scheduling never allocates and dispatch is one indirect call.
//  * Slots live in fixed chunks whose addresses never move, so a callback is
//    invoked in place even if it schedules new events (no per-dispatch
//    closure moves, unlike a std::vector of slots that may reallocate).
//  * reschedule() moves a pending event to a new time without touching its
//    callback, and — crucially for recurring events like the kernel's per-CPU
//    1 ms tick — may be called from *inside* the firing callback to re-arm
//    the same slot, keeping the handle valid and skipping the
//    destroy/construct/slot-allocate cycle entirely.

#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "simcore/inplace_function.h"

namespace hpcs::sim {

/// Inline capacity for event closures. Sized for the largest capture list in
/// the simulator (simmpi's [this, rank, dst, Message] sends); growing it is
/// cheap, but audit sizeof(EventQueue::Slot) when you do.
inline constexpr std::size_t kEventCallbackCapacity = 48;

using EventCallback = InplaceFunction<void(), kEventCallbackCapacity>;

/// Always-on queue counters (plain int64 increments on paths that already
/// touch the slot — too cheap to gate). Observability snapshots them into
/// the per-run metrics manifest as the sim.eq_* counters.
struct EventQueueStats {
  std::int64_t scheduled = 0;        ///< schedule() calls
  std::int64_t dispatched = 0;       ///< callbacks actually run
  std::int64_t resched_pending = 0;  ///< reschedule() moved a pending event
  std::int64_t resched_inplace = 0;  ///< reschedule() re-armed the firing slot
  std::int64_t stale_dropped = 0;    ///< superseded/cancelled entries skipped
  std::int64_t wheel_armed = 0;      ///< arms placed in the timing wheel
  std::int64_t heap_armed = 0;       ///< arms overflowed to the heap (far future)
  std::int64_t wheel_dispatched = 0; ///< events dispatched off the wheel
  std::int64_t wheel_cascades = 0;   ///< higher-level slots redistributed downward
  std::int64_t wheel_batches = 0;    ///< same-instant wheel batches started
  std::int64_t wheel_max_batch = 0;  ///< largest same-instant batch dispatched
  std::int64_t wheel_level_skips = 0;  ///< level scans skipped (occupancy count 0)
};

/// Opaque reference to a scheduled event; safe to keep after the event fired
/// or was cancelled (operations on a stale handle are no-ops).
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const { return id_ != kNoId; }

 private:
  friend class EventQueue;
  static constexpr std::uint64_t kNoId = ~std::uint64_t{0};
  EventHandle(std::uint64_t id, std::uint64_t gen) : id_(id), gen_(gen) {}
  std::uint64_t id_ = kNoId;
  std::uint64_t gen_ = 0;
};

class EventQueue {
 public:
  EventQueue() { wheel_enabled_ = default_wheel_enabled_.load(std::memory_order_relaxed); }

  /// Differential-testing seam: queues constructed while this is false route
  /// every arm through the overflow heap, which is exactly the pre-wheel
  /// implementation. Firing order is identical either way (that is the
  /// contract tests/test_eq_differential.cpp enforces); only the eq_wheel_*
  /// counters differ. Not for production use.
  static void set_default_wheel_enabled(bool on) {
    default_wheel_enabled_.store(on, std::memory_order_relaxed);
  }

  /// Per-instance variant of the seam; only valid before any event is armed.
  void set_wheel_enabled(bool on) {
    HPCS_CHECK_MSG(live_count_ == 0 && heap_.empty() && wheel_nodes_ == 0,
                   "set_wheel_enabled() on a non-empty EventQueue");
    wheel_enabled_ = on;
  }

  /// Pending-population threshold above which non-level-0 arms use the wheel
  /// (test/bench seam; 0 forces everything within the horizon onto the
  /// wheel). Safe to change at any time — routing never affects order.
  void set_wheel_min_pending(std::size_t n) { wheel_min_pending_ = n; }

  /// Test seam: start the insertion-sequence counter near an arbitrary value
  /// so the wrapping-u32 tiebreak can be exercised around UINT32_MAX without
  /// four billion warm-up schedules. Only valid on an empty queue.
  void set_next_seq_for_test(std::uint32_t s) {
    HPCS_CHECK_MSG(live_count_ == 0 && heap_.empty() && wheel_nodes_ == 0,
                   "set_next_seq_for_test() on a non-empty EventQueue");
    next_seq_ = s;
  }

  // HPCS_HOT_BEGIN — the public dispatch surface: every simulated event
  // passes through here, and none of it may allocate or construct a
  // std::function (hpcslint enforces; docs/performance.md explains). The
  // only allocations in the queue live in alloc_slot() and the node-pool
  // growth, deliberately amortized: they run once per table growth, not per
  // event.

  /// Schedule `cb` to fire at absolute time `when` (must not be in the past
  /// relative to the last popped event).
  EventHandle schedule(SimTime when, EventCallback cb) {
    ++stats_.scheduled;
    const std::uint64_t id = alloc_slot();
    Slot& slot = slot_at(id);
    slot.cb = std::move(cb);
    slot.live = true;
    slot.has_entry = true;
    slot.seq = next_seq_++;
    ++slot.gen;
    ++live_count_;
    arm(when, slot.seq, static_cast<std::uint32_t>(id));
    return EventHandle{id, slot.gen};
  }

  /// Cancel a previously scheduled event. Returns true if the event was
  /// still pending; false if it already fired, was cancelled, or the handle
  /// is stale.
  bool cancel(EventHandle h) {
    if (!pending(h)) return false;
    Slot& slot = slot_at(h.id_);
    slot.live = false;
    slot.cb = nullptr;
    --live_count_;
    // The wheel node / heap entry stays behind and is skipped lazily; the
    // slot is recycled only when that entry surfaces, so generations stay
    // unambiguous.
    return true;
  }

  /// Move the event behind `h` to fire at `when` instead, reusing its stored
  /// callback and keeping `h` valid. Also works from inside the event's own
  /// callback while it is firing (the recurring-event fast path: the slot is
  /// re-armed instead of freed when the callback returns). Returns false —
  /// and does nothing — if the handle is stale or cancelled; callers then
  /// fall back to schedule().
  bool reschedule(EventHandle h, SimTime when) {
    if (pending(h)) {
      ++stats_.resched_pending;
      Slot& slot = slot_at(h.id_);
      slot.seq = next_seq_++;
      slot.has_entry = true;  // the old entry becomes a superseded duplicate
      arm(when, slot.seq, static_cast<std::uint32_t>(h.id_));
      return true;
    }
    // Re-arm from inside the firing callback: the slot was taken off its
    // structure for this dispatch but its callback is still intact.
    if (h.valid() && h.id_ == firing_slot_ && h.gen_ == firing_gen_) {
      ++stats_.resched_inplace;
      Slot& slot = slot_at(h.id_);
      slot.live = true;
      slot.has_entry = true;
      slot.seq = next_seq_++;
      ++live_count_;
      arm(when, slot.seq, static_cast<std::uint32_t>(h.id_));
      return true;
    }
    return false;
  }

  /// True if an event scheduled through `h` is still pending.
  [[nodiscard]] bool pending(EventHandle h) const {
    if (!h.valid() || h.id_ >= slot_count_) return false;
    const Slot& slot = slot_at(h.id_);
    return slot.live && slot.gen == h.gen_;
  }

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest pending event. Requires !empty(). May cascade
  /// wheel slots and purge stale entries (both invisible to firing order).
  [[nodiscard]] SimTime next_time() {
    SimTime t = SimTime::zero();
    const bool found = peek_next(SimTime::max(), t);
    HPCS_CHECK_MSG(found, "next_time() on empty event queue");
    return t;
  }

  /// Pop and run the earliest pending event; returns its time.
  SimTime pop_and_run() {
    SimTime t = SimTime::zero();
    const bool ran = run_next(SimTime::max(), t);
    HPCS_CHECK_MSG(ran, "pop_and_run() on empty event queue");
    return t;
  }

  /// Fused fast path for the simulator loop: if the earliest pending event
  /// fires at or before `deadline`, store its time into `clock`, run it and
  /// return true. Returns false (leaving `clock` untouched) when the queue
  /// is empty or the next event is past the deadline.
  ///
  /// Same-instant events dispatch as a batch: the first event at a new
  /// timestamp pays the wheel/heap search, every further event at that
  /// timestamp resumes from the cached level-0 slot — one list pop, no
  /// search, no heap inspection. Events scheduled *at the current timestamp
  /// from inside a firing callback* (zero-delay follow-ups, same-instant
  /// re-arms) append to the live batch and fire in the same sweep.
  bool run_next(SimTime deadline, SimTime& clock) {
    for (;;) {
      // Resume the active same-instant batch.
      if (active_batch_) {
        if (active_when_ > deadline.ns()) return false;
        const std::uint32_t n = wheel_front_live(*active_list_);
        if (n == kNilNode) {
          active_batch_ = false;
          continue;
        }
        wheel_unlink_front(*active_list_, n);
        ++batch_len_;
        if (batch_len_ > stats_.wheel_max_batch) stats_.wheel_max_batch = batch_len_;
        dispatch_wheel_node(n, clock);
        return true;
      }

      const bool heap_has = heap_peek();
      const std::int64_t heap_when =
          heap_has ? heap_.front().when.ns() : std::numeric_limits<std::int64_t>::max();
      const std::int64_t limit = heap_when < deadline.ns() ? heap_when : deadline.ns();
      std::int64_t w = 0;
      if (wheel_nodes_ != 0 && wheel_find_next(limit, w)) {
        WheelList& list = level0_list(w);
        const std::uint32_t n = wheel_front_live(list);
        if (n == kNilNode) continue;  // stale-only slot purged; search again
        if (w == heap_when) {
          // Rare cross-structure tie: merge by sequence, one event at a time
          // (no batch — the tie has to be re-checked per event). Wrap-aware
          // window compare, same domain as HeapEntry::operator>.
          const HeapEntry top = heap_.front();
          if (static_cast<std::int32_t>(pool_[n].seq - top.seq) > 0) {
            dispatch_heap_top(clock);
            return true;
          }
        }
        wheel_unlink_front(list, n);
        if (w != heap_when) {
          ++stats_.wheel_batches;
          batch_len_ = 1;
          active_batch_ = true;
          active_when_ = w;
          active_list_ = &list;
          if (stats_.wheel_max_batch == 0) stats_.wheel_max_batch = 1;
        }
        dispatch_wheel_node(n, clock);
        return true;
      }
      if (!heap_has || heap_when > deadline.ns()) return false;
      dispatch_heap_top(clock);
      return true;
    }
  }

  /// Drop all pending events and reset sequence numbering, so a reused queue
  /// behaves exactly like a fresh one (tie-break order is part of the
  /// determinism contract). Must not be called from inside a firing
  /// callback: closures execute in place, so their storage has to outlive
  /// the call.
  void clear() {
    HPCS_CHECK_MSG(firing_slot_ == kNoSlot, "EventQueue::clear() from inside a callback");
    heap_.clear();
    chunks_.clear();
    slot_count_ = 0;
    free_slots_.clear();
    live_count_ = 0;
    next_seq_ = 0;
    stats_ = EventQueueStats{};
    pool_.clear();
    node_free_ = kNilNode;
    wheel_nodes_ = 0;
    cur_ns_ = 0;
    active_batch_ = false;
    batch_len_ = 0;
    link_cache_when_ = kNoLinkCache;
    link_cache_list_ = nullptr;
    for (Level& lv : levels_) {
      for (WheelList& l : lv.lists) l = WheelList{};
      for (std::uint64_t& word : lv.bits) word = 0;
    }
  }

  [[nodiscard]] const EventQueueStats& stats() const { return stats_; }

  // HPCS_HOT_END

 private:
  /// 16 bytes: two entries per cache line more during the sift loops, which
  /// are pure HeapEntry traffic. Slot ids fit u32 by the alloc_slot() cap;
  /// seq is a wrapping 32-bit window — see operator> for why wraparound
  /// cannot reorder live events.
  struct HeapEntry {
    SimTime when;
    std::uint32_t seq;
    std::uint32_t id;
    bool operator>(const HeapEntry& o) const {
      if (when != o.when) return when > o.when;
      // Wraparound-aware window compare: correct while same-instant entries
      // sit within 2^31 schedule() calls of each other. Tie-break order only
      // matters between LIVE entries at the same `when`, and the simulator's
      // same-instant fan-out (per-CPU ticks, message deliveries) is bounded
      // by machine size — nowhere near the 2^31 window.
      return static_cast<std::int32_t>(seq - o.seq) > 0;
    }
  };
  static_assert(sizeof(HeapEntry) == 16, "heap entries are two per cache line pair");
  struct Slot {
    EventCallback cb;
    std::uint64_t gen = 0;
    /// Sequence of the slot's *authoritative* entry (wrapping 32-bit window,
    /// same domain as HeapEntry::seq); entries with any other seq are
    /// superseded duplicates left behind by reschedule().
    std::uint32_t seq = 0;
    bool live = false;
    /// An authoritative wheel node or heap entry for this slot still exists.
    /// The slot may be recycled only once that entry has surfaced and been
    /// dropped (keeps generations unambiguous under lazy deletion).
    bool has_entry = false;
  };

  /// Slots are allocated in fixed-size chunks so their addresses are stable:
  /// a firing callback runs in place even when it schedules new events.
  static constexpr std::uint64_t kChunkShift = 6;
  static constexpr std::uint64_t kChunkSize = 1ull << kChunkShift;
  static constexpr std::uint64_t kNoSlot = ~std::uint64_t{0};

  // ---- hierarchical timing wheel geometry ----
  // kWheelLevels levels of 2^kLevelBits slots; level k slot spans 2^(8k) ns,
  // so level 0 is exact-nanosecond resolution (one timestamp per slot — its
  // FIFO list is already in (time, seq) order) and the whole wheel covers
  // 2^24 ns ≈ 16.8 ms ahead of the cursor. Anything further is sparse timer
  // traffic and overflows to the heap. An event 1 ms out inserts at level 2
  // and cascades twice on its way to dispatch, independent of level count.
  static constexpr int kLevelBits = 8;
  static constexpr int kLevelSlots = 1 << kLevelBits;
  static constexpr int kWheelLevels = 3;
  static constexpr int kWheelSpanBits = kLevelBits * kWheelLevels;
  static constexpr std::uint32_t kNilNode = ~std::uint32_t{0};

  /// One lazily-deleted wheel entry; same (seq, id) payload as HeapEntry
  /// plus the exact timestamp and an intrusive next link (pool index).
  struct WheelNode {
    std::int64_t when_ns = 0;
    std::uint32_t seq = 0;
    std::uint32_t id = 0;
    std::uint32_t next = kNilNode;
  };
  struct WheelList {
    std::uint32_t head = kNilNode;
    std::uint32_t tail = kNilNode;
  };
  struct Level {
    WheelList lists[kLevelSlots];
    std::uint64_t bits[kLevelSlots / 64] = {0, 0, 0, 0};  ///< slot occupancy
    /// Occupied-slot count: lets dispatch skip a level's bitmap scan outright
    /// when the horizon is sparse (a handful of ms-scale timers leaves level 0
    /// and often level 1 completely empty between firings). Invariant: equals
    /// the popcount of `bits`; a slot's bit is set iff its list is non-empty.
    int occupied = 0;
  };

  [[nodiscard]] Slot& slot_at(std::uint64_t id) {
    return chunks_[id >> kChunkShift][id & (kChunkSize - 1)];
  }
  [[nodiscard]] const Slot& slot_at(std::uint64_t id) const {
    return chunks_[id >> kChunkShift][id & (kChunkSize - 1)];
  }

  std::uint64_t alloc_slot() {
    if (!free_slots_.empty()) {
      const std::uint64_t id = free_slots_.back();
      free_slots_.pop_back();
      return id;
    }
    // Heap entries address slots with 32 bits. Slots are recycled, so the
    // count only grows with the peak number of simultaneously pending
    // events — 2^32 of them would be a runaway workload, not a sweep.
    HPCS_CHECK_MSG(slot_count_ < (std::uint64_t{1} << 32),
                   "EventQueue slot table exceeds 32-bit heap-entry ids");
    const std::uint64_t id = slot_count_++;
    if ((id >> kChunkShift) == chunks_.size()) {
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
    return id;
  }

  // HPCS_HOT_BEGIN — per-event wheel/heap maintenance and dispatch.

  /// Route one arm to the wheel or the overflow heap. The wheel takes
  /// near-cursor arms (level 0: same-instant fan-out and zero-delay chains,
  /// where batched dispatch always wins) plus anything within its horizon
  /// once the pending population reaches wheel_min_pending_ — below that a
  /// 4-to-32-entry heap is cache-resident and strictly faster than paying
  /// cascade hops. The heap also takes far-future arms, anything behind the
  /// cursor (legal only after a peek advanced the cursor past the caller's
  /// clock — rare and merge-safe), and every arm when the wheel is disabled
  /// (the differential seam). The choice is a pure function of queue state,
  /// so it is deterministic; firing order is identical either way.
  void arm(SimTime when, std::uint32_t seq, std::uint32_t id) {
    const std::int64_t w = when.ns();
    const std::uint64_t diff = static_cast<std::uint64_t>(w ^ cur_ns_);
    if (!wheel_enabled_ || w < cur_ns_ || (diff >> kWheelSpanBits) != 0 ||
        (diff >= kLevelSlots && live_count_ < wheel_min_pending_)) {
      ++stats_.heap_armed;
      heap_push(HeapEntry{when, seq, id});
      return;
    }
    ++stats_.wheel_armed;
    wheel_insert(w, seq, id);
  }

  [[nodiscard]] std::uint32_t node_alloc() {
    if (node_free_ != kNilNode) {
      const std::uint32_t n = node_free_;
      node_free_ = pool_[n].next;
      return n;
    }
    const std::uint32_t n = static_cast<std::uint32_t>(pool_.size());
    pool_.push_back(WheelNode{});
    return n;
  }

  void node_free(std::uint32_t n) {
    pool_[n].next = node_free_;
    node_free_ = n;
  }

  /// Append an arm to its wheel slot. Appends are chronological, and events
  /// at the same instant always share one level-0 slot through every
  /// cascade, so a level-0 list is in (time, seq) order by construction.
  void wheel_insert(std::int64_t w, std::uint32_t seq, std::uint32_t id) {
    const std::uint32_t n = node_alloc();
    WheelNode& node = pool_[n];
    node.when_ns = w;
    node.seq = seq;
    node.id = id;
    wheel_link(n);
    ++wheel_nodes_;
  }

  /// Link node `n` into the slot its timestamp selects relative to the
  /// current cursor. Shared by fresh arms and cascade relinks (cascades move
  /// the node itself — no copy, no pool churn).
  void wheel_link(std::uint32_t n) {
    WheelNode& node = pool_[n];
    node.next = kNilNode;
    // Same-instant arm cache: N CPUs arming the same future tick instant
    // resolve the level/slot once (the cache is invalidated whenever the
    // cursor moves, since the level depends on it).
    if (node.when_ns == link_cache_when_) {
      WheelList& list = *link_cache_list_;
      pool_[list.tail].next = n;  // cache hit implies a non-empty list
      list.tail = n;
      return;
    }
    const std::uint64_t diff = static_cast<std::uint64_t>(node.when_ns ^ cur_ns_);
    const int lvl = diff == 0 ? 0 : (63 - std::countl_zero(diff)) >> 3;
    const int slot = static_cast<int>((node.when_ns >> (kLevelBits * lvl)) & (kLevelSlots - 1));
    WheelList& list = levels_[lvl].lists[slot];
    if (list.tail == kNilNode) {
      list.head = n;
      // Bit set iff list non-empty, so only the empty→occupied transition
      // touches the bitmap (and the occupancy count that gates level scans).
      levels_[lvl].bits[slot >> 6] |= std::uint64_t{1} << (slot & 63);
      ++levels_[lvl].occupied;
    } else {
      pool_[list.tail].next = n;
    }
    list.tail = n;
    link_cache_when_ = node.when_ns;
    link_cache_list_ = &list;
  }

  /// First occupied slot index >= `from` in a level's bitmap, or -1.
  [[nodiscard]] static int scan_bits(const std::uint64_t bits[kLevelSlots / 64], int from) {
    if (from >= kLevelSlots) return -1;
    int word = from >> 6;
    std::uint64_t w = bits[word] & (~std::uint64_t{0} << (from & 63));
    for (;;) {
      if (w != 0) return (word << 6) + std::countr_zero(w);
      if (++word == kLevelSlots / 64) return -1;
      w = bits[word];
    }
  }

  [[nodiscard]] WheelList& level0_list(std::int64_t w) {
    return levels_[0].lists[w & (kLevelSlots - 1)];
  }

  /// Purge stale nodes off a list front; returns the first live node (left
  /// on the list) or kNilNode after emptying the list. Mid-list stale nodes
  /// are purged when they reach the front.
  std::uint32_t wheel_front_live(WheelList& list) {
    while (list.head != kNilNode) {
      const std::uint32_t n = list.head;
      const WheelNode& node = pool_[n];
      Slot& slot = slot_at(node.id);
      if (node.seq == slot.seq) {
        if (slot.live) return n;
        // Cancelled: its authoritative node surfaced — recycle the slot.
        slot.has_entry = false;
        free_slots_.push_back(node.id);
      }
      // else: superseded by reschedule(); drop the duplicate.
      ++stats_.stale_dropped;
      wheel_unlink_front(list, n);
      node_free(n);
      --wheel_nodes_;
    }
    return kNilNode;
  }

  void wheel_unlink_front(WheelList& list, std::uint32_t n) {
    list.head = pool_[n].next;
    if (list.head == kNilNode) {
      list.tail = kNilNode;
      link_cache_when_ = kNoLinkCache;  // a hit must never append to an empty list
      // The caller is positioned on this slot, so recompute its bit from the
      // node's own timestamp (valid at any level via the same masking).
      const WheelNode& node = pool_[n];
      const std::uint64_t diff = static_cast<std::uint64_t>(node.when_ns ^ cur_ns_);
      const int lvl = diff == 0 ? 0 : (63 - std::countl_zero(diff)) >> 3;
      const int slot =
          static_cast<int>((node.when_ns >> (kLevelBits * lvl)) & (kLevelSlots - 1));
      levels_[lvl].bits[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
      --levels_[lvl].occupied;
    }
  }

  /// Redistribute level-k slot `s` into lower levels relative to the (just
  /// advanced) cursor by relinking the nodes in place. Relative list order
  /// is preserved and same-instant nodes always move together, so level-0
  /// FIFO order survives cascades. Stale nodes are purged here instead of
  /// moved.
  void cascade(int k, int s) {
    ++stats_.wheel_cascades;
    WheelList list = levels_[k].lists[s];
    levels_[k].lists[s] = WheelList{};
    levels_[k].bits[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
    --levels_[k].occupied;
    std::uint32_t n = list.head;
    while (n != kNilNode) {
      const std::uint32_t next = pool_[n].next;
      const WheelNode& node = pool_[n];
      Slot& slot = slot_at(node.id);
      if (node.seq == slot.seq && slot.live) {
        wheel_link(n);
      } else {
        ++stats_.stale_dropped;
        --wheel_nodes_;
        if (node.seq == slot.seq) {
          // Cancelled: its authoritative node surfaced — recycle the slot.
          slot.has_entry = false;
          free_slots_.push_back(node.id);
        }
        node_free(n);
      }
      n = next;
    }
  }

  /// Advance the cursor to the earliest wheel entry with time <= limit and
  /// report its timestamp; false when there is none (the cursor then stays
  /// at or before `limit`, so nothing within the wheel was skipped). The
  /// search cascades higher-level slots encountered on the way down; the
  /// reported slot may still turn out to be stale-only — callers purge and
  /// retry.
  bool wheel_find_next(std::int64_t limit, std::int64_t& out) {
    for (;;) {
      // Level 0: first occupied slot in the current 256 ns page. A sparse
      // horizon (a few ms-scale timers) leaves level 0 empty on almost every
      // search — the occupancy count skips the bitmap scan entirely.
      int s0 = -1;
      if (levels_[0].occupied != 0) {
        s0 = scan_bits(levels_[0].bits, static_cast<int>(cur_ns_ & (kLevelSlots - 1)));
      } else {
        ++stats_.wheel_level_skips;
      }
      if (s0 >= 0) {
        const std::int64_t w = (cur_ns_ & ~std::int64_t{kLevelSlots - 1}) | s0;
        if (w > limit) return false;
        if (w != cur_ns_) {
          cur_ns_ = w;
          link_cache_when_ = kNoLinkCache;  // cursor moved: levels remap
        }
        out = w;
        return true;
      }
      // Page exhausted: find the next occupied slot of the nearest level
      // that has one. The first occupied slot in level order is the earliest
      // range — times are lexicographic in the level digits. Peek the slot's
      // minimum timestamp first: if the whole slot is past the limit it
      // stays where it is (no wasted cascade); otherwise the cursor jumps
      // straight to the minimum and the slot cascades exactly once — the
      // earliest nodes land directly in level 0, however high the slot was
      // (a 1 ms periodic re-arm costs one cascade hop, not level-count).
      bool cascaded = false;
      for (int k = 1; k < kWheelLevels; ++k) {
        if (levels_[k].occupied == 0) {
          ++stats_.wheel_level_skips;
          continue;
        }
        const int shift = kLevelBits * k;
        const int idx = static_cast<int>((cur_ns_ >> shift) & (kLevelSlots - 1));
        const int s = scan_bits(levels_[k].bits, idx + 1);
        if (s < 0) continue;
        const std::int64_t base =
            (cur_ns_ & ~((std::int64_t{1} << (shift + kLevelBits)) - 1)) |
            (std::int64_t{s} << shift);
        if (base > limit) return false;
        std::int64_t mn = std::numeric_limits<std::int64_t>::max();
        for (std::uint32_t n = levels_[k].lists[s].head; n != kNilNode; n = pool_[n].next) {
          if (pool_[n].when_ns < mn) mn = pool_[n].when_ns;
        }
        // The slot MUST cascade even when its whole content is past the
        // limit: its range starts at or before the limit, so the cursor may
        // enter it next (e.g. via a heap dispatch at the limit), and the
        // idx+1 scan start is only sound if slots containing the cursor are
        // empty. Advance the cursor to the slot minimum when that is
        // reachable — the earliest nodes then land directly in level 0 and
        // dispatch without re-scanning — and only to the slot base
        // otherwise (never past the limit).
        cur_ns_ = mn <= limit ? mn : base;
        link_cache_when_ = kNoLinkCache;  // cursor moved: levels remap
        cascade(k, s);
        if (mn <= limit) {
          // The minimum node relinked with zero distance, i.e. into level 0
          // at the cursor — unless it was stale and got purged. Report the
          // slot directly; the caller's stale sweep copes with either case.
          out = mn;
          return true;
        }
        cascaded = true;
        break;
      }
      if (!cascaded) return false;  // every remaining node was purged as stale
    }
  }

  /// Earliest pending event time <= deadline across both structures,
  /// without dispatching. Shares all the lazy-purge machinery.
  bool peek_next(SimTime deadline, SimTime& out) {
    for (;;) {
      if (active_batch_) {
        if (active_when_ > deadline.ns()) return false;
        if (wheel_front_live(*active_list_) != kNilNode) {
          out = SimTime(active_when_);
          return true;
        }
        active_batch_ = false;
        continue;
      }
      const bool heap_has = heap_peek();
      const std::int64_t heap_when =
          heap_has ? heap_.front().when.ns() : std::numeric_limits<std::int64_t>::max();
      const std::int64_t limit = heap_when < deadline.ns() ? heap_when : deadline.ns();
      std::int64_t w = 0;
      if (wheel_nodes_ != 0 && wheel_find_next(limit, w)) {
        if (wheel_front_live(level0_list(w)) == kNilNode) continue;
        out = SimTime(w);
        return true;
      }
      if (!heap_has || heap_when > deadline.ns()) return false;
      out = SimTime(heap_when);
      return true;
    }
  }

  // Hand-rolled binary-heap sifts. Unlike std::pop_heap's hole-to-leaf
  // strategy, sift-down stops as soon as the moved element dominates both
  // children — for recurring events (N CPUs ticking at the same instant) the
  // replacement usually belongs right at the top, making this O(1) in
  // practice. Pop order depends only on the (when, seq) total order, so the
  // layout is free to differ from std::*_heap without affecting determinism.
  void heap_push(HeapEntry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!(heap_[parent] > e)) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void heap_pop() {
    const std::size_t n = heap_.size() - 1;
    if (n > 0) {
      const HeapEntry e = heap_[n];
      // Descend the hole along the smaller-child path to a leaf, then sift
      // the displaced last element back up — ~1 comparison per level instead
      // of 2, which wins when draining long runs of stale entries.
      std::size_t i = 0;
      std::size_t child = 1;
      while (child < n) {
        if (child + 1 < n && heap_[child] > heap_[child + 1]) ++child;
        heap_[i] = heap_[child];
        i = child;
        child = 2 * i + 1;
      }
      while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!(heap_[parent] > e)) break;
        heap_[i] = heap_[parent];
        i = parent;
      }
      heap_[i] = e;
    }
    heap_.pop_back();
  }

  /// Pop superseded / cancelled entries off the heap top; true if an
  /// authoritative live entry remains.
  bool heap_peek() {
    while (!heap_.empty()) {
      const HeapEntry& top = heap_.front();
      Slot& slot = slot_at(top.id);
      if (top.seq == slot.seq) {
        if (slot.live) return true;
        // Cancelled: its authoritative entry has surfaced — recycle.
        slot.has_entry = false;
        free_slots_.push_back(top.id);
      }
      // else: superseded by reschedule(); drop the duplicate.
      ++stats_.stale_dropped;
      heap_pop();
    }
    return false;
  }

  /// Dispatch the (already stale-swept) heap top. The wheel search bounded
  /// by this entry's time found nothing, so jumping the cursor here skips no
  /// wheel slot.
  void dispatch_heap_top(SimTime& clock) {
    const HeapEntry top = heap_.front();
    heap_pop();
    if (top.when.ns() > cur_ns_) {
      cur_ns_ = top.when.ns();
      link_cache_when_ = kNoLinkCache;  // cursor moved: levels remap
    }
    clock = top.when;
    ++stats_.dispatched;
    run_slot(top.id);
  }

  /// Dispatch a wheel node already unlinked from its list (cursor sits at
  /// its timestamp).
  void dispatch_wheel_node(std::uint32_t n, SimTime& clock) {
    const WheelNode node = pool_[n];
    node_free(n);
    --wheel_nodes_;
    clock = SimTime(node.when_ns);
    ++stats_.dispatched;
    ++stats_.wheel_dispatched;
    run_slot(node.id);
  }

  /// Shared dispatch epilogue: fire the slot's callback in place and recycle
  /// the slot unless the callback re-armed it.
  void run_slot(std::uint64_t id) {
    Slot& slot = slot_at(id);
    slot.live = false;
    slot.has_entry = false;
    --live_count_;
    firing_slot_ = id;
    firing_gen_ = slot.gen;
    // Chunk addresses are stable, so the closure runs in place; scheduling
    // from inside the callback cannot move it.
    slot.cb();
    firing_slot_ = kNoSlot;
    Slot& after = slot_at(id);
    if (after.gen == firing_gen_ && !after.live && !after.has_entry) {
      after.cb = nullptr;  // fired for good: destroy the closure, recycle
      free_slots_.push_back(id);
    }
  }

  // HPCS_HOT_END

  std::vector<HeapEntry> heap_;  ///< far-future overflow min-heap by (when, seq)
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint64_t slot_count_ = 0;
  std::vector<std::uint64_t> free_slots_;
  /// Wrapping 32-bit sequence window (see HeapEntry::operator>).
  std::uint32_t next_seq_ = 0;
  std::size_t live_count_ = 0;
  /// Slot currently executing inside run_slot (kNoSlot otherwise); its
  /// callback may re-arm itself via reschedule().
  std::uint64_t firing_slot_ = kNoSlot;
  std::uint64_t firing_gen_ = 0;
  EventQueueStats stats_;

  // ---- timing wheel state ----
  Level levels_[kWheelLevels];
  std::vector<WheelNode> pool_;        ///< node storage; stable enough (indices)
  std::uint32_t node_free_ = kNilNode; ///< node freelist head
  std::size_t wheel_nodes_ = 0;        ///< nodes resident in the wheel (incl. stale)
  /// Wheel cursor: all wheel slots strictly before it are empty. Advances
  /// monotonically with dispatch/search; never past an undispatched entry.
  std::int64_t cur_ns_ = 0;
  /// Active same-instant batch: dispatch resumes from this level-0 list
  /// without re-searching until it drains past `active_when_`.
  bool active_batch_ = false;
  std::int64_t active_when_ = 0;
  WheelList* active_list_ = nullptr;
  std::int64_t batch_len_ = 0;
  /// Same-instant arm cache (see wheel_link); invalid whenever the cursor
  /// moves or the cached list drains.
  static constexpr std::int64_t kNoLinkCache = std::numeric_limits<std::int64_t>::min();
  std::int64_t link_cache_when_ = kNoLinkCache;
  WheelList* link_cache_list_ = nullptr;
  bool wheel_enabled_ = true;
  /// Measured wheel/heap crossover for non-level-0 traffic (see
  /// docs/performance.md): below this many pending events the heap's two or
  /// three cache-hot sift compares beat a cascade hop.
  static constexpr std::size_t kWheelMinPendingDefault = 32;
  std::size_t wheel_min_pending_ = kWheelMinPendingDefault;
  inline static std::atomic<bool> default_wheel_enabled_{true};
};

}  // namespace hpcs::sim
